#include "uncore/uncore.hpp"

#include <array>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace serep::uncore {

namespace {

namespace tm = telemetry;

constexpr std::uint64_t kLineMask = ~std::uint64_t{63}; // 64-byte lines

void count_one(const char* name) {
    if (!tm::enabled()) return;
    tm::count(tm::counter_id(name), 1);
}

unsigned level_set_bits(unsigned level) noexcept {
    const sim::CacheConfig& cfg =
        level == kLevelL1D ? sim::kL1Config : sim::kL2Config;
    unsigned bits = 0;
    for (std::uint32_t sets = cfg.size_bytes / (cfg.ways * cfg.line_bytes);
         sets > 1; sets >>= 1)
        ++bits;
    return bits;
}

/// The injection-state machine, armed on the fault-run clone as its
/// sim::UncoreHook. One Model tracks exactly one fault; it lives as long as
/// the machine it is attached to (the machine owns the shared_ptr).
class Model final : public sim::UncoreHook {
public:
    explicit Model(const core::FaultTarget& t) : t_(t) {}

    /// Mutate `m` per the fault kind; returns true when the model needs to
    /// keep observing the run (hook worth arming).
    bool arm(sim::Machine& m) {
        switch (t_.kind) {
            case core::FaultTarget::Kind::CacheData: return arm_cache_data(m);
            case core::FaultTarget::Kind::CacheTag: return arm_cache_tag(m);
            case core::FaultTarget::Kind::Bus:
                bus_armed_ = true;
                return true;
            default: return false; // unreachable: inject() gates the kind
        }
    }

    void on_data_access(sim::Machine& m, unsigned ci, std::uint64_t phys,
                        unsigned size, bool write, bool l1_hit, bool l2_hit,
                        bool cached) override {
        settle_pending(m);
        if (bus_armed_ && ci == t_.core) consume_bus(m, phys, size, write);
        if (watching_) watch_event(m, phys, write, l1_hit, l2_hit, cached);
    }

    void on_run_boundary(sim::Machine& m) override { settle_pending(m); }

private:
    sim::Cache& cache(sim::Machine& m) const {
        return level_ == kLevelL1D ? m.l1d_cache(t_.core) : m.l2_cache();
    }

    /// Resolve the struck cell (t_.phys = set * ways + way) to the line it
    /// holds at the injection instant; ~0ULL when the cell is empty.
    std::uint64_t struck_line(sim::Machine& m) const {
        const sim::Cache& c = cache(m);
        return c.line_at(static_cast<std::uint32_t>(t_.phys / c.ways()),
                         static_cast<std::uint32_t>(t_.phys % c.ways()));
    }

    bool arm_cache_data(sim::Machine& m) {
        level_ = t_.reg;
        const std::uint64_t line_addr = struck_line(m);
        if (line_addr == ~0ULL) {
            count_one("uncore.masked_no_line");
            return false;
        }
        // The cached copy serves every read while the line is resident, so
        // flipping backing memory IS the corrupted-cached-copy view; the
        // watch decides whether eviction drops or commits it.
        flip_phys_ = line_addr + (t_.bit >> 3) % 64;
        flip_bit_ = t_.bit % 8;
        m.flip_mem(flip_phys_, flip_bit_);
        watch_addr_ = line_addr;
        watching_ = true;
        return true;
    }

    bool arm_cache_tag(sim::Machine& m) {
        level_ = t_.reg;
        sim::Cache& c = cache(m);
        const std::uint64_t line_addr = struck_line(m);
        if (line_addr == ~0ULL) {
            count_one("uncore.masked_no_line");
            return false;
        }
        const unsigned tb =
            t_.bit % tag_bit_count(level_, m.mem().phys_size());
        const std::uint64_t alias_addr =
            line_addr ^ (std::uint64_t{1} << (c.line_shift() + c.set_bits() + tb));
        if (alias_addr + 64 > m.mem().phys_size()) {
            count_one("uncore.masked_out_of_range");
            return false;
        }
        // The way now claims the alias line while physically holding the
        // victim's data: save the alias line's bytes, overlay them with the
        // victim's, and rewrite the tag. Alias-line reads hit the aliased
        // way (and see the victim's data); victim-line reads miss and
        // refetch intact backing memory.
        for (unsigned i = 0; i < 8; ++i)
            saved_[i] = m.mem().load(alias_addr + 8 * i, 8);
        for (unsigned i = 0; i < 8; ++i)
            m.mem().store(alias_addr + 8 * i, 8,
                          m.mem().load(line_addr + 8 * i, 8));
        c.retag(line_addr, alias_addr);
        tag_fault_ = true;
        watch_addr_ = alias_addr;
        watching_ = true;
        return true;
    }

    void watch_event(sim::Machine& m, std::uint64_t phys, bool write,
                     bool l1_hit, bool l2_hit, bool cached) {
        // Aligned accesses of <= 8 bytes never straddle a 64-byte line.
        if ((phys & kLineMask) == watch_addr_) {
            if (cached) {
                const bool resident_before =
                    level_ == kLevelL1D ? l1_hit : (l1_hit || l2_hit);
                if (!resident_before) {
                    // The watched line was evicted since the last data
                    // access (an I-fetch or a same-set D-allocation we see
                    // only now): settle *before* this access's bytes move.
                    settle_eviction(m);
                    return;
                }
            }
            if (write) dirty_ = true;
            return;
        }
        if (cached && !cache(m).probe(watch_addr_)) settle_eviction(m);
    }

    void settle_eviction(sim::Machine& m) {
        watching_ = false;
        if (dirty_) {
            // The dirty aliased/corrupted way writes back: backing memory
            // already reflects every store that went through it, so the
            // corruption is committed by doing nothing.
            count_one("uncore.writeback_committed");
            return;
        }
        if (tag_fault_) {
            for (unsigned i = 0; i < 8; ++i)
                m.mem().store(watch_addr_ + 8 * i, 8, saved_[i]);
        } else {
            m.flip_mem(flip_phys_, flip_bit_);
        }
        count_one("uncore.masked_by_eviction");
    }

    void consume_bus(sim::Machine& m, std::uint64_t phys, unsigned size,
                     bool write) {
        bus_armed_ = false;
        const unsigned b = t_.bit % (size * 8);
        bus_phys_ = phys + b / 8;
        bus_bit_ = b % 8;
        if (write) {
            // The value was corrupted in flight: flip the landed byte right
            // after the store — i.e. at the next hook event or run boundary
            // (this hook fires before the bytes move).
            bus_flip_pending_ = true;
        } else {
            // The memory cell was never wrong, only the transfer: flip now
            // so the load reads the corrupted value, undo at the next event.
            m.flip_mem(bus_phys_, bus_bit_);
            bus_restore_pending_ = true;
        }
        count_one("uncore.bus_corrupted");
    }

    void settle_pending(sim::Machine& m) {
        if (bus_flip_pending_) {
            m.flip_mem(bus_phys_, bus_bit_);
            bus_flip_pending_ = false;
        }
        if (bus_restore_pending_) {
            m.flip_mem(bus_phys_, bus_bit_);
            bus_restore_pending_ = false;
        }
    }

    core::FaultTarget t_;
    unsigned level_ = kLevelL1D;
    // cache-line watch (cache-tag / cache-data)
    bool watching_ = false;
    bool dirty_ = false;
    bool tag_fault_ = false;
    std::uint64_t watch_addr_ = 0; ///< line-aligned; the alias line for tag faults
    std::uint64_t flip_phys_ = 0;  ///< cache-data undo point
    unsigned flip_bit_ = 0;
    std::array<std::uint64_t, 8> saved_{}; ///< alias line's pristine bytes
    // one-shot bus corruption
    bool bus_armed_ = false;
    bool bus_flip_pending_ = false;    ///< store: flip after the bytes land
    bool bus_restore_pending_ = false; ///< load: undo the pre-load flip
    std::uint64_t bus_phys_ = 0;
    unsigned bus_bit_ = 0;
};

} // namespace

const char* level_name(unsigned level) noexcept {
    return level == kLevelL1D ? "L1D" : "L2";
}

unsigned cell_count(unsigned level) noexcept {
    const sim::CacheConfig& cfg =
        level == kLevelL1D ? sim::kL1Config : sim::kL2Config;
    return cfg.size_bytes / cfg.line_bytes; // sets * ways
}

unsigned tag_bit_count(unsigned level, std::uint64_t phys_size) noexcept {
    const unsigned low = 6 /* line */ + level_set_bits(level);
    unsigned top = 0; // highest bit index below phys_size
    for (std::uint64_t s = phys_size >> 1; s; s >>= 1) ++top;
    return top > low ? top - low : 1;
}

void inject(sim::Machine& m, const core::FaultTarget& t) {
    util::check(core::is_uncore_kind(t.kind),
                "uncore::inject: not an uncore fault kind");
    count_one("uncore.injected");
    auto model = std::make_shared<Model>(t);
    if (model->arm(m)) m.set_uncore_hook(std::move(model));
}

} // namespace serep::uncore
