// Uncore fault injection — cache-tag, cache-data, and bus fault spaces.
//
// The paper's fault model stops at architectural state (GPR/FP registers and
// backing memory). Cho et al. and Khoshavi et al. (PAPERS.md) show that the
// uncore — caches and the core<->memory interconnect — dominates modern SDC
// rates, and that *where the corrupted line lands* (clean vs dirty, evicted
// vs read back) decides whether a strike is ever observed. This subsystem
// models exactly that, on top of the tag-only sim::Cache and the existing
// data-access funnels, without adding data storage to the cache model:
//
// Cache strikes address a cache *cell* — (level, set, way), with
// FaultTarget::phys carrying set * ways + way — and hit whatever line is
// resident there at the injection instant, exactly like a particle strike
// on the SRAM array. An empty cell masks the strike outright.
//
//   cache-data  The struck line's cached copy differs from backing memory
//               until the line leaves the cache. Since every read of a
//               resident line is served by the cache, "the cached copy" IS
//               the globally visible value during residency — so injection
//               flips the byte in backing memory while the model watches the
//               line. Clean eviction drops the corruption (the flip is
//               undone — `uncore.masked_by_eviction`); a store to the line
//               marks it dirty, committing the corruption as a writeback
//               (`uncore.writeback_committed`). A line still resident at
//               run end keeps its corrupted value (it would be read from
//               cache). FaultTarget::bit indexes the struck bit within the
//               64-byte line (0..511). An empty struck cell masks the
//               strike outright (`uncore.masked_no_line`).
//
//   cache-tag   One tag bit of the struck cell flips, so
//               the cache silently believes it holds the *alias* line
//               (struck line with one index-adjacent address bit flipped —
//               tag bits sit above the set-index bits, so the way stays in
//               the same set). Accesses to the alias line now hit and read
//               the victim's data: modeled by saving the alias line's 64
//               bytes and overlaying them with the victim's bytes while the
//               alias line is watched. Accesses to the original line miss
//               and refetch intact backing memory. A clean eviction of the
//               aliased way restores the saved bytes (masked); a store
//               through the aliased tag writes back to the *wrong address*
//               — permanent corruption. Tag bits whose flip would address
//               past the end of physical memory are masked at injection
//               (`uncore.masked_no_line` covers the empty-cell case too).
//
//   bus         Exactly one in-flight transfer is corrupted: the first data
//               transaction the struck core issues at or after the
//               injection instant has one transfer bit flipped. For a load
//               the flip is applied to the transferred byte just before the
//               bytes move and undone right after (the memory cell itself
//               was never wrong); for a store the flip is applied just
//               after the bytes land (the written value was corrupted in
//               flight). A run that ends before the core issues another
//               transaction masks the fault.
//
// Eviction is observed by probing the target cache at every subsequent data
// access (hook events are bit-identical across all three engines, so the
// observation points are too). An eviction caused by an instruction fetch is
// therefore charged at the *next data access* — and an access to the watched
// line that misses (resident_before == false) proves such an eviction
// already happened, so it settles the watch before the bytes move.
//
// Determinism: injection and every subsequent model decision depend only on
// (machine state, hook event stream), both of which are bit-identical across
// engines, shard layouts, and hosts — uncore campaigns inherit the full
// byte-identity contract. Pruning cannot reason about these kinds and
// declines them (src/orch/batch_runner.cpp).
#pragma once

#include <cstdint>
#include <memory>

#include "core/fault.hpp"
#include "sim/machine.hpp"

namespace serep::uncore {

/// Cache level encoding used in FaultTarget::reg for the cache kinds.
inline constexpr unsigned kLevelL1D = 0; ///< per-core L1D of FaultTarget::core
inline constexpr unsigned kLevelL2 = 1;  ///< shared L2 (core = 0)
inline constexpr unsigned kLevelCount = 2;

/// Human name of a cache level ("L1D" / "L2") — report rows use it.
const char* level_name(unsigned level) noexcept;

/// Number of (set, way) cells at a cache level. The cache-kind fault space
/// is enumerated over the cache's own cells — FaultTarget::phys holds the
/// struck cell id (set * ways + way) — and a strike lands on whatever line
/// is resident in that cell at the injection instant (empty cell = masked).
/// Striking cells, not addresses, is what makes the space meaningful: a
/// random physical address almost never has its line resident, while every
/// cell of a warm cache holds someone's line.
unsigned cell_count(unsigned level) noexcept;

/// Number of flippable tag bits for a cache level on a machine with
/// `phys_size` bytes of physical memory: tag bit b corresponds to physical
/// address bit (line_shift + set_bits + b), so only bits below the top of
/// physical memory can produce an in-range alias. At least 1 (the fault
/// enumeration needs a non-empty draw range; an out-of-range alias is
/// masked at injection).
unsigned tag_bit_count(unsigned level, std::uint64_t phys_size) noexcept;

/// Perform an uncore injection on the fault-run machine `m`: mutate machine
/// state as the kind dictates and, when the fault stays live, arm a
/// sim::UncoreHook on `m` that tracks residency/dirtiness until the run
/// ends. Faults that are dead on arrival (line not resident, alias out of
/// range) change nothing. `t.kind` must be one of the uncore kinds.
void inject(sim::Machine& m, const core::FaultTarget& t);

} // namespace serep::uncore
