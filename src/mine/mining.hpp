// Cross-layer data-mining engine (the paper's §3.4 tool, in C++).
//
// Joins fault-injection outcome statistics with profiling metrics into one
// dataset, then mines relationships: Pearson/Spearman correlations, the
// function-calls x branches "F*B" index of Table 2, and the MPI-vs-OMP
// mismatch metric of Figures 2c/3c.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "prof/profile.hpp"

namespace serep::mine {

/// One scenario's joined record.
struct Row {
    std::string scenario, isa, app, api;
    unsigned cores = 0;
    std::map<std::string, double> values;
};

class Dataset {
public:
    void add(const core::CampaignResult& fi, const prof::ProfileData& prof);
    void add_row(Row r) { rows_.push_back(std::move(r)); }

    const std::vector<Row>& rows() const noexcept { return rows_; }
    /// Column values for rows that contain `key` (ordered by row).
    std::vector<double> column(const std::string& key) const;
    /// All metric keys present in at least one row.
    std::vector<std::string> keys() const;

    std::string to_csv() const;

private:
    std::vector<Row> rows_;
};

// ---- statistics ----
double mean(const std::vector<double>& v);
double stdev(const std::vector<double>& v);
double pearson(const std::vector<double>& x, const std::vector<double>& y);
double spearman(const std::vector<double>& x, const std::vector<double>& y);

struct Correlation {
    std::string key;
    double r = 0;
};
/// Correlations of every metric against `target`, sorted by |r| descending.
std::vector<Correlation> correlations(const Dataset& d, const std::string& target);

/// Paper's mismatch metric: sum of absolute per-category percentage
/// differences between two campaigns (Figures 2c/3c).
double mismatch(const core::CampaignResult& a, const core::CampaignResult& b);

/// Table 2's index: (function calls x branches), normalized to a baseline.
double fb_index(const prof::ProfileData& p, const prof::ProfileData& baseline);

} // namespace serep::mine
