#include "mine/mining.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/csv.hpp"

namespace serep::mine {

void Dataset::add(const core::CampaignResult& fi, const prof::ProfileData& prof) {
    Row r;
    r.scenario = fi.scenario.name();
    r.isa = isa::profile_name(fi.scenario.isa);
    r.app = npb::app_name(fi.scenario.app);
    r.api = npb::api_name(fi.scenario.api);
    r.cores = fi.scenario.cores;
    r.values = prof.metrics();
    for (unsigned o = 0; o < core::kOutcomeCount; ++o) {
        const auto oc = static_cast<core::Outcome>(o);
        r.values[std::string("pct_") + core::outcome_name(oc)] = fi.pct(oc);
    }
    r.values["pct_masked"] = fi.masked_pct();
    r.values["cores"] = r.cores;
    rows_.push_back(std::move(r));
}

std::vector<double> Dataset::column(const std::string& key) const {
    std::vector<double> out;
    for (const Row& r : rows_) {
        const auto it = r.values.find(key);
        if (it != r.values.end()) out.push_back(it->second);
    }
    return out;
}

std::vector<std::string> Dataset::keys() const {
    std::set<std::string> k;
    for (const Row& r : rows_)
        for (const auto& [key, _] : r.values) k.insert(key);
    return {k.begin(), k.end()};
}

std::string Dataset::to_csv() const {
    std::ostringstream os;
    util::CsvWriter w(os);
    const auto ks = keys();
    std::vector<std::string> header = {"scenario", "isa", "app", "api"};
    header.insert(header.end(), ks.begin(), ks.end());
    w.row(header);
    for (const Row& r : rows_) {
        std::vector<std::string> cells = {r.scenario, r.isa, r.app, r.api};
        for (const auto& k : ks) {
            const auto it = r.values.find(k);
            cells.push_back(it == r.values.end() ? "" : std::to_string(it->second));
        }
        w.row(cells);
    }
    return os.str();
}

double mean(const std::vector<double>& v) {
    if (v.empty()) return 0;
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
}

double stdev(const std::vector<double>& v) {
    if (v.size() < 2) return 0;
    const double m = mean(v);
    double s = 0;
    for (double x : v) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
    if (x.size() != y.size() || x.size() < 2) return 0;
    const double mx = mean(x), my = mean(y);
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0 || syy == 0) return 0;
    return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> ranks(const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    std::size_t i = 0;
    while (i < idx.size()) {
        std::size_t j = i;
        while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
        const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
        i = j + 1;
    }
    return r;
}

} // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
    return pearson(ranks(x), ranks(y));
}

std::vector<Correlation> correlations(const Dataset& d, const std::string& target) {
    std::vector<Correlation> out;
    const auto ty = d.column(target);
    for (const auto& k : d.keys()) {
        if (k == target) continue;
        const auto x = d.column(k);
        if (x.size() != ty.size()) continue;
        out.push_back({k, pearson(x, ty)});
    }
    std::sort(out.begin(), out.end(), [](const Correlation& a, const Correlation& b) {
        return std::fabs(a.r) > std::fabs(b.r);
    });
    return out;
}

double mismatch(const core::CampaignResult& a, const core::CampaignResult& b) {
    double m = 0;
    for (unsigned o = 0; o < core::kOutcomeCount; ++o) {
        const auto oc = static_cast<core::Outcome>(o);
        m += std::fabs(a.pct(oc) - b.pct(oc));
    }
    return m;
}

double fb_index(const prof::ProfileData& p, const prof::ProfileData& baseline) {
    const double base = static_cast<double>(baseline.fb_calls) *
                        static_cast<double>(baseline.branches);
    if (base == 0) return 0;
    return (static_cast<double>(p.fb_calls) * static_cast<double>(p.branches)) / base;
}

} // namespace serep::mine
