// µISA profiles.
//
// One RISC instruction set with two profiles mirroring the architectural
// asymmetries the paper attributes its results to:
//
//  * Profile::V7 (Cortex-A9 / ARMv7-like):  32-bit, 16 GPRs with SP=R13,
//    LR=R14 and PC=R15 *inside* the register file, NZCV flags, conditional
//    execution on any instruction, LDM/STM, exclusive word accesses,
//    **no integer divide** and **no FP registers** (doubles go through a
//    guest soft-float library, as the paper's compiler chose for the A9).
//  * Profile::V8 (Cortex-A72 / ARMv8-like):  64-bit, 31 GPRs + dedicated SP,
//    PC not architecturally addressable, 32 x 64-bit FP registers with
//    hardware FADD/FMUL/FDIV/FSQRT/FMADD, CSEL/CBZ instead of conditional
//    execution, LDP/STP instead of LDM/STM, hardware divide.
//
// The fault injector derives its target space from the profile: 16 x 32 bit
// targets on V7 (PC/SP included) versus 32 x 64 on V8 — reproducing the
// paper's "critical registers are less likely to be struck on ARMv8" effect.
#pragma once

#include <cstdint>
#include <string>

namespace serep::isa {

enum class Profile : std::uint8_t { V7, V8 };

/// Architectural constants for a profile.
struct ProfileInfo {
    unsigned width_bits;      ///< integer register width (32 or 64)
    unsigned width_bytes;     ///< width_bits / 8
    unsigned gpr_count;       ///< architecturally addressable GPRs (incl. SP; incl. PC on V7)
    unsigned sp_index;        ///< register index of SP
    unsigned lr_index;        ///< register index of the link register
    unsigned pc_index;        ///< internal index of PC (== architectural R15 on V7)
    bool pc_is_gpr;           ///< true when PC is part of the GPR file (V7)
    bool has_fp_regs;         ///< 32 x 64-bit FP registers (V8)
    bool has_conditional_exec;///< condition field valid on any instruction (V7)
    bool has_hw_divide;       ///< UDIV/SDIV available (V8)
    unsigned fp_reg_count;    ///< 32 on V8, 0 on V7
};

constexpr ProfileInfo profile_info(Profile p) noexcept {
    if (p == Profile::V7) {
        return ProfileInfo{32, 4, 16, 13, 14, 15, true, false, true, false, 0};
    }
    return ProfileInfo{64, 8, 32, 31, 30, 32, false, true, false, true, 32};
}

inline const char* profile_name(Profile p) noexcept {
    return p == Profile::V7 ? "ARMv7" : "ARMv8";
}

/// Lowercase CLI/spec spelling ("v7" / "v8") — the convention serep flags,
/// experiment-spec matrices, and scenario filters share. profile_name() is
/// the database/report spelling ("ARMv7" / "ARMv8").
inline const char* profile_short_name(Profile p) noexcept {
    return p == Profile::V7 ? "v7" : "v8";
}

/// Register-name helper ("r4", "sp", "pc", "x19", ...).
std::string reg_name(Profile p, unsigned index);
std::string fp_reg_name(unsigned index);

// Internal register-file slot indices (see RegFile): on V8 we store
// X0..X30 at 0..30, SP at 31, PC at 32. On V7, R0..R12, SP=13, LR=14, PC=15.
inline constexpr unsigned kV8SpIndex = 31;
inline constexpr unsigned kV8PcIndex = 32;

} // namespace serep::isa
