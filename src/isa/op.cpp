#include "isa/op.hpp"

#include <array>

namespace serep::isa {

namespace {

// name, branch, call, load, store, fp, privileged, v7_only, v8_only
constexpr std::array<OpInfo, 84> kOpTable = {{
    {"movi", false, false, false, false, false, false, false, false},
    {"mov", false, false, false, false, false, false, false, false},
    {"mvn", false, false, false, false, false, false, false, false},
    {"add", false, false, false, false, false, false, false, false},
    {"sub", false, false, false, false, false, false, false, false},
    {"and", false, false, false, false, false, false, false, false},
    {"orr", false, false, false, false, false, false, false, false},
    {"eor", false, false, false, false, false, false, false, false},
    {"mul", false, false, false, false, false, false, false, false},
    {"addi", false, false, false, false, false, false, false, false},
    {"subi", false, false, false, false, false, false, false, false},
    {"andi", false, false, false, false, false, false, false, false},
    {"orri", false, false, false, false, false, false, false, false},
    {"eori", false, false, false, false, false, false, false, false},
    {"adds", false, false, false, false, false, false, false, false},
    {"subs", false, false, false, false, false, false, false, false},
    {"addsi", false, false, false, false, false, false, false, false},
    {"subsi", false, false, false, false, false, false, false, false},
    {"adcs", false, false, false, false, false, false, false, false},
    {"sbcs", false, false, false, false, false, false, false, false},
    {"umull", false, false, false, false, false, false, true, false},
    {"smull", false, false, false, false, false, false, true, false},
    {"umulh", false, false, false, false, false, false, false, true},
    {"udiv", false, false, false, false, false, false, false, true},
    {"sdiv", false, false, false, false, false, false, false, true},
    {"lsli", false, false, false, false, false, false, false, false},
    {"lsri", false, false, false, false, false, false, false, false},
    {"asri", false, false, false, false, false, false, false, false},
    {"lslv", false, false, false, false, false, false, false, false},
    {"lsrv", false, false, false, false, false, false, false, false},
    {"asrv", false, false, false, false, false, false, false, false},
    {"lslsi", false, false, false, false, false, false, false, false},
    {"lsrsi", false, false, false, false, false, false, false, false},
    {"clz", false, false, false, false, false, false, false, false},
    {"cmp", false, false, false, false, false, false, false, false},
    {"cmpi", false, false, false, false, false, false, false, false},
    {"cmn", false, false, false, false, false, false, false, false},
    {"tst", false, false, false, false, false, false, false, false},
    {"csel", false, false, false, false, false, false, false, true},
    {"cset", false, false, false, false, false, false, false, true},
    {"b", true, false, false, false, false, false, false, false},
    {"b.cond", true, false, false, false, false, false, false, false},
    {"bl", true, true, false, false, false, false, false, false},
    {"blr", true, true, false, false, false, false, false, false},
    {"br", true, false, false, false, false, false, false, false},
    {"ret", true, false, false, false, false, false, false, false},
    {"cbz", true, false, false, false, false, false, false, true},
    {"cbnz", true, false, false, false, false, false, false, true},
    {"ldr", false, false, true, false, false, false, false, false},
    {"str", false, false, false, true, false, false, false, false},
    {"ldrw", false, false, true, false, false, false, false, true},
    {"strw", false, false, false, true, false, false, false, true},
    {"ldrb", false, false, true, false, false, false, false, false},
    {"strb", false, false, false, true, false, false, false, false},
    {"ldm", false, false, true, false, false, false, true, false},
    {"stm", false, false, false, true, false, false, true, false},
    {"ldp", false, false, true, false, false, false, false, true},
    {"stp", false, false, false, true, false, false, false, true},
    {"ldrex", false, false, true, false, false, false, false, false},
    {"strex", false, false, false, true, false, false, false, false},
    {"fadd", false, false, false, false, true, false, false, true},
    {"fsub", false, false, false, false, true, false, false, true},
    {"fmul", false, false, false, false, true, false, false, true},
    {"fdiv", false, false, false, false, true, false, false, true},
    {"fsqrt", false, false, false, false, true, false, false, true},
    {"fneg", false, false, false, false, true, false, false, true},
    {"fabs", false, false, false, false, true, false, false, true},
    {"fmadd", false, false, false, false, true, false, false, true},
    {"fmov", false, false, false, false, true, false, false, true},
    {"fmovi", false, false, false, false, true, false, false, true},
    {"fcmp", false, false, false, false, true, false, false, true},
    {"fcvtzs", false, false, false, false, true, false, false, true},
    {"scvtf", false, false, false, false, true, false, false, true},
    {"fmovvx", false, false, false, false, true, false, false, true},
    {"fmovxv", false, false, false, false, true, false, false, true},
    {"fldr", false, false, true, false, true, false, false, true},
    {"fstr", false, false, false, true, true, false, false, true},
    {"svc", false, false, false, false, false, false, false, false},
    {"sysrd", false, false, false, false, false, false, false, false},
    {"syswr", false, false, false, false, false, false, false, false},
    {"eret", true, false, false, false, false, true, false, false},
    {"wfi", false, false, false, false, false, true, false, false},
    {"nop", false, false, false, false, false, false, false, false},
    {"hlt", false, false, false, false, false, true, false, false},
}};

// UDF is the last opcode; kOpTable covers MOVI..HLT, UDF handled below.
constexpr OpInfo kUdfInfo = {"udf", false, false, false, false, false, false, false, false};

} // namespace

const OpInfo& op_info(Op op) noexcept {
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= kOpTable.size()) return kUdfInfo;
    return kOpTable[idx];
}

bool op_valid_for(Op op, Profile p) noexcept {
    const OpInfo& info = op_info(op);
    if (p == Profile::V7 && info.v8_only) return false;
    if (p == Profile::V8 && info.v7_only) return false;
    return true;
}

} // namespace serep::isa
