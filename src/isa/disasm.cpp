#include "isa/disasm.hpp"

#include <sstream>

#include "isa/sysreg.hpp"

namespace serep::isa {

std::string reg_name(Profile p, unsigned index) {
    const ProfileInfo info = profile_info(p);
    if (index == info.sp_index) return "sp";
    if (index == info.pc_index) return "pc";
    if (index == info.lr_index) return p == Profile::V7 ? "lr" : "x30";
    return (p == Profile::V7 ? "r" : "x") + std::to_string(index);
}

std::string fp_reg_name(unsigned index) { return "v" + std::to_string(index); }

const char* cond_name(Cond c) noexcept {
    switch (c) {
        case Cond::EQ: return "eq";
        case Cond::NE: return "ne";
        case Cond::CS: return "cs";
        case Cond::CC: return "cc";
        case Cond::MI: return "mi";
        case Cond::PL: return "pl";
        case Cond::VS: return "vs";
        case Cond::VC: return "vc";
        case Cond::HI: return "hi";
        case Cond::LS: return "ls";
        case Cond::GE: return "ge";
        case Cond::LT: return "lt";
        case Cond::GT: return "gt";
        case Cond::LE: return "le";
        case Cond::AL: return "al";
    }
    return "??";
}

const char* trap_cause_name(TrapCause c) noexcept {
    switch (c) {
        case TrapCause::NONE: return "none";
        case TrapCause::SVC: return "svc";
        case TrapCause::UNDEF: return "undef";
        case TrapCause::DATA_ABORT: return "data_abort";
        case TrapCause::PREFETCH_ABORT: return "prefetch_abort";
        case TrapCause::IRQ_TIMER: return "irq_timer";
        case TrapCause::IRQ_IPI: return "irq_ipi";
    }
    return "??";
}

namespace {

bool is_fp_dst(Op op) {
    switch (op) {
        case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
        case Op::FSQRT: case Op::FNEG: case Op::FABS: case Op::FMADD:
        case Op::FMOV: case Op::FMOVI: case Op::SCVTF: case Op::FMOVXV:
        case Op::FLDR: case Op::FSTR:
            return true;
        default:
            return false;
    }
}

bool is_fp_src(Op op) {
    switch (op) {
        case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
        case Op::FSQRT: case Op::FNEG: case Op::FABS: case Op::FMADD:
        case Op::FMOV: case Op::FCMP: case Op::FCVTZS: case Op::FMOVVX:
            return true;
        default:
            return false;
    }
}

} // namespace

std::string disasm(const Instr& ins, Profile p) {
    const OpInfo& info = op_info(ins.op);
    std::ostringstream os;
    os << info.name;
    if (ins.op == Op::BCOND) {
        os << cond_name(ins.cond);
    } else if (p == Profile::V7 && ins.cond != Cond::AL) {
        os << '.' << cond_name(ins.cond);
    } else if ((ins.op == Op::CSEL || ins.op == Op::CSET)) {
        os << ' ' << cond_name(ins.cond) << ',';
    }

    auto rn = [&](std::uint8_t r) { return reg_name(p, r); };
    auto vn = [&](std::uint8_t r) { return fp_reg_name(r); };
    bool first = true;
    auto sep = [&]() -> std::ostringstream& {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };

    if (ins.rd != kNoReg) sep() << (is_fp_dst(ins.op) && ins.op != Op::FMOVVX ? vn(ins.rd) : rn(ins.rd));
    if (ins.rn != kNoReg) {
        const bool mem = op_info(ins.op).is_load || op_info(ins.op).is_store;
        if (mem && ins.op != Op::STREX) {
            sep() << '[' << rn(ins.rn);
            if (ins.rm != kNoReg) {
                os << " + " << rn(ins.rm);
                if (ins.shift) os << " << " << int(ins.shift);
            } else if (ins.imm) {
                os << " + #" << ins.imm;
            }
            os << ']';
        } else {
            sep() << (is_fp_src(ins.op) && ins.op != Op::FMOVXV && ins.op != Op::SCVTF ? vn(ins.rn) : rn(ins.rn));
        }
    }
    const bool mem = op_info(ins.op).is_load || op_info(ins.op).is_store;
    if (ins.rm != kNoReg && !mem) sep() << (is_fp_src(ins.op) ? vn(ins.rm) : rn(ins.rm));
    if (ins.ra != kNoReg) sep() << (ins.op == Op::FMADD ? vn(ins.ra) : rn(ins.ra));
    if (ins.op == Op::LDM || ins.op == Op::STM) {
        sep() << "{mask=0x" << std::hex << ins.regmask << std::dec << '}';
        if (ins.wb) os << '!';
    }
    switch (ins.op) {
        case Op::MOVI: case Op::ADDI: case Op::SUBI: case Op::ANDI:
        case Op::ORRI: case Op::EORI: case Op::ADDSI: case Op::SUBSI:
        case Op::CMPI: case Op::LSLI: case Op::LSRI: case Op::ASRI:
        case Op::LSLSI: case Op::LSRSI: case Op::SVC:
            sep() << '#' << ins.imm;
            break;
        case Op::B: case Op::BCOND: case Op::BL: case Op::CBZ: case Op::CBNZ:
            sep() << "0x" << std::hex << ins.imm << std::dec;
            break;
        case Op::FMOVI:
            sep() << '#' << ins.imm;
            break;
        case Op::SYSRD: case Op::SYSWR:
            sep() << "sys" << ins.imm;
            break;
        default:
            break;
    }
    return os.str();
}

} // namespace serep::isa
