// Canonical text-word serialization of the structural µISA.
//
// The simulator's code space is Harvard and structural (isa::Instr records,
// no binary encoding), which historically made guest text immune to the
// paper's memory-fault model. The execution engine (sim/exec_cache.hpp)
// closes that gap: every Machine mirrors its image's code into a dedicated
// physical "text mirror" region as fixed-width records in the format below.
// Memory faults that land in the mirror corrupt these bytes, and the
// decode-once instruction cache re-decodes the affected page through
// decode_instr(), whose job is to turn *any* byte pattern into a
// deterministic, memory-safe instruction — invalid encodings become UDF,
// exactly like a hardware UNDEF on a corrupted instruction word.
//
// Record layout (little-endian, kTextRecordBytes = 32, so one 4 KiB page
// holds exactly 128 records):
//   [0] op  [1] cond  [2] rd  [3] rn  [4] rm  [5] ra  [6] shift
//   [7] flags (bit0 = wb)   [8..9] regmask   [10..15] reserved (zero)
//   [16..23] imm (two's complement)          [24..31] reserved (zero)
//
// decode_instr(encode_instr(i)) == i for every instruction an Assembler can
// emit (gated by tests/engine_test.cpp across every paper image).
#pragma once

#include <cstdint>

#include "isa/instr.hpp"
#include "isa/profile.hpp"

namespace serep::isa {

inline constexpr std::uint64_t kTextRecordBytes = 32;
inline constexpr std::uint64_t kTextRecordsPerPage = 4096 / kTextRecordBytes;

/// Operand-slot classes for decode-time validation. A corrupted register
/// field must never index outside the architectural files (33 integer
/// slots, 32 FP registers) — such encodings decode to UDF.
enum class OperandUse : std::uint8_t {
    NONE,    ///< slot unused by this opcode; any byte is acceptable
    GPR,     ///< required integer register (< 33)
    GPR_OPT, ///< integer register or kNoReg (register-offset addressing)
    FP,      ///< required FP register (< 32)
};

struct OperandSpec {
    OperandUse rd, rn, rm, ra;
};

/// Which register slots `op` reads/writes — drives decode validation.
const OperandSpec& op_operand_spec(Op op) noexcept;

/// Serialize one instruction into a kTextRecordBytes record.
void encode_instr(const Instr& ins, std::uint8_t out[kTextRecordBytes]) noexcept;

/// Deserialize one record. Total: every byte pattern yields a well-defined
/// instruction; patterns that do not name a valid, executable, in-profile
/// operation decode to UDF (→ UNDEF trap when executed).
Instr decode_instr(const std::uint8_t in[kTextRecordBytes], Profile p) noexcept;

} // namespace serep::isa
