// µISA opcodes and their static properties.
//
// Instructions are structural (no binary encoding): the fault model of the
// paper targets *state* (registers, memory), not instruction words, so the
// code space is immutable. PC remains a real byte address so PC corruption
// behaves like hardware (misaligned / wild fetches).
#pragma once

#include <cstdint>

#include "isa/profile.hpp"

namespace serep::isa {

enum class Op : std::uint8_t {
    // moves / ALU (register forms: rd, rn, rm; immediate forms: rd, rn, imm)
    MOVI,   ///< rd = imm (full-width immediate)
    MOV,    ///< rd = rn
    MVN,    ///< rd = ~rn
    ADD, SUB, AND, ORR, EOR, MUL,
    ADDI, SUBI, ANDI, ORRI, EORI,
    ADDS, SUBS,          ///< flag-setting add/sub (register)
    ADDSI, SUBSI,        ///< flag-setting add/sub (immediate)
    ADCS, SBCS,          ///< add/sub with carry, flag-setting
    UMULL,               ///< V7: {rd=lo, ra=hi} = rn * rm (32x32->64)
    SMULL,               ///< V7: signed widening multiply
    UMULH,               ///< V8: rd = high 64 bits of rn * rm
    UDIV, SDIV,          ///< V8 only (A9 has no hardware divide)
    LSLI, LSRI, ASRI,    ///< shift by immediate
    LSLV, LSRV, ASRV,    ///< shift by register
    LSLSI, LSRSI,        ///< flag-setting shift by immediate (carry-out), imm in [1,W-1]
    CLZ,                 ///< count leading zeros
    CMP, CMPI, CMN, TST, ///< compare / test (flags only)
    CSEL,                ///< V8: rd = cond ? rn : rm
    CSET,                ///< V8: rd = cond ? 1 : 0
    // branches
    B,                   ///< unconditional, imm = absolute code byte address
    BCOND,               ///< conditional branch (cond field)
    BL,                  ///< call: LR = next pc, jump imm
    BLR,                 ///< indirect call: LR = next pc, jump rn
    BR,                  ///< indirect jump rn (no link)
    RET,                 ///< jump LR
    CBZ, CBNZ,           ///< V8: compare rn against zero and branch
    // memory (addressing: [rn + imm] or [rn + rm << shift] when rm != NO_REG)
    LDR, STR,            ///< width-W load/store
    LDRW, STRW,          ///< 32-bit load (zero-extend) / store low 32 — V8 only
    LDRB, STRB,          ///< byte load (zero-extend) / store
    LDM, STM,            ///< V7: multi-register load/store, regmask, optional writeback
    LDP, STP,            ///< V8: pair load/store at [rn + imm], rd and ra
    LDREX, STREX,        ///< exclusive width-W pair (STREX: rd = status, rn = addr, rm = value)
    // floating point (V8 only; V7 lowers to soft-float library calls)
    FADD, FSUB, FMUL, FDIV,   ///< vd, vn, vm
    FSQRT, FNEG, FABS,        ///< vd, vn
    FMADD,                    ///< vd = vn * vm + va
    FMOV,                     ///< vd = vn
    FMOVI,                    ///< vd = immediate double (bits in imm)
    FCMP,                     ///< set NZCV from vn ? vm
    FCVTZS,                   ///< rd = (int) vn, truncate toward zero
    SCVTF,                    ///< vd = (double) signed rn
    FMOVVX,                   ///< rd = raw bits of vn
    FMOVXV,                   ///< vd = raw bits of rn
    FLDR, FSTR,               ///< 8-byte FP load/store, same addressing as LDR
    // system
    SVC,                 ///< supervisor call, imm = syscall number (traps)
    SYSRD,               ///< rd = sysreg[imm]
    SYSWR,               ///< sysreg[imm] = rn
    ERET,                ///< return from trap: mode=USER, PC=EPC (privileged)
    WFI,                 ///< wait for interrupt (privileged)
    NOP,
    HLT,                 ///< halt this core (privileged; kernel shutdown only)
    UDF,                 ///< explicit undefined instruction (traps)
};

inline constexpr std::uint8_t kNoReg = 0xFF;

/// Static classification used by the profiler and timing model.
struct OpInfo {
    const char* name;
    bool is_branch;      ///< control-transfer instruction (B/BCOND/BL/BLR/BR/RET/CBZ/CBNZ)
    bool is_call;        ///< BL/BLR
    bool is_load;
    bool is_store;
    bool is_fp;          ///< FP data-processing or FP memory
    bool privileged;     ///< UNDEF trap when executed in user mode
    bool v7_only;
    bool v8_only;
};

const OpInfo& op_info(Op op) noexcept;

/// True when `op` may appear in code assembled for profile `p`.
bool op_valid_for(Op op, Profile p) noexcept;

} // namespace serep::isa
