// System registers (SYSRD/SYSWR operands) and trap causes.
#pragma once

#include <cstdint>

namespace serep::isa {

/// System register ids. "user" column: readable from user mode.
enum class SysReg : std::uint8_t {
    CORE_ID = 0,   ///< ro, user — hart index
    TIMER = 1,     ///< rw, kernel — countdown in retired instructions; 0 disables
    EPC = 2,       ///< rw, kernel — trap return address
    CAUSE = 3,     ///< ro, kernel — trap cause (low 8 bits) | aux (SVC number << 8)
    BADADDR = 4,   ///< ro, kernel — faulting data/fetch address
    FLAGS = 5,     ///< rw, kernel — packed NZCV (for context save/restore)
    USP = 6,       ///< rw, kernel — banked user stack pointer
    TLS = 7,       ///< rw kernel / ro user — current thread control block address
    IPI_SEND = 8,  ///< wo, kernel — bitmask of cores to interrupt
    CONSOLE = 9,   ///< wo, kernel — emit one byte to current process console
    MAP_BRK = 10,  ///< wo, kernel — set current process heap top (maps pages)
    SHUTDOWN = 11, ///< wo, kernel — end of application; value = exit code
    INSTRET = 12,  ///< ro, user — instructions retired on this core
    NCORES = 13,   ///< ro, user — number of cores
    CURPROC = 14,  ///< rw, kernel — process whose address space is active on this core
    PROC_EXIT = 15,///< wo, kernel — record a process exit: (proc << 8) | exit code
};

enum class TrapCause : std::uint8_t {
    NONE = 0,
    SVC,            ///< supervisor call (aux = syscall number)
    UNDEF,          ///< illegal/privileged instruction in user mode
    DATA_ABORT,     ///< unmapped/forbidden/misaligned data access
    PREFETCH_ABORT, ///< bad instruction fetch address
    IRQ_TIMER,
    IRQ_IPI,
};

const char* trap_cause_name(TrapCause c) noexcept;

} // namespace serep::isa
