// Human-readable rendering of instructions (debugging, traces, tests).
#pragma once

#include <string>

#include "isa/instr.hpp"
#include "isa/profile.hpp"

namespace serep::isa {

/// Render one instruction, e.g. "addi r4, r4, #1" / "fmadd v2, v0, v1, v2".
std::string disasm(const Instr& ins, Profile p);

} // namespace serep::isa
