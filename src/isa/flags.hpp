// NZCV condition flags and ARM-style condition codes.
#pragma once

#include <cstdint>

namespace serep::isa {

struct Flags {
    bool n = false; ///< negative
    bool z = false; ///< zero
    bool c = false; ///< carry / not-borrow
    bool v = false; ///< signed overflow

    /// Pack to the canonical NZCV nibble (N=bit3 .. V=bit0).
    constexpr std::uint64_t pack() const noexcept {
        return (std::uint64_t{n} << 3) | (std::uint64_t{z} << 2) |
               (std::uint64_t{c} << 1) | std::uint64_t{v};
    }
    static constexpr Flags unpack(std::uint64_t bits) noexcept {
        return Flags{(bits >> 3 & 1) != 0, (bits >> 2 & 1) != 0,
                     (bits >> 1 & 1) != 0, (bits & 1) != 0};
    }
    constexpr bool operator==(const Flags& o) const noexcept {
        return n == o.n && z == o.z && c == o.c && v == o.v;
    }
    constexpr bool operator!=(const Flags& o) const noexcept { return !(*this == o); }
};

/// ARM condition codes.
enum class Cond : std::uint8_t {
    EQ, NE, CS, CC, MI, PL, VS, VC, HI, LS, GE, LT, GT, LE, AL
};

constexpr bool cond_holds(Cond c, const Flags& f) noexcept {
    switch (c) {
        case Cond::EQ: return f.z;
        case Cond::NE: return !f.z;
        case Cond::CS: return f.c;
        case Cond::CC: return !f.c;
        case Cond::MI: return f.n;
        case Cond::PL: return !f.n;
        case Cond::VS: return f.v;
        case Cond::VC: return !f.v;
        case Cond::HI: return f.c && !f.z;
        case Cond::LS: return !f.c || f.z;
        case Cond::GE: return f.n == f.v;
        case Cond::LT: return f.n != f.v;
        case Cond::GT: return !f.z && f.n == f.v;
        case Cond::LE: return f.z || f.n != f.v;
        case Cond::AL: return true;
    }
    return true;
}

const char* cond_name(Cond c) noexcept;

} // namespace serep::isa
