#include "isa/encode.hpp"

#include <array>
#include <cstring>

namespace serep::isa {

namespace {

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::UDF) + 1;

constexpr OperandUse N = OperandUse::NONE;
constexpr OperandUse G = OperandUse::GPR;
constexpr OperandUse O = OperandUse::GPR_OPT;
constexpr OperandUse F = OperandUse::FP;

// Slot usage per opcode, in Op declaration order (see isa/op.hpp).
constexpr std::array<OperandSpec, kOpCount> kSpecs = {{
    {G, N, N, N}, // MOVI
    {G, G, N, N}, // MOV
    {G, G, N, N}, // MVN
    {G, G, G, N}, // ADD
    {G, G, G, N}, // SUB
    {G, G, G, N}, // AND
    {G, G, G, N}, // ORR
    {G, G, G, N}, // EOR
    {G, G, G, N}, // MUL
    {G, G, N, N}, // ADDI
    {G, G, N, N}, // SUBI
    {G, G, N, N}, // ANDI
    {G, G, N, N}, // ORRI
    {G, G, N, N}, // EORI
    {G, G, G, N}, // ADDS
    {G, G, G, N}, // SUBS
    {G, G, N, N}, // ADDSI
    {G, G, N, N}, // SUBSI
    {G, G, G, N}, // ADCS
    {G, G, G, N}, // SBCS
    {G, G, G, G}, // UMULL
    {G, G, G, G}, // SMULL
    {G, G, G, N}, // UMULH
    {G, G, G, N}, // UDIV
    {G, G, G, N}, // SDIV
    {G, G, N, N}, // LSLI
    {G, G, N, N}, // LSRI
    {G, G, N, N}, // ASRI
    {G, G, G, N}, // LSLV
    {G, G, G, N}, // LSRV
    {G, G, G, N}, // ASRV
    {G, G, N, N}, // LSLSI
    {G, G, N, N}, // LSRSI
    {G, G, N, N}, // CLZ
    {N, G, G, N}, // CMP
    {N, G, N, N}, // CMPI
    {N, G, G, N}, // CMN
    {N, G, G, N}, // TST
    {G, G, G, N}, // CSEL
    {G, N, N, N}, // CSET
    {N, N, N, N}, // B
    {N, N, N, N}, // BCOND
    {N, N, N, N}, // BL
    {N, G, N, N}, // BLR
    {N, G, N, N}, // BR
    {N, N, N, N}, // RET
    {N, G, N, N}, // CBZ
    {N, G, N, N}, // CBNZ
    {G, G, O, N}, // LDR
    {G, G, O, N}, // STR
    {G, G, O, N}, // LDRW
    {G, G, O, N}, // STRW
    {G, G, O, N}, // LDRB
    {G, G, O, N}, // STRB
    {N, G, N, N}, // LDM
    {N, G, N, N}, // STM
    {G, G, O, G}, // LDP
    {G, G, O, G}, // STP
    {G, G, N, N}, // LDREX
    {G, G, G, N}, // STREX
    {F, F, F, N}, // FADD
    {F, F, F, N}, // FSUB
    {F, F, F, N}, // FMUL
    {F, F, F, N}, // FDIV
    {F, F, N, N}, // FSQRT
    {F, F, N, N}, // FNEG
    {F, F, N, N}, // FABS
    {F, F, F, F}, // FMADD
    {F, F, N, N}, // FMOV
    {F, N, N, N}, // FMOVI
    {N, F, F, N}, // FCMP
    {G, F, N, N}, // FCVTZS
    {F, G, N, N}, // SCVTF
    {G, F, N, N}, // FMOVVX
    {F, G, N, N}, // FMOVXV
    {F, G, O, N}, // FLDR
    {F, G, O, N}, // FSTR
    {N, N, N, N}, // SVC
    {G, N, N, N}, // SYSRD
    {N, G, N, N}, // SYSWR
    {N, N, N, N}, // ERET
    {N, N, N, N}, // WFI
    {N, N, N, N}, // NOP
    {N, N, N, N}, // HLT
    {N, N, N, N}, // UDF
}};

bool slot_ok(OperandUse use, std::uint8_t reg, const ProfileInfo& info) noexcept {
    switch (use) {
        case OperandUse::NONE: return true;
        case OperandUse::GPR: return reg < info.gpr_count;
        case OperandUse::GPR_OPT: return reg == kNoReg || reg < info.gpr_count;
        case OperandUse::FP: return reg < 32;
    }
    return false;
}

constexpr Instr kUdf = [] {
    Instr u;
    u.op = Op::UDF;
    return u;
}();

} // namespace

const OperandSpec& op_operand_spec(Op op) noexcept {
    return kSpecs[static_cast<std::size_t>(op)];
}

void encode_instr(const Instr& ins, std::uint8_t out[kTextRecordBytes]) noexcept {
    std::memset(out, 0, kTextRecordBytes);
    out[0] = static_cast<std::uint8_t>(ins.op);
    out[1] = static_cast<std::uint8_t>(ins.cond);
    out[2] = ins.rd;
    out[3] = ins.rn;
    out[4] = ins.rm;
    out[5] = ins.ra;
    out[6] = ins.shift;
    out[7] = ins.wb ? 1 : 0;
    out[8] = static_cast<std::uint8_t>(ins.regmask & 0xFF);
    out[9] = static_cast<std::uint8_t>(ins.regmask >> 8);
    const auto imm = static_cast<std::uint64_t>(ins.imm);
    for (unsigned b = 0; b < 8; ++b)
        out[16 + b] = static_cast<std::uint8_t>(imm >> (8 * b));
}

Instr decode_instr(const std::uint8_t in[kTextRecordBytes], Profile p) noexcept {
    if (in[0] >= kOpCount) return kUdf;
    const Op op = static_cast<Op>(in[0]);
    if (!op_valid_for(op, p)) return kUdf;
    if (in[1] > static_cast<std::uint8_t>(Cond::AL)) return kUdf;

    const ProfileInfo info = profile_info(p);
    const OperandSpec& spec = kSpecs[in[0]];
    if (!slot_ok(spec.rd, in[2], info) || !slot_ok(spec.rn, in[3], info) ||
        !slot_ok(spec.rm, in[4], info) || !slot_ok(spec.ra, in[5], info))
        return kUdf;

    Instr ins;
    ins.op = op;
    ins.cond = static_cast<Cond>(in[1]);
    ins.rd = in[2];
    ins.rn = in[3];
    ins.rm = in[4];
    ins.ra = in[5];
    ins.shift = static_cast<std::uint8_t>(in[6] & 63); // keep x << shift defined
    ins.wb = (in[7] & 1) != 0;
    ins.regmask = static_cast<std::uint16_t>(in[8] | (in[9] << 8));
    std::uint64_t imm = 0;
    for (unsigned b = 0; b < 8; ++b)
        imm |= static_cast<std::uint64_t>(in[16 + b]) << (8 * b);
    ins.imm = static_cast<std::int64_t>(imm);

    // Flag-setting shifts index carry-out at bit (w - imm) / (imm - 1): only
    // [1, width-1] is a meaningful — and memory-safe — shift amount.
    if (op == Op::LSLSI || op == Op::LSRSI) {
        if (ins.imm < 1 || ins.imm >= static_cast<std::int64_t>(info.width_bits))
            return kUdf;
    }
    return ins;
}

} // namespace serep::isa
