// Guest address-space layout (shared by assembler, simulator, OS, loader).
//
// One 32-bit-friendly map used by both profiles (V8 stores these as 64-bit
// values; any flipped high bit lands outside a region and faults, just as a
// flipped bit 31 does on V7):
//
//   CODE_BASE  0x00400000   Harvard code space, 4 bytes/instruction,
//                           kernel text first, user text after.
//   USER_BASE  0x20000000   per-process private data: static data, heap
//                           (grows up via brk), main stack (top of region,
//                           grows down). Unmapped gap in between faults.
//   KERN_BASE  0xC0000000   kernel data: TCBs, run queue, channels, kernel
//                           stacks. Kernel-mode-only; user access faults.
#pragma once

#include <cstdint>

namespace serep::isa::layout {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kCodeBase = 0x0040'0000;
inline constexpr std::uint64_t kUserBase = 0x2000'0000;
inline constexpr std::uint64_t kKernBase = 0xC000'0000;

/// Defaults; Machine configuration may size regions differently.
inline constexpr std::uint64_t kDefaultUserSize = 4 * 1024 * 1024;
inline constexpr std::uint64_t kDefaultKernSize = 512 * 1024;
inline constexpr std::uint64_t kMainStackSize = 64 * 1024;

} // namespace serep::isa::layout
