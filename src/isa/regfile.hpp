// Architectural register file — the primary fault-injection target space.
#pragma once

#include <array>
#include <cstdint>

#include "isa/flags.hpp"
#include "isa/profile.hpp"

namespace serep::isa {

/// Integer + FP register state for one core, width-masked per profile.
///
/// Internal slot map:
///  * V7: R0..R12 = 0..12, SP = 13, LR = 14, PC = 15 (PC is a GPR).
///  * V8: X0..X30 = 0..30, SP = 31, PC = 32 (not architecturally addressable).
class RegFile {
public:
    explicit RegFile(Profile p) noexcept
        : p_(p), info_(profile_info(p)),
          mask_(info_.width_bits >= 64 ? ~std::uint64_t{0}
                                       : ((std::uint64_t{1} << info_.width_bits) - 1)) {}

    Profile profile() const noexcept { return p_; }
    unsigned width_bits() const noexcept { return info_.width_bits; }
    std::uint64_t width_mask() const noexcept { return mask_; }

    std::uint64_t x(unsigned i) const noexcept { return x_[i]; }
    void set_x(unsigned i, std::uint64_t v) noexcept { x_[i] = v & mask_; }

    std::uint64_t pc() const noexcept { return x_[info_.pc_index]; }
    void set_pc(std::uint64_t v) noexcept { x_[info_.pc_index] = v & mask_; }
    std::uint64_t sp() const noexcept { return x_[info_.sp_index]; }
    void set_sp(std::uint64_t v) noexcept { x_[info_.sp_index] = v & mask_; }
    std::uint64_t lr() const noexcept { return x_[info_.lr_index]; }
    void set_lr(std::uint64_t v) noexcept { x_[info_.lr_index] = v & mask_; }

    std::uint64_t v_bits(unsigned i) const noexcept { return v_[i]; }
    void set_v_bits(unsigned i, std::uint64_t b) noexcept { v_[i] = b; }

    Flags& flags() noexcept { return flags_; }
    const Flags& flags() const noexcept { return flags_; }

    /// Number of registers the fault injector may target: the whole
    /// architectural integer file — 16 on V7 (PC/SP/LR included),
    /// 32 on V8 (X0..X30 + SP; PC is not in the file).
    unsigned injectable_gpr_count() const noexcept { return info_.gpr_count; }

    /// Flip one bit of an injectable GPR (bit < width_bits).
    void flip_gpr_bit(unsigned reg, unsigned bit) noexcept {
        x_[reg] = (x_[reg] ^ (std::uint64_t{1} << bit)) & mask_;
    }
    /// Flip one bit of an FP register (V8 only).
    void flip_fp_bit(unsigned reg, unsigned bit) noexcept {
        v_[reg] ^= std::uint64_t{1} << bit;
    }

    /// Full architectural-state comparison (ONA detection).
    bool same_arch_state(const RegFile& o) const noexcept {
        if (x_ != o.x_ || !(flags_ == o.flags_)) return false;
        return !info_.has_fp_regs || v_ == o.v_;
    }

private:
    Profile p_;
    ProfileInfo info_;
    std::uint64_t mask_;
    std::array<std::uint64_t, 33> x_{};
    std::array<std::uint64_t, 32> v_{};
    Flags flags_{};
};

} // namespace serep::isa
