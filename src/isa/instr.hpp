// The structural instruction word.
#pragma once

#include <cstdint>

#include "isa/flags.hpp"
#include "isa/op.hpp"

namespace serep::isa {

/// One µISA instruction. Operand fields not used by an opcode hold kNoReg/0.
///
/// `imm` carries immediates, absolute branch targets (code byte addresses,
/// resolved by the assembler), sysreg ids, and FMOVI double bit patterns.
struct Instr {
    Op op = Op::NOP;
    Cond cond = Cond::AL;      ///< V7: any instruction; V8: BCOND/CSEL/CSET only
    std::uint8_t rd = kNoReg;  ///< destination (or status reg for STREX, rt1 for LDP/STP)
    std::uint8_t rn = kNoReg;  ///< first source / base address register
    std::uint8_t rm = kNoReg;  ///< second source / index register (memory ops)
    std::uint8_t ra = kNoReg;  ///< third operand (FMADD accumulator, UMULL hi, LDP/STP rt2)
    std::uint8_t shift = 0;    ///< scale shift for register-offset addressing
    bool wb = false;           ///< writeback (LDM/STM)
    std::uint16_t regmask = 0; ///< register list (LDM/STM)
    std::int64_t imm = 0;
};

static_assert(sizeof(Instr) <= 24, "keep the interpreter's working set small");

/// Code byte addresses: instructions occupy 4 bytes each.
inline constexpr std::uint64_t kInstrBytes = 4;

} // namespace serep::isa
