#include "orch/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace serep::orch {

namespace {

constexpr std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) noexcept {
    return (std::uint64_t{lo} << 32) | hi;
}
constexpr std::uint32_t range_lo(std::uint64_t r) noexcept {
    return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_hi(std::uint64_t r) noexcept {
    return static_cast<std::uint32_t>(r);
}

} // namespace

struct Scheduler::Job {
    const std::function<void(std::size_t)>* body = nullptr;
    /// Per-slot [lo, hi) index ranges, packed lo:32|hi:32.
    std::vector<std::atomic<std::uint64_t>> ranges;
    /// Initial partition bounds — an index executed outside its initial
    /// slot's bounds was stolen.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> initial;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mu;
    std::exception_ptr error;
};

Scheduler::Scheduler(unsigned threads)
    : nthreads_(threads ? threads
                        : std::max(1u, std::thread::hardware_concurrency())) {
    helpers_.reserve(nthreads_ - 1);
    for (unsigned h = 0; h + 1 < nthreads_; ++h)
        helpers_.emplace_back([this, h] { worker_loop(h); });
}

Scheduler::~Scheduler() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : helpers_) t.join();
}

Scheduler& Scheduler::instance() {
    static Scheduler shared(0);
    return shared;
}

void Scheduler::participate(Job& job, unsigned slot) {
    unsigned idle_rounds = 0;
    auto run_one = [&](std::uint32_t idx) {
        try {
            (*job.body)(idx);
        } catch (...) {
            std::lock_guard<std::mutex> lk(job.error_mu);
            if (!job.error) job.error = std::current_exception();
        }
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        const auto& init = job.initial[slot];
        if (idx < init.first || idx >= init.second)
            tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
        job.remaining.fetch_sub(1, std::memory_order_acq_rel);
    };

    for (;;) {
        // Pop the front of our own range.
        std::uint64_t r = job.ranges[slot].load(std::memory_order_acquire);
        bool ran = false;
        while (range_lo(r) < range_hi(r)) {
            if (job.ranges[slot].compare_exchange_weak(
                    r, pack(range_lo(r) + 1, range_hi(r)),
                    std::memory_order_acq_rel)) {
                run_one(range_lo(r));
                ran = true;
                break;
            }
        }
        if (ran) {
            idle_rounds = 0;
            continue;
        }

        // Own range empty: steal the upper half of the largest other range.
        bool stole = false;
        for (;;) {
            unsigned victim = 0;
            std::uint32_t best = 0;
            for (unsigned v = 0; v < job.ranges.size(); ++v) {
                if (v == slot) continue;
                const std::uint64_t vr =
                    job.ranges[v].load(std::memory_order_acquire);
                const std::uint32_t size = range_hi(vr) - range_lo(vr);
                if (range_lo(vr) < range_hi(vr) && size > best) {
                    best = size;
                    victim = v;
                }
            }
            if (best == 0) break;
            std::uint64_t vr = job.ranges[victim].load(std::memory_order_acquire);
            const std::uint32_t lo = range_lo(vr), hi = range_hi(vr);
            if (lo >= hi) continue; // raced away; rescan
            const std::uint32_t mid = lo + (hi - lo) / 2;
            if (job.ranges[victim].compare_exchange_strong(
                    vr, pack(lo, mid), std::memory_order_acq_rel)) {
                // Our own slot is empty and only we refill it.
                job.ranges[slot].store(pack(mid, hi), std::memory_order_release);
                stole = true;
                break;
            }
        }
        if (stole) {
            idle_rounds = 0;
            continue;
        }

        if (job.remaining.load(std::memory_order_acquire) == 0) return;
        // Tasks are in flight elsewhere. Yield briefly in case a thief is
        // about to publish a range, then back off to sleeping so a long
        // watchdog-bound tail doesn't burn the remaining cores.
        if (++idle_rounds < 64) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
}

void Scheduler::worker_loop(unsigned helper_id) {
    const unsigned slot = helper_id + 1;
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return stop_ || (job_ && generation_ != seen_generation);
            });
            if (stop_) return;
            job = job_;
            seen_generation = generation_;
        }
        participate(*job, slot);
    }
}

void Scheduler::parallel_for(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    util::check(n < (std::uint64_t{1} << 32), "parallel_for: index space too large");
    std::lock_guard<std::mutex> run_lock(run_mu_);

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->ranges = std::vector<std::atomic<std::uint64_t>>(nthreads_);
    job->initial.resize(nthreads_);
    job->remaining.store(n, std::memory_order_relaxed);
    const unsigned participants =
        static_cast<unsigned>(std::min<std::size_t>(nthreads_, n));
    std::uint32_t next = 0;
    for (unsigned s = 0; s < nthreads_; ++s) {
        std::uint32_t take = 0;
        if (s < participants) {
            take = static_cast<std::uint32_t>(n / participants +
                                              (s < n % participants ? 1 : 0));
        }
        job->ranges[s].store(pack(next, next + take), std::memory_order_relaxed);
        job->initial[s] = {next, next + take};
        next += take;
    }

    if (nthreads_ > 1) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            job_ = job;
            ++generation_;
        }
        cv_.notify_all();
    }
    participate(*job, 0);
    if (nthreads_ > 1) {
        std::lock_guard<std::mutex> lk(mu_);
        job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
}

} // namespace serep::orch
