// Golden-run checkpoint ladder: cheap single-fault runs.
//
// The legacy campaign loop made injection runs affordable by sorting faults
// and advancing one base machine per worker monotonically — which ties the
// fault-to-worker assignment to the fast-forward state and rules out work
// stealing. The ladder decouples them: during the golden execution we keep
// value copies of the machine at a fixed retired-instruction stride, and
// every injection run clones the deepest snapshot at or before its strike
// instant, replaying at most one stride of instructions instead of the whole
// prefix. Snapshot positions depend only on the deterministic instruction
// stream, so outcomes are bit-identical for any stride (including a disabled
// ladder, which degenerates to from-reset replay).
//
// Auto mode starts from a fine stride and, whenever the rung count would
// exceed the budget, drops every other rung and doubles the stride — so one
// golden pass yields a ladder of at most `max_checkpoints` rungs whatever
// the run length turns out to be.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "sim/snapshot.hpp"

namespace serep::orch {

struct LadderOptions {
    bool enabled = true;
    std::uint64_t stride = 0;  ///< retired instructions between rungs; 0 = auto
    std::size_t max_checkpoints = 24;  ///< rung budget (auto mode halves to fit)
    /// Cap on live snapshot bytes. BatchRunner treats this as a batch-wide
    /// cap: it divides it across the ladders concurrently in flight.
    std::size_t memory_budget_bytes = std::size_t{1} << 30;
};

class CheckpointLadder {
public:
    /// Captures `m`'s current (pre-run) state as the base rung.
    CheckpointLadder(const sim::Machine& m, const LadderOptions& opts);

    /// Golden-run callback: consider a paused machine for the next rung.
    void offer(const sim::Machine& m);

    /// Deepest snapshot with total_retired() <= at (the base rung at worst).
    const sim::Machine& nearest(std::uint64_t at) const noexcept;

    /// Retired-instruction count at which the next rung is due (~0 when the
    /// ladder is disabled). Tracks thinning: the golden driver re-reads this
    /// each pause so it never pauses finer than the current stride.
    std::uint64_t next_boundary() const noexcept;

    /// Drop every rung, base included. Called once no in-flight injection
    /// run references the ladder; a later batch must reset_base() first
    /// (the base is a deterministic rebuild — npb::make_machine — so it is
    /// not worth retaining one Machine copy per cached scenario).
    void release_all() { rungs_.clear(); }
    bool empty() const noexcept { return rungs_.empty(); }
    /// Reinstall a freshly built (pre-run) machine as the base rung.
    void reset_base(sim::Machine m);

    std::uint64_t stride() const noexcept { return stride_; }
    /// Rung count, excluding the base (0 when released).
    std::size_t checkpoints() const noexcept {
        return rungs_.empty() ? 0 : rungs_.size() - 1;
    }
    std::size_t footprint_bytes() const noexcept;

private:
    std::vector<sim::Machine> rungs_; ///< ascending total_retired(); [0] = base
    std::uint64_t stride_;
    std::size_t max_rungs_;
};

/// Run a freshly booted machine to completion (phase 1), building the ladder
/// along the way. Returns the ladder; `m` finishes in its terminal state and
/// is what capture_golden() should consume.
CheckpointLadder run_golden_with_ladder(sim::Machine& m, const LadderOptions& opts,
                                        std::uint64_t stop_at = ~0ULL >> 1);

} // namespace serep::orch
