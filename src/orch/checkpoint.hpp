// Golden-run checkpoint ladder: cheap single-fault runs.
//
// The legacy campaign loop made injection runs affordable by sorting faults
// and advancing one base machine per worker monotonically — which ties the
// fault-to-worker assignment to the fast-forward state and rules out work
// stealing. The ladder decouples them: during the golden execution we keep
// snapshots of the machine at a fixed retired-instruction stride, and every
// injection run clones the deepest snapshot at or before its strike instant,
// replaying at most one stride of instructions instead of the whole prefix.
// Snapshot positions depend only on the deterministic instruction stream, so
// outcomes are bit-identical for any stride (including a disabled ladder,
// which degenerates to from-reset replay).
//
// Rung representation: the base rung is a full Machine copy; deeper rungs
// default to dirty-page delta snapshots against the base (sim/snapshot.hpp)
// — full non-memory state plus only the memory pages that differ — so a
// ladder costs roughly one machine plus the working set instead of
// max_checkpoints machines. Each shard of a sharded campaign can therefore
// afford denser rungs under the same memory budget. delta_snapshots = false
// restores the PR-1 full-copy behaviour (used by tests to prove the two
// modes are bit-identical and to measure the footprint win).
//
// Auto mode starts from a fine stride and, whenever the rung count (or the
// byte budget) would be exceeded, drops every other rung and doubles the
// stride — so one golden pass yields a ladder of at most `max_checkpoints`
// rungs whatever the run length turns out to be.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "sim/snapshot.hpp"

namespace serep::orch {

struct LadderOptions {
    bool enabled = true;
    std::uint64_t stride = 0;  ///< retired instructions between rungs; 0 = auto
    std::size_t max_checkpoints = 24;  ///< rung budget (auto mode halves to fit)
    /// Auto-stride refinement: run a throwaway probe execution first and set
    /// the stride to ceil(golden_length / max_checkpoints), so the ladder
    /// comes out evenly spaced at the full rung budget instead of whatever
    /// power-of-two multiple of the fixed initial stride thinning lands on.
    /// Costs one extra golden execution per ladder build — amortized across
    /// the campaign's fault runs, which each replay at most one (now much
    /// shorter) stride. Only consulted when stride == 0.
    bool adaptive = true;
    /// Cap on live snapshot bytes. BatchRunner treats this as a batch-wide
    /// cap: it divides it across the ladders concurrently in flight.
    std::size_t memory_budget_bytes = std::size_t{1} << 30;
    /// Store rungs as dirty-page deltas against the base (default) instead
    /// of full Machine copies. Bit-identical outcomes either way.
    bool delta_snapshots = true;
};

class CheckpointLadder {
public:
    /// Captures `m`'s current (pre-run) state as the base rung and clears
    /// `m`'s dirty-page bitmap so subsequent offers see exactly the pages
    /// written since this base.
    CheckpointLadder(sim::Machine& m, const LadderOptions& opts);

    /// Golden-run callback: consider a paused machine for the next rung.
    /// Non-const in delta mode only to let make_machine_delta copy the
    /// machine's shell without duplicating guest memory; `m` is unchanged
    /// on return.
    void offer(sim::Machine& m);

    /// Materialize the deepest snapshot with total_retired() <= at (the base
    /// rung at worst) as a runnable clone.
    sim::Machine clone_nearest(std::uint64_t at) const;
    /// Retired count of the rung clone_nearest(at) would start from.
    std::uint64_t nearest_retired(std::uint64_t at) const noexcept;

    /// The base rung (pre-run machine); valid while !empty(). Fault-list
    /// generation reads machine geometry from it.
    const sim::Machine& base() const noexcept { return *base_; }

    /// Retired-instruction count at which the next rung is due (~0 when the
    /// ladder is disabled). Tracks thinning: the golden driver re-reads this
    /// each pause so it never pauses finer than the current stride.
    std::uint64_t next_boundary() const noexcept;

    /// Drop every rung, base included. Called once no in-flight injection
    /// run references the ladder; a later batch must reset_base() first
    /// (the base is a deterministic rebuild — npb::make_machine — so it is
    /// not worth retaining one Machine copy per cached scenario).
    void release_all();
    bool empty() const noexcept { return !base_.has_value(); }
    /// Reinstall a freshly built (pre-run) machine as the base rung.
    void reset_base(sim::Machine m);

    std::uint64_t stride() const noexcept { return stride_; }
    /// Rung count above the base (0 when released).
    std::size_t checkpoints() const noexcept {
        return full_.size() + deltas_.size();
    }
    std::size_t footprint_bytes() const noexcept;
    /// High-water mark of footprint_bytes() across the ladder's lifetime
    /// (the number the delta-snapshot memory claim is gated on).
    std::size_t peak_footprint_bytes() const noexcept { return peak_; }

private:
    void enforce_budgets();
    std::uint64_t last_retired() const noexcept;

    std::optional<sim::Machine> base_;
    std::vector<sim::Machine> full_;        ///< full-copy mode rungs, ascending
    std::vector<sim::MachineDelta> deltas_; ///< delta mode rungs, ascending
    bool delta_mode_;
    std::uint64_t stride_;
    std::size_t max_rungs_;
    std::size_t budget_bytes_;
    std::size_t peak_ = 0;
};

/// Run a freshly booted machine to completion (phase 1), building the ladder
/// along the way. Returns the ladder; `m` finishes in its terminal state and
/// is what capture_golden() should consume.
CheckpointLadder run_golden_with_ladder(sim::Machine& m, const LadderOptions& opts,
                                        std::uint64_t stop_at = ~0ULL >> 1);

} // namespace serep::orch
