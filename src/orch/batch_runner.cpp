#include "orch/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "npb/npb.hpp"
#include "prune/prune.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace serep::orch {

namespace {

namespace tm = serep::telemetry;

void fold_trace_stats(const sim::Machine& m) {
    static const tm::MetricId kBursts = tm::counter_id("engine.trace.bursts");
    static const tm::MetricId kChains =
        tm::counter_id("engine.trace.chain_links");
    static const tm::MetricId kFalls =
        tm::counter_id("engine.trace.fallbacks");
    const sim::Machine::TraceStats& ts = m.trace_stats();
    tm::count(kBursts, ts.bursts);
    tm::count(kChains, ts.chain_links);
    tm::count(kFalls, ts.fallbacks);
}

/// Fold one finished machine's engine/cache tallies into the registry.
/// Golden machines are built fresh (counters start at zero), so absolute
/// values are per-run deltas. Fault-run clones inherit warm rung caches, so
/// only `steps` and the copy-reset TraceStats are folded for those — cache
/// hit/miss rates come from golden runs alone (see docs/telemetry.md).
void fold_golden_machine(const sim::Machine& m) {
    if (!tm::enabled()) return;
    static const tm::MetricId kSteps = tm::counter_id("engine.steps");
    static const tm::MetricId kHitsI = tm::counter_id("cache.l1i.hits");
    static const tm::MetricId kMissI = tm::counter_id("cache.l1i.misses");
    static const tm::MetricId kCredI = tm::counter_id("cache.l1i.credits");
    static const tm::MetricId kHitsD = tm::counter_id("cache.l1d.hits");
    static const tm::MetricId kMissD = tm::counter_id("cache.l1d.misses");
    static const tm::MetricId kCredD = tm::counter_id("cache.l1d.credits");
    static const tm::MetricId kHits2 = tm::counter_id("cache.l2.hits");
    static const tm::MetricId kMiss2 = tm::counter_id("cache.l2.misses");
    tm::count(kSteps, m.total_retired());
    for (unsigned c = 0; c < m.cores(); ++c) {
        tm::count(kHitsI, m.l1i(c).hits());
        tm::count(kMissI, m.l1i(c).misses());
        tm::count(kCredI, m.l1i(c).credits());
        tm::count(kHitsD, m.l1d(c).hits());
        tm::count(kMissD, m.l1d(c).misses());
        tm::count(kCredD, m.l1d(c).credits());
    }
    tm::count(kHits2, m.l2().hits());
    tm::count(kMiss2, m.l2().misses());
    fold_trace_stats(m);
}

} // namespace

struct BatchRunner::GoldenEntry {
    GoldenEntry(CheckpointLadder l, core::GoldenRef r)
        : ladder(std::move(l)), ref(std::move(r)) {}
    CheckpointLadder ladder;
    core::GoldenRef ref;
    /// Jobs of the current run_all still using this ladder; the last
    /// finisher trims the ladder to its base rung so batch memory is
    /// bounded by ladders-in-flight, not total scenario count.
    std::atomic<std::size_t> active_jobs{0};
};

struct BatchRunner::JobState {
    npb::Scenario scenario;
    core::CampaignConfig cfg;
    JobFaultFilter filter; ///< overrides opts_.fault_filter when set
    GoldenEntry* golden = nullptr;
    std::vector<core::Fault> faults;     ///< faults actually injected
    std::vector<std::uint32_t> ordinals; ///< full-list position per fault (sharding)
    std::uint32_t fault_space = 0;       ///< full (pre-filter) fault-list size
    std::uint64_t budget = 0;
    /// Equivalence-pruning plan (parallel to `faults`); null when pruning is
    /// off. With pruning, `remaining` counts class representatives only.
    std::unique_ptr<prune::PruneAnalysis> prune;
    /// followers[i]: fault indices that copy representative i's record.
    std::vector<std::vector<std::uint32_t>> followers;
    std::atomic<std::size_t> remaining{0};
    core::CampaignResult result;
    std::atomic<bool> done{false}; ///< counts merged, ready to flush
    bool flushed = false;
};

std::string scenario_cache_key(const npb::Scenario& s) {
    return s.name() + "|k" + std::to_string(static_cast<unsigned>(s.klass)) +
           (s.contract_fma ? "|fma" : "|nofma");
}

namespace {

/// Golden runs (and ladders) depend on everything in the scenario.
std::string golden_key(const npb::Scenario& s) { return scenario_cache_key(s); }

} // namespace

BatchRunner::BatchRunner(BatchOptions opts) : opts_(opts) {
    if (opts_.threads != 0) own_pool_ = std::make_unique<Scheduler>(opts_.threads);
}

BatchRunner::~BatchRunner() = default;

std::size_t BatchRunner::add(const npb::Scenario& s, const core::CampaignConfig& cfg,
                             JobFaultFilter filter) {
    auto job = std::make_unique<JobState>();
    job->scenario = s;
    job->cfg = cfg;
    job->filter = std::move(filter);
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

BatchRunner::GoldenEntry* BatchRunner::golden_for(const npb::Scenario& s) {
    const std::string key = golden_key(s);
    for (auto& [k, entry] : golden_cache_)
        if (k == key) return entry.get();
    return nullptr;
}

void BatchRunner::drop_golden_ref(GoldenEntry* golden) {
    // Last reference on this scenario in the batch: no injection (or verify)
    // run can touch the ladder anymore (every task finishes with its clone
    // before dropping its reference), so release all rungs. A later batch on
    // the same runner still hits the golden cache (reference + fault list
    // reuse) and reinstalls a rebuilt base for from-reset replay.
    // retain_ladders keeps the rungs instead, for callers that re-queue the
    // same scenarios.
    if (golden &&
        golden->active_jobs.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        !opts_.retain_ladders)
        golden->ladder.release_all();
}

void BatchRunner::complete_job(JobState& job) {
    job.result.recount();
    job.done.store(true, std::memory_order_release);
    drop_golden_ref(job.golden);
    flush_ready();
}

void BatchRunner::flush_ready() {
    std::lock_guard<std::mutex> lk(flush_mu_);
    while (next_flush_ < jobs_.size() &&
           jobs_[next_flush_]->done.load(std::memory_order_acquire)) {
        JobState& job = *jobs_[next_flush_];
        if (!job.flushed) {
            if (csv_sink_) {
                const std::string csv = core::campaign_csv(job.result);
                if (csv_header_written_) {
                    *csv_sink_ << csv.substr(csv.find('\n') + 1);
                } else {
                    *csv_sink_ << csv;
                    csv_header_written_ = true;
                }
            }
            if (json_sink_) *json_sink_ << core::campaign_json(job.result) << '\n';
            job.flushed = true;
        }
        ++next_flush_;
    }
}

void BatchRunner::run_wave(const std::vector<std::size_t>& wave_jobs,
                           Scheduler& pool) {
    // Phase 1+2 (per distinct scenario): golden execution + checkpoint
    // ladder, in parallel across cache misses.
    std::vector<std::pair<std::string, npb::Scenario>> missing;
    for (std::size_t j : wave_jobs) {
        const std::string key = golden_key(jobs_[j]->scenario);
        bool known = golden_for(jobs_[j]->scenario) != nullptr;
        for (const auto& kv : missing) known = known || kv.first == key;
        if (!known) missing.emplace_back(key, jobs_[j]->scenario);
    }
    // Split the snapshot budget across the ladders actually being built this
    // wave (cache hits are base-only after release_all and cost ~nothing).
    LadderOptions ladder_opts = opts_.ladder;
    ladder_opts.memory_budget_bytes =
        opts_.ladder.memory_budget_bytes /
        std::max<std::size_t>(1, missing.size());
    std::vector<std::unique_ptr<GoldenEntry>> built(missing.size());
    {
        tm::Span phase("batch.golden");
        pool.parallel_for(missing.size(), [&](std::size_t i) {
            const npb::Scenario& s = missing[i].second;
            tm::Span span("golden:" + s.name());
            sim::Machine m = npb::make_machine(s, false);
            m.set_engine(opts_.engine); // clones (ladder rungs, fault runs) inherit
            CheckpointLadder ladder = run_golden_with_ladder(m, ladder_opts);
            util::check(m.status() == sim::RunStatus::Shutdown,
                        "golden run did not terminate: " + s.name());
            util::check(m.exit_code() == 0, "golden run failed: " + s.name());
            core::GoldenRef ref = core::capture_golden(m);
            fold_golden_machine(m);
            built[i] =
                std::make_unique<GoldenEntry>(std::move(ladder), std::move(ref));
        });
    }
    for (std::size_t i = 0; i < missing.size(); ++i)
        golden_cache_.emplace_back(missing[i].first, std::move(built[i]));
    golden_runs_ += missing.size();
    if (tm::enabled()) tm::count("batch.golden_runs", missing.size());

    // Phase 3 setup: fault lists (deterministic from seed + golden ref).
    std::vector<std::pair<JobState*, std::uint32_t>> tasks;
    std::vector<JobState*> to_analyze; // pruning: jobs awaiting the diff walk
    for (std::size_t j : wave_jobs) {
        JobState& job = *jobs_[j];
        job.golden = golden_for(job.scenario);
        // A cache hit from an earlier batch has had its rungs released;
        // reinstall the (deterministically rebuilt) base machine.
        if (job.golden->ladder.empty()) {
            sim::Machine base = npb::make_machine(job.scenario, false);
            base.set_engine(opts_.engine);
            job.golden->ladder.reset_base(std::move(base));
        }
        job.golden->active_jobs.fetch_add(1, std::memory_order_relaxed);
        const sim::Machine& base = job.golden->ladder.base();
        job.result.scenario = job.scenario;
        job.result.golden = job.golden->ref;
        std::vector<core::Fault> full =
            core::make_fault_list(base, job.golden->ref, job.cfg);
        job.fault_space = static_cast<std::uint32_t>(full.size());
        if (job.filter || opts_.fault_filter) {
            job.faults.clear();
            job.ordinals.clear();
            for (std::uint32_t i = 0; i < full.size(); ++i) {
                const bool take = job.filter ? job.filter(i, full[i])
                                             : opts_.fault_filter(full[i]);
                if (!take) continue;
                job.faults.push_back(full[i]);
                job.ordinals.push_back(i);
            }
        } else {
            job.faults = std::move(full);
        }
        job.result.records.resize(job.faults.size());
        job.budget = static_cast<std::uint64_t>(
                         static_cast<double>(job.golden->ref.total_retired) *
                         job.cfg.watchdog_factor) +
                     200'000;
        if (opts_.prune && !job.faults.empty()) {
            if (core::is_uncore_kind(job.cfg.uncore_kind)) {
                // Pruning's register-diff def-use walk has no theory of
                // cache-tag/cache-data/bus faults: decline cleanly and
                // simulate this job's whole fault list rather than risk a
                // silently mis-inferred outcome. The serep front end already
                // rejects prune+uncore (exit 3); this guards programmatic
                // callers.
                prune_declined_ += job.faults.size();
                if (tm::enabled())
                    tm::count("prune.uncore_declined", job.faults.size());
            } else {
                to_analyze.push_back(&job);
                continue; // tasks queued after the analysis phase below
            }
        }
        job.remaining.store(job.faults.size(), std::memory_order_relaxed);
        if (job.faults.empty()) {
            complete_job(job);
            continue;
        }
        simulated_runs_ += job.faults.size();
        if (tm::enabled()) tm::count("batch.runs_planned", job.faults.size());
        for (std::uint32_t i = 0; i < job.faults.size(); ++i)
            tasks.emplace_back(&job, i);
    }

    // Phase 2.5 (pruning only): one instrumented golden replay per job
    // classifies its whole fault list into equivalence classes — jobs in
    // parallel, like the golden runs themselves. Faults whose corruption
    // never reaches a "real use" get their records written here (inferred);
    // only class representatives join the injection task list, and each
    // representative's record is copied to its followers when it lands.
    {
        tm::Span phase("batch.prune_analyze");
        pool.parallel_for(to_analyze.size(), [&](std::size_t a) {
            JobState& job = *to_analyze[a];
            tm::Span span("prune:" + job.scenario.name());
            job.prune = std::make_unique<prune::PruneAnalysis>(
                prune::analyze(job.scenario, opts_.engine, job.faults));
        });
    }
    for (JobState* jp : to_analyze) {
        JobState& job = *jp;
        const prune::PruneAnalysis& pa = *job.prune;
        job.followers.assign(job.faults.size(), {});
        std::size_t reps = 0, follows = 0;
        for (std::uint32_t i = 0; i < job.faults.size(); ++i) {
            const prune::FaultPlan& p = pa.plan[i];
            switch (p.action) {
            case prune::FaultPlan::Action::Simulate:
                ++reps;
                break;
            case prune::FaultPlan::Action::Follow:
                ++follows;
                job.followers[p.rep].push_back(i);
                break;
            case prune::FaultPlan::Action::Infer: {
                core::FaultRecord rec;
                rec.fault = job.faults[i];
                rec.outcome = p.outcome;
                rec.retired = p.retired;
                rec.inferred = true;
                job.result.records[i] = rec;
                break;
            }
            }
        }
        simulated_runs_ += reps;
        inferred_records_ += job.faults.size() - reps;
        if (tm::enabled()) {
            tm::count("prune.simulated", reps);
            tm::count("prune.followed", follows);
            tm::count("prune.inferred", job.faults.size() - reps - follows);
            tm::count("batch.runs_planned", reps);
        }
        // The verify sample clones from this job's ladder after the job
        // completes; hold an extra golden reference so complete_job cannot
        // trim the rungs first.
        if (opts_.prune_verify > 0)
            job.golden->active_jobs.fetch_add(1, std::memory_order_relaxed);
        job.remaining.store(reps, std::memory_order_relaxed);
        if (reps == 0) {
            complete_job(job);
            continue;
        }
        for (std::uint32_t i = 0; i < job.faults.size(); ++i)
            if (pa.plan[i].action == prune::FaultPlan::Action::Simulate)
                tasks.emplace_back(&job, i);
    }

    // Phase 3: every job's injection runs interleaved on one pool. Each run
    // resumes from the deepest ladder rung at or before its strike instant.
    {
        tm::Span phase("batch.inject");
        pool.parallel_for(tasks.size(), [&](std::size_t t) {
            JobState& job = *tasks[t].first;
            const std::uint32_t i = tasks[t].second;
            const core::Fault& f = job.faults[i];
            sim::Machine run = job.golden->ladder.clone_nearest(f.at_retired);
            const std::uint64_t clone_retired = run.total_retired();
            ff_retired_.fetch_add(f.at_retired - clone_retired,
                                  std::memory_order_relaxed);
            run.run_until(f.at_retired);
            core::apply_fault(run, f.target);
            run.run_until(job.budget);
            const bool watchdog = run.status() == sim::RunStatus::Running;
            core::FaultRecord rec;
            rec.fault = f;
            rec.outcome = core::classify(run, job.golden->ref, watchdog);
            rec.retired = run.total_retired();
            job.result.records[i] = rec;
            if (tm::enabled()) {
                static const tm::MetricId kSteps = tm::counter_id("engine.steps");
                static const tm::MetricId kRuns =
                    tm::counter_id("batch.fault_runs");
                // Clone caches carry the rung's warm counts, so only the step
                // delta and the copy-reset trace stats are per-run facts here.
                tm::count(kSteps, run.total_retired() - clone_retired);
                tm::count(kRuns);
                fold_trace_stats(run);
            }
            // Pruning: every member of this representative's equivalence class
            // has a bit-identical faulty future, so its record is this one
            // with the fault field swapped and inferred provenance.
            if (job.prune)
                for (std::uint32_t fi : job.followers[i]) {
                    core::FaultRecord frec = rec;
                    frec.fault = job.faults[fi];
                    frec.inferred = true;
                    job.result.records[fi] = frec;
                }
            // Phase 4: the finisher merges counts and streams the job in order.
            if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
                complete_job(job);
        });
    }

    // Phase 3.5 (prune=verify): re-simulate a seeded sample of the
    // pruning-derived records and demand bit-identical outcome + retired
    // count. Sampling is deterministic (cfg.seed), so CI and a laptop check
    // the same faults. Mismatches are collected and thrown from run_all()
    // after every job has flushed — the databases on disk stay complete for
    // post-mortem diffing.
    if (opts_.prune && opts_.prune_verify > 0) {
        struct VerifyTask {
            JobState* job;
            std::uint32_t i;
        };
        std::vector<VerifyTask> vtasks;
        for (std::size_t j : wave_jobs) {
            JobState& job = *jobs_[j];
            if (!job.prune) continue;
            std::vector<std::uint32_t> derived;
            for (std::uint32_t i = 0; i < job.faults.size(); ++i)
                if (job.prune->plan[i].action !=
                    prune::FaultPlan::Action::Simulate)
                    derived.push_back(i);
            // Partial Fisher-Yates: the first k entries become the sample.
            util::Rng rng(job.cfg.seed ^ 0x7072756e65ULL); // "prune"
            const std::size_t k =
                std::min<std::size_t>(opts_.prune_verify, derived.size());
            for (std::size_t s = 0; s < k; ++s) {
                const std::size_t pick =
                    s + static_cast<std::size_t>(rng.below(derived.size() - s));
                std::swap(derived[s], derived[pick]);
                vtasks.push_back({&job, derived[s]});
            }
        }
        tm::Span phase("batch.prune_verify");
        std::atomic<std::size_t> verified{0};
        pool.parallel_for(vtasks.size(), [&](std::size_t t) {
            JobState& job = *vtasks[t].job;
            const std::uint32_t i = vtasks[t].i;
            const core::Fault& f = job.faults[i];
            sim::Machine run = job.golden->ladder.clone_nearest(f.at_retired);
            run.run_until(f.at_retired);
            core::apply_fault(run, f.target);
            run.run_until(job.budget);
            const bool watchdog = run.status() == sim::RunStatus::Running;
            const core::Outcome outcome =
                core::classify(run, job.golden->ref, watchdog);
            const std::uint64_t retired = run.total_retired();
            const core::FaultRecord& rec = job.result.records[i];
            if (outcome == rec.outcome && retired == rec.retired) {
                verified.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            std::lock_guard<std::mutex> lk(verify_mu_);
            verify_failures_.push_back(
                job.scenario.name() + " fault " + std::to_string(i) +
                " (at=" + std::to_string(f.at_retired) +
                "): recorded " + core::outcome_name(rec.outcome) + "/" +
                std::to_string(rec.retired) + ", simulated " +
                core::outcome_name(outcome) + "/" + std::to_string(retired));
        });
        verified_records_ += verified.load(std::memory_order_relaxed);
        if (tm::enabled())
            tm::count("prune.verified", verified.load(std::memory_order_relaxed));
        for (std::size_t j : wave_jobs)
            if (jobs_[j]->prune) drop_golden_ref(jobs_[j]->golden);
    }
}

std::uint32_t BatchRunner::job_fault_space(std::size_t j) const {
    return jobs_.at(j)->fault_space;
}

const std::vector<std::uint32_t>& BatchRunner::job_ordinals(std::size_t j) const {
    return jobs_.at(j)->ordinals;
}

std::vector<core::CampaignResult> BatchRunner::run_all() {
    const std::size_t first = next_flush_; // jobs before this already ran
    Scheduler& pool = scheduler();

    // Consecutive pending jobs are grouped into waves spanning at most
    // kMaxLaddersInFlight distinct scenarios each, so the snapshot memory
    // budget holds at any batch size (130-scenario full campaigns included).
    std::size_t cursor = first;
    while (cursor < jobs_.size()) {
        std::vector<std::size_t> wave;
        std::vector<std::string> wave_keys;
        while (cursor < jobs_.size()) {
            const std::string key = golden_key(jobs_[cursor]->scenario);
            bool seen = false;
            for (const auto& k : wave_keys) seen = seen || k == key;
            if (!seen) {
                if (wave_keys.size() == kMaxLaddersInFlight) break;
                wave_keys.push_back(key);
            }
            wave.push_back(cursor++);
        }
        run_wave(wave, pool);
    }

    if (!verify_failures_.empty()) {
        std::string msg = "prune verify: " +
                          std::to_string(verify_failures_.size()) +
                          " of " + std::to_string(verified_records_ +
                                                  verify_failures_.size()) +
                          " sampled inferred records diverge from simulation:";
        for (const std::string& f : verify_failures_) msg += "\n  " + f;
        throw util::Error(msg);
    }

    std::vector<core::CampaignResult> results;
    results.reserve(jobs_.size() - first);
    for (std::size_t j = first; j < jobs_.size(); ++j)
        results.push_back(std::move(jobs_[j]->result));
    return results;
}

} // namespace serep::orch
