#include "orch/checkpoint.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace serep::orch {

namespace {
/// Auto-mode starting stride; doubles via thinning on long runs.
constexpr std::uint64_t kAutoInitialStride = 1u << 16;

/// Keep rungs r2, r4, ... of r1..rk (equivalent to keeping every other rung
/// of the base-rooted ladder [base, r1, r2, ...]).
template <typename T>
void drop_every_other(std::vector<T>& rungs) {
    std::vector<T> kept;
    kept.reserve(rungs.size() / 2);
    for (std::size_t i = 1; i < rungs.size(); i += 2)
        kept.push_back(std::move(rungs[i]));
    rungs = std::move(kept);
}
} // namespace

CheckpointLadder::CheckpointLadder(sim::Machine& m, const LadderOptions& opts)
    : base_(m), delta_mode_(opts.delta_snapshots),
      budget_bytes_(opts.memory_budget_bytes) {
    // From here on, m's dirty set is exactly "written since the base rung" —
    // what make_machine_delta() diffs against the base.
    m.mem().clear_dirty();
    if (delta_mode_) {
        // Delta rungs have data-dependent sizes; the byte budget is enforced
        // dynamically in enforce_budgets() instead of precomputed.
        max_rungs_ = std::max<std::size_t>(1, opts.max_checkpoints);
    } else {
        const std::size_t per_rung = sim::machine_footprint_bytes(m);
        const std::size_t by_memory =
            std::max<std::size_t>(1, opts.memory_budget_bytes / per_rung);
        max_rungs_ =
            std::max<std::size_t>(1, std::min(opts.max_checkpoints, by_memory));
    }
    stride_ = !opts.enabled ? 0
              : opts.stride ? opts.stride
                            : kAutoInitialStride;
    peak_ = footprint_bytes();
}

std::uint64_t CheckpointLadder::last_retired() const noexcept {
    if (!deltas_.empty()) return deltas_.back().retired();
    if (!full_.empty()) return full_.back().total_retired();
    return base_ ? base_->total_retired() : 0;
}

void CheckpointLadder::offer(sim::Machine& m) {
    if (stride_ == 0 || !base_) return;
    if (m.total_retired() < last_retired() + stride_) return;
    if (delta_mode_)
        deltas_.push_back(sim::make_machine_delta(m, *base_));
    else
        full_.push_back(m);
    if (telemetry::enabled()) {
        static const telemetry::MetricId kRungs =
            telemetry::counter_id("checkpoint.rungs_built");
        static const telemetry::MetricId kBytes =
            telemetry::counter_id("checkpoint.rung_bytes");
        telemetry::count(kRungs);
        telemetry::count(kBytes,
                         delta_mode_ ? deltas_.back().footprint_bytes()
                                     : sim::machine_footprint_bytes(full_.back()));
    }
    enforce_budgets();
    peak_ = std::max(peak_, footprint_bytes());
}

void CheckpointLadder::enforce_budgets() {
    while (checkpoints() > max_rungs_ ||
           (checkpoints() > 1 && footprint_bytes() > budget_bytes_)) {
        // Over budget: keep every other rung, double the effective stride.
        drop_every_other(full_);
        drop_every_other(deltas_);
        stride_ *= 2;
    }
}

std::uint64_t CheckpointLadder::nearest_retired(std::uint64_t at) const noexcept {
    for (std::size_t i = deltas_.size(); i-- > 0;)
        if (deltas_[i].retired() <= at) return deltas_[i].retired();
    for (std::size_t i = full_.size(); i-- > 0;)
        if (full_[i].total_retired() <= at) return full_[i].total_retired();
    return base_ ? base_->total_retired() : 0;
}

sim::Machine CheckpointLadder::clone_nearest(std::uint64_t at) const {
    if (telemetry::enabled()) {
        static const telemetry::MetricId kRestores =
            telemetry::counter_id("checkpoint.restores");
        telemetry::count(kRestores);
    }
    // Deepest rung with total_retired() <= at; rungs are ascending.
    for (std::size_t i = deltas_.size(); i-- > 0;)
        if (deltas_[i].retired() <= at)
            return sim::restore_machine_delta(deltas_[i], *base_);
    for (std::size_t i = full_.size(); i-- > 0;)
        if (full_[i].total_retired() <= at) return full_[i];
    return *base_;
}

std::uint64_t CheckpointLadder::next_boundary() const noexcept {
    if (stride_ == 0) return ~std::uint64_t{0};
    return last_retired() + stride_;
}

void CheckpointLadder::release_all() {
    base_.reset();
    full_.clear();
    deltas_.clear();
}

void CheckpointLadder::reset_base(sim::Machine m) {
    full_.clear();
    deltas_.clear();
    base_.emplace(std::move(m));
}

std::size_t CheckpointLadder::footprint_bytes() const noexcept {
    std::size_t total = base_ ? sim::machine_footprint_bytes(*base_) : 0;
    for (const auto& r : full_) total += sim::machine_footprint_bytes(r);
    for (const auto& d : deltas_) total += d.footprint_bytes();
    return total;
}

CheckpointLadder run_golden_with_ladder(sim::Machine& m, const LadderOptions& opts,
                                        std::uint64_t stop_at) {
    LadderOptions eff = opts;
    if (eff.enabled && eff.stride == 0 && eff.adaptive) {
        // Adaptive stride: measure this scenario's golden run length on a
        // throwaway clone, then space max_checkpoints rungs evenly across
        // it. Deterministic (the probe is a faultless run), so checkpoint
        // positions — and therefore outcomes — stay reproducible.
        sim::Machine probe = m;
        probe.run_until(stop_at);
        if (probe.status() != sim::RunStatus::Running &&
            probe.total_retired() > 0) {
            const std::size_t rungs = std::max<std::size_t>(1, eff.max_checkpoints);
            eff.stride = std::max<std::uint64_t>(
                1, (probe.total_retired() + rungs - 1) / rungs);
        }
    }
    CheckpointLadder ladder(m, eff);
    // Drive pauses off the ladder's *current* stride (not the initial one):
    // after thinning doubles the stride, the golden run pauses coarser too,
    // so a fine starting stride costs O(max_checkpoints * log) pauses, not
    // O(run_length / initial_stride).
    //
    // Rung alignment holds under every engine: run_until(boundary) stops at
    // exactly `boundary` retired instructions — the trace engine clips its
    // superblock budget to the instructions left before stop_at (a rung
    // never lands mid-trace), and the cached engine's burst re-checks the
    // budget per step — so rung snapshots are engine-independent states.
    while (m.status() == sim::RunStatus::Running && m.total_retired() < stop_at) {
        const std::uint64_t boundary = ladder.next_boundary();
        m.run_until(std::min(boundary, stop_at));
        if (m.status() == sim::RunStatus::Running && m.total_retired() < stop_at)
            ladder.offer(m);
    }
    return ladder;
}

} // namespace serep::orch
