#include "orch/checkpoint.hpp"

#include <algorithm>

namespace serep::orch {

namespace {
/// Auto-mode starting stride; doubles via thinning on long runs.
constexpr std::uint64_t kAutoInitialStride = 1u << 16;
} // namespace

CheckpointLadder::CheckpointLadder(const sim::Machine& m, const LadderOptions& opts) {
    rungs_.push_back(m);
    const std::size_t per_rung = sim::machine_footprint_bytes(m);
    const std::size_t by_memory =
        std::max<std::size_t>(1, opts.memory_budget_bytes / per_rung);
    max_rungs_ = std::max<std::size_t>(1, std::min(opts.max_checkpoints, by_memory));
    stride_ = !opts.enabled ? 0
              : opts.stride ? opts.stride
                            : kAutoInitialStride;
}

void CheckpointLadder::offer(const sim::Machine& m) {
    if (stride_ == 0) return;
    if (m.total_retired() < rungs_.back().total_retired() + stride_) return;
    rungs_.push_back(m);
    while (checkpoints() > max_rungs_) {
        // Over budget: keep every other rung, double the effective stride.
        std::vector<sim::Machine> kept;
        kept.reserve(rungs_.size() / 2 + 1);
        for (std::size_t i = 0; i < rungs_.size(); i += 2)
            kept.push_back(std::move(rungs_[i]));
        rungs_ = std::move(kept);
        stride_ *= 2;
    }
}

const sim::Machine& CheckpointLadder::nearest(std::uint64_t at) const noexcept {
    // Deepest rung with total_retired() <= at; rungs are ascending.
    std::size_t best = 0;
    for (std::size_t i = rungs_.size(); i-- > 0;) {
        if (rungs_[i].total_retired() <= at) {
            best = i;
            break;
        }
    }
    return rungs_[best];
}

std::uint64_t CheckpointLadder::next_boundary() const noexcept {
    if (stride_ == 0) return ~std::uint64_t{0};
    return rungs_.back().total_retired() + stride_;
}

void CheckpointLadder::reset_base(sim::Machine m) {
    rungs_.clear();
    rungs_.push_back(std::move(m));
}

std::size_t CheckpointLadder::footprint_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& r : rungs_) total += sim::machine_footprint_bytes(r);
    return total;
}

CheckpointLadder run_golden_with_ladder(sim::Machine& m, const LadderOptions& opts,
                                        std::uint64_t stop_at) {
    CheckpointLadder ladder(m, opts);
    // Drive pauses off the ladder's *current* stride (not the initial one):
    // after thinning doubles the stride, the golden run pauses coarser too,
    // so a fine starting stride costs O(max_checkpoints * log) pauses, not
    // O(run_length / initial_stride).
    while (m.status() == sim::RunStatus::Running && m.total_retired() < stop_at) {
        const std::uint64_t boundary = ladder.next_boundary();
        m.run_until(std::min(boundary, stop_at));
        if (m.status() == sim::RunStatus::Running && m.total_retired() < stop_at)
            ladder.offer(m);
    }
    return ladder;
}

} // namespace serep::orch
