// Cross-process fault-space sharding with mergeable outcome databases.
//
// The paper's campaign is ~1.2M injections across 130 scenarios — beyond one
// process. The shard layer splits it without giving up the repo's core
// invariant (bit-identical outcome databases for a given seed):
//
//  * ShardPlan deterministically assigns every fault to exactly one of N
//    shards by a *stable content id* (a hash of the fault's strike instant
//    and target), not by fault-list position — so re-partitioning the same
//    campaign into a different N never changes which run a fault gets or
//    its classification, only where it executes.
//  * run_shard() executes one shard of a job list against a BatchRunner
//    fault filter and writes a self-contained outcome database: one JSONL
//    manifest line (magic, shard index/count, a config hash over the exact
//    job list, and each job's golden reference) followed by one record line
//    per injected fault carrying its full-fault-list ordinal.
//  * merge_shards() validates the manifests (same config hash, complete and
//    disjoint shard cover, identical golden references), reassembles each
//    job's record array by ordinal, and emits the same merged CSV / JSONL
//    BatchRunner streams for an unsharded run — byte-identical, which
//    orch_test and CI assert.
//
// Shards can run in separate processes or on separate hosts; the database
// files are plain text and order-independent under merge.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "orch/batch_runner.hpp"

namespace serep::orch {

/// Stable content id of a fault: depends only on the strike instant and the
/// target, never on list order or shard count.
std::uint64_t fault_id(const core::Fault& f) noexcept;

/// Deterministic 1-of-N assignment of the fault space.
struct ShardPlan {
    unsigned index = 0;
    unsigned count = 1;

    bool owns(const core::Fault& f) const noexcept {
        return count <= 1 || fault_id(f) % count == index;
    }
};

/// Work-weighted 1-of-N assignment. The uniform ShardPlan gives every shard
/// ~1/N of *each* job's faults, so every shard pays the golden-run and
/// ladder cost of *every* scenario. The weighted plan instead slices the
/// campaign as one line of per-job work (weight ~ measured golden-run
/// length x fault count) cut into N equal-work pieces: most jobs land
/// wholly on one shard (no redundant goldens), only the jobs straddling a
/// cut are split — by contiguous ranges of `fault_id(f) % resolution`, so
/// ownership still depends only on fault content. Cut points are exact and
/// monotone; the N plans of a campaign always cover every fault exactly
/// once, and the shard databases merge with the ordinary merge_shards().
struct WeightedShardPlan {
    unsigned index = 0;
    unsigned count = 1;
    std::uint32_t resolution = 1u << 20; ///< id-space granularity of cuts
    /// This shard's [lo, hi) slice of each job's id space.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> job_ranges;
    /// Hash of the complete cut matrix (every shard's ranges) — identical on
    /// every shard built from the same weights/count/resolution. Written to
    /// the shard manifest as the partition id, so databases cut by
    /// different schemes (uniform vs weighted, or differently weighted)
    /// refuse to blend in `serep report` instead of silently double-counting
    /// or dropping faults.
    std::uint64_t partition_hash = 0;

    bool owns(std::size_t job, const core::Fault& f) const noexcept {
        const auto& r = job_ranges[job];
        const std::uint32_t id =
            static_cast<std::uint32_t>(fault_id(f) % resolution);
        return r.first <= id && id < r.second;
    }
};

/// Build shard `index` of `count`'s weighted plan from per-job weights
/// (any positive scale; probe_job_weights() supplies golden-length-based
/// ones). Weights <= 0 are treated as empty jobs.
WeightedShardPlan make_weighted_plan(const std::vector<double>& weights,
                                     unsigned index, unsigned count,
                                     std::uint32_t resolution = 1u << 20);

/// One campaign job, the unit both sharded and unsharded runs agree on.
struct ShardJobSpec {
    npb::Scenario scenario;
    core::CampaignConfig cfg;
};

/// Measured per-job work weights for make_weighted_plan(): golden-run
/// length (one throwaway probe execution per distinct scenario, the same
/// probe the adaptive checkpoint stride runs) x the job's fault count.
std::vector<double> probe_job_weights(const std::vector<ShardJobSpec>& jobs);

/// Scenario subset selection shared by full_campaign and the serep tool.
/// Empty strings match everything; names follow the CLI convention:
/// isa "v7"/"v8", npb::api_name ("SER"/"OMP"/"MPI"), npb::app_name ("EP", ...).
struct CampaignFilter {
    std::string isa, api, app;
    npb::Klass klass = npb::Klass::S;
};
std::vector<npb::Scenario> filter_scenarios(const CampaignFilter& f);

/// Strict problem-class parse ("Mini" / "S" / "W"); throws util::Error on
/// anything else, so a typo cannot silently select a different campaign.
npb::Klass parse_klass(const std::string& name);

/// Hash over the exact job list (scenarios + campaign configs). Two shard
/// databases merge only if their hashes match: same jobs, same seeds, same
/// fault-space parameters.
std::uint64_t campaign_config_hash(const std::vector<ShardJobSpec>& jobs);

struct ShardRunStats {
    std::size_t owned = 0;       ///< fault records this shard wrote
    std::size_t fault_space = 0; ///< total faults across all jobs
    /// Records whose outcome was derived by equivalence pruning instead of
    /// simulated (0 unless BatchOptions::prune was on). Actually-simulated
    /// runs = owned - inferred.
    std::size_t inferred = 0;
};

/// Optional experiment provenance written into the shard manifest
/// ("experiment" + "spec_hash" keys) — the exp::Driver's resume key: a
/// database at a spec's shard path is reused only when its spec hash
/// matches. Readers that predate these keys ignore them; merge
/// compatibility is still governed by config hash + partition id.
struct ShardDbAnnotation {
    std::string experiment; ///< ExperimentSpec name
    std::string spec_hash;  ///< ExperimentSpec::spec_hash_hex()
};

/// Run shard `plan` of `jobs` on a BatchRunner configured from `opts`
/// (opts.fault_filter is overwritten with the plan) and write the shard's
/// outcome database to `os`.
ShardRunStats run_shard(const std::vector<ShardJobSpec>& jobs, const ShardPlan& plan,
                        BatchOptions opts, std::ostream& os,
                        const ShardDbAnnotation* note = nullptr);

/// Weighted variant: same database format, same merge path — only the
/// fault-to-shard assignment differs (plan.job_ranges per job). The N
/// weighted shard databases of one campaign merge byte-identically to the
/// unsharded run, exactly like uniform shards.
ShardRunStats run_shard(const std::vector<ShardJobSpec>& jobs,
                        const WeightedShardPlan& plan, BatchOptions opts,
                        std::ostream& os,
                        const ShardDbAnnotation* note = nullptr);

/// Merge shard databases (file *contents*, any order). Validates manifests
/// and record cover, returns the per-job results in job order, and — when
/// sinks are given — streams the merged per-fault CSV and per-campaign
/// JSONL exactly as BatchRunner does for an unsharded run. Throws
/// util::Error on any inconsistency (config-hash mismatch, missing or
/// duplicate shard, golden-reference divergence, uncovered or
/// double-covered fault ordinals).
std::vector<core::CampaignResult> merge_shards(
    const std::vector<std::string>& shard_dbs, std::ostream* csv_sink = nullptr,
    std::ostream* jsonl_sink = nullptr);

} // namespace serep::orch
