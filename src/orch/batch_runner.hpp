// Campaign batch orchestrator (the paper's cluster job manager, in-process).
//
// BatchRunner takes a list of Scenario x CampaignConfig jobs and runs them as
// one workload on a single work-stealing pool:
//   * golden executions are cached per scenario — two jobs on the same
//     scenario share one golden run and one checkpoint ladder,
//   * every job's fault runs are interleaved on the shared pool, so a batch
//     of skewed campaigns keeps all host threads busy,
//   * injection runs start from the nearest checkpoint-ladder rung instead of
//     fast-forwarding from reset (see orch/checkpoint.hpp),
//   * finished campaigns stream to optional CSV / JSONL sinks in job order.
//
// Invariant (inherited from the legacy runner and covered by orch_test):
// CampaignResult::counts and campaign_csv output are bit-identical for a
// given seed regardless of pool width or checkpoint stride.
#pragma once

#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "core/campaign.hpp"
#include "orch/checkpoint.hpp"
#include "orch/scheduler.hpp"

namespace serep::orch {

/// Cache identity of a scenario's golden run: everything that changes the
/// executed instruction stream. Scenario::name() omits klass and the fma
/// flag, so they are appended. Shared by the BatchRunner golden cache and
/// the weighted-shard probe so the two can never disagree about which jobs
/// share a golden execution.
std::string scenario_cache_key(const npb::Scenario& s);

/// Distinct scenarios whose checkpoint ladders may be live at once. The
/// batch runner processes jobs in waves of at most this many scenarios and
/// splits LadderOptions::memory_budget_bytes across them; anything that
/// retains ladders across run_all() calls (the stats sizer's chunks) must
/// bound itself by the same constant or the budget argument breaks.
inline constexpr std::size_t kMaxLaddersInFlight = 16;

struct BatchOptions {
    unsigned threads = 0; ///< pool width; 0 = the shared process-wide pool
    LadderOptions ladder; ///< checkpoint-ladder knobs (batch-wide)
    /// Execution engine for golden and fault runs. Outcomes are bit-identical
    /// across all three (gated in tests and CI); Cached is ~1.5-2x faster
    /// than Switch, Trace another ~2x over Cached on multi-core scenarios
    /// (superblocks + tick-horizon bursts). The scenario's decode-once
    /// ExecCache is built with the golden machine and shared by every clone
    /// the checkpoint ladder materializes.
    sim::Engine engine = sim::Engine::Cached;
    /// Fault-space sharding hook: when set, each job still generates its
    /// full deterministic fault list (phase 2), but only the faults the
    /// filter accepts are injected; their positions in the full list are
    /// kept as per-job ordinals (job_ordinals) so a merger can reassemble
    /// the unsharded record array. Golden runs are unaffected. A per-job
    /// filter passed to add() takes precedence over this batch-wide one.
    std::function<bool(const core::Fault&)> fault_filter;
    /// Keep each scenario's checkpoint ladder alive after its last job of a
    /// run_all() completes, so a later batch on the same runner resumes from
    /// real rungs instead of a from-reset base. Used by the sequential
    /// (confidence-driven) campaign sizer, which re-queues the same
    /// scenarios round after round; costs one ladder of memory per distinct
    /// scenario until the runner dies, so leave it off for one-shot batches.
    bool retain_ladders = false;
    /// Fault-equivalence pruning (src/prune/): replay each job's golden run
    /// once with the def-use tracer attached, simulate one representative
    /// per equivalence class, and derive the rest — records carry
    /// FaultRecord::inferred. Outcome counts and report bytes are identical
    /// to the unpruned run (the analyzer is exact, and gated in CI); only
    /// per-fault provenance differs.
    bool prune = false;
    /// With prune: re-simulate up to this many pruning-derived records per
    /// job (seeded, deterministic sample) after the job completes and
    /// compare outcome + retired count. Any mismatch makes run_all() throw
    /// util::Error once all jobs have flushed. 0 = no verification.
    unsigned prune_verify = 0;
};

class BatchRunner {
public:
    /// Per-job fault filter: receives each fault's full-list ordinal plus
    /// the fault itself, so callers can select exact list positions (the
    /// sequential sizer's content-id prefixes) as well as content-keyed
    /// subsets (weighted shard ranges).
    using JobFaultFilter = std::function<bool(std::uint32_t, const core::Fault&)>;

    explicit BatchRunner(BatchOptions opts = {});
    ~BatchRunner();

    /// Queue one campaign; returns its job index (also its result index).
    /// A non-null `filter` overrides BatchOptions::fault_filter for this job.
    std::size_t add(const npb::Scenario& s, const core::CampaignConfig& cfg,
                    JobFaultFilter filter = nullptr);

    /// Merged per-fault CSV rows, one header for the whole batch.
    void set_csv_sink(std::ostream* os) { csv_sink_ = os; }
    /// One JSON object per campaign, newline-delimited (JSONL).
    void set_json_sink(std::ostream* os) { json_sink_ = os; }

    /// Run all queued jobs; returns results in add() order. Jobs may be
    /// queued and run again on the same runner; the golden cache persists.
    std::vector<core::CampaignResult> run_all();

    /// Golden executions actually performed (cache-miss counter; test hook
    /// for the one-golden-run-per-scenario guarantee).
    std::size_t golden_executions() const noexcept { return golden_runs_; }

    /// Instructions replayed to position injection clones at their strike
    /// instants (checkpoint -> strike fast-forward). Deterministic for a
    /// given seed and ladder config: the ladder's benefit is exactly the
    /// reduction of this number vs the stride-disabled path, which is how
    /// bench_speedup gates the >= 1.5x claim without wall-clock flakiness.
    std::uint64_t fast_forward_retired() const noexcept {
        return ff_retired_.load(std::memory_order_relaxed);
    }

    /// Injection runs actually executed across all jobs so far. Without
    /// pruning this equals the total record count; with pruning it is the
    /// number of class representatives (the denominator of the >= 3.5x
    /// job-reduction gate in CI).
    std::size_t simulated_runs() const noexcept { return simulated_runs_; }
    /// Records whose outcome was derived by pruning instead of simulated.
    std::size_t inferred_records() const noexcept { return inferred_records_; }
    /// Fault runs pruning declined to analyze because their job targets an
    /// uncore fault space (they were all simulated; see run_wave). The
    /// driver logs the decline reason when this is non-zero.
    std::size_t prune_declined() const noexcept { return prune_declined_; }
    /// Pruning-derived records re-simulated by the verify sample (and found
    /// to match — a mismatch throws from run_all()).
    std::size_t verified_records() const noexcept { return verified_records_; }

    /// Size of job j's full (pre-filter) fault list. Equals the record count
    /// unless a fault_filter is installed. Valid after run_all().
    std::uint32_t job_fault_space(std::size_t j) const;
    /// Global fault-list ordinal of each record of job j (ordinals[i] is the
    /// position record i held in the full list). Empty when no filter is
    /// installed (identity mapping). Valid after run_all().
    const std::vector<std::uint32_t>& job_ordinals(std::size_t j) const;

    Scheduler& scheduler() noexcept {
        return own_pool_ ? *own_pool_ : Scheduler::instance();
    }

private:
    struct GoldenEntry;
    struct JobState;

    GoldenEntry* golden_for(const npb::Scenario& s);
    void run_wave(const std::vector<std::size_t>& wave_jobs, Scheduler& pool);
    void complete_job(JobState& job);
    void drop_golden_ref(GoldenEntry* golden);
    void flush_ready();

    BatchOptions opts_;
    std::unique_ptr<Scheduler> own_pool_;
    std::vector<std::pair<std::string, std::unique_ptr<GoldenEntry>>> golden_cache_;
    std::vector<std::unique_ptr<JobState>> jobs_;
    std::size_t golden_runs_ = 0;
    std::ostream* csv_sink_ = nullptr;
    std::ostream* json_sink_ = nullptr;
    std::mutex flush_mu_;
    std::size_t next_flush_ = 0;
    bool csv_header_written_ = false;
    std::atomic<std::uint64_t> ff_retired_{0};
    std::size_t simulated_runs_ = 0;
    std::size_t inferred_records_ = 0;
    std::size_t prune_declined_ = 0;
    std::size_t verified_records_ = 0;
    /// Verify-sample mismatches ("job f<ordinal>: recorded X, simulated Y");
    /// reported as one util::Error at the end of run_all().
    std::vector<std::string> verify_failures_;
    std::mutex verify_mu_;
};

} // namespace serep::orch
