#include "orch/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "npb/npb.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/zframe.hpp"

namespace serep::orch {

namespace {

using util::fnv1a_str;
using util::fnv1a_u64;

using npb::klass_name;

npb::Klass klass_from_name(const std::string& s) {
    for (npb::Klass k : {npb::Klass::Mini, npb::Klass::S, npb::Klass::W})
        if (s == klass_name(k)) return k;
    throw util::ValidationError("unknown problem class '" + s +
                                "' (expected Mini, S, or W)");
}

isa::Profile profile_from_name(const std::string& s) {
    for (isa::Profile p : {isa::Profile::V7, isa::Profile::V8})
        if (s == isa::profile_name(p)) return p;
    throw util::ValidationError("shard: unknown ISA profile '" + s + "'");
}

npb::App app_from_name(const std::string& s) {
    for (npb::App a : npb::kAllApps)
        if (s == npb::app_name(a)) return a;
    throw util::ValidationError("shard: unknown application '" + s + "'");
}

npb::Api api_from_name(const std::string& s) {
    for (npb::Api a : {npb::Api::Serial, npb::Api::OMP, npb::Api::MPI})
        if (s == npb::api_name(a)) return a;
    throw util::ValidationError("shard: unknown API '" + s + "'");
}

std::string hash_hex(std::uint64_t h) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

constexpr const char* kMagic = "serep-shard";
constexpr std::uint64_t kVersion = 1;

} // namespace

std::uint64_t fault_id(const core::Fault& f) noexcept {
    std::uint64_t h = util::kFnvOffset;
    fnv1a_u64(h, f.at_retired);
    fnv1a_u64(h, static_cast<std::uint64_t>(f.target.kind));
    fnv1a_u64(h, f.target.core);
    fnv1a_u64(h, f.target.reg);
    fnv1a_u64(h, f.target.bit);
    fnv1a_u64(h, f.target.phys);
    return h;
}

std::vector<npb::Scenario> filter_scenarios(const CampaignFilter& f) {
    std::vector<npb::Scenario> out;
    for (const npb::Scenario& s : npb::paper_scenarios(f.klass)) {
        if (!f.isa.empty() && f.isa != isa::profile_short_name(s.isa))
            continue;
        if (!f.api.empty() && f.api != npb::api_name(s.api)) continue;
        if (!f.app.empty() && f.app != npb::app_name(s.app)) continue;
        out.push_back(s);
    }
    return out;
}

npb::Klass parse_klass(const std::string& name) {
    for (npb::Klass k : {npb::Klass::Mini, npb::Klass::S, npb::Klass::W})
        if (name == klass_name(k)) return k;
    // CLI path: a typo is a usage error, not a data-validation one.
    util::fail_usage("unknown problem class '" + name +
                     "' (expected Mini, S, or W)");
}

std::uint64_t campaign_config_hash(const std::vector<ShardJobSpec>& jobs) {
    std::uint64_t h = util::kFnvOffset;
    fnv1a_u64(h, jobs.size());
    for (const ShardJobSpec& j : jobs) {
        fnv1a_str(h, j.scenario.name());
        fnv1a_u64(h, static_cast<std::uint64_t>(j.scenario.klass));
        fnv1a_u64(h, j.scenario.contract_fma);
        fnv1a_u64(h, j.cfg.n_faults);
        fnv1a_u64(h, j.cfg.seed);
        std::uint64_t wd = 0;
        static_assert(sizeof wd == sizeof j.cfg.watchdog_factor, "");
        std::memcpy(&wd, &j.cfg.watchdog_factor, sizeof wd);
        fnv1a_u64(h, wd);
        fnv1a_u64(h, j.cfg.include_fp_regs);
        fnv1a_u64(h, j.cfg.memory_faults);
        // Folded only for uncore campaigns so every pre-uncore database
        // keeps its hash and stays mergeable.
        if (core::is_uncore_kind(j.cfg.uncore_kind))
            fnv1a_u64(h, static_cast<std::uint64_t>(j.cfg.uncore_kind));
    }
    return h;
}

namespace {

/// One job's contribution to a shard database. `golden`/`records`/`ordinals`
/// are null for jobs this shard does not own at all (possible only under a
/// weighted plan): the manifest then carries "golden": null and the merger
/// takes the golden reference from an owning shard.
struct ShardJobOutput {
    std::uint32_t fault_space = 0;
    const core::GoldenRef* golden = nullptr;
    const std::vector<core::FaultRecord>* records = nullptr;
    const std::vector<std::uint32_t>* ordinals = nullptr;
};

/// Shared back half of both run_shard variants: manifest + record lines.
/// `partition` identifies the fault-to-shard assignment scheme ("uniform",
/// or "weighted-<cut-matrix-hash>") so readers can refuse to blend
/// databases whose partitions do not tile the fault space together.
ShardRunStats write_shard_db(const std::vector<ShardJobSpec>& jobs,
                             unsigned index, unsigned count,
                             const std::string& partition,
                             const std::vector<ShardJobOutput>& outputs,
                             std::ostream& os,
                             const ShardDbAnnotation* note) {
    // Manifest line: everything a merger needs to validate compatibility and
    // rebuild the unsharded database.
    {
        util::JsonWriter w(os);
        w.begin_object();
        w.key("magic").value(kMagic);
        w.key("version").value(kVersion);
        w.key("shard").value(index);
        w.key("count").value(count);
        w.key("partition").value(partition);
        w.key("config_hash").value(hash_hex(campaign_config_hash(jobs)));
        if (note) {
            w.key("experiment").value(note->experiment);
            w.key("spec_hash").value(note->spec_hash);
            // Record-line count, so a resume check can tell a complete
            // database from one truncated by a killed worker.
            std::uint64_t records = 0;
            for (const ShardJobOutput& o : outputs)
                if (o.records) records += o.records->size();
            w.key("records").value(records);
        }
        w.key("jobs").begin_array();
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const ShardJobSpec& spec = jobs[j];
            w.begin_object();
            w.key("isa").value(isa::profile_name(spec.scenario.isa));
            w.key("app").value(npb::app_name(spec.scenario.app));
            w.key("api").value(npb::api_name(spec.scenario.api));
            w.key("cores").value(spec.scenario.cores);
            w.key("class").value(klass_name(spec.scenario.klass));
            w.key("fma").value(spec.scenario.contract_fma);
            w.key("n_faults").value(spec.cfg.n_faults);
            w.key("seed").value(spec.cfg.seed);
            w.key("watchdog").value(spec.cfg.watchdog_factor);
            w.key("fault_space").value(outputs[j].fault_space);
            if (outputs[j].golden) {
                w.key("golden").begin_object();
                w.key("total_retired").value(outputs[j].golden->total_retired);
                w.key("ticks").value(outputs[j].golden->ticks);
                w.key("app_start").value(outputs[j].golden->app_start);
                w.key("exit_code").value(outputs[j].golden->exit_code);
                w.end_object();
            } else {
                w.key("golden").value_null();
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    os << '\n';

    // Record lines: one per injected fault, keyed (job, full-list ordinal).
    ShardRunStats stats;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        stats.fault_space += outputs[j].fault_space;
        if (!outputs[j].records) continue;
        const std::vector<std::uint32_t>& ords = *outputs[j].ordinals;
        for (std::size_t i = 0; i < outputs[j].records->size(); ++i) {
            const core::FaultRecord& rec = (*outputs[j].records)[i];
            util::JsonWriter w(os);
            w.begin_object();
            w.key("job").value(static_cast<std::uint64_t>(j));
            w.key("ord").value(ords[i]);
            w.key("at").value(rec.fault.at_retired);
            w.key("kind").value(core::fault_kind_name(rec.fault.target.kind));
            w.key("core").value(rec.fault.target.core);
            w.key("reg").value(rec.fault.target.reg);
            w.key("bit").value(rec.fault.target.bit);
            w.key("phys").value(rec.fault.target.phys);
            w.key("outcome").value(core::outcome_name(rec.outcome));
            w.key("retired").value(rec.retired);
            // Emitted only when set, so unpruned shard databases stay
            // byte-identical to every release since PR 2.
            if (rec.inferred) {
                w.key("inferred").value(true);
                ++stats.inferred;
            }
            w.end_object();
            os << '\n';
            ++stats.owned;
        }
    }
    return stats;
}

} // namespace

ShardRunStats run_shard(const std::vector<ShardJobSpec>& jobs, const ShardPlan& plan,
                        BatchOptions opts, std::ostream& os,
                        const ShardDbAnnotation* note) {
    util::check_usage(plan.count >= 1 && plan.index < plan.count,
                      "run_shard: shard index out of range");
    util::check_usage(!jobs.empty(), "run_shard: empty job list");
    opts.fault_filter = [plan](const core::Fault& f) { return plan.owns(f); };
    BatchRunner runner(opts);
    for (const ShardJobSpec& j : jobs) runner.add(j.scenario, j.cfg);
    const std::vector<core::CampaignResult> results = runner.run_all();
    std::vector<ShardJobOutput> outputs(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        outputs[j] = {runner.job_fault_space(j), &results[j].golden,
                      &results[j].records, &runner.job_ordinals(j)};
    return write_shard_db(jobs, plan.index, plan.count, "uniform", outputs, os,
                          note);
}

ShardRunStats run_shard(const std::vector<ShardJobSpec>& jobs,
                        const WeightedShardPlan& plan, BatchOptions opts,
                        std::ostream& os, const ShardDbAnnotation* note) {
    util::check_usage(plan.count >= 1 && plan.index < plan.count,
                      "run_shard: shard index out of range");
    util::check_usage(!jobs.empty(), "run_shard: empty job list");
    util::check_usage(plan.job_ranges.size() == jobs.size(),
                      "run_shard: weighted plan covers a different job list");
    opts.fault_filter = nullptr; // ownership is per job below
    BatchRunner runner(opts);
    // Only jobs with a non-empty id range run here — that is the weighted
    // plan's payoff: this shard pays golden-run and ladder cost for its own
    // scenarios only. Unowned jobs appear in the manifest with
    // "golden": null and no records; the merger takes their golden
    // reference from the shard(s) that ran them (every job has one, since
    // the ranges tile the id space).
    std::vector<std::size_t> runner_idx(jobs.size(), SIZE_MAX);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (plan.job_ranges[j].first >= plan.job_ranges[j].second) continue;
        runner_idx[j] =
            runner.add(jobs[j].scenario, jobs[j].cfg,
                       [&plan, j](std::uint32_t, const core::Fault& f) {
                           return plan.owns(j, f);
                       });
    }
    const std::vector<core::CampaignResult> results = runner.run_all();
    std::vector<ShardJobOutput> outputs(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        // The fault list is exactly cfg.n_faults entries for every job
        // (make_fault_list draws a fixed count), so unowned jobs know their
        // fault space without running anything.
        outputs[j].fault_space = jobs[j].cfg.n_faults;
        if (runner_idx[j] == SIZE_MAX) continue;
        const core::CampaignResult& r = results[runner_idx[j]];
        outputs[j] = {runner.job_fault_space(runner_idx[j]), &r.golden,
                      &r.records, &runner.job_ordinals(runner_idx[j])};
    }
    return write_shard_db(jobs, plan.index, plan.count,
                          "weighted-" + hash_hex(plan.partition_hash), outputs,
                          os, note);
}

WeightedShardPlan make_weighted_plan(const std::vector<double>& weights,
                                     unsigned index, unsigned count,
                                     std::uint32_t resolution) {
    util::check_usage(count >= 1 && index < count,
                      "weighted plan: shard index out of range");
    util::check_usage(!weights.empty(), "weighted plan: empty weight list");
    util::check_usage(resolution >= 2, "weighted plan: resolution too small");
    double total = 0;
    for (double w : weights) total += w > 0 ? w : 0;

    WeightedShardPlan plan;
    plan.index = index;
    plan.count = count;
    plan.resolution = resolution;
    if (total <= 0) {
        // No information: degenerate to a uniform contiguous split.
        std::vector<double> uniform(weights.size(), 1.0);
        return make_weighted_plan(uniform, index, count, resolution);
    }

    // Cake-cutting: jobs laid end to end on [0, total); shard s owns
    // [s, s+1) * total / count. The intersection with job j's segment maps
    // linearly onto its id space [0, resolution). Cut points are monotone in
    // s by construction, so the N shards' ranges for a job are disjoint and
    // cover [0, resolution) exactly.
    auto cut = [&](double start, double w, unsigned s) {
        if (w <= 0) {
            // Zero-length job: give the whole id space to the shard whose
            // slice contains the job's position, so its faults (if any)
            // still land on exactly one shard and the cover stays complete.
            const unsigned owner = std::min<unsigned>(
                count - 1, static_cast<unsigned>(start * count / total));
            return s <= owner ? std::uint32_t{0} : resolution;
        }
        double frac = (total * s / count - start) / w;
        frac = frac < 0 ? 0 : (frac > 1 ? 1 : frac);
        const auto r = static_cast<std::uint32_t>(frac * resolution + 0.5);
        return r > resolution ? resolution : r;
    };
    double start = 0;
    std::uint64_t h = util::kFnvOffset;
    fnv1a_u64(h, count);
    fnv1a_u64(h, resolution);
    for (std::size_t j = 0; j < weights.size(); ++j) {
        const double w = weights[j] > 0 ? weights[j] : 0;
        plan.job_ranges.emplace_back(cut(start, w, index),
                                     cut(start, w, index + 1));
        // Hash every shard's cut point, not just ours: all shards of one
        // weighted campaign derive the identical matrix, so this id names
        // the partition scheme independently of the shard index.
        for (unsigned s = 0; s <= count; ++s) fnv1a_u64(h, cut(start, w, s));
        start += w;
    }
    plan.partition_hash = h;
    return plan;
}

std::vector<double> probe_job_weights(const std::vector<ShardJobSpec>& jobs) {
    // One probe golden execution per distinct scenario (jobs sharing a
    // scenario share the measurement), run in parallel on the process-wide
    // pool — a 130-scenario campaign probes at pool width, not serially.
    std::vector<std::string> keys;
    std::vector<std::size_t> job_slot;
    std::vector<const ShardJobSpec*> distinct;
    for (const ShardJobSpec& j : jobs) {
        const std::string key = scenario_cache_key(j.scenario);
        std::size_t slot = keys.size();
        for (std::size_t k = 0; k < keys.size(); ++k)
            if (keys[k] == key) slot = k;
        if (slot == keys.size()) {
            keys.push_back(key);
            distinct.push_back(&j);
        }
        job_slot.push_back(slot);
    }
    std::vector<double> lens(distinct.size());
    Scheduler::instance().parallel_for(distinct.size(), [&](std::size_t i) {
        sim::Machine m = npb::make_machine(distinct[i]->scenario, false);
        m.run_until(~0ULL >> 1);
        util::check(m.status() == sim::RunStatus::Shutdown,
                    "weight probe: golden run did not terminate: " +
                        distinct[i]->scenario.name());
        lens[i] = static_cast<double>(m.total_retired());
    });
    std::vector<double> weights;
    weights.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        weights.push_back(lens[job_slot[j]] * jobs[j].cfg.n_faults);
    return weights;
}

namespace {

struct JobShape {
    npb::Scenario scenario;
    std::uint32_t fault_space = 0;
    /// Scalar golden fields only (outputs/hashes are not in the DB). A
    /// weighted shard that does not own a job writes "golden": null; at
    /// least one shard must provide the reference.
    bool has_golden = false;
    core::GoldenRef golden;
};

JobShape parse_job(const util::JsonValue& v) {
    JobShape s;
    s.scenario.isa = profile_from_name(v.at("isa").as_string());
    s.scenario.app = app_from_name(v.at("app").as_string());
    s.scenario.api = api_from_name(v.at("api").as_string());
    s.scenario.cores = static_cast<unsigned>(v.at("cores").as_u64());
    s.scenario.klass = klass_from_name(v.at("class").as_string());
    s.scenario.contract_fma = v.at("fma").as_bool();
    s.fault_space = static_cast<std::uint32_t>(v.at("fault_space").as_u64());
    const util::JsonValue& g = v.at("golden");
    if (g.type != util::JsonValue::Type::Null) {
        s.has_golden = true;
        s.golden.total_retired = g.at("total_retired").as_u64();
        s.golden.ticks = g.at("ticks").as_u64();
        s.golden.app_start = g.at("app_start").as_u64();
        s.golden.exit_code = static_cast<int>(g.at("exit_code").as_double());
    }
    return s;
}

/// Validate shard `b`'s view of job j against the accumulated shape `a`,
/// adopting b's golden reference when a has none yet. Returns true when the
/// accumulated golden changed (callers refresh the result's copy).
bool merge_job_shape(JobShape& a, const JobShape& b, std::size_t j) {
    const std::string ctx = "shard merge: job " + std::to_string(j);
    util::check_valid(a.scenario.name() == b.scenario.name() &&
                    a.fault_space == b.fault_space,
                ctx + ": job lists differ across shards");
    if (!b.has_golden) return false;
    if (!a.has_golden) {
        a.has_golden = true;
        a.golden = b.golden;
        return true;
    }
    util::check_valid(a.golden.total_retired == b.golden.total_retired &&
                    a.golden.ticks == b.golden.ticks &&
                    a.golden.app_start == b.golden.app_start &&
                    a.golden.exit_code == b.golden.exit_code,
                ctx + ": golden references diverge across shards "
                      "(nondeterministic golden run or config drift)");
    return false;
}

} // namespace

std::vector<core::CampaignResult> merge_shards(
    const std::vector<std::string>& shard_dbs, std::ostream* csv_sink,
    std::ostream* jsonl_sink) {
    util::check_valid(!shard_dbs.empty(), "shard merge: no shard databases given");

    std::vector<JobShape> shape;
    std::vector<core::CampaignResult> results;
    std::vector<std::vector<std::uint8_t>> filled;
    std::string config_hash;
    std::string partition_id;
    unsigned shard_count = 0;
    std::vector<std::uint8_t> seen_shards;
    bool first_db = true; // explicit: an empty jobs array must not re-arm it

    for (const std::string& raw_db : shard_dbs) {
        // Fleet workers stream shard DBs back zstd-framed; accept them
        // everywhere a plain one is by decompressing transparently.
        std::string decoded;
        if (util::zframe_is(raw_db)) decoded = util::zframe_decompress(raw_db);
        const std::string& db = util::zframe_is(raw_db) ? decoded : raw_db;
        std::size_t pos = db.find('\n');
        util::check_valid(pos != std::string::npos, "shard merge: missing manifest line");
        const util::JsonValue manifest = util::json_parse(db.substr(0, pos));
        util::check_valid(manifest.find("magic") &&
                        manifest.at("magic").as_string() == kMagic,
                    "shard merge: not a serep shard database");
        util::check_valid(manifest.at("version").as_u64() == kVersion,
                    "shard merge: unsupported shard database version");
        const unsigned count = static_cast<unsigned>(manifest.at("count").as_u64());
        const unsigned index = static_cast<unsigned>(manifest.at("shard").as_u64());
        const std::string hash = manifest.at("config_hash").as_string();
        // Pre-PR-4 databases carry no partition id; they were all uniform.
        const util::JsonValue* part = manifest.find("partition");
        const std::string partition = part ? part->as_string() : "uniform";
        util::check_valid(count >= 1 && index < count, "shard merge: bad shard index");

        if (first_db) {
            first_db = false;
            shard_count = count;
            config_hash = hash;
            partition_id = partition;
            seen_shards.assign(count, 0);
            util::check_valid(!manifest.at("jobs").arr.empty(),
                        "shard merge: shard database has an empty job list");
            for (const util::JsonValue& jv : manifest.at("jobs").arr) {
                shape.push_back(parse_job(jv));
                core::CampaignResult r;
                r.scenario = shape.back().scenario;
                r.golden = shape.back().golden;
                r.records.resize(shape.back().fault_space);
                results.push_back(std::move(r));
                filled.emplace_back(shape.back().fault_space, 0);
            }
        } else {
            util::check_valid(count == shard_count,
                        "shard merge: shard counts differ across databases");
            util::check_valid(hash == config_hash,
                        "shard merge: config hash mismatch — the databases "
                        "come from different campaigns");
            util::check_valid(partition == partition_id,
                        "shard merge: partition scheme mismatch — uniform and "
                        "weighted (or differently weighted) shards of a "
                        "campaign do not tile the fault space together");
            const auto& jobs = manifest.at("jobs").arr;
            util::check_valid(jobs.size() == shape.size(),
                        "shard merge: job lists differ across shards");
            for (std::size_t j = 0; j < jobs.size(); ++j)
                if (merge_job_shape(shape[j], parse_job(jobs[j]), j))
                    results[j].golden = shape[j].golden;
        }
        util::check_valid(!seen_shards[index],
                    "shard merge: shard " + std::to_string(index) +
                        " appears more than once");
        seen_shards[index] = 1;

        // Record lines.
        while (pos < db.size()) {
            const std::size_t eol = db.find('\n', pos + 1);
            const std::string line =
                db.substr(pos + 1, eol == std::string::npos ? std::string::npos
                                                            : eol - pos - 1);
            pos = eol == std::string::npos ? db.size() : eol;
            if (line.empty()) continue;
            const util::JsonValue rv = util::json_parse(line);
            const std::size_t j = rv.at("job").as_u64();
            util::check_valid(j < shape.size(), "shard merge: record for unknown job");
            const std::uint32_t ord =
                static_cast<std::uint32_t>(rv.at("ord").as_u64());
            util::check_valid(ord < shape[j].fault_space,
                        "shard merge: record ordinal out of range");
            util::check_valid(!filled[j][ord],
                        "shard merge: fault covered by more than one shard");
            filled[j][ord] = 1;
            core::FaultRecord& rec = results[j].records[ord];
            rec.fault.at_retired = rv.at("at").as_u64();
            util::check_valid(core::fault_kind_from_name(rv.at("kind").as_string(),
                                                   rec.fault.target.kind),
                        "shard merge: unknown fault kind");
            rec.fault.target.core = static_cast<unsigned>(rv.at("core").as_u64());
            rec.fault.target.reg = static_cast<unsigned>(rv.at("reg").as_u64());
            rec.fault.target.bit = static_cast<unsigned>(rv.at("bit").as_u64());
            rec.fault.target.phys = rv.at("phys").as_u64();
            core::Outcome o;
            util::check_valid(core::outcome_from_name(rv.at("outcome").as_string(), o),
                        "shard merge: unknown outcome");
            rec.outcome = o;
            rec.retired = rv.at("retired").as_u64();
            // Provenance flag from pruned campaigns (absent = simulated).
            if (const util::JsonValue* inf = rv.find("inferred"))
                rec.inferred = inf->as_bool();
        }
    }

    for (unsigned s = 0; s < shard_count; ++s)
        util::check_valid(seen_shards[s],
                    "shard merge: shard " + std::to_string(s) + " of " +
                        std::to_string(shard_count) + " is missing");
    for (std::size_t j = 0; j < shape.size(); ++j) {
        util::check_valid(shape[j].has_golden,
                    "shard merge: job " + std::to_string(j) +
                        " has no golden reference in any shard");
        for (std::uint32_t o = 0; o < shape[j].fault_space; ++o)
            util::check_valid(filled[j][o], "shard merge: job " + std::to_string(j) +
                                          " fault " + std::to_string(o) +
                                          " not covered by any shard");
    }

    // Phase 4: counts + the exact streams BatchRunner emits unsharded.
    bool header_written = false;
    for (core::CampaignResult& r : results) {
        r.recount();
        if (csv_sink) {
            const std::string csv = core::campaign_csv(r);
            if (header_written) {
                *csv_sink << csv.substr(csv.find('\n') + 1);
            } else {
                *csv_sink << csv;
                header_written = true;
            }
        }
        if (jsonl_sink) *jsonl_sink << core::campaign_json(r) << '\n';
    }
    return results;
}

} // namespace serep::orch
