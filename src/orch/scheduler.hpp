// Process-wide work-stealing scheduler for campaign orchestration.
//
// Replaces the per-campaign fixed thread pool: one pool serves every
// scenario's golden runs and fault injections, so a batch of heterogeneous
// campaigns keeps all host threads busy even when individual campaigns have
// skewed run lengths (the paper's cluster scheduler plays the same role for
// its 1.2M-run workload).
//
// Scheduling model: parallel_for splits [0, n) into one contiguous range per
// participant. A participant pops indices from the front of its own range;
// when empty it steals the upper half of the largest remaining range. Work
// items write only to their own index's slot, so results are bit-identical
// regardless of the steal schedule or pool width.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace serep::orch {

class Scheduler {
public:
    /// threads == 0 picks std::thread::hardware_concurrency().
    explicit Scheduler(unsigned threads = 0);
    ~Scheduler();
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// The shared process-wide pool (created on first use).
    static Scheduler& instance();

    unsigned threads() const noexcept { return nthreads_; }

    /// Execute body(i) for every i in [0, n); blocks until all complete.
    /// The calling thread participates as a worker. Exceptions thrown by
    /// `body` are captured and the first one is rethrown here after the
    /// remaining items ran. Concurrent parallel_for calls are serialized.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

    /// Total indices executed across all parallel_for calls (test hook).
    std::uint64_t tasks_executed() const noexcept {
        return tasks_executed_.load(std::memory_order_relaxed);
    }

    /// Indices that were executed by a thief rather than the range's initial
    /// owner (test hook: proves stealing actually happens).
    std::uint64_t tasks_stolen() const noexcept {
        return tasks_stolen_.load(std::memory_order_relaxed);
    }

private:
    struct Job;

    void worker_loop(unsigned helper_id);
    void participate(Job& job, unsigned slot);

    unsigned nthreads_;
    std::vector<std::thread> helpers_;
    std::mutex mu_;                 ///< guards job_/generation_/stop_
    std::condition_variable cv_;
    std::shared_ptr<Job> job_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::mutex run_mu_;             ///< serializes parallel_for callers
    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> tasks_stolen_{0};
};

} // namespace serep::orch
