#include "prof/profile.hpp"

#include <cmath>

#include "util/check.hpp"

namespace serep::prof {

ProfileData collect(const sim::Machine& m) {
    ProfileData p;
    p.instructions = m.total_retired();
    p.ticks = m.time_ticks();
    std::uint64_t l1d_h = 0, l1d_m = 0, l1i_h = 0, l1i_m = 0;
    std::vector<std::uint64_t> per_core_user;
    for (unsigned c = 0; c < m.cores(); ++c) {
        const sim::CoreCounters& k = m.counters(c);
        p.user_instr += k.user_retired;
        p.kernel_instr += k.kernel_retired;
        p.branches += k.branches;
        p.taken_branches += k.taken_branches;
        p.calls += k.calls;
        p.loads += k.loads;
        p.stores += k.stores;
        p.fp_ops += k.fp_ops;
        p.wfi_sleeps += k.wfi_sleeps;
        per_core_user.push_back(k.user_retired);
        l1d_h += m.l1d(c).hits();
        l1d_m += m.l1d(c).misses();
        l1i_h += m.l1i(c).hits();
        l1i_m += m.l1i(c).misses();
    }
    const sim::MachineCounters& mc = m.machine_counters();
    p.ctx_switches = mc.ctx_switches;
    for (auto v : mc.syscalls) p.syscalls += v;
    p.timer_irqs = mc.traps[static_cast<unsigned>(isa::TrapCause::IRQ_TIMER)];

    const double n = static_cast<double>(p.instructions);
    if (n > 0) {
        p.branch_pct = 100.0 * static_cast<double>(p.branches) / n;
        p.mem_pct = 100.0 * static_cast<double>(p.loads + p.stores) / n;
        p.fp_pct = 100.0 * static_cast<double>(p.fp_ops) / n;
        p.kernel_share = 100.0 * static_cast<double>(p.kernel_instr) / n;
    }
    if (p.stores > 0)
        p.rd_wr_ratio = static_cast<double>(p.loads) / static_cast<double>(p.stores);

    // per-core balance (user instructions)
    if (!per_core_user.empty()) {
        double mean = 0;
        for (auto v : per_core_user) mean += static_cast<double>(v);
        mean /= static_cast<double>(per_core_user.size());
        if (mean > 0) {
            double dev = 0;
            for (auto v : per_core_user)
                dev += std::fabs(static_cast<double>(v) - mean);
            p.balance_dev_pct =
                100.0 * dev / (mean * static_cast<double>(per_core_user.size()));
        }
    }

    // module attribution (requires profile-mode counters)
    const kasm::Image& img = m.image();
    const auto& fi = m.func_instr_counts();
    if (!fi.empty()) {
        std::uint64_t api = 0, sf = 0;
        for (std::size_t f = 0; f < fi.size(); ++f) {
            const kasm::ModTag tag = img.func_tags[f];
            if (tag == kasm::ModTag::OMP || tag == kasm::ModTag::MPI) api += fi[f];
            if (tag == kasm::ModTag::SOFTFLOAT) sf += fi[f];
        }
        if (n > 0) {
            p.api_share = 100.0 * static_cast<double>(api) / n;
            p.softfloat_share = 100.0 * static_cast<double>(sf) / n;
        }
    }
    p.vuln_window = p.kernel_share + p.api_share;
    p.fb_calls = p.calls;

    if (l1d_h + l1d_m > 0)
        p.l1d_miss_rate = 100.0 * static_cast<double>(l1d_m) /
                          static_cast<double>(l1d_h + l1d_m);
    if (l1i_h + l1i_m > 0)
        p.l1i_miss_rate = 100.0 * static_cast<double>(l1i_m) /
                          static_cast<double>(l1i_h + l1i_m);
    const auto l2h = m.l2().hits(), l2m = m.l2().misses();
    if (l2h + l2m > 0)
        p.l2_miss_rate = 100.0 * static_cast<double>(l2m) /
                         static_cast<double>(l2h + l2m);
    return p;
}

ProfileData profile_scenario(const npb::Scenario& s) {
    sim::Machine m = npb::make_machine(s, true);
    m.run_until(~0ULL >> 1);
    util::check(m.status() == sim::RunStatus::Shutdown,
                "profiling run did not finish: " + s.name());
    return collect(m);
}

std::map<std::string, double> ProfileData::metrics() const {
    return {
        {"instructions", static_cast<double>(instructions)},
        {"ticks", static_cast<double>(ticks)},
        {"user_instr", static_cast<double>(user_instr)},
        {"kernel_instr", static_cast<double>(kernel_instr)},
        {"branches", static_cast<double>(branches)},
        {"taken_branches", static_cast<double>(taken_branches)},
        {"calls", static_cast<double>(calls)},
        {"loads", static_cast<double>(loads)},
        {"stores", static_cast<double>(stores)},
        {"fp_ops", static_cast<double>(fp_ops)},
        {"ctx_switches", static_cast<double>(ctx_switches)},
        {"syscalls", static_cast<double>(syscalls)},
        {"timer_irqs", static_cast<double>(timer_irqs)},
        {"wfi_sleeps", static_cast<double>(wfi_sleeps)},
        {"branch_pct", branch_pct},
        {"mem_pct", mem_pct},
        {"rd_wr_ratio", rd_wr_ratio},
        {"fp_pct", fp_pct},
        {"balance_dev_pct", balance_dev_pct},
        {"kernel_share", kernel_share},
        {"api_share", api_share},
        {"softfloat_share", softfloat_share},
        {"vuln_window", vuln_window},
        {"l1d_miss_rate", l1d_miss_rate},
        {"l1i_miss_rate", l1i_miss_rate},
        {"l2_miss_rate", l2_miss_rate},
        {"fb_calls", static_cast<double>(fb_calls)},
    };
}

} // namespace serep::prof
