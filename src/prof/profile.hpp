// Profiling: the gem5-statistics / OVPsim-coverage analogue.
//
// Collects microarchitectural and software metrics from an instrumented
// golden run: instruction mix, memory-transaction share, per-core balance,
// cache behaviour, kernel/API vulnerability windows, per-function call
// counts. These are the features the data-mining tool correlates with
// fault-injection outcomes.
#pragma once

#include <map>
#include <string>

#include "npb/npb.hpp"
#include "sim/machine.hpp"

namespace serep::prof {

struct ProfileData {
    std::uint64_t instructions = 0;  ///< total retired
    std::uint64_t ticks = 0;         ///< parallel execution time
    std::uint64_t user_instr = 0, kernel_instr = 0;
    std::uint64_t branches = 0, taken_branches = 0, calls = 0;
    std::uint64_t loads = 0, stores = 0, fp_ops = 0;
    std::uint64_t ctx_switches = 0, syscalls = 0, timer_irqs = 0;
    std::uint64_t wfi_sleeps = 0;
    double branch_pct = 0;   ///< branches / instructions
    double mem_pct = 0;      ///< (loads+stores) / instructions
    double rd_wr_ratio = 0;  ///< loads / stores
    double fp_pct = 0;
    double balance_dev_pct = 0; ///< mean |per-core user instr - mean| / mean
    double kernel_share = 0;    ///< kernel-mode instruction fraction
    double api_share = 0;       ///< OMP+MPI library instruction fraction
    double softfloat_share = 0; ///< V7 soft-float library fraction
    double vuln_window = 0;     ///< kernel_share + api_share (paper §4.2.2)
    double l1d_miss_rate = 0, l1i_miss_rate = 0, l2_miss_rate = 0;
    std::uint64_t fb_calls = 0; ///< function calls (for the F*B index)

    /// Flat view for the mining dataset.
    std::map<std::string, double> metrics() const;
};

/// Collect from a finished machine built with profile=true.
ProfileData collect(const sim::Machine& m);

/// Run the scenario's golden execution with instrumentation and collect.
ProfileData profile_scenario(const npb::Scenario& s);

} // namespace serep::prof
