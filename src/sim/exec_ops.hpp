// Per-op execution handlers for the cached engine's dispatch table.
//
// One function per µISA opcode, semantically identical to the corresponding
// case of the legacy switch in sim/machine.cpp (kept behind
// Machine::set_engine(Engine::Switch) as the reference implementation; the
// two are cross-checked instruction-by-instruction and campaign-by-campaign
// in tests/engine_test.cpp). The handlers are deliberately a second,
// independent implementation: sharing the case bodies would turn the
// differential tests into tautologies.
#pragma once

#include "isa/op.hpp"
#include "sim/exec_cache.hpp"

namespace serep::sim {

/// Handler for `op` in the dispatch table (never null; UDF handles the rest).
ExecHandler exec_handler(isa::Op op) noexcept;

} // namespace serep::sim
