#include "sim/machine.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "isa/encode.hpp"
#include "isa/op.hpp"
#include "util/bitops.hpp"
#include "util/check.hpp"

namespace serep::sim {


using isa::Cond;
using isa::Flags;
using isa::Instr;
using isa::Op;
using isa::SysReg;
using isa::TrapCause;
using util::low_mask;

const char* run_status_name(RunStatus s) noexcept {
    switch (s) {
        case RunStatus::Running: return "running";
        case RunStatus::Shutdown: return "shutdown";
        case RunStatus::KernelPanic: return "kernel_panic";
        case RunStatus::Deadlock: return "deadlock";
    }
    return "??";
}

namespace {

struct AluResult {
    std::uint64_t value;
    Flags flags;
};

/// ARM AddWithCarry at width W; sets all four flags.
AluResult add_with_carry(std::uint64_t a, std::uint64_t b, std::uint64_t cin,
                         unsigned w) noexcept {
    const std::uint64_t mask = low_mask(w);
    a &= mask;
    b &= mask;
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) + b + (cin & 1);
    const std::uint64_t r = static_cast<std::uint64_t>(wide) & mask;
    Flags f;
    f.n = ((r >> (w - 1)) & 1) != 0;
    f.z = r == 0;
    f.c = (wide >> w) != 0;
    f.v = (((~(a ^ b) & (a ^ r)) >> (w - 1)) & 1) != 0;
    return {r, f};
}

std::uint64_t shift_left(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    if (amt >= w) return 0;
    return (v << amt) & low_mask(w);
}
std::uint64_t shift_right(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    v &= low_mask(w);
    if (amt >= w) return 0;
    return v >> amt;
}
std::uint64_t shift_right_arith(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    const std::int64_t s = util::sign_extend(v, w);
    if (amt >= w) amt = w - 1;
    return static_cast<std::uint64_t>(s >> amt) & low_mask(w);
}

/// Can the trace engine execute this ender inline and keep bursting? Pure
/// control transfers cannot change mode, trap, or touch machine-wide state;
/// everything else ends the burst: SVC/ERET (mode switch), WFI/HLT (runnable
/// set), SYSRD/SYSWR (IPIs, timers, shutdown), UDF (trap), and V7 pc-writing
/// data ops (generic ops classified as enders; rare).
constexpr bool trace_chainable(Op op) noexcept {
    switch (op) {
        case Op::B:
        case Op::BCOND:
        case Op::BL:
        case Op::BLR:
        case Op::BR:
        case Op::RET:
        case Op::CBZ:
        case Op::CBNZ: return true;
        default: return false;
    }
}

} // namespace

void load_image_data(Machine& m) {
    namespace layout = isa::layout;
    const kasm::Image& img = m.image();
    Memory& mem = m.mem();
    for (const kasm::DataChunk& c : img.kdata_init) {
        util::check(c.vaddr >= layout::kKernBase &&
                        c.vaddr + c.bytes.size() <= layout::kKernBase + mem.kern_size(),
                    "load_image_data: kernel chunk out of range");
        std::memcpy(mem.kern_data() + (c.vaddr - layout::kKernBase), c.bytes.data(),
                    c.bytes.size());
    }
    for (unsigned p = 0; p < mem.nprocs(); ++p) {
        for (const kasm::DataChunk& c : img.udata_init) {
            util::check(c.vaddr >= layout::kUserBase &&
                            c.vaddr + c.bytes.size() <= layout::kUserBase + mem.user_size(),
                        "load_image_data: user chunk out of range");
            std::memcpy(mem.user_data(p) + (c.vaddr - layout::kUserBase), c.bytes.data(),
                        c.bytes.size());
        }
        // Map the static data segment and the main stack (top of the region).
        if (img.udata_size > 0)
            mem.map_user_range(p, layout::kUserBase, layout::kUserBase + img.udata_size);
        const std::uint64_t top = layout::kUserBase + mem.user_size();
        mem.map_user_range(p, top - layout::kMainStackSize, top);
    }
}

namespace {
std::uint64_t text_mirror_bytes(const std::shared_ptr<const kasm::Image>& img) {
    util::check(img != nullptr, "Machine: null image");
    return img->code.size() * isa::kTextRecordBytes;
}
} // namespace

Machine::Machine(std::shared_ptr<const kasm::Image> image, const MachineConfig& cfg)
    : image_(std::move(image)),
      cfg_(cfg),
      mem_(cfg.procs, cfg.user_size, cfg.kern_size, text_mirror_bytes(image_)),
      l2_(kL2Config) {
    util::check(cfg.cores >= 1 && cfg.cores <= 8, "Machine: 1..8 cores");
    cores_.assign(cfg.cores, CoreState(image_->profile));
    counters_.assign(cfg.cores, CoreCounters{});
    l1i_.assign(cfg.cores, Cache(kL1Config));
    l1d_.assign(cfg.cores, Cache(kL1Config));
    outputs_.assign(cfg.procs, std::string{});
    proc_exit_codes_.assign(cfg.procs, -1);
    if (cfg.profile) {
        func_instr_.assign(image_->func_names.size(), 0);
        func_calls_.assign(image_->func_names.size(), 0);
        reg_writes_.assign(33, 0);
    }
    const isa::ProfileInfo info = isa::profile_info(image_->profile);
    width_bits_ = info.width_bits;
    width_mask_ = low_mask(info.width_bits);
    xcache_ = ExecCache::for_image(image_);
    // Serialize the code into the guest text mirror so memory faults can hit
    // it; the pristine mirror decodes back to exactly the shared cache.
    std::vector<std::uint8_t> text(image_->code.size() * isa::kTextRecordBytes);
    for (std::size_t i = 0; i < image_->code.size(); ++i)
        isa::encode_instr(image_->code[i], text.data() + i * isa::kTextRecordBytes);
    mem_.install_text(text.data(), text.size());
    code_gen_seen_ = mem_.code_gen();
}

void Machine::set_engine(Engine e) noexcept {
    if (engine_ == e) return;
    engine_ = e;
    // The MRU filters assume every prior access of this engine went through
    // them; a fresh engine must rebuild that assumption from scratch.
    for (CoreState& c : cores_) {
        c.last_iline = CoreState::kNoLine;
        c.last_dline = CoreState::kNoLine;
        c.last_tkey = CoreState::kNoTrans;
        c.last_tpage = 0;
    }
}

std::uint64_t Machine::time_ticks() const noexcept {
    std::uint64_t t = 0;
    for (const CoreState& c : cores_) t = std::max(t, c.local_tick);
    return t;
}

void Machine::panic(TrapCause cause) {
    status_ = RunStatus::KernelPanic;
    panic_cause_ = cause;
}

void Machine::take_trap(CoreState& core, TrapCause cause, std::uint64_t aux,
                        std::uint64_t badaddr) {
    if (observer_.ptr)
        observer_.ptr->on_trap(*this, static_cast<unsigned>(&core - cores_.data()),
                               cause);
    mcounters_.traps[static_cast<std::size_t>(cause)]++;
    if (cause == TrapCause::SVC) mcounters_.syscalls[aux & 15]++;
    core.epc = cause == TrapCause::SVC ? core.regs.pc() + isa::kInstrBytes
                                       : core.regs.pc();
    core.cause = static_cast<std::uint64_t>(cause) | (aux << 8);
    core.badaddr = badaddr;
    const std::uint64_t t = core.regs.sp();
    core.regs.set_sp(core.banked_sp);
    core.banked_sp = t;
    core.mode = Mode::KERNEL;
    core.regs.set_pc(image_->vec_entry);
    core.excl_valid = false;
}

void Machine::write_gpr(CoreState& core, unsigned rd, std::uint64_t value) {
    if (cfg_.profile) ++reg_writes_[rd];
    if (core.regs.profile() == isa::Profile::V7 && rd == 15) {
        // Writing R15 is a jump (the ARMv7 idiom the paper's PC-fault
        // sensitivity rests on).
        next_pc_ = value & core.regs.width_mask();
        branch_taken_ = true;
        return;
    }
    core.regs.set_x(rd, value);
}

void Machine::invalidate_reservations(std::uint64_t phys, const CoreState* except) {
    for (CoreState& c : cores_) {
        if (&c == except) continue;
        if (c.excl_valid && (c.excl_addr >> 3) == (phys >> 3)) c.excl_valid = false;
    }
}

bool Machine::data_access(CoreState& core, std::uint64_t vaddr, unsigned size,
                          bool write, std::uint64_t& phys, std::uint64_t& cost) {
    const Translation t =
        mem_.translate(vaddr, size, core.mode == Mode::KERNEL, core.curproc);
    if (!t.ok()) {
        if (core.mode == Mode::KERNEL) {
            panic(TrapCause::DATA_ABORT);
        } else {
            take_trap(core, TrapCause::DATA_ABORT,
                      static_cast<std::uint64_t>(t.fault), vaddr);
        }
        return false;
    }
    phys = t.phys;
    const auto ci = static_cast<unsigned>(&core - cores_.data());
    const bool l1_hit = l1d_[ci].access(phys);
    bool l2_hit = false;
    if (!l1_hit) {
        cost += kL1MissPenalty;
        l2_hit = l2_.access(phys);
        if (!l2_hit) cost += kL2MissPenalty;
    }
    if (write) invalidate_reservations(phys, nullptr);
    if (uncore_.ptr)
        uncore_.ptr->on_data_access(*this, ci, phys, size, write, l1_hit,
                                    l2_hit, true);
    return true;
}

bool Machine::sysreg_read(CoreState& core, SysReg sr, std::uint64_t& value) {
    const bool kernel = core.mode == Mode::KERNEL;
    switch (sr) {
        case SysReg::CORE_ID:
            value = static_cast<std::uint64_t>(&core - cores_.data());
            return true;
        case SysReg::TLS: value = core.tls; return true;
        case SysReg::INSTRET: value = core.retired; return true;
        case SysReg::NCORES: value = cores_.size(); return true;
        case SysReg::TIMER: value = core.timer; return kernel;
        case SysReg::EPC: value = core.epc; return kernel;
        case SysReg::CAUSE: value = core.cause; return kernel;
        case SysReg::BADADDR: value = core.badaddr; return kernel;
        case SysReg::FLAGS: value = core.regs.flags().pack(); return kernel;
        case SysReg::USP: value = core.banked_sp; return kernel;
        case SysReg::CURPROC: value = core.curproc; return kernel;
        default: return false;
    }
}

bool Machine::sysreg_write(CoreState& core, SysReg sr, std::uint64_t value) {
    if (core.mode != Mode::KERNEL) return false;
    switch (sr) {
        case SysReg::TIMER:
            core.timer = value;
            core.pending_timer = false;
            return true;
        case SysReg::EPC: core.epc = value; return true;
        case SysReg::FLAGS: core.regs.flags() = Flags::unpack(value); return true;
        case SysReg::USP: core.banked_sp = value; return true;
        case SysReg::TLS:
            if (core.tls != value) ++mcounters_.ctx_switches;
            core.tls = value;
            return true;
        case SysReg::CURPROC:
            if (value >= cfg_.procs) return false;
            core.curproc = static_cast<std::uint32_t>(value);
            return true;
        case SysReg::IPI_SEND:
            for (unsigned c = 0; c < cores_.size(); ++c) {
                if (value & (std::uint64_t{1} << c)) {
                    cores_[c].pending_ipi = true;
                    cores_[c].wake_tick =
                        std::max(cores_[c].wake_tick, core.local_tick);
                }
            }
            // Another core may be runnable now: the cached engine's burst
            // loop must fall back to the scheduler scan.
            sched_event_ = true;
            return true;
        case SysReg::CONSOLE:
            outputs_[core.curproc] += static_cast<char>(value & 0xFF);
            return true;
        case SysReg::MAP_BRK: {
            const std::uint64_t base = isa::layout::kUserBase;
            if (value < base || value > base + cfg_.user_size) return false;
            mem_.map_user_range(core.curproc, base, value);
            return true;
        }
        case SysReg::SHUTDOWN:
            status_ = RunStatus::Shutdown;
            exit_code_ = static_cast<int>(value & 0xFF);
            return true;
        case SysReg::PROC_EXIT: {
            const std::uint64_t proc = value >> 8;
            if (proc >= cfg_.procs) return false;
            proc_exit_codes_[proc] = static_cast<int>(value & 0xFF);
            return true;
        }
        default: return false;
    }
}

RunStatus Machine::run_until(std::uint64_t stop_at) {
    while (status_ == RunStatus::Running && total_retired_ < stop_at) {
        int best = -1;
        std::uint64_t best_tick = std::numeric_limits<std::uint64_t>::max();
        unsigned runnable = 0;
        for (unsigned c = 0; c < cores_.size(); ++c) {
            CoreState& k = cores_[c];
            if (k.halted) continue;
            if (k.sleeping) {
                if (k.pending_timer || k.pending_ipi) {
                    k.sleeping = false;
                    k.pending_timer = false;
                    k.pending_ipi = false;
                    k.local_tick = std::max(k.local_tick, k.wake_tick);
                } else {
                    continue;
                }
            }
            ++runnable;
            if (k.local_tick < best_tick) {
                best_tick = k.local_tick;
                best = static_cast<int>(c);
            }
        }
        if (best < 0) {
            status_ = RunStatus::Deadlock;
            break;
        }
        if (engine_ == Engine::Cached && runnable == 1) {
            // Burst: with every other core halted or sleeping without a
            // pending wake, the scan above would re-select this core until
            // it sleeps, halts, or posts an IPI (sched_event_) — so skip
            // the scan entirely. The schedule is exactly the reference one:
            // no other core can become runnable during the burst.
            CoreState& k = cores_[static_cast<unsigned>(best)];
            sched_event_ = false;
            do {
                step_cached(static_cast<unsigned>(best));
            } while (status_ == RunStatus::Running &&
                     total_retired_ < stop_at && !sched_event_ &&
                     !k.sleeping && !k.halted);
            continue;
        }
        if (engine_ == Engine::Trace) {
            if (runnable == 1) {
                // Solo regime: no rival can claim the scan (sleepers stay
                // asleep without an IPI, which sets sched_event_), so the
                // burst is unbounded — run until a scheduling event.
                CoreState& k = cores_[static_cast<unsigned>(best)];
                sched_event_ = false;
                do {
                    burst_trace(static_cast<unsigned>(best), stop_at);
                } while (status_ == RunStatus::Running &&
                         total_retired_ < stop_at && !sched_event_ &&
                         !k.sleeping && !k.halted);
            } else {
                run_trace_multi(stop_at);
            }
            continue;
        }
        step(static_cast<unsigned>(best));
    }
    // Settle deferred uncore corruption (pending bus flips/restores) at the
    // run boundary, before the caller hashes or classifies machine state.
    if (uncore_.ptr) uncore_.ptr->on_run_boundary(*this);
    return status_;
}

void Machine::step(unsigned ci) {
    // The trace engine single-steps through step_cached (same ExecCache
    // facts, same step mechanics) — burst_trace falls back to it for trace
    // enders, overlaid pages, and interrupt delivery.
    if (engine_ == Engine::Switch) {
        step_switch(ci);
    } else {
        step_cached(ci);
    }
}

const DecodedInstr* Machine::fetch_decoded(std::size_t idx) {
    if (mem_.code_gen() != code_gen_seen_) refresh_code_overlay();
    if (!overlay_.empty()) {
        for (const OverlayPage& p : overlay_)
            if (idx >= p.first && idx - p.first < p.recs.size())
                return &p.recs[idx - p.first];
    }
    return &(*xcache_)[idx];
}

void Machine::refresh_code_overlay() {
    code_gen_seen_ = mem_.code_gen();
    if (!mem_.has_text()) return;
    const std::vector<std::uint8_t>& dirty = mem_.code_dirty_pages();
    for (std::uint64_t p = 0; p < dirty.size(); ++p) {
        if (!dirty[p]) continue;
        const std::uint64_t first = p * isa::kTextRecordsPerPage;
        if (first >= xcache_->size()) break; // page past the last record
        const std::size_t count = static_cast<std::size_t>(
            std::min<std::uint64_t>(isa::kTextRecordsPerPage,
                                    xcache_->size() - first));
        OverlayPage* op = nullptr;
        std::size_t at = overlay_.size();
        for (std::size_t i = 0; i < overlay_.size(); ++i) {
            if (overlay_[i].first == first) {
                op = &overlay_[i];
                break;
            }
            if (overlay_[i].first > first) {
                at = i;
                break;
            }
        }
        if (!op) {
            op = &*overlay_.insert(overlay_.begin() + static_cast<std::ptrdiff_t>(at),
                                   OverlayPage{first, {}});
        }
        op->recs.resize(count);
        ExecCache::decode_records(
            mem_.text_data() + p * isa::layout::kPageSize, count,
            image_->profile, image_->code_base + first * isa::kInstrBytes,
            image_->kernel_text_end, op->recs.data());
    }
}

/// The cached engine's step: identical semantics to step_switch(), with the
/// per-instruction facts read from the DecodedInstr instead of re-derived,
/// dispatch through the pre-resolved handler pointer, and MRU line filters
/// in front of the L1 models (bit-identical cache evolution, see
/// Cache::credit_hit).
///
/// The interrupt-preemption preamble and the retire epilogue here must stay
/// in lockstep with step_switch(): unlike the op handlers (independent on
/// purpose, for differential testing), these step mechanics are one
/// specification with two transcriptions — edit both or the engines'
/// bit-identity contract breaks (engine_test / orch_test will catch it).
void Machine::step_cached(unsigned ci) {
    CoreState& core = cores_[ci];
    CoreCounters& cnt = counters_[ci];

    if (core.mode == Mode::USER && (core.pending_timer || core.pending_ipi)) {
        TrapCause cause;
        if (core.pending_timer) {
            cause = TrapCause::IRQ_TIMER;
            core.pending_timer = false;
        } else {
            cause = TrapCause::IRQ_IPI;
            core.pending_ipi = false;
        }
        take_trap(core, cause, 0, 0);
        core.local_tick += 2;
        return;
    }

    const std::uint64_t pc = core.regs.pc();
    const DecodedInstr* di = nullptr;
    if (image_->contains_code(pc)) di = fetch_decoded(image_->instr_index(pc));
    if (!di || (core.mode != Mode::KERNEL && !di->user_ok)) {
        if (core.mode == Mode::KERNEL) {
            panic(TrapCause::PREFETCH_ABORT);
        } else {
            take_trap(core, TrapCause::PREFETCH_ABORT, 0, pc);
            core.local_tick += 2;
        }
        return;
    }

    std::uint64_t cost = 1;
    const std::uint64_t iline = pc >> 6; // 64-byte lines (kL1Config)
    if (iline == core.last_iline) {
        l1i_[ci].credit_hit();
    } else {
        if (!l1i_[ci].access(pc)) {
            cost += kL1MissPenalty;
            if (!l2_.access(pc)) cost += kL2MissPenalty;
        }
        core.last_iline = iline;
    }

    const Mode mode_at_fetch = core.mode;
    next_pc_ = pc + isa::kInstrBytes;
    branch_taken_ = false;

    // V7 conditional execution: a failed predicate retires as a bubble.
    const bool executed =
        !di->check_cond || cond_holds(di->ins.cond, core.regs.flags());

    if (observer_.ptr) observer_.ptr->on_step(*this, ci, *di, pc, executed);

    StepCtx cx{core, cnt, *di, ci, pc, cost, true};
    if (executed) di->fn(*this, cx);

    if (status_ == RunStatus::KernelPanic) return;

    if (!cx.retire) {
        core.local_tick += cx.cost + 2;
        return;
    }

    if (di->ins.op != Op::SVC) core.regs.set_pc(next_pc_);
    if (branch_taken_) cx.cost += 1;

    ++core.retired;
    ++total_retired_;
    if (mode_at_fetch == Mode::KERNEL) {
        ++cnt.kernel_retired;
    } else {
        ++cnt.user_retired;
    }
    if (executed) {
        if (di->cflags & kDiBranch) {
            ++cnt.branches;
            if (branch_taken_) ++cnt.taken_branches;
        }
        if (di->cflags & kDiCall) ++cnt.calls;
    }
    if (cfg_.profile)
        ++func_instr_[image_->func_of_instr[image_->instr_index(pc)]];
    if (core.timer > 0 && --core.timer == 0) core.pending_timer = true;
    core.local_tick += cx.cost;
}

bool Machine::trace_page_overlaid(std::size_t idx) const noexcept {
    const std::uint64_t first =
        (idx / isa::kTextRecordsPerPage) * isa::kTextRecordsPerPage;
    for (const OverlayPage& p : overlay_)
        if (p.first == first) return true;
    return false;
}

/// One trace unit of the superblock engine. Semantics are *defined* by
/// step_cached (and transitively by step_switch): executing a superblock is
/// exactly the sequence of step_cached calls for its instructions, with the
/// per-step work that is provably constant across the run hoisted out:
///
///  * fetch validity / user_ok — a run is straight-line and ascending, and
///    user_ok is monotone in the address, so the first record's check
///    covers the whole run; kernel fetches are always legal;
///  * overlay lookup — runs never cross a text page (ExecCache clips them),
///    so one page lookup validates every fetch in the trace. A text fault
///    or snapshot restore that re-decoded this page (the PR-3 CoW funnel)
///    drops the trace back to single-step dispatch through step_cached,
///    which reads through the overlay;
///  * next_pc_/branch_taken_ bookkeeping — no in-trace instruction can
///    branch (trace enders are excluded), so every retirement is pc += 4;
///  * branch/call counter tests — in-trace cflags are always 0;
///  * retired-mode bucket — mode only changes via traps and enders, so the
///    kernel/user attribution is constant inside a trace;
///  * I-line MRU credits — consecutive filtered hits accumulate locally and
///    flush in one credit_hits call per segment (including at side exits,
///    so a trace that traps mid-way credits exactly the fetches it made).
///
/// Everything that can vary per step stays per step: the tick-horizon
/// check (step costs vary with cache misses and FP latency, so a step
/// budget alone cannot bound ticks), the V7 predicate, the observer
/// callback (prune's XOR-diff walk must see every retired instruction,
/// mid-trace included), data aborts (side exit: trap taken, instruction
/// does not retire — identical to the step_cached epilogue), the timer
/// decrement, and the per-step tick/retire accounting.
///
/// The step budget is clipped to min(run length, instructions left until
/// stop_at, pending-timer distance): a fault instant or checkpoint rung is
/// a stop_at from run_until's callers, so a pending injection inside the
/// window clips the trace rather than the trace skidding past it.
void Machine::burst_trace(unsigned ci, std::uint64_t stop_at) {
    CoreState& core = cores_[ci];
    CoreCounters& cnt = counters_[ci];

    // Interrupt delivery preempts user code between instructions — one
    // trace unit, same transcription as the step_cached preamble.
    if (core.mode == Mode::USER && (core.pending_timer || core.pending_ipi)) {
        TrapCause cause;
        if (core.pending_timer) {
            cause = TrapCause::IRQ_TIMER;
            core.pending_timer = false;
        } else {
            cause = TrapCause::IRQ_IPI;
            core.pending_ipi = false;
        }
        take_trap(core, cause, 0, 0);
        core.local_tick += 2;
        return;
    }

    std::uint64_t lpc = core.regs.pc();
    std::size_t idx;
    const DecodedInstr* di;
    std::uint64_t seg; // straight-line records executable from lpc

    // (Re)derive the segment state at lpc: translation, run length, overlay
    // page check, user fetch permission. Returns false when the burst must
    // not fetch from lpc through the hoisted-check fast path (wild pc,
    // fault-redecoded page, user fetch into kernel text) — those all fall
    // back to step_cached, which re-checks everything per step.
    const auto load_segment = [&]() -> bool {
        if (!image_->contains_code(lpc)) return false;
        idx = image_->instr_index(lpc);
        if (!overlay_.empty() && trace_page_overlaid(idx)) return false;
        di = &(*xcache_)[idx];
        if (core.mode != Mode::KERNEL && !di->user_ok) return false;
        seg = xcache_->run_len(idx);
        return true;
    };

    // Text generation moves only between run_until calls (no VA translates
    // into the text mirror, so guest stores cannot dirty code mid-burst);
    // checking here keeps the per-trace overlay lookup sound for the rest
    // of the burst.
    if (mem_.code_gen() != code_gen_seen_) refresh_code_overlay();
    if (!load_segment() || (seg == 0 && !trace_chainable(di->ins.op))) {
        ++tstats_.fallbacks;
        step_cached(ci); // single step with full per-step checks
        return;
    }

    std::uint64_t* retired_bucket =
        core.mode == Mode::KERNEL ? &cnt.kernel_retired : &cnt.user_retired;
    Cache& l1i = l1i_[ci];
    std::uint64_t iline_credits = 0;
    const bool profile = cfg_.profile;

    for (;;) {
        if (seg == 0) {
            // The record at lpc is a chainable control transfer. Execute it
            // inline — the step_cached transcription with next_pc_ /
            // branch_taken_ / branch-counter mechanics restored — then
            // rederive the segment at the target and keep bursting.
            ++tstats_.chain_links;
            std::uint64_t cost = 1;
            const std::uint64_t iline = lpc >> 6;
            if (iline == core.last_iline) {
                ++iline_credits;
            } else {
                if (iline_credits != 0) {
                    l1i.credit_hits(iline_credits);
                    iline_credits = 0;
                }
                if (!l1i.access(lpc)) {
                    cost += kL1MissPenalty;
                    if (!l2_.access(lpc)) cost += kL2MissPenalty;
                }
                core.last_iline = iline;
            }
            const bool executed =
                !di->check_cond || cond_holds(di->ins.cond, core.regs.flags());
            if (observer_.ptr)
                observer_.ptr->on_step(*this, ci, *di, lpc, executed);
            next_pc_ = lpc + isa::kInstrBytes;
            branch_taken_ = false;
            StepCtx cx{core, cnt, *di, ci, lpc, cost, true};
            if (executed) di->fn(*this, cx);
            if (status_ == RunStatus::KernelPanic) break;
            if (!cx.retire) {
                core.local_tick += cx.cost + 2;
                break;
            }
            core.regs.set_pc(next_pc_); // never SVC here (not chainable)
            if (branch_taken_) cx.cost += 1;
            ++core.retired;
            ++total_retired_;
            ++*retired_bucket;
            if (executed) {
                if (di->cflags & kDiBranch) {
                    ++cnt.branches;
                    if (branch_taken_) ++cnt.taken_branches;
                }
                if (di->cflags & kDiCall) ++cnt.calls;
            }
            if (profile) ++func_instr_[image_->func_of_instr[idx]];
            if (core.timer > 0 && --core.timer == 0) core.pending_timer = true;
            core.local_tick += cx.cost;
            lpc = next_pc_;
        } else {
            // Straight-line superblock segment: seg records from di/lpc.
            ++tstats_.bursts;
            std::uint64_t max_steps = seg;
            const std::uint64_t left = stop_at - total_retired_; // >= 1 here
            if (left < max_steps) max_steps = left;
            // Clip at the pending-timer distance so the timer fires exactly
            // on the step that drains it; the preemption preamble then runs
            // at the next burst entry.
            if (core.timer > 0 && core.timer < max_steps)
                max_steps = core.timer;

            std::uint64_t done = 0;
            for (; done < max_steps; ++done) {
                std::uint64_t cost = 1;
                const std::uint64_t iline = lpc >> 6; // 64-byte lines
                if (iline == core.last_iline) {
                    ++iline_credits;
                } else {
                    if (iline_credits != 0) {
                        l1i.credit_hits(iline_credits);
                        iline_credits = 0;
                    }
                    if (!l1i.access(lpc)) {
                        cost += kL1MissPenalty;
                        if (!l2_.access(lpc)) cost += kL2MissPenalty;
                    }
                    core.last_iline = iline;
                }

                const DecodedInstr& d = di[done];
                const bool executed =
                    !d.check_cond || cond_holds(d.ins.cond, core.regs.flags());
                if (observer_.ptr)
                    observer_.ptr->on_step(*this, ci, d, lpc, executed);

                StepCtx cx{core, cnt, d, ci, lpc, cost, true};
                if (executed) d.fn(*this, cx);

                if (status_ == RunStatus::KernelPanic) goto out;
                if (!cx.retire) {
                    // Side exit: the instruction faulted, trap already taken
                    // (core.regs.pc() still held the faulting pc for epc).
                    core.local_tick += cx.cost + 2;
                    goto out;
                }

                lpc += isa::kInstrBytes;
                core.regs.set_pc(lpc);
                ++core.retired;
                ++total_retired_;
                ++*retired_bucket;
                if (profile) ++func_instr_[image_->func_of_instr[idx + done]];
                if (core.timer > 0 && --core.timer == 0)
                    core.pending_timer = true;
                core.local_tick += cx.cost;
            }
            // A stop_at or timer clip ends the burst mid-run; the timer
            // fires exactly on the step that drained it, and the next burst
            // entry delivers the preemption.
            if (done < seg) break;
            // Segment exhausted: lpc sits at the next record — an ender, or
            // the head of the next text page (runs never cross pages).
        }

        // Between chain links: deliver pending user interrupts at the next
        // burst entry, and end the burst when the next pc leaves the
        // hoisted-check fast path.
        if (core.mode == Mode::USER &&
            (core.pending_timer || core.pending_ipi))
            break;
        if (total_retired_ >= stop_at) break;
        if (!load_segment()) break;
        if (seg == 0 && !trace_chainable(di->ins.op)) break;
    }
out:
    if (iline_credits != 0) l1i.credit_hits(iline_credits);
}

/// One scheduler-grade step of core `ci` under the trace engine, with a
/// persistent per-core cursor (tcur_[ci]) memoising the segment derivation
/// — translation, overlay-page check, user fetch permission, run length —
/// across the interleaved steps of run_trace_multi. The cursor is a pure
/// memo keyed by pc: it is consulted only when (left != 0 && lpc ==
/// core.regs.pc()), and every path that redirects the pc (trap, ender,
/// fallback) either updates it or zeroes `left`, so a hit can never be
/// stale. Mode changes always redirect the pc (trap vector / ERET target),
/// so pc equality also re-keys the hoisted mode-dependent facts (user_ok,
/// retired bucket). Step mechanics are the step_cached transcription with
/// the derivation replaced by the cursor; per-step facts (iline MRU,
/// predicate, observer, timer, tick) stay per step.
void Machine::trace_step_one(unsigned ci) {
    CoreState& core = cores_[ci];
    CoreCounters& cnt = counters_[ci];
    TraceCursor& cur = tcur_[ci];

    if (core.mode == Mode::USER && (core.pending_timer || core.pending_ipi)) {
        TrapCause cause;
        if (core.pending_timer) {
            cause = TrapCause::IRQ_TIMER;
            core.pending_timer = false;
        } else {
            cause = TrapCause::IRQ_IPI;
            core.pending_ipi = false;
        }
        take_trap(core, cause, 0, 0);
        core.local_tick += 2;
        cur.left = 0;
        return;
    }

    const std::uint64_t lpc = core.regs.pc();
    const DecodedInstr* d;
    std::size_t idx;
    bool at_ender;
    if (cur.left != 0 && cur.lpc == lpc) {
        d = cur.di;
        idx = cur.idx;
        at_ender = cur.ender;
    } else {
        // Cursor miss: (re)derive the segment at lpc. Text cannot change
        // inside the window (run_trace_multi refreshed the overlay at
        // entry; guest stores cannot reach the text mirror), so the
        // overlay-page check made here stays valid for the cursor's life.
        if (!image_->contains_code(lpc)) {
            cur.left = 0;
            ++tstats_.fallbacks;
            step_cached(ci);
            return;
        }
        idx = image_->instr_index(lpc);
        if (!overlay_.empty() && trace_page_overlaid(idx)) {
            cur.left = 0;
            ++tstats_.fallbacks;
            step_cached(ci);
            return;
        }
        d = &(*xcache_)[idx];
        if (core.mode != Mode::KERNEL && !d->user_ok) {
            cur.left = 0;
            ++tstats_.fallbacks;
            step_cached(ci);
            return;
        }
        const std::uint64_t seg = xcache_->run_len(idx);
        at_ender = seg == 0;
        if (!at_ender) {
            ++tstats_.bursts;
            cur.di = d;
            cur.lpc = lpc;
            cur.idx = idx;
            cur.left = static_cast<std::uint32_t>(seg);
            cur.ender = false;
        }
    }

    if (at_ender) {
        // Ender at lpc. Chainable control transfers execute inline with the
        // next_pc_/branch_taken_ mechanics of step_cached; everything else
        // single-steps with full checks. The ender's user_ok needs no
        // re-check on a parked resume: runs ascend within a page and
        // user_ok is monotone in the address, so the segment head's check
        // covers it (and the mode cannot have changed — that would have
        // redirected the pc and missed the cursor).
        cur.left = 0;
        if (!trace_chainable(d->ins.op)) {
            ++tstats_.fallbacks;
            step_cached(ci);
            return;
        }
        ++tstats_.chain_links;
        std::uint64_t cost = 1;
        const std::uint64_t iline = lpc >> 6;
        if (iline == core.last_iline) {
            l1i_[ci].credit_hit();
        } else {
            if (!l1i_[ci].access(lpc)) {
                cost += kL1MissPenalty;
                if (!l2_.access(lpc)) cost += kL2MissPenalty;
            }
            core.last_iline = iline;
        }
        const bool executed =
            !d->check_cond || cond_holds(d->ins.cond, core.regs.flags());
        if (observer_.ptr) observer_.ptr->on_step(*this, ci, *d, lpc, executed);
        next_pc_ = lpc + isa::kInstrBytes;
        branch_taken_ = false;
        StepCtx cx{core, cnt, *d, ci, lpc, cost, true};
        if (executed) d->fn(*this, cx);
        if (status_ == RunStatus::KernelPanic) return;
        if (!cx.retire) {
            core.local_tick += cx.cost + 2;
            return;
        }
        core.regs.set_pc(next_pc_); // never SVC here (not chainable)
        if (branch_taken_) cx.cost += 1;
        ++core.retired;
        ++total_retired_;
        if (core.mode == Mode::KERNEL) {
            ++cnt.kernel_retired;
        } else {
            ++cnt.user_retired;
        }
        if (executed) {
            if (d->cflags & kDiBranch) {
                ++cnt.branches;
                if (branch_taken_) ++cnt.taken_branches;
            }
            if (d->cflags & kDiCall) ++cnt.calls;
        }
        if (cfg_.profile) ++func_instr_[image_->func_of_instr[idx]];
        if (core.timer > 0 && --core.timer == 0) core.pending_timer = true;
        core.local_tick += cx.cost;
        return;
    }

    // One straight-line record off the cursor: no branch is possible, so
    // retirement is pc += 4 and the branch bookkeeping is skipped (in-run
    // cflags are always 0, and only V7 generic ops carry check_cond).
    std::uint64_t cost = 1;
    const std::uint64_t iline = lpc >> 6;
    if (iline == core.last_iline) {
        l1i_[ci].credit_hit();
    } else {
        if (!l1i_[ci].access(lpc)) {
            cost += kL1MissPenalty;
            if (!l2_.access(lpc)) cost += kL2MissPenalty;
        }
        core.last_iline = iline;
    }
    const bool executed =
        !d->check_cond || cond_holds(d->ins.cond, core.regs.flags());
    if (observer_.ptr) observer_.ptr->on_step(*this, ci, *d, lpc, executed);

    StepCtx cx{core, cnt, *d, ci, lpc, cost, true};
    if (executed) d->fn(*this, cx);

    if (status_ == RunStatus::KernelPanic) {
        cur.left = 0;
        return;
    }
    if (!cx.retire) {
        // Side exit: trap taken, the instruction does not retire, and the
        // trap redirected the pc off the segment.
        core.local_tick += cx.cost + 2;
        cur.left = 0;
        return;
    }

    core.regs.set_pc(lpc + isa::kInstrBytes);
    ++core.retired;
    ++total_retired_;
    if (core.mode == Mode::KERNEL) {
        ++cnt.kernel_retired;
    } else {
        ++cnt.user_retired;
    }
    if (cfg_.profile) ++func_instr_[image_->func_of_instr[idx]];
    if (core.timer > 0 && --core.timer == 0) core.pending_timer = true;
    core.local_tick += cx.cost;

    // Advance the cursor; when the run exhausts on the same text page the
    // next record is its genuine ender (the page clip did not bind), so
    // park it and skip the next step's preamble.
    if (--cur.left == 0) {
        const std::size_t nidx = idx + 1;
        if (nidx % isa::kTextRecordsPerPage != 0) {
            cur.di = d + 1;
            cur.idx = nidx;
            cur.lpc = lpc + isa::kInstrBytes;
            cur.left = 1;
            cur.ender = true;
        }
    } else {
        cur.di = d + 1;
        cur.idx = idx + 1;
        cur.lpc = lpc + isa::kInstrBytes;
    }
}

void Machine::run_trace_multi(std::uint64_t stop_at) {
    // Inner scheduling loop for the >= 2 runnable-cores regime. The
    // reference schedule (argmin over local ticks, ties to the lowest core
    // index) is reproduced in rounds: scan once for the minimum tick S,
    // then step — in index order — every runnable core whose tick is still
    // S when its turn comes. A full round is always scan-order-valid:
    // every member holds the minimum tick at its turn (stepped members
    // moved strictly past S, since a step costs >= 1 tick; rivals sit
    // strictly above S; ties break to the lowest unstepped index), so the
    // round equals the per-instruction argmin schedule bit-for-bit while
    // costing one scan per round instead of one per step. Any prefix of a
    // round is equally valid, so the mid-round breaks (stop_at reached,
    // status change, sched_event_) also preserve the schedule; the
    // run_until re-scan then re-picks the same core the reference would.
    //
    // Wakes and IPIs set sched_event_, so the runnable set can only shrink
    // inside a round (a member's own step sleeping or halting it) — a
    // sleeper never silently rejoins mid-round. Shrink to < 2 runnable
    // cores returns to run_until for solo bursts / deadlock handling.
    const std::size_t n = cores_.size();
    if (tcur_.size() != n) tcur_.assign(n, TraceCursor{});
    else
        for (TraceCursor& c : tcur_) c.left = 0;
    if (mem_.code_gen() != code_gen_seen_) refresh_code_overlay();

    sched_event_ = false;
    for (;;) {
        if (status_ != RunStatus::Running || total_retired_ >= stop_at ||
            sched_event_)
            return;
        // One scan for the minimum tick t1 (lowest holder i1, holder count
        // count_min) and the first rival level above it: tnext = smallest
        // tick strictly greater than t1, inext = its lowest-indexed holder.
        // count_min tells the regime apart: several cores at the minimum
        // -> round; a lone holder -> burst up to the tnext claim.
        constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t t1 = kMax, tnext = kMax;
        unsigned i1 = 0, inext = 0, runnable = 0, count_min = 0;
        for (unsigned c = 0; c < n; ++c) {
            const CoreState& k = cores_[c];
            if (k.halted || k.sleeping) continue;
            ++runnable;
            if (k.local_tick < t1) {
                tnext = t1;
                inext = i1;
                t1 = k.local_tick;
                i1 = c;
                count_min = 1;
            } else if (k.local_tick == t1) {
                ++count_min;
            } else if (k.local_tick < tnext) {
                tnext = k.local_tick;
                inext = c;
            }
        }
        if (runnable < 2) return;
        if (count_min > 1) {
            // Round regime (near-lockstep ticks): step every runnable core
            // still holding t1 when its turn comes, in index order. When a
            // round is uniform — every member's step cost exactly one tick
            // and none slept or halted — and no rival sits at t1 + 1 (t2
            // bounds them all), the member set at t1 + 1 is provably the
            // same set in the same order, so the next round runs without
            // rescanning. Lockstep phases then pay one scan per run of
            // uniform rounds instead of one per round.
            for (;;) {
                bool uniform = true;
                for (unsigned c = i1; c < n; ++c) {
                    const CoreState& k = cores_[c];
                    if (k.halted || k.sleeping || k.local_tick != t1)
                        continue;
                    trace_step_one(c);
                    if (status_ != RunStatus::Running ||
                        total_retired_ >= stop_at || sched_event_)
                        return;
                    if (k.local_tick != t1 + 1 || k.sleeping || k.halted)
                        uniform = false;
                }
                if (!uniform || tnext <= t1 + 1) break;
                ++t1;
            }
        } else {
            // Burst regime (diverged ticks, e.g. an FP latency or a cache
            // miss on the rivals): core i1 stays the argmin pick while its
            // tick is below every rival's claim. The nearest claim comes
            // from inext — the lowest-indexed rival at the next tick level
            // — whose claim i1 undercuts at equality iff i1 < inext.
            // Rivals above tnext claim no earlier, so the burst is exactly
            // the reference schedule's run of consecutive i1 picks.
            const std::uint64_t horizon = tnext + (i1 < inext ? 1 : 0);
            CoreState& k = cores_[i1];
            do {
                trace_step_one(i1);
            } while (k.local_tick < horizon &&
                     status_ == RunStatus::Running &&
                     total_retired_ < stop_at && !sched_event_ &&
                     !k.sleeping && !k.halted);
        }
    }
}

void Machine::step_switch(unsigned ci) {
    CoreState& core = cores_[ci];
    CoreCounters& cnt = counters_[ci];
    const unsigned w = core.regs.width_bits();
    const std::uint64_t mask = core.regs.width_mask();
    const isa::Profile prof = core.regs.profile();

    // Pending interrupts preempt user code only; the kernel is
    // non-preemptible and polls (WFI) instead.
    if (core.mode == Mode::USER && (core.pending_timer || core.pending_ipi)) {
        TrapCause cause;
        if (core.pending_timer) {
            cause = TrapCause::IRQ_TIMER;
            core.pending_timer = false;
        } else {
            cause = TrapCause::IRQ_IPI;
            core.pending_ipi = false;
        }
        take_trap(core, cause, 0, 0);
        core.local_tick += 2;
        return;
    }

    // Fetch.
    const std::uint64_t pc = core.regs.pc();
    const bool fetch_ok =
        image_->contains_code(pc) &&
        (core.mode == Mode::KERNEL || pc >= image_->kernel_text_end);
    if (!fetch_ok) {
        if (core.mode == Mode::KERNEL) {
            panic(TrapCause::PREFETCH_ABORT);
        } else {
            take_trap(core, TrapCause::PREFETCH_ABORT, 0, pc);
            core.local_tick += 2;
        }
        return;
    }
    std::uint64_t cost = 1;
    if (!l1i_[ci].access(pc)) {
        cost += kL1MissPenalty;
        if (!l2_.access(pc)) cost += kL2MissPenalty;
    }
    const std::size_t idx = image_->instr_index(pc);
    // Read through the text overlay so a fault-corrupted (re-decoded) page
    // is visible to the legacy engine too — both engines execute the same
    // instruction stream whatever the mirror holds.
    const DecodedInstr* dec = fetch_decoded(idx);
    const Instr& ins = dec->ins;
    const Mode mode_at_fetch = core.mode;
    next_pc_ = pc + isa::kInstrBytes;
    branch_taken_ = false;

    // V7 conditional execution: a failed predicate retires as a bubble.
    bool executed = true;
    if (prof == isa::Profile::V7 && ins.cond != Cond::AL && ins.op != Op::BCOND &&
        !cond_holds(ins.cond, core.regs.flags())) {
        executed = false;
    }

    if (observer_.ptr) observer_.ptr->on_step(*this, ci, *dec, pc, executed);

    bool retire = true;     // false when the instruction faulted
    if (executed) {
        auto& regs = core.regs;
        auto x = [&](unsigned r) { return regs.x(r); };
        auto vb = [&](unsigned r) { return regs.v_bits(r); };
        auto vd = [&](unsigned r) { return util::bits_f64(regs.v_bits(r)); };
        auto setv = [&](unsigned r, double d) { regs.set_v_bits(r, util::f64_bits(d)); };
        auto addr_of = [&]() {
            const std::uint64_t base = x(ins.rn);
            const std::uint64_t off = ins.rm != isa::kNoReg
                                          ? (x(ins.rm) << ins.shift)
                                          : static_cast<std::uint64_t>(ins.imm);
            return (base + off) & mask;
        };
        // Returns false when the access faulted (trap already taken).
        auto load = [&](std::uint64_t vaddr, unsigned size, std::uint64_t& out) {
            std::uint64_t phys = 0;
            if (!data_access(core, vaddr, size, false, phys, cost)) return false;
            out = mem_.load(phys, size);
            ++cnt.loads;
            return true;
        };
        auto store = [&](std::uint64_t vaddr, unsigned size, std::uint64_t val) {
            std::uint64_t phys = 0;
            if (!data_access(core, vaddr, size, true, phys, cost)) return false;
            mem_.store(phys, size, val);
            ++cnt.stores;
            return true;
        };
        auto trap_undef = [&] {
            if (core.mode == Mode::KERNEL) {
                panic(TrapCause::UNDEF);
            } else {
                take_trap(core, TrapCause::UNDEF, static_cast<std::uint64_t>(ins.op), 0);
            }
            retire = false;
        };

        switch (ins.op) {
            case Op::MOVI: write_gpr(core, ins.rd, static_cast<std::uint64_t>(ins.imm)); break;
            case Op::MOV: write_gpr(core, ins.rd, x(ins.rn)); break;
            case Op::MVN: write_gpr(core, ins.rd, ~x(ins.rn)); break;
            case Op::ADD: write_gpr(core, ins.rd, x(ins.rn) + x(ins.rm)); break;
            case Op::SUB: write_gpr(core, ins.rd, x(ins.rn) - x(ins.rm)); break;
            case Op::AND: write_gpr(core, ins.rd, x(ins.rn) & x(ins.rm)); break;
            case Op::ORR: write_gpr(core, ins.rd, x(ins.rn) | x(ins.rm)); break;
            case Op::EOR: write_gpr(core, ins.rd, x(ins.rn) ^ x(ins.rm)); break;
            case Op::MUL: write_gpr(core, ins.rd, x(ins.rn) * x(ins.rm)); break;
            case Op::ADDI: write_gpr(core, ins.rd, x(ins.rn) + static_cast<std::uint64_t>(ins.imm)); break;
            case Op::SUBI: write_gpr(core, ins.rd, x(ins.rn) - static_cast<std::uint64_t>(ins.imm)); break;
            case Op::ANDI: write_gpr(core, ins.rd, x(ins.rn) & static_cast<std::uint64_t>(ins.imm)); break;
            case Op::ORRI: write_gpr(core, ins.rd, x(ins.rn) | static_cast<std::uint64_t>(ins.imm)); break;
            case Op::EORI: write_gpr(core, ins.rd, x(ins.rn) ^ static_cast<std::uint64_t>(ins.imm)); break;
            case Op::ADDS: {
                const AluResult r = add_with_carry(x(ins.rn), x(ins.rm), 0, w);
                regs.flags() = r.flags;
                write_gpr(core, ins.rd, r.value);
                break;
            }
            case Op::SUBS: {
                const AluResult r = add_with_carry(x(ins.rn), ~x(ins.rm), 1, w);
                regs.flags() = r.flags;
                write_gpr(core, ins.rd, r.value);
                break;
            }
            case Op::ADDSI: {
                const AluResult r =
                    add_with_carry(x(ins.rn), static_cast<std::uint64_t>(ins.imm), 0, w);
                regs.flags() = r.flags;
                write_gpr(core, ins.rd, r.value);
                break;
            }
            case Op::SUBSI: {
                const AluResult r =
                    add_with_carry(x(ins.rn), ~static_cast<std::uint64_t>(ins.imm), 1, w);
                regs.flags() = r.flags;
                write_gpr(core, ins.rd, r.value);
                break;
            }
            case Op::ADCS: {
                const AluResult r =
                    add_with_carry(x(ins.rn), x(ins.rm), regs.flags().c, w);
                regs.flags() = r.flags;
                write_gpr(core, ins.rd, r.value);
                break;
            }
            case Op::SBCS: {
                const AluResult r =
                    add_with_carry(x(ins.rn), ~x(ins.rm), regs.flags().c, w);
                regs.flags() = r.flags;
                write_gpr(core, ins.rd, r.value);
                break;
            }
            case Op::UMULL: {
                const std::uint64_t p = static_cast<std::uint64_t>(static_cast<std::uint32_t>(x(ins.rn))) *
                                        static_cast<std::uint32_t>(x(ins.rm));
                write_gpr(core, ins.rd, p & 0xFFFFFFFFu);
                write_gpr(core, ins.ra, p >> 32);
                break;
            }
            case Op::SMULL: {
                const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(x(ins.rn))) *
                                       static_cast<std::int32_t>(x(ins.rm));
                write_gpr(core, ins.rd, static_cast<std::uint64_t>(p) & 0xFFFFFFFFu);
                write_gpr(core, ins.ra, static_cast<std::uint64_t>(p) >> 32);
                break;
            }
            case Op::UMULH: {
                const unsigned __int128 p =
                    static_cast<unsigned __int128>(x(ins.rn)) * x(ins.rm);
                write_gpr(core, ins.rd, static_cast<std::uint64_t>(p >> 64));
                break;
            }
            case Op::UDIV: {
                const std::uint64_t b = x(ins.rm);
                write_gpr(core, ins.rd, b == 0 ? 0 : x(ins.rn) / b);
                break;
            }
            case Op::SDIV: {
                const std::int64_t a = util::sign_extend(x(ins.rn), w);
                const std::int64_t b = util::sign_extend(x(ins.rm), w);
                std::int64_t q = 0;
                if (b != 0) {
                    if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
                        q = a;
                    } else {
                        q = a / b;
                    }
                }
                write_gpr(core, ins.rd, static_cast<std::uint64_t>(q));
                break;
            }
            case Op::LSLI: write_gpr(core, ins.rd, shift_left(x(ins.rn), static_cast<unsigned>(ins.imm), w)); break;
            case Op::LSRI: write_gpr(core, ins.rd, shift_right(x(ins.rn), static_cast<unsigned>(ins.imm), w)); break;
            case Op::ASRI: write_gpr(core, ins.rd, shift_right_arith(x(ins.rn), static_cast<unsigned>(ins.imm), w)); break;
            case Op::LSLV: write_gpr(core, ins.rd, shift_left(x(ins.rn), static_cast<unsigned>(x(ins.rm) & 0xFF), w)); break;
            case Op::LSRV: write_gpr(core, ins.rd, shift_right(x(ins.rn), static_cast<unsigned>(x(ins.rm) & 0xFF), w)); break;
            case Op::ASRV: write_gpr(core, ins.rd, shift_right_arith(x(ins.rn), static_cast<unsigned>(x(ins.rm) & 0xFF), w)); break;
            case Op::LSLSI: {
                const unsigned sh = static_cast<unsigned>(ins.imm);
                const std::uint64_t a = x(ins.rn);
                const std::uint64_t r = shift_left(a, sh, w);
                regs.flags().c = util::get_bit(a, w - sh);
                regs.flags().n = util::get_bit(r, w - 1);
                regs.flags().z = r == 0;
                write_gpr(core, ins.rd, r);
                break;
            }
            case Op::LSRSI: {
                const unsigned sh = static_cast<unsigned>(ins.imm);
                const std::uint64_t a = x(ins.rn);
                const std::uint64_t r = shift_right(a, sh, w);
                regs.flags().c = util::get_bit(a, sh - 1);
                regs.flags().n = false;
                regs.flags().z = r == 0;
                write_gpr(core, ins.rd, r);
                break;
            }
            case Op::CLZ: {
                const std::uint64_t a = x(ins.rn);
                unsigned n;
                if (a == 0) {
                    n = w;
                } else if (w == 32) {
                    n = util::clz(a, 32);
                } else {
                    n = util::clz(a, 64);
                }
                write_gpr(core, ins.rd, n);
                break;
            }
            case Op::CMP: regs.flags() = add_with_carry(x(ins.rn), ~x(ins.rm), 1, w).flags; break;
            case Op::CMPI: regs.flags() = add_with_carry(x(ins.rn), ~static_cast<std::uint64_t>(ins.imm), 1, w).flags; break;
            case Op::CMN: regs.flags() = add_with_carry(x(ins.rn), x(ins.rm), 0, w).flags; break;
            case Op::TST: {
                const std::uint64_t r = (x(ins.rn) & x(ins.rm)) & mask;
                regs.flags().n = util::get_bit(r, w - 1);
                regs.flags().z = r == 0;
                break;
            }
            case Op::CSEL:
                write_gpr(core, ins.rd,
                          cond_holds(ins.cond, regs.flags()) ? x(ins.rn) : x(ins.rm));
                break;
            case Op::CSET:
                write_gpr(core, ins.rd, cond_holds(ins.cond, regs.flags()) ? 1 : 0);
                break;

            case Op::B:
                next_pc_ = static_cast<std::uint64_t>(ins.imm);
                branch_taken_ = true;
                break;
            case Op::BCOND:
                if (cond_holds(ins.cond, regs.flags())) {
                    next_pc_ = static_cast<std::uint64_t>(ins.imm);
                    branch_taken_ = true;
                }
                break;
            case Op::BL:
                regs.set_lr(pc + isa::kInstrBytes);
                next_pc_ = static_cast<std::uint64_t>(ins.imm);
                branch_taken_ = true;
                if (cfg_.profile) {
                    const std::uint64_t t = static_cast<std::uint64_t>(ins.imm);
                    if (image_->contains_code(t))
                        ++func_calls_[image_->func_of_instr[image_->instr_index(t)]];
                }
                break;
            case Op::BLR: {
                const std::uint64_t t = x(ins.rn);
                regs.set_lr(pc + isa::kInstrBytes);
                next_pc_ = t;
                branch_taken_ = true;
                if (cfg_.profile && image_->contains_code(t))
                    ++func_calls_[image_->func_of_instr[image_->instr_index(t)]];
                break;
            }
            case Op::BR:
                next_pc_ = x(ins.rn);
                branch_taken_ = true;
                break;
            case Op::RET:
                next_pc_ = regs.lr();
                branch_taken_ = true;
                break;
            case Op::CBZ:
                if (x(ins.rn) == 0) {
                    next_pc_ = static_cast<std::uint64_t>(ins.imm);
                    branch_taken_ = true;
                }
                break;
            case Op::CBNZ:
                if (x(ins.rn) != 0) {
                    next_pc_ = static_cast<std::uint64_t>(ins.imm);
                    branch_taken_ = true;
                }
                break;

            case Op::LDR: {
                std::uint64_t v;
                if (!load(addr_of(), core.regs.profile() == isa::Profile::V7 ? 4 : 8, v)) { retire = false; break; }
                write_gpr(core, ins.rd, v);
                break;
            }
            case Op::STR:
                if (!store(addr_of(), core.regs.profile() == isa::Profile::V7 ? 4 : 8, x(ins.rd))) retire = false;
                break;
            case Op::LDRW: {
                std::uint64_t v;
                if (!load(addr_of(), 4, v)) { retire = false; break; }
                write_gpr(core, ins.rd, v);
                break;
            }
            case Op::STRW:
                if (!store(addr_of(), 4, x(ins.rd) & 0xFFFFFFFFu)) retire = false;
                break;
            case Op::LDRB: {
                std::uint64_t v;
                if (!load(addr_of(), 1, v)) { retire = false; break; }
                write_gpr(core, ins.rd, v);
                break;
            }
            case Op::STRB:
                if (!store(addr_of(), 1, x(ins.rd) & 0xFF)) retire = false;
                break;
            case Op::LDM: {
                std::uint64_t a = x(ins.rn) & mask;
                unsigned n = 0;
                for (unsigned r = 0; r < 15 && retire; ++r) {
                    if (!(ins.regmask & (1u << r))) continue;
                    std::uint64_t v;
                    if (!load(a + 4 * n, 4, v)) { retire = false; break; }
                    write_gpr(core, r, v);
                    ++n;
                }
                if (retire && ins.wb) write_gpr(core, ins.rn, (x(ins.rn) + 4 * n) & mask);
                break;
            }
            case Op::STM: {
                const std::uint64_t a = x(ins.rn) & mask;
                unsigned n = 0;
                for (unsigned r = 0; r < 15 && retire; ++r) {
                    if (!(ins.regmask & (1u << r))) continue;
                    if (!store(a + 4 * n, 4, x(r))) { retire = false; break; }
                    ++n;
                }
                if (retire && ins.wb) write_gpr(core, ins.rn, (x(ins.rn) + 4 * n) & mask);
                break;
            }
            case Op::LDP: {
                const std::uint64_t a = addr_of();
                std::uint64_t v1, v2;
                if (!load(a, 8, v1) || !load(a + 8, 8, v2)) { retire = false; break; }
                write_gpr(core, ins.rd, v1);
                write_gpr(core, ins.ra, v2);
                break;
            }
            case Op::STP: {
                const std::uint64_t a = addr_of();
                if (!store(a, 8, x(ins.rd)) || !store(a + 8, 8, x(ins.ra))) retire = false;
                break;
            }
            case Op::LDREX: {
                const unsigned size = core.regs.profile() == isa::Profile::V7 ? 4 : 8;
                std::uint64_t phys = 0;
                if (!data_access(core, x(ins.rn) & mask, size, false, phys, cost)) { retire = false; break; }
                write_gpr(core, ins.rd, mem_.load(phys, size));
                ++cnt.loads;
                core.excl_addr = phys;
                core.excl_valid = true;
                break;
            }
            case Op::STREX: {
                const unsigned size = core.regs.profile() == isa::Profile::V7 ? 4 : 8;
                const std::uint64_t vaddr = x(ins.rn) & mask;
                const Translation t =
                    mem_.translate(vaddr, size, core.mode == Mode::KERNEL, core.curproc);
                if (!t.ok()) {
                    if (core.mode == Mode::KERNEL) {
                        panic(TrapCause::DATA_ABORT);
                    } else {
                        take_trap(core, TrapCause::DATA_ABORT,
                                  static_cast<std::uint64_t>(t.fault), vaddr);
                    }
                    retire = false;
                    break;
                }
                if (core.excl_valid && core.excl_addr == t.phys) {
                    if (uncore_.ptr)
                        uncore_.ptr->on_data_access(*this, ci, t.phys, size,
                                                    true, false, false, false);
                    mem_.store(t.phys, size, x(ins.rm));
                    ++cnt.stores;
                    core.excl_valid = false;
                    invalidate_reservations(t.phys, &core);
                    write_gpr(core, ins.rd, 0);
                } else {
                    core.excl_valid = false;
                    write_gpr(core, ins.rd, 1);
                }
                break;
            }

            case Op::FADD: setv(ins.rd, vd(ins.rn) + vd(ins.rm)); ++cnt.fp_ops; break;
            case Op::FSUB: setv(ins.rd, vd(ins.rn) - vd(ins.rm)); ++cnt.fp_ops; break;
            case Op::FMUL: setv(ins.rd, vd(ins.rn) * vd(ins.rm)); ++cnt.fp_ops; break;
            case Op::FDIV: setv(ins.rd, vd(ins.rn) / vd(ins.rm)); ++cnt.fp_ops; cost += 10; break;
            case Op::FSQRT: setv(ins.rd, std::sqrt(vd(ins.rn))); ++cnt.fp_ops; cost += 10; break;
            case Op::FNEG: setv(ins.rd, -vd(ins.rn)); ++cnt.fp_ops; break;
            case Op::FABS: setv(ins.rd, std::fabs(vd(ins.rn))); ++cnt.fp_ops; break;
            case Op::FMADD: setv(ins.rd, std::fma(vd(ins.rn), vd(ins.rm), vd(ins.ra))); ++cnt.fp_ops; break;
            case Op::FMOV: regs.set_v_bits(ins.rd, vb(ins.rn)); ++cnt.fp_ops; break;
            case Op::FMOVI: regs.set_v_bits(ins.rd, static_cast<std::uint64_t>(ins.imm)); ++cnt.fp_ops; break;
            case Op::FCMP: {
                const double a = vd(ins.rn), b = vd(ins.rm);
                Flags f;
                if (std::isnan(a) || std::isnan(b)) {
                    f = Flags{false, false, true, true};
                } else if (a == b) {
                    f = Flags{false, true, true, false};
                } else if (a < b) {
                    f = Flags{true, false, false, false};
                } else {
                    f = Flags{false, false, true, false};
                }
                regs.flags() = f;
                ++cnt.fp_ops;
                break;
            }
            case Op::FCVTZS: {
                const double d = vd(ins.rn);
                std::int64_t r;
                if (std::isnan(d)) {
                    r = 0;
                } else if (d >= 9.2233720368547758e18) {
                    r = std::numeric_limits<std::int64_t>::max();
                } else if (d <= -9.2233720368547758e18) {
                    r = std::numeric_limits<std::int64_t>::min();
                } else {
                    r = static_cast<std::int64_t>(d);
                }
                write_gpr(core, ins.rd, static_cast<std::uint64_t>(r));
                ++cnt.fp_ops;
                break;
            }
            case Op::SCVTF:
                setv(ins.rd, static_cast<double>(static_cast<std::int64_t>(x(ins.rn))));
                ++cnt.fp_ops;
                break;
            case Op::FMOVVX: write_gpr(core, ins.rd, vb(ins.rn)); ++cnt.fp_ops; break;
            case Op::FMOVXV: regs.set_v_bits(ins.rd, x(ins.rn)); ++cnt.fp_ops; break;
            case Op::FLDR: {
                std::uint64_t v;
                if (!load(addr_of(), 8, v)) { retire = false; break; }
                regs.set_v_bits(ins.rd, v);
                break;
            }
            case Op::FSTR:
                if (!store(addr_of(), 8, vb(ins.rd))) retire = false;
                break;

            case Op::SVC:
                if (core.mode == Mode::KERNEL) {
                    panic(TrapCause::SVC);
                    retire = false;
                } else {
                    // SVC retires; the trap redirects control flow.
                    take_trap(core, TrapCause::SVC,
                              static_cast<std::uint64_t>(ins.imm), 0);
                    next_pc_ = core.regs.pc(); // already set by take_trap
                }
                break;
            case Op::SYSRD: {
                std::uint64_t v = 0;
                if (!sysreg_read(core, static_cast<SysReg>(ins.imm), v)) {
                    trap_undef();
                    break;
                }
                write_gpr(core, ins.rd, v);
                break;
            }
            case Op::SYSWR:
                if (!sysreg_write(core, static_cast<SysReg>(ins.imm), x(ins.rn))) {
                    trap_undef();
                    break;
                }
                break;
            case Op::ERET:
                if (core.mode != Mode::KERNEL) {
                    trap_undef();
                    break;
                }
                {
                    const std::uint64_t t = core.regs.sp();
                    core.regs.set_sp(core.banked_sp);
                    core.banked_sp = t;
                }
                core.mode = Mode::USER;
                next_pc_ = core.epc;
                branch_taken_ = true;
                core.excl_valid = false;
                if (!app_started_) {
                    app_started_ = true;
                    app_start_retired_ = total_retired_;
                }
                break;
            case Op::WFI:
                if (core.mode != Mode::KERNEL) {
                    trap_undef();
                    break;
                }
                if (core.pending_timer || core.pending_ipi) {
                    core.pending_timer = false;
                    core.pending_ipi = false;
                } else {
                    core.sleeping = true;
                    ++cnt.wfi_sleeps;
                }
                break;
            case Op::HLT:
                if (core.mode != Mode::KERNEL) {
                    trap_undef();
                    break;
                }
                core.halted = true;
                break;
            case Op::NOP: break;
            case Op::UDF: trap_undef(); break;
        }
    }

    if (status_ == RunStatus::KernelPanic) return;

    if (!retire) {
        core.local_tick += cost + 2;
        return;
    }

    if (ins.op != Op::SVC) core.regs.set_pc(next_pc_);
    if (branch_taken_) cost += 1;

    ++core.retired;
    ++total_retired_;
    if (mode_at_fetch == Mode::KERNEL) {
        ++cnt.kernel_retired;
    } else {
        ++cnt.user_retired;
    }
    if (executed) {
        const isa::OpInfo& oi = isa::op_info(ins.op);
        if (oi.is_branch) {
            ++cnt.branches;
            if (branch_taken_) ++cnt.taken_branches;
        }
        if (oi.is_call) ++cnt.calls;
    }
    if (cfg_.profile) ++func_instr_[image_->func_of_instr[idx]];
    if (core.timer > 0 && --core.timer == 0) core.pending_timer = true;
    core.local_tick += cost;
}

} // namespace serep::sim
