// Snapshot helpers for checkpoint-based campaign fast-forward.
//
// A Machine is value-copyable, so a snapshot is simply a copy taken while the
// interpreter is paused at a run_until() boundary. Because execution is fully
// deterministic, a copy taken at retired-instruction count R and resumed
// behaves bit-identically to a from-reset execution driven past R — the
// invariant the orchestrator's checkpoint ladder is built on (and that
// tests/property_test.cpp verifies across random snapshot points).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/machine.hpp"

namespace serep::sim {

/// Approximate host bytes held by one Machine value copy. Dominated by guest
/// physical memory; used by the orchestrator to budget its checkpoint ladder.
std::size_t machine_footprint_bytes(const Machine& m) noexcept;

/// Run `m` until `stop_at` or a terminal status, pausing at every multiple of
/// `stride` retired instructions to invoke `on_checkpoint` (stride == 0 runs
/// straight through). The callback observes the machine at the boundary; a
/// value copy taken there is a valid resume point.
RunStatus run_with_checkpoints(Machine& m, std::uint64_t stride,
                               std::uint64_t stop_at,
                               const std::function<void(const Machine&)>& on_checkpoint);

} // namespace serep::sim
