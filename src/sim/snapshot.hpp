// Snapshot helpers for checkpoint-based campaign fast-forward.
//
// A Machine is value-copyable, so a full snapshot is simply a copy taken
// while the interpreter is paused at a run_until() boundary. Because
// execution is fully deterministic, a copy taken at retired-instruction
// count R and resumed behaves bit-identically to a from-reset execution
// driven past R — the invariant the orchestrator's checkpoint ladder is
// built on (and that tests/property_test.cpp verifies across random
// snapshot points).
//
// Delta snapshots cut the memory cost: guest physical memory dominates a
// Machine copy (megabytes vs a few KB of cores/caches/counters), and
// between two nearby pause points only a small fraction of pages change.
// A MachineDelta therefore stores the full non-memory state (a Machine
// "shell" whose memory payload is dropped) plus only the pages that differ
// from a designated base snapshot, found via the Memory dirty-page bitmap
// and confirmed by content comparison. restore_machine_delta() rebuilds a
// Machine bit-identical to the full copy the delta was made from.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/machine.hpp"

namespace serep::sim {

/// Approximate host bytes held by one Machine value copy. Dominated by guest
/// physical memory; used by the orchestrator to budget its checkpoint ladder.
/// Counts the memory payload actually held, so a delta shell costs only the
/// fixed allowance.
std::size_t machine_footprint_bytes(const Machine& m) noexcept;

/// Dirty-page delta of a paused machine against a base snapshot.
struct MachineDelta {
    Machine shell;                    ///< full state, memory payload dropped
    std::vector<std::uint32_t> pages; ///< physical pages differing from base
    std::vector<std::uint8_t> bytes;  ///< pages.size() * kPageSize page images

    std::uint64_t retired() const noexcept { return shell.total_retired(); }
    /// Host bytes this delta holds (page images + index + shell allowance).
    std::size_t footprint_bytes() const noexcept;
};

/// Capture `cur` as a delta against `base`. Exact under the Memory dirty
/// bitmap contract: `cur`'s dirty set must cover every page written since
/// `base` was copied (clear_dirty() on the live machine right after taking
/// the base copy establishes this). `base` must hold its memory payload.
/// `cur` is non-const only to move its payload aside while the shell is
/// copied (so guest memory is never duplicated); it is restored unchanged
/// before returning.
MachineDelta make_machine_delta(Machine& cur, const Machine& base);

/// Rebuild the machine `make_machine_delta` saw, bit-identical: shell state,
/// base memory payload, delta pages applied on top.
Machine restore_machine_delta(const MachineDelta& d, const Machine& base);

/// Run `m` until `stop_at` or a terminal status, pausing at every multiple of
/// `stride` retired instructions to invoke `on_checkpoint` (stride == 0 runs
/// straight through). The callback observes the machine at the boundary; a
/// value copy taken there is a valid resume point.
RunStatus run_with_checkpoints(Machine& m, std::uint64_t stride,
                               std::uint64_t stop_at,
                               const std::function<void(const Machine&)>& on_checkpoint);

} // namespace serep::sim
