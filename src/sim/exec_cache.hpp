// Decode-once instruction cache for the execution engine.
//
// A campaign re-executes the same guest image for every one of its fault
// runs; the interpreter used to re-inspect the structural instruction word
// (opcode switch, profile-dependent access widths, OpInfo lookups, V7
// predication tests) on every step of every run. The ExecCache performs
// that work exactly once per image: each instruction becomes a DecodedInstr
// holding a pre-resolved handler pointer (sim/exec_ops.cpp) plus the
// precomputed per-instruction facts the hot loop needs. Caches are immutable
// and shared — one per image process-wide, so every Machine, every clone a
// checkpoint ladder materializes, and every shard worker reuses the same
// decode.
//
// Correctness under text corruption: guest code lives both in the image
// (structural) and in the Memory text mirror (serialized records, see
// isa/encode.hpp). All mutations of the mirror — memory-fault bit flips,
// delta-snapshot page restores, payload swaps — funnel through Memory's
// code-generation counter; the Machine overlays freshly decoded pages on
// top of the shared cache whenever the generation moves (copy-on-write at
// page granularity, so a fault run only ever re-decodes the pages its own
// fault dirtied).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/encode.hpp"
#include "isa/instr.hpp"
#include "kasm/image.hpp"

namespace serep::sim {

class Machine;
struct StepCtx;

/// Per-op execution handler (defined in sim/exec_ops.cpp).
using ExecHandler = void (*)(Machine&, StepCtx&);

/// Counter-bookkeeping bits precomputed from isa::OpInfo.
inline constexpr std::uint8_t kDiBranch = 1u << 0;
inline constexpr std::uint8_t kDiCall = 1u << 1;

struct DecodedInstr {
    isa::Instr ins;          ///< operands (also what the legacy switch executes)
    ExecHandler fn = nullptr;
    std::uint8_t mem_size = 0; ///< profile-resolved access width (memory ops)
    std::uint8_t cflags = 0;   ///< kDiBranch / kDiCall
    bool check_cond = false;   ///< V7: predicate must be evaluated before fn
    bool user_ok = false;      ///< fetch from user mode is legal at this pc
};

class ExecCache {
public:
    /// The process-wide decode-once entry point: returns the cache for
    /// `img`, building it on first use. Thread-safe; the returned cache is
    /// immutable and outlives every Machine holding it.
    static std::shared_ptr<const ExecCache> for_image(
        const std::shared_ptr<const kasm::Image>& img);

    std::size_t size() const noexcept { return instrs_.size(); }
    const DecodedInstr& operator[](std::size_t i) const noexcept {
        return instrs_[i];
    }

    /// Superblock run length for the trace engine: the number of consecutive
    /// records starting at `i` that are straight-line safe — every one of
    /// them, when it retires, falls through to pc+4 without touching the
    /// interpreter's branch state. 0 means record `i` itself is a trace
    /// ender (branch / syscall / privileged-state op / V7 PC-writer) and
    /// must go through single-step dispatch. Runs never cross a text-mirror
    /// page boundary, so one overlay lookup validates a whole trace.
    std::uint32_t run_len(std::size_t i) const noexcept { return runs_[i]; }

    /// True when `ins` may not execute inside a superblock: every control
    /// transfer, every op that can redirect or privilege-switch the core
    /// (SVC/SYSRD/SYSWR/ERET/WFI/HLT/UDF), and — V7 only — any instruction
    /// that can write R15 through write_gpr (rd/ra operand 15, or LDM/STM
    /// writeback with rn == 15), which is an implicit jump.
    static bool trace_ender(const isa::Instr& ins, isa::Profile p) noexcept;

    /// Decode one DecodedInstr from an already-validated structural word.
    static DecodedInstr make_decoded(const isa::Instr& ins, isa::Profile p,
                                     bool user_ok) noexcept;

    /// Decode `count` consecutive text-mirror records starting at `bytes`
    /// (the Machine's page-granular overlay path). `first_addr` is the code
    /// byte address of the first record; `kernel_text_end` gates user_ok.
    static void decode_records(const std::uint8_t* bytes, std::size_t count,
                               isa::Profile p, std::uint64_t first_addr,
                               std::uint64_t kernel_text_end,
                               DecodedInstr* out) noexcept;

private:
    explicit ExecCache(const kasm::Image& img);

    std::vector<DecodedInstr> instrs_;
    std::vector<std::uint16_t> runs_; ///< superblock run lengths (see run_len)
};

} // namespace serep::sim
