#include "sim/memory.hpp"

#include <cstring>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace serep::sim {

namespace layout = isa::layout;

Memory::Memory(unsigned nprocs, std::uint64_t user_size, std::uint64_t kern_size,
               std::uint64_t text_size)
    : nprocs_(nprocs), user_size_(user_size), kern_size_(kern_size) {
    util::check(nprocs >= 1 && nprocs <= 8, "Memory: 1..8 processes supported");
    util::check(user_size % layout::kPageSize == 0 && kern_size % layout::kPageSize == 0,
                "Memory: region sizes must be page-multiples");
    text_base_ = kern_size_ + std::uint64_t{nprocs_} * user_size_;
    text_size_ = (text_size + layout::kPageSize - 1) / layout::kPageSize *
                 layout::kPageSize;
    phys_.assign(text_base_ + text_size_, 0);
    pages_per_proc_ = user_size_ / layout::kPageSize;
    page_mapped_.assign(nprocs_ * pages_per_proc_, 0);
    // All-dirty until the first clear_dirty(): a snapshot consumer that never
    // clears sees every page as a candidate, which is always correct.
    dirty_.assign(phys_.size() / layout::kPageSize, 1);
    code_dirty_.assign(text_size_ / layout::kPageSize, 0);
}

void Memory::install_text(const std::uint8_t* bytes, std::uint64_t len) noexcept {
    std::memcpy(phys_.data() + text_base_, bytes,
                std::min<std::uint64_t>(len, text_size_));
}

void Memory::clone_payload_from(const Memory& base) {
    util::check(base.nprocs_ == nprocs_ && base.user_size_ == user_size_ &&
                    base.kern_size_ == kern_size_ &&
                    base.text_size_ == text_size_ && base.has_payload(),
                "clone_payload_from: geometry mismatch or base is a shell");
    phys_ = base.phys_;
    // The adopted mirror may diverge from the pristine encode exactly where
    // the *base* was ever struck; fold its sticky set into ours so the
    // overlay refresh re-decodes those pages too (ours may be a shell from
    // an unrelated point of the clone tree).
    for (std::size_t p = 0; p < code_dirty_.size(); ++p)
        code_dirty_[p] |= base.code_dirty_[p];
    ++code_gen_; // mirror content replaced wholesale: force overlay refresh
}

void Memory::set_payload(std::vector<std::uint8_t> payload) {
    util::check(payload.size() == text_base_ + text_size_,
                "set_payload: size does not match memory geometry");
    phys_ = std::move(payload);
    ++code_gen_;
}

void Memory::write_page(std::uint64_t page, const std::uint8_t* bytes) noexcept {
    std::memcpy(phys_.data() + page * layout::kPageSize, bytes, layout::kPageSize);
    dirty_[page] = 1;
    note_code_write(page);
}

Translation Memory::translate(std::uint64_t vaddr, unsigned size, bool kernel_mode,
                              unsigned proc) const noexcept {
    if ((vaddr & (size - 1)) != 0) return {0, MemFault::MISALIGNED};
    if (vaddr >= layout::kKernBase && vaddr + size <= layout::kKernBase + kern_size_) {
        if (!kernel_mode) return {0, MemFault::PERMISSION};
        return {vaddr - layout::kKernBase, MemFault::NONE};
    }
    if (vaddr >= layout::kUserBase && vaddr + size <= layout::kUserBase + user_size_) {
        const std::uint64_t off = vaddr - layout::kUserBase;
        if (!page_mapped_[proc * pages_per_proc_ + off / layout::kPageSize])
            return {0, MemFault::UNMAPPED};
        return {kern_size_ + proc * user_size_ + off, MemFault::NONE};
    }
    return {0, MemFault::UNMAPPED};
}

std::uint64_t Memory::load(std::uint64_t phys, unsigned size) const noexcept {
    std::uint64_t v = 0;
    std::memcpy(&v, phys_.data() + phys, size);
    return v;
}

void Memory::store(std::uint64_t phys, unsigned size, std::uint64_t value) noexcept {
    std::memcpy(phys_.data() + phys, &value, size);
    // Naturally aligned <= 8-byte stores never straddle a page.
    dirty_[phys / layout::kPageSize] = 1;
    // No VA translates into the text mirror today, but keep guest stores in
    // the code-write funnel so a future mapping cannot silently bypass it.
    note_code_write(phys / layout::kPageSize);
}

void Memory::map_user_range(unsigned proc, std::uint64_t lo, std::uint64_t hi) {
    util::check(lo >= layout::kUserBase && hi <= layout::kUserBase + user_size_ && lo <= hi,
                "map_user_range: out of user region");
    const std::uint64_t first = (lo - layout::kUserBase) / layout::kPageSize;
    const std::uint64_t last = (hi - layout::kUserBase + layout::kPageSize - 1) / layout::kPageSize;
    for (std::uint64_t p = first; p < last && p < pages_per_proc_; ++p)
        page_mapped_[proc * pages_per_proc_ + p] = 1;
}

bool Memory::user_page_mapped(unsigned proc, std::uint64_t vaddr) const noexcept {
    if (vaddr < layout::kUserBase || vaddr >= layout::kUserBase + user_size_) return false;
    return page_mapped_[proc * pages_per_proc_ +
                        (vaddr - layout::kUserBase) / layout::kPageSize] != 0;
}

std::uint64_t Memory::hash_range(std::uint64_t phys, std::uint64_t len) const noexcept {
    std::uint64_t h = util::kFnvOffset;
    const std::uint8_t* p = phys_.data() + phys;
    for (std::uint64_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= util::kFnvPrime;
    }
    return h;
}

} // namespace serep::sim
