#include "sim/memory.hpp"

#include <cstring>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace serep::sim {

namespace layout = isa::layout;

Memory::Memory(unsigned nprocs, std::uint64_t user_size, std::uint64_t kern_size)
    : nprocs_(nprocs), user_size_(user_size), kern_size_(kern_size) {
    util::check(nprocs >= 1 && nprocs <= 8, "Memory: 1..8 processes supported");
    util::check(user_size % layout::kPageSize == 0 && kern_size % layout::kPageSize == 0,
                "Memory: region sizes must be page-multiples");
    phys_.assign(kern_size_ + std::uint64_t{nprocs_} * user_size_, 0);
    pages_per_proc_ = user_size_ / layout::kPageSize;
    page_mapped_.assign(nprocs_ * pages_per_proc_, 0);
    // All-dirty until the first clear_dirty(): a snapshot consumer that never
    // clears sees every page as a candidate, which is always correct.
    dirty_.assign(phys_.size() / layout::kPageSize, 1);
}

void Memory::clone_payload_from(const Memory& base) {
    util::check(base.nprocs_ == nprocs_ && base.user_size_ == user_size_ &&
                    base.kern_size_ == kern_size_ && base.has_payload(),
                "clone_payload_from: geometry mismatch or base is a shell");
    phys_ = base.phys_;
}

void Memory::set_payload(std::vector<std::uint8_t> payload) {
    util::check(payload.size() ==
                    kern_size_ + std::uint64_t{nprocs_} * user_size_,
                "set_payload: size does not match memory geometry");
    phys_ = std::move(payload);
}

void Memory::write_page(std::uint64_t page, const std::uint8_t* bytes) noexcept {
    std::memcpy(phys_.data() + page * layout::kPageSize, bytes, layout::kPageSize);
    dirty_[page] = 1;
}

Translation Memory::translate(std::uint64_t vaddr, unsigned size, bool kernel_mode,
                              unsigned proc) const noexcept {
    if ((vaddr & (size - 1)) != 0) return {0, MemFault::MISALIGNED};
    if (vaddr >= layout::kKernBase && vaddr + size <= layout::kKernBase + kern_size_) {
        if (!kernel_mode) return {0, MemFault::PERMISSION};
        return {vaddr - layout::kKernBase, MemFault::NONE};
    }
    if (vaddr >= layout::kUserBase && vaddr + size <= layout::kUserBase + user_size_) {
        const std::uint64_t off = vaddr - layout::kUserBase;
        if (!page_mapped_[proc * pages_per_proc_ + off / layout::kPageSize])
            return {0, MemFault::UNMAPPED};
        return {kern_size_ + proc * user_size_ + off, MemFault::NONE};
    }
    return {0, MemFault::UNMAPPED};
}

std::uint64_t Memory::load(std::uint64_t phys, unsigned size) const noexcept {
    std::uint64_t v = 0;
    std::memcpy(&v, phys_.data() + phys, size);
    return v;
}

void Memory::store(std::uint64_t phys, unsigned size, std::uint64_t value) noexcept {
    std::memcpy(phys_.data() + phys, &value, size);
    // Naturally aligned <= 8-byte stores never straddle a page.
    dirty_[phys / layout::kPageSize] = 1;
}

void Memory::map_user_range(unsigned proc, std::uint64_t lo, std::uint64_t hi) {
    util::check(lo >= layout::kUserBase && hi <= layout::kUserBase + user_size_ && lo <= hi,
                "map_user_range: out of user region");
    const std::uint64_t first = (lo - layout::kUserBase) / layout::kPageSize;
    const std::uint64_t last = (hi - layout::kUserBase + layout::kPageSize - 1) / layout::kPageSize;
    for (std::uint64_t p = first; p < last && p < pages_per_proc_; ++p)
        page_mapped_[proc * pages_per_proc_ + p] = 1;
}

bool Memory::user_page_mapped(unsigned proc, std::uint64_t vaddr) const noexcept {
    if (vaddr < layout::kUserBase || vaddr >= layout::kUserBase + user_size_) return false;
    return page_mapped_[proc * pages_per_proc_ +
                        (vaddr - layout::kUserBase) / layout::kPageSize] != 0;
}

std::uint64_t Memory::hash_range(std::uint64_t phys, std::uint64_t len) const noexcept {
    std::uint64_t h = util::kFnvOffset;
    const std::uint8_t* p = phys_.data() + phys;
    for (std::uint64_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= util::kFnvPrime;
    }
    return h;
}

} // namespace serep::sim
