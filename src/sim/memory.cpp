#include "sim/memory.hpp"

#include <cstring>

#include "util/check.hpp"

namespace serep::sim {

namespace layout = isa::layout;

Memory::Memory(unsigned nprocs, std::uint64_t user_size, std::uint64_t kern_size)
    : nprocs_(nprocs), user_size_(user_size), kern_size_(kern_size) {
    util::check(nprocs >= 1 && nprocs <= 8, "Memory: 1..8 processes supported");
    util::check(user_size % layout::kPageSize == 0 && kern_size % layout::kPageSize == 0,
                "Memory: region sizes must be page-multiples");
    phys_.assign(kern_size_ + std::uint64_t{nprocs_} * user_size_, 0);
    pages_per_proc_ = user_size_ / layout::kPageSize;
    page_mapped_.assign(nprocs_ * pages_per_proc_, 0);
}

Translation Memory::translate(std::uint64_t vaddr, unsigned size, bool kernel_mode,
                              unsigned proc) const noexcept {
    if ((vaddr & (size - 1)) != 0) return {0, MemFault::MISALIGNED};
    if (vaddr >= layout::kKernBase && vaddr + size <= layout::kKernBase + kern_size_) {
        if (!kernel_mode) return {0, MemFault::PERMISSION};
        return {vaddr - layout::kKernBase, MemFault::NONE};
    }
    if (vaddr >= layout::kUserBase && vaddr + size <= layout::kUserBase + user_size_) {
        const std::uint64_t off = vaddr - layout::kUserBase;
        if (!page_mapped_[proc * pages_per_proc_ + off / layout::kPageSize])
            return {0, MemFault::UNMAPPED};
        return {kern_size_ + proc * user_size_ + off, MemFault::NONE};
    }
    return {0, MemFault::UNMAPPED};
}

std::uint64_t Memory::load(std::uint64_t phys, unsigned size) const noexcept {
    std::uint64_t v = 0;
    std::memcpy(&v, phys_.data() + phys, size);
    return v;
}

void Memory::store(std::uint64_t phys, unsigned size, std::uint64_t value) noexcept {
    std::memcpy(phys_.data() + phys, &value, size);
}

void Memory::map_user_range(unsigned proc, std::uint64_t lo, std::uint64_t hi) {
    util::check(lo >= layout::kUserBase && hi <= layout::kUserBase + user_size_ && lo <= hi,
                "map_user_range: out of user region");
    const std::uint64_t first = (lo - layout::kUserBase) / layout::kPageSize;
    const std::uint64_t last = (hi - layout::kUserBase + layout::kPageSize - 1) / layout::kPageSize;
    for (std::uint64_t p = first; p < last && p < pages_per_proc_; ++p)
        page_mapped_[proc * pages_per_proc_ + p] = 1;
}

bool Memory::user_page_mapped(unsigned proc, std::uint64_t vaddr) const noexcept {
    if (vaddr < layout::kUserBase || vaddr >= layout::kUserBase + user_size_) return false;
    return page_mapped_[proc * pages_per_proc_ +
                        (vaddr - layout::kUserBase) / layout::kPageSize] != 0;
}

std::uint64_t Memory::hash_range(std::uint64_t phys, std::uint64_t len) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const std::uint8_t* p = phys_.data() + phys;
    for (std::uint64_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace serep::sim
