// Set-associative LRU cache model (tags only — used for timing and the
// microarchitectural statistics the data-mining tool correlates).
//
// Configuration mirrors the paper's §3.1: per-core 32 KiB 4-way L1I and L1D,
// shared 512 KiB 8-way L2, 64-byte lines.
#pragma once

#include <cstdint>
#include <vector>

namespace serep::sim {

struct CacheConfig {
    std::uint32_t size_bytes;
    std::uint32_t ways;
    std::uint32_t line_bytes = 64;
};

inline constexpr CacheConfig kL1Config{32 * 1024, 4, 64};
inline constexpr CacheConfig kL2Config{512 * 1024, 8, 64};

/// Extra cycles charged on a miss at each level.
inline constexpr std::uint64_t kL1MissPenalty = 8;   // L2 hit latency
inline constexpr std::uint64_t kL2MissPenalty = 40;  // DRAM latency

class Cache {
public:
    explicit Cache(const CacheConfig& cfg);

    /// Look up `addr`; allocates on miss. Returns true on hit.
    bool access(std::uint64_t addr) noexcept;

    /// Count a hit that was filtered out before the lookup. The cached
    /// execution engine keeps a per-core MRU line filter in front of L1:
    /// re-touching the most-recently-used line is an LRU no-op (ages are
    /// already 0-rooted at that way), so skipping the lookup leaves tags and
    /// ages bit-identical — only the hit counter still needs to advance.
    void credit_hit() noexcept {
        ++hits_;
        ++credits_;
    }

    /// Bulk form of credit_hit: the trace engine counts consecutive
    /// MRU-filtered I-fetch hits inside a superblock segment locally and
    /// flushes them in one call at the segment end (or at a side exit, so a
    /// trace that traps mid-way credits exactly the fetches that happened).
    void credit_hits(std::uint64_t n) noexcept {
        hits_ += n;
        credits_ += n;
    }

    void reset() noexcept;

    /// Presence check for the uncore fault model: is `addr`'s line resident?
    /// Pure observation — no LRU touch, no allocation, no counter movement —
    /// so probing is invisible to timing and to the hit/miss statistics.
    bool probe(std::uint64_t addr) const noexcept;

    /// Cell probe for the uncore fault model: the physical line address
    /// resident in (set, way), or ~0ULL when that way is invalid. The
    /// cache-tag / cache-data fault spaces are enumerated over the cache's
    /// own cells, and a strike hits whatever line occupies the struck cell
    /// at the injection instant. Pure observation, like probe().
    std::uint64_t line_at(std::uint32_t set, std::uint32_t way) const noexcept {
        const std::uint64_t t =
            tags_[std::size_t{set & (sets_ - 1)} * ways_ + way % ways_];
        return t ? (t & ~(1ULL << 63)) << line_shift_ : ~0ULL;
    }

    std::uint32_t sets() const noexcept { return sets_; }
    std::uint32_t ways() const noexcept { return ways_; }

    /// Silently rewrite the tag of the way holding `old_addr`'s line to
    /// `new_addr`'s line — the uncore cache-tag fault: the stored data stays
    /// where it is, but the cache now believes it belongs to a different
    /// (same-set) address. LRU age and counters are untouched. Returns false
    /// (and changes nothing) when `old_addr` is not resident or the two
    /// addresses map to different sets (a tag flip never changes the set).
    bool retag(std::uint64_t old_addr, std::uint64_t new_addr) noexcept;

    /// log2(set count) — the uncore model needs it to compute which physical
    /// address bit a given tag bit corresponds to.
    std::uint32_t set_bits() const noexcept { return set_bits_; }
    std::uint32_t line_shift() const noexcept { return line_shift_; }

    std::uint64_t hits() const noexcept { return hits_; }
    std::uint64_t misses() const noexcept { return misses_; }
    /// Hits that arrived via the MRU credit path (a subset of hits()):
    /// telemetry reports the credit rate to show how much lookup traffic
    /// the MRU filters absorb.
    std::uint64_t credits() const noexcept { return credits_; }

private:
    std::uint32_t sets_, ways_;
    std::uint32_t line_shift_;
    std::uint32_t set_bits_;
    std::vector<std::uint64_t> tags_;  // sets x ways, 0 = invalid
    std::vector<std::uint8_t> age_;    // LRU ages
    std::uint64_t hits_ = 0, misses_ = 0, credits_ = 0;
};

} // namespace serep::sim
