// Set-associative LRU cache model (tags only — used for timing and the
// microarchitectural statistics the data-mining tool correlates).
//
// Configuration mirrors the paper's §3.1: per-core 32 KiB 4-way L1I and L1D,
// shared 512 KiB 8-way L2, 64-byte lines.
#pragma once

#include <cstdint>
#include <vector>

namespace serep::sim {

struct CacheConfig {
    std::uint32_t size_bytes;
    std::uint32_t ways;
    std::uint32_t line_bytes = 64;
};

inline constexpr CacheConfig kL1Config{32 * 1024, 4, 64};
inline constexpr CacheConfig kL2Config{512 * 1024, 8, 64};

/// Extra cycles charged on a miss at each level.
inline constexpr std::uint64_t kL1MissPenalty = 8;   // L2 hit latency
inline constexpr std::uint64_t kL2MissPenalty = 40;  // DRAM latency

class Cache {
public:
    explicit Cache(const CacheConfig& cfg);

    /// Look up `addr`; allocates on miss. Returns true on hit.
    bool access(std::uint64_t addr) noexcept;

    /// Count a hit that was filtered out before the lookup. The cached
    /// execution engine keeps a per-core MRU line filter in front of L1:
    /// re-touching the most-recently-used line is an LRU no-op (ages are
    /// already 0-rooted at that way), so skipping the lookup leaves tags and
    /// ages bit-identical — only the hit counter still needs to advance.
    void credit_hit() noexcept {
        ++hits_;
        ++credits_;
    }

    /// Bulk form of credit_hit: the trace engine counts consecutive
    /// MRU-filtered I-fetch hits inside a superblock segment locally and
    /// flushes them in one call at the segment end (or at a side exit, so a
    /// trace that traps mid-way credits exactly the fetches that happened).
    void credit_hits(std::uint64_t n) noexcept {
        hits_ += n;
        credits_ += n;
    }

    void reset() noexcept;

    std::uint64_t hits() const noexcept { return hits_; }
    std::uint64_t misses() const noexcept { return misses_; }
    /// Hits that arrived via the MRU credit path (a subset of hits()):
    /// telemetry reports the credit rate to show how much lookup traffic
    /// the MRU filters absorb.
    std::uint64_t credits() const noexcept { return credits_; }

private:
    std::uint32_t sets_, ways_;
    std::uint32_t line_shift_;
    std::vector<std::uint64_t> tags_;  // sets x ways, 0 = invalid
    std::vector<std::uint8_t> age_;    // LRU ages
    std::uint64_t hits_ = 0, misses_ = 0, credits_ = 0;
};

} // namespace serep::sim
