// Multicore machine: cores, interpreter, traps, timers, caches, devices.
//
// The machine executes a linked Image (nanokernel + runtimes + application).
// Timing: in-order, one instruction per cycle plus cache-miss penalties and a
// taken-branch bubble; cores interleave by local tick (the core with the
// smallest tick executes next), which models true parallel execution
// deterministically.
//
// Machines are value-copyable: the fault-injection campaign clones the
// machine at the injection instant and runs the clone to completion
// (checkpoint fast-forward, phase 3 of the paper's workflow).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/regfile.hpp"
#include "isa/sysreg.hpp"
#include "kasm/image.hpp"
#include "sim/cache.hpp"
#include "sim/exec_cache.hpp"
#include "sim/memory.hpp"

namespace serep::sim {

enum class Mode : std::uint8_t { USER, KERNEL };

/// Execution engine selection. All engines are bit-identical in every
/// observable (registers, memory, outcome databases, counters, ticks) —
/// gated by tests/engine_test.cpp — so the choice is purely about speed:
///  * Switch — the legacy single-switch interpreter, kept as the reference
///    implementation for differential testing.
///  * Cached — decode-once engine: pre-resolved handler dispatch through the
///    shared ExecCache, MRU line filters in front of the L1 models, and a
///    solo-core burst loop in run_until().
///  * Trace — superblock engine on top of the same ExecCache: straight-line
///    runs of predecoded handlers (ExecCache::run_len) execute as a unit
///    with hoisted per-trace checks, and run_until() gives *every* runnable
///    core a tick-horizon burst between scheduler scans (see run_until).
enum class Engine : std::uint8_t { Switch, Cached, Trace };

enum class RunStatus : std::uint8_t {
    Running,      ///< stopped because the instruction budget was reached
    Shutdown,     ///< kernel signalled end of application (all processes exited)
    KernelPanic,  ///< exception while in kernel mode — unrecoverable
    Deadlock,     ///< no core can ever make progress again
};

const char* run_status_name(RunStatus s) noexcept;

class Machine;

/// Execution-trace observer (prune/ dynamic def-use analysis). Callbacks run
/// on the machine's stepping thread with the machine in its *pre-step* state:
/// on_step fires after fetch and V7 predicate resolution but before the
/// handler mutates anything, on_trap at take_trap entry before the SP bank
/// swap / EPC capture. Observers are deliberately not part of machine value
/// state: copying a Machine (checkpoint rungs, fault-run clones) never copies
/// the observer hookup, so instrumented golden replays stay the only traced
/// executions.
class StepObserver {
public:
    virtual ~StepObserver() = default;
    /// `executed` is false for a V7 predicate-failed bubble (which still
    /// retires). BCOND reports executed=true; its decision is the handler's.
    virtual void on_step(const Machine& m, unsigned ci, const DecodedInstr& di,
                         std::uint64_t pc, bool executed) = 0;
    virtual void on_trap(const Machine& m, unsigned ci, isa::TrapCause cause) = 0;
};

/// Uncore fault-injection hook (src/uncore/). Armed on a fault-run clone by
/// uncore::inject, never present on golden runs or checkpoint rungs (the
/// slot has copy-reset semantics like StepObserver). Callbacks fire on the
/// machine's stepping thread at points that are bit-identical across all
/// three engines:
///  * on_data_access — once per retiring data transaction (load or store),
///    after the address is resolved and the cache model updated, before the
///    bytes move. `l1_hit` is the L1D lookup result (true for MRU-filtered
///    re-touches, which are hits by construction); `l2_hit` is meaningful
///    only when `l1_hit` is false. `cached` is false for exclusive stores,
///    which bypass the cache model in every engine.
///  * on_run_boundary — when run_until() hands control back, so one-shot
///    bus corruption can settle deterministically even if the run ends
///    before the next data access.
class UncoreHook {
public:
    virtual ~UncoreHook() = default;
    virtual void on_data_access(Machine& m, unsigned ci, std::uint64_t phys,
                                unsigned size, bool write, bool l1_hit,
                                bool l2_hit, bool cached) = 0;
    virtual void on_run_boundary(Machine& m) = 0;
};

/// Copy the image's initialized data into guest memory and map the pages
/// they (and the main stacks) live on: kernel chunks once, user chunks into
/// every process (SPMD images). The OS loader builds on this.
void load_image_data(Machine& m);

struct MachineConfig {
    unsigned cores = 1;
    unsigned procs = 1;  ///< separate address spaces (MPI ranks); 1 for serial/OMP
    std::uint64_t user_size = isa::layout::kDefaultUserSize;
    std::uint64_t kern_size = isa::layout::kDefaultKernSize;
    bool profile = false; ///< enable per-function / per-register attribution
};

/// One hardware thread.
struct CoreState {
    explicit CoreState(isa::Profile p) : regs(p) {}

    isa::RegFile regs;
    Mode mode = Mode::KERNEL;
    bool sleeping = false;
    bool halted = false;
    std::uint64_t banked_sp = 0; ///< the inactive mode's SP
    std::uint64_t epc = 0, cause = 0, badaddr = 0, tls = 0;
    std::uint32_t curproc = 0;
    std::uint64_t timer = 0;     ///< instructions until IRQ; 0 = disabled
    bool pending_timer = false, pending_ipi = false;
    std::uint64_t excl_addr = 0;
    bool excl_valid = false;
    std::uint64_t local_tick = 0;
    std::uint64_t wake_tick = 0; ///< earliest tick a WFI wake may resume at
    std::uint64_t retired = 0;

    /// Cached-engine MRU line filters (see Cache::credit_hit): the line of
    /// this core's most recent I/D access, or kNoLine. Purely an accelerator
    /// — filtered hits leave cache tags, ages and counters bit-identical.
    static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};
    std::uint64_t last_iline = kNoLine;
    std::uint64_t last_dline = kNoLine;

    /// Cached-engine one-entry translation filter. Sound because address
    /// maps are monotone: map_user_range only ever maps pages, so a
    /// successful translation can never become stale. Key packs
    /// vpage | proc<<52 | kernel<<55 (all real keys < 2^56; kNoTrans has
    /// bit 63 set and matches nothing).
    static constexpr std::uint64_t kNoTrans = ~std::uint64_t{0};
    std::uint64_t last_tkey = kNoTrans;
    std::uint64_t last_tpage = 0; ///< phys page base for last_tkey
};

/// Per-core event counters (the gem5-statistics analogue).
struct CoreCounters {
    std::uint64_t user_retired = 0, kernel_retired = 0;
    std::uint64_t branches = 0;   ///< branch instructions executed
    std::uint64_t taken_branches = 0;
    std::uint64_t calls = 0;      ///< BL/BLR
    std::uint64_t loads = 0, stores = 0;   ///< memory transactions (elements)
    std::uint64_t fp_ops = 0;     ///< FP data-processing instructions
    std::uint64_t wfi_sleeps = 0;

    std::uint64_t retired() const noexcept { return user_retired + kernel_retired; }
};

struct MachineCounters {
    std::array<std::uint64_t, 8> traps{};        ///< by TrapCause
    std::array<std::uint64_t, 16> syscalls{};    ///< by syscall number
    std::uint64_t ctx_switches = 0;              ///< TLS retarget count
};

/// Per-step execution context handed to the cached engine's op handlers
/// (sim/exec_ops.cpp). Mirrors the locals of the legacy switch body.
struct StepCtx {
    CoreState& core;
    CoreCounters& cnt;
    const DecodedInstr& di;
    unsigned ci;          ///< core index
    std::uint64_t pc;     ///< fetch pc
    std::uint64_t cost;   ///< accumulated cycle cost of this step
    bool retire;          ///< cleared when the instruction faulted
};

class Machine {
public:
    Machine(std::shared_ptr<const kasm::Image> image, const MachineConfig& cfg);

    // Copyable for checkpoint-based campaign fast-forward.
    Machine(const Machine&) = default;
    Machine& operator=(const Machine&) = default;
    Machine(Machine&&) = default;
    Machine& operator=(Machine&&) = default;

    const kasm::Image& image() const noexcept { return *image_; }
    const MachineConfig& config() const noexcept { return cfg_; }
    Memory& mem() noexcept { return mem_; }
    const Memory& mem() const noexcept { return mem_; }
    unsigned cores() const noexcept { return static_cast<unsigned>(cores_.size()); }
    CoreState& core(unsigned c) { return cores_[c]; }
    const CoreState& core(unsigned c) const { return cores_[c]; }

    /// Execute until `total_retired() >= stop_at` or a terminal status.
    RunStatus run_until(std::uint64_t stop_at);

    // ---- execution engine ----
    Engine engine() const noexcept { return engine_; }
    /// Select the engine; safe at any run_until() boundary. Resets the MRU
    /// line filters so the two engines' cache models stay bit-identical.
    void set_engine(Engine e) noexcept;
    /// The shared decode-once cache (one per image, process-wide).
    const std::shared_ptr<const ExecCache>& exec_cache() const noexcept {
        return xcache_;
    }
    /// Text pages this machine has re-decoded on top of the shared cache
    /// because a fault (or a snapshot restore) dirtied them. Test hook.
    std::size_t code_overlay_pages() const noexcept { return overlay_.size(); }

    /// Attach a step observer (nullptr detaches). Not copied with the
    /// machine — see StepObserver. The observer must outlive every
    /// run_until() on this machine.
    void set_step_observer(StepObserver* o) noexcept { observer_.ptr = o; }

    RunStatus status() const noexcept { return status_; }
    int exit_code() const noexcept { return exit_code_; }
    isa::TrapCause panic_cause() const noexcept { return panic_cause_; }
    std::uint64_t total_retired() const noexcept { return total_retired_; }
    /// Parallel execution time = max core tick.
    std::uint64_t time_ticks() const noexcept;

    bool app_started() const noexcept { return app_started_; }
    std::uint64_t app_start_retired() const noexcept { return app_start_retired_; }

    const std::string& output(unsigned proc) const { return outputs_[proc]; }
    int proc_exit_code(unsigned proc) const { return proc_exit_codes_[proc]; }

    const CoreCounters& counters(unsigned c) const { return counters_[c]; }
    const MachineCounters& machine_counters() const noexcept { return mcounters_; }

    /// Trace-engine execution tallies (telemetry only — never consulted by
    /// the engines). Copy-reset like ObserverSlot: clones start at zero, so
    /// per-run folds read absolute values since clone_nearest.
    struct TraceStats {
        std::uint64_t bursts = 0;      ///< superblock segments entered
        std::uint64_t chain_links = 0; ///< inline chains through stable enders
        std::uint64_t fallbacks = 0;   ///< step_cached bailouts mid-window
        TraceStats() noexcept = default;
        TraceStats(const TraceStats&) noexcept {}
        TraceStats& operator=(const TraceStats&) noexcept {
            bursts = chain_links = fallbacks = 0;
            return *this;
        }
        TraceStats(TraceStats&&) noexcept = default;
        TraceStats& operator=(TraceStats&&) noexcept = default;
    };
    const TraceStats& trace_stats() const noexcept { return tstats_; }
    const Cache& l1i(unsigned c) const { return l1i_[c]; }
    const Cache& l1d(unsigned c) const { return l1d_[c]; }
    const Cache& l2() const noexcept { return l2_; }

    // Profiling (valid when cfg.profile):
    const std::vector<std::uint64_t>& func_instr_counts() const noexcept { return func_instr_; }
    const std::vector<std::uint64_t>& func_call_counts() const noexcept { return func_calls_; }
    const std::vector<std::uint64_t>& reg_write_counts() const noexcept { return reg_writes_; }

    // ---- fault injection primitives ----
    void flip_gpr(unsigned core, unsigned reg, unsigned bit) {
        cores_[core].regs.flip_gpr_bit(reg, bit);
    }
    void flip_fp(unsigned core, unsigned reg, unsigned bit) {
        cores_[core].regs.flip_fp_bit(reg, bit);
    }
    void flip_mem(std::uint64_t phys, unsigned bit) { mem_.flip_phys_bit(phys, bit); }

    // ---- uncore fault injection (src/uncore/) ----
    /// Attach the uncore hook (nullptr detaches) and reset the MRU line
    /// filters. The reset is mandatory for tag faults: retagging a way away
    /// from the filtered line would otherwise let the cached/trace engines
    /// credit a hit the switch engine's real lookup no longer sees. Clearing
    /// the filters is observable-neutral (the next touch re-looks-up a line
    /// that is still MRU, so tags/ages/hit counts stay bit-identical; only
    /// the telemetry-only credit split moves). Like StepObserver, the slot
    /// has copy-reset semantics: clones never inherit the hook.
    void set_uncore_hook(std::shared_ptr<UncoreHook> h) noexcept {
        uncore_.ptr = std::move(h);
        for (CoreState& core : cores_) {
            core.last_iline = CoreState::kNoLine;
            core.last_dline = CoreState::kNoLine;
        }
    }
    UncoreHook* uncore_hook() const noexcept { return uncore_.ptr.get(); }
    /// Mutable cache handles for the uncore model's tag rewrites.
    Cache& l1d_cache(unsigned c) noexcept { return l1d_[c]; }
    Cache& l2_cache() noexcept { return l2_; }
    const Cache& l1d_cache(unsigned c) const noexcept { return l1d_[c]; }
    const Cache& l2_cache() const noexcept { return l2_; }

private:
    friend struct ExecOps; ///< per-op handlers of the cached engine

    void step(unsigned c);
    void step_switch(unsigned c);
    void step_cached(unsigned c);
    /// Resumable superblock position of one core inside a run_trace_multi
    /// window. Between a core's interleaved steps, the remaining (record
    /// pointer, index, budget) is parked here so resuming the same core
    /// skips the whole segment preamble (translation, run lookup, overlay
    /// scan, user_ok). Validity is checked by `left != 0 && lpc == core
    /// pc`: every control transfer (trap, ERET, branch — all enders)
    /// redirects the pc, so a stale cursor can never match, and `di`/`idx`
    /// are pure functions of the pc while the text generation is unchanged
    /// (cursors never outlive one window, and text only moves between
    /// run_until calls). When a run exhausts without leaving its text page,
    /// the ender itself is parked (`ender = true`, `left = 1`) so branch
    /// steps skip the preamble too; page-crossing exhaustion re-derives,
    /// because the next page's overlay state is unchecked.
    struct TraceCursor {
        const DecodedInstr* di = nullptr; ///< next record to execute
        std::uint64_t lpc = 0;            ///< pc of `di`
        std::size_t idx = 0;              ///< instruction index of `di`
        std::uint32_t left = 0;           ///< records remaining; 0 = invalid
        bool ender = false;               ///< `di` ends its run (left == 1)
    };
    /// Solo-regime trace burst: execute chained superblocks (straight-line
    /// runs linked through stable branch targets, executed inline) until a
    /// non-chainable ender, a trap, `stop_at`, or a pending-timer clip ends
    /// the unit. Only called with exactly one runnable core, so there is no
    /// tick horizon: no rival can win the scheduler scan (sleepers need an
    /// IPI, which sets sched_event_ and ends the enclosing burst loop).
    void burst_trace(unsigned c, std::uint64_t stop_at);
    /// One instruction of the multi-core trace interleave: resume the
    /// core's cursor (or re-derive it), execute a single straight-line
    /// record or chainable branch inline, or fall back to step_cached for
    /// everything else. The per-core cursor makes the near-lockstep
    /// tick-interleave pay the segment preamble once per branch target
    /// instead of once per step.
    void trace_step_one(unsigned c);
    /// Multi-core trace scheduling loop (tick-horizon bursts): scan once
    /// for the set of lowest-tick runnable cores, then execute one
    /// instruction on *each* of them in index order — a full round over an
    /// equal-tick set is always scan-order-valid: every member holds the
    /// minimum tick when its turn comes (stepped members move strictly
    /// past it, rivals sit strictly above it), so the round equals the
    /// per-instruction argmin schedule bit-for-bit while costing one scan
    /// per round instead of one per step. Runs until a scheduling event
    /// (IPI), a solo/deadlock regime, stop_at, or a non-Running status
    /// hands control back to the full run_until scan.
    void run_trace_multi(std::uint64_t stop_at);
    /// Is the text page holding instruction index `idx` shadowed by a
    /// fault-redecode overlay? (Trace runs never cross a page boundary.)
    bool trace_page_overlaid(std::size_t idx) const noexcept;
    /// Decoded record for instruction index `idx`, reading through the
    /// copy-on-write overlay of fault-dirtied text pages.
    const DecodedInstr* fetch_decoded(std::size_t idx);
    void refresh_code_overlay();
    void take_trap(CoreState& core, isa::TrapCause cause, std::uint64_t aux,
                   std::uint64_t badaddr);
    void panic(isa::TrapCause cause);
    void write_gpr(CoreState& core, unsigned rd, std::uint64_t value);
    bool data_access(CoreState& core, std::uint64_t vaddr, unsigned size, bool write,
                     std::uint64_t& phys, std::uint64_t& cost);
    void invalidate_reservations(std::uint64_t phys, const CoreState* except);
    bool sysreg_read(CoreState& core, isa::SysReg sr, std::uint64_t& value);
    bool sysreg_write(CoreState& core, isa::SysReg sr, std::uint64_t value);

    std::shared_ptr<const kasm::Image> image_;
    MachineConfig cfg_;
    Memory mem_;
    std::vector<CoreState> cores_;
    std::vector<CoreCounters> counters_;
    MachineCounters mcounters_;
    std::vector<Cache> l1i_, l1d_;
    Cache l2_;
    std::vector<std::string> outputs_;
    std::vector<int> proc_exit_codes_;

    RunStatus status_ = RunStatus::Running;
    isa::TrapCause panic_cause_ = isa::TrapCause::NONE;
    int exit_code_ = -1;
    std::uint64_t total_retired_ = 0;
    bool app_started_ = false;
    std::uint64_t app_start_retired_ = 0;

    std::vector<std::uint64_t> func_instr_, func_calls_, reg_writes_;

    // interpreter state for the current step
    std::uint64_t next_pc_ = 0;
    bool branch_taken_ = false;

    // ---- execution engine state ----
    Engine engine_ = Engine::Cached;
    std::shared_ptr<const ExecCache> xcache_; ///< shared, immutable
    /// Copy-on-write re-decode of text pages this machine's fault dirtied.
    struct OverlayPage {
        std::uint64_t first = 0; ///< instruction index of the first record
        std::vector<DecodedInstr> recs;
    };
    std::vector<OverlayPage> overlay_; ///< sorted by first, few entries
    /// Per-core parked trace positions (run_trace_multi). Invalidated
    /// wholesale at every window entry, so nothing here survives a
    /// run_until call — snapshots may copy it freely.
    std::vector<TraceCursor> tcur_;
    TraceStats tstats_;
    /// Observer hookup with copy-reset semantics: clones (ladder rungs,
    /// fault runs) must never inherit the golden replay's tracer.
    struct ObserverSlot {
        StepObserver* ptr = nullptr;
        ObserverSlot() noexcept = default;
        ObserverSlot(const ObserverSlot&) noexcept {}
        ObserverSlot& operator=(const ObserverSlot&) noexcept { return *this; }
        ObserverSlot(ObserverSlot&& o) noexcept : ptr(o.ptr) { o.ptr = nullptr; }
        ObserverSlot& operator=(ObserverSlot&& o) noexcept {
            ptr = o.ptr;
            o.ptr = nullptr;
            return *this;
        }
    };
    ObserverSlot observer_;
    /// Uncore-hook slot, copy-reset like ObserverSlot but owning: the hook
    /// (an uncore::Model holding the watched-line state) lives exactly as
    /// long as the one fault-run machine it was armed on.
    struct UncoreSlot {
        std::shared_ptr<UncoreHook> ptr;
        UncoreSlot() noexcept = default;
        UncoreSlot(const UncoreSlot&) noexcept {}
        UncoreSlot& operator=(const UncoreSlot&) noexcept { return *this; }
        UncoreSlot(UncoreSlot&&) noexcept = default;
        UncoreSlot& operator=(UncoreSlot&&) noexcept = default;
    };
    UncoreSlot uncore_;
    std::uint64_t code_gen_seen_ = 0;
    /// Burst-break flag — the contract between sysreg_write(IPI_SEND) and
    /// the burst loops in run_until(): cleared when a scheduler scan hands
    /// a core its burst, set by any IPI post, and checked after every step
    /// (cached engine) or trace unit (trace engine). An IPI posted
    /// mid-burst therefore ends the burst at the next unit boundary and
    /// forces a fresh scan — which recomputes the runnable set and the next
    /// tick horizon with the newly woken core included. Never consulted
    /// while the per-instruction scheduler scan is in charge.
    bool sched_event_ = false;
    // Profile-wide constants hoisted out of the per-step path.
    std::uint64_t width_mask_ = 0;
    unsigned width_bits_ = 0;
};

} // namespace serep::sim
