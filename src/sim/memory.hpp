// Guest physical memory with per-process address spaces and page-granular
// protection.
//
// Physical layout: [kernel region][proc 0 user region][proc 1]...
// Translation implements the address map in isa/layout.hpp:
//  * kernel VAs require kernel mode,
//  * user VAs translate through the *current* process and require the page
//    to be mapped (static data + main stack at load; heap pages via brk),
//  * anything else — including misaligned accesses — faults.
// This is what turns corrupted address registers into segmentation faults,
// the paper's §4.1.4 "UT from wrong address calculation" mechanism.
//
// Dirty-page tracking: every mutation path (store, bit flips, and — at image
// load time — the raw host-side pointers) marks the touched physical page in
// a per-page dirty bitmap. clear_dirty() resets it; the checkpoint ladder's
// delta snapshots (sim/snapshot.hpp) use dirty-since-base as the exact set
// of pages that can differ from the base rung.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "isa/layout.hpp"

namespace serep::sim {

enum class MemFault : std::uint8_t { NONE, UNMAPPED, PERMISSION, MISALIGNED };

struct Translation {
    std::uint64_t phys = 0;
    MemFault fault = MemFault::NONE;
    bool ok() const noexcept { return fault == MemFault::NONE; }
};

class Memory {
public:
    /// `text_size` appends a read-mostly "text mirror" region after the last
    /// user region (rounded up to whole pages): the Machine serializes its
    /// image's code there (isa/encode.hpp records) so memory faults can
    /// corrupt guest text. Mutations inside the mirror go through the same
    /// write funnel as everything else and additionally bump code_gen() /
    /// mark code_page_dirty() so the execution engine re-decodes the page.
    Memory(unsigned nprocs, std::uint64_t user_size, std::uint64_t kern_size,
           std::uint64_t text_size = 0);

    unsigned nprocs() const noexcept { return nprocs_; }
    std::uint64_t user_size() const noexcept { return user_size_; }
    std::uint64_t kern_size() const noexcept { return kern_size_; }

    /// Translate a guest virtual access. `size` must be a power of two and
    /// the access must be naturally aligned.
    Translation translate(std::uint64_t vaddr, unsigned size, bool kernel_mode,
                          unsigned proc) const noexcept;

    // Physical accessors (little-endian).
    std::uint64_t load(std::uint64_t phys, unsigned size) const noexcept;
    void store(std::uint64_t phys, unsigned size, std::uint64_t value) noexcept;

    /// Mark user pages [lo, hi) of `proc` as mapped (addresses are user VAs).
    void map_user_range(unsigned proc, std::uint64_t lo, std::uint64_t hi);
    bool user_page_mapped(unsigned proc, std::uint64_t vaddr) const noexcept;

    /// Host-side raw access for the loader and the classifier. The mutable
    /// overloads hand out unchecked write access, so they conservatively mark
    /// every page dirty (they are only used at image-load time in practice).
    std::uint8_t* kern_data() noexcept {
        mark_all_dirty();
        return phys_.data();
    }
    const std::uint8_t* kern_data() const noexcept { return phys_.data(); }
    std::uint8_t* user_data(unsigned proc) noexcept {
        mark_all_dirty();
        return phys_.data() + kern_size_ + proc * user_size_;
    }
    const std::uint8_t* user_data(unsigned proc) const noexcept {
        return phys_.data() + kern_size_ + proc * user_size_;
    }

    /// 64-bit FNV-1a over a physical range (classifier helper).
    std::uint64_t hash_range(std::uint64_t phys, std::uint64_t len) const noexcept;

    /// Flip one bit of a physical byte (memory fault injection).
    void flip_phys_bit(std::uint64_t phys, unsigned bit) noexcept {
        phys_[phys] ^= static_cast<std::uint8_t>(1u << bit);
        dirty_[phys / isa::layout::kPageSize] = 1;
        note_code_write(phys / isa::layout::kPageSize);
    }

    // ---- text mirror (decode-once execution engine) ----
    bool has_text() const noexcept { return text_size_ != 0; }
    /// Physical byte offset of the text mirror (== end of the user regions).
    std::uint64_t text_base() const noexcept { return text_base_; }
    std::uint64_t text_size() const noexcept { return text_size_; }
    const std::uint8_t* text_data() const noexcept { return phys_.data() + text_base_; }
    /// Install the pristine mirror bytes (image load; not a guest write, so
    /// it neither dirties pages nor bumps the code generation).
    void install_text(const std::uint8_t* bytes, std::uint64_t len) noexcept;

    /// Bumped by every mutation that may have touched the mirror; the
    /// Machine re-decodes pages whose sticky dirty bit is set whenever the
    /// generation it last decoded at falls behind.
    std::uint64_t code_gen() const noexcept { return code_gen_; }
    /// One byte per *text* page, sticky (never cleared): set when a write
    /// funnel mutation landed on that page.
    const std::vector<std::uint8_t>& code_dirty_pages() const noexcept {
        return code_dirty_;
    }

    std::uint64_t phys_size() const noexcept { return phys_.size(); }

    // ---- dirty-page tracking (delta snapshots) ----
    std::uint64_t page_count() const noexcept { return dirty_.size(); }
    /// One byte per physical page; non-zero = written since clear_dirty().
    const std::vector<std::uint8_t>& dirty_pages() const noexcept { return dirty_; }
    void clear_dirty() noexcept { std::fill(dirty_.begin(), dirty_.end(), 0); }
    void mark_all_dirty() noexcept { std::fill(dirty_.begin(), dirty_.end(), 1); }

    // ---- payload management (delta snapshots) ----
    // A Machine copy whose memory payload has been dropped is a "shell": all
    // metadata (geometry, page maps, dirty bits) survives, only the phys
    // byte array is released. clone_payload_from() reinstates one from a
    // geometry-identical base; the delta restore then patches changed pages.
    bool has_payload() const noexcept { return !phys_.empty(); }
    /// Actual host bytes held for guest physical memory (0 for a shell).
    std::uint64_t payload_bytes() const noexcept { return phys_.size(); }
    void drop_payload() noexcept {
        phys_.clear();
        phys_.shrink_to_fit();
    }
    void clone_payload_from(const Memory& base);
    /// Move the payload out, leaving a shell; set_payload reinstalls it.
    /// Lets make_machine_delta copy a Machine's non-memory state without
    /// ever duplicating guest memory (take, copy the shell, reinstall).
    /// Contract: set_payload expects bytes taken from *this* memory (or a
    /// clone whose code_dirty_pages() metadata this object already carries)
    /// — installing a foreign payload whose text diverges on pages outside
    /// that set would execute stale decodes. Use clone_payload_from for
    /// cross-machine adoption; it merges the source's sticky text set.
    std::vector<std::uint8_t> take_payload() noexcept { return std::move(phys_); }
    void set_payload(std::vector<std::uint8_t> payload);

    /// Raw page access for delta make/apply (page < page_count()).
    const std::uint8_t* page_data(std::uint64_t page) const noexcept {
        return phys_.data() + page * isa::layout::kPageSize;
    }
    void write_page(std::uint64_t page, const std::uint8_t* bytes) noexcept;

private:
    /// Text-mirror write funnel: record a mutation of physical page
    /// `phys_page` so the execution engine re-decodes it if it holds text.
    void note_code_write(std::uint64_t phys_page) noexcept {
        if (text_size_ == 0) return;
        const std::uint64_t first = text_base_ / isa::layout::kPageSize;
        if (phys_page < first) return;
        code_dirty_[phys_page - first] = 1;
        ++code_gen_;
    }

    unsigned nprocs_;
    std::uint64_t user_size_, kern_size_;
    std::uint64_t text_base_ = 0, text_size_ = 0;
    std::vector<std::uint8_t> phys_;
    std::vector<std::uint8_t> page_mapped_; // one byte per user page per proc
    std::vector<std::uint8_t> dirty_;       // one byte per physical page
    std::vector<std::uint8_t> code_dirty_;  // one byte per text page, sticky
    std::uint64_t code_gen_ = 0;
    std::uint64_t pages_per_proc_;
};

} // namespace serep::sim
