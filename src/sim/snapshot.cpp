#include "sim/snapshot.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace serep::sim {

namespace {
/// Non-memory Machine state allowance (register files, caches, counters,
/// outputs — a few KB in practice, padded generously).
constexpr std::size_t kShellAllowance = 64u << 10;
} // namespace

std::size_t machine_footprint_bytes(const Machine& m) noexcept {
    return static_cast<std::size_t>(m.mem().payload_bytes()) + kShellAllowance;
}

std::size_t MachineDelta::footprint_bytes() const noexcept {
    return bytes.size() + pages.size() * sizeof(std::uint32_t) + kShellAllowance;
}

MachineDelta make_machine_delta(Machine& cur, const Machine& base) {
    const Memory& bm = base.mem();
    util::check(cur.mem().has_payload() && bm.has_payload() &&
                    cur.mem().phys_size() == bm.phys_size(),
                "make_machine_delta: geometry mismatch or shell input");
    // Copy the non-memory state without ever duplicating guest memory: move
    // cur's payload aside, take the (now cheap) shell copy, reinstall.
    std::vector<std::uint8_t> payload = cur.mem().take_payload();
    MachineDelta d{cur, {}, {}};
    cur.mem().set_payload(std::move(payload));

    constexpr std::uint64_t kPage = isa::layout::kPageSize;
    const Memory& cm = cur.mem();
    const std::vector<std::uint8_t>& dirty = cm.dirty_pages();
    for (std::uint64_t p = 0; p < cm.page_count(); ++p) {
        if (!dirty[p]) continue; // clean since base copy => identical to base
        const std::uint8_t* cp = cm.page_data(p);
        if (std::memcmp(cp, bm.page_data(p), kPage) == 0) continue;
        d.pages.push_back(static_cast<std::uint32_t>(p));
        d.bytes.insert(d.bytes.end(), cp, cp + kPage);
    }
    return d;
}

Machine restore_machine_delta(const MachineDelta& d, const Machine& base) {
    Machine out = d.shell; // cheap: the shell holds no memory payload
    out.mem().clone_payload_from(base.mem());
    constexpr std::uint64_t kPage = isa::layout::kPageSize;
    for (std::size_t i = 0; i < d.pages.size(); ++i)
        out.mem().write_page(d.pages[i], d.bytes.data() + i * kPage);
    return out;
}

RunStatus run_with_checkpoints(Machine& m, std::uint64_t stride,
                               std::uint64_t stop_at,
                               const std::function<void(const Machine&)>& on_checkpoint) {
    if (stride == 0 || !on_checkpoint) return m.run_until(stop_at);
    while (m.status() == RunStatus::Running && m.total_retired() < stop_at) {
        const std::uint64_t boundary =
            (m.total_retired() / stride + 1) * stride;
        m.run_until(std::min(boundary, stop_at));
        if (m.status() == RunStatus::Running && m.total_retired() < stop_at)
            on_checkpoint(m);
    }
    return m.status();
}

} // namespace serep::sim
