#include "sim/snapshot.hpp"

#include <algorithm>

namespace serep::sim {

std::size_t machine_footprint_bytes(const Machine& m) noexcept {
    // Guest physical memory dwarfs everything else (register files, caches,
    // counters are a few KB). Add a fixed allowance for the rest.
    return static_cast<std::size_t>(m.mem().phys_size()) + (64u << 10);
}

RunStatus run_with_checkpoints(Machine& m, std::uint64_t stride,
                               std::uint64_t stop_at,
                               const std::function<void(const Machine&)>& on_checkpoint) {
    if (stride == 0 || !on_checkpoint) return m.run_until(stop_at);
    while (m.status() == RunStatus::Running && m.total_retired() < stop_at) {
        const std::uint64_t boundary =
            (m.total_retired() / stride + 1) * stride;
        m.run_until(std::min(boundary, stop_at));
        if (m.status() == RunStatus::Running && m.total_retired() < stop_at)
            on_checkpoint(m);
    }
    return m.status();
}

} // namespace serep::sim
