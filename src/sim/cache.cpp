#include "sim/cache.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/check.hpp"

namespace serep::sim {

Cache::Cache(const CacheConfig& cfg)
    : sets_(cfg.size_bytes / (cfg.ways * cfg.line_bytes)),
      ways_(cfg.ways),
      line_shift_(static_cast<std::uint32_t>(util::ctz64(cfg.line_bytes))),
      set_bits_(static_cast<std::uint32_t>(util::ctz64(
          cfg.size_bytes / (cfg.ways * cfg.line_bytes)))) {
    util::check((cfg.line_bytes & (cfg.line_bytes - 1)) == 0 && (sets_ & (sets_ - 1)) == 0 && cfg.line_bytes && sets_,
                "Cache: line size and set count must be powers of two");
    tags_.assign(std::size_t{sets_} * ways_, 0);
    age_.resize(std::size_t{sets_} * ways_);
    reset();
}

void Cache::reset() noexcept {
    std::fill(tags_.begin(), tags_.end(), 0);
    // Invariant: each set's ages are a permutation of 0..ways-1 (0 = MRU).
    for (std::uint32_t s = 0; s < sets_; ++s)
        for (std::uint32_t w = 0; w < ways_; ++w)
            age_[std::size_t{s} * ways_ + w] = static_cast<std::uint8_t>(w);
    hits_ = misses_ = credits_ = 0;
}

bool Cache::access(std::uint64_t addr) noexcept {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint32_t set = static_cast<std::uint32_t>(line) & (sets_ - 1);
    const std::uint64_t tag = line | 1ULL << 63; // bit 63 marks valid
    std::uint64_t* t = &tags_[std::size_t{set} * ways_];
    std::uint8_t* a = &age_[std::size_t{set} * ways_];

    auto touch = [&](std::uint32_t w) {
        const std::uint8_t old = a[w];
        for (std::uint32_t k = 0; k < ways_; ++k)
            if (a[k] < old) ++a[k];
        a[w] = 0;
    };

    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (t[w] == tag) {
            touch(w);
            ++hits_;
            return true;
        }
        if (a[w] == ways_ - 1) victim = w; // unique LRU way
    }
    ++misses_;
    t[victim] = tag;
    touch(victim);
    return false;
}

bool Cache::probe(std::uint64_t addr) const noexcept {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint32_t set = static_cast<std::uint32_t>(line) & (sets_ - 1);
    const std::uint64_t tag = line | 1ULL << 63;
    const std::uint64_t* t = &tags_[std::size_t{set} * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (t[w] == tag) return true;
    return false;
}

bool Cache::retag(std::uint64_t old_addr, std::uint64_t new_addr) noexcept {
    const std::uint64_t old_line = old_addr >> line_shift_;
    const std::uint64_t new_line = new_addr >> line_shift_;
    const std::uint32_t set = static_cast<std::uint32_t>(old_line) & (sets_ - 1);
    if ((static_cast<std::uint32_t>(new_line) & (sets_ - 1)) != set)
        return false;
    const std::uint64_t old_tag = old_line | 1ULL << 63;
    std::uint64_t* t = &tags_[std::size_t{set} * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (t[w] == old_tag) {
            t[w] = new_line | 1ULL << 63;
            return true;
        }
    }
    return false;
}

} // namespace serep::sim
