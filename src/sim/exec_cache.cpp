#include "sim/exec_cache.hpp"

#include <algorithm>
#include <mutex>

#include "isa/op.hpp"
#include "sim/exec_ops.hpp"

namespace serep::sim {

DecodedInstr ExecCache::make_decoded(const isa::Instr& ins, isa::Profile p,
                                     bool user_ok) noexcept {
    DecodedInstr d;
    d.ins = ins;
    d.fn = exec_handler(ins.op);
    d.user_ok = user_ok;
    d.check_cond = p == isa::Profile::V7 && ins.cond != isa::Cond::AL &&
                   ins.op != isa::Op::BCOND;
    const isa::OpInfo& oi = isa::op_info(ins.op);
    d.cflags = static_cast<std::uint8_t>((oi.is_branch ? kDiBranch : 0) |
                                         (oi.is_call ? kDiCall : 0));
    const unsigned w = p == isa::Profile::V7 ? 4 : 8;
    switch (ins.op) {
        case isa::Op::LDR:
        case isa::Op::STR:
        case isa::Op::LDREX:
        case isa::Op::STREX: d.mem_size = static_cast<std::uint8_t>(w); break;
        case isa::Op::LDRW:
        case isa::Op::STRW:
        case isa::Op::LDM:
        case isa::Op::STM: d.mem_size = 4; break;
        case isa::Op::LDRB:
        case isa::Op::STRB: d.mem_size = 1; break;
        case isa::Op::LDP:
        case isa::Op::STP:
        case isa::Op::FLDR:
        case isa::Op::FSTR: d.mem_size = 8; break;
        default: break;
    }
    return d;
}

void ExecCache::decode_records(const std::uint8_t* bytes, std::size_t count,
                               isa::Profile p, std::uint64_t first_addr,
                               std::uint64_t kernel_text_end,
                               DecodedInstr* out) noexcept {
    for (std::size_t i = 0; i < count; ++i) {
        const isa::Instr ins =
            isa::decode_instr(bytes + i * isa::kTextRecordBytes, p);
        const std::uint64_t addr = first_addr + i * isa::kInstrBytes;
        out[i] = make_decoded(ins, p, addr >= kernel_text_end);
    }
}

bool ExecCache::trace_ender(const isa::Instr& ins, isa::Profile p) noexcept {
    switch (ins.op) {
        // Control transfers (everything with OpInfo::is_branch).
        case isa::Op::B:
        case isa::Op::BCOND:
        case isa::Op::BL:
        case isa::Op::BLR:
        case isa::Op::BR:
        case isa::Op::RET:
        case isa::Op::CBZ:
        case isa::Op::CBNZ:
        // System ops: redirect control (SVC/ERET), change the runnable set
        // (WFI/HLT), or reach machine-wide state (SYSRD/SYSWR — IPI_SEND,
        // SHUTDOWN, TIMER writes). All rare; single-stepping them is free.
        case isa::Op::SVC:
        case isa::Op::SYSRD:
        case isa::Op::SYSWR:
        case isa::Op::ERET:
        case isa::Op::WFI:
        case isa::Op::HLT:
        case isa::Op::UDF: return true;
        default: break;
    }
    if (p == isa::Profile::V7) {
        // write_gpr(15) is a jump on V7. rd/ra of 15 covers every explicit
        // destination (LDM never loads r15: its register loop stops at r14);
        // writeback with rn == 15 covers the LDM/STM base update.
        if (ins.rd == 15 || ins.ra == 15) return true;
        if (ins.wb && ins.rn == 15) return true;
    }
    return false;
}

ExecCache::ExecCache(const kasm::Image& img) {
    instrs_.reserve(img.code.size());
    for (std::size_t i = 0; i < img.code.size(); ++i) {
        const std::uint64_t addr = img.code_base + i * isa::kInstrBytes;
        instrs_.push_back(
            make_decoded(img.code[i], img.profile, addr >= img.kernel_text_end));
    }
    // Superblock run lengths, computed backward: a non-ender extends the run
    // that starts right after it, clipped at text-mirror page boundaries so
    // the Machine's copy-on-write overlay check stays one page lookup per
    // trace (kTextRecordsPerPage = 128, so lengths fit comfortably).
    const std::size_t n = instrs_.size();
    runs_.assign(n, 0);
    for (std::size_t i = n; i-- > 0;) {
        if (trace_ender(instrs_[i].ins, img.profile)) continue;
        const bool page_end = (i + 1) % isa::kTextRecordsPerPage == 0;
        const std::uint32_t next = (i + 1 < n && !page_end) ? runs_[i + 1] : 0;
        runs_[i] = static_cast<std::uint16_t>(
            std::min<std::uint32_t>(next + 1, 0xFFFF));
    }
}

std::shared_ptr<const ExecCache> ExecCache::for_image(
    const std::shared_ptr<const kasm::Image>& img) {
    struct Entry {
        std::weak_ptr<const kasm::Image> image;
        std::weak_ptr<const ExecCache> cache;
    };
    static std::mutex mu;
    static std::vector<Entry> registry;

    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < registry.size();) {
        const std::shared_ptr<const kasm::Image> held = registry[i].image.lock();
        if (!held) {
            registry[i] = registry.back();
            registry.pop_back();
            continue;
        }
        if (held == img) {
            if (auto c = registry[i].cache.lock()) return c;
            std::shared_ptr<const ExecCache> rebuilt(new ExecCache(*img));
            registry[i].cache = rebuilt;
            return rebuilt;
        }
        ++i;
    }
    std::shared_ptr<const ExecCache> built(new ExecCache(*img));
    registry.push_back({img, built});
    return built;
}

} // namespace serep::sim
