#include "sim/exec_cache.hpp"

#include <mutex>

#include "isa/op.hpp"
#include "sim/exec_ops.hpp"

namespace serep::sim {

DecodedInstr ExecCache::make_decoded(const isa::Instr& ins, isa::Profile p,
                                     bool user_ok) noexcept {
    DecodedInstr d;
    d.ins = ins;
    d.fn = exec_handler(ins.op);
    d.user_ok = user_ok;
    d.check_cond = p == isa::Profile::V7 && ins.cond != isa::Cond::AL &&
                   ins.op != isa::Op::BCOND;
    const isa::OpInfo& oi = isa::op_info(ins.op);
    d.cflags = static_cast<std::uint8_t>((oi.is_branch ? kDiBranch : 0) |
                                         (oi.is_call ? kDiCall : 0));
    const unsigned w = p == isa::Profile::V7 ? 4 : 8;
    switch (ins.op) {
        case isa::Op::LDR:
        case isa::Op::STR:
        case isa::Op::LDREX:
        case isa::Op::STREX: d.mem_size = static_cast<std::uint8_t>(w); break;
        case isa::Op::LDRW:
        case isa::Op::STRW:
        case isa::Op::LDM:
        case isa::Op::STM: d.mem_size = 4; break;
        case isa::Op::LDRB:
        case isa::Op::STRB: d.mem_size = 1; break;
        case isa::Op::LDP:
        case isa::Op::STP:
        case isa::Op::FLDR:
        case isa::Op::FSTR: d.mem_size = 8; break;
        default: break;
    }
    return d;
}

void ExecCache::decode_records(const std::uint8_t* bytes, std::size_t count,
                               isa::Profile p, std::uint64_t first_addr,
                               std::uint64_t kernel_text_end,
                               DecodedInstr* out) noexcept {
    for (std::size_t i = 0; i < count; ++i) {
        const isa::Instr ins =
            isa::decode_instr(bytes + i * isa::kTextRecordBytes, p);
        const std::uint64_t addr = first_addr + i * isa::kInstrBytes;
        out[i] = make_decoded(ins, p, addr >= kernel_text_end);
    }
}

ExecCache::ExecCache(const kasm::Image& img) {
    instrs_.reserve(img.code.size());
    for (std::size_t i = 0; i < img.code.size(); ++i) {
        const std::uint64_t addr = img.code_base + i * isa::kInstrBytes;
        instrs_.push_back(
            make_decoded(img.code[i], img.profile, addr >= img.kernel_text_end));
    }
}

std::shared_ptr<const ExecCache> ExecCache::for_image(
    const std::shared_ptr<const kasm::Image>& img) {
    struct Entry {
        std::weak_ptr<const kasm::Image> image;
        std::weak_ptr<const ExecCache> cache;
    };
    static std::mutex mu;
    static std::vector<Entry> registry;

    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < registry.size();) {
        const std::shared_ptr<const kasm::Image> held = registry[i].image.lock();
        if (!held) {
            registry[i] = registry.back();
            registry.pop_back();
            continue;
        }
        if (held == img) {
            if (auto c = registry[i].cache.lock()) return c;
            std::shared_ptr<const ExecCache> rebuilt(new ExecCache(*img));
            registry[i].cache = rebuilt;
            return rebuilt;
        }
        ++i;
    }
    std::shared_ptr<const ExecCache> built(new ExecCache(*img));
    registry.push_back({img, built});
    return built;
}

} // namespace serep::sim
