#include "sim/exec_ops.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "sim/machine.hpp"
#include "util/bitops.hpp"

namespace serep::sim {

namespace {

using isa::Cond;
using isa::Flags;
using isa::Instr;
using isa::Op;
using isa::SysReg;
using isa::TrapCause;
using util::low_mask;

/// L1/L2 lines are 64 bytes (static config); the MRU filters key on this.
constexpr unsigned kLineShift = 6;
static_assert(kL1Config.line_bytes == 64 && kL2Config.line_bytes == 64,
              "MRU line filters assume 64-byte lines");

struct Alu {
    std::uint64_t value;
    Flags flags;
};

/// ARM AddWithCarry at width w (independent of the legacy engine's copy).
Alu carry_add(std::uint64_t a, std::uint64_t b, std::uint64_t cin,
              unsigned w) noexcept {
    const std::uint64_t mask = low_mask(w);
    a &= mask;
    b &= mask;
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) + b + (cin & 1);
    const std::uint64_t r = static_cast<std::uint64_t>(wide) & mask;
    Alu out{r, {}};
    out.flags.n = ((r >> (w - 1)) & 1) != 0;
    out.flags.z = r == 0;
    out.flags.c = (wide >> w) != 0;
    out.flags.v = (((~(a ^ b) & (a ^ r)) >> (w - 1)) & 1) != 0;
    return out;
}

std::uint64_t shl(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    return amt >= w ? 0 : (v << amt) & low_mask(w);
}
std::uint64_t shr(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    v &= low_mask(w);
    return amt >= w ? 0 : v >> amt;
}
std::uint64_t sar(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    const std::int64_t s = util::sign_extend(v, w);
    if (amt >= w) amt = w - 1;
    return static_cast<std::uint64_t>(s >> amt) & low_mask(w);
}

} // namespace

/// The cached engine's per-op handler implementations. A friend of Machine:
/// handlers are the moral equivalent of the legacy switch's case bodies and
/// need the same access to interpreter state.
struct ExecOps {
    // ---- shared helpers -------------------------------------------------
    static std::uint64_t x(StepCtx& cx, unsigned r) noexcept {
        return cx.core.regs.x(r);
    }
    static std::uint64_t addr_of(Machine& m, StepCtx& cx) noexcept {
        const Instr& i = cx.di.ins;
        const std::uint64_t base = x(cx, i.rn);
        const std::uint64_t off = i.rm != isa::kNoReg
                                      ? (x(cx, i.rm) << i.shift)
                                      : static_cast<std::uint64_t>(i.imm);
        return (base + off) & m.width_mask_;
    }

    /// data_access with the one-entry translation filter and the MRU D-line
    /// filter; bit-identical cache/tick evolution to Machine::data_access
    /// (see Cache::credit_hit and CoreState::last_tkey).
    static bool access_fast(Machine& m, StepCtx& cx, std::uint64_t vaddr,
                            unsigned size, bool write, std::uint64_t& phys) {
        constexpr std::uint64_t kPageMask = isa::layout::kPageSize - 1;
        const bool kernel = cx.core.mode == Mode::KERNEL;
        const std::uint64_t tkey =
            (vaddr >> 12) |
            (static_cast<std::uint64_t>(cx.core.curproc) << 52) |
            (static_cast<std::uint64_t>(kernel) << 55);
        if (tkey == cx.core.last_tkey && (vaddr & (size - 1)) == 0) {
            phys = cx.core.last_tpage | (vaddr & kPageMask);
        } else {
            const Translation t =
                m.mem_.translate(vaddr, size, kernel, cx.core.curproc);
            if (!t.ok()) {
                if (kernel) {
                    m.panic(TrapCause::DATA_ABORT);
                } else {
                    m.take_trap(cx.core, TrapCause::DATA_ABORT,
                                static_cast<std::uint64_t>(t.fault), vaddr);
                }
                return false;
            }
            phys = t.phys;
            cx.core.last_tkey = tkey;
            cx.core.last_tpage = t.phys & ~kPageMask;
        }
        const std::uint64_t line = phys >> kLineShift;
        bool l1_hit = true, l2_hit = false;
        if (line == cx.core.last_dline) {
            m.l1d_[cx.ci].credit_hit();
        } else {
            l1_hit = m.l1d_[cx.ci].access(phys);
            if (!l1_hit) {
                cx.cost += kL1MissPenalty;
                l2_hit = m.l2_.access(phys);
                if (!l2_hit) cx.cost += kL2MissPenalty;
            }
            cx.core.last_dline = line;
        }
        if (write) m.invalidate_reservations(phys, nullptr);
        if (m.uncore_.ptr)
            m.uncore_.ptr->on_data_access(m, cx.ci, phys, size, write, l1_hit,
                                          l2_hit, true);
        return true;
    }

    static bool ld(Machine& m, StepCtx& cx, std::uint64_t vaddr, unsigned size,
                   std::uint64_t& out) {
        std::uint64_t phys = 0;
        if (!access_fast(m, cx, vaddr, size, false, phys)) return false;
        out = m.mem_.load(phys, size);
        ++cx.cnt.loads;
        return true;
    }
    static bool st(Machine& m, StepCtx& cx, std::uint64_t vaddr, unsigned size,
                   std::uint64_t val) {
        std::uint64_t phys = 0;
        if (!access_fast(m, cx, vaddr, size, true, phys)) return false;
        m.mem_.store(phys, size, val);
        ++cx.cnt.stores;
        return true;
    }

    static void undef(Machine& m, StepCtx& cx) {
        if (cx.core.mode == Mode::KERNEL) {
            m.panic(TrapCause::UNDEF);
        } else {
            m.take_trap(cx.core, TrapCause::UNDEF,
                        static_cast<std::uint64_t>(cx.di.ins.op), 0);
        }
        cx.retire = false;
    }

    static double vd(StepCtx& cx, unsigned r) noexcept {
        return util::bits_f64(cx.core.regs.v_bits(r));
    }
    static void setv(StepCtx& cx, unsigned r, double d) noexcept {
        cx.core.regs.set_v_bits(r, util::f64_bits(d));
    }

    // ---- moves / ALU ----------------------------------------------------
    static void movi(Machine& m, StepCtx& cx) {
        m.write_gpr(cx.core, cx.di.ins.rd,
                    static_cast<std::uint64_t>(cx.di.ins.imm));
    }
    static void mov(Machine& m, StepCtx& cx) {
        m.write_gpr(cx.core, cx.di.ins.rd, x(cx, cx.di.ins.rn));
    }
    static void mvn(Machine& m, StepCtx& cx) {
        m.write_gpr(cx.core, cx.di.ins.rd, ~x(cx, cx.di.ins.rn));
    }
    static void add(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) + x(cx, i.rm));
    }
    static void sub(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) - x(cx, i.rm));
    }
    static void and_(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) & x(cx, i.rm));
    }
    static void orr(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) | x(cx, i.rm));
    }
    static void eor(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) ^ x(cx, i.rm));
    }
    static void mul(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) * x(cx, i.rm));
    }
    static void addi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) + static_cast<std::uint64_t>(i.imm));
    }
    static void subi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) - static_cast<std::uint64_t>(i.imm));
    }
    static void andi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) & static_cast<std::uint64_t>(i.imm));
    }
    static void orri(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) | static_cast<std::uint64_t>(i.imm));
    }
    static void eori(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, x(cx, i.rn) ^ static_cast<std::uint64_t>(i.imm));
    }
    static void adds(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const Alu r = carry_add(x(cx, i.rn), x(cx, i.rm), 0, m.width_bits_);
        cx.core.regs.flags() = r.flags;
        m.write_gpr(cx.core, i.rd, r.value);
    }
    static void subs(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const Alu r = carry_add(x(cx, i.rn), ~x(cx, i.rm), 1, m.width_bits_);
        cx.core.regs.flags() = r.flags;
        m.write_gpr(cx.core, i.rd, r.value);
    }
    static void addsi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const Alu r = carry_add(x(cx, i.rn), static_cast<std::uint64_t>(i.imm), 0,
                                m.width_bits_);
        cx.core.regs.flags() = r.flags;
        m.write_gpr(cx.core, i.rd, r.value);
    }
    static void subsi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const Alu r = carry_add(x(cx, i.rn), ~static_cast<std::uint64_t>(i.imm), 1,
                                m.width_bits_);
        cx.core.regs.flags() = r.flags;
        m.write_gpr(cx.core, i.rd, r.value);
    }
    static void adcs(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const Alu r = carry_add(x(cx, i.rn), x(cx, i.rm),
                                cx.core.regs.flags().c, m.width_bits_);
        cx.core.regs.flags() = r.flags;
        m.write_gpr(cx.core, i.rd, r.value);
    }
    static void sbcs(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const Alu r = carry_add(x(cx, i.rn), ~x(cx, i.rm),
                                cx.core.regs.flags().c, m.width_bits_);
        cx.core.regs.flags() = r.flags;
        m.write_gpr(cx.core, i.rd, r.value);
    }
    static void umull(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t p =
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(x(cx, i.rn))) *
            static_cast<std::uint32_t>(x(cx, i.rm));
        m.write_gpr(cx.core, i.rd, p & 0xFFFFFFFFu);
        m.write_gpr(cx.core, i.ra, p >> 32);
    }
    static void smull(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::int64_t p =
            static_cast<std::int64_t>(static_cast<std::int32_t>(x(cx, i.rn))) *
            static_cast<std::int32_t>(x(cx, i.rm));
        m.write_gpr(cx.core, i.rd, static_cast<std::uint64_t>(p) & 0xFFFFFFFFu);
        m.write_gpr(cx.core, i.ra, static_cast<std::uint64_t>(p) >> 32);
    }
    static void umulh(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const unsigned __int128 p =
            static_cast<unsigned __int128>(x(cx, i.rn)) * x(cx, i.rm);
        m.write_gpr(cx.core, i.rd, static_cast<std::uint64_t>(p >> 64));
    }
    static void udiv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t b = x(cx, i.rm);
        m.write_gpr(cx.core, i.rd, b == 0 ? 0 : x(cx, i.rn) / b);
    }
    static void sdiv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::int64_t a = util::sign_extend(x(cx, i.rn), m.width_bits_);
        const std::int64_t b = util::sign_extend(x(cx, i.rm), m.width_bits_);
        std::int64_t q = 0;
        if (b != 0) {
            q = a == std::numeric_limits<std::int64_t>::min() && b == -1 ? a
                                                                        : a / b;
        }
        m.write_gpr(cx.core, i.rd, static_cast<std::uint64_t>(q));
    }
    static void lsli(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    shl(x(cx, i.rn), static_cast<unsigned>(i.imm), m.width_bits_));
    }
    static void lsri(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    shr(x(cx, i.rn), static_cast<unsigned>(i.imm), m.width_bits_));
    }
    static void asri(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    sar(x(cx, i.rn), static_cast<unsigned>(i.imm), m.width_bits_));
    }
    static void lslv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    shl(x(cx, i.rn), static_cast<unsigned>(x(cx, i.rm) & 0xFF),
                        m.width_bits_));
    }
    static void lsrv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    shr(x(cx, i.rn), static_cast<unsigned>(x(cx, i.rm) & 0xFF),
                        m.width_bits_));
    }
    static void asrv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    sar(x(cx, i.rn), static_cast<unsigned>(x(cx, i.rm) & 0xFF),
                        m.width_bits_));
    }
    static void lslsi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const unsigned w = m.width_bits_;
        const unsigned sh = static_cast<unsigned>(i.imm);
        const std::uint64_t a = x(cx, i.rn);
        const std::uint64_t r = shl(a, sh, w);
        Flags& f = cx.core.regs.flags();
        f.c = util::get_bit(a, w - sh);
        f.n = util::get_bit(r, w - 1);
        f.z = r == 0;
        m.write_gpr(cx.core, i.rd, r);
    }
    static void lsrsi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const unsigned w = m.width_bits_;
        const unsigned sh = static_cast<unsigned>(i.imm);
        const std::uint64_t a = x(cx, i.rn);
        const std::uint64_t r = shr(a, sh, w);
        Flags& f = cx.core.regs.flags();
        f.c = util::get_bit(a, sh - 1);
        f.n = false;
        f.z = r == 0;
        m.write_gpr(cx.core, i.rd, r);
    }
    static void clz(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t a = x(cx, i.rn);
        const unsigned w = m.width_bits_;
        unsigned n;
        if (a == 0) {
            n = w;
        } else if (w == 32) {
            n = util::clz(a, 32);
        } else {
            n = util::clz(a, 64);
        }
        m.write_gpr(cx.core, i.rd, n);
    }
    static void cmp(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        cx.core.regs.flags() =
            carry_add(x(cx, i.rn), ~x(cx, i.rm), 1, m.width_bits_).flags;
    }
    static void cmpi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        cx.core.regs.flags() =
            carry_add(x(cx, i.rn), ~static_cast<std::uint64_t>(i.imm), 1,
                      m.width_bits_)
                .flags;
    }
    static void cmn(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        cx.core.regs.flags() =
            carry_add(x(cx, i.rn), x(cx, i.rm), 0, m.width_bits_).flags;
    }
    static void tst(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t r = (x(cx, i.rn) & x(cx, i.rm)) & m.width_mask_;
        Flags& f = cx.core.regs.flags();
        f.n = util::get_bit(r, m.width_bits_ - 1);
        f.z = r == 0;
    }
    static void csel(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    cond_holds(i.cond, cx.core.regs.flags()) ? x(cx, i.rn)
                                                             : x(cx, i.rm));
    }
    static void cset(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd,
                    cond_holds(i.cond, cx.core.regs.flags()) ? 1 : 0);
    }

    // ---- branches -------------------------------------------------------
    static void b(Machine& m, StepCtx& cx) {
        m.next_pc_ = static_cast<std::uint64_t>(cx.di.ins.imm);
        m.branch_taken_ = true;
    }
    static void bcond(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        if (cond_holds(i.cond, cx.core.regs.flags())) {
            m.next_pc_ = static_cast<std::uint64_t>(i.imm);
            m.branch_taken_ = true;
        }
    }
    static void note_call(Machine& m, std::uint64_t target) {
        if (m.cfg_.profile && m.image_->contains_code(target))
            ++m.func_calls_[m.image_->func_of_instr[m.image_->instr_index(
                target)]];
    }
    static void bl(Machine& m, StepCtx& cx) {
        cx.core.regs.set_lr(cx.pc + isa::kInstrBytes);
        m.next_pc_ = static_cast<std::uint64_t>(cx.di.ins.imm);
        m.branch_taken_ = true;
        note_call(m, static_cast<std::uint64_t>(cx.di.ins.imm));
    }
    static void blr(Machine& m, StepCtx& cx) {
        const std::uint64_t t = x(cx, cx.di.ins.rn);
        cx.core.regs.set_lr(cx.pc + isa::kInstrBytes);
        m.next_pc_ = t;
        m.branch_taken_ = true;
        note_call(m, t);
    }
    static void br(Machine& m, StepCtx& cx) {
        m.next_pc_ = x(cx, cx.di.ins.rn);
        m.branch_taken_ = true;
    }
    static void ret(Machine& m, StepCtx& cx) {
        m.next_pc_ = cx.core.regs.lr();
        m.branch_taken_ = true;
    }
    static void cbz(Machine& m, StepCtx& cx) {
        if (x(cx, cx.di.ins.rn) == 0) {
            m.next_pc_ = static_cast<std::uint64_t>(cx.di.ins.imm);
            m.branch_taken_ = true;
        }
    }
    static void cbnz(Machine& m, StepCtx& cx) {
        if (x(cx, cx.di.ins.rn) != 0) {
            m.next_pc_ = static_cast<std::uint64_t>(cx.di.ins.imm);
            m.branch_taken_ = true;
        }
    }

    // ---- memory ---------------------------------------------------------
    static void load_gpr(Machine& m, StepCtx& cx) { // LDR / LDRW / LDRB
        std::uint64_t v;
        if (!ld(m, cx, addr_of(m, cx), cx.di.mem_size, v)) {
            cx.retire = false;
            return;
        }
        m.write_gpr(cx.core, cx.di.ins.rd, v);
    }
    static void strw(Machine& m, StepCtx& cx) {
        if (!st(m, cx, addr_of(m, cx), 4, x(cx, cx.di.ins.rd) & 0xFFFFFFFFu))
            cx.retire = false;
    }
    static void strb(Machine& m, StepCtx& cx) {
        if (!st(m, cx, addr_of(m, cx), 1, x(cx, cx.di.ins.rd) & 0xFF))
            cx.retire = false;
    }
    static void str(Machine& m, StepCtx& cx) {
        if (!st(m, cx, addr_of(m, cx), cx.di.mem_size, x(cx, cx.di.ins.rd)))
            cx.retire = false;
    }
    static void ldm(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t a = x(cx, i.rn) & m.width_mask_;
        unsigned n = 0;
        for (unsigned r = 0; r < 15 && cx.retire; ++r) {
            if (!(i.regmask & (1u << r))) continue;
            std::uint64_t v;
            if (!ld(m, cx, a + 4 * n, 4, v)) {
                cx.retire = false;
                break;
            }
            m.write_gpr(cx.core, r, v);
            ++n;
        }
        if (cx.retire && i.wb)
            m.write_gpr(cx.core, i.rn, (x(cx, i.rn) + 4 * n) & m.width_mask_);
    }
    static void stm(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t a = x(cx, i.rn) & m.width_mask_;
        unsigned n = 0;
        for (unsigned r = 0; r < 15 && cx.retire; ++r) {
            if (!(i.regmask & (1u << r))) continue;
            if (!st(m, cx, a + 4 * n, 4, x(cx, r))) {
                cx.retire = false;
                break;
            }
            ++n;
        }
        if (cx.retire && i.wb)
            m.write_gpr(cx.core, i.rn, (x(cx, i.rn) + 4 * n) & m.width_mask_);
    }
    static void ldp(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t a = addr_of(m, cx);
        std::uint64_t v1, v2;
        if (!ld(m, cx, a, 8, v1) || !ld(m, cx, a + 8, 8, v2)) {
            cx.retire = false;
            return;
        }
        m.write_gpr(cx.core, i.rd, v1);
        m.write_gpr(cx.core, i.ra, v2);
    }
    static void stp(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const std::uint64_t a = addr_of(m, cx);
        if (!st(m, cx, a, 8, x(cx, i.rd)) || !st(m, cx, a + 8, 8, x(cx, i.ra)))
            cx.retire = false;
    }
    static void ldrex(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const unsigned size = cx.di.mem_size;
        std::uint64_t phys = 0;
        if (!access_fast(m, cx, x(cx, i.rn) & m.width_mask_, size, false, phys)) {
            cx.retire = false;
            return;
        }
        m.write_gpr(cx.core, i.rd, m.mem_.load(phys, size));
        ++cx.cnt.loads;
        cx.core.excl_addr = phys;
        cx.core.excl_valid = true;
    }
    static void strex(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const unsigned size = cx.di.mem_size;
        const std::uint64_t vaddr = x(cx, i.rn) & m.width_mask_;
        const Translation t = m.mem_.translate(
            vaddr, size, cx.core.mode == Mode::KERNEL, cx.core.curproc);
        if (!t.ok()) {
            if (cx.core.mode == Mode::KERNEL) {
                m.panic(TrapCause::DATA_ABORT);
            } else {
                m.take_trap(cx.core, TrapCause::DATA_ABORT,
                            static_cast<std::uint64_t>(t.fault), vaddr);
            }
            cx.retire = false;
            return;
        }
        if (cx.core.excl_valid && cx.core.excl_addr == t.phys) {
            if (m.uncore_.ptr)
                m.uncore_.ptr->on_data_access(m, cx.ci, t.phys, size, true,
                                              false, false, false);
            m.mem_.store(t.phys, size, x(cx, i.rm));
            ++cx.cnt.stores;
            cx.core.excl_valid = false;
            m.invalidate_reservations(t.phys, &cx.core);
            m.write_gpr(cx.core, i.rd, 0);
        } else {
            cx.core.excl_valid = false;
            m.write_gpr(cx.core, i.rd, 1);
        }
    }

    // ---- floating point -------------------------------------------------
    static void fadd(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, vd(cx, i.rn) + vd(cx, i.rm));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fsub(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, vd(cx, i.rn) - vd(cx, i.rm));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fmul(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, vd(cx, i.rn) * vd(cx, i.rm));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fdiv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, vd(cx, i.rn) / vd(cx, i.rm));
        ++cx.cnt.fp_ops;
        cx.cost += 10;
        (void)m;
    }
    static void fsqrt(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, std::sqrt(vd(cx, i.rn)));
        ++cx.cnt.fp_ops;
        cx.cost += 10;
        (void)m;
    }
    static void fneg(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, -vd(cx, i.rn));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fabs_(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, std::fabs(vd(cx, i.rn)));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fmadd(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd, std::fma(vd(cx, i.rn), vd(cx, i.rm), vd(cx, i.ra)));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fmov(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        cx.core.regs.set_v_bits(i.rd, cx.core.regs.v_bits(i.rn));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fmovi(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        cx.core.regs.set_v_bits(i.rd, static_cast<std::uint64_t>(i.imm));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fcmp(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const double a = vd(cx, i.rn), b = vd(cx, i.rm);
        Flags f;
        if (std::isnan(a) || std::isnan(b)) {
            f = Flags{false, false, true, true};
        } else if (a == b) {
            f = Flags{false, true, true, false};
        } else if (a < b) {
            f = Flags{true, false, false, false};
        } else {
            f = Flags{false, false, true, false};
        }
        cx.core.regs.flags() = f;
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fcvtzs(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        const double d = vd(cx, i.rn);
        std::int64_t r;
        if (std::isnan(d)) {
            r = 0;
        } else if (d >= 9.2233720368547758e18) {
            r = std::numeric_limits<std::int64_t>::max();
        } else if (d <= -9.2233720368547758e18) {
            r = std::numeric_limits<std::int64_t>::min();
        } else {
            r = static_cast<std::int64_t>(d);
        }
        m.write_gpr(cx.core, i.rd, static_cast<std::uint64_t>(r));
        ++cx.cnt.fp_ops;
    }
    static void scvtf(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        setv(cx, i.rd,
             static_cast<double>(static_cast<std::int64_t>(x(cx, i.rn))));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fmovvx(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        m.write_gpr(cx.core, i.rd, cx.core.regs.v_bits(i.rn));
        ++cx.cnt.fp_ops;
    }
    static void fmovxv(Machine& m, StepCtx& cx) {
        const Instr& i = cx.di.ins;
        cx.core.regs.set_v_bits(i.rd, x(cx, i.rn));
        ++cx.cnt.fp_ops;
        (void)m;
    }
    static void fldr(Machine& m, StepCtx& cx) {
        std::uint64_t v;
        if (!ld(m, cx, addr_of(m, cx), 8, v)) {
            cx.retire = false;
            return;
        }
        cx.core.regs.set_v_bits(cx.di.ins.rd, v);
    }
    static void fstr(Machine& m, StepCtx& cx) {
        if (!st(m, cx, addr_of(m, cx), 8, cx.core.regs.v_bits(cx.di.ins.rd)))
            cx.retire = false;
    }

    // ---- system ---------------------------------------------------------
    static void svc(Machine& m, StepCtx& cx) {
        if (cx.core.mode == Mode::KERNEL) {
            m.panic(TrapCause::SVC);
            cx.retire = false;
        } else {
            // SVC retires; the trap redirects control flow.
            m.take_trap(cx.core, TrapCause::SVC,
                        static_cast<std::uint64_t>(cx.di.ins.imm), 0);
            m.next_pc_ = cx.core.regs.pc();
        }
    }
    static void sysrd(Machine& m, StepCtx& cx) {
        std::uint64_t v = 0;
        if (!m.sysreg_read(cx.core, static_cast<SysReg>(cx.di.ins.imm), v)) {
            undef(m, cx);
            return;
        }
        m.write_gpr(cx.core, cx.di.ins.rd, v);
    }
    static void syswr(Machine& m, StepCtx& cx) {
        if (!m.sysreg_write(cx.core, static_cast<SysReg>(cx.di.ins.imm),
                            x(cx, cx.di.ins.rn)))
            undef(m, cx);
    }
    static void eret(Machine& m, StepCtx& cx) {
        if (cx.core.mode != Mode::KERNEL) {
            undef(m, cx);
            return;
        }
        const std::uint64_t t = cx.core.regs.sp();
        cx.core.regs.set_sp(cx.core.banked_sp);
        cx.core.banked_sp = t;
        cx.core.mode = Mode::USER;
        m.next_pc_ = cx.core.epc;
        m.branch_taken_ = true;
        cx.core.excl_valid = false;
        if (!m.app_started_) {
            m.app_started_ = true;
            m.app_start_retired_ = m.total_retired_;
        }
    }
    static void wfi(Machine& m, StepCtx& cx) {
        if (cx.core.mode != Mode::KERNEL) {
            undef(m, cx);
            return;
        }
        if (cx.core.pending_timer || cx.core.pending_ipi) {
            cx.core.pending_timer = false;
            cx.core.pending_ipi = false;
        } else {
            cx.core.sleeping = true;
            ++cx.cnt.wfi_sleeps;
        }
    }
    static void hlt(Machine& m, StepCtx& cx) {
        if (cx.core.mode != Mode::KERNEL) {
            undef(m, cx);
            return;
        }
        cx.core.halted = true;
    }
    static void nop(Machine&, StepCtx&) {}
    static void udf(Machine& m, StepCtx& cx) { undef(m, cx); }
};

namespace {

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::UDF) + 1;

/// The dispatch table, in Op declaration order (see isa/op.hpp).
constexpr std::array<ExecHandler, kOpCount> kHandlers = {{
    &ExecOps::movi,   &ExecOps::mov,    &ExecOps::mvn,    &ExecOps::add,
    &ExecOps::sub,    &ExecOps::and_,   &ExecOps::orr,    &ExecOps::eor,
    &ExecOps::mul,    &ExecOps::addi,   &ExecOps::subi,   &ExecOps::andi,
    &ExecOps::orri,   &ExecOps::eori,   &ExecOps::adds,   &ExecOps::subs,
    &ExecOps::addsi,  &ExecOps::subsi,  &ExecOps::adcs,   &ExecOps::sbcs,
    &ExecOps::umull,  &ExecOps::smull,  &ExecOps::umulh,  &ExecOps::udiv,
    &ExecOps::sdiv,   &ExecOps::lsli,   &ExecOps::lsri,   &ExecOps::asri,
    &ExecOps::lslv,   &ExecOps::lsrv,   &ExecOps::asrv,   &ExecOps::lslsi,
    &ExecOps::lsrsi,  &ExecOps::clz,    &ExecOps::cmp,    &ExecOps::cmpi,
    &ExecOps::cmn,    &ExecOps::tst,    &ExecOps::csel,   &ExecOps::cset,
    &ExecOps::b,      &ExecOps::bcond,  &ExecOps::bl,     &ExecOps::blr,
    &ExecOps::br,     &ExecOps::ret,    &ExecOps::cbz,    &ExecOps::cbnz,
    &ExecOps::load_gpr, &ExecOps::str,  &ExecOps::load_gpr, &ExecOps::strw,
    &ExecOps::load_gpr, &ExecOps::strb, &ExecOps::ldm,    &ExecOps::stm,
    &ExecOps::ldp,    &ExecOps::stp,    &ExecOps::ldrex,  &ExecOps::strex,
    &ExecOps::fadd,   &ExecOps::fsub,   &ExecOps::fmul,   &ExecOps::fdiv,
    &ExecOps::fsqrt,  &ExecOps::fneg,   &ExecOps::fabs_,  &ExecOps::fmadd,
    &ExecOps::fmov,   &ExecOps::fmovi,  &ExecOps::fcmp,   &ExecOps::fcvtzs,
    &ExecOps::scvtf,  &ExecOps::fmovvx, &ExecOps::fmovxv, &ExecOps::fldr,
    &ExecOps::fstr,   &ExecOps::svc,    &ExecOps::sysrd,  &ExecOps::syswr,
    &ExecOps::eret,   &ExecOps::wfi,    &ExecOps::nop,    &ExecOps::hlt,
    &ExecOps::udf,
}};

} // namespace

ExecHandler exec_handler(Op op) noexcept {
    return kHandlers[static_cast<std::size_t>(op)];
}

} // namespace serep::sim
