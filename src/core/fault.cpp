#include "core/fault.hpp"

#include "isa/layout.hpp"
#include "uncore/uncore.hpp"
#include "util/hash.hpp"

namespace serep::core {

const char* outcome_name(Outcome o) noexcept {
    switch (o) {
        case Outcome::Vanished: return "Vanished";
        case Outcome::ONA: return "ONA";
        case Outcome::OMM: return "OMM";
        case Outcome::UT: return "UT";
        case Outcome::Hang: return "Hang";
    }
    return "??";
}

bool outcome_from_name(const std::string& name, Outcome& out) noexcept {
    for (unsigned o = 0; o < kOutcomeCount; ++o) {
        if (name == outcome_name(static_cast<Outcome>(o))) {
            out = static_cast<Outcome>(o);
            return true;
        }
    }
    return false;
}

const char* fault_kind_name(FaultTarget::Kind k) noexcept {
    switch (k) {
        case FaultTarget::Kind::GPR: return "gpr";
        case FaultTarget::Kind::FP: return "fp";
        case FaultTarget::Kind::MEM: return "mem";
        case FaultTarget::Kind::CacheTag: return "cache-tag";
        case FaultTarget::Kind::CacheData: return "cache-data";
        case FaultTarget::Kind::Bus: return "bus";
    }
    return "??";
}

bool fault_kind_from_name(const std::string& name, FaultTarget::Kind& out) noexcept {
    if (name == "gpr") out = FaultTarget::Kind::GPR;
    else if (name == "fp") out = FaultTarget::Kind::FP;
    else if (name == "mem") out = FaultTarget::Kind::MEM;
    else if (name == "cache-tag") out = FaultTarget::Kind::CacheTag;
    else if (name == "cache-data") out = FaultTarget::Kind::CacheData;
    else if (name == "bus") out = FaultTarget::Kind::Bus;
    else return false;
    return true;
}

bool is_uncore_kind(FaultTarget::Kind k) noexcept {
    return k == FaultTarget::Kind::CacheTag ||
           k == FaultTarget::Kind::CacheData || k == FaultTarget::Kind::Bus;
}

bool fault_kind_has_reg(FaultTarget::Kind k) noexcept {
    return k == FaultTarget::Kind::GPR || k == FaultTarget::Kind::FP;
}

namespace {
inline void fnv(std::uint64_t& h, std::uint64_t v) { util::fnv1a_u64(h, v); }
} // namespace

std::uint64_t arch_state_hash(const sim::Machine& m) {
    std::uint64_t h = util::kFnvOffset;
    for (unsigned c = 0; c < m.cores(); ++c) {
        const isa::RegFile& r = m.core(c).regs;
        for (unsigned i = 0; i < 33; ++i) fnv(h, r.x(i));
        fnv(h, r.flags().pack());
        if (isa::profile_info(r.profile()).has_fp_regs)
            for (unsigned i = 0; i < 32; ++i) fnv(h, r.v_bits(i));
    }
    return h;
}

std::uint64_t static_data_hash(const sim::Machine& m, unsigned proc) {
    const std::uint64_t base =
        m.mem().kern_size() + std::uint64_t{proc} * m.mem().user_size();
    return m.mem().hash_range(base, m.image().udata_size);
}

std::uint64_t kernel_region_hash(const sim::Machine& m) {
    return m.mem().hash_range(0, m.mem().kern_size());
}

GoldenRef capture_golden(const sim::Machine& m) {
    GoldenRef g;
    g.total_retired = m.total_retired();
    g.ticks = m.time_ticks();
    g.app_start = m.app_start_retired();
    g.exit_code = m.exit_code();
    for (unsigned p = 0; p < m.config().procs; ++p) {
        g.outputs.push_back(m.output(p));
        g.data_hash.push_back(static_data_hash(m, p));
    }
    g.kern_hash = kernel_region_hash(m);
    g.arch_hash = arch_state_hash(m);
    return g;
}

void apply_fault(sim::Machine& m, const FaultTarget& t) {
    switch (t.kind) {
        case FaultTarget::Kind::GPR: m.flip_gpr(t.core, t.reg, t.bit); break;
        case FaultTarget::Kind::FP: m.flip_fp(t.core, t.reg, t.bit); break;
        case FaultTarget::Kind::MEM: m.flip_mem(t.phys, t.bit % 8); break;
        case FaultTarget::Kind::CacheTag:
        case FaultTarget::Kind::CacheData:
        case FaultTarget::Kind::Bus:
            uncore::inject(m, t);
            break;
    }
}

Outcome classify(const sim::Machine& m, const GoldenRef& golden, bool hit_watchdog) {
    if (m.status() == sim::RunStatus::KernelPanic) return Outcome::UT;
    if (hit_watchdog || m.status() == sim::RunStatus::Running ||
        m.status() == sim::RunStatus::Deadlock)
        return Outcome::Hang;
    // terminated: error indication?
    for (unsigned p = 0; p < m.config().procs; ++p) {
        const int code = m.proc_exit_code(p);
        if (code != 0) return Outcome::UT; // includes never-exited (-1)
    }
    if (m.exit_code() != golden.exit_code) return Outcome::UT;
    // silent data corruption?
    for (unsigned p = 0; p < m.config().procs; ++p) {
        if (m.output(p) != golden.outputs[p]) return Outcome::OMM;
        if (static_data_hash(m, p) != golden.data_hash[p]) return Outcome::OMM;
    }
    // architectural traces?
    if (arch_state_hash(m) != golden.arch_hash) return Outcome::ONA;
    if (kernel_region_hash(m) != golden.kern_hash) return Outcome::ONA;
    return Outcome::Vanished;
}

} // namespace serep::core
