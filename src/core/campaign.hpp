// Fault-injection campaign runner — the paper's four-phase workflow:
//  1. golden execution (reference capture + checkpoint ladder),
//  2. fault-list generation (seeded uniform random),
//  3. parallel injection runs (a process-wide work-stealing pool standing in
//     for the paper's 5,000-core cluster; each run resumes from the deepest
//     golden-run checkpoint at or before its strike instant — see
//     orch/checkpoint.hpp and orch/batch_runner.hpp),
//  4. merged outcome database (CSV + JSON).
// Results are bit-deterministic for a given seed, independent of the host
// thread count and of the checkpoint stride.
//
// run_campaign() is a thin single-job wrapper over orch::BatchRunner; batch
// drivers (examples/full_campaign, bench/bench_table*) submit many jobs to
// one runner so golden runs are shared and fault runs interleave.
#pragma once

#include <array>
#include <vector>

#include "core/fault.hpp"
#include "npb/npb.hpp"

namespace serep::core {

struct CampaignConfig {
    unsigned n_faults = 150;
    std::uint64_t seed = 0xDAC2018;
    double watchdog_factor = 4.0;   ///< Hang when run exceeds golden x factor
    bool include_fp_regs = false;   ///< add V8 FP registers to the target space
    bool memory_faults = false;     ///< target data memory instead of registers
    /// When set to one of the uncore kinds (CacheTag / CacheData / Bus) the
    /// campaign targets that uncore fault space (src/uncore/) instead of the
    /// architectural ones; GPR is the "not an uncore campaign" sentinel and
    /// leaves include_fp_regs/memory_faults in charge.
    FaultTarget::Kind uncore_kind = FaultTarget::Kind::GPR;
    unsigned host_threads = 2;
};

struct FaultRecord {
    Fault fault;
    Outcome outcome = Outcome::Vanished;
    std::uint64_t retired = 0; ///< instructions retired by the faulty run
    /// Outcome provenance: false = the fault run was actually simulated;
    /// true = the outcome was derived by equivalence pruning (src/prune/) —
    /// either inferred from the golden run's diff walk or copied from the
    /// simulated representative of the fault's equivalence class. Reports
    /// can gate on this (`serep report --no-inferred`).
    bool inferred = false;
};

struct CampaignResult {
    npb::Scenario scenario;
    GoldenRef golden;
    std::array<std::uint64_t, kOutcomeCount> counts{};
    std::vector<FaultRecord> records;

    std::uint64_t total() const noexcept;
    double pct(Outcome o) const noexcept;
    /// "masking rate": executions with no user-visible error (Vanished+ONA).
    double masked_pct() const noexcept;
    /// Rebuild `counts` from `records` (the phase-4 finisher step; shared by
    /// the batch runner, the shard merger, and the stats sizer).
    void recount() noexcept;
};

/// Generate the fault list (phase 2) — exposed for tests and tools.
std::vector<Fault> make_fault_list(const sim::Machine& golden_machine,
                                   const GoldenRef& golden,
                                   const CampaignConfig& cfg);

/// Run the full campaign for one scenario.
CampaignResult run_campaign(const npb::Scenario& s, const CampaignConfig& cfg);

/// Append per-fault records as CSV rows (phase 4 database export).
std::string campaign_csv(const CampaignResult& r);

/// One campaign as a compact JSON object (the CSV database's JSON sibling):
/// scenario, golden reference, outcome counts/percentages, per-fault records.
std::string campaign_json(const CampaignResult& r);

} // namespace serep::core
