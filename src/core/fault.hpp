// Fault model and outcome classification (the paper's §3.2).
//
// Single-bit upsets: one bit-flip per run at a uniformly random
// (instruction index, core, register, bit) point within the application
// lifespan (OS boot excluded). Outcomes follow Cho et al.:
//   Vanished — no fault traces at all
//   ONA      — output/result memory intact, architectural state differs
//   OMM      — application terminated normally but output/result memory differ
//   UT       — abnormal termination with an error indication
//   Hang     — no termination (watchdog) or deadlock
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace serep::core {

enum class Outcome : std::uint8_t { Vanished, ONA, OMM, UT, Hang };
inline constexpr unsigned kOutcomeCount = 5;
const char* outcome_name(Outcome o) noexcept;
/// Inverse of outcome_name; returns false on an unknown name.
bool outcome_from_name(const std::string& name, Outcome& out) noexcept;

struct FaultTarget {
    /// GPR/FP/MEM are the architectural spaces; CacheTag/CacheData/Bus are
    /// the uncore spaces (src/uncore/). The uncore kinds reuse the existing
    /// fields so the database record schema is unchanged:
    ///  * CacheTag/CacheData — `reg` is the cache level (0 = L1D of `core`,
    ///    1 = the shared L2, with core = 0), `phys` the struck physical
    ///    byte; `bit` is the flipped bit within the byte (CacheData) or the
    ///    flipped tag-bit index (CacheTag).
    ///  * Bus — `core` is the struck core, `bit` the flipped bit of the
    ///    next in-flight transfer on that core's port; reg/phys unused.
    enum class Kind : std::uint8_t { GPR, FP, MEM, CacheTag, CacheData, Bus };
    Kind kind = Kind::GPR;
    unsigned core = 0;   ///< struck core (GPR/FP/Bus)
    unsigned reg = 0;    ///< register index (GPR/FP) or cache level (uncore)
    unsigned bit = 0;    ///< flipped bit
    std::uint64_t phys = 0; ///< physical byte (MEM / cache kinds)
};

/// "gpr" / "fp" / "mem" / "cache-tag" / "cache-data" / "bus" — the names the
/// CSV/JSON databases use.
const char* fault_kind_name(FaultTarget::Kind k) noexcept;
bool fault_kind_from_name(const std::string& name, FaultTarget::Kind& out) noexcept;

/// The kinds src/uncore/ injects (cache-tag / cache-data / bus). Pruning's
/// register-diff def-use walk cannot reason about them and must decline.
bool is_uncore_kind(FaultTarget::Kind k) noexcept;
/// Does a record of this kind carry an architectural register index in
/// `reg`? (The uncore kinds reuse `reg` as a cache level.)
bool fault_kind_has_reg(FaultTarget::Kind k) noexcept;

struct Fault {
    std::uint64_t at_retired = 0; ///< global instruction index of the strike
    FaultTarget target;
};

/// Reference captured from the faultless run (phase 1 of the workflow).
struct GoldenRef {
    std::uint64_t total_retired = 0;
    std::uint64_t ticks = 0;
    std::uint64_t app_start = 0;
    int exit_code = 0;
    std::vector<std::string> outputs;     ///< per process
    std::vector<std::uint64_t> data_hash; ///< per-process static data region
    std::uint64_t kern_hash = 0;          ///< kernel region (TCBs, channels)
    std::uint64_t arch_hash = 0;          ///< all register files
};

/// Hash of the architectural register state of every core.
std::uint64_t arch_state_hash(const sim::Machine& m);
/// Hash of one process's static data region (where results live).
std::uint64_t static_data_hash(const sim::Machine& m, unsigned proc);
std::uint64_t kernel_region_hash(const sim::Machine& m);

/// Capture the golden reference from a finished faultless run.
GoldenRef capture_golden(const sim::Machine& m);

/// Classify a finished faulty run against the golden reference.
/// `hit_watchdog` marks runs stopped by the instruction budget.
Outcome classify(const sim::Machine& m, const GoldenRef& golden, bool hit_watchdog);

void apply_fault(sim::Machine& m, const FaultTarget& t);

} // namespace serep::core
