#include "core/campaign.hpp"

#include <algorithm>
#include <sstream>

#include "orch/batch_runner.hpp"
#include "uncore/uncore.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace serep::core {

std::uint64_t CampaignResult::total() const noexcept {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
}

double CampaignResult::pct(Outcome o) const noexcept {
    const auto t = total();
    if (!t) return 0;
    return 100.0 * static_cast<double>(counts[static_cast<unsigned>(o)]) /
           static_cast<double>(t);
}

double CampaignResult::masked_pct() const noexcept {
    return pct(Outcome::Vanished) + pct(Outcome::ONA);
}

void CampaignResult::recount() noexcept {
    counts = {};
    for (const FaultRecord& rec : records)
        ++counts[static_cast<unsigned>(rec.outcome)];
}

std::vector<Fault> make_fault_list(const sim::Machine& m, const GoldenRef& golden,
                                   const CampaignConfig& cfg) {
    util::check(golden.total_retired > golden.app_start,
                "fault list: empty application window");
    util::Rng rng(cfg.seed);
    const unsigned cores = m.cores();
    const auto& info = isa::profile_info(m.image().profile);
    std::vector<Fault> faults;
    faults.reserve(cfg.n_faults);
    for (unsigned i = 0; i < cfg.n_faults; ++i) {
        Fault f;
        f.at_retired = rng.range(golden.app_start, golden.total_retired - 1);
        if (is_uncore_kind(cfg.uncore_kind)) {
            f.target.kind = cfg.uncore_kind;
            if (cfg.uncore_kind == FaultTarget::Kind::Bus) {
                f.target.core = static_cast<unsigned>(rng.below(cores));
                f.target.bit = static_cast<unsigned>(rng.below(64));
            } else {
                // Cache strikes address a cache *cell* (set, way) — phys
                // carries the cell id and the strike hits whatever line is
                // resident there at the injection instant. For cache-data
                // `bit` indexes the struck bit within the 64-byte line; for
                // cache-tag it picks the flipped tag bit.
                const unsigned level =
                    static_cast<unsigned>(rng.below(uncore::kLevelCount));
                f.target.reg = level;
                f.target.core = level == uncore::kLevelL1D
                                    ? static_cast<unsigned>(rng.below(cores))
                                    : 0;
                f.target.phys = rng.below(uncore::cell_count(level));
                f.target.bit = static_cast<unsigned>(
                    cfg.uncore_kind == FaultTarget::Kind::CacheData
                        ? rng.below(64 * 8)
                        : rng.below(uncore::tag_bit_count(
                              level, m.mem().phys_size())));
            }
        } else if (cfg.memory_faults) {
            f.target.kind = FaultTarget::Kind::MEM;
            f.target.phys = rng.below(m.mem().phys_size());
            f.target.bit = static_cast<unsigned>(rng.below(8));
        } else {
            const unsigned fp_regs = cfg.include_fp_regs ? info.fp_reg_count : 0;
            const unsigned total_regs = info.gpr_count + fp_regs;
            const unsigned pick = static_cast<unsigned>(rng.below(total_regs));
            f.target.core = static_cast<unsigned>(rng.below(cores));
            if (pick < info.gpr_count) {
                f.target.kind = FaultTarget::Kind::GPR;
                f.target.reg = pick;
                f.target.bit = static_cast<unsigned>(rng.below(info.width_bits));
            } else {
                f.target.kind = FaultTarget::Kind::FP;
                f.target.reg = pick - info.gpr_count;
                f.target.bit = static_cast<unsigned>(rng.below(64));
            }
        }
        faults.push_back(f);
    }
    std::sort(faults.begin(), faults.end(), [](const Fault& a, const Fault& b) {
        return a.at_retired < b.at_retired;
    });
    return faults;
}

CampaignResult run_campaign(const npb::Scenario& s, const CampaignConfig& cfg) {
    // Thin single-job wrapper over the orchestrator: one scenario, its own
    // pool of cfg.host_threads workers, auto checkpoint stride.
    orch::BatchOptions opts;
    opts.threads = std::max(1u, cfg.host_threads);
    orch::BatchRunner runner(opts);
    runner.add(s, cfg);
    auto results = runner.run_all();
    return std::move(results.front());
}

std::string campaign_csv(const CampaignResult& r) {
    std::ostringstream os;
    util::CsvWriter w(os);
    // `phys` is the struck physical byte for mem faults, the struck cache
    // cell id (set * ways + way, with `reg` the cache level) for cache
    // faults, and 0 for register/bus faults, whose target is the
    // core/reg/bit triple instead.
    w.row({"scenario", "at", "kind", "core", "reg", "bit", "phys", "outcome",
           "retired"});
    for (const FaultRecord& rec : r.records) {
        w.row({r.scenario.name(), std::to_string(rec.fault.at_retired),
               fault_kind_name(rec.fault.target.kind),
               std::to_string(rec.fault.target.core),
               std::to_string(rec.fault.target.reg),
               std::to_string(rec.fault.target.bit),
               std::to_string(rec.fault.target.phys), outcome_name(rec.outcome),
               std::to_string(rec.retired)});
    }
    return os.str();
}

std::string campaign_json(const CampaignResult& r) {
    std::ostringstream os;
    util::JsonWriter j(os);
    j.begin_object();
    j.key("scenario").value(r.scenario.name());
    j.key("golden").begin_object();
    j.key("total_retired").value(r.golden.total_retired);
    j.key("ticks").value(r.golden.ticks);
    j.key("app_start").value(r.golden.app_start);
    j.key("exit_code").value(r.golden.exit_code);
    j.end_object();
    j.key("counts").begin_object();
    for (unsigned o = 0; o < kOutcomeCount; ++o)
        j.key(outcome_name(static_cast<Outcome>(o))).value(r.counts[o]);
    j.end_object();
    j.key("pct").begin_object();
    for (unsigned o = 0; o < kOutcomeCount; ++o)
        j.key(outcome_name(static_cast<Outcome>(o)))
            .value(r.pct(static_cast<Outcome>(o)));
    j.end_object();
    j.key("masked_pct").value(r.masked_pct());
    j.key("records").begin_array();
    for (const FaultRecord& rec : r.records) {
        j.begin_object();
        j.key("at").value(rec.fault.at_retired);
        j.key("kind").value(fault_kind_name(rec.fault.target.kind));
        j.key("core").value(rec.fault.target.core);
        j.key("reg").value(rec.fault.target.reg);
        j.key("bit").value(rec.fault.target.bit);
        j.key("phys").value(rec.fault.target.phys);
        j.key("outcome").value(outcome_name(rec.outcome));
        j.key("retired").value(rec.retired);
        // Only pruned campaigns carry the provenance key, keeping unpruned
        // databases byte-identical to every release since PR 2.
        if (rec.inferred) j.key("inferred").value(true);
        j.end_object();
    }
    j.end_array();
    j.end_object();
    return os.str();
}

} // namespace serep::core
