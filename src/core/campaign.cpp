#include "core/campaign.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace serep::core {

std::uint64_t CampaignResult::total() const noexcept {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
}

double CampaignResult::pct(Outcome o) const noexcept {
    const auto t = total();
    if (!t) return 0;
    return 100.0 * static_cast<double>(counts[static_cast<unsigned>(o)]) /
           static_cast<double>(t);
}

double CampaignResult::masked_pct() const noexcept {
    return pct(Outcome::Vanished) + pct(Outcome::ONA);
}

std::vector<Fault> make_fault_list(const sim::Machine& m, const GoldenRef& golden,
                                   const CampaignConfig& cfg) {
    util::check(golden.total_retired > golden.app_start,
                "fault list: empty application window");
    util::Rng rng(cfg.seed);
    const unsigned cores = m.cores();
    const auto& info = isa::profile_info(m.image().profile);
    std::vector<Fault> faults;
    faults.reserve(cfg.n_faults);
    for (unsigned i = 0; i < cfg.n_faults; ++i) {
        Fault f;
        f.at_retired = rng.range(golden.app_start, golden.total_retired - 1);
        if (cfg.memory_faults) {
            f.target.kind = FaultTarget::Kind::MEM;
            f.target.phys = rng.below(m.mem().phys_size());
            f.target.bit = static_cast<unsigned>(rng.below(8));
        } else {
            const unsigned fp_regs = cfg.include_fp_regs ? info.fp_reg_count : 0;
            const unsigned total_regs = info.gpr_count + fp_regs;
            const unsigned pick = static_cast<unsigned>(rng.below(total_regs));
            f.target.core = static_cast<unsigned>(rng.below(cores));
            if (pick < info.gpr_count) {
                f.target.kind = FaultTarget::Kind::GPR;
                f.target.reg = pick;
                f.target.bit = static_cast<unsigned>(rng.below(info.width_bits));
            } else {
                f.target.kind = FaultTarget::Kind::FP;
                f.target.reg = pick - info.gpr_count;
                f.target.bit = static_cast<unsigned>(rng.below(64));
            }
        }
        faults.push_back(f);
    }
    std::sort(faults.begin(), faults.end(), [](const Fault& a, const Fault& b) {
        return a.at_retired < b.at_retired;
    });
    return faults;
}

CampaignResult run_campaign(const npb::Scenario& s, const CampaignConfig& cfg) {
    // Phase 1: golden execution.
    sim::Machine golden_m = npb::make_machine(s, false);
    golden_m.run_until(~0ULL >> 1);
    util::check(golden_m.status() == sim::RunStatus::Shutdown,
                "golden run did not terminate: " + s.name());
    util::check(golden_m.exit_code() == 0, "golden run failed: " + s.name());

    CampaignResult result;
    result.scenario = s;
    result.golden = capture_golden(golden_m);

    // Phase 2: fault list (time-sorted).
    const std::vector<Fault> faults = make_fault_list(golden_m, result.golden, cfg);
    result.records.resize(faults.size());

    const std::uint64_t budget =
        static_cast<std::uint64_t>(static_cast<double>(result.golden.total_retired) *
                                   cfg.watchdog_factor) +
        200'000;

    // Phase 3: parallel injections. Contiguous fault ranges per worker keep
    // the result deterministic for any thread count.
    const unsigned nthreads =
        std::max(1u, std::min<unsigned>(cfg.host_threads,
                                        static_cast<unsigned>(faults.size())));
    auto worker = [&](unsigned wid) {
        const std::size_t per = (faults.size() + nthreads - 1) / nthreads;
        const std::size_t lo = wid * per;
        const std::size_t hi = std::min(faults.size(), lo + per);
        if (lo >= hi) return;
        sim::Machine base = npb::make_machine(s, false);
        for (std::size_t i = lo; i < hi; ++i) {
            const Fault& f = faults[i];
            base.run_until(f.at_retired); // monotonic fast-forward
            sim::Machine run = base;      // checkpoint clone
            apply_fault(run, f.target);
            run.run_until(budget);
            const bool watchdog = run.status() == sim::RunStatus::Running;
            FaultRecord rec;
            rec.fault = f;
            rec.outcome = classify(run, result.golden, watchdog);
            rec.retired = run.total_retired();
            result.records[i] = rec;
        }
    };
    if (nthreads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        for (unsigned w = 0; w < nthreads; ++w) pool.emplace_back(worker, w);
        for (auto& t : pool) t.join();
    }

    // Phase 4: merge.
    for (const FaultRecord& r : result.records)
        ++result.counts[static_cast<unsigned>(r.outcome)];
    return result;
}

std::string campaign_csv(const CampaignResult& r) {
    std::ostringstream os;
    util::CsvWriter w(os);
    w.row({"scenario", "at", "kind", "core", "reg", "bit", "outcome", "retired"});
    for (const FaultRecord& rec : r.records) {
        const char* kind = rec.fault.target.kind == FaultTarget::Kind::GPR ? "gpr"
                           : rec.fault.target.kind == FaultTarget::Kind::FP ? "fp"
                                                                            : "mem";
        w.row({r.scenario.name(), std::to_string(rec.fault.at_retired), kind,
               std::to_string(rec.fault.target.core),
               std::to_string(rec.fault.target.reg),
               std::to_string(rec.fault.target.bit), outcome_name(rec.outcome),
               std::to_string(rec.retired)});
    }
    return os.str();
}

} // namespace serep::core
