#include "exp/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace serep::exp {

namespace {

npb::Klass klass_from_spec(const std::string& name) {
    for (npb::Klass k : {npb::Klass::Mini, npb::Klass::S, npb::Klass::W})
        if (name == npb::klass_name(k)) return k;
    util::fail_usage("spec: unknown problem class '" + name +
                     "' (expected Mini, S, or W)");
}

const char* isa_str(const npb::Scenario& s) noexcept {
    return isa::profile_short_name(s.isa);
}

template <typename T>
bool matches(const std::vector<T>& set, const T& v) {
    return set.empty() || std::find(set.begin(), set.end(), v) != set.end();
}

bool same_cell(const npb::Scenario& s, const CellSpec& c) {
    return c.isa == isa_str(s) && c.app == npb::app_name(s.app) &&
           c.api == npb::api_name(s.api) && c.cores == s.cores;
}

} // namespace

ExperimentPlan::ExperimentPlan(ExperimentSpec spec) : spec_(std::move(spec)) {
    spec_.validate();
    spec_hash_ = spec_.spec_hash();
    hash_hex_ = spec_.spec_hash_hex();

    const npb::Klass klass = klass_from_spec(spec_.klass);
    core::CampaignConfig base;
    base.n_faults = spec_.faults;
    base.seed = spec_.seed;
    base.watchdog_factor = spec_.watchdog;
    base.host_threads = spec_.threads;

    const std::vector<npb::Scenario> all = npb::paper_scenarios(klass);

    // Kind-major expansion: the full scenario selection for each kind in
    // spec order, so a single-kind spec's job list is exactly the pre-list
    // one.
    for (const std::string& kind : spec_.kinds) {
        core::CampaignConfig cfg = base;
        cfg.include_fp_regs = kind == "fp";
        cfg.memory_faults = kind == "mem";
        core::FaultTarget::Kind fk = core::FaultTarget::Kind::GPR;
        core::fault_kind_from_name(kind, fk);
        if (core::is_uncore_kind(fk)) cfg.uncore_kind = fk;

        // fp campaigns only exist on the v8 profile: an unconstrained
        // matrix narrows to it, a constrained one is intersected with it
        // (a pure-fp spec naming v7 was already rejected in validate()).
        std::vector<std::string> isas = spec_.isas;
        if (kind == "fp") {
            if (isas.empty()) {
                isas = {"v8"};
            } else {
                isas.erase(std::remove_if(isas.begin(), isas.end(),
                                          [](const std::string& i) {
                                              return i != "v8";
                                          }),
                           isas.end());
                util::check_usage(!isas.empty(),
                                  "spec: fault.kind 'fp' needs a v8 scenario "
                                  "but matrix.isa selects none");
            }
        }

        std::vector<npb::Scenario> selected;

        // Explicit cells first, in spec order (the bench drivers depend on
        // result order matching their table layout). In a mixed-kind spec
        // the fp kind skips v7 cells (the other kinds still run them).
        for (const CellSpec& c : spec_.cells) {
            if (kind == "fp" && c.isa == "v7") continue;
            const auto it = std::find_if(all.begin(), all.end(),
                                         [&](const npb::Scenario& s) {
                                             return same_cell(s, c);
                                         });
            util::check_usage(
                it != all.end(),
                "spec: matrix.cells names a configuration the paper does not "
                "have: " + c.isa + "-" + c.app + "-" + c.api + "-" +
                    std::to_string(c.cores) +
                    " (check app/API availability and the BT/SP MPI "
                    "square-core restriction)");
            const bool dup = std::any_of(selected.begin(), selected.end(),
                                         [&](const npb::Scenario& s) {
                                             return same_cell(s, c);
                                         });
            util::check_usage(!dup, "spec: matrix.cells lists " + it->name() +
                                        " more than once");
            selected.push_back(*it);
        }

        // Cross-product matches in canonical paper order, minus cell
        // duplicates.
        if (spec_.cross_product) {
            for (const npb::Scenario& s : all) {
                if (!matches(isas, std::string(isa_str(s)))) continue;
                if (!matches(spec_.apps, std::string(npb::app_name(s.app))))
                    continue;
                if (!matches(spec_.apis, std::string(npb::api_name(s.api))))
                    continue;
                if (!matches(spec_.cores, s.cores)) continue;
                const bool dup = std::any_of(
                    spec_.cells.begin(), spec_.cells.end(),
                    [&](const CellSpec& c) { return same_cell(s, c); });
                if (!dup) selected.push_back(s);
            }
        }
        util::check_usage(!selected.empty(),
                          "spec: no scenarios match the given matrix" +
                              (spec_.kinds.size() > 1
                                   ? " for fault kind '" + kind + "'"
                                   : std::string()));

        for (const npb::Scenario& s : selected) {
            PlannedJob j;
            j.scenario = s;
            j.kind = kind;
            j.cfg = cfg;
            j.id = s.name() + "-" + spec_.klass + "-" + kind;
            jobs_.push_back(std::move(j));
        }
    }

    util::check_usage(spec_.weights.empty() ||
                          spec_.weights.size() == jobs_.size(),
                      "spec: shard.weights has " +
                          std::to_string(spec_.weights.size()) +
                          " entries but the matrix expands to " +
                          std::to_string(jobs_.size()) +
                          " jobs (one weight per job)");
}

std::vector<orch::ShardJobSpec> ExperimentPlan::shard_jobs() const {
    std::vector<orch::ShardJobSpec> out;
    out.reserve(jobs_.size());
    for (const PlannedJob& j : jobs_) out.push_back({j.scenario, j.cfg});
    return out;
}

const std::vector<double>& ExperimentPlan::weights() {
    if (!spec_.weights.empty()) return spec_.weights;
    if (weights_.empty()) weights_ = orch::probe_job_weights(shard_jobs());
    return weights_;
}

orch::WeightedShardPlan ExperimentPlan::weighted_plan(unsigned index) {
    return orch::make_weighted_plan(weights(), index, spec_.shards);
}

std::string ExperimentPlan::listing() {
    std::ostringstream os;
    char buf[160];

    os << "experiment " << spec_.name << " (spec " << hash_hex_ << ")\n";
    std::string kind_list;
    for (const std::string& k : spec_.kinds)
        kind_list += (kind_list.empty() ? "" : ",") + k;
    std::snprintf(buf, sizeof buf,
                  "fault model: kind=%s faults/job=%u seed=0x%llx\n",
                  kind_list.c_str(), spec_.faults,
                  static_cast<unsigned long long>(spec_.seed));
    os << buf;
    if (spec_.target_ci > 0) {
        std::snprintf(buf, sizeof buf,
                      "sizing: target-ci=%.3g @ %.2f confidence (batch %u, "
                      "min %u); faults/job is the ceiling\n",
                      spec_.target_ci, spec_.ci_confidence, spec_.ci_batch,
                      spec_.ci_min);
        os << buf;
    }
    // Emitted only for prune-enabled specs: the listing of every existing
    // spec (tests/golden/plan_paper_mini.txt) must stay byte-identical.
    if (spec_.prune) {
        std::snprintf(buf, sizeof buf,
                      "prune: fault-equivalence classes on (verify sample "
                      "%u/job)\n",
                      spec_.prune_verify);
        os << buf;
    }
    std::snprintf(buf, sizeof buf, "engine: %s, %u threads, checkpoints %s\n",
                  spec_.engine.c_str(), spec_.threads,
                  !spec_.checkpoints ? "off"
                  : spec_.adaptive
                      ? (spec_.delta ? "on (adaptive stride, delta rungs)"
                                     : "on (adaptive stride, full rungs)")
                      : (spec_.delta ? "on (fixed stride, delta rungs)"
                                     : "on (fixed stride, full rungs)"));
    os << buf;

    const std::uint64_t space =
        static_cast<std::uint64_t>(jobs_.size()) * spec_.faults;
    std::snprintf(buf, sizeof buf, "jobs: %zu, fault space %llu\n",
                  jobs_.size(), static_cast<unsigned long long>(space));
    os << buf;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        std::snprintf(buf, sizeof buf, "  [%3zu] %s\n", i,
                      jobs_[i].id.c_str());
        os << buf;
    }

    if (spec_.shards > 1) {
        std::snprintf(buf, sizeof buf, "shards: %u %s -> %s_shard<k>.jsonl",
                      spec_.shards, spec_.partition.c_str(),
                      spec_.out.c_str());
        os << buf;
        if (!weighted()) {
            std::snprintf(buf, sizeof buf, ", ~%llu faults/shard\n",
                          static_cast<unsigned long long>(
                              (space + spec_.shards - 1) / spec_.shards));
            os << buf;
        } else if (weights_ready()) {
            // The cached (or baked) vector feeds this estimate AND every
            // shard cut of a subsequent run in this process — one probe per
            // experiment, never one per shard.
            const std::vector<double>& w = weights();
            double total = 0;
            for (double x : w) total += x > 0 ? x : 0;
            std::snprintf(buf, sizeof buf,
                          ", equal-work cut: ~%.3g weight units/shard\n",
                          total / spec_.shards);
            os << buf;
            os << "  weights: [";
            for (std::size_t i = 0; i < w.size(); ++i) {
                std::snprintf(buf, sizeof buf, "%s%.0f", i ? ", " : "", w[i]);
                os << buf;
            }
            os << "]  (bake into shard.weights to skip probing)\n";
        } else {
            // Listing never probes on its own: a fully-resumed `serep run`
            // must stay golden-run-free. `serep plan` probes explicitly and
            // prints the bakeable vector through the branch above.
            os << ", equal-work cut (weights probed at run time; `serep "
                  "plan` prints a bakeable vector)\n";
        }
        // Per-shard per-kind breakdown — only for mixed-kind specs, so
        // every single-kind plan golden stays byte-identical.
        if (spec_.kinds.size() > 1) {
            if (weighted() && !weights_ready()) {
                os << "  per-kind shard breakdown: weights probed at run "
                      "time\n";
            } else {
                for (unsigned sh = 0; sh < spec_.shards; ++sh) {
                    orch::WeightedShardPlan wp;
                    if (weighted()) wp = weighted_plan(sh);
                    std::snprintf(buf, sizeof buf, "  shard %u:", sh);
                    os << buf;
                    bool first = true;
                    for (const std::string& kind : spec_.kinds) {
                        std::size_t nk = 0;
                        std::uint64_t fk = 0;
                        for (std::size_t j = 0; j < jobs_.size(); ++j) {
                            if (jobs_[j].kind != kind) continue;
                            if (weighted()) {
                                const auto& r = wp.job_ranges[j];
                                if (r.first >= r.second) continue;
                                ++nk;
                                fk += static_cast<std::uint64_t>(
                                    static_cast<double>(r.second - r.first) /
                                        wp.resolution * spec_.faults +
                                    0.5);
                            } else {
                                // Uniform: every shard owns a slice of
                                // every job's fault list.
                                ++nk;
                                fk += (std::uint64_t{spec_.faults} +
                                       spec_.shards - 1) /
                                      spec_.shards;
                            }
                        }
                        std::snprintf(buf, sizeof buf,
                                      "%s %s %zu jobs ~%llu faults",
                                      first ? "" : ",", kind.c_str(), nk,
                                      static_cast<unsigned long long>(fk));
                        os << buf;
                        first = false;
                    }
                    os << "\n";
                }
            }
        }
    } else {
        os << "shards: none (single process)\n";
    }

    if (!spec_.out.empty())
        os << "outputs: " << csv_path() << ", " << jsonl_path() << "\n";
    if (!spec_.report_md.empty())
        os << "report: markdown -> " << spec_.report_md << "\n";
    if (!spec_.report_csv.empty())
        os << "report: csv -> " << spec_.report_csv << "\n";
    if (!spec_.report_json.empty())
        os << "report: figure-json -> " << spec_.report_json << "\n";
    return os.str();
}

} // namespace serep::exp
