#include "exp/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace serep::exp {

namespace {

npb::Klass klass_from_spec(const std::string& name) {
    for (npb::Klass k : {npb::Klass::Mini, npb::Klass::S, npb::Klass::W})
        if (name == npb::klass_name(k)) return k;
    util::fail_usage("spec: unknown problem class '" + name +
                     "' (expected Mini, S, or W)");
}

const char* isa_str(const npb::Scenario& s) noexcept {
    return isa::profile_short_name(s.isa);
}

template <typename T>
bool matches(const std::vector<T>& set, const T& v) {
    return set.empty() || std::find(set.begin(), set.end(), v) != set.end();
}

bool same_cell(const npb::Scenario& s, const CellSpec& c) {
    return c.isa == isa_str(s) && c.app == npb::app_name(s.app) &&
           c.api == npb::api_name(s.api) && c.cores == s.cores;
}

} // namespace

ExperimentPlan::ExperimentPlan(ExperimentSpec spec) : spec_(std::move(spec)) {
    spec_.validate();
    spec_hash_ = spec_.spec_hash();
    hash_hex_ = spec_.spec_hash_hex();

    const npb::Klass klass = klass_from_spec(spec_.klass);
    core::CampaignConfig cfg;
    cfg.n_faults = spec_.faults;
    cfg.seed = spec_.seed;
    cfg.watchdog_factor = spec_.watchdog;
    cfg.include_fp_regs = spec_.kind == "fp";
    cfg.memory_faults = spec_.kind == "mem";
    cfg.host_threads = spec_.threads;

    // fp campaigns only exist on the v8 profile; an unconstrained matrix
    // narrows to it (an explicit v7 was already rejected in validate()).
    std::vector<std::string> isas = spec_.isas;
    if (spec_.kind == "fp" && isas.empty()) isas = {"v8"};

    const std::vector<npb::Scenario> all = npb::paper_scenarios(klass);
    std::vector<npb::Scenario> selected;

    // Explicit cells first, in spec order (the bench drivers depend on
    // result order matching their table layout).
    for (const CellSpec& c : spec_.cells) {
        const auto it = std::find_if(all.begin(), all.end(),
                                     [&](const npb::Scenario& s) {
                                         return same_cell(s, c);
                                     });
        util::check_usage(
            it != all.end(),
            "spec: matrix.cells names a configuration the paper does not "
            "have: " + c.isa + "-" + c.app + "-" + c.api + "-" +
                std::to_string(c.cores) +
                " (check app/API availability and the BT/SP MPI "
                "square-core restriction)");
        const bool dup = std::any_of(selected.begin(), selected.end(),
                                     [&](const npb::Scenario& s) {
                                         return same_cell(s, c);
                                     });
        util::check_usage(!dup, "spec: matrix.cells lists " + it->name() +
                                    " more than once");
        selected.push_back(*it);
    }

    // Cross-product matches in canonical paper order, minus cell duplicates.
    if (spec_.cross_product) {
        for (const npb::Scenario& s : all) {
            if (!matches(isas, std::string(isa_str(s)))) continue;
            if (!matches(spec_.apps, std::string(npb::app_name(s.app))))
                continue;
            if (!matches(spec_.apis, std::string(npb::api_name(s.api))))
                continue;
            if (!matches(spec_.cores, s.cores)) continue;
            const bool dup =
                std::any_of(spec_.cells.begin(), spec_.cells.end(),
                            [&](const CellSpec& c) { return same_cell(s, c); });
            if (!dup) selected.push_back(s);
        }
    }
    util::check_usage(!selected.empty(),
                      "spec: no scenarios match the given matrix");

    for (const npb::Scenario& s : selected) {
        PlannedJob j;
        j.scenario = s;
        j.cfg = cfg;
        j.id = s.name() + "-" + spec_.klass + "-" + spec_.kind;
        jobs_.push_back(std::move(j));
    }

    util::check_usage(spec_.weights.empty() ||
                          spec_.weights.size() == jobs_.size(),
                      "spec: shard.weights has " +
                          std::to_string(spec_.weights.size()) +
                          " entries but the matrix expands to " +
                          std::to_string(jobs_.size()) +
                          " jobs (one weight per job)");
}

std::vector<orch::ShardJobSpec> ExperimentPlan::shard_jobs() const {
    std::vector<orch::ShardJobSpec> out;
    out.reserve(jobs_.size());
    for (const PlannedJob& j : jobs_) out.push_back({j.scenario, j.cfg});
    return out;
}

const std::vector<double>& ExperimentPlan::weights() {
    if (!spec_.weights.empty()) return spec_.weights;
    if (weights_.empty()) weights_ = orch::probe_job_weights(shard_jobs());
    return weights_;
}

orch::WeightedShardPlan ExperimentPlan::weighted_plan(unsigned index) {
    return orch::make_weighted_plan(weights(), index, spec_.shards);
}

std::string ExperimentPlan::listing() {
    std::ostringstream os;
    char buf[160];

    os << "experiment " << spec_.name << " (spec " << hash_hex_ << ")\n";
    std::snprintf(buf, sizeof buf,
                  "fault model: kind=%s faults/job=%u seed=0x%llx\n",
                  spec_.kind.c_str(), spec_.faults,
                  static_cast<unsigned long long>(spec_.seed));
    os << buf;
    if (spec_.target_ci > 0) {
        std::snprintf(buf, sizeof buf,
                      "sizing: target-ci=%.3g @ %.2f confidence (batch %u, "
                      "min %u); faults/job is the ceiling\n",
                      spec_.target_ci, spec_.ci_confidence, spec_.ci_batch,
                      spec_.ci_min);
        os << buf;
    }
    // Emitted only for prune-enabled specs: the listing of every existing
    // spec (tests/golden/plan_paper_mini.txt) must stay byte-identical.
    if (spec_.prune) {
        std::snprintf(buf, sizeof buf,
                      "prune: fault-equivalence classes on (verify sample "
                      "%u/job)\n",
                      spec_.prune_verify);
        os << buf;
    }
    std::snprintf(buf, sizeof buf, "engine: %s, %u threads, checkpoints %s\n",
                  spec_.engine.c_str(), spec_.threads,
                  !spec_.checkpoints ? "off"
                  : spec_.adaptive
                      ? (spec_.delta ? "on (adaptive stride, delta rungs)"
                                     : "on (adaptive stride, full rungs)")
                      : (spec_.delta ? "on (fixed stride, delta rungs)"
                                     : "on (fixed stride, full rungs)"));
    os << buf;

    const std::uint64_t space =
        static_cast<std::uint64_t>(jobs_.size()) * spec_.faults;
    std::snprintf(buf, sizeof buf, "jobs: %zu, fault space %llu\n",
                  jobs_.size(), static_cast<unsigned long long>(space));
    os << buf;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        std::snprintf(buf, sizeof buf, "  [%3zu] %s\n", i,
                      jobs_[i].id.c_str());
        os << buf;
    }

    if (spec_.shards > 1) {
        std::snprintf(buf, sizeof buf, "shards: %u %s -> %s_shard<k>.jsonl",
                      spec_.shards, spec_.partition.c_str(),
                      spec_.out.c_str());
        os << buf;
        if (!weighted()) {
            std::snprintf(buf, sizeof buf, ", ~%llu faults/shard\n",
                          static_cast<unsigned long long>(
                              (space + spec_.shards - 1) / spec_.shards));
            os << buf;
        } else if (weights_ready()) {
            // The cached (or baked) vector feeds this estimate AND every
            // shard cut of a subsequent run in this process — one probe per
            // experiment, never one per shard.
            const std::vector<double>& w = weights();
            double total = 0;
            for (double x : w) total += x > 0 ? x : 0;
            std::snprintf(buf, sizeof buf,
                          ", equal-work cut: ~%.3g weight units/shard\n",
                          total / spec_.shards);
            os << buf;
            os << "  weights: [";
            for (std::size_t i = 0; i < w.size(); ++i) {
                std::snprintf(buf, sizeof buf, "%s%.0f", i ? ", " : "", w[i]);
                os << buf;
            }
            os << "]  (bake into shard.weights to skip probing)\n";
        } else {
            // Listing never probes on its own: a fully-resumed `serep run`
            // must stay golden-run-free. `serep plan` probes explicitly and
            // prints the bakeable vector through the branch above.
            os << ", equal-work cut (weights probed at run time; `serep "
                  "plan` prints a bakeable vector)\n";
        }
    } else {
        os << "shards: none (single process)\n";
    }

    if (!spec_.out.empty())
        os << "outputs: " << csv_path() << ", " << jsonl_path() << "\n";
    if (!spec_.report_md.empty())
        os << "report: markdown -> " << spec_.report_md << "\n";
    if (!spec_.report_csv.empty())
        os << "report: csv -> " << spec_.report_csv << "\n";
    if (!spec_.report_json.empty())
        os << "report: figure-json -> " << spec_.report_json << "\n";
    return os.str();
}

} // namespace serep::exp
