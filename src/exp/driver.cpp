#include "exp/driver.hpp"

#include <cstdarg>
#include <fstream>
#include <sstream>

#include "stats/report.hpp"
#include "stats/sizing.hpp"
#include "stats/tally.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/zframe.hpp"

namespace serep::exp {

namespace {

constexpr const char* kStateMagic = "serep-exp-state";

void logf(std::FILE* f, const char* fmt, ...) {
    if (!f) return;
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(f, fmt, ap);
    va_end(ap);
}

/// Read a whole file; false when it cannot be opened (missing = resumable).
bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path);
    if (!in.good()) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

orch::BatchOptions batch_options_impl(const ExperimentSpec& spec) {
    orch::BatchOptions opts;
    opts.threads = spec.threads < 1 ? 1 : spec.threads;
    opts.ladder.stride = spec.stride;
    opts.ladder.enabled = spec.checkpoints;
    opts.ladder.delta_snapshots = spec.delta;
    opts.ladder.adaptive = spec.adaptive;
    opts.engine = spec.engine == "switch"  ? sim::Engine::Switch
                  : spec.engine == "trace" ? sim::Engine::Trace
                                           : sim::Engine::Cached;
    opts.prune = spec.prune;
    return opts;
}

bool has_uncore_kind(const ExperimentSpec& spec) {
    for (const std::string& k : spec.kinds) {
        core::FaultTarget::Kind fk;
        if (core::fault_kind_from_name(k, fk) && core::is_uncore_kind(fk))
            return true;
    }
    return false;
}

/// spec.prune with the CLI override folded in (`serep run --prune=...`).
/// Verification is never implied by the spec alone — it doubles part of the
/// work, so it runs only when explicitly asked for.
orch::BatchOptions resolved_batch_options(const ExperimentSpec& spec,
                                          const DriverOptions& opts) {
    orch::BatchOptions b = batch_options_impl(spec);
    switch (opts.prune) {
    case PruneMode::Spec:
        break;
    case PruneMode::Off:
        b.prune = false;
        break;
    case PruneMode::On:
    case PruneMode::Verify:
        // Mirror of the spec-level prune+uncore rejection (ValidationError,
        // exit 3), for the CLI override spelling: pruning has no theory of
        // cache/bus faults and must decline rather than silently mis-infer.
        util::check_valid(
            !has_uncore_kind(spec),
            "--prune: uncore fault kinds (cache-tag | cache-data | bus) "
            "cannot be pruned — equivalence pruning reasons over "
            "architectural def-use chains and cannot infer cache/bus "
            "outcomes; run without --prune");
        b.prune = true;
        if (opts.prune == PruneMode::Verify) b.prune_verify = spec.prune_verify;
        break;
    }
    return b;
}

void log_prune(const orch::BatchRunner& runner, const orch::BatchOptions& b,
               std::FILE* log) {
    if (!b.prune) return;
    if (runner.prune_declined() > 0)
        logf(log,
             "prune: declined for %zu uncore fault runs (no equivalence "
             "theory for cache/bus faults) — all simulated\n",
             runner.prune_declined());
    logf(log,
         "prune: %zu of %zu fault records simulated, %zu inferred from "
         "equivalence classes%s",
         runner.simulated_runs(),
         runner.simulated_runs() + runner.inferred_records(),
         runner.inferred_records(),
         b.prune_verify > 0 ? "" : "\n");
    if (b.prune_verify > 0)
        logf(log, " (%zu re-simulated and verified)\n",
             runner.verified_records());
}

} // namespace

/// Resume probe for one shard database's bytes: Missing (run it), Match
/// (skip it), Incomplete (THIS spec's shard, but record lines were
/// truncated by a killed worker — safe to re-run and overwrite), or a
/// ValidationError — anything that is not THIS spec's shard k-of-n output
/// must never be silently blended or overwritten.
ShardDbState classify_shard_db(const std::string& raw,
                               const std::string& label,
                               const ExperimentPlan& plan, unsigned k,
                               unsigned n) {
    if (raw.empty()) return ShardDbState::Missing;
    // Fleet workers stream (and land) shard DBs zstd-framed; a framed
    // container that fails to decode is a worker killed mid-stream, not a
    // foreign artifact — re-run, don't refuse.
    std::string decoded;
    const std::string* body = &raw;
    if (util::zframe_is(raw)) {
        try {
            decoded = util::zframe_decompress(raw);
        } catch (const util::ValidationError&) {
            return ShardDbState::Incomplete;
        }
        if (decoded.empty()) return ShardDbState::Incomplete;
        body = &decoded;
    }
    const std::string& contents = *body;
    const std::size_t eol = contents.find('\n');
    util::JsonValue manifest;
    try {
        manifest = util::json_parse(
            contents.substr(0, eol == std::string::npos ? contents.size() : eol));
        util::check_valid(manifest.find("magic") &&
                              manifest.at("magic").as_string() == "serep-shard",
                          "not a serep shard database");
    } catch (const util::Error&) {
        throw util::ValidationError(
            label +
            " exists but is not a serep shard database — delete it or move "
            "it out of the way");
    }
    // Field extraction can trip on a truncated manifest; that is a corrupt
    // artifact (exit 3 + a delete-or-move hint), not an internal error.
    bool has_hash = false;
    std::string hash;
    std::uint64_t got_shard = 0, got_count = 0, want_records = 0;
    bool has_records = false;
    try {
        if (const util::JsonValue* h = manifest.find("spec_hash")) {
            hash = h->as_string();
            has_hash = true;
        }
        if (const util::JsonValue* r = manifest.find("records")) {
            want_records = r->as_u64();
            has_records = true;
        }
        got_shard = manifest.at("shard").as_u64();
        got_count = manifest.at("count").as_u64();
    } catch (const util::Error& e) {
        throw util::ValidationError(label + ": corrupt shard manifest (" +
                                    std::string(e.what()) +
                                    ") — delete it or move it out of the way");
    }
    util::check_valid(has_hash,
                      label +
                          " carries no experiment annotation (written by a "
                          "legacy `serep shard`?) — delete it or move it out "
                          "of the way");
    util::check_valid(
        hash == plan.spec_hash_hex(),
        label + " belongs to a different experiment (spec " + hash +
            ", this spec is " + plan.spec_hash_hex() +
            ") — refusing to blend; delete the file or restore the "
            "original spec");
    util::check_valid(got_shard == k && got_count == n,
                      label + " is shard " + std::to_string(got_shard) +
                          " of " + std::to_string(got_count) + ", expected " +
                          std::to_string(k) + " of " + std::to_string(n));
    // The manifest belongs to this spec — now make sure the record lines
    // behind it are all there. A worker killed mid-write leaves a database
    // that must be RE-RUN, not skipped (and then blamed by the merge).
    if (contents.back() != '\n') return ShardDbState::Incomplete; // torn line
    if (eol == std::string::npos) return ShardDbState::Incomplete;
    std::uint64_t lines = 0;
    std::size_t pos = eol + 1;
    while (pos < contents.size()) {
        std::size_t next = contents.find('\n', pos);
        if (next == std::string::npos) next = contents.size();
        if (next > pos) ++lines; // skip blank lines, count records
        pos = next + 1;
    }
    if (has_records && lines != want_records) return ShardDbState::Incomplete;
    return ShardDbState::Match;
}

ShardDbState probe_shard_db(const ExperimentPlan& plan, unsigned k, unsigned n,
                            std::string* found_path) {
    // A Match at either path wins even when the other form is a truncated
    // leftover — a re-run under a different encoding must not be forced to
    // repeat work a complete database already covers.
    ShardDbState verdict = ShardDbState::Missing;
    std::string where;
    for (const std::string& path :
         {plan.shard_db_path(k), plan.shard_db_path(k) + ".zst"}) {
        std::string contents;
        if (!read_file(path, contents)) continue;
        const ShardDbState state =
            classify_shard_db(contents, "resume: " + path, plan, k, n);
        if (state == ShardDbState::Match) {
            if (found_path) *found_path = path;
            return state;
        }
        if (state == ShardDbState::Incomplete &&
            verdict == ShardDbState::Missing) {
            verdict = state;
            where = path;
        }
    }
    if (verdict != ShardDbState::Missing && found_path) *found_path = where;
    return verdict;
}

namespace {

/// Render the spec's requested report files from the merged campaign JSONL
/// (the same input shape `serep report` consumes, so the rendered bytes are
/// identical to the legacy report pipeline's).
void render_reports(ExperimentPlan& plan, DriverResult& res, std::FILE* log) {
    const ExperimentSpec& spec = plan.spec();
    if (spec.report_md.empty() && spec.report_csv.empty() &&
        spec.report_json.empty())
        return;
    telemetry::Span span("report");
    std::string jsonl;
    util::check(read_file(plan.jsonl_path(), jsonl),
                "cannot read campaign database " + plan.jsonl_path());
    stats::OutcomeTally tally;
    tally.add_database(jsonl, plan.jsonl_path());

    stats::ReportOptions ropts;
    ropts.confidence = spec.confidence;
    ropts.top_registers = spec.top_regs;
    const struct {
        const std::string* path;
        stats::ReportOptions::Format format;
        const char* what;
    } outputs[] = {
        {&spec.report_md, stats::ReportOptions::Format::Markdown, "markdown"},
        {&spec.report_csv, stats::ReportOptions::Format::Csv, "csv"},
        {&spec.report_json, stats::ReportOptions::Format::FigureJson,
         "figure-json"},
    };
    for (const auto& o : outputs) {
        if (o.path->empty()) continue;
        ropts.format = o.format;
        const std::string report = stats::render_report(tally, ropts);
        std::ofstream os(*o.path);
        util::check(os.good(), "cannot open report file " + *o.path);
        os << report;
        util::check(os.good(), "error writing " + *o.path);
        logf(log, "report: %s -> %s\n", o.what, o.path->c_str());
        res.report_written = true;
    }
}

void write_state(ExperimentPlan& plan) {
    std::ofstream os(plan.state_path());
    util::check(os.good(), "cannot open state file " + plan.state_path());
    util::JsonWriter w(os);
    w.begin_object();
    w.key("magic").value(kStateMagic);
    w.key("experiment").value(plan.spec().name);
    w.key("spec_hash").value(plan.spec_hash_hex());
    w.key("complete").value(true);
    w.end_object();
    os << '\n';
    util::check(os.good(), "error writing " + plan.state_path());
}

/// Adaptive resume: true when the sidecar records a completed run of THIS
/// spec and the outputs are still present. A sidecar for a different spec
/// is refused, not overwritten.
bool state_matches(ExperimentPlan& plan) {
    std::string contents;
    if (!read_file(plan.state_path(), contents)) return false;
    util::JsonValue state;
    try {
        state = util::json_parse(contents);
        util::check_valid(state.find("magic") &&
                              state.at("magic").as_string() == kStateMagic,
                          "bad magic");
    } catch (const util::Error&) {
        throw util::ValidationError("resume: " + plan.state_path() +
                                    " exists but is not a serep experiment "
                                    "state file — delete it");
    }
    std::string hash;
    bool complete = false;
    try {
        hash = state.at("spec_hash").as_string();
        complete = state.at("complete").as_bool();
    } catch (const util::Error& e) {
        throw util::ValidationError("resume: " + plan.state_path() +
                                    ": corrupt experiment state file (" +
                                    std::string(e.what()) + ") — delete it");
    }
    util::check_valid(
        hash == plan.spec_hash_hex(),
        "resume: " + plan.state_path() +
            " records a different experiment (spec " + hash +
            ", this spec is " + plan.spec_hash_hex() +
            ") — refusing to blend; delete the file or restore the "
            "original spec");
    std::string ignored;
    return complete && read_file(plan.csv_path(), ignored) &&
           read_file(plan.jsonl_path(), ignored);
}

DriverResult run_adaptive(ExperimentPlan& plan, const DriverOptions& opts) {
    const ExperimentSpec& spec = plan.spec();
    util::check_usage(!spec.out.empty(),
                      "adaptive (target_ci) experiments need spec.out");
    // spec.validate() already rejects prune.enabled + target_ci; this
    // catches the CLI spelling (`--prune=on` against an adaptive spec).
    util::check_usage(opts.prune != PruneMode::On &&
                          opts.prune != PruneMode::Verify,
                      "adaptive (target_ci) experiments cannot prune: the "
                      "sequential sizer draws incremental fault lists, "
                      "pruning classifies a fixed list up front");
    DriverResult res;
    res.fault_space = plan.jobs().size() * spec.faults;
    if (opts.resume && state_matches(plan)) {
        logf(opts.log, "[skip] experiment complete (state %s matches spec %s)\n",
             plan.state_path().c_str(), plan.spec_hash_hex().c_str());
        res.shards_skipped = 1;
        render_reports(plan, res, opts.log);
        return res;
    }

    stats::StatsOptions sopts;
    sopts.target_half_width = spec.target_ci;
    sopts.confidence = spec.ci_confidence;
    sopts.batch_faults = spec.ci_batch;
    sopts.min_faults = spec.ci_min;
    std::vector<stats::AdaptiveJobResult> adaptive;
    {
        telemetry::Span span("adaptive");
        adaptive = stats::run_adaptive_campaign(plan.shard_jobs(),
                                                batch_options(spec), sopts);
    }

    std::ofstream csv(plan.csv_path());
    std::ofstream jsonl(plan.jsonl_path());
    util::check(csv.good(), "cannot open output file " + plan.csv_path());
    util::check(jsonl.good(), "cannot open output file " + plan.jsonl_path());
    std::size_t space = 0;
    for (std::size_t i = 0; i < adaptive.size(); ++i) {
        const stats::AdaptiveJobResult& a = adaptive[i];
        if (i == 0) {
            csv << core::campaign_csv(a.result);
        } else {
            const std::string rows = core::campaign_csv(a.result);
            csv << rows.substr(rows.find('\n') + 1);
        }
        jsonl << core::campaign_json(a.result) << '\n';
        res.injected += a.result.records.size();
        space += a.fault_space;
        logf(opts.log,
             "[%3zu] %-18s injected %4zu/%u in %u rounds, masked=%5.1f%% "
             "maxCI=%.3f%s\n",
             i + 1, a.result.scenario.name().c_str(), a.result.records.size(),
             a.fault_space, a.rounds, a.result.masked_pct(), a.max_half_width,
             a.converged ? "" : " (fault space exhausted)");
    }
    // Close before rendering: render_reports re-reads the JSONL from disk,
    // and a small experiment's tail can otherwise still sit in the filebuf.
    csv.close();
    jsonl.close();
    util::check(!csv.fail() && !jsonl.fail(),
                "error writing campaign databases");
    res.fault_space = space;
    res.simulated = res.injected;
    res.shards_run = 1;
    res.merged = true;
    logf(opts.log,
         "sizing target-ci=%.3f: injected %zu of %zu faults -> %s, %s\n",
         spec.target_ci, res.injected, space, plan.csv_path().c_str(),
         plan.jsonl_path().c_str());
    // The completion sidecar exists only for the resume machinery; the
    // legacy shim (resume off) must not leave artifacts the old
    // `serep campaign --target-ci` never produced.
    if (opts.resume) write_state(plan);
    res.results.reserve(adaptive.size());
    for (const stats::AdaptiveJobResult& a : adaptive)
        res.results.push_back(a.result);
    render_reports(plan, res, opts.log);
    return res;
}

DriverResult run_direct(ExperimentPlan& plan, const DriverOptions& opts) {
    const ExperimentSpec& spec = plan.spec();
    DriverResult res;
    res.fault_space = plan.jobs().size() * spec.faults;

    const orch::BatchOptions bopts = resolved_batch_options(spec, opts);
    orch::BatchRunner runner(bopts);
    for (const PlannedJob& j : plan.jobs()) runner.add(j.scenario, j.cfg);

    std::ofstream csv, jsonl;
    if (!spec.out.empty()) {
        csv.open(plan.csv_path());
        jsonl.open(plan.jsonl_path());
        util::check(csv.good(), "cannot open output file " + plan.csv_path());
        util::check(jsonl.good(),
                    "cannot open output file " + plan.jsonl_path());
        runner.set_csv_sink(&csv);
        runner.set_json_sink(&jsonl);
    }
    res.results = runner.run_all();
    for (std::size_t i = 0; i < res.results.size(); ++i) {
        res.injected += res.results[i].records.size();
        logf(opts.log, "[%3zu] %-18s masked=%5.1f%%\n", i + 1,
             res.results[i].scenario.name().c_str(),
             res.results[i].masked_pct());
    }
    res.simulated = runner.simulated_runs();
    res.inferred = runner.inferred_records();
    log_prune(runner, bopts, opts.log);
    res.shards_run = 1;
    if (!spec.out.empty()) {
        // Close before rendering: render_reports re-reads the JSONL from
        // disk and must see the buffered tail.
        csv.close();
        jsonl.close();
        util::check(!csv.fail() && !jsonl.fail(),
                    "error writing campaign databases");
        res.merged = true;
        logf(opts.log, "campaign: %zu jobs -> %s, %s\n", plan.jobs().size(),
             plan.csv_path().c_str(), plan.jsonl_path().c_str());
        render_reports(plan, res, opts.log);
    }
    return res;
}

DriverResult run_sharded(ExperimentPlan& plan, const DriverOptions& opts) {
    const ExperimentSpec& spec = plan.spec();
    util::check_usage(!spec.out.empty(),
                      "sharded experiments need spec.out (file prefix for "
                      "the shard and campaign databases)");
    const unsigned n = plan.shard_count();
    const std::vector<orch::ShardJobSpec> jobs = plan.shard_jobs();
    const orch::ShardDbAnnotation note{spec.name, plan.spec_hash_hex()};
    const orch::BatchOptions bopts = resolved_batch_options(spec, opts);

    DriverResult res;
    res.fault_space = jobs.size() * spec.faults;

    // Actual on-disk database per shard, recorded as shards land: a resumed
    // shard may sit at either the plain or the compressed path.
    std::vector<std::string> db_paths(n);

    // Run shard k into `os` (plain or zstd-framed per opts.compress_shards).
    const auto run_into = [&](unsigned k, std::ostream& os,
                              const std::string& what) {
        // The weighted cut probes golden lengths at most once per plan; say
        // so the first time, with the bakeable vector, so remote workers
        // can skip the probe entirely.
        if (plan.weighted() && !plan.weights_ready())
            logf(opts.log,
                 "probing golden lengths for the weighted cut (bake the "
                 "weights the plan prints into shard.weights to skip this)\n");
        orch::ShardRunStats st;
        if (opts.compress_shards) {
            util::ZstdFrameWriter zw(os);
            st = plan.weighted()
                     ? orch::run_shard(jobs, plan.weighted_plan(k), bopts,
                                       zw.stream(), &note)
                     : orch::run_shard(jobs, orch::ShardPlan{k, n}, bopts,
                                       zw.stream(), &note);
            zw.finish();
        } else {
            st = plan.weighted()
                     ? orch::run_shard(jobs, plan.weighted_plan(k), bopts, os,
                                       &note)
                     : orch::run_shard(jobs, orch::ShardPlan{k, n}, bopts, os,
                                       &note);
        }
        util::check(os.good(), "error writing shard database " + what);
        return st;
    };

    const auto run_one = [&](unsigned k, const std::string& path) {
        telemetry::Span span("shard:" + std::to_string(k));
        if (k < n) db_paths[k] = path;
        if (opts.resume) {
            std::string found;
            const ShardDbState state = probe_shard_db(plan, k, n, &found);
            if (state == ShardDbState::Match) {
                logf(opts.log, "[skip] shard %u/%u: %s matches spec %s\n", k,
                     n, found.c_str(), plan.spec_hash_hex().c_str());
                if (k < n) db_paths[k] = found;
                ++res.shards_skipped;
                return;
            }
            if (state == ShardDbState::Incomplete)
                logf(opts.log,
                     "shard %u/%u: %s is truncated (interrupted worker?) — "
                     "re-running\n",
                     k, n, found.c_str());
        }
        std::ofstream os(path, std::ios::binary);
        util::check(os.good(), "cannot open output file " + path);
        const orch::ShardRunStats st = run_into(k, os, path);
        if (st.inferred > 0)
            logf(opts.log,
                 "shard %u/%u%s: %zu of %zu faults -> %s (%zu simulated, "
                 "%zu inferred by pruning)\n",
                 k, n, plan.weighted() ? " (weighted)" : "", st.owned,
                 st.fault_space, path.c_str(), st.owned - st.inferred,
                 st.inferred);
        else
            logf(opts.log, "shard %u/%u%s: injected %zu of %zu faults -> %s\n",
                 k, n, plan.weighted() ? " (weighted)" : "", st.owned,
                 st.fault_space, path.c_str());
        ++res.shards_run;
        res.injected += st.owned;
        res.simulated += st.owned - st.inferred;
        res.inferred += st.inferred;
        res.fault_space = st.fault_space;
    };

    // Canonical write path for shard k under the requested encoding.
    const auto shard_path = [&](unsigned k) {
        return opts.compress_shards ? plan.shard_db_path(k) + ".zst"
                                    : plan.shard_db_path(k);
    };

    if (opts.only_shard >= 0) {
        const unsigned k = static_cast<unsigned>(opts.only_shard);
        util::check_usage(k < n, "shard index " + std::to_string(k) +
                                     " out of range (the spec declares " +
                                     std::to_string(n) + " shards)");
        if (opts.shard_stream) {
            // Fleet worker mode: the database goes down the stream (the
            // worker's stdout), nothing lands on this host's disk, and
            // resume does not apply — the controller already probed.
            const orch::ShardRunStats st =
                run_into(k, *opts.shard_stream, "<shard stream>");
            logf(opts.log, "shard %u/%u%s: injected %zu of %zu faults -> "
                 "<stream>\n",
                 k, n, plan.weighted() ? " (weighted)" : "", st.owned,
                 st.fault_space);
            ++res.shards_run;
            res.injected += st.owned;
            res.simulated += st.owned - st.inferred;
            res.inferred += st.inferred;
            res.fault_space = st.fault_space;
            return res;
        }
        run_one(k, opts.shard_out.empty() ? shard_path(k) : opts.shard_out);
        return res;
    }

    for (unsigned k = 0; k < n; ++k) run_one(k, shard_path(k));

    // Merge — a cheap pure function of the shard databases; always re-run
    // so the canonical CSV/JSONL and reports exist even when every shard
    // resumed. merge_shards decompresses zstd-framed databases itself.
    {
        telemetry::Span merge_span("merge");
        std::vector<std::string> dbs(n);
        for (unsigned k = 0; k < n; ++k)
            util::check(read_file(db_paths[k], dbs[k]),
                        "cannot read shard database " + db_paths[k]);
        std::ofstream csv(plan.csv_path());
        std::ofstream jsonl(plan.jsonl_path());
        util::check(csv.good(), "cannot open output file " + plan.csv_path());
        util::check(jsonl.good(),
                    "cannot open output file " + plan.jsonl_path());
        try {
            res.results = orch::merge_shards(dbs, &csv, &jsonl);
        } catch (const util::ValidationError&) {
            throw;
        } catch (const util::Error& e) {
            // Anything merge_shards trips over means the shard databases are
            // not a consistent set.
            throw util::ValidationError(e.what());
        }
        // Close before rendering: render_reports re-reads the JSONL from
        // disk, and a small experiment's tail can otherwise still sit in the
        // filebuf.
        csv.close();
        jsonl.close();
        util::check(!csv.fail() && !jsonl.fail(),
                    "error writing campaign databases");
    }
    res.merged = true;
    logf(opts.log, "merge: %u shard databases, %zu jobs -> %s, %s\n", n,
         res.results.size(), plan.csv_path().c_str(),
         plan.jsonl_path().c_str());
    render_reports(plan, res, opts.log);
    return res;
}

} // namespace

orch::BatchOptions batch_options(const ExperimentSpec& spec) {
    return batch_options_impl(spec);
}

DriverResult run_experiment(ExperimentPlan& plan, const DriverOptions& opts) {
    const ExperimentSpec& spec = plan.spec();
    // Sidecar exports imply telemetry; everything recorded stays out of
    // band, so enabling it cannot change a single output byte (CI-gated).
    const bool want_export = !opts.metrics_out.empty() || !opts.trace_out.empty();
    if (want_export) telemetry::set_enabled(true);

    const auto dispatch = [&]() -> DriverResult {
        telemetry::Span root("experiment:" + spec.name);
        if (spec.target_ci > 0) {
            util::check_usage(opts.only_shard < 0,
                              "adaptive (target_ci) experiments cannot run as "
                              "shards");
            return run_adaptive(plan, opts);
        }
        if (opts.direct || spec.out.empty()) {
            util::check_usage(opts.only_shard < 0,
                              "only_shard requires the sharded execution path");
            return run_direct(plan, opts);
        }
        return run_sharded(plan, opts);
    };
    DriverResult res = dispatch();

    if (want_export) {
        const telemetry::Provenance prov{"serep", plan.spec_hash_hex()};
        if (!opts.metrics_out.empty()) {
            telemetry::write_metrics_file(opts.metrics_out, prov);
            logf(opts.log, "telemetry: metrics -> %s\n",
                 opts.metrics_out.c_str());
        }
        if (!opts.trace_out.empty()) {
            telemetry::write_trace_file(opts.trace_out);
            logf(opts.log, "telemetry: trace -> %s\n", opts.trace_out.c_str());
        }
    }
    return res;
}

} // namespace serep::exp
