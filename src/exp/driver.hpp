// exp::Driver (layer 3 of src/exp/): execute a planned experiment end to
// end — golden runs, shard/fault runs, merge, report — with resume.
//
// Three execution paths, chosen by the spec:
//
//  * adaptive (fault.target_ci > 0): the stats sizer's sequential stopping
//    rule, single process; CSV/JSONL outputs byte-identical to the legacy
//    `serep campaign --target-ci` path. Completion is recorded in a small
//    `<out>.exp.json` sidecar carrying the spec hash (the CSV itself
//    cannot carry one without changing bytes).
//  * direct (DriverOptions::direct, or spec.out empty): one BatchRunner
//    pass streaming CSV/JSONL exactly like the legacy `serep campaign` /
//    `full_campaign` code — the compatibility shim path. No resume, no
//    intermediate files. With spec.out empty nothing is written at all and
//    the results come back in memory (the bench drivers).
//  * sharded (default for `serep run`, any shard count >= 1): each shard k
//    runs to `<out>_shard<k>.jsonl` — its manifest annotated with the spec
//    hash — then the shards merge into the canonical `<out>_faults.csv` /
//    `<out>_campaigns.jsonl`, byte-identical to the single-process run
//    (the PR-2 invariant), and the requested reports are rendered from the
//    merged database.
//
// Resume: a shard database already on disk whose manifest carries this
// spec's hash is skipped (its bytes ARE the job's output — determinism
// makes re-running it pointless); a database at that path with a different
// or missing spec hash is REFUSED (util::ValidationError, serep exit 3) —
// stale artifacts never silently blend into a fresh experiment. Merge and
// report are cheap pure functions of the shard databases and re-run every
// time. DriverOptions::only_shard runs exactly one shard and stops before
// the merge — the remote-worker unit (`serep run spec.json --shard=k/n`);
// gathering the files and re-running `serep run spec.json` merges them.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/plan.hpp"

namespace serep::exp {

/// CLI override of the spec's equivalence-pruning block
/// (`serep run --prune=off|on|verify`).
enum class PruneMode : std::uint8_t {
    Spec,   ///< follow spec.prune (the default: no flag given)
    Off,    ///< force full simulation, ignore spec.prune
    On,     ///< force pruning on
    Verify, ///< pruning on + re-simulate a seeded sample of inferred
            ///< faults; any outcome/retired mismatch fails the run
};

struct DriverOptions {
    /// Skip shard databases whose manifests match the spec hash; refuse
    /// mismatches. Off = always re-run, overwrite (legacy shim semantics).
    bool resume = true;
    /// >= 0: run only this shard index, write its database, stop (no merge,
    /// no report).
    int only_shard = -1;
    /// Override the shard database path when only_shard >= 0 (the legacy
    /// `serep shard --out=FILE` spelling). Empty = plan.shard_db_path(k).
    std::string shard_out;
    /// Force the direct single-pass path regardless of spec.shards (legacy
    /// `serep campaign` / `full_campaign` compatibility).
    bool direct = false;
    /// Equivalence-pruning override; Spec = whatever spec.prune says.
    PruneMode prune = PruneMode::Spec;
    /// Write shard databases zstd-framed to `<shard path>.zst` (store codec
    /// when the build lacks libzstd). Resume and merge accept either form,
    /// so compressed and plain runs of one spec interoperate.
    bool compress_shards = false;
    /// With only_shard >= 0: stream the shard database here instead of to a
    /// file — the fleet worker's stdout. Combined with compress_shards the
    /// stream carries the zstd-framed form.
    std::ostream* shard_stream = nullptr;
    /// Progress stream (skip/run/merge/report lines); null = quiet.
    std::FILE* log = stdout;
    /// Non-empty: enable telemetry and write the metrics.json sidecar here
    /// when the experiment finishes. Strictly out of band — outcome
    /// databases and reports are byte-identical either way (CI-gated).
    std::string metrics_out;
    /// Non-empty: enable telemetry and write Chrome trace-event JSON here
    /// (load in Perfetto to see the phase spans).
    std::string trace_out;
};

struct DriverResult {
    /// Per-job campaign results in plan order. Empty when only_shard was
    /// used (the merge step reassembles them later) and when every stage
    /// of a resumed run was skipped.
    std::vector<core::CampaignResult> results;
    std::size_t shards_run = 0;
    std::size_t shards_skipped = 0;
    std::size_t injected = 0;    ///< fault records written by this invocation
    std::size_t simulated = 0;   ///< injection runs actually executed (equals
                                 ///< injected unless pruning inferred some)
    std::size_t inferred = 0;    ///< records derived by equivalence pruning
    std::size_t fault_space = 0; ///< total fault space of the experiment
    bool merged = false;         ///< canonical CSV/JSONL were (re)written
    bool report_written = false; ///< at least one report file was rendered
};

/// Execute the experiment. Throws util::UsageError on contradictory
/// options, util::ValidationError on resume conflicts (spec-hash mismatch,
/// corrupt shard databases), util::Error on I/O failure.
DriverResult run_experiment(ExperimentPlan& plan,
                            const DriverOptions& opts = {});

/// Resume-probe verdict for one shard database (file or payload).
enum class ShardDbState {
    Missing,    ///< nothing there — run the shard
    Match,      ///< complete output of THIS spec's shard k/n — skip it
    Incomplete, ///< this spec's shard, but truncated (killed worker) — re-run
};

/// Classify shard-database bytes against shard k of n of `plan`. Accepts
/// plain and zstd-framed contents; a framed payload that fails to decode is
/// Incomplete (a worker died mid-stream). Throws util::ValidationError —
/// naming `label` — for anything that is NOT this spec's shard k/n output:
/// foreign files, spec-hash mismatches, wrong shard indices. The fleet uses
/// this to vet streamed worker payloads before committing them.
ShardDbState classify_shard_db(const std::string& contents,
                               const std::string& label,
                               const ExperimentPlan& plan, unsigned k,
                               unsigned n);

/// Probe shard k's on-disk database: `<out>_shard<k>.jsonl` first, then the
/// compressed `.jsonl.zst` form. When `found_path` is non-null it receives
/// the path of the database that decided the verdict (unset for Missing).
ShardDbState probe_shard_db(const ExperimentPlan& plan, unsigned k, unsigned n,
                            std::string* found_path = nullptr);

/// The BatchOptions every execution path derives from a spec — the single
/// successor of the old per-tool `batch_options_from_cli` plumbing.
orch::BatchOptions batch_options(const ExperimentSpec& spec);

} // namespace serep::exp
