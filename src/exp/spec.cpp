#include "exp/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/fault.hpp"
#include "npb/npb.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace serep::exp {

namespace {

using util::JsonValue;

/// Reject any key of `obj` outside `allowed` — a typo in a spec must fail
/// loudly, never silently reconfigure the campaign (mirror of the serep
/// unknown-flag audit).
void reject_unknown(const JsonValue& obj, const char* where,
                    std::initializer_list<const char*> allowed) {
    for (const auto& kv : obj.obj) {
        bool known = false;
        for (const char* a : allowed) known = known || kv.first == a;
        if (!known) {
            std::string expected;
            for (const char* a : allowed)
                expected += (expected.empty() ? "" : ", ") + std::string(a);
            util::fail_usage("spec: unknown key '" + kv.first + "' in " +
                             where + " (expected one of: " + expected + ")");
        }
    }
}

const JsonValue* obj_find(const JsonValue& v, const char* key,
                          const char* where) {
    util::check_usage(v.type == JsonValue::Type::Object,
                      std::string("spec: ") + where + " must be a JSON object");
    return v.find(key);
}

std::string get_string(const JsonValue& obj, const char* key,
                       const std::string& dflt, const char* where) {
    const JsonValue* v = obj_find(obj, key, where);
    if (!v) return dflt;
    util::check_usage(v->type == JsonValue::Type::String,
                      std::string("spec: ") + where + "." + key +
                          " must be a string");
    return v->str;
}

bool get_bool(const JsonValue& obj, const char* key, bool dflt,
              const char* where) {
    const JsonValue* v = obj_find(obj, key, where);
    if (!v) return dflt;
    util::check_usage(v->type == JsonValue::Type::Bool,
                      std::string("spec: ") + where + "." + key +
                          " must be true or false");
    return v->boolean;
}

std::uint64_t get_u64(const JsonValue& obj, const char* key,
                      std::uint64_t dflt, const char* where) {
    const JsonValue* v = obj_find(obj, key, where);
    if (!v) return dflt;
    if (v->type == JsonValue::Type::Number) {
        util::check_usage(v->is_integer, std::string("spec: ") + where + "." +
                                             key +
                                             " must be a non-negative integer");
        return v->u64;
    }
    // Hex spelling, for seeds: "0xDAC2018".
    if (v->type == JsonValue::Type::String) {
        const std::string& s = v->str;
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(s.c_str(), &end, 0);
        util::check_usage(!s.empty() && end && *end == '\0',
                          std::string("spec: ") + where + "." + key +
                              ": bad integer '" + s + "'");
        return parsed;
    }
    util::fail_usage(std::string("spec: ") + where + "." + key +
                     " must be an integer (or a \"0x...\" string)");
}

/// 32-bit fields (faults, threads, shard count, ...): reject out-of-range
/// values instead of letting a static_cast silently wrap 2^32+60 into 60.
unsigned get_uint(const JsonValue& obj, const char* key, unsigned dflt,
                  const char* where) {
    const std::uint64_t v = get_u64(obj, key, dflt, where);
    util::check_usage(v <= 0xFFFFFFFFull, std::string("spec: ") + where + "." +
                                              key + " is out of range");
    return static_cast<unsigned>(v);
}

double get_double(const JsonValue& obj, const char* key, double dflt,
                  const char* where) {
    const JsonValue* v = obj_find(obj, key, where);
    if (!v) return dflt;
    util::check_usage(v->type == JsonValue::Type::Number,
                      std::string("spec: ") + where + "." + key +
                          " must be a number");
    return v->number;
}

/// "isa": "v7" and "isa": ["v7","v8"] both work (scalar == one-element set).
std::vector<std::string> get_string_list(const JsonValue& obj, const char* key,
                                         const char* where) {
    const JsonValue* v = obj_find(obj, key, where);
    std::vector<std::string> out;
    if (!v) return out;
    const auto take = [&](const JsonValue& e) {
        util::check_usage(e.type == JsonValue::Type::String,
                          std::string("spec: ") + where + "." + key +
                              " entries must be strings");
        out.push_back(e.str);
    };
    if (v->type == JsonValue::Type::Array)
        for (const JsonValue& e : v->arr) take(e);
    else
        take(*v);
    return out;
}

std::vector<unsigned> get_uint_list(const JsonValue& obj, const char* key,
                                    const char* where) {
    const JsonValue* v = obj_find(obj, key, where);
    std::vector<unsigned> out;
    if (!v) return out;
    const auto take = [&](const JsonValue& e) {
        util::check_usage(e.type == JsonValue::Type::Number && e.is_integer &&
                              e.u64 <= 0xFFFFFFFFull,
                          std::string("spec: ") + where + "." + key +
                              " entries must be 32-bit non-negative integers");
        out.push_back(static_cast<unsigned>(e.u64));
    };
    if (v->type == JsonValue::Type::Array)
        for (const JsonValue& e : v->arr) take(e);
    else
        take(*v);
    return out;
}

bool valid_isa(const std::string& s) { return s == "v7" || s == "v8"; }

bool valid_app(const std::string& s) {
    for (npb::App a : npb::kAllApps)
        if (s == npb::app_name(a)) return true;
    return false;
}

bool valid_api(const std::string& s) {
    return s == "SER" || s == "OMP" || s == "MPI";
}

bool valid_klass(const std::string& s) {
    return s == "Mini" || s == "S" || s == "W";
}

bool valid_kind(const std::string& s) {
    core::FaultTarget::Kind k;
    return core::fault_kind_from_name(s, k);
}

bool uncore_kind_name(const std::string& s) {
    core::FaultTarget::Kind k;
    return core::fault_kind_from_name(s, k) && core::is_uncore_kind(k);
}

void write_strings(util::JsonWriter& w, const std::vector<std::string>& v) {
    w.begin_array();
    for (const std::string& s : v) w.value(s);
    w.end_array();
}

/// The experiment-identity fields alone, canonically serialized — the
/// domain of spec_hash(). Kept separate from canonical_json() so renaming
/// an experiment or re-pointing its reports never invalidates finished
/// shard databases.
std::string identity_json(const ExperimentSpec& s) {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("class").value(s.klass);
    w.key("cross_product").value(s.cross_product);
    w.key("isa");
    write_strings(w, s.isas);
    w.key("app");
    write_strings(w, s.apps);
    w.key("api");
    write_strings(w, s.apis);
    w.key("cores").begin_array();
    for (unsigned c : s.cores) w.value(c);
    w.end_array();
    w.key("cells").begin_array();
    for (const CellSpec& c : s.cells) {
        w.begin_object();
        w.key("isa").value(c.isa);
        w.key("app").value(c.app);
        w.key("api").value(c.api);
        w.key("cores").value(c.cores);
        w.end_object();
    }
    w.end_array();
    // Scalar when single — the only form that existed before multi-kind
    // specs, so every existing spec's hash (and its finished shard
    // databases) is untouched.
    if (s.kinds.size() == 1) {
        w.key("kind").value(s.kinds.front());
    } else {
        w.key("kind");
        write_strings(w, s.kinds);
    }
    w.key("faults").value(s.faults);
    w.key("seed").value(s.seed);
    w.key("watchdog").value(s.watchdog);
    w.key("target_ci").value(s.target_ci);
    w.key("ci_confidence").value(s.ci_confidence);
    w.key("ci_batch").value(s.ci_batch);
    w.key("ci_min").value(s.ci_min);
    w.key("shards").value(s.shards);
    w.key("partition").value(s.partition);
    // Pruning changes which faults are *simulated* but not any reported
    // outcome, so hashing it at all is a judgment call; it IS hashed when
    // enabled (the shard databases' per-record provenance flags differ),
    // but only then — a key emitted unconditionally would change every
    // existing spec's hash and strand every finished shard database.
    if (s.prune) w.key("prune").value(true);
    // shard.weights is deliberately NOT hashed: the probe is deterministic,
    // so baking the vector `serep plan` prints into the spec (the
    // documented probe-once workflow) must not strand shard databases that
    // finished before the bake. Hand-edited weights that change the cut are
    // still caught downstream — every manifest carries the partition
    // (cut-matrix) id and merge refuses mixed partitions.
    w.end_object();
    return os.str();
}

} // namespace

ExperimentSpec ExperimentSpec::load(const std::string& json_text) {
    JsonValue root;
    try {
        root = util::json_parse(json_text);
    } catch (const util::Error& e) {
        throw util::UsageError(std::string("spec: not valid JSON: ") + e.what());
    }
    util::check_usage(root.type == JsonValue::Type::Object,
                      "spec: the document must be a JSON object");
    reject_unknown(root, "the spec",
                   {"name", "out", "matrix", "fault", "engine", "prune",
                    "shard", "report", "fleet"});

    ExperimentSpec s;
    s.name = get_string(root, "name", s.name, "spec");
    s.out = get_string(root, "out", s.out, "spec");

    if (const JsonValue* m = root.find("matrix")) {
        reject_unknown(*m, "matrix",
                       {"class", "isa", "app", "api", "cores", "cells"});
        s.klass = get_string(*m, "class", s.klass, "matrix");
        s.isas = get_string_list(*m, "isa", "matrix");
        s.apps = get_string_list(*m, "app", "matrix");
        s.apis = get_string_list(*m, "api", "matrix");
        s.cores = get_uint_list(*m, "cores", "matrix");
        if (const JsonValue* cells = m->find("cells")) {
            util::check_usage(cells->type == JsonValue::Type::Array,
                              "spec: matrix.cells must be an array of "
                              "{isa, app, api, cores} objects");
            for (const JsonValue& cv : cells->arr) {
                reject_unknown(cv, "matrix.cells[]",
                               {"isa", "app", "api", "cores"});
                CellSpec c;
                c.isa = get_string(cv, "isa", "", "matrix.cells[]");
                c.app = get_string(cv, "app", "", "matrix.cells[]");
                c.api = get_string(cv, "api", "", "matrix.cells[]");
                c.cores = get_uint(cv, "cores", 1, "matrix.cells[]");
                s.cells.push_back(c);
            }
        }
        // Cells-only specs run exactly those cells; the cross product joins
        // in as soon as any selector key appears (even as an empty list).
        s.cross_product = s.cells.empty() || m->find("isa") || m->find("app") ||
                          m->find("api") || m->find("cores");
    }

    if (const JsonValue* f = root.find("fault")) {
        reject_unknown(*f, "fault",
                       {"kind", "faults", "seed", "watchdog", "target_ci",
                        "ci_confidence", "ci_batch", "ci_min"});
        if (f->find("kind")) s.kinds = get_string_list(*f, "kind", "fault");
        s.faults = get_uint(*f, "faults", s.faults, "fault");
        s.seed = get_u64(*f, "seed", s.seed, "fault");
        s.watchdog = get_double(*f, "watchdog", s.watchdog, "fault");
        s.target_ci = get_double(*f, "target_ci", s.target_ci, "fault");
        s.ci_confidence =
            get_double(*f, "ci_confidence", s.ci_confidence, "fault");
        s.ci_batch = get_uint(*f, "ci_batch", s.ci_batch, "fault");
        s.ci_min = get_uint(*f, "ci_min", s.ci_min, "fault");
    }

    if (const JsonValue* e = root.find("engine")) {
        reject_unknown(*e, "engine",
                       {"engine", "threads", "stride", "checkpoints", "delta",
                        "adaptive"});
        s.engine = get_string(*e, "engine", s.engine, "engine");
        s.threads = get_uint(*e, "threads", s.threads, "engine");
        s.stride = get_u64(*e, "stride", s.stride, "engine");
        s.checkpoints = get_bool(*e, "checkpoints", s.checkpoints, "engine");
        s.delta = get_bool(*e, "delta", s.delta, "engine");
        s.adaptive = get_bool(*e, "adaptive", s.adaptive, "engine");
    }

    if (const JsonValue* p = root.find("prune")) {
        reject_unknown(*p, "prune", {"enabled", "verify_sample"});
        s.prune = get_bool(*p, "enabled", s.prune, "prune");
        s.prune_verify = get_uint(*p, "verify_sample", s.prune_verify, "prune");
    }

    if (const JsonValue* sh = root.find("shard")) {
        reject_unknown(*sh, "shard", {"count", "partition", "weights"});
        s.shards = get_uint(*sh, "count", s.shards, "shard");
        s.partition = get_string(*sh, "partition", s.partition, "shard");
        if (const JsonValue* wv = sh->find("weights")) {
            util::check_usage(wv->type == JsonValue::Type::Array,
                              "spec: shard.weights must be an array of numbers");
            for (const JsonValue& e : wv->arr) {
                util::check_usage(e.type == JsonValue::Type::Number,
                                  "spec: shard.weights entries must be numbers");
                s.weights.push_back(e.number);
            }
        }
    }

    if (const JsonValue* fl = root.find("fleet")) {
        reject_unknown(*fl, "fleet",
                       {"backend", "hosts", "workers", "workers_per_host",
                        "heartbeat_interval", "heartbeat_timeout",
                        "max_retries", "compress", "remote_cmd"});
        s.fleet_backend = get_string(*fl, "backend", s.fleet_backend, "fleet");
        s.fleet_hosts = get_string_list(*fl, "hosts", "fleet");
        s.fleet_workers = get_uint(*fl, "workers", s.fleet_workers, "fleet");
        s.fleet_workers_per_host =
            get_uint(*fl, "workers_per_host", s.fleet_workers_per_host,
                     "fleet");
        s.fleet_heartbeat_interval = get_double(
            *fl, "heartbeat_interval", s.fleet_heartbeat_interval, "fleet");
        s.fleet_heartbeat_timeout = get_double(
            *fl, "heartbeat_timeout", s.fleet_heartbeat_timeout, "fleet");
        s.fleet_max_retries =
            get_uint(*fl, "max_retries", s.fleet_max_retries, "fleet");
        s.fleet_compress =
            get_bool(*fl, "compress", s.fleet_compress, "fleet");
        s.fleet_remote_cmd =
            get_string(*fl, "remote_cmd", s.fleet_remote_cmd, "fleet");
    }

    if (const JsonValue* r = root.find("report")) {
        reject_unknown(*r, "report",
                       {"markdown", "csv", "figure_json", "confidence",
                        "top_regs"});
        s.report_md = get_string(*r, "markdown", s.report_md, "report");
        s.report_csv = get_string(*r, "csv", s.report_csv, "report");
        s.report_json = get_string(*r, "figure_json", s.report_json, "report");
        s.confidence = get_double(*r, "confidence", s.confidence, "report");
        s.top_regs = get_uint(*r, "top_regs", s.top_regs, "report");
    }

    s.validate();
    return s;
}

void ExperimentSpec::validate() const {
    util::check_usage(valid_klass(klass),
                      "spec: matrix.class '" + klass +
                          "' is not a problem class (Mini | S | W)");
    for (const std::string& i : isas)
        util::check_usage(valid_isa(i), "spec: matrix.isa '" + i +
                                            "' is not an ISA profile (v7 | v8)");
    for (const std::string& a : apps)
        util::check_usage(valid_app(a),
                          "spec: matrix.app '" + a +
                              "' is not an NPB application (BT CG DC DT EP FT "
                              "IS LU MG SP UA)");
    for (const std::string& a : apis)
        util::check_usage(valid_api(a), "spec: matrix.api '" + a +
                                            "' is not a programming model "
                                            "(SER | OMP | MPI)");
    for (unsigned c : cores)
        util::check_usage(c >= 1, "spec: matrix.cores entries must be >= 1");
    for (const CellSpec& c : cells) {
        util::check_usage(valid_isa(c.isa),
                          "spec: matrix.cells isa '" + c.isa + "' (v7 | v8)");
        util::check_usage(valid_app(c.app), "spec: matrix.cells app '" + c.app +
                                                "' is not an NPB application");
        util::check_usage(valid_api(c.api), "spec: matrix.cells api '" + c.api +
                                                "' (SER | OMP | MPI)");
        util::check_usage(c.cores >= 1, "spec: matrix.cells cores must be >= 1");
    }
    util::check_usage(cross_product || !cells.empty(),
                      "spec: the matrix selects nothing — give isa/app/api/"
                      "cores selectors, explicit cells, or neither (= the "
                      "full paper matrix)");

    util::check_usage(!kinds.empty(),
                      "spec: fault.kind must name at least one fault kind");
    for (const std::string& k : kinds)
        util::check_usage(valid_kind(k),
                          "spec: fault.kind '" + k +
                              "' (gpr | fp | mem | cache-tag | cache-data | "
                              "bus)");
    for (std::size_t i = 0; i < kinds.size(); ++i)
        for (std::size_t j = i + 1; j < kinds.size(); ++j)
            util::check_usage(kinds[i] != kinds[j],
                              "spec: fault.kind lists '" + kinds[i] +
                                  "' more than once");
    // A pure-fp spec must not name v7 at all; in a mixed-kind spec the
    // planner instead narrows the fp jobs to the v8 scenarios (the other
    // kinds keep the full matrix), erroring only if nothing is left.
    if (kinds.size() == 1 && kinds.front() == "fp") {
        for (const std::string& i : isas)
            util::check_usage(i != "v7",
                              "spec: fault.kind 'fp' targets the FP register "
                              "file, which only the v8 profile has (drop 'v7' "
                              "from matrix.isa)");
        for (const CellSpec& c : cells)
            util::check_usage(c.isa != "v7",
                              "spec: fault.kind 'fp' targets the FP register "
                              "file, which only the v8 profile has (drop the "
                              "v7 cells)");
    }
    util::check_usage(faults >= 1, "spec: fault.faults must be >= 1");
    util::check_usage(watchdog > 0, "spec: fault.watchdog must be > 0");
    util::check_usage(target_ci >= 0 && target_ci < 0.5,
                      "spec: fault.target_ci must be 0 (fixed count) or in "
                      "(0, 0.5)");
    if (target_ci > 0) {
        util::check_usage(ci_confidence > 0 && ci_confidence < 1,
                          "spec: fault.ci_confidence must be in (0, 1)");
        util::check_usage(ci_batch >= 1 && ci_batch <= 1'000'000,
                          "spec: fault.ci_batch must be in [1, 1000000]");
        util::check_usage(ci_min <= 1'000'000,
                          "spec: fault.ci_min must be in [0, 1000000]");
        util::check_usage(shards == 1,
                          "spec: fault.target_ci (confidence-driven sizing) "
                          "is a single-process sequential rule — it cannot be "
                          "combined with shard.count > 1");
    }

    util::check_usage(!prune || target_ci == 0,
                      "spec: prune.enabled cannot be combined with "
                      "fault.target_ci (the sequential sizer draws its own "
                      "incremental fault lists; pruning classifies a fixed "
                      "list up front)");
    // ValidationError (exit 3), not UsageError: the spec is syntactically
    // fine, but pruning's register-diff def-use walk has no theory of
    // cache-tag/cache-data/bus faults and would silently mis-infer
    // outcomes. The runner also declines at run time for CLI overrides.
    if (prune)
        for (const std::string& k : kinds)
            util::check_valid(!uncore_kind_name(k),
                              "spec: prune.enabled cannot be combined with "
                              "uncore fault kind '" + k +
                                  "' — equivalence pruning reasons over "
                                  "architectural def-use chains and cannot "
                                  "infer cache/bus outcomes (drop "
                                  "prune.enabled or the uncore kind)");

    util::check_usage(
        engine == "cached" || engine == "switch" || engine == "trace",
        "spec: engine.engine '" + engine + "' (cached | switch | trace)");
    util::check_usage(threads >= 1, "spec: engine.threads must be >= 1");

    util::check_usage(shards >= 1 && shards <= 4096,
                      "spec: shard.count must be in [1, 4096]");
    util::check_usage(partition == "uniform" || partition == "weighted",
                      "spec: shard.partition '" + partition +
                          "' (uniform | weighted)");
    util::check_usage(weights.empty() || partition == "weighted",
                      "spec: shard.weights only applies to the weighted "
                      "partition (set shard.partition to \"weighted\")");
    for (double w : weights)
        util::check_usage(std::isfinite(w) && w >= 0,
                          "spec: shard.weights entries must be finite and "
                          ">= 0");

    util::check_usage(fleet_backend == "local-proc" || fleet_backend == "ssh",
                      "spec: fleet.backend '" + fleet_backend +
                          "' (local-proc | ssh)");
    util::check_usage(fleet_hosts.empty() || fleet_backend == "ssh",
                      "spec: fleet.hosts only applies to the ssh backend "
                      "(set fleet.backend to \"ssh\")");
    for (const std::string& h : fleet_hosts)
        util::check_usage(!h.empty(), "spec: fleet.hosts entries must be "
                                      "non-empty ssh destinations");
    util::check_usage(fleet_workers_per_host >= 1,
                      "spec: fleet.workers_per_host must be >= 1");
    util::check_usage(fleet_heartbeat_interval > 0,
                      "spec: fleet.heartbeat_interval must be > 0 seconds");
    util::check_usage(fleet_heartbeat_timeout > fleet_heartbeat_interval,
                      "spec: fleet.heartbeat_timeout must exceed "
                      "fleet.heartbeat_interval");
    util::check_usage(fleet_max_retries >= 1 && fleet_max_retries <= 100,
                      "spec: fleet.max_retries must be in [1, 100]");
    util::check_usage(!fleet_remote_cmd.empty(),
                      "spec: fleet.remote_cmd must name the serep executable "
                      "on the remote hosts");

    util::check_usage(confidence > 0 && confidence < 1,
                      "spec: report.confidence must be in (0, 1)");
    // Reports are rendered from the on-disk campaign JSONL; an out-less
    // (in-memory) experiment has none, so declared report paths would be
    // silently dropped — reject the contradiction instead.
    util::check_usage(!out.empty() || (report_md.empty() &&
                                       report_csv.empty() &&
                                       report_json.empty()),
                      "spec: report outputs need spec.out (they are rendered "
                      "from the campaign databases it names)");
}

std::string ExperimentSpec::canonical_json() const {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("name").value(name);
    w.key("out").value(out);
    w.key("matrix").begin_object();
    w.key("class").value(klass);
    if (cross_product) {
        w.key("isa");
        write_strings(w, isas);
        w.key("app");
        write_strings(w, apps);
        w.key("api");
        write_strings(w, apis);
        w.key("cores").begin_array();
        for (unsigned c : cores) w.value(c);
        w.end_array();
    }
    w.key("cells").begin_array();
    for (const CellSpec& c : cells) {
        w.begin_object();
        w.key("isa").value(c.isa);
        w.key("app").value(c.app);
        w.key("api").value(c.api);
        w.key("cores").value(c.cores);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("fault").begin_object();
    if (kinds.size() == 1) {
        w.key("kind").value(kinds.front());
    } else {
        w.key("kind");
        write_strings(w, kinds);
    }
    w.key("faults").value(faults);
    w.key("seed").value(seed);
    w.key("watchdog").value(watchdog);
    w.key("target_ci").value(target_ci);
    w.key("ci_confidence").value(ci_confidence);
    w.key("ci_batch").value(ci_batch);
    w.key("ci_min").value(ci_min);
    w.end_object();
    w.key("engine").begin_object();
    w.key("engine").value(engine);
    w.key("threads").value(threads);
    w.key("stride").value(stride);
    w.key("checkpoints").value(checkpoints);
    w.key("delta").value(delta);
    w.key("adaptive").value(adaptive);
    w.end_object();
    w.key("prune").begin_object();
    w.key("enabled").value(prune);
    w.key("verify_sample").value(prune_verify);
    w.end_object();
    w.key("shard").begin_object();
    w.key("count").value(shards);
    w.key("partition").value(partition);
    w.key("weights").begin_array();
    for (double x : weights) w.value(x);
    w.end_array();
    w.end_object();
    w.key("report").begin_object();
    w.key("markdown").value(report_md);
    w.key("csv").value(report_csv);
    w.key("figure_json").value(report_json);
    w.key("confidence").value(confidence);
    w.key("top_regs").value(top_regs);
    w.end_object();
    w.key("fleet").begin_object();
    w.key("backend").value(fleet_backend);
    w.key("hosts");
    write_strings(w, fleet_hosts);
    w.key("workers").value(fleet_workers);
    w.key("workers_per_host").value(fleet_workers_per_host);
    w.key("heartbeat_interval").value(fleet_heartbeat_interval);
    w.key("heartbeat_timeout").value(fleet_heartbeat_timeout);
    w.key("max_retries").value(fleet_max_retries);
    w.key("compress").value(fleet_compress);
    w.key("remote_cmd").value(fleet_remote_cmd);
    w.end_object();
    w.end_object();
    return os.str();
}

std::uint64_t ExperimentSpec::spec_hash() const {
    std::uint64_t h = util::kFnvOffset;
    util::fnv1a_str(h, identity_json(*this));
    return h;
}

std::string ExperimentSpec::spec_hash_hex() const {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(spec_hash()));
    return buf;
}

std::vector<std::string> legacy_cli_flags() {
    return {"isa",    "api",         "app",
            "class",  "kind",        "faults",
            "seed",   "threads",     "engine",
            "stride", "no-adaptive", "no-checkpoints",
            "no-delta", "out"};
}

ExperimentSpec spec_from_legacy_cli(const util::Cli& cli) {
    ExperimentSpec s;
    s.name = "legacy-flags";
    s.out = cli.get("out", "campaign");
    s.klass = cli.get("class", "S");
    const auto one = [](const std::string& v) {
        return v.empty() ? std::vector<std::string>{}
                         : std::vector<std::string>{v};
    };
    s.isas = one(cli.get("isa", ""));
    s.apps = one(cli.get("app", ""));
    s.apis = one(cli.get("api", ""));

    s.kinds = {cli.get("kind", "gpr")};
    // Range-check before the unsigned narrowing: --faults=-3 or a > 2^32
    // value must be a usage error, not a silent wrap into a different
    // campaign (the JSON path's get_uint guards the same field).
    const std::int64_t faults = cli.get_int("faults", 100);
    util::check_usage(faults >= 1 && faults <= 0xFFFFFFFFll,
                      "--faults must be in [1, 4294967295]");
    s.faults = static_cast<unsigned>(faults);
    s.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0xDAC2018));
    const std::int64_t threads = cli.get_int("threads", 2);
    s.threads = threads < 1 ? 1 : static_cast<unsigned>(threads);
    s.engine = cli.get("engine", "cached");
    s.stride = static_cast<std::uint64_t>(cli.get_int("stride", 0));
    s.checkpoints = !cli.has("no-checkpoints");
    s.delta = !cli.has("no-delta");
    s.adaptive = !cli.has("no-adaptive");

    if (cli.has("target-ci")) {
        s.target_ci = cli.get_double("target-ci", 0.05);
        s.ci_confidence = cli.get_double("confidence", 0.95);
        const std::int64_t batch = cli.get_int("ci-batch", 50);
        const std::int64_t min_faults = cli.get_int("ci-min", 20);
        // Range-check before the unsigned narrowing below, so a negative
        // value cannot wrap into an absurd-but-positive batch size.
        util::check_usage(batch > 0 && batch <= 1'000'000,
                          "--ci-batch must be in [1, 1000000]");
        util::check_usage(min_faults >= 0 && min_faults <= 1'000'000,
                          "--ci-min must be in [0, 1000000]");
        s.ci_batch = static_cast<unsigned>(batch);
        s.ci_min = static_cast<unsigned>(min_faults);
    }

    s.validate();
    return s;
}

} // namespace serep::exp
