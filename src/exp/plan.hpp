// Planner (layer 2 of src/exp/): expand an ExperimentSpec into the
// canonical ExperimentPlan — the exact, ordered job list every execution
// path (direct, sharded, adaptive) agrees on.
//
// Multi-kind specs expand kind-major: the full scenario selection for
// kinds[0], then for kinds[1], ... — so a single-kind spec's job list (and
// ordering) is exactly what it was before fault.kind grew a list form.
//
// Canonical job order is the paper_scenarios() order PR 1's filter_scenarios
// has always produced (so a spec-driven run is byte-identical to the legacy
// flag-driven one), with one extension: explicit matrix.cells come first, in
// the order the spec lists them, and the cross-product matches follow minus
// any duplicates. Each job gets a stable human-readable id
// ("ARMv7-EP-SER-1-Mini-gpr") and the whole plan carries the spec hash that
// flows into shard manifests, resume checks, and report provenance.
//
// The plan also owns the weighted-partition probe: weights are probed at
// most ONCE per plan (or taken verbatim from spec.shard.weights) and the
// cached vector feeds both the dry-run work estimate (`serep plan`) and
// every shard's cut (`serep run`) — golden-length probing happens at most
// once per experiment instead of once per shard invocation.
#pragma once

#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "orch/shard.hpp"

namespace serep::exp {

struct PlannedJob {
    std::string id;   ///< "ARMv7-EP-SER-1-Mini-gpr" — stable across runs
    std::string kind; ///< the fault kind this job draws from
    npb::Scenario scenario;
    core::CampaignConfig cfg;
};

class ExperimentPlan {
public:
    /// Expand (and re-validate) the spec. Throws util::UsageError when the
    /// matrix matches no paper scenario, an explicit cell names a
    /// configuration the paper does not have, or spec.shard.weights has the
    /// wrong length for the job list.
    explicit ExperimentPlan(ExperimentSpec spec);

    const ExperimentSpec& spec() const noexcept { return spec_; }
    const std::vector<PlannedJob>& jobs() const noexcept { return jobs_; }
    std::uint64_t spec_hash() const noexcept { return spec_hash_; }
    const std::string& spec_hash_hex() const noexcept { return hash_hex_; }

    /// The job list in the shape the orch layer consumes.
    std::vector<orch::ShardJobSpec> shard_jobs() const;

    bool weighted() const noexcept { return spec_.partition == "weighted"; }
    unsigned shard_count() const noexcept { return spec_.shards; }

    /// Per-job work weights for the weighted partition: spec.shard.weights
    /// when baked in, otherwise probed (one golden execution per distinct
    /// scenario) on first call and cached — the single probe the dry-run
    /// estimate and every shard cut share.
    const std::vector<double>& weights();
    /// True once weights() would return without running any probe.
    bool weights_ready() const noexcept {
        return !weights_.empty() || !spec_.weights.empty();
    }

    /// Shard `index`'s weighted cut, built from weights().
    orch::WeightedShardPlan weighted_plan(unsigned index);

    /// Dry-run listing: spec hash, fault model, job ids, shard layout and
    /// an estimated-work line. Never probes on its own (a fully-resumed
    /// `serep run` must stay golden-run-free): the weighted estimate and
    /// the ready-to-bake "weights": [...] line appear only once weights
    /// are cached or baked — `serep plan` probes explicitly first.
    std::string listing();

    // Output-file naming shared by the driver, the CLI, and the tests.
    std::string csv_path() const { return spec_.out + "_faults.csv"; }
    std::string jsonl_path() const { return spec_.out + "_campaigns.jsonl"; }
    std::string shard_db_path(unsigned k) const {
        return spec_.out + "_shard" + std::to_string(k) + ".jsonl";
    }
    /// Completion sidecar for the adaptive (target_ci) path, whose CSV/JSONL
    /// outputs cannot carry the spec hash themselves.
    std::string state_path() const { return spec_.out + ".exp.json"; }

private:
    ExperimentSpec spec_;
    std::vector<PlannedJob> jobs_;
    std::uint64_t spec_hash_ = 0;
    std::string hash_hex_;
    std::vector<double> weights_; ///< probe cache (empty until needed)
};

} // namespace serep::exp
