// Declarative experiment specifications (layer 1 of src/exp/).
//
// The paper's contribution is breadth — 570M injections over a 130-cell
// scenario matrix — and reproducing any slice of it used to mean hand-wiring
// CampaignConfig, BatchOptions, StatsOptions and per-subcommand serep flags.
// An ExperimentSpec is the replacement: ONE serializable document that names
// an entire experiment —
//
//   * the scenario matrix (ISA / app / API / cores sets, cross-product
//     and/or explicit cells),
//   * the fault model (gpr | fp | mem | cache-tag | cache-data | bus — one
//     kind or a list, fixed count or --target-ci sizing),
//   * engine and checkpoint knobs,
//   * shard partitioning (uniform or weighted, shard count, baked weights),
//   * report outputs (markdown / CSV / figure-JSON paths).
//
// Specs load from JSON (util::json), serialize back to a *canonical* compact
// form (fixed field order, every field present), and carry a stable
// spec hash: an FNV-1a fold of the canonical serialization of the
// experiment-identity fields (matrix + fault model + shard count and
// partition scheme). The hash subsumes orch::campaign_config_hash — the job
// list derives deterministically from those fields — and is written into
// every shard outcome database the exp::Driver produces, so resumed runs
// can tell "this database belongs to this spec" apart from "stale artifact
// of some other experiment". Presentation and execution knobs (name, out
// prefix, engine, threads, report paths) are deliberately NOT part of the
// hash: both engines are bit-identical in every observable and thread count
// never changes outcomes, so completed work survives those edits. Baked
// shard.weights are excluded too — the probe is deterministic, so pasting
// the vector `serep plan` prints into the spec must not invalidate shards
// that finished before the bake (a genuinely different cut is still caught
// by the partition id every manifest carries).
//
// Everything here throws util::UsageError on malformed or contradictory
// input (the spec is operator input, exit code 2 in serep), with messages
// that name the offending key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace serep::exp {

/// One explicit scenario cell of the matrix ("that exact configuration").
struct CellSpec {
    std::string isa; ///< "v7" / "v8"
    std::string app; ///< "EP", "CG", ...
    std::string api; ///< "SER" / "OMP" / "MPI"
    unsigned cores = 1;
};

struct ExperimentSpec {
    // ---- identity / outputs -------------------------------------------
    std::string name = "experiment";
    /// Output file prefix: <out>_faults.csv, <out>_campaigns.jsonl,
    /// <out>_shard<k>.jsonl. Empty = in-memory experiment (no files; only
    /// the direct single-process path supports this — the bench drivers).
    std::string out = "campaign";

    // ---- scenario matrix ----------------------------------------------
    std::string klass = "S"; ///< problem class: "Mini" / "S" / "W"
    /// Cross-product selectors; an empty list means "no constraint". The
    /// product is only applied when `cross_product` is true — a spec that
    /// gives only explicit `cells` runs exactly those cells.
    std::vector<std::string> isas; ///< subset of {"v7","v8"}
    std::vector<std::string> apps; ///< subset of the NPB app names
    std::vector<std::string> apis; ///< subset of {"SER","OMP","MPI"}
    std::vector<unsigned> cores;   ///< subset of the paper's core counts
    std::vector<CellSpec> cells;   ///< explicit cells, unioned with the product
    /// True when the cross-product form participates (always, unless the
    /// JSON matrix gives cells and none of the four selector keys).
    bool cross_product = true;

    // ---- fault model ---------------------------------------------------
    /// Fault-target spaces: any subset of "gpr" / "fp" / "mem" (the
    /// architectural spaces) and "cache-tag" / "cache-data" / "bus" (the
    /// uncore spaces, src/uncore/). JSON accepts a scalar or a list
    /// ("kind": "gpr" == "kind": ["gpr"]); a multi-kind spec expands to one
    /// job per (scenario, kind), kind-major. Single-kind specs serialize
    /// and hash exactly as before the list form existed.
    std::vector<std::string> kinds{"gpr"};
    unsigned faults = 100;    ///< fault-space size per job (ceiling when adaptive)
    std::uint64_t seed = 0xDAC2018;
    double watchdog = 4.0; ///< hang threshold: golden length x this factor
    /// > 0 enables confidence-driven sizing (the sequential stopping rule):
    /// stop each job once every outcome rate's CI half-width is <= this.
    double target_ci = 0;
    double ci_confidence = 0.95;
    unsigned ci_batch = 50;
    unsigned ci_min = 20;

    // ---- engine / checkpoint knobs (not part of the spec hash) ---------
    std::string engine = "cached"; ///< "cached" / "switch" / "trace"
    unsigned threads = 2;
    std::uint64_t stride = 0; ///< fixed checkpoint stride; 0 = auto
    bool checkpoints = true;
    bool delta = true;    ///< dirty-page delta snapshot rungs
    bool adaptive = true; ///< probe-based adaptive stride

    // ---- equivalence pruning ------------------------------------------
    /// Simulate one representative per fault-equivalence class and infer
    /// the rest from the golden run's def-use walk (src/prune/). Outcome
    /// counts and report bytes match the unpruned run exactly; records gain
    /// an "inferred" provenance flag. Part of the spec hash ONLY when
    /// enabled, so every existing spec's hash (and its finished shard
    /// databases) is untouched.
    bool prune = false;
    /// Sample size for `serep run --prune=verify`: per job, up to this many
    /// pruning-derived records are re-simulated and compared. Not part of
    /// the spec hash (verification never changes outcomes).
    unsigned prune_verify = 32;

    // ---- shard partitioning -------------------------------------------
    unsigned shards = 1;
    std::string partition = "uniform"; ///< "uniform" / "weighted"
    /// Optional pre-probed per-job work weights (weighted partition only):
    /// bake the vector `serep plan` prints into the spec and no worker ever
    /// probes golden lengths again.
    std::vector<double> weights;

    // ---- report outputs (not part of the spec hash) --------------------
    std::string report_md;   ///< markdown report path ("" = skip)
    std::string report_csv;  ///< rates-CSV report path ("" = skip)
    std::string report_json; ///< figure-JSON report path ("" = skip)
    double confidence = 0.95;
    unsigned top_regs = 8;

    // ---- fleet (distributed launcher; not part of the spec hash) -------
    // Where and how `serep fleet` fans the shards out. Deliberately
    // hash-neutral: the fleet topology never changes a single outcome byte
    // (the merged DB is byte-identical to the single-process run), so
    // re-pointing a campaign at different hosts must not strand finished
    // shard databases.
    std::string fleet_backend = "local-proc"; ///< "local-proc" / "ssh"
    std::vector<std::string> fleet_hosts;     ///< ssh destinations (ssh only)
    unsigned fleet_workers = 0; ///< concurrent workers; 0 = one per shard,
                                ///< capped at 8 (local-proc) or the host list
    unsigned fleet_workers_per_host = 1;   ///< ssh: workers per destination
    double fleet_heartbeat_interval = 1.0; ///< worker heartbeat period (s)
    double fleet_heartbeat_timeout = 30.0; ///< silence -> presumed dead (s)
    unsigned fleet_max_retries = 3; ///< attempts per shard before quarantine
    bool fleet_compress = true;     ///< stream shard DBs zstd-framed
    std::string fleet_remote_cmd = "serep"; ///< serep spelling on remote hosts

    /// Parse + validate a spec from JSON text. Unknown keys are rejected
    /// with the offending key and its location named (same policy as the
    /// serep unknown-flag audit: silent typos never reconfigure a campaign).
    static ExperimentSpec load(const std::string& json_text);

    /// Canonical compact JSON: fixed field order, every field emitted.
    /// load(canonical_json()) == *this, and two specs that differ only in
    /// JSON field order canonicalize identically.
    std::string canonical_json() const;

    /// Stable experiment-identity hash (see file comment). Hex spelling via
    /// spec_hash_hex() is what shard manifests and resume checks carry.
    std::uint64_t spec_hash() const;
    std::string spec_hash_hex() const;

    /// Re-check invariants (load() already calls this; programmatic
    /// constructors call it through the planner). Throws util::UsageError —
    /// except prune+uncore-kind, which is util::ValidationError (exit 3):
    /// the spec is well-formed, but pruning cannot produce valid outcomes
    /// for uncore faults.
    void validate() const;
};

/// Synthesize a spec from the legacy serep/full_campaign flag set
/// (--isa/--api/--app/--class/--kind/--faults/--seed/--threads/--engine/
/// --stride/--no-checkpoints/--no-delta/--no-adaptive/--target-ci/
/// --confidence/--ci-batch/--ci-min/--out). This is the compatibility shim
/// the legacy subcommands run through — the old per-subcommand CLI->options
/// plumbing lives nowhere else anymore.
ExperimentSpec spec_from_legacy_cli(const util::Cli& cli);

/// The filter/config flags spec_from_legacy_cli understands (without the
/// campaign-only --target-ci family) — the one list every legacy front end
/// (serep shims, full_campaign) passes to Cli::require_known, so the audit
/// can never drift from the parser.
std::vector<std::string> legacy_cli_flags();

} // namespace serep::exp
