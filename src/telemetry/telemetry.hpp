// Process-wide telemetry (src/telemetry/): counters, gauges, histograms,
// and hierarchical phase spans, exported as a deterministic-schema
// metrics.json sidecar and a Chrome trace-event JSON (Perfetto-loadable).
//
// Design constraints, in order:
//
//  * Strictly out of band. Nothing here ever touches a campaign output
//    stream: outcome DBs, reports, and spec hashes are byte-identical with
//    telemetry on, off, or absent (gated in CI telemetry-determinism and
//    tests/telemetry_test.cpp). Telemetry writes only the sidecar files the
//    caller names.
//
//  * Zero cost when disabled. `enabled()` is one relaxed atomic load; every
//    hook in the hot layers (engine folds, checkpoint rungs, prune tallies)
//    guards on it and the instrumented counters themselves live at coarse
//    boundaries — per golden run, per fault run, per rung — never per
//    instruction. The trace engine's burst/chain/fallback counts are plain
//    machine-local members (sim::Machine::TraceStats) folded here at run
//    completion, so the simulator's inner loops carry no telemetry calls at
//    all. bench_micro --telemetry gates the enabled-vs-disabled steps/sec
//    delta under 2%, which upper-bounds the disabled-hook cost.
//
//  * Lock-free hot counters. Each counting thread owns a slab of relaxed
//    atomics (one cell per interned metric); readers fold every slab on
//    demand. Slabs are registry-owned and survive thread exit, so counts
//    from finished pool workers persist. Gauges, histograms, and span
//    events are mutex-protected — they are touched at phase granularity.
//
// Span hierarchy (what the Perfetto view shows): the exporting tool wraps
// the run in a root span, the driver opens one span per shard / merge /
// report, and BatchRunner opens per-wave phase spans (golden+ladder, prune
// analysis, injection, prune verify) with per-scenario golden spans inside
// the pool workers — nested by containment per thread track.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace serep::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/// Master switch. Off (the default) makes every hook a cheap early-out and
/// count()/Span no-ops; nothing is recorded.
inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Interned counter handle: stable for the process lifetime (reset() zeroes
/// values but keeps the intern table, so cached ids never dangle).
using MetricId = std::uint32_t;

/// Cells per thread slab; interning more counters than this throws.
inline constexpr std::size_t kMaxCounters = 128;

/// Intern `name` (idempotent). Cheap enough for per-run call sites; hot
/// folds should cache the id in a function-local static.
MetricId counter_id(const std::string& name);

/// Add `n` to a counter in this thread's lock-free cell. No-op when
/// telemetry is disabled.
void count(MetricId id, std::uint64_t n = 1) noexcept;
void count(const std::string& name, std::uint64_t n = 1);

/// Folded value of one counter across every thread slab (0 for unknown
/// names). Used by the heartbeat snapshot and tests.
std::uint64_t counter_value(const std::string& name);

/// Set a gauge (last write wins; coarse events only).
void gauge(const std::string& name, double v);

/// Record `v` into a power-of-two-bucket histogram (count/sum/min/max plus
/// bucket tallies). Coarse events only — takes a mutex.
void observe(const std::string& name, std::uint64_t v);

/// Monotonic nanoseconds since the telemetry epoch (process start or the
/// last reset()). Timestamps in both export formats use this clock.
std::uint64_t now_ns() noexcept;

/// RAII phase span: records [construction, destruction) on this thread's
/// track with its nesting depth. No-op (and allocation-free name move
/// aside, cost-free) when telemetry is disabled at construction.
class Span {
public:
    explicit Span(std::string name);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    std::string name_;
    std::uint64_t t0_ = 0;
    bool live_ = false;
};

/// Build/version facts baked into the binary — `serep version` prints them
/// and every metrics.json carries them in its provenance block.
struct BuildInfo {
    std::string version;     ///< serep release string
    std::string compiler;    ///< e.g. "gcc 12.2.0" / "clang 17.0.6"
    long cxx_standard = 0;   ///< __cplusplus value (201703 for C++17)
    std::string build_type;  ///< CMAKE_BUILD_TYPE at configure time
    bool zstd = false;       ///< libzstd linked (util::zstd_available)
};
BuildInfo build_info();

/// What the exporter stamps into metrics.json besides the build info.
struct Provenance {
    std::string tool;      ///< e.g. "serep run" / "serep fleet" / "bench_micro"
    std::string spec_hash; ///< experiment spec hash; "" when no spec applies
};

/// Render the metrics sidecar. The SCHEMA is deterministic — a fixed
/// top-level key set ("schema", "provenance", "elapsed_s", "counters",
/// "gauges", "histograms", "spans") with metric names sorted — while the
/// VALUES (timings, rates) naturally vary run to run. Validated in CI by
/// scripts/check_telemetry.py against scripts/telemetry_schema.json.
std::string render_metrics_json(const Provenance& prov);

/// Render the Chrome trace-event JSON: one "ph":"X" complete event per
/// span on its thread's track plus thread_name metadata — load the file at
/// ui.perfetto.dev (or chrome://tracing) to see the nested phase spans.
std::string render_chrome_trace();

/// Write either export to a file (util::Error on I/O failure).
void write_metrics_file(const std::string& path, const Provenance& prov);
void write_trace_file(const std::string& path);

/// Compact one-line progress snapshot for the fleet heartbeat beacon:
/// {"elapsed_s":…,"runs":…,"runs_planned":…,"steps":…} — the controller
/// parses it back with fleet::parse_worker_snapshot.
std::string progress_json();

/// Zero every value (counters, gauges, histograms, spans) and restart the
/// epoch clock. Interned counter ids stay valid. Test hook.
void reset();

} // namespace serep::telemetry
