#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/zframe.hpp"

namespace serep::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's counter cells. Registry-owned (unique_ptr in a vector under
/// the registry mutex) so the slab outlives its thread: pool workers finish
/// before the exporting thread folds.
struct Slab {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> cells{};
    std::uint32_t tid = 0; ///< small interned thread id, shared with spans
};

struct GaugeValue {
    double v = 0;
};

/// Power-of-two-bucket histogram: bucket[i] counts values in
/// [2^(i-1), 2^i), bucket[0] counts zero. 65 buckets cover uint64.
struct Histogram {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = ~0ULL;
    std::uint64_t max = 0;
    std::array<std::uint64_t, 65> buckets{};
};

struct SpanEvent {
    std::string name;
    std::uint64_t t0_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
    std::uint32_t depth = 0;
};

struct Registry {
    std::mutex mu;
    // Counter interning. Ids index both `names` and every slab's cells and
    // stay valid across reset() (values are zeroed, table is kept).
    std::map<std::string, MetricId> ids;
    std::vector<std::string> names;
    std::vector<std::unique_ptr<Slab>> slabs;
    std::uint32_t next_tid = 1; ///< 0 is never handed out; see tl_cache
    // Epoch bumps on reset(): cached thread-local slab pointers from before
    // a reset are stale (the slab vector was cleared) and must re-register.
    std::uint64_t epoch = 1;
    Clock::time_point t0 = Clock::now();

    std::map<std::string, GaugeValue> gauges;
    std::map<std::string, Histogram> hists;
    std::vector<SpanEvent> spans;
};

Registry& reg() {
    static Registry r;
    return r;
}

struct TlCache {
    Slab* slab = nullptr;
    std::uint64_t epoch = 0;
    std::uint32_t depth = 0; ///< live Span nesting depth on this thread
};
thread_local TlCache tl_cache;

Slab* my_slab() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    if (tl_cache.slab == nullptr || tl_cache.epoch != r.epoch) {
        r.slabs.push_back(std::make_unique<Slab>());
        r.slabs.back()->tid = r.next_tid++;
        tl_cache.slab = r.slabs.back().get();
        tl_cache.epoch = r.epoch;
    }
    return tl_cache.slab;
}

std::uint32_t my_tid() { return my_slab()->tid; }

std::uint64_t ns_since(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
}

int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    int b = 0;
    while (v != 0) {
        v >>= 1;
        ++b;
    }
    return b; // 1..64
}

/// Doubles in telemetry output are rounded to 6 decimals — enough for
/// seconds-resolution elapsed times and rates, and keeps the files tidy.
double round6(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::strtod(buf, nullptr);
}

} // namespace

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricId counter_id(const std::string& name) {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.ids.find(name);
    if (it != r.ids.end()) return it->second;
    util::check(r.names.size() < kMaxCounters,
                "telemetry: counter intern table full (kMaxCounters)");
    MetricId id = static_cast<MetricId>(r.names.size());
    r.ids.emplace(name, id);
    r.names.push_back(name);
    return id;
}

void count(MetricId id, std::uint64_t n) noexcept {
    if (!enabled()) return;
    my_slab()->cells[id].fetch_add(n, std::memory_order_relaxed);
}

void count(const std::string& name, std::uint64_t n) {
    if (!enabled()) return;
    count(counter_id(name), n);
}

std::uint64_t counter_value(const std::string& name) {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.ids.find(name);
    if (it == r.ids.end()) return 0;
    std::uint64_t total = 0;
    for (const auto& slab : r.slabs)
        total += slab->cells[it->second].load(std::memory_order_relaxed);
    return total;
}

void gauge(const std::string& name, double v) {
    if (!enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.gauges[name].v = v;
}

void observe(const std::string& name, std::uint64_t v) {
    if (!enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    Histogram& h = r.hists[name];
    ++h.count;
    h.sum += v;
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
    ++h.buckets[static_cast<std::size_t>(bucket_of(v))];
}

std::uint64_t now_ns() noexcept {
    Registry& r = reg();
    // t0 is written only under the mutex in reset(); racing reads during a
    // concurrent reset would misattribute timestamps, but reset() is a
    // test-only hook documented as quiescent-use.
    return ns_since(r.t0);
}

Span::Span(std::string name) : name_(std::move(name)) {
    if (!enabled()) return;
    live_ = true;
    t0_ = now_ns();
    ++tl_cache.depth;
}

Span::~Span() {
    if (!live_) return;
    std::uint64_t dur = now_ns() - t0_;
    std::uint32_t tid = my_tid();
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    --tl_cache.depth;
    r.spans.push_back(SpanEvent{std::move(name_), t0_, dur, tid, tl_cache.depth});
}

std::string render_metrics_json(const Provenance& prov) {
    Registry& r = reg();
    BuildInfo bi = build_info();

    // Snapshot everything under the lock, render outside it.
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeValue> gauges;
    std::map<std::string, Histogram> hists;
    // Spans aggregate to {count, total_ns} per name: the full per-event
    // detail belongs to the Chrome trace, the sidecar wants rollups.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> span_agg;
    double elapsed_s = 0;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (std::size_t i = 0; i < r.names.size(); ++i) {
            std::uint64_t total = 0;
            for (const auto& slab : r.slabs)
                total += slab->cells[i].load(std::memory_order_relaxed);
            counters[r.names[i]] = total;
        }
        gauges = r.gauges;
        hists = r.hists;
        for (const SpanEvent& e : r.spans) {
            auto& agg = span_agg[e.name];
            ++agg.first;
            agg.second += e.dur_ns;
        }
        elapsed_s = static_cast<double>(ns_since(r.t0)) * 1e-9;
    }

    std::ostringstream out;
    util::JsonWriter w(out);
    w.begin_object();
    w.key("schema").value("serep-metrics-v1");
    w.key("provenance").begin_object();
    w.key("tool").value(prov.tool);
    w.key("spec_hash").value(prov.spec_hash);
    w.key("version").value(bi.version);
    w.key("compiler").value(bi.compiler);
    w.key("cxx_standard").value(static_cast<std::int64_t>(bi.cxx_standard));
    w.key("build_type").value(bi.build_type);
    w.key("zstd").value(bi.zstd);
    w.end_object();
    w.key("elapsed_s").value(round6(elapsed_s));
    w.key("counters").begin_object();
    for (const auto& [name, v] : counters) w.key(name).value(v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, g] : gauges) w.key(name).value(round6(g.v));
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : hists) {
        w.key(name).begin_object();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("min").value(h.count != 0 ? h.min : 0);
        w.key("max").value(h.max);
        w.key("buckets").begin_array();
        // Trailing empty buckets are trimmed so small histograms stay small.
        std::size_t last = h.buckets.size();
        while (last > 0 && h.buckets[last - 1] == 0) --last;
        for (std::size_t i = 0; i < last; ++i) w.value(h.buckets[i]);
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.key("spans").begin_object();
    for (const auto& [name, agg] : span_agg) {
        w.key(name).begin_object();
        w.key("count").value(agg.first);
        w.key("total_ns").value(agg.second);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    out << '\n';
    return out.str();
}

std::string render_chrome_trace() {
    Registry& r = reg();
    std::vector<SpanEvent> spans;
    std::vector<std::uint32_t> tids;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        spans = r.spans;
        for (const auto& slab : r.slabs) tids.push_back(slab->tid);
    }
    // Stable event order: by start time, then track, so re-renders of the
    // same recording compare equal.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                         if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                         return a.tid < b.tid;
                     });
    std::sort(tids.begin(), tids.end());

    std::ostringstream out;
    util::JsonWriter w(out);
    w.begin_object();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").begin_array();
    for (std::uint32_t tid : tids) {
        w.begin_object();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(std::uint64_t{1});
        w.key("tid").value(std::uint64_t{tid});
        w.key("args").begin_object();
        w.key("name").value(tid == 1 ? std::string("main")
                                     : "worker-" + std::to_string(tid));
        w.end_object();
        w.end_object();
    }
    for (const SpanEvent& e : spans) {
        w.begin_object();
        w.key("name").value(e.name);
        w.key("cat").value("serep");
        w.key("ph").value("X");
        w.key("pid").value(std::uint64_t{1});
        w.key("tid").value(std::uint64_t{e.tid});
        // Trace-event timestamps are microseconds (doubles); sub-us detail
        // is below span granularity, integer us keeps the file stable-ish.
        w.key("ts").value(e.t0_ns / 1000);
        w.key("dur").value(std::max<std::uint64_t>(1, e.dur_ns / 1000));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    out << '\n';
    return out.str();
}

namespace {
void write_text_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    util::check(static_cast<bool>(out), "telemetry: cannot open " + path);
    out << text;
    out.flush();
    util::check(static_cast<bool>(out), "telemetry: write failed: " + path);
}
} // namespace

void write_metrics_file(const std::string& path, const Provenance& prov) {
    write_text_file(path, render_metrics_json(prov));
}

void write_trace_file(const std::string& path) {
    write_text_file(path, render_chrome_trace());
}

std::string progress_json() {
    std::ostringstream out;
    util::JsonWriter w(out);
    w.begin_object();
    w.key("elapsed_s").value(round6(static_cast<double>(now_ns()) * 1e-9));
    w.key("runs").value(counter_value("batch.fault_runs"));
    w.key("runs_planned").value(counter_value("batch.runs_planned"));
    w.key("steps").value(counter_value("engine.steps"));
    w.end_object();
    return out.str();
}

void reset() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.slabs.clear();
    r.next_tid = 1;
    ++r.epoch;
    r.gauges.clear();
    r.hists.clear();
    r.spans.clear();
    r.t0 = Clock::now();
}

} // namespace serep::telemetry
