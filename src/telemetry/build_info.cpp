// Build provenance: the facts `serep version` prints and metrics.json
// embeds. Compiler identity comes from predefined macros; the build type
// is injected by CMake (SEREP_BUILD_TYPE); zstd presence is probed at
// runtime because SEREP_HAVE_ZSTD is private to the library target.
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/zframe.hpp"

namespace serep::telemetry {

namespace {

std::string compiler_string() {
#if defined(__clang__)
    std::ostringstream s;
    s << "clang " << __clang_major__ << '.' << __clang_minor__ << '.'
      << __clang_patchlevel__;
    return s.str();
#elif defined(__GNUC__)
    std::ostringstream s;
    s << "gcc " << __GNUC__ << '.' << __GNUC_MINOR__ << '.'
      << __GNUC_PATCHLEVEL__;
    return s.str();
#elif defined(_MSC_VER)
    return "msvc " + std::to_string(_MSC_VER);
#else
    return "unknown";
#endif
}

} // namespace

BuildInfo build_info() {
    BuildInfo bi;
    bi.version = "0.9.0";
    bi.compiler = compiler_string();
    bi.cxx_standard = static_cast<long>(__cplusplus);
#if defined(SEREP_BUILD_TYPE)
    bi.build_type = SEREP_BUILD_TYPE;
#else
    bi.build_type = "";
#endif
    bi.zstd = util::zstd_available();
    return bi;
}

} // namespace serep::telemetry
