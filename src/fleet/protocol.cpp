#include "fleet/protocol.hpp"

#include <cstdio>
#include <unistd.h>

#include "util/check.hpp"
#include "util/json.hpp"

namespace serep::fleet {

namespace {

std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

/// Single-quote `s` for the remote shell ssh always interposes. Classic
/// POSIX quoting: close the quote, emit an escaped quote, reopen.
std::string shell_quote(const std::string& s) {
    std::string out = "'";
    for (const char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out.push_back(c);
    }
    out.push_back('\'');
    return out;
}

} // namespace

std::vector<std::string> worker_run_args(const WorkerJob& job) {
    std::vector<std::string> args = {
        "--shard=" + std::to_string(job.shard) + "/" +
            std::to_string(job.count),
        "--shard-stdout",
        "--heartbeat=" + format_double(job.heartbeat_interval),
    };
    if (job.compress) args.push_back("--compress");
    return args;
}

WorkerSpawn local_spawn(const WorkerJob& job, const std::string& serep_exe) {
    util::check(!serep_exe.empty(), "fleet: empty worker executable path");
    WorkerSpawn s;
    s.argv = {serep_exe, "run", job.spec_path};
    for (const std::string& a : worker_run_args(job)) s.argv.push_back(a);
    s.stdout_path = job.payload_path;
    s.stderr_path = job.log_path;
    return s;
}

WorkerSpawn ssh_spawn(const WorkerJob& job, const std::string& remote_cmd) {
    util::check(!job.host.empty(), "fleet: ssh spawn needs a host");
    util::check(!remote_cmd.empty(), "fleet: empty remote serep command");
    // `serep run -`: the spec rides stdin, so the remote host needs nothing
    // staged — ssh forwards the three protocol streams as-is. BatchMode
    // turns auth prompts into immediate failures the retry machinery can
    // see, instead of a hung worker holding a lease until timeout.
    std::string remote = shell_quote(remote_cmd) + " run -";
    for (const std::string& a : worker_run_args(job))
        remote += " " + shell_quote(a);
    WorkerSpawn s;
    s.argv = {"ssh", "-o", "BatchMode=yes", job.host, remote};
    s.stdin_path = job.spec_path;
    s.stdout_path = job.payload_path;
    s.stderr_path = job.log_path;
    return s;
}

std::string WorkerSnapshot::summary() const {
    if (!valid()) return "no metrics snapshot";
    char buf[160];
    const double rate = static_cast<double>(steps) / elapsed_s;
    std::snprintf(buf, sizeof buf,
                  "%llu/%llu runs, %.3g steps/s at %.1fs",
                  static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(runs_planned), rate,
                  elapsed_s);
    return buf;
}

bool parse_worker_snapshot(const std::string& log_tail, WorkerSnapshot& out) {
    // Scan lines back to front for `hb <i> {json}`; the newest parsable
    // snapshot wins. The tail may begin mid-line (callers read a fixed-size
    // suffix of the stderr file) — such a fragment simply fails to match.
    std::size_t end = log_tail.size();
    while (end > 0) {
        std::size_t begin = log_tail.rfind('\n', end - 1);
        begin = begin == std::string::npos ? 0 : begin + 1;
        const std::string line = log_tail.substr(begin, end - begin);
        end = begin == 0 ? 0 : begin - 1;
        if (line.compare(0, 3, "hb ") != 0) continue;
        const std::size_t brace = line.find('{');
        if (brace == std::string::npos) continue;
        try {
            const util::JsonValue v = util::json_parse(line.substr(brace));
            WorkerSnapshot snap;
            snap.elapsed_s = v.at("elapsed_s").as_double();
            snap.runs = v.at("runs").as_u64();
            snap.runs_planned = v.at("runs_planned").as_u64();
            snap.steps = v.at("steps").as_u64();
            if (!snap.valid()) continue; // zero-elapsed startup beat
            out = snap;
            return true;
        } catch (const util::Error&) {
            continue; // torn or foreign line — keep scanning older lines
        }
    }
    return false;
}

std::string self_exe_path() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    util::check(n > 0, "fleet: cannot resolve /proc/self/exe");
    return std::string(buf, static_cast<std::size_t>(n));
}

} // namespace serep::fleet
