// Worker transport backends (layer 2 of src/fleet/): launch, poll, kill.
//
// The controller's retry/reassign state machine talks to exactly this
// interface — launch a WorkerSpawn, poll it for exit, kill it on heartbeat
// timeout. ProcBackend is the one real implementation (fork/exec/waitpid);
// "local-proc" and "ssh" differ only in the argv the protocol layer built
// (src/fleet/protocol.hpp), since an ssh transport *is* a local `ssh`
// process. Tests drive the controller with a scripted fake implementation
// instead — no processes, no ssh, full coverage of the failure paths.
#pragma once

#include <map>

#include "fleet/protocol.hpp"

namespace serep::fleet {

class WorkerBackend {
public:
    struct Status {
        bool running = true;
        int exit_code = 0; ///< meaningful only when !running; nonzero
                           ///< includes death by signal (128 + signo)
    };

    virtual ~WorkerBackend() = default;

    /// Start a worker; returns the backend's handle for it. Throws
    /// util::Error when the process cannot be started at all.
    virtual int launch(const WorkerSpawn& spawn) = 0;

    /// Non-blocking status check. A worker reported exited stays queryable
    /// (the result is latched) until the backend is destroyed.
    virtual Status poll(int worker_id) = 0;

    /// Hard-stop a worker (heartbeat timeout, shutdown). Idempotent; a
    /// subsequent poll reports it exited.
    virtual void kill(int worker_id) = 0;
};

/// fork/exec/waitpid backend used by both real transports. Redirects the
/// three protocol streams to the spawn's files, SIGKILLs on kill(), reaps
/// in poll(). Destroying the backend kills and reaps everything still
/// running — a controller exception never leaks workers.
class ProcBackend : public WorkerBackend {
public:
    ~ProcBackend() override;

    int launch(const WorkerSpawn& spawn) override;
    Status poll(int worker_id) override;
    void kill(int worker_id) override;

private:
    struct Proc {
        long pid = -1;
        bool exited = false;
        int exit_code = 0;
    };
    std::map<int, Proc> procs_;
    int next_id_ = 1;
};

} // namespace serep::fleet
