#include "fleet/backend.hpp"

#include <cstdlib>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/check.hpp"

namespace serep::fleet {

namespace {

/// Redirect `fd` to `path` in the child; exits the child on failure (the
/// parent sees a nonzero worker exit, which is the failure channel).
void redirect_or_die(int fd, const std::string& path, int flags) {
    const int f = ::open(path.empty() ? "/dev/null" : path.c_str(), flags,
                         0644);
    if (f < 0 || ::dup2(f, fd) < 0) _exit(127);
    ::close(f);
}

} // namespace

ProcBackend::~ProcBackend() {
    for (auto& [id, p] : procs_) {
        if (p.exited || p.pid <= 0) continue;
        ::kill(static_cast<pid_t>(p.pid), SIGKILL);
        int status = 0;
        ::waitpid(static_cast<pid_t>(p.pid), &status, 0);
    }
}

int ProcBackend::launch(const WorkerSpawn& spawn) {
    util::check(!spawn.argv.empty(), "fleet: empty worker argv");
    std::vector<char*> argv;
    argv.reserve(spawn.argv.size() + 1);
    for (const std::string& a : spawn.argv)
        argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    util::check(pid >= 0, "fleet: fork failed");
    if (pid == 0) {
        redirect_or_die(STDIN_FILENO, spawn.stdin_path, O_RDONLY);
        redirect_or_die(STDOUT_FILENO, spawn.stdout_path,
                        O_WRONLY | O_CREAT | O_TRUNC);
        redirect_or_die(STDERR_FILENO, spawn.stderr_path,
                        O_WRONLY | O_CREAT | O_TRUNC);
        ::execvp(argv[0], argv.data());
        _exit(127); // exec failed; 127 = "command not found" convention
    }
    const int id = next_id_++;
    procs_[id] = Proc{pid, false, 0};
    return id;
}

WorkerBackend::Status ProcBackend::poll(int worker_id) {
    const auto it = procs_.find(worker_id);
    util::check(it != procs_.end(), "fleet: poll of unknown worker id");
    Proc& p = it->second;
    if (!p.exited) {
        int status = 0;
        const pid_t r =
            ::waitpid(static_cast<pid_t>(p.pid), &status, WNOHANG);
        if (r == static_cast<pid_t>(p.pid)) {
            p.exited = true;
            p.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                          : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                                : 128;
        }
    }
    Status s;
    s.running = !p.exited;
    s.exit_code = p.exit_code;
    return s;
}

void ProcBackend::kill(int worker_id) {
    const auto it = procs_.find(worker_id);
    util::check(it != procs_.end(), "fleet: kill of unknown worker id");
    if (it->second.exited) return;
    ::kill(static_cast<pid_t>(it->second.pid), SIGKILL);
    // Reap synchronously so the pid cannot be recycled under us.
    int status = 0;
    ::waitpid(static_cast<pid_t>(it->second.pid), &status, 0);
    it->second.exited = true;
    it->second.exit_code =
        WIFSIGNALED(status) ? 128 + WTERMSIG(status)
        : WIFEXITED(status) ? WEXITSTATUS(status)
                            : 128;
}

} // namespace serep::fleet
