#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include <sys/stat.h>

#include "stats/ci.hpp"
#include "stats/tally.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace serep::fleet {

namespace {

void logf(std::FILE* f, const char* fmt, ...) {
    if (!f) return;
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(f, fmt, ap);
    va_end(ap);
    std::fflush(f);
}

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::uint64_t file_size(const std::string& path) {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/// Last `max_bytes` of a file — enough stderr to hold a handful of
/// heartbeat lines without re-reading a long worker log on every poll.
std::string read_tail(const std::string& path, std::size_t max_bytes) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) return "";
    const auto size = static_cast<std::uint64_t>(in.tellg());
    const std::uint64_t start = size > max_bytes ? size - max_bytes : 0;
    in.seekg(static_cast<std::streamoff>(start));
    std::string buf(static_cast<std::size_t>(size - start), '\0');
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.resize(static_cast<std::size_t>(in.gcount()));
    return buf;
}

/// A shard waiting for a worker: not before `ready_at` (retry backoff).
struct PendingShard {
    unsigned shard = 0;
    double ready_at = 0;
};

} // namespace

FleetOptions fleet_options_from_spec(const exp::ExperimentSpec& spec) {
    FleetOptions o;
    o.backend = spec.fleet_backend;
    o.hosts = spec.fleet_hosts;
    o.workers = spec.fleet_workers;
    o.workers_per_host = spec.fleet_workers_per_host;
    o.heartbeat_interval = spec.fleet_heartbeat_interval;
    o.heartbeat_timeout = spec.fleet_heartbeat_timeout;
    o.max_retries = spec.fleet_max_retries;
    o.compress = spec.fleet_compress;
    o.remote_cmd = spec.fleet_remote_cmd;
    return o;
}

FleetResult run_fleet(exp::ExperimentPlan& plan, const FleetOptions& opts,
                      WorkerBackend* backend_override) {
    const exp::ExperimentSpec& spec = plan.spec();
    util::check_usage(!opts.spec_path.empty(),
                      "fleet: a spec file path is required (workers re-read "
                      "the spec themselves)");
    util::check_usage(!spec.out.empty(),
                      "fleet: the spec needs spec.out (shard databases are "
                      "the unit of transport)");
    util::check_usage(spec.target_ci == 0,
                      "fleet: adaptive (target_ci) experiments are a "
                      "single-process sequential rule — they cannot be "
                      "fanned out");
    util::check_usage(opts.backend == "local-proc" || opts.backend == "ssh",
                      "fleet: unknown backend '" + opts.backend +
                          "' (local-proc | ssh)");
    util::check_usage(opts.backend != "ssh" || !opts.hosts.empty(),
                      "fleet: the ssh backend needs at least one host "
                      "(--hosts=h1,h2,... or fleet.hosts in the spec)");
    util::check_usage(opts.heartbeat_timeout > opts.heartbeat_interval,
                      "fleet: heartbeat_timeout must exceed "
                      "heartbeat_interval");
    util::check_usage(opts.max_retries >= 1, "fleet: max_retries must be >= 1");

    // Telemetry export requested => flip the master switch so controller
    // spans and fleet.* counters record. Out of band like the driver's:
    // shard DBs and merged outputs are unaffected.
    const bool want_export =
        !opts.metrics_out.empty() || !opts.trace_out.empty();
    if (want_export) telemetry::set_enabled(true);

    const unsigned n = plan.shard_count();
    FleetResult res;
    res.shards_total = n;

    // ---- phase 0: resume probe — landed shards never launch ------------
    stats::OutcomeTally tally;
    std::deque<PendingShard> queue;
    std::size_t landed = 0;
    {
        telemetry::Span probe_span("fleet.probe");
        for (unsigned k = 0; k < n; ++k) {
            std::string found;
            if (exp::probe_shard_db(plan, k, n, &found) ==
                exp::ShardDbState::Match) {
                logf(opts.log, "[skip] shard %u/%u: %s matches spec %s\n", k,
                     n, found.c_str(), plan.spec_hash_hex().c_str());
                std::string contents;
                util::check(read_file(found, contents),
                            "fleet: cannot re-read " + found);
                tally.add_database(contents, found);
                ++res.resumed;
                ++landed;
            } else {
                queue.push_back({k, 0});
            }
        }
    }
    if (telemetry::enabled() && res.resumed)
        telemetry::count("fleet.resumed", res.resumed);

    if (!queue.empty()) {
        // ---- worker slots ----------------------------------------------
        std::vector<std::string> free_slots; // one entry per idle slot: host
        if (opts.backend == "ssh") {
            for (const std::string& h : opts.hosts)
                for (unsigned i = 0; i < opts.workers_per_host; ++i)
                    free_slots.push_back(h);
            if (opts.workers > 0 && opts.workers < free_slots.size())
                free_slots.resize(opts.workers);
        } else {
            const std::size_t w =
                opts.workers > 0 ? opts.workers
                                 : std::min<std::size_t>(queue.size(), 8);
            free_slots.assign(std::max<std::size_t>(w, 1), "");
        }
        if (free_slots.size() > queue.size())
            free_slots.resize(queue.size());
        const std::string exe =
            !opts.serep_exe.empty() ? opts.serep_exe : self_exe_path();
        logf(opts.log, "fleet: %zu shard(s) pending, %zu %s worker slot(s)\n",
             queue.size(), free_slots.size(), opts.backend.c_str());

        ProcBackend default_backend;
        WorkerBackend* be =
            backend_override ? backend_override : &default_backend;

        telemetry::Span dispatch_span("fleet.dispatch");
        std::vector<WorkerLease> active;
        std::map<unsigned, unsigned> attempts;   // launches so far per shard
        std::vector<unsigned> quarantined;
        std::map<unsigned, std::string> quarantine_info; // last snapshot text

        const auto final_db_path = [&](unsigned k) {
            return opts.compress ? plan.shard_db_path(k) + ".zst"
                                 : plan.shard_db_path(k);
        };
        const auto log_path = [&](unsigned k) {
            return plan.shard_db_path(k) + ".worker.log";
        };

        // Failed attempt: re-queue with backoff or quarantine. Diagnostics
        // carry the worker's last reported metrics snapshot so a dead
        // worker's progress (was it even stepping?) survives in the log.
        const auto fail_shard = [&](const WorkerLease& lease,
                                    const std::string& why) {
            const unsigned k = lease.job.shard;
            const std::string snap = lease.snapshot.summary();
            std::remove(lease.job.payload_path.c_str());
            if (attempts[k] >= opts.max_retries) {
                logf(opts.log,
                     "fleet: shard %u/%u attempt %u FAILED (%s) — retry "
                     "budget exhausted, quarantining (last worker progress: "
                     "%s; worker log: %s)\n",
                     k, n, lease.job.attempt + 1, why.c_str(), snap.c_str(),
                     lease.job.log_path.c_str());
                quarantined.push_back(k);
                quarantine_info[k] = snap;
                if (telemetry::enabled())
                    telemetry::count("fleet.quarantined");
                return;
            }
            const double delay =
                opts.retry_backoff * double(1u << (attempts[k] - 1));
            logf(opts.log,
                 "fleet: shard %u/%u attempt %u failed (%s) — reassigning "
                 "in %.1fs (last worker progress: %s)\n",
                 k, n, lease.job.attempt + 1, why.c_str(), delay,
                 snap.c_str());
            queue.push_back({k, now_seconds() + delay});
            ++res.reassigned;
            if (telemetry::enabled()) telemetry::count("fleet.retries");
        };

        // Successful exit: the payload commits only as a complete Match.
        const auto try_commit = [&](const WorkerLease& lease) -> bool {
            const unsigned k = lease.job.shard;
            std::string payload;
            if (!read_file(lease.job.payload_path, payload)) {
                fail_shard(lease, "no payload");
                return false;
            }
            exp::ShardDbState state;
            try {
                state = exp::classify_shard_db(
                    payload, "fleet: shard " + std::to_string(k) + " payload",
                    plan, k, n);
            } catch (const util::ValidationError& e) {
                fail_shard(lease, e.what());
                return false;
            }
            if (state != exp::ShardDbState::Match) {
                fail_shard(lease, state == exp::ShardDbState::Missing
                                      ? "empty payload"
                                      : "truncated payload");
                return false;
            }
            const std::string dest = final_db_path(k);
            util::check(std::rename(lease.job.payload_path.c_str(),
                                    dest.c_str()) == 0,
                        "fleet: cannot move " + lease.job.payload_path +
                            " to " + dest);
            std::remove(lease.job.log_path.c_str());
            tally.add_database(payload, dest);
            ++landed;
            if (telemetry::enabled()) {
                telemetry::count("fleet.landed");
                // Fold the worker's final reported totals: approximate (the
                // last heartbeat precedes exit) but monotone and cheap.
                telemetry::count("fleet.worker_steps", lease.snapshot.steps);
                telemetry::count("fleet.worker_runs", lease.snapshot.runs);
            }
            double max_hw = 0;
            for (const auto& [key, gc] : tally.groups())
                max_hw = std::max(max_hw, stats::wilson(gc.masked(),
                                                        gc.total(),
                                                        spec.confidence)
                                              .half_width());
            logf(opts.log,
                 "fleet: shard %u/%u landed -> %s (%zu/%u shards, %llu "
                 "records, max masked-CI half-width %.3f)\n",
                 k, n, dest.c_str(), landed, n,
                 static_cast<unsigned long long>(tally.total_records()),
                 max_hw);
            return true;
        };

        // Fleet-wide live progress: every couple of heartbeat periods (but
        // no more often than every 5s) aggregate the active workers' latest
        // snapshots into one line — steps/sec, run and shard completion, an
        // ETA from the summed run rates, and the rolling CI trajectory.
        const double progress_interval =
            std::max(5.0, 2 * opts.heartbeat_interval);
        double last_progress = now_seconds();
        const auto emit_progress = [&]() {
            double steps_rate = 0, runs_rate = 0;
            std::uint64_t runs = 0, runs_planned = 0;
            unsigned reporting = 0;
            for (const WorkerLease& l : active) {
                if (!l.snapshot.valid()) continue;
                ++reporting;
                steps_rate += double(l.snapshot.steps) / l.snapshot.elapsed_s;
                runs_rate += double(l.snapshot.runs) / l.snapshot.elapsed_s;
                runs += l.snapshot.runs;
                runs_planned += l.snapshot.runs_planned;
            }
            if (reporting == 0) return; // bare heartbeats only — nothing yet
            double max_hw = 0;
            for (const auto& [key, gc] : tally.groups())
                max_hw = std::max(max_hw,
                                  stats::wilson(gc.masked(), gc.total(),
                                                spec.confidence)
                                      .half_width());
            // Remaining work = active leases' unfinished runs plus a
            // per-shard estimate for everything still queued.
            const double avg_planned =
                double(runs_planned) / double(reporting);
            const double remaining = double(runs_planned - runs) +
                                     avg_planned * double(queue.size());
            char eta[32];
            if (runs_rate > 0)
                std::snprintf(eta, sizeof eta, "%.0fs", remaining / runs_rate);
            else
                std::snprintf(eta, sizeof eta, "n/a");
            logf(opts.log,
                 "fleet: progress %zu/%u shards landed, %u worker(s) "
                 "reporting, %.3g steps/s, %llu/%llu active runs, ETA %s, "
                 "max masked-CI half-width %.3f\n",
                 landed, n, reporting, steps_rate,
                 static_cast<unsigned long long>(runs),
                 static_cast<unsigned long long>(runs_planned), eta, max_hw);
        };

        while (!queue.empty() || !active.empty()) {
            // Launch into free slots every shard whose backoff has expired.
            for (std::size_t qi = 0;
                 !free_slots.empty() && qi < queue.size();) {
                if (queue[qi].ready_at > now_seconds()) {
                    ++qi;
                    continue;
                }
                const unsigned k = queue[qi].shard;
                queue.erase(queue.begin() +
                            static_cast<std::ptrdiff_t>(qi));
                WorkerLease lease;
                lease.job.shard = k;
                lease.job.count = n;
                lease.job.attempt = attempts[k]++;
                lease.job.host = free_slots.back();
                lease.job.spec_path = opts.spec_path;
                lease.job.compress = opts.compress;
                lease.job.heartbeat_interval = opts.heartbeat_interval;
                lease.job.payload_path = final_db_path(k) + ".part" +
                                         std::to_string(lease.job.attempt);
                lease.job.log_path = log_path(k);
                const WorkerSpawn spawn =
                    opts.backend == "ssh"
                        ? ssh_spawn(lease.job, opts.remote_cmd)
                        : local_spawn(lease.job, exe);
                lease.worker_id = be->launch(spawn);
                lease.started = lease.last_signal = now_seconds();
                lease.log_bytes = 0;
                ++res.launched;
                logf(opts.log, "fleet: shard %u/%u attempt %u -> worker %d%s%s\n",
                     k, n, lease.job.attempt + 1, lease.worker_id,
                     lease.job.host.empty() ? "" : " on ",
                     lease.job.host.c_str());
                // Test/CI hook: a deterministic mid-campaign worker death.
                if (opts.kill_shard >= 0 &&
                    k == static_cast<unsigned>(opts.kill_shard) &&
                    lease.job.attempt == 0) {
                    logf(opts.log,
                         "fleet: killing worker %d (--kill-shard=%d)\n",
                         lease.worker_id, opts.kill_shard);
                    be->kill(lease.worker_id);
                }
                free_slots.pop_back();
                active.push_back(lease);
            }

            // Poll active leases: exits commit or fail; silence kills. Each
            // stderr growth re-parses the log tail for the worker's latest
            // `hb` metrics snapshot (fleet-wide progress + diagnostics).
            const auto refresh_snapshot = [&](WorkerLease& lease) {
                parse_worker_snapshot(read_tail(lease.job.log_path, 8192),
                                      lease.snapshot);
            };
            for (std::size_t i = 0; i < active.size();) {
                WorkerLease& lease = active[i];
                const WorkerBackend::Status st = be->poll(lease.worker_id);
                bool release = false;
                if (!st.running) {
                    refresh_snapshot(lease); // catch the final heartbeats
                    if (st.exit_code == 0)
                        try_commit(lease);
                    else
                        fail_shard(lease, "worker exit code " +
                                              std::to_string(st.exit_code));
                    release = true;
                } else {
                    const std::uint64_t sz = file_size(lease.job.log_path);
                    if (sz != lease.log_bytes) {
                        lease.log_bytes = sz;
                        lease.last_signal = now_seconds();
                        refresh_snapshot(lease);
                    } else if (now_seconds() - lease.last_signal >
                               opts.heartbeat_timeout) {
                        be->kill(lease.worker_id);
                        fail_shard(lease,
                                   "heartbeat timeout (" +
                                       std::to_string(opts.heartbeat_timeout) +
                                       "s of silence; last progress: " +
                                       lease.snapshot.summary() + ")");
                        release = true;
                    }
                }
                if (release) {
                    free_slots.push_back(lease.job.host);
                    active.erase(active.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }

            if (!active.empty() &&
                now_seconds() - last_progress >= progress_interval) {
                last_progress = now_seconds();
                emit_progress();
            }

            if (!queue.empty() || !active.empty())
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    active.empty() ? std::min(opts.poll_interval, 0.05)
                                   : opts.poll_interval));
        }

        if (!quarantined.empty()) {
            std::sort(quarantined.begin(), quarantined.end());
            std::string list, snaps;
            for (unsigned k : quarantined) {
                list += (list.empty() ? "" : ", ") + std::to_string(k);
                snaps += "; shard " + std::to_string(k) + " last progress: " +
                         quarantine_info[k];
            }
            throw util::ValidationError(
                "fleet: shard(s) " + list + " quarantined after " +
                std::to_string(opts.max_retries) +
                " failed attempts each — poison shards; inspect "
                "<out>_shard<k>.jsonl.worker.log, fix the cause, and re-run "
                "(landed shards resume)" + snaps);
        }
    }

    // ---- final merge: ONE resume run of the ordinary driver ------------
    // Every shard probes as Match, so merge + report reuse the exact
    // single-process machinery — byte-identity is inherited, not re-proven.
    exp::DriverOptions dopts;
    dopts.resume = true;
    dopts.compress_shards = opts.compress;
    dopts.log = opts.log;
    res.final = exp::run_experiment(plan, dopts);

    // The merge ran in-process, so its merge/report spans and counters sit
    // in this registry alongside the fleet.* aggregates — one fleet-wide
    // export covers controller and (committed) worker totals.
    if (want_export) {
        const telemetry::Provenance prov{"serep fleet",
                                         plan.spec_hash_hex()};
        if (!opts.metrics_out.empty()) {
            telemetry::write_metrics_file(opts.metrics_out, prov);
            logf(opts.log, "fleet: metrics -> %s\n",
                 opts.metrics_out.c_str());
        }
        if (!opts.trace_out.empty()) {
            telemetry::write_trace_file(opts.trace_out);
            logf(opts.log, "fleet: trace -> %s\n", opts.trace_out.c_str());
        }
    }
    return res;
}

} // namespace serep::fleet
