// Fleet controller (layer 3 of src/fleet/): fan one experiment's shards out
// to workers, stream their databases back, survive dead workers, merge.
//
// The controller is a lease/poll loop over the WorkerBackend interface:
//
//   probe    every shard already landed on disk (resume: Match) is folded
//            straight into the live tally and never launched
//   lease    free worker slots claim pending shards; a worker is `serep run
//            <spec> --shard=k/n --shard-stdout [--compress]` on some host
//   poll     exited workers commit (payload classifies as a complete Match
//            for this spec's shard) or fail (nonzero exit, truncated or
//            foreign payload); silent workers past the heartbeat timeout
//            are killed and count as failed
//   retry    failed shards re-queue with exponential backoff, up to
//            max_retries attempts; beyond that the shard is quarantined and
//            the run ends in util::ValidationError naming the poison shards
//   live     each committed shard folds into a rolling stats::OutcomeTally;
//            the log shows CI convergence mid-flight, and the partial shard
//            set on disk is readable by `serep report --partial` at any time
//   merge    when every shard has landed, the final merge + report is ONE
//            resume run of the ordinary driver (exp::run_experiment) — every
//            shard probes as Match, so the merged CSV/JSONL/report bytes are
//            identical to the single-process run by construction, and the
//            spec-hash refusal machinery guards the fleet path for free
//
// Determinism note: a shard database's bytes depend only on (spec, k, n) —
// not on which host ran it, how many times it was retried, or in what order
// shards finished — so the fleet's merged outputs are byte-identical to
// `serep run spec.json` (gated in CI fleet-e2e with a worker killed
// mid-campaign).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/driver.hpp"
#include "fleet/backend.hpp"

namespace serep::fleet {

struct FleetOptions {
    std::string backend = "local-proc"; ///< "local-proc" / "ssh"
    std::vector<std::string> hosts;     ///< ssh destinations
    /// Concurrent workers; 0 = auto (local-proc: min(shards, 8); ssh: one
    /// per host x workers_per_host).
    unsigned workers = 0;
    unsigned workers_per_host = 1;
    double heartbeat_interval = 1.0; ///< worker `hb` period (seconds)
    double heartbeat_timeout = 30.0; ///< stderr silence -> presumed dead
    unsigned max_retries = 3;        ///< attempts per shard before quarantine
    double retry_backoff = 0.5;      ///< first retry delay; doubles per attempt
    bool compress = true;            ///< stream + land shard DBs zstd-framed
    std::string serep_exe;  ///< local worker binary; "" = /proc/self/exe
    std::string remote_cmd = "serep"; ///< serep spelling on ssh hosts
    std::string spec_path;  ///< REQUIRED: the spec file workers consume
    /// Test/CI hook: SIGKILL the first attempt at this shard right after
    /// launch, forcing one reassignment. -1 = off.
    int kill_shard = -1;
    double poll_interval = 0.2; ///< controller poll period (seconds)
    std::FILE* log = stdout;
    /// Non-empty: enable telemetry and write a fleet-wide merged
    /// metrics.json here (controller spans + fleet.* counters + the
    /// committed workers' snapshot totals). Out of band, like the driver's.
    std::string metrics_out;
    /// Non-empty: enable telemetry and write the controller's Chrome
    /// trace-event JSON here.
    std::string trace_out;
};

struct FleetResult {
    std::size_t shards_total = 0;
    std::size_t resumed = 0;    ///< landed before any worker launched
    std::size_t launched = 0;   ///< worker launches, including retries
    std::size_t reassigned = 0; ///< failed attempts that were re-queued
    exp::DriverResult final;    ///< the closing merge + report run
};

/// Run the experiment across the fleet. `backend_override` substitutes the
/// transport (tests inject fakes); null = a ProcBackend driving the argv
/// family opts.backend names. Throws util::UsageError on bad options,
/// util::ValidationError when shards exhaust their retry budget (poison
/// quarantine) or on resume/spec-hash conflicts, util::Error on I/O.
FleetResult run_fleet(exp::ExperimentPlan& plan, const FleetOptions& opts,
                      WorkerBackend* backend_override = nullptr);

/// Seed FleetOptions from the spec's `fleet` block (CLI flags override the
/// result field by field in tools/serep.cpp).
FleetOptions fleet_options_from_spec(const exp::ExperimentSpec& spec);

} // namespace serep::fleet
