// Fleet worker protocol (layer 1 of src/fleet/): what a shard assignment
// looks like on the wire, independent of any transport.
//
// A worker IS `serep run <spec> --shard=k/n --shard-stdout` — the same
// binary, the same driver, no bespoke worker daemon. The protocol is three
// byte streams:
//
//   stdin   the experiment spec (ssh backend: `serep run -` reads it here,
//           so nothing needs to be staged on the remote host)
//   stdout  the completed shard database, zstd-framed when --compress —
//           exactly the bytes that land at <out>_shard<k>.jsonl[.zst]
//   stderr  progress logs plus one `hb <i>` line per --heartbeat interval;
//           the controller watches this stream *grow* to tell a slow worker
//           from a hung one
//
// Both backends reduce to argv construction over this contract —
// local_spawn() execs the controller's own binary, ssh_spawn() wraps the
// remote spelling in `ssh -o BatchMode=yes <host> …` — which is what makes
// the retry/reassign state machine (src/fleet/fleet.cpp) unit-testable with
// a scripted fake backend: nothing above this layer knows about processes.
//
// Payload validation is exp::classify_shard_db: a returned payload commits
// only when it classifies as a complete Match for THIS spec's shard k/n —
// truncated streams from killed workers re-queue, foreign or spec-mismatched
// payloads count against the shard's retry budget and end in quarantine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace serep::fleet {

/// One shard assignment, resolved to everything a backend needs to run it.
struct WorkerJob {
    unsigned shard = 0;
    unsigned count = 1;
    unsigned attempt = 0;    ///< 0-based; names the payload tmp file
    std::string host;        ///< ssh destination; "" for local-proc
    std::string spec_path;   ///< spec JSON on the controller host
    bool compress = true;    ///< stream the shard DB zstd-framed
    double heartbeat_interval = 1.0; ///< worker-side `hb` period (seconds)
    std::string payload_path; ///< controller file the worker's stdout fills
    std::string log_path;     ///< controller file the worker's stderr fills
};

/// A fully resolved process invocation for WorkerBackend::launch.
struct WorkerSpawn {
    std::vector<std::string> argv;
    std::string stdin_path;  ///< "" = /dev/null
    std::string stdout_path;
    std::string stderr_path;
};

/// Spawn for the local-proc backend: a `serep run` child of `serep_exe`
/// (normally self_exe_path()), spec passed as a file path.
WorkerSpawn local_spawn(const WorkerJob& job, const std::string& serep_exe);

/// Spawn for the ssh backend: `ssh -o BatchMode=yes <host> '<remote_cmd>
/// run - …'`, with the spec fed over stdin so the remote host needs only a
/// serep binary.
WorkerSpawn ssh_spawn(const WorkerJob& job, const std::string& remote_cmd);

/// The `run` arguments both spawns share (everything after the spec
/// operand). Exposed for tests asserting the protocol without a backend.
std::vector<std::string> worker_run_args(const WorkerJob& job);

/// Absolute path of the running binary (/proc/self/exe), the default
/// local-proc worker executable.
std::string self_exe_path();

/// A worker's last reported telemetry snapshot, carried on its `hb` beacon
/// lines as `hb <i> {"elapsed_s":…,"runs":…,"runs_planned":…,"steps":…}`
/// (telemetry::progress_json). Workers without telemetry (heartbeat off, or
/// an older binary) emit bare `hb <i>` lines and the snapshot stays invalid
/// — every consumer treats that as "no metrics snapshot".
struct WorkerSnapshot {
    double elapsed_s = 0;
    std::uint64_t runs = 0;         ///< fault runs completed
    std::uint64_t runs_planned = 0; ///< fault runs this shard will execute
    std::uint64_t steps = 0;        ///< instructions retired so far
    bool valid() const noexcept { return elapsed_s > 0; }
    /// One-phrase rendering for kill/quarantine diagnostics, e.g.
    /// "12/40 runs, 1.2M steps/s at 3.5s" or "no metrics snapshot".
    std::string summary() const;
};

/// Parse the LAST snapshot-carrying `hb` line in a worker log tail.
/// Returns false (leaving `out` untouched) when no line parses — bare
/// heartbeats, partial trailing writes, and arbitrary log noise are all
/// tolerated, so callers can feed any suffix of the stderr file.
bool parse_worker_snapshot(const std::string& log_tail, WorkerSnapshot& out);

/// One active claim of a shard by a worker.
struct WorkerLease {
    WorkerJob job;
    int worker_id = -1;          ///< backend handle
    double started = 0;          ///< monotonic seconds at launch
    double last_signal = 0;      ///< last observed stderr growth (heartbeat)
    std::uint64_t log_bytes = 0; ///< stderr size at the last poll
    WorkerSnapshot snapshot;     ///< last parsed `hb` metrics snapshot
};

} // namespace serep::fleet
