// NPB-family benchmark suite for the reproduction.
//
// Eleven kernels mirroring the NAS Parallel Benchmark families (scaled to
// simulator-friendly sizes, see DESIGN.md §5), each emitted for both ISA
// profiles and in Serial / OMP / MPI variants. Every kernel self-verifies
// against a host-computed reference checksum and prints NPB-style
// "VERIFICATION SUCCESSFUL/FAILED" plus the checksum bits (so silent data
// corruption shows up in the console/memory comparison).
//
// Availability matches the paper: OMP/serial = {BT CG DC EP FT IS LU MG SP
// UA}, MPI = {BT CG DT EP FT IS LU MG SP}; BT and SP have no dual-core MPI
// configuration (square process counts) — 65 scenarios per ISA, 130 total.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kasm/image.hpp"
#include "os/klayout.hpp"
#include "sim/machine.hpp"

namespace serep::npb {

enum class App : std::uint8_t { BT, CG, DC, DT, EP, FT, IS, LU, MG, SP, UA };
enum class Api : std::uint8_t { Serial, OMP, MPI };
enum class Klass : std::uint8_t { Mini, S, W };

inline constexpr App kAllApps[] = {App::BT, App::CG, App::DC, App::DT,
                                   App::EP, App::FT, App::IS, App::LU,
                                   App::MG, App::SP, App::UA};

const char* app_name(App a) noexcept;
const char* api_name(Api a) noexcept;
const char* klass_name(Klass k) noexcept;

/// Does this (app, api) combination exist (paper §3.3.2)?
bool app_has_api(App app, Api api) noexcept;
/// MPI core-count restriction: BT and SP require square process counts.
bool mpi_cores_allowed(App app, unsigned cores) noexcept;

/// One fault-injection scenario (a cell of Figures 2/3).
struct Scenario {
    isa::Profile isa = isa::Profile::V7;
    App app = App::EP;
    Api api = Api::Serial;
    unsigned cores = 1; ///< machine cores; MPI ranks == cores, OMP team == cores
    Klass klass = Klass::S;
    bool contract_fma = true; ///< codegen flag ablation (paper future work)

    std::string name() const;
};

/// The paper's 130 scenarios (65 per ISA).
std::vector<Scenario> paper_scenarios(Klass k);

/// Build the full linked image (kernel + runtimes + application).
struct BuiltProgram {
    std::shared_ptr<const kasm::Image> image;
    os::KLayout layout;
    unsigned procs; ///< address spaces (ranks for MPI, 1 otherwise)
};
BuiltProgram build_program(const Scenario& s);

/// Build + boot a ready-to-run machine for the scenario.
sim::Machine make_machine(const Scenario& s, bool profile);

/// Host-side reference checksums (baked into the guest for verification).
double ref_checksum_f64(App app, Klass k);
std::uint32_t ref_checksum_u32(App app, Klass k);
/// True when the app verifies an exact integer checksum (IS, DC, DT).
bool uses_u32_checksum(App app) noexcept;

} // namespace serep::npb
