// Shared infrastructure for the NPB kernel emitters (internal header).
#pragma once

#include <cstdint>

#include "kasm/assembler.hpp"
#include "kgen/kgen.hpp"
#include "npb/npb.hpp"

namespace serep::npb {

/// Per-class workload sizes.
struct Params {
    unsigned ep_n;
    unsigned is_n, is_buckets;
    unsigned cg_g, cg_iters;      // grid g, matrix n = g*g
    unsigned mg_m, mg_sweeps;     // cube edge m
    unsigned ft_m, ft_iters;
    unsigned lu_n, lu_iters;
    unsigned sp_n, sp_iters;
    unsigned bt_n, bt_iters;
    unsigned dt_vnodes, dt_words; // virtual task nodes, words per block
    unsigned dc_n;
    unsigned ua_nodes, ua_elems, ua_iters;
};

const Params& params_for(Klass k) noexcept;

/// Host mirror of the guest 32-bit LCG.
constexpr std::uint32_t lcg(std::uint32_t x) noexcept {
    return x * 1103515245u + 12345u;
}
/// Per-index derived seed (identical in guest emitters).
constexpr std::uint32_t seed_at(std::uint32_t seed, std::uint32_t i) noexcept {
    return (seed + i * 2654435761u);
}
/// Canonical double in [0, 1) from an LCG state (guest mirrors this).
constexpr double unit_double(std::uint32_t s) noexcept {
    return static_cast<double>((s >> 8) & 0xFFFFFF) * (1.0 / 16777216.0);
}

/// Emission context shared by all kernels.
struct Ctx {
    kasm::Assembler& a;
    kgen::KGen g;
    Api api;
    const Params& P;

    Ctx(kasm::Assembler& a, Api api, const Params& p, kgen::CodegenOptions opts = {})
        : a(a), g(a, opts), api(api), P(p) {}

    /// Call phase function `fn(arg, tid, nth)` according to the API:
    /// serial -> (arg, 0, 1); OMP -> team via omp_parallel; MPI -> (arg,
    /// rank, size) directly on every rank.
    void run_phase(const char* fn, std::int64_t arg = 0);

    /// Emit the API prologue in main (mpi_init / omp_init).
    void main_prologue();

    /// Verification tail (main thread / rank 0 prints; everyone exits 0):
    /// |cs - expected|^2 <= bound2 using guest FP only.
    void verify_f64(kgen::FV cs, double expected, double rel_tol = 1e-8);
    void verify_u32(kasm::Reg cs, std::uint32_t expected);

    /// Guest loop filling `n` doubles at symbol `sym` with
    /// unit_double(lcg(seed_at(seed, i))) * scale. Replicated on all ranks.
    void fill_f64(const char* sym, unsigned n, std::uint32_t seed, double scale);
    /// Host mirror for references.
    static double fill_value(std::uint32_t seed, std::uint32_t i, double scale) {
        return unit_double(lcg(seed_at(seed, i))) * scale;
    }

    /// Reduce a per-thread/rank partial FP sum into `cs`:
    ///  * Serial: cs = partials[0]
    ///  * OMP: cs = sum of omp_partials[0..nth)
    ///  * MPI: each rank wrote partials[0]; allreduce -> cs (all ranks)
    /// `partial_sym` must have 8 doubles of space.
    void combine_partials_f64(kgen::FV cs, const char* partial_sym);

    /// Same for u32 partials at `partial_sym` (8 words, u32 each).
    void combine_partials_u32(kasm::Reg cs, const char* partial_sym);

    /// MPI only (no-op otherwise): make every rank's row-partition of
    /// `sym` visible everywhere (rotating bcast; partition = par_bounds
    /// over nrows, matching what the compute phases used).
    void allgather(const char* sym, unsigned nrows, unsigned row_bytes);

    /// MPI only (no-op otherwise): exchange only the boundary rows/planes
    /// of each rank's par_bounds partition with the owning neighbours —
    /// the halo pattern real stencil codes use (O(surface) traffic instead
    /// of allgather's O(volume)). Requires a +/-1-row stencil.
    void halo_exchange(const char* sym, unsigned nrows, unsigned row_bytes);

private:
    void emit_print_sym(const char* sym, unsigned len);
    void skip_unless_rank0_begin(kasm::Label& skip);
};

/// Common data symbols every program gets (verification strings, partials).
void emit_common_data(kasm::Assembler& a);

// Kernel emitters: emit all functions + the body of main (after prologue);
// each ends with verification and SYS_EXIT(0). Host reference mirrors.
void emit_ep(Ctx& c);
double ref_ep(const Params& p);
void emit_is(Ctx& c);
std::uint32_t ref_is(const Params& p);
void emit_cg(Ctx& c);
double ref_cg(const Params& p);
void emit_mg(Ctx& c);
double ref_mg(const Params& p);
void emit_ft(Ctx& c);
double ref_ft(const Params& p);
void emit_lu(Ctx& c);
double ref_lu(const Params& p);
void emit_sp(Ctx& c);
double ref_sp(const Params& p);
void emit_bt(Ctx& c);
double ref_bt(const Params& p);
void emit_dt(Ctx& c);
std::uint32_t ref_dt(const Params& p);
void emit_dc(Ctx& c);
std::uint32_t ref_dc(const Params& p);
void emit_ua(Ctx& c);
double ref_ua(const Params& p);

} // namespace serep::npb
