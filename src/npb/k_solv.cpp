// LU, SP, BT kernels: alternating-direction line solvers on an n x n grid
// (Jacobi-style outer coupling keeps serial/OMP/MPI numerics identical).
//  * LU: constant-coefficient tridiagonal Thomas solves (SSOR-family).
//  * SP: variable-diagonal tridiagonal solves (scalar pentadiagonal family;
//    the diagonal varies per point, adding loads and FLOPs).
//  * BT: 2x2 block-tridiagonal solves (block inversions per point; the
//    block size is scaled down from NPB's 5x5 — documented).
#include <vector>

#include "npb/common.hpp"
#include "os/abi.hpp"

namespace serep::npb {

using isa::Cond;
using kasm::ModTag;
using kasm::Reg;

void emit_idx_imm_last(Ctx& c, Reg dir, Reg l, unsigned n);

namespace {

enum class Solver { LU, SP, BT };

/// idx(l, k) into r12 (r3 scratch): dir==0 -> l*n + k ; dir==1 -> k*n + l
void emit_idx(Ctx& c, Reg dir, Reg l, Reg k, unsigned n) {
    auto& a = c.a;
    auto row = c.a.newl(), done = c.a.newl();
    a.cmpi(dir, 0);
    a.b(Cond::EQ, row);
    a.movi(3, n);
    a.mul(12, k, 3);
    a.add(12, 12, l);
    a.b(done);
    a.bind(row);
    a.movi(3, n);
    a.mul(12, l, 3);
    a.add(12, 12, k);
    a.bind(done);
}

struct SolverNames {
    const char* u;
    const char* v;
    const char* cp;
    const char* f;
    const char* sweep;
    const char* sum;
};

SolverNames names_of(Solver s) {
    switch (s) {
        case Solver::LU: return {"lu_u", "lu_v", "lu_cp", nullptr, "lu_sweep", "lu_sum"};
        case Solver::SP: return {"sp_u", "sp_v", "sp_cp", "sp_f", "sp_sweep", "sp_sum"};
        case Solver::BT: return {"bt_u", "bt_v", "bt_cp", nullptr, "bt_sweep", "bt_sum"};
    }
    return {};
}

/// LU / SP scalar tridiagonal sweep along direction `arg`.
void emit_scalar_sweep(Ctx& c, Solver sv, unsigned n, unsigned seed_f) {
    auto& a = c.a;
    auto& g = c.g;
    const SolverNames nm = names_of(sv);
    (void)seed_f;
    a.func(nm.sweep, ModTag::APP);
    g.enter_frame(8);
    const auto dir = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
               hi = g.ivar();
    a.mov(dir, 0);
    a.mov(tid, 1);
    a.mov(nth, 2);
    if (c.api == Api::MPI) {
        // column sweeps write scattered columns; run them replicated
        auto part = a.newl();
        a.cmpi(dir, 1);
        a.b(Cond::NE, part);
        a.movi(tid, 0);
        a.movi(nth, 1);
        a.bind(part);
    }
    a.movi(lo, n);
    a.mov(12, lo);
    g.par_bounds(lo, hi, 12, tid, nth);
    // per-thread scratch: cp[n], dp[n]
    const auto cpb = g.ivar();
    a.movi_sym(cpb, nm.cp);
    a.movi(12, 2 * n * 8);
    a.mul(12, tid, 12);
    a.add(cpb, cpb, 12);
    g.release(tid);
    g.release(nth);
    const auto inb = g.ivar(), outb = g.ivar(), l = g.ivar(), k = g.ivar();
    {
        auto d0 = a.newl(), dsel = a.newl();
        a.cmpi(dir, 0);
        a.b(Cond::EQ, d0);
        a.movi_sym(inb, nm.v);
        a.movi_sym(outb, nm.u);
        a.b(dsel);
        a.bind(d0);
        a.movi_sym(inb, nm.u);
        a.movi_sym(outb, nm.v);
        a.bind(dsel);
    }
    auto d = g.fv(), m = g.fv(), t = g.fv(), bco = g.fv(), one = g.fv(),
         quarter = g.fv();
    g.fli(one, 1.0);
    g.fli(quarter, 0.25);
    g.for_up(l, 0, hi, [&] {
        auto lskip = a.newl();
        a.cmp(l, lo);
        a.b(Cond::LT, lskip);
        // ---- forward elimination ----
        g.for_up_imm(k, 0, n, [&] {
            // rhs d = 1 + 0.25*(perpendicular neighbours)
            g.fmov(d, one);
            auto no_prev = a.newl(), no_next = a.newl();
            a.cmpi(l, 0);
            a.b(Cond::EQ, no_prev);
            emit_idx(c, dir, l, k, n);
            auto off = a.newl();
            (void)off;
            // neighbour at line l-1: dir0 -> idx-n ; dir1 -> idx-1
            a.cmpi(dir, 0);
            auto sub1 = a.newl(), subbed = a.newl();
            a.b(Cond::NE, sub1);
            a.subi(12, 12, n);
            a.b(subbed);
            a.bind(sub1);
            a.subi(12, 12, 1);
            a.bind(subbed);
            g.fld(t, inb, 12);
            g.fmac(d, t, quarter);
            a.bind(no_prev);
            a.cmpi(l, n - 1);
            a.b(Cond::GE, no_next);
            emit_idx(c, dir, l, k, n);
            a.cmpi(dir, 0);
            auto add1 = a.newl(), added = a.newl();
            a.b(Cond::NE, add1);
            a.addi(12, 12, n);
            a.b(added);
            a.bind(add1);
            a.addi(12, 12, 1);
            a.bind(added);
            g.fld(t, inb, 12);
            g.fmac(d, t, quarter);
            a.bind(no_next);
            // diagonal coefficient
            if (sv == Solver::SP) {
                emit_idx(c, dir, l, k, n);
                a.movi_sym(3, nm.f);
                g.fld(bco, 3, 12);
                auto half = g.fv();
                g.fli(half, 0.5);
                g.fmul(bco, bco, half);
                g.ffree(half);
                auto fourv = g.fv();
                g.fli(fourv, 4.0);
                g.fadd(bco, bco, fourv);
                g.ffree(fourv);
            } else {
                g.fli(bco, 4.0);
            }
            auto first = a.newl(), fdone = a.newl();
            a.cmpi(k, 0);
            a.b(Cond::EQ, first);
            // denom = b + cp[k-1] ; m = 1/denom
            a.subi(3, k, 1);
            g.fld(t, cpb, 3);
            g.fadd(bco, bco, t);
            g.fdiv(m, one, bco);
            // d += dp[k-1] ; dp[k] = d*m
            a.addi(3, k, n - 1);
            g.fld(t, cpb, 3);
            g.fadd(d, d, t);
            a.b(fdone);
            a.bind(first);
            g.fdiv(m, one, bco);
            a.bind(fdone);
            // cp[k] = -m ; dp[k] = d*m
            g.fneg(t, m);
            g.fst(t, cpb, k);
            g.fmul(d, d, m);
            a.addi(3, k, n);
            g.fst(d, cpb, 3);
        });
        // ---- back substitution ----
        // x[n-1] = dp[n-1]
        a.movi(3, 2 * n - 1);
        g.fld(d, cpb, 3); // d = x_next
        emit_idx_imm_last(c, dir, l, n);
        g.fst(d, outb, 12);
        a.movi(k, n - 2);
        auto bloop = a.newl(), bdone = a.newl();
        a.bind(bloop);
        a.cmpi(k, 0);
        a.b(Cond::LT, bdone);
        // x = dp[k] - cp[k]*x_next
        g.fld(t, cpb, k);
        g.fmul(t, t, d); // cp[k]*x_next
        a.addi(3, k, n);
        g.fld(m, cpb, 3);
        g.fsub(d, m, t);
        emit_idx(c, dir, l, k, n);
        g.fst(d, outb, 12);
        a.subi(k, k, 1);
        a.b(bloop);
        a.bind(bdone);
        a.bind(lskip);
    });
    g.ffree(d);
    g.ffree(m);
    g.ffree(t);
    g.ffree(bco);
    g.ffree(one);
    g.ffree(quarter);
    g.leave_frame();
    a.ret();
}

} // namespace

/// helper used above: idx(l, n-1) into r12
void emit_idx_imm_last(Ctx& c, Reg dir, Reg l, unsigned n) {
    auto& a = c.a;
    auto row = a.newl(), done = a.newl();
    a.cmpi(dir, 0);
    a.b(Cond::EQ, row);
    a.movi(3, n);
    a.movi(12, n - 1);
    a.mul(12, 12, 3);
    a.add(12, 12, l);
    a.b(done);
    a.bind(row);
    a.movi(3, n);
    a.mul(12, l, 3);
    a.addi(12, 12, n - 1);
    a.bind(done);
}

namespace {

/// Shared emitter for the element-sum checksum phase (partition elements).
void emit_sum_phase(Ctx& c, const char* fname, const char* array, unsigned total) {
    auto& a = c.a;
    auto& g = c.g;
    a.func(fname, ModTag::APP);
    g.enter_frame(3);
    const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
               i = g.ivar(), b = g.ivar();
    a.mov(tid, 1);
    a.mov(nth, 2);
    a.movi(i, total);
    g.par_bounds(lo, hi, i, tid, nth);
    a.movi_sym(b, array);
    auto sum = g.fv(), t = g.fv();
    g.fli(sum, 0.0);
    g.for_up(i, 0, hi, [&] {
        auto skip = a.newl();
        a.cmp(i, lo);
        a.b(Cond::LT, skip);
        g.fld(t, b, i);
        g.fadd(sum, sum, t);
        a.bind(skip);
    });
    a.movi_sym(b, "np_partials");
    g.fst(sum, b, tid);
    g.ffree(sum);
    g.ffree(t);
    g.leave_frame();
    a.ret();
}

void emit_scalar_solver(Ctx& c, Solver sv, unsigned n, unsigned iters,
                        double expected) {
    auto& a = c.a;
    auto& g = c.g;
    const SolverNames nm = names_of(sv);
    a.udata().align(8);
    a.data_sym(nm.u, a.udata().reserve(8 * n * n));
    a.data_sym(nm.v, a.udata().reserve(8 * n * n));
    a.data_sym(nm.cp, a.udata().reserve(8 * 2 * n * 8));
    if (nm.f) a.data_sym(nm.f, a.udata().reserve(8 * n * n));
    auto to_main = a.newl();
    a.b(to_main);
    emit_scalar_sweep(c, sv, n, 0);
    emit_sum_phase(c, nm.sum, nm.u, n * n);
    a.bind(to_main);
    g.enter_frame(6);
    c.fill_f64(nm.u, n * n, sv == Solver::LU ? 71 : 72, 1.0);
    if (nm.f) c.fill_f64(nm.f, n * n, 73, 1.0);
    for (unsigned it = 0; it < iters; ++it) {
        c.run_phase(nm.sweep, 0);       // rows: u -> v
        c.allgather(nm.v, n, n * 8);    // row blocks are contiguous
        c.run_phase(nm.sweep, 1);       // cols: v -> u (replicated on MPI)
    }
    c.run_phase(nm.sum);
    auto cs = g.fv();
    c.combine_partials_f64(cs, "np_partials");
    c.verify_f64(cs, expected);
    g.ffree(cs);
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_scalar_solver(Solver sv, unsigned n, unsigned iters) {
    std::vector<double> u(n * n), v(n * n), f(n * n);
    for (unsigned i = 0; i < n * n; ++i)
        u[i] = Ctx::fill_value(sv == Solver::LU ? 71 : 72, i, 1.0);
    for (unsigned i = 0; i < n * n; ++i) f[i] = Ctx::fill_value(73, i, 1.0);
    std::vector<double> cp(n), dp(n);
    auto sweep = [&](const std::vector<double>& in, std::vector<double>& out,
                     int dir) {
        for (unsigned l = 0; l < n; ++l) {
            for (unsigned k = 0; k < n; ++k) {
                const unsigned idx = dir == 0 ? l * n + k : k * n + l;
                double d = 1.0;
                if (l > 0) d += in[dir == 0 ? idx - n : idx - 1] * 0.25;
                if (l < n - 1) d += in[dir == 0 ? idx + n : idx + 1] * 0.25;
                double b = 4.0;
                if (sv == Solver::SP) b = f[idx] * 0.5 + 4.0;
                double m;
                if (k == 0) {
                    m = 1.0 / b;
                } else {
                    m = 1.0 / (b + cp[k - 1]);
                    d += dp[k - 1];
                }
                cp[k] = -m;
                dp[k] = d * m;
            }
            double x = dp[n - 1];
            out[dir == 0 ? l * n + (n - 1) : (n - 1) * n + l] = x;
            for (int k = static_cast<int>(n) - 2; k >= 0; --k) {
                x = dp[k] - cp[k] * x;
                out[dir == 0 ? l * n + k : k * n + l] = x;
            }
        }
    };
    for (unsigned it = 0; it < iters; ++it) {
        sweep(u, v, 0);
        sweep(v, u, 1);
    }
    double cs = 0;
    for (unsigned i = 0; i < n * n; ++i) cs += u[i];
    return cs;
}

} // namespace

void emit_lu(Ctx& c) {
    emit_scalar_solver(c, Solver::LU, c.P.lu_n, c.P.lu_iters, ref_lu(c.P));
}
double ref_lu(const Params& p) {
    return ref_scalar_solver(Solver::LU, p.lu_n, p.lu_iters);
}

void emit_sp(Ctx& c) {
    emit_scalar_solver(c, Solver::SP, c.P.sp_n, c.P.sp_iters, ref_sp(c.P));
}
double ref_sp(const Params& p) {
    return ref_scalar_solver(Solver::SP, p.sp_n, p.sp_iters);
}

// ---------------------------------------------------------------- BT

namespace {

void emit_bt_sweep(Ctx& c, unsigned n) {
    auto& a = c.a;
    auto& g = c.g;
    a.func("bt_sweep", ModTag::APP);
    g.enter_frame(14);
    const auto dir = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
               hi = g.ivar();
    a.mov(dir, 0);
    a.mov(tid, 1);
    a.mov(nth, 2);
    if (c.api == Api::MPI) {
        auto part = a.newl();
        a.cmpi(dir, 1);
        a.b(Cond::NE, part);
        a.movi(tid, 0);
        a.movi(nth, 1);
        a.bind(part);
    }
    a.movi(lo, n);
    a.mov(12, lo);
    g.par_bounds(lo, hi, 12, tid, nth);
    // per-thread scratch: CP (4 doubles) + DP (2 doubles) per point
    const auto cpb = g.ivar();
    a.movi_sym(cpb, "bt_cp");
    a.movi(12, 6 * n * 8);
    a.mul(12, tid, 12);
    a.add(cpb, cpb, 12);
    g.release(tid);
    g.release(nth);
    const auto inb = g.ivar(), outb = g.ivar(), l = g.ivar(), k = g.ivar();
    {
        auto d0 = a.newl(), dsel = a.newl();
        a.cmpi(dir, 0);
        a.b(Cond::EQ, d0);
        a.movi_sym(inb, "bt_v");
        a.movi_sym(outb, "bt_u");
        a.b(dsel);
        a.bind(d0);
        a.movi_sym(inb, "bt_u");
        a.movi_sym(outb, "bt_v");
        a.bind(dsel);
    }
    // FVs: m00 m01 m10 m11, det, d0v d1v, t, x0, x1, quarter, one
    auto m00 = g.fv(), m01 = g.fv(), m10 = g.fv(), m11 = g.fv(), det = g.fv(),
         d0v = g.fv(), d1v = g.fv(), t = g.fv(), x0 = g.fv(), x1 = g.fv(),
         quarter = g.fv(), one = g.fv();
    g.fli(quarter, 0.25);
    g.fli(one, 1.0);
    // CP slots: 6k..6k+3 ; DP slots: 6k+4, 6k+5 (interleaved per point)
    g.for_up(l, 0, hi, [&] {
        auto lskip = a.newl();
        a.cmp(l, lo);
        a.b(Cond::LT, lskip);
        g.for_up_imm(k, 0, n, [&] {
            // rhs vector d = (1,1) + 0.25 * (neighbour vectors)
            g.fmov(d0v, one);
            g.fmov(d1v, one);
            for (int comp = 0; comp < 2; ++comp) {
                auto& dv = comp == 0 ? d0v : d1v;
                auto no_prev = a.newl(), no_next = a.newl();
                a.cmpi(l, 0);
                a.b(Cond::EQ, no_prev);
                emit_idx(c, dir, l, k, n);
                a.cmpi(dir, 0);
                auto s1 = a.newl(), s2 = a.newl();
                a.b(Cond::NE, s1);
                a.subi(12, 12, n);
                a.b(s2);
                a.bind(s1);
                a.subi(12, 12, 1);
                a.bind(s2);
                a.lsli(12, 12, 1);
                a.addi(12, 12, comp);
                g.fld(t, inb, 12);
                g.fmac(dv, t, quarter);
                a.bind(no_prev);
                a.cmpi(l, n - 1);
                a.b(Cond::GE, no_next);
                emit_idx(c, dir, l, k, n);
                a.cmpi(dir, 0);
                auto a1 = a.newl(), a2 = a.newl();
                a.b(Cond::NE, a1);
                a.addi(12, 12, n);
                a.b(a2);
                a.bind(a1);
                a.addi(12, 12, 1);
                a.bind(a2);
                a.lsli(12, 12, 1);
                a.addi(12, 12, comp);
                g.fld(t, inb, 12);
                g.fmac(dv, t, quarter);
                a.bind(no_next);
            }
            // M = B (+ CP[k-1]); B = [[4,-1],[1,4]]
            g.fli(m00, 4.0);
            g.fli(m01, -1.0);
            g.fli(m10, 1.0);
            g.fli(m11, 4.0);
            auto first = a.newl(), fdone = a.newl();
            a.cmpi(k, 0);
            a.b(Cond::EQ, first);
            // M += CP[k-1]; d += DP[k-1]. fadd is a call on V7 and clobbers
            // r3, so the slot index is recomputed for every element.
            for (int e = 0; e < 6; ++e) {
                auto& me = e == 0   ? m00
                           : e == 1 ? m01
                           : e == 2 ? m10
                           : e == 3 ? m11
                           : e == 4 ? d0v
                                    : d1v;
                a.movi(3, 6);
                a.mul(3, k, 3);
                a.addi(3, 3, e - 6);
                g.fld(t, cpb, 3);
                g.fadd(me, me, t);
            }
            a.b(fdone);
            a.bind(first);
            a.bind(fdone);
            // det = m00*m11 - m01*m10 ; idet = 1/det (reuse det)
            g.fmul(det, m00, m11);
            g.fmul(t, m01, m10);
            g.fsub(det, det, t);
            g.fdiv(det, one, det);
            // INV = idet * [[m11, -m01], [-m10, m00]]
            // CP[k] = -INV ; DP[k] = INV * d
            // compute INV into (m00', m01', m10', m11') via temporaries:
            g.fmul(t, m11, det);   // inv00
            g.fmul(m11, m00, det); // inv11
            g.fmov(m00, t);
            g.fmul(t, m01, det);
            g.fneg(m01, t); // inv01 = -m01*idet
            g.fmul(t, m10, det);
            g.fneg(m10, t); // inv10
            // store CP = -INV
            a.movi(3, 6);
            a.mul(3, k, 3);
            g.fneg(t, m00);
            g.fst(t, cpb, 3);
            a.addi(3, 3, 1);
            g.fneg(t, m01);
            g.fst(t, cpb, 3);
            a.addi(3, 3, 1);
            g.fneg(t, m10);
            g.fst(t, cpb, 3);
            a.addi(3, 3, 1);
            g.fneg(t, m11);
            g.fst(t, cpb, 3);
            // DP = INV * d (the multiplies clobber r3 on V7 — recompute)
            g.fmul(x0, m00, d0v);
            g.fmac(x0, m01, d1v);
            g.fmul(x1, m10, d0v);
            g.fmac(x1, m11, d1v);
            a.movi(3, 6);
            a.mul(3, k, 3);
            a.addi(3, 3, 4);
            g.fst(x0, cpb, 3);
            a.addi(3, 3, 1);
            g.fst(x1, cpb, 3);
        });
        // back substitution: X[n-1] = DP[n-1]
        a.movi(3, 6 * n - 2);
        g.fld(x0, cpb, 3);
        a.addi(3, 3, 1);
        g.fld(x1, cpb, 3);
        emit_idx_imm_last(c, dir, l, n);
        a.lsli(12, 12, 1);
        g.fst(x0, outb, 12);
        a.addi(12, 12, 1);
        g.fst(x1, outb, 12);
        a.movi(k, n - 2);
        auto bloop = a.newl(), bdone = a.newl();
        a.bind(bloop);
        a.cmpi(k, 0);
        a.b(Cond::LT, bdone);
        // X = DP[k] - CP[k] * X_next
        a.movi(3, 6);
        a.mul(3, k, 3);
        g.fld(m00, cpb, 3);
        a.addi(3, 3, 1);
        g.fld(m01, cpb, 3);
        a.addi(3, 3, 1);
        g.fld(m10, cpb, 3);
        a.addi(3, 3, 1);
        g.fld(m11, cpb, 3);
        a.addi(3, 3, 1);
        g.fld(d0v, cpb, 3);
        a.addi(3, 3, 1);
        g.fld(d1v, cpb, 3);
        g.fmul(t, m00, x0);
        g.fmac(t, m01, x1);
        g.fsub(d0v, d0v, t);
        g.fmul(t, m10, x0);
        g.fmac(t, m11, x1);
        g.fsub(d1v, d1v, t);
        g.fmov(x0, d0v);
        g.fmov(x1, d1v);
        emit_idx(c, dir, l, k, n);
        a.lsli(12, 12, 1);
        g.fst(x0, outb, 12);
        a.addi(12, 12, 1);
        g.fst(x1, outb, 12);
        a.subi(k, k, 1);
        a.b(bloop);
        a.bind(bdone);
        a.bind(lskip);
    });
    g.ffree(m00);
    g.ffree(m01);
    g.ffree(m10);
    g.ffree(m11);
    g.ffree(det);
    g.ffree(d0v);
    g.ffree(d1v);
    g.ffree(t);
    g.ffree(x0);
    g.ffree(x1);
    g.ffree(quarter);
    g.ffree(one);
    g.leave_frame();
    a.ret();
}

} // namespace

void emit_bt(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned n = c.P.bt_n, iters = c.P.bt_iters;
    a.udata().align(8);
    a.data_sym("bt_u", a.udata().reserve(8 * 2 * n * n));
    a.data_sym("bt_v", a.udata().reserve(8 * 2 * n * n));
    a.data_sym("bt_cp", a.udata().reserve(8 * 6 * n * 8));
    auto to_main = a.newl();
    a.b(to_main);
    emit_bt_sweep(c, n);
    emit_sum_phase(c, "bt_sum", "bt_u", 2 * n * n);
    a.bind(to_main);
    g.enter_frame(6);
    c.fill_f64("bt_u", 2 * n * n, 74, 1.0);
    for (unsigned it = 0; it < iters; ++it) {
        c.run_phase("bt_sweep", 0);
        c.allgather("bt_v", n, 2 * n * 8); // row l = 2n contiguous doubles
        c.run_phase("bt_sweep", 1);
    }
    c.run_phase("bt_sum");
    auto cs = g.fv();
    c.combine_partials_f64(cs, "np_partials");
    c.verify_f64(cs, ref_bt(c.P));
    g.ffree(cs);
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_bt(const Params& p) {
    const unsigned n = p.bt_n;
    std::vector<double> u(2 * n * n), v(2 * n * n);
    for (unsigned i = 0; i < 2 * n * n; ++i) u[i] = Ctx::fill_value(74, i, 1.0);
    std::vector<double> cp(4 * n), dp(2 * n);
    auto sweep = [&](const std::vector<double>& in, std::vector<double>& out,
                     int dir) {
        for (unsigned l = 0; l < n; ++l) {
            for (unsigned k = 0; k < n; ++k) {
                const unsigned idx = dir == 0 ? l * n + k : k * n + l;
                double d0 = 1.0, d1 = 1.0;
                if (l > 0) {
                    const unsigned nb = dir == 0 ? idx - n : idx - 1;
                    d0 += in[2 * nb] * 0.25;
                    d1 += in[2 * nb + 1] * 0.25;
                }
                if (l < n - 1) {
                    const unsigned nb = dir == 0 ? idx + n : idx + 1;
                    d0 += in[2 * nb] * 0.25;
                    d1 += in[2 * nb + 1] * 0.25;
                }
                double m00 = 4, m01 = -1, m10 = 1, m11 = 4;
                if (k > 0) {
                    m00 += cp[4 * (k - 1)];
                    m01 += cp[4 * (k - 1) + 1];
                    m10 += cp[4 * (k - 1) + 2];
                    m11 += cp[4 * (k - 1) + 3];
                    d0 += dp[2 * (k - 1)];
                    d1 += dp[2 * (k - 1) + 1];
                }
                const double idet = 1.0 / (m00 * m11 - m01 * m10);
                const double i00 = m11 * idet, i11 = m00 * idet,
                             i01 = -(m01 * idet), i10 = -(m10 * idet);
                cp[4 * k] = -i00;
                cp[4 * k + 1] = -i01;
                cp[4 * k + 2] = -i10;
                cp[4 * k + 3] = -i11;
                dp[2 * k] = i00 * d0 + i01 * d1;
                dp[2 * k + 1] = i10 * d0 + i11 * d1;
            }
            double x0 = dp[2 * (n - 1)], x1 = dp[2 * (n - 1) + 1];
            unsigned idx = dir == 0 ? l * n + (n - 1) : (n - 1) * n + l;
            out[2 * idx] = x0;
            out[2 * idx + 1] = x1;
            for (int k = static_cast<int>(n) - 2; k >= 0; --k) {
                const double nx0 =
                    dp[2 * k] - (cp[4 * k] * x0 + cp[4 * k + 1] * x1);
                const double nx1 =
                    dp[2 * k + 1] - (cp[4 * k + 2] * x0 + cp[4 * k + 3] * x1);
                x0 = nx0;
                x1 = nx1;
                idx = dir == 0 ? l * n + k : k * n + l;
                out[2 * idx] = x0;
                out[2 * idx + 1] = x1;
            }
        }
    };
    for (unsigned it = 0; it < p.bt_iters; ++it) {
        sweep(u, v, 0);
        sweep(v, u, 1);
    }
    double cs = 0;
    for (unsigned i = 0; i < 2 * n * n; ++i) cs += u[i];
    return cs;
}

} // namespace serep::npb
