// EP, IS, DC, DT, UA kernels (+ host reference checksums).
#include <vector>

#include "npb/common.hpp"
#include "os/abi.hpp"

namespace serep::npb {

using isa::Cond;
using kasm::Label;
using kasm::ModTag;
using kasm::Reg;

namespace {

/// 32-bit load/store helpers (u32 arrays are 4-byte on both profiles).
void ld32_idx(Ctx& c, Reg rd, Reg base, Reg idx) {
    if (c.g.v7) c.a.ldr_idx(rd, base, idx, 2);
    else c.a.ldrw_idx(rd, base, idx, 2);
}
void st32_idx(Ctx& c, Reg rd, Reg base, Reg idx) {
    if (c.g.v7) c.a.str_idx(rd, base, idx, 2);
    else c.a.strw_idx(rd, base, idx, 2);
}
[[maybe_unused]] void ld32(Ctx& c, Reg rd, Reg base, std::int64_t off) {
    if (c.g.v7) c.a.ldr(rd, base, off);
    else c.a.ldrw(rd, base, off);
}
void st32(Ctx& c, Reg rd, Reg base, std::int64_t off) {
    if (c.g.v7) c.a.str(rd, base, off);
    else c.a.strw(rd, base, off);
}

/// s = lcg(seed_at(seed, i)) — mirrors Ctx::fill_value's integer part.
void emit_seeded_lcg(Ctx& c, Reg s, Reg i, std::uint32_t seed) {
    c.a.movi(s, 2654435761);
    c.a.mul(s, i, s);
    c.a.movi(12, seed);
    c.a.add(s, s, 12);
    if (!c.g.v7) c.a.andi(s, s, 0xFFFFFFFFu);
    c.g.lcg_step(s);
}

} // namespace

// ---------------------------------------------------------------- EP

void emit_ep(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned n = c.P.ep_n;
    auto to_main = a.newl();
    a.b(to_main);

    a.func("ep_body", ModTag::APP);
    {
        g.enter_frame(6);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), s = g.ivar(), cnt = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(lo, n);
        a.mov(12, lo);
        g.par_bounds(lo, hi, 12, tid, nth);
        auto x = g.fv(), y = g.fv(), t = g.fv(), one = g.fv(), ssum = g.fv();
        g.fli(ssum, 0.0);
        g.fli(one, 1.0);
        a.movi(cnt, 0);
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl(), rej = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            emit_seeded_lcg(c, s, i, 77);
            a.lsri(12, s, 8);
            a.andi(12, 12, 0xFFFFFF);
            g.i2f(x, 12);
            auto sc = g.fv();
            g.fli(sc, 2.0 / 16777216.0);
            g.fmul(x, x, sc);
            g.fsub(x, x, one);
            g.lcg_step(s);
            a.lsri(12, s, 8);
            a.andi(12, 12, 0xFFFFFF);
            g.i2f(y, 12);
            g.fmul(y, y, sc);
            g.ffree(sc);
            g.fsub(y, y, one);
            g.fmul(t, x, x);
            g.fmac(t, y, y);
            g.fcmp(t, one);
            a.b(Cond::GT, rej);
            g.fadd(ssum, ssum, t);
            a.addi(cnt, cnt, 1);
            a.bind(rej);
            a.bind(skip);
        });
        // partial = ssum + (double)cnt
        g.i2f(x, cnt);
        g.fadd(ssum, ssum, x);
        const auto b = g.ivar();
        a.movi_sym(b, "np_partials");
        g.fst(ssum, b, tid);
        g.ffree(x);
        g.ffree(y);
        g.ffree(t);
        g.ffree(one);
        g.ffree(ssum);
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(6);
    c.run_phase("ep_body");
    auto cs = g.fv();
    c.combine_partials_f64(cs, "np_partials");
    c.verify_f64(cs, ref_ep(c.P));
    g.ffree(cs);
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_ep(const Params& p) {
    double ssum = 0;
    std::uint32_t cnt = 0;
    for (std::uint32_t i = 0; i < p.ep_n; ++i) {
        std::uint32_t s = lcg(seed_at(77, i));
        const double x =
            static_cast<double>((s >> 8) & 0xFFFFFF) * (2.0 / 16777216.0) - 1.0;
        s = lcg(s);
        const double y =
            static_cast<double>((s >> 8) & 0xFFFFFF) * (2.0 / 16777216.0) - 1.0;
        const double t = x * x + y * y;
        if (t <= 1.0) {
            ssum += t;
            ++cnt;
        }
    }
    return ssum + cnt;
}

// ---------------------------------------------------------------- IS

void emit_is(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned n = c.P.is_n, B = c.P.is_buckets;
    a.udata().align(8);
    a.data_sym("is_keys", a.udata().reserve(4 * n));
    a.data_sym("is_hist", a.udata().reserve(4 * B));
    a.data_sym("is_hist_t", a.udata().reserve(4 * B * 8));
    a.data_sym("is_prefix", a.udata().reserve(4 * B));
    auto to_main = a.newl();
    a.b(to_main);

    // generate my slice of keys
    a.func("is_gen", ModTag::APP);
    {
        g.enter_frame(0);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), s = g.ivar(), b = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(s, n);
        g.par_bounds(lo, hi, s, tid, nth);
        a.movi_sym(b, "is_keys");
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            emit_seeded_lcg(c, s, i, 13);
            a.lsri(s, s, 8);
            a.andi(s, s, B - 1);
            st32_idx(c, s, b, i);
            a.bind(skip);
        });
        g.leave_frame();
        a.ret();
    }

    // local histogram of my slice into is_hist_t[tid]
    a.func("is_hist_phase", ModTag::APP);
    {
        g.enter_frame(0);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), k = g.ivar(), hb = g.ivar(), kb = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        a.movi_sym(hb, "is_hist_t");
        a.movi(12, 4 * B);
        a.mul(k, tid, 12);
        a.add(hb, hb, k); // my local table
        // zero it
        g.for_up_imm(i, 0, B, [&] {
            a.movi(12, 0);
            st32_idx(c, 12, hb, i);
        });
        a.movi_sym(kb, "is_keys");
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            ld32_idx(c, k, kb, i);
            ld32_idx(c, 12, hb, k);
            a.addi(12, 12, 1);
            st32_idx(c, 12, hb, k);
            a.bind(skip);
        });
        g.leave_frame();
        a.ret();
    }

    // checksum: sum of prefix[key] over my keys
    a.func("is_rank_phase", ModTag::APP);
    {
        g.enter_frame(0);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), k = g.ivar(), sum = g.ivar(), b = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        a.movi(sum, 0);
        a.movi_sym(b, "is_keys");
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            ld32_idx(c, k, b, i);
            a.movi_sym(12, "is_prefix");
            if (c.g.v7) a.ldr_idx(k, 12, k, 2);
            else a.ldrw_idx(k, 12, k, 2);
            a.add(sum, sum, k);
            a.bind(skip);
        });
        if (!g.v7) a.andi(sum, sum, 0xFFFFFFFFu);
        a.movi_sym(b, "np_upartials");
        if (c.api == Api::MPI) {
            st32(c, sum, b, 0);
        } else {
            a.str_word_idx(sum, b, tid);
        }
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(4);
    c.run_phase("is_gen");
    c.run_phase("is_hist_phase");
    {
        // merge local histograms into is_hist (serial section / reduction)
        const auto i = g.ivar(), t = g.ivar(), hb = g.ivar(), gb = g.ivar(),
                   nth = g.ivar();
        if (c.api == Api::MPI) {
            // my local table is at is_hist_t + rank*4B
            a.movi_sym(0, "is_hist_t");
            a.movi_sym(12, "mpi_rank");
            a.ldr(12, 12, 0);
            a.movi(1, 4 * B);
            a.mul(12, 12, 1);
            a.add(0, 0, 12);
            a.movi_sym(1, "is_hist");
            a.movi(2, B);
            a.movi(3, 0);
            a.bl("mpi_reduce_u32");
            a.movi_sym(0, "is_hist");
            a.movi(1, 4 * B);
            a.movi(2, 0);
            a.bl("mpi_bcast");
        } else {
            if (c.api == Api::OMP) {
                a.movi_sym(nth, "omp_nth");
                a.ldr(nth, nth, 0);
            } else {
                a.movi(nth, 1);
            }
            a.movi_sym(gb, "is_hist");
            g.for_up_imm(i, 0, B, [&] {
                a.movi(12, 0);
                st32_idx(c, 12, gb, i);
            });
            // accumulate: for b in [0,B): for t: hist[b] += hist_t[t][b]
            g.for_up_imm(i, 0, B, [&] {
                a.movi(12, 0);
                a.mov(hb, 12);
                g.for_up(t, 0, nth, [&] {
                    a.movi_sym(12, "is_hist_t");
                    a.movi(hb, 4 * B); // careful: hb reused as scratch
                    a.mul(hb, t, hb);
                    a.add(12, 12, hb);
                    ld32_idx(c, hb, 12, i);
                    ld32_idx(c, 12, gb, i);
                    a.add(12, 12, hb);
                    st32_idx(c, 12, gb, i);
                });
            });
        }
        // prefix sums (everyone computes the same result)
        a.movi_sym(gb, "is_hist");
        a.movi_sym(hb, "is_prefix");
        a.movi(t, 0); // running
        g.for_up_imm(i, 0, B, [&] {
            st32_idx(c, t, hb, i);
            ld32_idx(c, 12, gb, i);
            a.add(t, t, 12);
            if (!g.v7) a.andi(t, t, 0xFFFFFFFFu);
        });
        g.release(i);
        g.release(t);
        g.release(hb);
        g.release(gb);
        g.release(nth);
    }
    c.run_phase("is_rank_phase");
    {
        const auto cs = g.ivar();
        c.combine_partials_u32(cs, "np_upartials");
        c.verify_u32(cs, ref_is(c.P));
        g.release(cs);
    }
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

std::uint32_t ref_is(const Params& p) {
    const unsigned n = p.is_n, B = p.is_buckets;
    std::vector<std::uint32_t> keys(n), hist(B, 0), prefix(B, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        keys[i] = (lcg(seed_at(13, i)) >> 8) & (B - 1);
        hist[keys[i]]++;
    }
    std::uint32_t run = 0;
    for (unsigned b = 0; b < B; ++b) {
        prefix[b] = run;
        run += hist[b];
    }
    std::uint32_t cs = 0;
    for (std::uint32_t i = 0; i < n; ++i) cs += prefix[keys[i]];
    return cs;
}

// ---------------------------------------------------------------- DC

void emit_dc(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned n = c.P.dc_n;
    constexpr unsigned T1 = 16, T2 = 128, T3 = 512, TT = T1 + T2 + T3;
    a.udata().align(8);
    a.data_sym("dc_tab", a.udata().reserve(4 * TT));      // merged tables
    a.data_sym("dc_tab_t", a.udata().reserve(4 * TT * 8)); // per-thread
    auto to_main = a.newl();
    a.b(to_main);

    a.func("dc_scan", ModTag::APP);
    {
        g.enter_frame(0);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), s = g.ivar(), tb = g.ivar(), v = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        a.movi_sym(tb, "dc_tab_t");
        a.movi(12, 4 * TT);
        a.mul(v, tid, 12);
        a.add(tb, tb, v);
        g.for_up_imm(i, 0, TT, [&] {
            a.movi(12, 0);
            st32_idx(c, 12, tb, i);
        });
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            emit_seeded_lcg(c, s, i, 41);
            a.andi(v, s, 255); // measure value
            // group keys: a = s>>8 & 15, b = s>>12 & 7, cc = s>>15 & 3
            a.lsri(12, s, 8);
            a.andi(12, 12, 15);
            // t1[a] += v
            ld32_idx(c, 3, tb, 12);
            a.add(3, 3, v);
            st32_idx(c, 3, tb, 12);
            // t2 index = T1 + a*8 + (s>>12 & 7)
            a.lsli(12, 12, 3);
            a.lsri(3, s, 12);
            a.andi(3, 3, 7);
            a.add(12, 12, 3);
            a.addi(12, 12, T1);
            ld32_idx(c, 3, tb, 12);
            a.add(3, 3, v);
            st32_idx(c, 3, tb, 12);
            // t3 index = T1+T2 + ((a*8+b)*4 + (s>>15 & 3))
            a.subi(12, 12, T1);
            a.lsli(12, 12, 2);
            a.lsri(3, s, 15);
            a.andi(3, 3, 3);
            a.add(12, 12, 3);
            a.addi(12, 12, T1 + T2);
            ld32_idx(c, 3, tb, 12);
            a.add(3, 3, v);
            st32_idx(c, 3, tb, 12);
            a.bind(skip);
        });
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(4);
    c.run_phase("dc_scan");
    {
        const auto i = g.ivar(), t = g.ivar(), gb = g.ivar(), nth = g.ivar(),
                   acc = g.ivar(), cs = g.ivar();
        if (c.api == Api::OMP) {
            a.movi_sym(nth, "omp_nth");
            a.ldr(nth, nth, 0);
        } else {
            a.movi(nth, 1);
        }
        a.movi_sym(gb, "dc_tab");
        a.movi(cs, 0);
        g.for_up_imm(i, 0, TT, [&] {
            a.movi(acc, 0);
            g.for_up(t, 0, nth, [&] {
                a.movi_sym(12, "dc_tab_t");
                a.movi(3, 4 * TT);
                a.mul(3, t, 3);
                a.add(12, 12, 3);
                ld32_idx(c, 3, 12, i);
                a.add(acc, acc, 3);
            });
            st32_idx(c, acc, gb, i);
            a.addi(12, i, 1);
            a.mul(12, 12, acc);
            a.add(cs, cs, 12);
            if (!g.v7) a.andi(cs, cs, 0xFFFFFFFFu);
        });
        c.verify_u32(cs, ref_dc(c.P));
        g.release(i);
        g.release(t);
        g.release(gb);
        g.release(nth);
        g.release(acc);
        g.release(cs);
    }
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

std::uint32_t ref_dc(const Params& p) {
    constexpr unsigned T1 = 16, T2 = 128, T3 = 512, TT = T1 + T2 + T3;
    std::vector<std::uint32_t> tab(TT, 0);
    for (std::uint32_t i = 0; i < p.dc_n; ++i) {
        const std::uint32_t s = lcg(seed_at(41, i));
        const std::uint32_t v = s & 255;
        const std::uint32_t ka = (s >> 8) & 15, kb = (s >> 12) & 7,
                            kc = (s >> 15) & 3;
        tab[ka] += v;
        tab[T1 + ka * 8 + kb] += v;
        tab[T1 + T2 + (ka * 8 + kb) * 4 + kc] += v;
    }
    std::uint32_t cs = 0;
    for (unsigned i = 0; i < TT; ++i) cs += (i + 1) * tab[i];
    return cs;
}

// ---------------------------------------------------------------- DT

void emit_dt(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned V = c.P.dt_vnodes, W = c.P.dt_words;
    a.udata().align(8);
    a.data_sym("dt_buf", a.udata().reserve(4 * W));
    auto to_main = a.newl();
    a.b(to_main);

    // fold one block seeded by pair id (r0 = pair id, buf optional):
    // generate into dt_buf and return fold in r0.
    a.func("dt_genfold", ModTag::APP);
    {
        g.enter_frame(0);
        const auto pid = g.ivar(), i = g.ivar(), s = g.ivar(), f = g.ivar(),
                   b = g.ivar();
        a.mov(pid, 0);
        a.movi(12, 2654435761);
        a.mul(s, pid, 12);
        a.movi(12, 97);
        a.add(s, s, 12);
        if (!g.v7) a.andi(s, s, 0xFFFFFFFFu);
        a.movi(f, 0);
        a.movi_sym(b, "dt_buf");
        g.for_up_imm(i, 0, W, [&] {
            g.lcg_step(s);
            st32_idx(c, s, b, i);
            a.eor(12, s, i);
            a.add(f, f, 12);
            if (!g.v7) a.andi(f, f, 0xFFFFFFFFu);
        });
        a.mov(0, f);
        g.leave_frame();
        a.ret();
    }

    // fold dt_buf (already filled, e.g. received): r0 = fold
    a.func("dt_fold", ModTag::APP);
    {
        g.enter_frame(0);
        const auto i = g.ivar(), f = g.ivar(), b = g.ivar();
        a.movi(f, 0);
        a.movi_sym(b, "dt_buf");
        g.for_up_imm(i, 0, W, [&] {
            ld32_idx(c, 12, b, i);
            a.eor(12, 12, i);
            a.add(f, f, 12);
            if (!g.v7) a.andi(f, f, 0xFFFFFFFFu);
        });
        a.mov(0, f);
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(2);
    {
        const auto i = g.ivar(), j = g.ivar(), cs = g.ivar(), me = g.ivar(),
                   size = g.ivar(), src = g.ivar(), dst = g.ivar();
        if (c.api == Api::MPI) {
            a.movi_sym(me, "mpi_rank");
            a.ldr(me, me, 0);
            a.movi_sym(size, "mpi_size");
            a.ldr(size, size, 0);
        } else {
            a.movi(me, 0);
            a.movi(size, 1);
        }
        a.movi(cs, 0);
        g.for_up_imm(i, 0, V, [&] {
            g.for_up_imm(j, 0, V, [&] {
                auto skip = a.newl();
                a.cmp(i, j);
                a.b(Cond::EQ, skip);
                // pair id = i*V + j
                a.movi(12, V);
                a.mul(12, i, 12);
                a.add(12, 12, j);
                if (c.api != Api::MPI) {
                    // everything is local traffic
                    a.mov(0, 12);
                    a.bl("dt_genfold");
                    a.add(cs, cs, 0);
                    if (!g.v7) a.andi(cs, cs, 0xFFFFFFFFu);
                } else {
                    auto not_src = a.newl(), done = a.newl();
                    // src owner = i % size; dst owner = j % size
                    g.imod(src, i, size);
                    g.imod(dst, j, size);
                    a.movi(12, V);
                    a.mul(12, i, 12);
                    a.add(12, 12, j);
                    a.cmp(src, me);
                    a.b(Cond::NE, not_src);
                    a.mov(0, 12);
                    a.bl("dt_genfold");
                    a.cmp(dst, me);
                    auto remote = a.newl();
                    a.b(Cond::NE, remote);
                    a.add(cs, cs, 0);
                    if (!g.v7) a.andi(cs, cs, 0xFFFFFFFFu);
                    a.b(done);
                    a.bind(remote);
                    a.mov(0, dst);
                    a.movi_sym(1, "dt_buf");
                    a.movi(2, 4 * W);
                    a.bl("mpi_send");
                    a.b(done);
                    a.bind(not_src);
                    a.cmp(dst, me);
                    a.b(Cond::NE, done);
                    a.mov(0, src);
                    a.movi_sym(1, "dt_buf");
                    a.movi(2, 4 * W);
                    a.bl("mpi_recv");
                    a.bl("dt_fold");
                    a.add(cs, cs, 0);
                    if (!g.v7) a.andi(cs, cs, 0xFFFFFFFFu);
                    a.bind(done);
                }
                a.bind(skip);
            });
        });
        // combine across ranks
        const auto b = g.ivar();
        a.movi_sym(b, "np_upartials");
        if (c.api == Api::MPI) {
            st32(c, cs, b, 0);
            c.combine_partials_u32(cs, "np_upartials");
        } else {
            a.str_word_idx(cs, b, me); // tid 0
            c.combine_partials_u32(cs, "np_upartials");
        }
        c.verify_u32(cs, ref_dt(c.P));
        g.release(b);
        g.release(i);
        g.release(j);
        g.release(cs);
        g.release(me);
        g.release(size);
        g.release(src);
        g.release(dst);
    }
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

std::uint32_t ref_dt(const Params& p) {
    std::uint32_t cs = 0;
    for (std::uint32_t i = 0; i < p.dt_vnodes; ++i) {
        for (std::uint32_t j = 0; j < p.dt_vnodes; ++j) {
            if (i == j) continue;
            std::uint32_t s = (i * p.dt_vnodes + j) * 2654435761u + 97u;
            for (std::uint32_t k = 0; k < p.dt_words; ++k) {
                s = lcg(s);
                cs += s ^ k;
            }
        }
    }
    return cs;
}

// ---------------------------------------------------------------- UA

void emit_ua(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned N = c.P.ua_nodes, E = c.P.ua_elems, T = c.P.ua_iters;
    // host-precomputed irregular mesh: element->node ids + node->element CSR
    std::vector<std::uint32_t> idx(E * 4);
    std::uint32_t s = 1234567;
    for (auto& v : idx) {
        s = lcg(s);
        v = (s >> 8) % N;
    }
    std::vector<std::vector<std::uint32_t>> n2e(N);
    for (unsigned e = 0; e < E; ++e)
        for (unsigned k = 0; k < 4; ++k) n2e[idx[e * 4 + k]].push_back(e);
    std::vector<std::uint32_t> roff(N + 1, 0), rlist;
    for (unsigned nn = 0; nn < N; ++nn) {
        roff[nn] = static_cast<std::uint32_t>(rlist.size());
        for (auto e : n2e[nn]) rlist.push_back(e);
    }
    roff[N] = static_cast<std::uint32_t>(rlist.size());

    a.udata().align(8);
    a.data_sym("ua_idx", a.udata().bytes(idx.data(), idx.size() * 4));
    a.udata().align(8);
    a.data_sym("ua_roff", a.udata().bytes(roff.data(), roff.size() * 4));
    a.udata().align(8);
    a.data_sym("ua_rlist", a.udata().bytes(rlist.data(), rlist.size() * 4));
    a.udata().align(8);
    a.data_sym("ua_nval", a.udata().reserve(8 * N));
    a.data_sym("ua_eval", a.udata().reserve(8 * E));
    auto to_main = a.newl();
    a.b(to_main);

    // eval[e] = 0.25 * sum of its 4 node values
    a.func("ua_gather", ModTag::APP);
    {
        g.enter_frame(4);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   e = g.ivar(), ib = g.ivar(), nb = g.ivar(), eb = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(e, E);
        g.par_bounds(lo, hi, e, tid, nth);
        a.movi_sym(ib, "ua_idx");
        a.movi_sym(nb, "ua_nval");
        a.movi_sym(eb, "ua_eval");
        auto acc = g.fv(), t = g.fv(), q = g.fv();
        g.for_up(e, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(e, lo);
            a.b(Cond::LT, skip);
            g.fli(acc, 0.0);
            for (unsigned k = 0; k < 4; ++k) {
                a.lsli(12, e, 2);
                a.addi(12, 12, k);
                if (g.v7) a.ldr_idx(12, ib, 12, 2);
                else a.ldrw_idx(12, ib, 12, 2);
                g.fld(t, nb, 12);
                g.fadd(acc, acc, t);
            }
            g.fli(q, 0.25);
            g.fmul(acc, acc, q);
            g.fst(acc, eb, e);
            a.bind(skip);
        });
        g.ffree(acc);
        g.ffree(t);
        g.ffree(q);
        g.leave_frame();
        a.ret();
    }

    // nval[n] = 0.5*nval[n] + 0.125 * sum over CSR elements
    a.func("ua_update", ModTag::APP);
    {
        g.enter_frame(5);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   nn = g.ivar(), j = g.ivar(), jend = g.ivar(), nb = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(nn, N);
        g.par_bounds(lo, hi, nn, tid, nth);
        a.movi_sym(nb, "ua_nval");
        auto acc = g.fv(), t = g.fv(), h = g.fv();
        g.for_up(nn, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(nn, lo);
            a.b(Cond::LT, skip);
            g.fli(acc, 0.0);
            a.movi_sym(12, "ua_roff");
            if (g.v7) a.ldr_idx(j, 12, nn, 2);
            else a.ldrw_idx(j, 12, nn, 2);
            a.addi(3, nn, 1);
            if (g.v7) a.ldr_idx(jend, 12, 3, 2);
            else a.ldrw_idx(jend, 12, 3, 2);
            auto jl = a.newl(), jd = a.newl();
            a.bind(jl);
            a.cmp(j, jend);
            a.b(Cond::GE, jd);
            a.movi_sym(12, "ua_rlist");
            if (g.v7) a.ldr_idx(12, 12, j, 2);
            else a.ldrw_idx(12, 12, j, 2);
            a.movi_sym(3, "ua_eval");
            g.fld(t, 3, 12);
            g.fadd(acc, acc, t);
            a.addi(j, j, 1);
            a.b(jl);
            a.bind(jd);
            g.fld(t, nb, nn);
            g.fli(h, 0.5);
            g.fmul(t, t, h);
            g.fli(h, 0.125);
            g.fmac(t, acc, h);
            g.fst(t, nb, nn);
            a.bind(skip);
        });
        g.ffree(acc);
        g.ffree(t);
        g.ffree(h);
        g.leave_frame();
        a.ret();
    }

    // partial sum of my node values
    a.func("ua_sum", ModTag::APP);
    {
        g.enter_frame(3);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), b = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, N);
        g.par_bounds(lo, hi, i, tid, nth);
        a.movi_sym(b, "ua_nval");
        auto sum = g.fv(), t = g.fv();
        g.fli(sum, 0.0);
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            g.fld(t, b, i);
            g.fadd(sum, sum, t);
            a.bind(skip);
        });
        a.movi_sym(b, "np_partials");
        g.fst(sum, b, tid);
        g.ffree(sum);
        g.ffree(t);
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(6);
    c.fill_f64("ua_nval", N, 31, 1.0);
    for (unsigned t = 0; t < T; ++t) {
        c.run_phase("ua_gather");
        c.allgather("ua_eval", E, 8);
        c.run_phase("ua_update");
        c.allgather("ua_nval", N, 8);
    }
    c.run_phase("ua_sum");
    auto cs = g.fv();
    c.combine_partials_f64(cs, "np_partials");
    c.verify_f64(cs, ref_ua(c.P));
    g.ffree(cs);
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_ua(const Params& p) {
    const unsigned N = p.ua_nodes, E = p.ua_elems;
    std::vector<std::uint32_t> idx(E * 4);
    std::uint32_t s = 1234567;
    for (auto& v : idx) {
        s = lcg(s);
        v = (s >> 8) % N;
    }
    std::vector<std::vector<std::uint32_t>> n2e(N);
    for (unsigned e = 0; e < E; ++e)
        for (unsigned k = 0; k < 4; ++k) n2e[idx[e * 4 + k]].push_back(e);
    std::vector<double> nval(N), eval(E);
    for (unsigned i = 0; i < N; ++i) nval[i] = Ctx::fill_value(31, i, 1.0);
    for (unsigned t = 0; t < p.ua_iters; ++t) {
        for (unsigned e = 0; e < E; ++e) {
            double acc = 0;
            for (unsigned k = 0; k < 4; ++k) acc += nval[idx[e * 4 + k]];
            eval[e] = acc * 0.25;
        }
        for (unsigned nn = 0; nn < N; ++nn) {
            double acc = 0;
            for (auto e : n2e[nn]) acc += eval[e];
            nval[nn] = nval[nn] * 0.5 + acc * 0.125;
        }
    }
    double cs = 0;
    for (unsigned i = 0; i < N; ++i) cs += nval[i];
    return cs;
}

} // namespace serep::npb
