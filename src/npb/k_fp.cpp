// CG, MG, FT kernels (+ host references).
#include <cmath>
#include <complex>
#include <vector>

#include "npb/common.hpp"
#include "os/abi.hpp"

namespace serep::npb {

using isa::Cond;
using kasm::ModTag;
using kasm::Reg;

// ---------------------------------------------------------------- CG
//
// Conjugate gradient on the 2-D 5-point Laplacian over a g x g grid
// (n = g^2, SPD). Jacobi-style SpMV is order-independent, so serial, OMP
// and MPI variants compute identical iterates (up to reduction order).

void emit_cg(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned gg = c.P.cg_g, n = gg * gg, iters = c.P.cg_iters;
    a.udata().align(8);
    a.data_sym("cg_x", a.udata().reserve(8 * n));
    a.data_sym("cg_r", a.udata().reserve(8 * n));
    a.data_sym("cg_p", a.udata().reserve(8 * n));
    a.data_sym("cg_q", a.udata().reserve(8 * n));
    a.data_sym("cg_scal", a.udata().reserve(8 * 4)); // rho, alpha, beta, d
    auto to_main = a.newl();
    a.b(to_main);

    // q = A p over my rows
    a.func("cg_spmv", ModTag::APP);
    {
        g.enter_frame(4);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), pb = g.ivar(), qb = g.ivar(), col = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        a.movi_sym(pb, "cg_p");
        a.movi_sym(qb, "cg_q");
        auto acc = g.fv(), t = g.fv(), four = g.fv();
        g.fli(four, 4.0);
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl(), noleft = a.newl(), noright = a.newl(),
                 noup = a.newl(), nodown = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            g.fld(acc, pb, i);
            g.fmul(acc, acc, four);
            // col = i mod g
            a.movi(12, gg);
            g.imod(col, i, 12);
            a.cmpi(col, 0);
            a.b(Cond::EQ, noleft);
            a.subi(12, i, 1);
            g.fld(t, pb, 12);
            g.fsub(acc, acc, t);
            a.bind(noleft);
            a.cmpi(col, gg - 1);
            a.b(Cond::GE, noright);
            a.addi(12, i, 1);
            g.fld(t, pb, 12);
            g.fsub(acc, acc, t);
            a.bind(noright);
            a.cmpi(i, gg);
            a.b(Cond::LT, noup);
            a.subi(12, i, gg);
            g.fld(t, pb, 12);
            g.fsub(acc, acc, t);
            a.bind(noup);
            a.cmpi(i, n - gg);
            a.b(Cond::GE, nodown);
            a.addi(12, i, gg);
            g.fld(t, pb, 12);
            g.fsub(acc, acc, t);
            a.bind(nodown);
            g.fst(acc, qb, i);
            a.bind(skip);
        });
        g.ffree(acc);
        g.ffree(t);
        g.ffree(four);
        g.leave_frame();
        a.ret();
    }

    // partials[tid] = dot(p, q) over my rows   (arg selects vectors:
    // 0 -> p.q ; 1 -> r.r ; 2 -> x.x)
    a.func("cg_dot", ModTag::APP);
    {
        g.enter_frame(4);
        const auto arg = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
                   hi = g.ivar(), i = g.ivar(), xb = g.ivar(), yb = g.ivar();
        a.mov(arg, 0);
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        auto case1 = a.newl(), case2 = a.newl(), go = a.newl();
        a.cmpi(arg, 1);
        a.b(Cond::EQ, case1);
        a.b(Cond::GT, case2);
        a.movi_sym(xb, "cg_p");
        a.movi_sym(yb, "cg_q");
        a.b(go);
        a.bind(case1);
        a.movi_sym(xb, "cg_r");
        a.movi_sym(yb, "cg_r");
        a.b(go);
        a.bind(case2);
        a.movi_sym(xb, "cg_x");
        a.movi_sym(yb, "cg_x");
        a.bind(go);
        auto sum = g.fv(), x = g.fv(), y = g.fv();
        g.fli(sum, 0.0);
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            g.fld(x, xb, i);
            g.fld(y, yb, i);
            g.fmac(sum, x, y);
            a.bind(skip);
        });
        a.movi_sym(xb, "np_partials");
        g.fst(sum, xb, tid);
        g.ffree(sum);
        g.ffree(x);
        g.ffree(y);
        g.leave_frame();
        a.ret();
    }

    // axpy phases, arg selects: 0: x += alpha p ; 1: r -= alpha q ;
    // 2: p = r + beta p
    a.func("cg_axpy", ModTag::APP);
    {
        g.enter_frame(4);
        const auto arg = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
                   hi = g.ivar(), i = g.ivar(), xb = g.ivar(), yb = g.ivar();
        a.mov(arg, 0);
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        g.release(tid);
        g.release(nth);
        auto scal = g.fv(), x = g.fv(), y = g.fv();
        const auto sb = g.ivar();
        a.movi_sym(sb, "cg_scal");
        auto c1 = a.newl(), c2 = a.newl(), go = a.newl();
        a.cmpi(arg, 1);
        a.b(Cond::EQ, c1);
        a.b(Cond::GT, c2);
        a.movi_sym(xb, "cg_x");
        a.movi_sym(yb, "cg_p");
        g.fld_imm(scal, sb, 1); // alpha
        a.b(go);
        a.bind(c1);
        a.movi_sym(xb, "cg_r");
        a.movi_sym(yb, "cg_q");
        g.fld_imm(scal, sb, 1); // alpha
        g.fneg(scal, scal);
        a.b(go);
        a.bind(c2);
        a.movi_sym(xb, "cg_p");
        a.movi_sym(yb, "cg_p");
        g.fld_imm(scal, sb, 2); // beta
        a.bind(go);
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl(), normal = a.newl(), done = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            a.cmpi(arg, 2);
            a.b(Cond::NE, normal);
            // p = r + beta p
            g.fld(x, yb, i); // p
            g.fmul(x, x, scal);
            a.movi_sym(12, "cg_r");
            g.fld(y, 12, i);
            g.fadd(x, x, y);
            g.fst(x, xb, i);
            a.b(done);
            a.bind(normal);
            g.fld(x, xb, i);
            g.fld(y, yb, i);
            g.fmac(x, y, scal);
            g.fst(x, xb, i);
            a.bind(done);
            a.bind(skip);
        });
        g.ffree(scal);
        g.ffree(x);
        g.ffree(y);
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(8);
    {
        // init: x = 0 (already), r = p = b = 1
        const auto i = g.ivar(), b1 = g.ivar(), b2 = g.ivar();
        auto one = g.fv();
        g.fli(one, 1.0);
        a.movi_sym(b1, "cg_r");
        a.movi_sym(b2, "cg_p");
        g.for_up_imm(i, 0, n, [&] {
            g.fst(one, b1, i);
            g.fst(one, b2, i);
        });
        g.ffree(one);
        g.release(i);
        g.release(b1);
        g.release(b2);

        auto rho = g.fv(), t = g.fv(), t2 = g.fv();
        const auto sb = g.ivar();
        a.movi_sym(sb, "cg_scal");
        g.fli(rho, static_cast<double>(n)); // r.r of all-ones
        for (unsigned it = 0; it < iters; ++it) {
            c.run_phase("cg_spmv");
            c.run_phase("cg_dot", 0); // p.q
            c.combine_partials_f64(t, "np_partials");
            // alpha = rho / d
            g.fdiv(t2, rho, t);
            {
                const auto sb2 = g.ivar();
                a.movi_sym(sb2, "cg_scal");
                g.fst_imm(t2, sb2, 1);
                g.release(sb2);
            }
            c.run_phase("cg_axpy", 0); // x += alpha p
            c.run_phase("cg_axpy", 1); // r -= alpha q
            c.run_phase("cg_dot", 1);  // r.r
            c.combine_partials_f64(t, "np_partials");
            // beta = rho2 / rho ; rho = rho2
            g.fdiv(t2, t, rho);
            g.fst_imm(t2, sb, 2);
            g.fmov(rho, t);
            c.run_phase("cg_axpy", 2); // p = r + beta p
            c.allgather("cg_p", n, 8); // SpMV needs the full p next round
        }
        c.run_phase("cg_dot", 2); // x.x
        auto cs = g.fv();
        c.combine_partials_f64(cs, "np_partials");
        c.verify_f64(cs, ref_cg(c.P));
        g.ffree(cs);
        g.ffree(rho);
        g.ffree(t);
        g.ffree(t2);
    }
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_cg(const Params& p) {
    const unsigned gg = p.cg_g, n = gg * gg;
    std::vector<double> x(n, 0), r(n, 1), pv(n, 1), q(n, 0);
    double rho = static_cast<double>(n);
    for (unsigned it = 0; it < p.cg_iters; ++it) {
        for (unsigned i = 0; i < n; ++i) {
            double acc = 4.0 * pv[i];
            const unsigned col = i % gg;
            if (col > 0) acc -= pv[i - 1];
            if (col < gg - 1) acc -= pv[i + 1];
            if (i >= gg) acc -= pv[i - gg];
            if (i < n - gg) acc -= pv[i + gg];
            q[i] = acc;
        }
        double d = 0;
        for (unsigned i = 0; i < n; ++i) d += pv[i] * q[i];
        const double alpha = rho / d;
        for (unsigned i = 0; i < n; ++i) x[i] += alpha * pv[i];
        for (unsigned i = 0; i < n; ++i) r[i] -= alpha * q[i];
        double rho2 = 0;
        for (unsigned i = 0; i < n; ++i) rho2 += r[i] * r[i];
        const double beta = rho2 / rho;
        rho = rho2;
        for (unsigned i = 0; i < n; ++i) pv[i] = r[i] + beta * pv[i];
    }
    double cs = 0;
    for (unsigned i = 0; i < n; ++i) cs += x[i] * x[i];
    return cs;
}

// ---------------------------------------------------------------- MG
//
// Memory-heavy 7-point Jacobi smoother on an m^3 grid (the multigrid
// smoothing kernel; single grid level — documented simplification).

void emit_mg(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned m = c.P.mg_m, m2 = m * m, n = m * m * m, S = c.P.mg_sweeps;
    a.udata().align(8);
    a.data_sym("mg_u", a.udata().reserve(8 * n));
    a.data_sym("mg_v", a.udata().reserve(8 * n));
    a.data_sym("mg_f", a.udata().reserve(8 * n));
    auto to_main = a.newl();
    a.b(to_main);

    // one Jacobi sweep: arg 0: u->v, arg 1: v->u. Partition over z planes.
    a.func("mg_sweep", ModTag::APP);
    {
        g.enter_frame(5);
        const auto arg = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
                   hi = g.ivar();
        a.mov(arg, 0);
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(lo, m); // temp: element count
        a.mov(12, lo);
        g.par_bounds(lo, hi, 12, tid, nth);
        g.release(tid);
        g.release(nth);
        const auto src = g.ivar(), dst = g.ivar();
        auto swap = a.newl(), go = a.newl();
        a.cmpi(arg, 0);
        a.b(Cond::NE, swap);
        a.movi_sym(src, "mg_u");
        a.movi_sym(dst, "mg_v");
        a.b(go);
        a.bind(swap);
        a.movi_sym(src, "mg_v");
        a.movi_sym(dst, "mg_u");
        a.bind(go);
        g.release(arg);
        const auto z = g.ivar(), y = g.ivar(), x = g.ivar(), idx = g.ivar();
        auto acc = g.fv(), t = g.fv(), c6 = g.fv(), cf = g.fv();
        g.fli(c6, 1.0 / 6.5);
        g.fli(cf, 0.1);
        g.for_up(z, 0, hi, [&] {
            auto zskip = a.newl();
            a.cmp(z, lo);
            a.b(Cond::LT, zskip);
            g.for_up_imm(y, 0, m, [&] {
                g.for_up_imm(x, 0, m, [&] {
                    auto interior = a.newl(), boundary = a.newl(), done = a.newl();
                    // idx = (z*m + y)*m + x — kept in a call-safe register
                    a.movi(12, m);
                    a.mul(idx, z, 12);
                    a.add(idx, idx, y);
                    a.movi(3, m);
                    a.mul(idx, idx, 3);
                    a.add(idx, idx, x);
                    // boundary if any coord is 0 or m-1
                    a.cmpi(x, 0);
                    a.b(Cond::EQ, boundary);
                    a.cmpi(x, m - 1);
                    a.b(Cond::EQ, boundary);
                    a.cmpi(y, 0);
                    a.b(Cond::EQ, boundary);
                    a.cmpi(y, m - 1);
                    a.b(Cond::EQ, boundary);
                    a.cmpi(z, 0);
                    a.b(Cond::EQ, boundary);
                    a.cmpi(z, m - 1);
                    a.b(Cond::EQ, boundary);
                    a.b(interior);
                    a.bind(boundary);
                    g.fld(acc, src, idx);
                    g.fst(acc, dst, idx);
                    a.b(done);
                    a.bind(interior);
                    g.fli(acc, 0.0);
                    const int offs[6] = {-1, 1, -static_cast<int>(m),
                                         static_cast<int>(m),
                                         -static_cast<int>(m2),
                                         static_cast<int>(m2)};
                    for (int off : offs) {
                        a.addi(3, idx, off);
                        g.fld(t, src, 3);
                        g.fadd(acc, acc, t);
                    }
                    g.fmul(acc, acc, c6);
                    a.movi_sym(3, "mg_f");
                    g.fld(t, 3, idx);
                    g.fmac(acc, t, cf);
                    g.fst(acc, dst, idx);
                    a.bind(done);
                });
            });
            a.bind(zskip);
        });
        g.ffree(acc);
        g.ffree(t);
        g.ffree(c6);
        g.ffree(cf);
        g.leave_frame();
        a.ret();
    }

    // partial sum of the final buffer (arg 0: sum u, 1: sum v).
    // Partitioned by z-planes so each rank only reads planes it owns —
    // required because MPI exchanges halos, not the whole array.
    a.func("mg_sum", ModTag::APP);
    {
        g.enter_frame(3);
        const auto arg = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
                   hi = g.ivar(), z = g.ivar(), j = g.ivar(), b = g.ivar();
        a.mov(arg, 0);
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(z, m);
        g.par_bounds(lo, hi, z, tid, nth);
        auto pick = a.newl(), go = a.newl();
        a.cmpi(arg, 0);
        a.b(Cond::NE, pick);
        a.movi_sym(b, "mg_u");
        a.b(go);
        a.bind(pick);
        a.movi_sym(b, "mg_v");
        a.bind(go);
        auto sum = g.fv(), t = g.fv();
        g.fli(sum, 0.0);
        g.for_up(z, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(z, lo);
            a.b(Cond::LT, skip);
            g.for_up_imm(j, 0, m2, [&] {
                a.movi(12, m2);
                a.mul(12, z, 12);
                a.add(12, 12, j);
                g.fld(t, b, 12);
                g.fadd(sum, sum, t);
            });
            a.bind(skip);
        });
        a.movi_sym(b, "np_partials");
        g.fst(sum, b, tid);
        g.ffree(sum);
        g.ffree(t);
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(6);
    c.fill_f64("mg_u", n, 51, 1.0);
    c.fill_f64("mg_f", n, 52, 1.0);
    for (unsigned s = 0; s < S; ++s) {
        c.run_phase("mg_sweep", s % 2);
        // neighbours only need my boundary planes (true halo exchange);
        // checksum partitions align with plane ownership when cores | m
        c.halo_exchange(s % 2 == 0 ? "mg_v" : "mg_u", m, m2 * 8);
    }
    c.run_phase("mg_sum", S % 2 == 0 ? 0 : 1);
    auto cs = g.fv();
    c.combine_partials_f64(cs, "np_partials");
    c.verify_f64(cs, ref_mg(c.P));
    g.ffree(cs);
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_mg(const Params& p) {
    const unsigned m = p.mg_m, m2 = m * m, n = m * m * m;
    std::vector<double> u(n), v(n), f(n);
    for (unsigned i = 0; i < n; ++i) u[i] = Ctx::fill_value(51, i, 1.0);
    for (unsigned i = 0; i < n; ++i) f[i] = Ctx::fill_value(52, i, 1.0);
    const double* src = u.data();
    double* dst = v.data();
    std::vector<double>* bufs[2] = {&u, &v};
    for (unsigned s = 0; s < p.mg_sweeps; ++s) {
        const std::vector<double>& in = *bufs[s % 2];
        std::vector<double>& out = *bufs[(s + 1) % 2];
        for (unsigned z = 0; z < m; ++z) {
            for (unsigned y = 0; y < m; ++y) {
                for (unsigned x = 0; x < m; ++x) {
                    const unsigned i = (z * m + y) * m + x;
                    if (x == 0 || x == m - 1 || y == 0 || y == m - 1 || z == 0 ||
                        z == m - 1) {
                        out[i] = in[i];
                        continue;
                    }
                    double acc = in[i - 1] + in[i + 1] + in[i - m] + in[i + m] +
                                 in[i - m2] + in[i + m2];
                    acc *= 1.0 / 6.5;
                    out[i] = acc + f[i] * 0.1;
                }
            }
        }
    }
    (void)src;
    (void)dst;
    const std::vector<double>& fin = *bufs[p.mg_sweeps % 2];
    double cs = 0;
    for (unsigned i = 0; i < n; ++i) cs += fin[i];
    return cs;
}

// ---------------------------------------------------------------- FT
//
// 3-D complex radix-2 FFT (iterative Cooley-Tukey with host-precomputed
// bit-reversal and twiddle tables) + pointwise evolve, per-dimension line
// partitioning with allgathers between dimension passes.

void emit_ft(Ctx& c) {
    auto& a = c.a;
    auto& g = c.g;
    const unsigned m = c.P.ft_m, n = m * m * m, T = c.P.ft_iters;
    unsigned logm = 0;
    while ((1u << logm) < m) ++logm;

    // host tables: bit-reversal permutation and per-stage twiddles
    std::vector<std::uint32_t> brev(m);
    for (unsigned i = 0; i < m; ++i) {
        unsigned r = 0;
        for (unsigned b = 0; b < logm; ++b)
            if (i & (1u << b)) r |= 1u << (logm - 1 - b);
        brev[i] = r;
    }
    std::vector<double> twre, twim; // concatenated per stage len=2,4,..,m
    for (unsigned len = 2; len <= m; len <<= 1) {
        for (unsigned j = 0; j < len / 2; ++j) {
            const double ang = -2.0 * M_PI * j / len;
            twre.push_back(std::cos(ang));
            twim.push_back(std::sin(ang));
        }
    }
    a.udata().align(8);
    a.data_sym("ft_re", a.udata().reserve(8 * n));
    a.data_sym("ft_im", a.udata().reserve(8 * n));
    a.data_sym("ft_brev", a.udata().bytes(brev.data(), brev.size() * 4));
    a.udata().align(8);
    a.data_sym("ft_twre", a.udata().bytes(twre.data(), twre.size() * 8));
    a.data_sym("ft_twim", a.udata().bytes(twim.data(), twim.size() * 8));
    a.data_sym("ft_lre", a.udata().reserve(8 * m * 8)); // per-thread line buffers
    a.data_sym("ft_lim", a.udata().reserve(8 * m * 8));
    auto to_main = a.newl();
    a.b(to_main);

    // fft of the line in the buffers at (r0 = re ptr, r1 = im ptr), in place
    a.func("ft_fft_line", ModTag::APP);
    {
        g.enter_frame(12);
        const auto i = g.ivar(), j = g.ivar(), len = g.ivar(), half = g.ivar(),
                   base = g.ivar(), lre = g.ivar(), lim = g.ivar();
        a.mov(lre, 0);
        a.mov(lim, 1);
        // bit-reversal permutation (swap when brev[i] > i)
        auto tr = g.fv(), ti = g.fv(), ur = g.fv(), ui = g.fv();
        g.for_up_imm(i, 0, m, [&] {
            auto skip = a.newl();
            a.movi_sym(12, "ft_brev");
            if (g.v7) a.ldr_idx(j, 12, i, 2);
            else a.ldrw_idx(j, 12, i, 2);
            a.cmp(j, i);
            a.b(Cond::LE, skip);
            g.fld(tr, lre, i);
            g.fld(ur, lre, j);
            g.fst(tr, lre, j);
            g.fst(ur, lre, i);
            g.fld(ti, lim, i);
            g.fld(ui, lim, j);
            g.fst(ti, lim, j);
            g.fst(ui, lim, i);
            a.bind(skip);
        });
        // stages
        auto wr = g.fv(), wi = g.fv();
        const auto twoff = g.ivar();
        a.movi(len, 2);
        a.movi(twoff, 0);
        auto stage = a.newl(), stages_done = a.newl();
        a.bind(stage);
        a.cmpi(len, m);
        a.b(Cond::GT, stages_done);
        a.lsri(half, len, 1);
        a.movi(base, 0);
        auto blocks = a.newl(), blocks_done = a.newl();
        a.bind(blocks);
        a.cmpi(base, m);
        a.b(Cond::GE, blocks_done);
        g.for_up(j, 0, half, [&] {
            // w = tw[twoff + j]   (fld/fst preserve r3/r12; FP calls do not,
            // so `i` — free after bit-reversal — carries the element index)
            a.add(12, twoff, j);
            a.movi_sym(3, "ft_twre");
            g.fld(wr, 3, 12);
            a.movi_sym(3, "ft_twim");
            g.fld(wi, 3, 12);
            // u = line[base+j]; t = line[base+j+half]
            a.add(i, base, j);
            g.fld(ur, lre, i);
            g.fld(ui, lim, i);
            a.add(12, i, half);
            g.fld(tr, lre, 12);
            g.fld(ti, lim, 12);
            // (xr,xi) = w * t
            auto xr = g.fv(), xi = g.fv();
            g.fmul(xr, wr, tr);
            auto tmp = g.fv();
            g.fmul(tmp, wi, ti);
            g.fsub(xr, xr, tmp);
            g.fmul(xi, wr, ti);
            g.fmul(tmp, wi, tr);
            g.fadd(xi, xi, tmp);
            g.ffree(tmp);
            // line[base+j] = u + x ; line[base+j+half] = u - x
            g.fadd(tr, ur, xr);
            g.fadd(ti, ui, xi);
            g.fst(tr, lre, i);
            g.fst(ti, lim, i);
            g.fsub(tr, ur, xr);
            g.fsub(ti, ui, xi);
            a.add(12, i, half);
            g.fst(tr, lre, 12);
            g.fst(ti, lim, 12);
            g.ffree(xr);
            g.ffree(xi);
        });
        a.add(base, base, len);
        a.b(blocks);
        a.bind(blocks_done);
        a.add(twoff, twoff, half);
        a.lsli(len, len, 1);
        a.b(stage);
        a.bind(stages_done);
        g.ffree(tr);
        g.ffree(ti);
        g.ffree(ur);
        g.ffree(ui);
        g.ffree(wr);
        g.ffree(wi);
        g.leave_frame();
        a.ret();
    }

    // FFT pass along dimension `arg` (0=x,1=y,2=z): lines partitioned.
    a.func("ft_pass", ModTag::APP);
    {
        g.enter_frame(2);
        const auto arg = g.ivar(), tid = g.ivar(), nth = g.ivar(), lo = g.ivar(),
                   hi = g.ivar();
        a.mov(arg, 0);
        a.mov(tid, 1);
        a.mov(nth, 2);
        if (c.api == Api::MPI) {
            // the z pass touches scattered lines which a contiguous
            // allgather cannot exchange — run it replicated (documented)
            auto part = a.newl();
            a.cmpi(arg, 2);
            a.b(Cond::NE, part);
            a.movi(tid, 0);
            a.movi(nth, 1);
            a.bind(part);
        }
        a.movi(lo, m * m); // lines per dimension
        a.mov(12, lo);
        g.par_bounds(lo, hi, 12, tid, nth);
        // per-thread line buffers (OMP threads must not share them)
        const auto lbre = g.ivar();
        a.movi_sym(lbre, "ft_lre");
        a.movi(12, m * 8);
        a.mul(12, tid, 12);
        a.add(lbre, lbre, 12);
        g.release(tid);
        g.release(nth);
        const auto line = g.ivar(), k = g.ivar(), idx = g.ivar();
        auto elem = g.fv();
        g.for_up(line, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(line, lo);
            a.b(Cond::LT, skip);
            // copy line into the buffers: element k index depends on dim
            const auto lb = g.ivar();
            for (int dir = 0; dir < 2; ++dir) {
                g.for_up_imm(k, 0, m, [&] {
                    // compute flat index for (line, k) on dimension `arg`:
                    //  x: idx = line*m + k
                    //  y: idx = (line/m)*m*m + k*m + (line%m)
                    //  z: idx = k*m*m + line
                    auto dx = a.newl(), dy = a.newl(), computed = a.newl();
                    a.cmpi(arg, 1);
                    a.b(Cond::EQ, dy);
                    a.b(Cond::GT, dx); // arg==2 -> z handled at dx label? no:
                    // arg==0 (x):
                    a.movi(12, m);
                    a.mul(idx, line, 12);
                    a.add(idx, idx, k);
                    a.b(computed);
                    a.bind(dy); // y
                    a.movi(12, m);
                    g.idiv(idx, line, 12);
                    a.movi(3, m * m);
                    a.mul(idx, idx, 3);
                    a.movi(12, m);
                    a.mul(3, k, 12);
                    a.add(idx, idx, 3);
                    a.movi(12, m);
                    g.imod(3, line, 12);
                    a.add(idx, idx, 3);
                    a.b(computed);
                    a.bind(dx); // z
                    a.movi(12, m * m);
                    a.mul(idx, k, 12);
                    a.add(idx, idx, line);
                    a.bind(computed);
                    a.addi(lb, lbre, dir == 0 ? 0 : 8 * m * 8);
                    a.movi_sym(3, dir == 0 ? "ft_re" : "ft_im");
                    g.fld(elem, 3, idx);
                    g.fst(elem, lb, k);
                });
            }
            a.mov(0, lbre);
            a.addi(1, lbre, 8 * m * 8);
            a.bl("ft_fft_line");
            // copy back
            for (int dir = 0; dir < 2; ++dir) {
                g.for_up_imm(k, 0, m, [&] {
                    auto dx = a.newl(), dy = a.newl(), computed = a.newl();
                    a.cmpi(arg, 1);
                    a.b(Cond::EQ, dy);
                    a.b(Cond::GT, dx);
                    a.movi(12, m);
                    a.mul(idx, line, 12);
                    a.add(idx, idx, k);
                    a.b(computed);
                    a.bind(dy);
                    a.movi(12, m);
                    g.idiv(idx, line, 12);
                    a.movi(3, m * m);
                    a.mul(idx, idx, 3);
                    a.movi(12, m);
                    a.mul(3, k, 12);
                    a.add(idx, idx, 3);
                    a.movi(12, m);
                    g.imod(3, line, 12);
                    a.add(idx, idx, 3);
                    a.b(computed);
                    a.bind(dx);
                    a.movi(12, m * m);
                    a.mul(idx, k, 12);
                    a.add(idx, idx, line);
                    a.bind(computed);
                    a.addi(lb, lbre, dir == 0 ? 0 : 8 * m * 8);
                    a.movi_sym(3, dir == 0 ? "ft_re" : "ft_im");
                    g.fld(elem, lb, k);
                    g.fst(elem, 3, idx);
                });
            }
            g.release(lb);
            a.bind(skip);
        });
        g.ffree(elem);
        g.leave_frame();
        a.ret();
    }

    // evolve: pointwise (re,im) *= (1 - eps*i/n) rotation-ish damping
    a.func("ft_evolve", ModTag::APP);
    {
        g.enter_frame(4);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), rb = g.ivar(), ib = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        a.movi_sym(rb, "ft_re");
        a.movi_sym(ib, "ft_im");
        auto x = g.fv(), f = g.fv(), step = g.fv();
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            g.i2f(f, i);
            g.fli(step, -0.5 / n);
            g.fmul(f, f, step);
            g.fli(step, 1.0);
            g.fadd(f, f, step); // 1 - 0.5*i/n
            g.fld(x, rb, i);
            g.fmul(x, x, f);
            g.fst(x, rb, i);
            g.fld(x, ib, i);
            g.fmul(x, x, f);
            g.fst(x, ib, i);
            a.bind(skip);
        });
        g.ffree(x);
        g.ffree(f);
        g.ffree(step);
        g.leave_frame();
        a.ret();
    }

    // partial checksum: sum re^2 + im^2
    a.func("ft_sum", ModTag::APP);
    {
        g.enter_frame(3);
        const auto tid = g.ivar(), nth = g.ivar(), lo = g.ivar(), hi = g.ivar(),
                   i = g.ivar(), b = g.ivar();
        a.mov(tid, 1);
        a.mov(nth, 2);
        a.movi(i, n);
        g.par_bounds(lo, hi, i, tid, nth);
        auto sum = g.fv(), t = g.fv();
        g.fli(sum, 0.0);
        g.for_up(i, 0, hi, [&] {
            auto skip = a.newl();
            a.cmp(i, lo);
            a.b(Cond::LT, skip);
            a.movi_sym(b, "ft_re");
            g.fld(t, b, i);
            g.fmac(sum, t, t);
            a.movi_sym(b, "ft_im");
            g.fld(t, b, i);
            g.fmac(sum, t, t);
            a.bind(skip);
        });
        a.movi_sym(b, "np_partials");
        g.fst(sum, b, tid);
        g.ffree(sum);
        g.ffree(t);
        g.leave_frame();
        a.ret();
    }

    a.bind(to_main);
    g.enter_frame(6);
    c.fill_f64("ft_re", n, 61, 1.0);
    c.fill_f64("ft_im", n, 62, 1.0);
    for (unsigned t = 0; t < T; ++t) {
        for (unsigned dim = 0; dim < 3; ++dim) {
            c.run_phase("ft_pass", dim);
            if (dim < 2) {
                // x/y passes stay within z-planes; exchange whole planes
                c.allgather("ft_re", m, m * m * 8);
                c.allgather("ft_im", m, m * m * 8);
            }
            // z pass is replicated on MPI — no exchange needed
        }
        c.run_phase("ft_evolve");
        c.allgather("ft_re", n, 8);
        c.allgather("ft_im", n, 8);
    }
    c.run_phase("ft_sum");
    auto cs = g.fv();
    c.combine_partials_f64(cs, "np_partials");
    c.verify_f64(cs, ref_ft(c.P));
    g.ffree(cs);
    a.movi(0, 0);
    a.svc(os::SYS_EXIT);
}

double ref_ft(const Params& p) {
    const unsigned m = p.ft_m, n = m * m * m;
    std::vector<std::complex<double>> v(n);
    for (unsigned i = 0; i < n; ++i)
        v[i] = {Ctx::fill_value(61, i, 1.0), Ctx::fill_value(62, i, 1.0)};
    unsigned logm = 0;
    while ((1u << logm) < m) ++logm;
    auto fft_line = [&](std::vector<std::complex<double>>& line) {
        for (unsigned i = 0; i < m; ++i) {
            unsigned r = 0;
            for (unsigned b = 0; b < logm; ++b)
                if (i & (1u << b)) r |= 1u << (logm - 1 - b);
            if (r > i) std::swap(line[i], line[r]);
        }
        for (unsigned len = 2; len <= m; len <<= 1) {
            for (unsigned base = 0; base < m; base += len) {
                for (unsigned j = 0; j < len / 2; ++j) {
                    const double ang = -2.0 * M_PI * j / len;
                    const std::complex<double> w{std::cos(ang), std::sin(ang)};
                    // mirror the guest's mul/add order exactly
                    const std::complex<double> u = line[base + j];
                    const std::complex<double> t0 = line[base + j + len / 2];
                    const std::complex<double> x{
                        w.real() * t0.real() - w.imag() * t0.imag(),
                        w.real() * t0.imag() + w.imag() * t0.real()};
                    line[base + j] = u + x;
                    line[base + j + len / 2] = u - x;
                }
            }
        }
    };
    std::vector<std::complex<double>> line(m);
    for (unsigned t = 0; t < p.ft_iters; ++t) {
        for (unsigned dim = 0; dim < 3; ++dim) {
            for (unsigned l = 0; l < m * m; ++l) {
                for (unsigned k = 0; k < m; ++k) {
                    unsigned idx;
                    if (dim == 0) idx = l * m + k;
                    else if (dim == 1) idx = (l / m) * m * m + k * m + (l % m);
                    else idx = k * m * m + l;
                    line[k] = v[idx];
                }
                fft_line(line);
                for (unsigned k = 0; k < m; ++k) {
                    unsigned idx;
                    if (dim == 0) idx = l * m + k;
                    else if (dim == 1) idx = (l / m) * m * m + k * m + (l % m);
                    else idx = k * m * m + l;
                    v[idx] = line[k];
                }
            }
        }
        for (unsigned i = 0; i < n; ++i) {
            const double f = 1.0 + static_cast<double>(i) * (-0.5 / n);
            v[i] *= f;
        }
    }
    double cs = 0;
    for (unsigned i = 0; i < n; ++i)
        cs += v[i].real() * v[i].real() + v[i].imag() * v[i].imag();
    return cs;
}

} // namespace serep::npb
