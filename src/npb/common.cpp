#include "npb/common.hpp"

#include "os/abi.hpp"
#include "util/check.hpp"

namespace serep::npb {

using isa::Cond;
using kasm::Assembler;
using kasm::Label;
using kasm::ModTag;
using kasm::Reg;

const Params& params_for(Klass k) noexcept {
    static const Params mini{
        /*ep*/ 160,
        /*is*/ 512, 64,
        /*cg*/ 6, 3,
        /*mg*/ 5, 2,
        /*ft*/ 4, 1,
        /*lu*/ 8, 2,
        /*sp*/ 8, 2,
        /*bt*/ 6, 2,
        /*dt*/ 8, 32,
        /*dc*/ 384,
        /*ua*/ 96, 192, 2,
    };
    static const Params s{
        /*ep*/ 1024,
        /*is*/ 4096, 256,
        /*cg*/ 12, 5,
        /*mg*/ 8, 4,
        /*ft*/ 8, 1,
        /*lu*/ 20, 2,
        /*sp*/ 18, 2,
        /*bt*/ 12, 2,
        /*dt*/ 8, 256,
        /*dc*/ 4096,
        /*ua*/ 512, 1024, 3,
    };
    static const Params w{
        /*ep*/ 4096,
        /*is*/ 16384, 512,
        /*cg*/ 20, 8,
        /*mg*/ 12, 6,
        /*ft*/ 8, 3,
        /*lu*/ 32, 3,
        /*sp*/ 28, 3,
        /*bt*/ 18, 3,
        /*dt*/ 8, 1024,
        /*dc*/ 16384,
        /*ua*/ 1024, 2048, 4,
    };
    if (k == Klass::W) return w;
    return k == Klass::Mini ? mini : s;
}

void emit_common_data(Assembler& a) {
    const char ok[] = "VERIFICATION SUCCESSFUL\n";
    const char bad[] = "VERIFICATION FAILED\n";
    const char cs[] = "CHECKSUM ";
    a.data_sym("vs_ok", a.udata().bytes(ok, sizeof(ok) - 1));
    a.data_sym("vs_bad", a.udata().bytes(bad, sizeof(bad) - 1));
    a.data_sym("vs_cs", a.udata().bytes(cs, sizeof(cs) - 1));
    a.udata().align(8);
    a.data_sym("np_partials", a.udata().reserve(8 * 8));
    a.data_sym("np_partials_r", a.udata().reserve(8 * 8));
    a.data_sym("np_upartials", a.udata().reserve(8 * 8));
}

void Ctx::main_prologue() {
    if (api == Api::MPI) {
        a.bl("mpi_init"); // rank/size still in r0/r1 at main entry
    } else if (api == Api::OMP) {
        a.bl("omp_init");
    }
}

void Ctx::run_phase(const char* fn, std::int64_t arg) {
    switch (api) {
        case Api::Serial:
            a.movi(0, arg);
            a.movi(1, 0);
            a.movi(2, 1);
            a.bl(fn);
            break;
        case Api::OMP:
            a.movi_sym(0, fn);
            a.movi(1, arg);
            a.bl("omp_parallel");
            break;
        case Api::MPI:
            a.movi(0, arg);
            a.movi_sym(1, "mpi_rank");
            a.ldr(1, 1, 0);
            a.movi_sym(2, "mpi_size");
            a.ldr(2, 2, 0);
            a.bl(fn);
            break;
    }
}

void Ctx::emit_print_sym(const char* sym, unsigned len) {
    a.movi_sym(0, sym);
    a.movi(1, len);
    a.svc(os::SYS_WRITE);
}

void Ctx::skip_unless_rank0_begin(Label& skip) {
    if (api == Api::MPI) {
        a.movi_sym(12, "mpi_rank");
        a.ldr(12, 12, 0);
        a.cmpi(12, 0);
        a.b(Cond::NE, skip);
    }
}

void Ctx::verify_f64(kgen::FV cs, double expected, double rel_tol) {
    const double bound = rel_tol * (expected == 0.0 ? 1.0 : expected);
    const double bound2 = bound * bound;
    auto skip = a.newl(), fail = a.newl(), done = a.newl();
    skip_unless_rank0_begin(skip);
    // print "CHECKSUM <hex bits>"
    emit_print_sym("vs_cs", 9);
    if (g.v7) {
        a.ldr(0, a.sp(), static_cast<std::int64_t>(cs.id) * 8);
        a.ldr(1, a.sp(), static_cast<std::int64_t>(cs.id) * 8 + 4);
    } else {
        a.fmovvx(0, g.vreg(cs));
    }
    a.bl("rt_print_hex");
    // (cs - expected)^2 <= bound2 ?
    auto d = g.fv(), r = g.fv();
    g.fli(r, expected);
    g.fsub(d, cs, r);
    g.fmul(d, d, d);
    g.fli(r, bound2);
    g.fcmp(d, r);
    a.b(Cond::GT, fail);
    emit_print_sym("vs_ok", 24);
    a.b(done);
    a.bind(fail);
    emit_print_sym("vs_bad", 20);
    a.bind(done);
    g.ffree(d);
    g.ffree(r);
    a.bind(skip);
}

void Ctx::verify_u32(Reg cs, std::uint32_t expected) {
    auto skip = a.newl(), fail = a.newl(), done = a.newl();
    skip_unless_rank0_begin(skip);
    emit_print_sym("vs_cs", 9);
    a.mov(0, cs);
    if (!g.v7) a.andi(0, 0, 0xFFFFFFFFu);
    a.bl("rt_print_dec");
    a.movi(12, expected);
    if (!g.v7) a.andi(cs, cs, 0xFFFFFFFFu);
    a.cmp(cs, 12);
    a.b(Cond::NE, fail);
    emit_print_sym("vs_ok", 24);
    a.b(done);
    a.bind(fail);
    emit_print_sym("vs_bad", 20);
    a.bind(done);
    a.bind(skip);
}

void Ctx::fill_f64(const char* sym, unsigned n, std::uint32_t seed, double scale) {
    const auto i = g.ivar(), b = g.ivar(), s = g.ivar();
    auto f = g.fv();
    a.movi_sym(b, sym);
    g.for_up_imm(i, 0, n, [&] {
        a.movi(s, 2654435761);
        a.mul(s, i, s);
        a.movi(12, seed);
        a.add(s, s, 12);
        if (!g.v7) a.andi(s, s, 0xFFFFFFFFu);
        g.lcg_step(s);
        a.lsri(s, s, 8);
        a.andi(s, s, 0xFFFFFF);
        g.i2f(f, s);
        auto sc = g.fv();
        g.fli(sc, scale / 16777216.0);
        g.fmul(f, f, sc);
        g.ffree(sc);
        g.fst(f, b, i);
    });
    g.ffree(f);
    g.release(i);
    g.release(b);
    g.release(s);
}

void Ctx::combine_partials_f64(kgen::FV cs, const char* partial_sym) {
    if (api == Api::Serial) {
        const auto b = g.ivar();
        a.movi_sym(b, partial_sym);
        g.fld_imm(cs, b, 0);
        g.release(b);
        return;
    }
    if (api == Api::OMP) {
        const auto b = g.ivar(), i = g.ivar(), nth = g.ivar();
        auto t = g.fv();
        a.movi_sym(nth, "omp_nth");
        a.ldr(nth, nth, 0);
        a.movi_sym(b, partial_sym);
        g.fli(cs, 0.0);
        g.for_up(i, 0, nth, [&] {
            g.fld(t, b, i);
            g.fadd(cs, cs, t);
        });
        g.ffree(t);
        g.release(b);
        g.release(i);
        g.release(nth);
        return;
    }
    // MPI: rank r wrote partials[r] (zeros elsewhere in its private copy);
    // allreduce all 8 slots elementwise, then sum them locally.
    a.movi_sym(0, partial_sym);
    a.movi_sym(1, "np_partials_r");
    a.movi(2, 8);
    a.bl("mpi_allreduce_f64");
    const auto b = g.ivar(), i = g.ivar();
    auto t = g.fv();
    a.movi_sym(b, "np_partials_r");
    g.fli(cs, 0.0);
    g.for_up_imm(i, 0, 8, [&] {
        g.fld(t, b, i);
        g.fadd(cs, cs, t);
    });
    g.ffree(t);
    g.release(b);
    g.release(i);
}

void Ctx::allgather(const char* sym, unsigned nrows, unsigned row_bytes) {
    if (api != Api::MPI) return;
    const auto root = g.ivar(), lo = g.ivar(), hi = g.ivar(), n = g.ivar(),
               size = g.ivar();
    a.movi_sym(size, "mpi_size");
    a.ldr(size, size, 0);
    g.for_up(root, 0, size, [&] {
        a.movi(n, nrows);
        g.par_bounds(lo, hi, n, root, size);
        a.sub(hi, hi, lo); // rows in this block
        a.movi(n, row_bytes);
        a.mul(hi, hi, n);  // bytes
        a.mul(lo, lo, n);  // offset
        a.movi_sym(0, sym);
        a.add(0, 0, lo);
        a.mov(1, hi);
        a.mov(2, root);
        a.bl("mpi_bcast");
    });
    g.release(root);
    g.release(lo);
    g.release(hi);
    g.release(n);
    g.release(size);
}

void Ctx::halo_exchange(const char* sym, unsigned nrows, unsigned row_bytes) {
    if (api != Api::MPI) return;
    const auto rank = g.ivar(), size = g.ivar(), lo = g.ivar(), hi = g.ivar(),
               chunk = g.ivar(), t = g.ivar();
    a.movi_sym(rank, "mpi_rank");
    a.ldr(rank, rank, 0);
    a.movi_sym(size, "mpi_size");
    a.ldr(size, size, 0);
    a.movi(lo, nrows);
    a.mov(12, lo);
    g.par_bounds(lo, hi, 12, rank, size);
    // chunk = ceil(nrows / size): plane p is owned by rank p / chunk
    a.movi(chunk, nrows);
    a.add(chunk, chunk, size);
    a.subi(chunk, chunk, 1);
    g.idiv(chunk, chunk, size);
    auto empty = a.newl();
    a.cmp(lo, hi);
    a.b(Cond::GE, empty);
    // sends first (channels are buffered), then receives
    for (int phase = 0; phase < 2; ++phase) {
        auto no_low = a.newl(), no_high = a.newl();
        // low edge: neighbour owns row lo-1
        a.cmpi(lo, 0);
        a.b(Cond::EQ, no_low);
        a.subi(t, lo, 1);
        g.idiv(0, t, chunk); // partner rank
        if (phase == 0) {
            a.movi_sym(1, sym);
            a.movi(2, row_bytes);
            a.mul(3, lo, 2);
            a.add(1, 1, 3); // my lowest row
        } else {
            a.movi_sym(1, sym);
            a.movi(2, row_bytes);
            a.mul(3, t, 2);
            a.add(1, 1, 3); // halo slot lo-1
        }
        a.bl(phase == 0 ? "mpi_send" : "mpi_recv");
        a.bind(no_low);
        // high edge: neighbour owns row hi
        a.cmpi(hi, nrows);
        a.b(Cond::GE, no_high);
        g.idiv(0, hi, chunk);
        a.movi_sym(1, sym);
        a.movi(2, row_bytes);
        if (phase == 0) {
            a.subi(t, hi, 1);
            a.mul(3, t, 2);
        } else {
            a.mul(3, hi, 2);
        }
        a.add(1, 1, 3);
        a.bl(phase == 0 ? "mpi_send" : "mpi_recv");
        a.bind(no_high);
    }
    a.bind(empty);
    g.release(rank);
    g.release(size);
    g.release(lo);
    g.release(hi);
    g.release(chunk);
    g.release(t);
}

void Ctx::combine_partials_u32(Reg cs, const char* partial_sym) {
    if (api == Api::Serial) {
        a.movi_sym(cs, partial_sym);
        a.ldr(cs, cs, 0);
        return;
    }
    if (api == Api::OMP) {
        const auto b = g.ivar(), i = g.ivar(), nth = g.ivar();
        a.movi_sym(nth, "omp_nth");
        a.ldr(nth, nth, 0);
        a.movi_sym(b, partial_sym);
        a.movi(cs, 0);
        g.for_up(i, 0, nth, [&] {
            a.ldr_word_idx(12, b, i);
            a.add(cs, cs, 12);
        });
        if (!g.v7) a.andi(cs, cs, 0xFFFFFFFFu);
        g.release(b);
        g.release(i);
        g.release(nth);
        return;
    }
    // MPI: word partial at offset 0 (stored as u32), reduce + bcast
    a.movi_sym(0, partial_sym);
    a.movi_sym(1, partial_sym);
    a.addi(1, 1, 8);
    a.movi(2, 1);
    a.movi(3, 0);
    a.bl("mpi_reduce_u32");
    a.movi_sym(0, partial_sym);
    a.addi(0, 0, 8);
    a.movi(1, 4);
    a.movi(2, 0);
    a.bl("mpi_bcast");
    a.movi_sym(cs, partial_sym);
    a.ldr(12, cs, 8);
    if (g.v7) {
        a.mov(cs, 12);
    } else {
        a.movi(0, 0xFFFFFFFFu);
        a.and_(cs, 12, 0);
    }
}

} // namespace serep::npb
