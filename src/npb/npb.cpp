#include "npb/npb.hpp"

#include "npb/common.hpp"
#include "os/kernel.hpp"
#include "os/loader.hpp"
#include "rt/libmpi.hpp"
#include "rt/libomp.hpp"
#include "rt/librt.hpp"
#include "rt/softfloat.hpp"
#include "util/check.hpp"

namespace serep::npb {

const char* app_name(App a) noexcept {
    switch (a) {
        case App::BT: return "BT";
        case App::CG: return "CG";
        case App::DC: return "DC";
        case App::DT: return "DT";
        case App::EP: return "EP";
        case App::FT: return "FT";
        case App::IS: return "IS";
        case App::LU: return "LU";
        case App::MG: return "MG";
        case App::SP: return "SP";
        case App::UA: return "UA";
    }
    return "??";
}

const char* api_name(Api a) noexcept {
    switch (a) {
        case Api::Serial: return "SER";
        case Api::OMP: return "OMP";
        case Api::MPI: return "MPI";
    }
    return "??";
}

const char* klass_name(Klass k) noexcept {
    switch (k) {
        case Klass::Mini: return "Mini";
        case Klass::S: return "S";
        case Klass::W: return "W";
    }
    return "??";
}

bool app_has_api(App app, Api api) noexcept {
    if (api == Api::MPI) return app != App::DC && app != App::UA;
    if (api == Api::OMP) return app != App::DT;
    return true; // serial versions of everything (DT-serial is the extra
                 // variant shown in the paper's Fig. 2a SER-1 column)
}

bool mpi_cores_allowed(App app, unsigned cores) noexcept {
    if (app == App::BT || app == App::SP) {
        // square process counts only (1, 4, 9, ...)
        unsigned r = 1;
        while (r * r < cores) ++r;
        return r * r == cores;
    }
    return true;
}

std::string Scenario::name() const {
    return std::string(isa::profile_name(isa)) + "-" + app_name(app) + "-" +
           api_name(api) + "-" + std::to_string(cores);
}

std::vector<Scenario> paper_scenarios(Klass k) {
    std::vector<Scenario> v;
    for (isa::Profile p : {isa::Profile::V7, isa::Profile::V8}) {
        // 10 serial apps (the paper's count excludes DT-serial)
        for (App app : kAllApps) {
            if (app == App::DT) continue;
            v.push_back({p, app, Api::Serial, 1, k});
        }
        for (App app : kAllApps) {
            if (!app_has_api(app, Api::OMP)) continue;
            for (unsigned cores : {1u, 2u, 4u})
                v.push_back({p, app, Api::OMP, cores, k});
        }
        for (App app : kAllApps) {
            if (!app_has_api(app, Api::MPI)) continue;
            for (unsigned cores : {1u, 2u, 4u}) {
                if (!mpi_cores_allowed(app, cores)) continue;
                v.push_back({p, app, Api::MPI, cores, k});
            }
        }
    }
    return v;
}

bool uses_u32_checksum(App app) noexcept {
    return app == App::IS || app == App::DC || app == App::DT;
}

double ref_checksum_f64(App app, Klass k) {
    const Params& p = params_for(k);
    switch (app) {
        case App::EP: return ref_ep(p);
        case App::CG: return ref_cg(p);
        case App::MG: return ref_mg(p);
        case App::FT: return ref_ft(p);
        case App::LU: return ref_lu(p);
        case App::SP: return ref_sp(p);
        case App::BT: return ref_bt(p);
        case App::UA: return ref_ua(p);
        default: util::fail("app uses an integer checksum");
    }
}

std::uint32_t ref_checksum_u32(App app, Klass k) {
    const Params& p = params_for(k);
    switch (app) {
        case App::IS: return ref_is(p);
        case App::DC: return ref_dc(p);
        case App::DT: return ref_dt(p);
        default: util::fail("app uses an FP checksum");
    }
}

BuiltProgram build_program(const Scenario& s) {
    util::check(app_has_api(s.app, s.api), "scenario: API not available");
    util::check(s.api != Api::MPI || mpi_cores_allowed(s.app, s.cores),
                "scenario: MPI core count not allowed");
    kasm::Assembler a(s.isa);
    const unsigned procs = s.api == Api::MPI ? s.cores : 1;
    os::KernelConfig kc;
    const os::KLayout layout = os::build_kernel(a, procs, kc);
    rt::build_librt(a);
    if (s.isa == isa::Profile::V7) rt::build_softfloat(a);
    if (s.api == Api::OMP) rt::build_libomp(a);
    if (s.api == Api::MPI) rt::build_libmpi(a);
    emit_common_data(a);

    a.func("main", kasm::ModTag::APP);
    a.set_user_entry(a.here());
    kgen::CodegenOptions copts;
    copts.contract_fma = s.contract_fma;
    Ctx c(a, s.api, params_for(s.klass), copts);
    c.main_prologue();
    switch (s.app) {
        case App::BT: emit_bt(c); break;
        case App::CG: emit_cg(c); break;
        case App::DC: emit_dc(c); break;
        case App::DT: emit_dt(c); break;
        case App::EP: emit_ep(c); break;
        case App::FT: emit_ft(c); break;
        case App::IS: emit_is(c); break;
        case App::LU: emit_lu(c); break;
        case App::MG: emit_mg(c); break;
        case App::SP: emit_sp(c); break;
        case App::UA: emit_ua(c); break;
    }
    auto image = std::make_shared<const kasm::Image>(a.finalize());
    return BuiltProgram{std::move(image), layout, procs};
}

sim::Machine make_machine(const Scenario& s, bool profile) {
    BuiltProgram bp = build_program(s);
    os::BootConfig bc;
    bc.cores = s.cores;
    bc.procs = bp.procs;
    bc.profile = profile;
    return os::boot_machine(std::move(bp.image), bp.layout, bc);
}

} // namespace serep::npb
