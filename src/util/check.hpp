// Contract and error-handling helpers shared across the library.
//
// Host-side configuration/setup errors throw serep::util::Error; guest-side
// faults (the things we *study*) are values on the hot path, never
// exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace serep::util {

/// Exception type for host-side configuration and usage errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The caller asked for something nonsensical (bad flag value, unknown
/// subcommand, filters matching nothing). Tools map this to a distinct
/// exit code so scripts can tell operator mistakes from data problems.
class UsageError : public Error {
public:
    explicit UsageError(const std::string& what) : Error(what) {}
};

/// Input data failed validation (shard-database manifests that do not
/// belong together, corrupt or incomplete outcome databases). Distinct
/// from UsageError: the command line was fine, the artifacts are not.
class ValidationError : public Error {
public:
    explicit ValidationError(const std::string& what) : Error(what) {}
};

/// Throw serep::util::Error if `cond` is false. Used for precondition
/// checks on public API boundaries (cheap enough to keep in release).
inline void check(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }
[[noreturn]] inline void fail_usage(const std::string& msg) {
    throw UsageError(msg);
}

inline void check_usage(bool cond, const std::string& msg) {
    if (!cond) throw UsageError(msg);
}
inline void check_valid(bool cond, const std::string& msg) {
    if (!cond) throw ValidationError(msg);
}

} // namespace serep::util
