// Contract and error-handling helpers shared across the library.
//
// Host-side configuration/setup errors throw serep::util::Error; guest-side
// faults (the things we *study*) are values on the hot path, never
// exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace serep::util {

/// Exception type for host-side configuration and usage errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw serep::util::Error if `cond` is false. Used for precondition
/// checks on public API boundaries (cheap enough to keep in release).
inline void check(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

} // namespace serep::util
