// Zstd-framed container for shard outcome databases (`.jsonl.zst`).
//
// The fleet streams completed shard databases between hosts; a class-S shard
// DB is megabytes of highly repetitive JSONL, so the wire/disk format is a
// framed compressed container rather than raw text:
//
//   file   := magic("SRZF") version(u8) codec(u8) reserved(u16) frame* end
//   frame  := raw_len(u32) comp_len(u32) checksum(u64 FNV-1a of raw) payload
//   end    := raw_len=0 comp_len=0 checksum = FNV-1a over ALL raw bytes
//
// All integers little-endian. Each frame is independently checksummed, so a
// flipped bit is reported as a *corrupted frame* and a file cut short by a
// killed worker as a *truncated* one — distinct, named ValidationErrors, both
// mapped to exit 3 by serep. The end marker doubles as a whole-stream
// integrity check: a reader knows a complete file from a prefix of one.
//
// The payload codec is zstd (via the system libzstd) when the build found
// it, otherwise a stored (identity) codec — the container format, framing,
// and every checksum stay the same, only the payload transform differs.
// Readers accept stored frames always and zstd frames when the library is
// available; a zstd file on a store-only build is refused with a named
// error instead of garbage. Writers default to the best codec available.
//
// Consumers never deal with any of this: orch::merge_shards,
// stats::OutcomeTally and the exp::Driver's resume probe all sniff
// zframe_is() and decompress transparently, so a `.jsonl.zst` database is
// accepted everywhere a plain `.jsonl` one is.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>

namespace serep::util {

/// Payload transform of a zstd-framed file.
enum class ZFrameCodec : std::uint8_t {
    Store = 0, ///< identity (always available)
    Zstd = 1,  ///< zstd, level 3 (when built against libzstd)
};

/// True when this build can compress/decompress Zstd-codec payloads.
bool zstd_available() noexcept;

/// True when `bytes` starts with the zstd-frame container magic.
bool zframe_is(const std::string& bytes) noexcept;

/// Compress `text` into a complete framed file (header + frames + end
/// marker) with the given codec; ZFrameCodec::Zstd silently degrades to
/// Store when the library is absent.
std::string zframe_compress(const std::string& text,
                            ZFrameCodec codec = ZFrameCodec::Zstd);

/// Decode a complete framed file back to its raw bytes. Throws
/// util::ValidationError naming the failure: "truncated frame" (file cut
/// short), "corrupted frame" (checksum or length mismatch), "unsupported
/// codec" (zstd payloads on a store-only build), or "bad magic/version".
std::string zframe_decompress(const std::string& bytes);

/// Streaming writer: an std::ostream whose bytes are buffered into frames
/// and compressed onto `sink`. Drop-in for the shard writers, which take an
/// ostream&:
///
///   ZstdFrameWriter zw(file);
///   orch::run_shard(jobs, plan, opts, zw.stream(), &note);
///   zw.finish();
///
/// finish() flushes the tail frame and the end marker; without it the file
/// is (detectably) truncated. The destructor calls finish() if the caller
/// forgot, swallowing errors — call finish() explicitly to see them.
class ZstdFrameWriter {
public:
    static constexpr std::size_t kDefaultFrameBytes = 256 * 1024;

    explicit ZstdFrameWriter(std::ostream& sink,
                             std::size_t frame_raw_bytes = kDefaultFrameBytes,
                             ZFrameCodec codec = ZFrameCodec::Zstd);
    ~ZstdFrameWriter();

    ZstdFrameWriter(const ZstdFrameWriter&) = delete;
    ZstdFrameWriter& operator=(const ZstdFrameWriter&) = delete;

    std::ostream& stream() noexcept { return stream_; }

    /// Flush buffered bytes and write the end marker. Idempotent. Throws
    /// util::Error when the sink reports failure.
    void finish();

private:
    class Buf;
    std::unique_ptr<Buf> buf_;
    std::ostream stream_;
};

/// Streaming reader over an in-memory framed file: yields one frame's raw
/// bytes at a time (zframe_decompress() is next() in a loop). Validates the
/// header on construction and every frame as it is read; the same named
/// ValidationErrors as zframe_decompress.
class ZstdFrameReader {
public:
    explicit ZstdFrameReader(const std::string& bytes);

    /// Decode the next frame into `out` (replacing its contents). Returns
    /// false — exactly once — after the end marker validated the stream.
    bool next(std::string& out);

private:
    // Owned copy: the reader must outlive any temporary it was built from
    // (the compressed bytes are small; raw frames are what's big).
    const std::string bytes_;
    std::size_t pos_ = 0;
    std::uint64_t running_hash_;
    ZFrameCodec codec_;
    bool done_ = false;
};

} // namespace serep::util
