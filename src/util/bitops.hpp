// Bit-level helpers used by the fault injector and the soft-float library.
#pragma once

#include <bit>
#include <cstdint>

namespace serep::util {

/// Flip bit `bit` (0 = LSB) of `v`. `bit` must be < 64.
constexpr std::uint64_t flip_bit(std::uint64_t v, unsigned bit) noexcept {
    return v ^ (std::uint64_t{1} << bit);
}

constexpr bool get_bit(std::uint64_t v, unsigned bit) noexcept {
    return ((v >> bit) & 1u) != 0;
}

constexpr std::uint64_t set_bit(std::uint64_t v, unsigned bit, bool on) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << bit;
    return on ? (v | mask) : (v & ~mask);
}

/// Mask keeping the low `width` bits (width in [1,64]).
constexpr std::uint64_t low_mask(unsigned width) noexcept {
    return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Sign-extend the low `width` bits of `v` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t v, unsigned width) noexcept {
    const unsigned shift = 64 - width;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

constexpr bool is_aligned(std::uint64_t addr, unsigned bytes) noexcept {
    return (addr & (bytes - 1)) == 0;
}

/// Bit-cast helpers between doubles and their IEEE-754 image.
inline std::uint64_t f64_bits(double d) noexcept { return std::bit_cast<std::uint64_t>(d); }
inline double bits_f64(std::uint64_t b) noexcept { return std::bit_cast<double>(b); }

} // namespace serep::util
