// Bit-level helpers used by the fault injector and the soft-float library.
#pragma once

#include <cstdint>
#include <cstring>

namespace serep::util {

/// Flip bit `bit` (0 = LSB) of `v`. `bit` must be < 64.
constexpr std::uint64_t flip_bit(std::uint64_t v, unsigned bit) noexcept {
    return v ^ (std::uint64_t{1} << bit);
}

constexpr bool get_bit(std::uint64_t v, unsigned bit) noexcept {
    return ((v >> bit) & 1u) != 0;
}

constexpr std::uint64_t set_bit(std::uint64_t v, unsigned bit, bool on) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << bit;
    return on ? (v | mask) : (v & ~mask);
}

/// Mask keeping the low `width` bits (width in [1,64]).
constexpr std::uint64_t low_mask(unsigned width) noexcept {
    return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Sign-extend the low `width` bits of `v` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t v, unsigned width) noexcept {
    const unsigned shift = 64 - width;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

constexpr bool is_aligned(std::uint64_t addr, unsigned bytes) noexcept {
    return (addr & (bytes - 1)) == 0;
}

/// Count trailing zero bits (64 for v == 0).
constexpr unsigned ctz64(std::uint64_t v) noexcept {
    if (v == 0) return 64;
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(v));
#else
    unsigned n = 0;
    while ((v & 1) == 0) {
        v >>= 1;
        ++n;
    }
    return n;
#endif
}

/// Count leading zero bits of a value interpreted at `width` bits (width for
/// v == 0; v must fit in `width` bits). Hot: the interpreter's CLZ emulation.
constexpr unsigned clz(std::uint64_t v, unsigned width = 64) noexcept {
    if (v == 0) return width;
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_clzll(v)) - (64 - width);
#else
    unsigned n = 0;
    std::uint64_t probe = std::uint64_t{1} << (width - 1);
    while (probe != 0 && (v & probe) == 0) {
        probe >>= 1;
        ++n;
    }
    return n;
#endif
}

/// Smallest power of two >= v (v must be <= 2^63).
constexpr std::uint64_t bit_ceil64(std::uint64_t v) noexcept {
    std::uint64_t p = 1;
    while (p < v) p <<= 1;
    return p;
}

/// Bit-cast helpers between doubles and their IEEE-754 image.
inline std::uint64_t f64_bits(double d) noexcept {
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof b);
    return b;
}
inline double bits_f64(std::uint64_t b) noexcept {
    double d;
    std::memcpy(&d, &b, sizeof d);
    return d;
}

} // namespace serep::util
