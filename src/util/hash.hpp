// Shared FNV-1a folding helpers. Several load-bearing stable hashes (the
// classifier's architectural-state hash, shard fault ids, campaign config
// hashes) must stay in lock-step across the codebase: one definition here,
// no per-file copies.
#pragma once

#include <cstdint>
#include <string>

namespace serep::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold one 64-bit value into `h`, byte-wise little-endian.
inline void fnv1a_u64(std::uint64_t& h, std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= kFnvPrime;
    }
}

/// Fold a string's bytes, then its length (so "ab"+"c" != "a"+"bc" when
/// several strings are folded in sequence).
inline void fnv1a_str(std::uint64_t& h, const std::string& s) noexcept {
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    fnv1a_u64(h, s.size());
}

} // namespace serep::util
