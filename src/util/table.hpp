// ASCII table printer used by every benchmark harness to render the
// paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace serep::util {

/// Column-aligned ASCII table. First added row can serve as header
/// (separator drawn beneath when `header(true)` was requested).
class Table {
public:
    explicit Table(std::vector<std::string> columns);

    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with fixed precision.
    static std::string num(double v, int precision = 2);
    static std::string pct(double v, int precision = 1);

    /// Render with column padding; includes header separator.
    std::string str() const;

private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace serep::util
