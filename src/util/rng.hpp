// Deterministic seeded RNG (xoshiro256**) with independent child streams.
//
// Every random decision in the project flows from one of these generators so
// that campaigns are bit-reproducible across runs and host thread counts.
#pragma once

#include <array>
#include <cstdint>

namespace serep::util {

/// splitmix64 — used to expand seeds and derive child streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound) without modulo bias. Contract: below(0) is
    /// defined and returns 0 (an empty range has no other sensible answer;
    /// callers that would be surprised should check first). One next() is
    /// still consumed only when bound > 0.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform in [lo, hi] inclusive (lo <= hi). The span hi - lo + 1 wraps
    /// to 0 when [lo, hi] covers the full u64 range; that case degenerates
    /// to a raw next() draw instead of below(0) == 0.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
        const std::uint64_t span = hi - lo + 1;
        return span == 0 ? next() : lo + below(span);
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Derive an independent child stream (stable for a given tag).
    Rng child(std::uint64_t tag) const noexcept {
        std::uint64_t sm = state_[0] ^ (tag * 0x9e3779b97f4a7c15ULL) ^ state_[3];
        return Rng(splitmix64(sm));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::array<std::uint64_t, 4> state_{};
};

} // namespace serep::util
