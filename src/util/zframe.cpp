#include "zframe.hpp"

#include <cstring>
#include <sstream>

#include "check.hpp"
#include "hash.hpp"

#if defined(SEREP_HAVE_ZSTD)
// Minimal stable subset of the zstd simple API, declared directly: the
// target container ships libzstd.so.1 but not the development header, and
// installing packages is off the table. These signatures have been frozen
// since zstd 1.0.
extern "C" {
size_t ZSTD_compressBound(size_t srcSize);
size_t ZSTD_compress(void* dst, size_t dstCapacity, const void* src,
                     size_t srcSize, int compressionLevel);
size_t ZSTD_decompress(void* dst, size_t dstCapacity, const void* src,
                       size_t srcSize);
unsigned ZSTD_isError(size_t code);
const char* ZSTD_getErrorName(size_t code);
}
#endif

namespace serep::util {
namespace {

constexpr char kMagic[4] = {'S', 'R', 'Z', 'F'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8;
constexpr int kZstdLevel = 3;

std::uint64_t fnv_bytes(std::uint64_t h, const char* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(p[i]);
        h *= kFnvPrime;
    }
    return h;
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
}

std::uint64_t get_u64(const char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
}

ZFrameCodec effective_codec(ZFrameCodec wanted) {
    if (wanted == ZFrameCodec::Zstd && !zstd_available())
        return ZFrameCodec::Store;
    return wanted;
}

std::string header(ZFrameCodec codec) {
    std::string out(kMagic, sizeof kMagic);
    out.push_back(char(kVersion));
    out.push_back(char(static_cast<std::uint8_t>(codec)));
    out.push_back('\0');
    out.push_back('\0');
    return out;
}

/// Compress one frame's payload with `codec`. Zstd falls back to Store for
/// frames the codec cannot shrink (tiny inputs), matching what the reader
/// accepts: codec describes the *file's* strongest transform, and every
/// frame whose comp_len == raw_len is stored verbatim.
std::string encode_payload(ZFrameCodec codec, const char* p, std::size_t n) {
#if defined(SEREP_HAVE_ZSTD)
    if (codec == ZFrameCodec::Zstd && n > 0) {
        std::string comp(ZSTD_compressBound(n), '\0');
        const size_t len =
            ZSTD_compress(comp.data(), comp.size(), p, n, kZstdLevel);
        check(!ZSTD_isError(len),
              std::string("zstd compression failed: ") + ZSTD_getErrorName(len));
        if (len < n) {
            comp.resize(len);
            return comp;
        }
    }
#else
    (void)codec;
#endif
    return std::string(p, n);
}

std::string decode_payload(ZFrameCodec codec, const char* p, std::size_t comp,
                           std::size_t raw) {
    if (comp == raw) return std::string(p, comp); // stored frame
#if defined(SEREP_HAVE_ZSTD)
    if (codec == ZFrameCodec::Zstd) {
        std::string out(raw, '\0');
        const size_t len = ZSTD_decompress(out.data(), raw, p, comp);
        check_valid(!ZSTD_isError(len) && len == raw,
                    "zstd-framed database: corrupted frame (zstd payload does "
                    "not decompress to the declared length)");
        return out;
    }
#endif
    if (codec == ZFrameCodec::Zstd)
        throw ValidationError(
            "zstd-framed database: unsupported codec (file uses zstd frames "
            "but this build has no libzstd; rebuild with zstd or regenerate "
            "the database uncompressed)");
    throw ValidationError(
        "zstd-framed database: corrupted frame (store-codec frame with "
        "mismatched lengths)");
}

} // namespace

bool zstd_available() noexcept {
#if defined(SEREP_HAVE_ZSTD)
    return true;
#else
    return false;
#endif
}

bool zframe_is(const std::string& bytes) noexcept {
    return bytes.size() >= sizeof kMagic &&
           std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0;
}

// ---------------------------------------------------------------------------
// Reader

ZstdFrameReader::ZstdFrameReader(const std::string& bytes)
    : bytes_(bytes), running_hash_(kFnvOffset), codec_(ZFrameCodec::Store) {
    check_valid(bytes_.size() >= kHeaderBytes && zframe_is(bytes_),
                "zstd-framed database: bad magic (not an SRZF container)");
    check_valid(static_cast<std::uint8_t>(bytes_[4]) == kVersion,
                "zstd-framed database: unsupported container version " +
                    std::to_string(static_cast<std::uint8_t>(bytes_[4])));
    const auto codec = static_cast<std::uint8_t>(bytes_[5]);
    check_valid(codec <= static_cast<std::uint8_t>(ZFrameCodec::Zstd),
                "zstd-framed database: unknown codec id " +
                    std::to_string(codec));
    codec_ = static_cast<ZFrameCodec>(codec);
    pos_ = kHeaderBytes;
}

bool ZstdFrameReader::next(std::string& out) {
    if (done_) return false;
    check_valid(pos_ + kFrameHeaderBytes <= bytes_.size(),
                "zstd-framed database: truncated frame (file ends inside a "
                "frame header; the writer died before finish())");
    const std::uint32_t raw_len = get_u32(bytes_.data() + pos_);
    const std::uint32_t comp_len = get_u32(bytes_.data() + pos_ + 4);
    const std::uint64_t checksum = get_u64(bytes_.data() + pos_ + 8);
    pos_ += kFrameHeaderBytes;

    if (raw_len == 0 && comp_len == 0) {
        // End marker: its checksum covers every raw byte of the stream.
        check_valid(checksum == running_hash_,
                    "zstd-framed database: corrupted frame (whole-stream "
                    "checksum mismatch at end marker)");
        check_valid(pos_ == bytes_.size(),
                    "zstd-framed database: corrupted frame (trailing bytes "
                    "after end marker)");
        done_ = true;
        return false;
    }

    check_valid(pos_ + comp_len <= bytes_.size(),
                "zstd-framed database: truncated frame (file ends inside a "
                "frame payload; the writer died before finish())");
    out = decode_payload(codec_, bytes_.data() + pos_, comp_len, raw_len);
    pos_ += comp_len;
    check_valid(fnv_bytes(kFnvOffset, out.data(), out.size()) == checksum,
                "zstd-framed database: corrupted frame (per-frame checksum "
                "mismatch)");
    running_hash_ = fnv_bytes(running_hash_, out.data(), out.size());
    return true;
}

std::string zframe_decompress(const std::string& bytes) {
    ZstdFrameReader reader(bytes);
    std::string out;
    std::string frame;
    while (reader.next(frame)) out += frame;
    return out;
}

// ---------------------------------------------------------------------------
// Writer

class ZstdFrameWriter::Buf : public std::streambuf {
public:
    Buf(std::ostream& sink, std::size_t frame_raw_bytes, ZFrameCodec codec)
        : sink_(sink), frame_raw_bytes_(frame_raw_bytes ? frame_raw_bytes : 1),
          codec_(effective_codec(codec)), running_hash_(kFnvOffset) {
        sink_ << header(codec_);
    }

    void finish() {
        if (finished_) return;
        drain(true);
        std::string end;
        put_u32(end, 0);
        put_u32(end, 0);
        put_u64(end, running_hash_);
        sink_ << end;
        sink_.flush();
        finished_ = true;
        check(sink_.good(), "zstd frame writer: sink stream failed");
    }

    bool finished() const { return finished_; }

protected:
    int_type overflow(int_type ch) override {
        if (ch == traits_type::eof()) return traits_type::not_eof(ch);
        const char c = traits_type::to_char_type(ch);
        pending_.push_back(c);
        if (pending_.size() >= frame_raw_bytes_) drain(false);
        return ch;
    }

    std::streamsize xsputn(const char* s, std::streamsize n) override {
        pending_.append(s, static_cast<std::size_t>(n));
        if (pending_.size() >= frame_raw_bytes_) drain(false);
        return n;
    }

    int sync() override {
        // Intentionally does NOT cut a frame: callers flush after every JSONL
        // record and per-record frames would defeat the compressor.
        return sink_.good() ? 0 : -1;
    }

private:
    void emit_frame(const char* raw, std::size_t n) {
        const std::string payload = encode_payload(codec_, raw, n);
        std::string head;
        put_u32(head, static_cast<std::uint32_t>(n));
        put_u32(head, static_cast<std::uint32_t>(payload.size()));
        put_u64(head, fnv_bytes(kFnvOffset, raw, n));
        sink_ << head << payload;
        running_hash_ = fnv_bytes(running_hash_, raw, n);
    }

    /// Emit every full frame_raw_bytes_-sized frame pending_ holds — one
    /// oversized write becomes many bounded frames, never one huge one —
    /// plus, when `all` (finish()), the final short frame.
    void drain(bool all) {
        std::size_t off = 0;
        while (pending_.size() - off >= frame_raw_bytes_) {
            emit_frame(pending_.data() + off, frame_raw_bytes_);
            off += frame_raw_bytes_;
        }
        if (all && off < pending_.size()) {
            emit_frame(pending_.data() + off, pending_.size() - off);
            off = pending_.size();
        }
        pending_.erase(0, off);
    }

    std::ostream& sink_;
    std::size_t frame_raw_bytes_;
    ZFrameCodec codec_;
    std::uint64_t running_hash_;
    std::string pending_;
    bool finished_ = false;
};

ZstdFrameWriter::ZstdFrameWriter(std::ostream& sink,
                                 std::size_t frame_raw_bytes,
                                 ZFrameCodec codec)
    : buf_(std::make_unique<Buf>(sink, frame_raw_bytes, codec)),
      stream_(buf_.get()) {}

ZstdFrameWriter::~ZstdFrameWriter() {
    try {
        finish();
    } catch (...) {
        // Destructor path: the sink already failed; finish() explicitly to
        // observe the error.
    }
}

void ZstdFrameWriter::finish() { buf_->finish(); }

std::string zframe_compress(const std::string& text, ZFrameCodec codec) {
    std::ostringstream out;
    {
        ZstdFrameWriter zw(out, ZstdFrameWriter::kDefaultFrameBytes, codec);
        zw.stream().write(text.data(),
                          static_cast<std::streamsize>(text.size()));
        zw.finish();
    }
    return out.str();
}

} // namespace serep::util
