#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace serep::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
    cells.resize(columns_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string Table::pct(double v, int precision) { return num(v, precision) + "%"; }

std::string Table::str() const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            const std::string& s = c < cells.size() ? cells[c] : std::string{};
            os << "| " << s << std::string(width[c] - s.size() + 1, ' ');
        }
        os << "|\n";
    };
    emit(columns_);
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << "|" << std::string(width[c] + 2, '-');
    os << "|\n";
    for (const auto& row : rows_) emit(row);
    return os.str();
}

} // namespace serep::util
