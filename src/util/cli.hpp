// Tiny command-line flag parser for the bench harnesses and examples.
// Supports `--key value`, `--key=value`, and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace serep::util {

class Cli {
public:
    Cli(int argc, const char* const* argv);

    bool has(const std::string& key) const { return kv_.count(key) != 0; }
    std::string get(const std::string& key, const std::string& dflt) const;
    std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
    double get_double(const std::string& key, double dflt) const;

private:
    std::map<std::string, std::string> kv_;
};

} // namespace serep::util
