// Tiny command-line flag parser for the bench harnesses, examples, and the
// serep tool. Supports `--key value`, `--key=value`, boolean `--flag`, and
// positional operands (subcommands, input files) collected in argv order.
//
// The `--flag positional` ambiguity: a bare `--key` greedily takes the next
// non-flag token as its value, so `serep report --partial out.csv` used to
// swallow the input file as the value of --partial. Commands resolve this by
// declaring their boolean flags up front (`bool_flags`): a declared flag
// never consumes the following token. Undeclared keys keep the greedy
// `--key value` form, so pass `--key=value` when positionals follow one.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace serep::util {

class Cli {
public:
    /// `bool_flags` names the value-less flags of this command; a bare
    /// occurrence parses as "1" instead of eating the next positional.
    Cli(int argc, const char* const* argv,
        std::initializer_list<const char*> bool_flags = {});

    bool has(const std::string& key) const { return kv_.count(key) != 0; }
    std::string get(const std::string& key, const std::string& dflt) const;
    std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
    double get_double(const std::string& key, double dflt) const;

    /// Arguments that are neither flags nor flag values, in argv order.
    const std::vector<std::string>& positional() const { return positional_; }

    /// The unknown-flag audit: throw util::UsageError naming every parsed
    /// --flag outside `known` ("--help" is always allowed). A mistyped flag
    /// must never be silently ignored — before this audit, `serep campaign
    /// --fault=500` happily ran 100 faults.
    void require_known(std::initializer_list<const char*> known) const;
    /// Same audit over a runtime-assembled list (shared flag sets like
    /// exp::legacy_cli_flags()).
    void require_known(const std::vector<std::string>& known) const;

private:
    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

} // namespace serep::util
