// Tiny command-line flag parser for the bench harnesses, examples, and the
// serep tool. Supports `--key value`, `--key=value`, boolean `--flag`, and
// positional operands (subcommands, input files) collected in argv order.
// Note the inherent `--flag positional` ambiguity: a bare `--key` greedily
// takes the next non-flag token as its value, so pass `--key=value` when
// positionals follow.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace serep::util {

class Cli {
public:
    Cli(int argc, const char* const* argv);

    bool has(const std::string& key) const { return kv_.count(key) != 0; }
    std::string get(const std::string& key, const std::string& dflt) const;
    std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
    double get_double(const std::string& key, double dflt) const;

    /// Arguments that are neither flags nor flag values, in argv order.
    const std::vector<std::string>& positional() const { return positional_; }

    /// The unknown-flag audit: throw util::UsageError naming every parsed
    /// --flag outside `known` ("--help" is always allowed). A mistyped flag
    /// must never be silently ignored — before this audit, `serep campaign
    /// --fault=500` happily ran 100 faults.
    void require_known(std::initializer_list<const char*> known) const;
    /// Same audit over a runtime-assembled list (shared flag sets like
    /// exp::legacy_cli_flags()).
    void require_known(const std::vector<std::string>& known) const;

private:
    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

} // namespace serep::util
