#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace serep::util {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    return out;
}

void JsonWriter::pre_value() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_elem_.empty()) {
        if (has_elem_.back()) out_ << ',';
        has_elem_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    pre_value();
    out_ << '{';
    has_elem_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    has_elem_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre_value();
    out_ << '[';
    has_elem_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    has_elem_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
    if (!has_elem_.empty()) {
        if (has_elem_.back()) out_ << ',';
        has_elem_.back() = true;
    }
    out_ << '"' << json_escape(k) << "\":";
    after_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
    pre_value();
    out_ << '"' << json_escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    pre_value();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", v);
        out_ << buf;
    } else {
        out_ << "null"; // JSON has no inf/nan
    }
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    pre_value();
    out_ << (v ? "true" : "false");
    return *this;
}

} // namespace serep::util
