#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace serep::util {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    return out;
}

void JsonWriter::pre_value() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_elem_.empty()) {
        if (has_elem_.back()) out_ << ',';
        has_elem_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    pre_value();
    out_ << '{';
    has_elem_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    has_elem_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre_value();
    out_ << '[';
    has_elem_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    has_elem_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
    if (!has_elem_.empty()) {
        if (has_elem_.back()) out_ << ',';
        has_elem_.back() = true;
    }
    out_ << '"' << json_escape(k) << "\":";
    after_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
    pre_value();
    out_ << '"' << json_escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    pre_value();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", v);
        out_ << buf;
    } else {
        out_ << "null"; // JSON has no inf/nan
    }
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    pre_value();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::value_null() {
    pre_value();
    out_ << "null";
    return *this;
}

// ---- parser ----

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : obj)
        if (k == key) return &v;
    return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const JsonValue* v = find(key);
    check(v != nullptr, "json: missing member '" + key + "'");
    return *v;
}

const std::string& JsonValue::as_string() const {
    check(type == Type::String, "json: not a string");
    return str;
}

std::uint64_t JsonValue::as_u64() const {
    check(type == Type::Number && is_integer, "json: not an integer");
    return u64;
}

double JsonValue::as_double() const {
    check(type == Type::Number, "json: not a number");
    return number;
}

bool JsonValue::as_bool() const {
    check(type == Type::Bool, "json: not a bool");
    return boolean;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    JsonValue document() {
        JsonValue v = value();
        skip_ws();
        check(pos_ == s_.size(), "json: trailing characters at " + here());
        return v;
    }

private:
    std::string here() const { return "offset " + std::to_string(pos_); }

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                    s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        check(pos_ < s_.size(), "json: unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        check(pos_ < s_.size() && s_[pos_] == c,
              std::string("json: expected '") + c + "' at " + here());
        ++pos_;
    }

    bool consume_word(const char* w) {
        std::size_t n = 0;
        while (w[n]) ++n;
        if (s_.compare(pos_, n, w) != 0) return false;
        pos_ += n;
        return true;
    }

    // Recursion guard: the parser descends once per container level, so a
    // hostile/corrupt input like "[[[[..." would otherwise overflow the
    // stack instead of throwing. Shard databases nest 3 levels deep; 64 is
    // generous for any document we emit.
    static constexpr int kMaxDepth = 64;

    JsonValue value() {
        skip_ws();
        check(depth_ < kMaxDepth, "json: nesting deeper than 64 levels");
        JsonValue v;
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"':
                v.type = JsonValue::Type::String;
                v.str = string();
                return v;
            case 't':
                check(consume_word("true"), "json: bad literal at " + here());
                v.type = JsonValue::Type::Bool;
                v.boolean = true;
                return v;
            case 'f':
                check(consume_word("false"), "json: bad literal at " + here());
                v.type = JsonValue::Type::Bool;
                return v;
            case 'n':
                check(consume_word("null"), "json: bad literal at " + here());
                return v;
            default: return number();
        }
    }

    JsonValue object() {
        expect('{');
        ++depth_;
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            --depth_;
            return v;
        }
    }

    JsonValue array() {
        expect('[');
        ++depth_;
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            --depth_;
            return v;
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        for (;;) {
            check(pos_ < s_.size(), "json: unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            check(pos_ < s_.size(), "json: unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    check(pos_ + 4 <= s_.size(), "json: short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') cp |= h - '0';
                        else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
                        else fail("json: bad \\u escape at " + here());
                    }
                    check(cp < 0xD800 || cp > 0xDFFF,
                          "json: surrogate pairs unsupported");
                    // UTF-8 encode the BMP code point.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default: fail("json: bad escape at " + here());
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        bool integral = true;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            integral = false;
            ++pos_;
            while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
            while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
        }
        const std::string tok = s_.substr(start, pos_ - start);
        check(!tok.empty() && tok != "-", "json: bad number at " + here());
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::strtod(tok.c_str(), nullptr);
        if (integral && tok[0] != '-') {
            v.is_integer = true;
            v.u64 = std::strtoull(tok.c_str(), nullptr, 10);
        }
        return v;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

JsonValue json_parse(const std::string& text) { return Parser(text).document(); }

} // namespace serep::util
