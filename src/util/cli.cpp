#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace serep::util {

Cli::Cli(int argc, const char* const* argv,
         std::initializer_list<const char*> bool_flags) {
    const auto is_bool = [&](const std::string& key) {
        for (const char* f : bool_flags)
            if (key == f) return true;
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (!is_bool(arg) && i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            kv_[arg] = argv[++i];
        } else {
            kv_[arg] = "1";
        }
    }
}

std::string Cli::get(const std::string& key, const std::string& dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t dflt) const {
    const auto it = kv_.find(key);
    // Base 0 auto-detects 0x-prefixed hex, so `--seed=0xDAC2018` means what
    // it says instead of silently parsing as 0.
    return it == kv_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& key, double dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

void Cli::require_known(const std::vector<std::string>& known) const {
    std::string offenders;
    for (const auto& kv : kv_) {
        if (kv.first == "help") continue;
        bool ok = false;
        for (const std::string& k : known) ok = ok || kv.first == k;
        if (!ok) offenders += (offenders.empty() ? "--" : ", --") + kv.first;
    }
    if (offenders.empty()) return;
    if (known.empty())
        fail_usage("unknown flag " + offenders +
                   " (this command takes no --flags)");
    std::string expected;
    for (const std::string& k : known)
        expected += (expected.empty() ? "--" : ", --") + k;
    fail_usage("unknown flag " + offenders + " (known flags here: " +
               expected + ")");
}

void Cli::require_known(std::initializer_list<const char*> known) const {
    require_known(std::vector<std::string>(known.begin(), known.end()));
}

} // namespace serep::util
