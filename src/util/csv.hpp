// Minimal CSV writer/reader used by the campaign results database and the
// data-mining tool. Values containing separators or quotes are quoted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace serep::util {

/// Streams rows of string cells as RFC-4180-ish CSV.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(out) {}

    void row(const std::vector<std::string>& cells);

private:
    std::ostream& out_;
};

/// Parse one CSV line into cells (handles quoted cells and embedded quotes).
std::vector<std::string> csv_parse_line(const std::string& line);

/// Parse a whole CSV document (splits on '\n', skips empty trailing line).
std::vector<std::vector<std::string>> csv_parse(const std::string& text);

} // namespace serep::util
