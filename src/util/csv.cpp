#include "util/csv.hpp"

#include <sstream>

namespace serep::util {

namespace {

bool needs_quoting(const std::string& cell) {
    return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& cell) {
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << (needs_quoting(cells[i]) ? quoted(cells[i]) : cells[i]);
    }
    out_ << '\n';
}

std::vector<std::string> csv_parse_line(const std::string& line) {
    std::vector<std::string> cells;
    std::string cur;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            cells.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cells.push_back(std::move(cur));
    return cells;
}

std::vector<std::vector<std::string>> csv_parse(const std::string& text) {
    std::vector<std::vector<std::string>> rows;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        rows.push_back(csv_parse_line(line));
    }
    return rows;
}

} // namespace serep::util
