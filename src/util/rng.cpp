#include "util/rng.hpp"

namespace serep::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Lemire-style rejection to avoid modulo bias.
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

} // namespace serep::util
