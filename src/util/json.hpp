// Minimal streaming JSON writer — the campaign database's JSON sibling to
// CsvWriter. Emits compact RFC 8259 output; commas and string escaping are
// handled by a container-state stack so callers just nest begin/end calls.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace serep::util {

std::string json_escape(const std::string& s);

class JsonWriter {
public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emit an object key; the next value/begin call is its value.
    JsonWriter& key(const std::string& k);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(double v);
    JsonWriter& value(bool v);

private:
    void pre_value();

    std::ostream& out_;
    /// One entry per open container: true once it holds an element.
    std::vector<bool> has_elem_;
    bool after_key_ = false;
};

} // namespace serep::util
