// Minimal streaming JSON writer — the campaign database's JSON sibling to
// CsvWriter. Emits compact RFC 8259 output; commas and string escaping are
// handled by a container-state stack so callers just nest begin/end calls.
//
// json_parse() is the reader half: a small recursive-descent parser into a
// JsonValue tree, used by the shard merger to read shard outcome databases
// (manifest + record lines). Integer literals are kept exact as uint64 in
// addition to the double view, so 64-bit ids and seeds round-trip.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace serep::util {

std::string json_escape(const std::string& s);

/// Parsed JSON document node. Object member order is preserved.
struct JsonValue {
    enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::uint64_t u64 = 0;     ///< exact value for non-negative integer literals
    bool is_integer = false;   ///< u64 is valid
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue* find(const std::string& key) const noexcept;
    /// Member lookup that throws util::Error when absent (manifest fields).
    const JsonValue& at(const std::string& key) const;
    /// Typed accessors; throw util::Error on a type mismatch.
    const std::string& as_string() const;
    std::uint64_t as_u64() const;
    double as_double() const;
    bool as_bool() const;
};

/// Parse one JSON document (throws util::Error on malformed input or
/// trailing garbage). Supports the RFC 8259 grammar emitted by JsonWriter;
/// \uXXXX escapes outside the Basic Multilingual Plane are rejected.
JsonValue json_parse(const std::string& text);

class JsonWriter {
public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emit an object key; the next value/begin call is its value.
    JsonWriter& key(const std::string& k);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(double v);
    JsonWriter& value(bool v);
    JsonWriter& value_null();

private:
    void pre_value();

    std::ostream& out_;
    /// One entry per open container: true once it holds an element.
    std::vector<bool> has_elem_;
    bool after_key_ = false;
};

} // namespace serep::util
