#include "kgen/kgen.hpp"

#include "rt/frames.hpp"
#include "util/bitops.hpp"
#include "util/check.hpp"

namespace serep::kgen {

using isa::Cond;
using isa::Profile;
using util::check;

KGen::KGen(Assembler& a, CodegenOptions o)
    : a(a), opts(o), v7(a.profile() == Profile::V7), W(a.wbytes()) {}

// ---------------- integer variables ----------------

Reg KGen::ivar() {
    const unsigned count = a.sav_count();
    for (unsigned i = 0; i < count; ++i) {
        if (!(ivar_mask_ & (1u << i))) {
            ivar_mask_ |= 1u << i;
            return a.sav(i);
        }
    }
    util::fail("KGen: out of integer variable registers");
}

void KGen::release(Reg r) {
    for (unsigned i = 0; i < a.sav_count(); ++i) {
        if (a.sav(i) == r) {
            check((ivar_mask_ & (1u << i)) != 0, "KGen: double release");
            ivar_mask_ &= ~(1u << i);
            return;
        }
    }
    util::fail("KGen: release of non-ivar register");
}

unsigned KGen::ivars_free() const {
    unsigned used = 0;
    for (unsigned i = 0; i < a.sav_count(); ++i)
        used += (ivar_mask_ >> i) & 1;
    return a.sav_count() - used;
}

// ---------------- frames ----------------

void KGen::enter_frame(unsigned fp_slots) {
    check(!in_frame_, "KGen: nested frames are not supported");
    in_frame_ = true;
    frame_slots_ = fp_slots;
    rt::push_saved(a); // callee-saved set + lr (bodies are blr'd by runtimes)
    if (v7) {
        check(fp_slots <= 32, "KGen: too many V7 FP slots");
        if (fp_slots) a.subi(a.sp(), a.sp(), fp_slots * 8);
    } else {
        // save the callee-saved FP window V8..V23 backing the FVs
        a.subi(a.sp(), a.sp(), 16 * 8);
        for (unsigned i = 0; i < 16; ++i)
            a.fstr(static_cast<Reg>(8 + i), a.sp(), i * 8);
    }
}

void KGen::leave_frame() {
    check(in_frame_, "KGen: leave_frame without enter_frame");
    in_frame_ = false;
    if (v7) {
        if (frame_slots_) a.addi(a.sp(), a.sp(), frame_slots_ * 8);
    } else {
        for (unsigned i = 0; i < 16; ++i)
            a.fldr(static_cast<Reg>(8 + i), a.sp(), i * 8);
        a.addi(a.sp(), a.sp(), 16 * 8);
    }
    rt::pop_saved(a);
    check(fv_mask_ == 0, "KGen: leaked FV at leave_frame");
    ivar_mask_ = 0; // frame end releases every integer variable
}

// ---------------- FP values ----------------

FV KGen::fv() {
    const unsigned limit = v7 ? frame_slots_ : 16;
    check(!v7 || in_frame_, "KGen: V7 FVs need a frame");
    for (unsigned i = 0; i < limit; ++i) {
        if (!(fv_mask_ & (1u << i))) {
            fv_mask_ |= 1u << i;
            return FV{static_cast<std::uint16_t>(i)};
        }
    }
    util::fail("KGen: out of FP values");
}

void KGen::ffree(FV v) {
    check(v.valid() && (fv_mask_ & (1u << v.id)), "KGen: bad ffree");
    fv_mask_ &= ~(1u << v.id);
}

void KGen::fli(FV dst, double value) {
    if (v7) {
        const std::uint64_t bits = util::f64_bits(value);
        a.movi(0, static_cast<std::int64_t>(bits & 0xFFFFFFFFu));
        a.movi(1, static_cast<std::int64_t>(bits >> 32));
        store_res(dst);
    } else {
        a.fmovi(vreg(dst), value);
    }
}

void KGen::fmov(FV dst, FV src) {
    if (dst.id == src.id) return;
    if (v7) {
        a.ldr(0, a.sp(), slot_off(src));
        a.ldr(1, a.sp(), slot_off(src) + 4);
        store_res(dst);
    } else {
        a.fmov(vreg(dst), vreg(src));
    }
}

void KGen::fld(FV dst, Reg base, Reg idx) {
    if (v7) {
        // route the address through r0 so callers may keep live values in
        // r3/r12 (base/idx must not be r0/r1)
        a.lsli(0, idx, 3);
        a.add(0, base, 0);
        a.ldr(1, 0, 4);
        a.ldr(0, 0, 0);
        store_res(dst);
    } else {
        a.fldr_idx(vreg(dst), base, idx, 3);
    }
}

void KGen::fld_imm(FV dst, Reg base, std::int64_t elem_index) {
    if (v7) {
        a.ldr(0, base, elem_index * 8);
        a.ldr(1, base, elem_index * 8 + 4);
        store_res(dst);
    } else {
        a.fldr(vreg(dst), base, elem_index * 8);
    }
}

void KGen::fst(FV src, Reg base, Reg idx) {
    if (v7) {
        a.lsli(0, idx, 3);
        a.add(0, base, 0);
        a.ldr(1, a.sp(), slot_off(src));
        a.str(1, 0, 0);
        a.ldr(1, a.sp(), slot_off(src) + 4);
        a.str(1, 0, 4);
    } else {
        a.fstr_idx(vreg(src), base, idx, 3);
    }
}

void KGen::fst_imm(FV src, Reg base, std::int64_t elem_index) {
    if (v7) {
        a.ldr(0, a.sp(), slot_off(src));
        a.ldr(1, a.sp(), slot_off(src) + 4);
        a.str(0, base, elem_index * 8);
        a.str(1, base, elem_index * 8 + 4);
    } else {
        a.fstr(vreg(src), base, elem_index * 8);
    }
}

void KGen::load_ab(FV x, FV y) {
    a.ldr(0, a.sp(), slot_off(x));
    a.ldr(1, a.sp(), slot_off(x) + 4);
    a.ldr(2, a.sp(), slot_off(y));
    a.ldr(3, a.sp(), slot_off(y) + 4);
}

void KGen::store_res(FV dst) {
    a.str(0, a.sp(), slot_off(dst));
    a.str(1, a.sp(), slot_off(dst) + 4);
}

void KGen::binop_call(const char* sym, FV dst, FV x, FV y) {
    load_ab(x, y);
    a.bl(sym);
    store_res(dst);
}

void KGen::fadd(FV dst, FV x, FV y) {
    if (v7) binop_call("__adddf3", dst, x, y);
    else a.fadd(vreg(dst), vreg(x), vreg(y));
}
void KGen::fsub(FV dst, FV x, FV y) {
    if (v7) binop_call("__subdf3", dst, x, y);
    else a.fsub(vreg(dst), vreg(x), vreg(y));
}
void KGen::fmul(FV dst, FV x, FV y) {
    if (v7) binop_call("__muldf3", dst, x, y);
    else a.fmul(vreg(dst), vreg(x), vreg(y));
}
void KGen::fdiv(FV dst, FV x, FV y) {
    if (v7) binop_call("__divdf3", dst, x, y);
    else a.fdiv(vreg(dst), vreg(x), vreg(y));
}

void KGen::fneg(FV dst, FV x) {
    if (v7) {
        a.ldr(0, a.sp(), slot_off(x));
        a.ldr(1, a.sp(), slot_off(x) + 4);
        a.eori(1, 1, 0x80000000u);
        store_res(dst);
    } else {
        a.fneg(vreg(dst), vreg(x));
    }
}

void KGen::fmac(FV acc, FV x, FV y) {
    if (v7) {
        // product stays in r0:r1 between the two library calls
        load_ab(x, y);
        a.bl("__muldf3");
        a.ldr(2, a.sp(), slot_off(acc));
        a.ldr(3, a.sp(), slot_off(acc) + 4);
        a.bl("__adddf3");
        store_res(acc);
    } else if (opts.contract_fma) {
        a.fmadd(vreg(acc), vreg(x), vreg(y), vreg(acc));
    } else {
        // contraction disabled: separate round-to-nearest mul and add,
        // mirroring -ffp-contract=off
        a.fmul(0, vreg(x), vreg(y)); // V0/V1 are scratch outside the FV window
        a.fadd(vreg(acc), vreg(acc), 0);
    }
}

void KGen::fcmp(FV x, FV y) {
    if (v7) {
        load_ab(x, y);
        a.bl("__cmpdf2");
        a.cmpi(0, 0);
    } else {
        a.fcmp(vreg(x), vreg(y));
    }
}

void KGen::f2i(Reg dst, FV x) {
    if (v7) {
        a.ldr(0, a.sp(), slot_off(x));
        a.ldr(1, a.sp(), slot_off(x) + 4);
        a.bl("__fixdfsi");
        a.mov(dst, 0);
    } else {
        a.fcvtzs(dst, vreg(x));
    }
}

void KGen::i2f(FV dst, Reg src) {
    if (v7) {
        a.mov(0, src);
        a.bl("__floatsidf");
        store_res(dst);
    } else {
        a.scvtf(vreg(dst), src);
    }
}

// ---------------- integer helpers ----------------

void KGen::idiv(Reg dst, Reg n, Reg d) {
    if (v7) {
        a.mov(0, n);
        a.mov(1, d);
        a.bl("__udiv32");
        a.mov(dst, 0);
    } else {
        a.udiv(dst, n, d);
    }
}

void KGen::imod(Reg dst, Reg n, Reg d) {
    if (v7) {
        a.mov(0, n);
        a.mov(1, d);
        a.bl("__udiv32");
        a.mov(dst, 1); // remainder comes back in r1
    } else {
        a.udiv(0, n, d);
        a.mul(0, 0, d);
        a.sub(dst, n, 0);
    }
}

void KGen::lcg_step(Reg x) {
    a.movi(12, 1103515245);
    a.mul(x, x, 12);
    a.addi(x, x, 12345);
    if (!v7) a.andi(x, x, 0xFFFFFFFFu); // keep sequences identical across ISAs
}

// ---------------- control flow ----------------

void KGen::for_up(Reg i, std::int64_t from, Reg to_exclusive,
                  const std::function<void()>& body) {
    a.movi(i, from);
    auto loop = a.newl(), done = a.newl();
    a.bind(loop);
    a.cmp(i, to_exclusive);
    a.b(Cond::GE, done);
    body();
    a.addi(i, i, 1);
    a.b(loop);
    a.bind(done);
}

void KGen::for_up_imm(Reg i, std::int64_t from, std::int64_t to_exclusive,
                      const std::function<void()>& body) {
    a.movi(i, from);
    auto loop = a.newl(), done = a.newl();
    a.bind(loop);
    a.cmpi(i, to_exclusive);
    a.b(Cond::GE, done);
    body();
    a.addi(i, i, 1);
    a.b(loop);
    a.bind(done);
}

void KGen::par_bounds(Reg begin, Reg end, Reg n, Reg tid, Reg nth) {
    // `n` may arrive in a volatile register (r12); stash it in `begin`
    // before the division call can clobber it.
    a.mov(begin, n);
    a.add(end, n, nth);
    a.subi(end, end, 1);
    idiv(end, end, nth); // chunk = ceil(n / nth); begin (callee-saved) survives
    a.mul(12, end, tid); // r12 = tid*chunk (no calls below)
    a.add(end, 12, end);
    // clamp both to n (held in `begin`)
    if (v7) {
        a.cmp(12, begin);
        a.when(Cond::GT).mov(12, begin);
        a.cmp(end, begin);
        a.when(Cond::GT).mov(end, begin);
    } else {
        a.cmp(12, begin);
        a.csel(12, begin, 12, Cond::GT);
        a.cmp(end, begin);
        a.csel(end, begin, end, Cond::GT);
    }
    a.mov(begin, 12);
}

} // namespace serep::kgen
