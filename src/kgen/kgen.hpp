// Code-generation eDSL over the assembler — the "compiler" for application
// kernels. One kernel source (C++ builder code) lowers differently per
// profile, reproducing the compiler behaviours the paper reasons about:
//
//  * V8: doubles live in FP registers; FP ops are single instructions
//    (FMADD fused); divisions are hardware.
//  * V7: doubles live in stack slots; every FP op loads operands into
//    r0..r3, calls the soft-float library and stores the result back —
//    the "load/store template with recycled registers" the paper blames
//    for the higher ARMv7 UT rate — and integer division is a call.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "kasm/assembler.hpp"

namespace serep::kgen {

using kasm::Assembler;
using kasm::Reg;

/// A double-precision value handle: an FP register on V8, a stack slot on V7.
struct FV {
    std::uint16_t id = 0xFFFF;
    bool valid() const noexcept { return id != 0xFFFF; }
};

/// Codegen options — the paper's future-work "compiler flags" axis.
struct CodegenOptions {
    /// Allow fused multiply-add contraction on V8 (-ffp-contract analogue).
    bool contract_fma = true;
};

class KGen {
public:
    explicit KGen(Assembler& a, CodegenOptions opts = {});

    Assembler& a;
    const CodegenOptions opts;
    const bool v7;
    const unsigned W;

    // ---- integer variable registers (callee-saved pool) ----
    Reg ivar();
    void release(Reg r);
    unsigned ivars_free() const;

    // ---- function frames ----
    /// Open a frame with room for `fp_slots` V7 stack slots (no-op cost on
    /// V8 beyond bookkeeping). Must bracket all FV use inside a function.
    void enter_frame(unsigned fp_slots);
    void leave_frame();

    // ---- FP values ----
    FV fv();
    void ffree(FV v);
    void fli(FV dst, double value);
    void fmov(FV dst, FV src);
    /// dst = base[idx]  (8-byte elements; idx is an element index register)
    void fld(FV dst, Reg base, Reg idx);
    void fld_imm(FV dst, Reg base, std::int64_t elem_index);
    void fst(FV src, Reg base, Reg idx);
    void fst_imm(FV src, Reg base, std::int64_t elem_index);
    void fadd(FV dst, FV x, FV y);
    void fsub(FV dst, FV x, FV y);
    void fmul(FV dst, FV x, FV y);
    void fdiv(FV dst, FV x, FV y);
    void fneg(FV dst, FV x);
    /// acc += x*y — FMADD on V8 (fused), mul-then-add calls on V7.
    void fmac(FV acc, FV x, FV y);
    /// set NZCV from (x ? y): use signed conditions (LT/GT/EQ/GE/LE).
    void fcmp(FV x, FV y);
    void f2i(Reg dst, FV x);
    void i2f(FV dst, Reg src);

    // ---- integer helpers ----
    /// dst = n / d (unsigned; soft division call on V7)
    void idiv(Reg dst, Reg n, Reg d);
    /// dst = n % d
    void imod(Reg dst, Reg n, Reg d);
    /// 32-bit LCG step identical on both profiles: x = (x*1103515245+12345) & 0xFFFFFFFF
    void lcg_step(Reg x);

    // ---- structured control flow ----
    /// for (i = from; i < to_reg; ++i) body().  `i` must be an ivar.
    void for_up(Reg i, std::int64_t from, Reg to_exclusive,
                const std::function<void()>& body);
    void for_up_imm(Reg i, std::int64_t from, std::int64_t to_exclusive,
                    const std::function<void()>& body);

    /// Compute this thread's [begin, end) block for n items over nth threads:
    /// chunk = ceil(n / nth); begin = min(tid*chunk, n); end = min(begin+chunk, n).
    void par_bounds(Reg begin, Reg end, Reg n, Reg tid, Reg nth);

    /// V8 FP register backing an FV: the callee-saved window V8..V23
    /// (kgen frames save/restore it, so FVs survive function calls).
    Reg vreg(FV v) const { return static_cast<Reg>(8 + v.id); }

private:
    std::int64_t slot_off(FV v) const { return static_cast<std::int64_t>(v.id) * 8; }
    void load_ab(FV x, FV y);   // V7: x -> r0:r1, y -> r2:r3
    void store_res(FV dst);     // V7: r0:r1 -> dst slot
    void binop_call(const char* sym, FV dst, FV x, FV y);

    std::uint32_t ivar_mask_ = 0; // allocated callee-saved indices
    std::uint32_t fv_mask_ = 0;   // allocated FV ids (V8: V regs; V7: slots)
    unsigned frame_slots_ = 0;
    bool in_frame_ = false;
    std::map<std::uint64_t, std::uint64_t> const_pool_; // unused on V7 (movi pairs)
};

} // namespace serep::kgen
