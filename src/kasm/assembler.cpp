#include "kasm/assembler.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace serep::kasm {

using isa::Cond;
using isa::Instr;
using isa::Op;
using util::check;

// ---------- DataSeg ----------

std::uint64_t DataSeg::align(std::uint64_t a) {
    check(a != 0 && (a & (a - 1)) == 0, "DataSeg::align: power of two required");
    size_ = (size_ + a - 1) & ~(a - 1);
    return cursor();
}

std::uint64_t DataSeg::reserve(std::uint64_t n) {
    const std::uint64_t va = cursor();
    size_ += n;
    return va;
}

void DataSeg::emit(const void* data, std::size_t n) {
    // Coalesce with the previous chunk when contiguous.
    const std::uint64_t va = cursor();
    if (!chunks_.empty()) {
        DataChunk& last = chunks_.back();
        if (last.vaddr + last.bytes.size() == va) {
            const auto* p = static_cast<const std::uint8_t*>(data);
            last.bytes.insert(last.bytes.end(), p, p + n);
            size_ += n;
            return;
        }
    }
    DataChunk c;
    c.vaddr = va;
    c.bytes.assign(static_cast<const std::uint8_t*>(data),
                   static_cast<const std::uint8_t*>(data) + n);
    chunks_.push_back(std::move(c));
    size_ += n;
}

std::uint64_t DataSeg::u8(std::uint8_t v) {
    const std::uint64_t va = cursor();
    emit(&v, 1);
    return va;
}
std::uint64_t DataSeg::u32(std::uint32_t v) {
    align(4);
    const std::uint64_t va = cursor();
    emit(&v, 4);
    return va;
}
std::uint64_t DataSeg::u64v(std::uint64_t v) {
    align(8);
    const std::uint64_t va = cursor();
    emit(&v, 8);
    return va;
}
std::uint64_t DataSeg::f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    return u64v(bits);
}
std::uint64_t DataSeg::bytes(const void* data, std::size_t n) {
    const std::uint64_t va = cursor();
    emit(data, n);
    return va;
}

// ---------- Assembler ----------

Assembler::Assembler(isa::Profile p) : prof_(p), info_(isa::profile_info(p)) {
    image_.profile = p;
    image_.code_base = isa::layout::kCodeBase;
}

Reg Assembler::tmp(unsigned i) const {
    if (prof_ == isa::Profile::V7) {
        static constexpr Reg t[] = {0, 1, 2, 3, 12};
        check(i < 5, "V7 has 5 scratch registers (r0-r3, r12)");
        return t[i];
    }
    check(i < 16, "V8 scratch registers are x0-x15");
    return static_cast<Reg>(i);
}

Reg Assembler::sav(unsigned i) const {
    if (prof_ == isa::Profile::V7) {
        check(i < 8, "V7 callee-saved registers are r4-r11");
        return static_cast<Reg>(4 + i);
    }
    check(i < 10, "V8 callee-saved registers are x19-x28");
    return static_cast<Reg>(19 + i);
}

Label Assembler::newl() {
    label_addr_.push_back(-1);
    return Label{static_cast<std::uint32_t>(label_addr_.size() - 1)};
}

void Assembler::bind(Label l) {
    check(l.id < label_addr_.size(), "bind: unknown label");
    check(label_addr_[l.id] < 0, "bind: label already bound");
    label_addr_[l.id] = static_cast<std::int64_t>(here());
}

void Assembler::func(const std::string& name, ModTag tag) {
    check(sym_addr_.count(name) == 0, "duplicate function symbol: " + name);
    sym_addr_[name] = here();
    image_.code_syms.push_back(CodeSymbol{name, here(), tag});
}

void Assembler::data_sym(const std::string& name, std::uint64_t va) {
    check(image_.data_syms.count(name) == 0, "duplicate data symbol: " + name);
    image_.data_syms[name] = va;
}

void Assembler::push(Instr ins) {
    if (pending_cond_ != Cond::AL) {
        check(prof_ == isa::Profile::V7,
              "conditional execution is a V7-only feature");
        check(ins.op != Op::BCOND && ins.op != Op::CSEL && ins.op != Op::CSET,
              "when(): wrong opcode");
        ins.cond = pending_cond_;
        pending_cond_ = Cond::AL;
    }
    code_.push_back(ins);
}

void Assembler::emit(Instr ins) {
    check(isa::op_valid_for(ins.op, prof_),
          std::string("opcode invalid for profile: ") + isa::op_info(ins.op).name);
    push(ins);
}

namespace {
Instr make(Op op, Reg rd = isa::kNoReg, Reg rn = isa::kNoReg,
           Reg rm = isa::kNoReg, std::int64_t imm = 0) {
    Instr i;
    i.op = op;
    i.rd = rd;
    i.rn = rn;
    i.rm = rm;
    i.imm = imm;
    return i;
}
} // namespace

void Assembler::movi(Reg rd, std::int64_t imm) { emit(make(Op::MOVI, rd, isa::kNoReg, isa::kNoReg, imm)); }

void Assembler::movi_sym(Reg rd, const std::string& sym) {
    sym_fixups_.push_back(SymFixup{code_.size(), sym, true});
    emit(make(Op::MOVI, rd, isa::kNoReg, isa::kNoReg, 0));
}

void Assembler::mov(Reg rd, Reg rn) { emit(make(Op::MOV, rd, rn)); }
void Assembler::mvn(Reg rd, Reg rn) { emit(make(Op::MVN, rd, rn)); }
void Assembler::add(Reg rd, Reg rn, Reg rm) { emit(make(Op::ADD, rd, rn, rm)); }
void Assembler::sub(Reg rd, Reg rn, Reg rm) { emit(make(Op::SUB, rd, rn, rm)); }
void Assembler::and_(Reg rd, Reg rn, Reg rm) { emit(make(Op::AND, rd, rn, rm)); }
void Assembler::orr(Reg rd, Reg rn, Reg rm) { emit(make(Op::ORR, rd, rn, rm)); }
void Assembler::eor(Reg rd, Reg rn, Reg rm) { emit(make(Op::EOR, rd, rn, rm)); }
void Assembler::mul(Reg rd, Reg rn, Reg rm) { emit(make(Op::MUL, rd, rn, rm)); }
void Assembler::addi(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::ADDI, rd, rn, isa::kNoReg, imm)); }
void Assembler::subi(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::SUBI, rd, rn, isa::kNoReg, imm)); }
void Assembler::andi(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::ANDI, rd, rn, isa::kNoReg, imm)); }
void Assembler::orri(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::ORRI, rd, rn, isa::kNoReg, imm)); }
void Assembler::eori(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::EORI, rd, rn, isa::kNoReg, imm)); }
void Assembler::adds(Reg rd, Reg rn, Reg rm) { emit(make(Op::ADDS, rd, rn, rm)); }
void Assembler::subs(Reg rd, Reg rn, Reg rm) { emit(make(Op::SUBS, rd, rn, rm)); }
void Assembler::addsi(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::ADDSI, rd, rn, isa::kNoReg, imm)); }
void Assembler::subsi(Reg rd, Reg rn, std::int64_t imm) { emit(make(Op::SUBSI, rd, rn, isa::kNoReg, imm)); }
void Assembler::adcs(Reg rd, Reg rn, Reg rm) { emit(make(Op::ADCS, rd, rn, rm)); }
void Assembler::sbcs(Reg rd, Reg rn, Reg rm) { emit(make(Op::SBCS, rd, rn, rm)); }

void Assembler::umull(Reg rdlo, Reg rdhi, Reg rn, Reg rm) {
    Instr i = make(Op::UMULL, rdlo, rn, rm);
    i.ra = rdhi;
    emit(i);
}
void Assembler::smull(Reg rdlo, Reg rdhi, Reg rn, Reg rm) {
    Instr i = make(Op::SMULL, rdlo, rn, rm);
    i.ra = rdhi;
    emit(i);
}
void Assembler::umulh(Reg rd, Reg rn, Reg rm) { emit(make(Op::UMULH, rd, rn, rm)); }
void Assembler::udiv(Reg rd, Reg rn, Reg rm) { emit(make(Op::UDIV, rd, rn, rm)); }
void Assembler::sdiv(Reg rd, Reg rn, Reg rm) { emit(make(Op::SDIV, rd, rn, rm)); }

void Assembler::lsli(Reg rd, Reg rn, unsigned sh) {
    check(sh < info_.width_bits, "shift out of range");
    emit(make(Op::LSLI, rd, rn, isa::kNoReg, sh));
}
void Assembler::lsri(Reg rd, Reg rn, unsigned sh) {
    check(sh < info_.width_bits, "shift out of range");
    emit(make(Op::LSRI, rd, rn, isa::kNoReg, sh));
}
void Assembler::asri(Reg rd, Reg rn, unsigned sh) {
    check(sh < info_.width_bits, "shift out of range");
    emit(make(Op::ASRI, rd, rn, isa::kNoReg, sh));
}
void Assembler::lslv(Reg rd, Reg rn, Reg rm) { emit(make(Op::LSLV, rd, rn, rm)); }
void Assembler::lsrv(Reg rd, Reg rn, Reg rm) { emit(make(Op::LSRV, rd, rn, rm)); }
void Assembler::asrv(Reg rd, Reg rn, Reg rm) { emit(make(Op::ASRV, rd, rn, rm)); }
void Assembler::lslsi(Reg rd, Reg rn, unsigned sh) {
    check(sh >= 1 && sh < info_.width_bits, "flag-setting shift must be in [1,W-1]");
    emit(make(Op::LSLSI, rd, rn, isa::kNoReg, sh));
}
void Assembler::lsrsi(Reg rd, Reg rn, unsigned sh) {
    check(sh >= 1 && sh < info_.width_bits, "flag-setting shift must be in [1,W-1]");
    emit(make(Op::LSRSI, rd, rn, isa::kNoReg, sh));
}
void Assembler::clz(Reg rd, Reg rn) { emit(make(Op::CLZ, rd, rn)); }
void Assembler::cmp(Reg rn, Reg rm) { emit(make(Op::CMP, isa::kNoReg, rn, rm)); }
void Assembler::cmpi(Reg rn, std::int64_t imm) { emit(make(Op::CMPI, isa::kNoReg, rn, isa::kNoReg, imm)); }
void Assembler::cmn(Reg rn, Reg rm) { emit(make(Op::CMN, isa::kNoReg, rn, rm)); }
void Assembler::tst(Reg rn, Reg rm) { emit(make(Op::TST, isa::kNoReg, rn, rm)); }

void Assembler::csel(Reg rd, Reg rn, Reg rm, Cond c) {
    Instr i = make(Op::CSEL, rd, rn, rm);
    i.cond = c;
    emit(i);
}
void Assembler::cset(Reg rd, Cond c) {
    Instr i = make(Op::CSET, rd);
    i.cond = c;
    emit(i);
}

void Assembler::b(Label l) {
    label_fixups_.push_back(LabelFixup{code_.size(), l.id});
    emit(make(Op::B));
}
void Assembler::b(Cond c, Label l) {
    label_fixups_.push_back(LabelFixup{code_.size(), l.id});
    Instr i = make(Op::BCOND);
    i.cond = c;
    emit(i);
}
void Assembler::b_to(const std::string& sym, Cond c) {
    sym_fixups_.push_back(SymFixup{code_.size(), sym, false});
    if (c == Cond::AL) {
        emit(make(Op::B));
    } else {
        Instr i = make(Op::BCOND);
        i.cond = c;
        emit(i);
    }
}

void Assembler::bl(Label l) {
    label_fixups_.push_back(LabelFixup{code_.size(), l.id});
    emit(make(Op::BL));
}
void Assembler::bl(const std::string& sym) {
    sym_fixups_.push_back(SymFixup{code_.size(), sym, false});
    emit(make(Op::BL));
}
void Assembler::blr(Reg rn) { emit(make(Op::BLR, isa::kNoReg, rn)); }
void Assembler::br(Reg rn) { emit(make(Op::BR, isa::kNoReg, rn)); }
void Assembler::ret() { emit(make(Op::RET)); }
void Assembler::cbz(Reg rn, Label l) {
    label_fixups_.push_back(LabelFixup{code_.size(), l.id});
    emit(make(Op::CBZ, isa::kNoReg, rn));
}
void Assembler::cbnz(Reg rn, Label l) {
    label_fixups_.push_back(LabelFixup{code_.size(), l.id});
    emit(make(Op::CBNZ, isa::kNoReg, rn));
}

Instr Assembler::mem_imm(Op op, Reg rd, Reg base, std::int64_t off) const {
    Instr i = make(op, rd, base, isa::kNoReg, off);
    return i;
}
Instr Assembler::mem_idx(Op op, Reg rd, Reg base, Reg idx, unsigned sh) const {
    Instr i = make(op, rd, base, idx, 0);
    i.shift = static_cast<std::uint8_t>(sh);
    return i;
}

void Assembler::ldr(Reg rd, Reg base, std::int64_t off) { emit(mem_imm(Op::LDR, rd, base, off)); }
void Assembler::str(Reg rd, Reg base, std::int64_t off) { emit(mem_imm(Op::STR, rd, base, off)); }
void Assembler::ldr_idx(Reg rd, Reg base, Reg idx, unsigned sh) { emit(mem_idx(Op::LDR, rd, base, idx, sh)); }
void Assembler::str_idx(Reg rd, Reg base, Reg idx, unsigned sh) { emit(mem_idx(Op::STR, rd, base, idx, sh)); }
void Assembler::ldrw(Reg rd, Reg base, std::int64_t off) { emit(mem_imm(Op::LDRW, rd, base, off)); }
void Assembler::strw(Reg rd, Reg base, std::int64_t off) { emit(mem_imm(Op::STRW, rd, base, off)); }
void Assembler::ldrw_idx(Reg rd, Reg base, Reg idx, unsigned sh) { emit(mem_idx(Op::LDRW, rd, base, idx, sh)); }
void Assembler::strw_idx(Reg rd, Reg base, Reg idx, unsigned sh) { emit(mem_idx(Op::STRW, rd, base, idx, sh)); }
void Assembler::ldrb(Reg rd, Reg base, std::int64_t off) { emit(mem_imm(Op::LDRB, rd, base, off)); }
void Assembler::strb(Reg rd, Reg base, std::int64_t off) { emit(mem_imm(Op::STRB, rd, base, off)); }
void Assembler::ldrb_idx(Reg rd, Reg base, Reg idx) { emit(mem_idx(Op::LDRB, rd, base, idx, 0)); }
void Assembler::strb_idx(Reg rd, Reg base, Reg idx) { emit(mem_idx(Op::STRB, rd, base, idx, 0)); }

void Assembler::ldm(Reg base, std::uint16_t mask, bool writeback) {
    check(mask != 0, "ldm: empty register list");
    check((mask & 0x8000u) == 0, "ldm: PC not allowed in register list");
    check(!writeback || (mask & (1u << base)) == 0, "ldm: base in list with writeback");
    Instr i = make(Op::LDM, isa::kNoReg, base);
    i.regmask = mask;
    i.wb = writeback;
    emit(i);
}
void Assembler::stm(Reg base, std::uint16_t mask, bool writeback) {
    check(mask != 0, "stm: empty register list");
    check((mask & 0x8000u) == 0, "stm: PC not allowed in register list");
    check(!writeback || (mask & (1u << base)) == 0, "stm: base in list with writeback");
    Instr i = make(Op::STM, isa::kNoReg, base);
    i.regmask = mask;
    i.wb = writeback;
    emit(i);
}
void Assembler::ldp(Reg rt1, Reg rt2, Reg base, std::int64_t off) {
    Instr i = mem_imm(Op::LDP, rt1, base, off);
    i.ra = rt2;
    emit(i);
}
void Assembler::stp(Reg rt1, Reg rt2, Reg base, std::int64_t off) {
    Instr i = mem_imm(Op::STP, rt1, base, off);
    i.ra = rt2;
    emit(i);
}
void Assembler::ldrex(Reg rd, Reg base) { emit(make(Op::LDREX, rd, base)); }
void Assembler::strex(Reg status, Reg base, Reg value) {
    emit(make(Op::STREX, status, base, value));
}

void Assembler::fadd(Reg vd, Reg vn, Reg vm) { emit(make(Op::FADD, vd, vn, vm)); }
void Assembler::fsub(Reg vd, Reg vn, Reg vm) { emit(make(Op::FSUB, vd, vn, vm)); }
void Assembler::fmul(Reg vd, Reg vn, Reg vm) { emit(make(Op::FMUL, vd, vn, vm)); }
void Assembler::fdiv(Reg vd, Reg vn, Reg vm) { emit(make(Op::FDIV, vd, vn, vm)); }
void Assembler::fsqrt(Reg vd, Reg vn) { emit(make(Op::FSQRT, vd, vn)); }
void Assembler::fneg(Reg vd, Reg vn) { emit(make(Op::FNEG, vd, vn)); }
void Assembler::fabs_(Reg vd, Reg vn) { emit(make(Op::FABS, vd, vn)); }
void Assembler::fmadd(Reg vd, Reg vn, Reg vm, Reg va) {
    Instr i = make(Op::FMADD, vd, vn, vm);
    i.ra = va;
    emit(i);
}
void Assembler::fmov(Reg vd, Reg vn) { emit(make(Op::FMOV, vd, vn)); }
void Assembler::fmovi(Reg vd, double value) {
    std::int64_t bits;
    std::memcpy(&bits, &value, 8);
    emit(make(Op::FMOVI, vd, isa::kNoReg, isa::kNoReg, bits));
}
void Assembler::fcmp(Reg vn, Reg vm) { emit(make(Op::FCMP, isa::kNoReg, vn, vm)); }
void Assembler::fcvtzs(Reg rd, Reg vn) { emit(make(Op::FCVTZS, rd, vn)); }
void Assembler::scvtf(Reg vd, Reg rn) { emit(make(Op::SCVTF, vd, rn)); }
void Assembler::fmovvx(Reg rd, Reg vn) { emit(make(Op::FMOVVX, rd, vn)); }
void Assembler::fmovxv(Reg vd, Reg rn) { emit(make(Op::FMOVXV, vd, rn)); }
void Assembler::fldr(Reg vd, Reg base, std::int64_t off) { emit(mem_imm(Op::FLDR, vd, base, off)); }
void Assembler::fstr(Reg vd, Reg base, std::int64_t off) { emit(mem_imm(Op::FSTR, vd, base, off)); }
void Assembler::fldr_idx(Reg vd, Reg base, Reg idx, unsigned sh) { emit(mem_idx(Op::FLDR, vd, base, idx, sh)); }
void Assembler::fstr_idx(Reg vd, Reg base, Reg idx, unsigned sh) { emit(mem_idx(Op::FSTR, vd, base, idx, sh)); }

void Assembler::svc(unsigned num) { emit(make(Op::SVC, isa::kNoReg, isa::kNoReg, isa::kNoReg, num)); }
void Assembler::sysrd(Reg rd, isa::SysReg sr) {
    emit(make(Op::SYSRD, rd, isa::kNoReg, isa::kNoReg, static_cast<std::int64_t>(sr)));
}
void Assembler::syswr(isa::SysReg sr, Reg rn) {
    emit(make(Op::SYSWR, isa::kNoReg, rn, isa::kNoReg, static_cast<std::int64_t>(sr)));
}
void Assembler::eret() { emit(make(Op::ERET)); }
void Assembler::wfi() { emit(make(Op::WFI)); }
void Assembler::nop() { emit(make(Op::NOP)); }
void Assembler::hlt() { emit(make(Op::HLT)); }
void Assembler::udf() { emit(make(Op::UDF)); }

void Assembler::ldr_word_idx(Reg rd, Reg base, Reg idx) {
    ldr_idx(rd, base, idx, prof_ == isa::Profile::V7 ? 2 : 3);
}
void Assembler::str_word_idx(Reg rd, Reg base, Reg idx) {
    str_idx(rd, base, idx, prof_ == isa::Profile::V7 ? 2 : 3);
}

Image Assembler::finalize() {
    for (const LabelFixup& f : label_fixups_) {
        check(label_addr_[f.label] >= 0, "unbound label referenced");
        code_[f.at].imm = label_addr_[f.label];
    }
    for (const SymFixup& f : sym_fixups_) {
        auto it = sym_addr_.find(f.name);
        if (it != sym_addr_.end()) {
            code_[f.at].imm = static_cast<std::int64_t>(it->second);
            continue;
        }
        if (f.data_ok) {
            auto dit = image_.data_syms.find(f.name);
            if (dit != image_.data_syms.end()) {
                code_[f.at].imm = static_cast<std::int64_t>(dit->second);
                continue;
            }
        }
        util::fail("undefined symbol: " + f.name);
    }

    image_.code = std::move(code_);
    image_.kdata_init = kdata_.take_chunks();
    image_.udata_init = udata_.take_chunks();
    image_.kdata_size = kdata_.size();
    image_.udata_size = udata_.size();

    std::sort(image_.code_syms.begin(), image_.code_syms.end(),
              [](const CodeSymbol& a, const CodeSymbol& b) { return a.addr < b.addr; });

    // Per-instruction attribution: function index 0 = "(unattributed)".
    image_.func_names.clear();
    image_.func_tags.clear();
    image_.func_names.push_back("(none)");
    image_.func_tags.push_back(ModTag::APP);
    image_.func_of_instr.assign(image_.code.size(), 0);
    std::size_t si = 0;
    std::uint16_t cur = 0;
    for (std::size_t i = 0; i < image_.code.size(); ++i) {
        const std::uint64_t addr = image_.code_base + i * isa::kInstrBytes;
        while (si < image_.code_syms.size() && image_.code_syms[si].addr <= addr) {
            image_.func_names.push_back(image_.code_syms[si].name);
            image_.func_tags.push_back(image_.code_syms[si].tag);
            cur = static_cast<std::uint16_t>(image_.func_names.size() - 1);
            ++si;
        }
        image_.func_of_instr[i] = cur;
    }
    return std::move(image_);
}

} // namespace serep::kasm
