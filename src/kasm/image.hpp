// Linked program image: code, data initializers, symbols, entry points.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instr.hpp"
#include "isa/profile.hpp"

namespace serep::kasm {

/// Which subsystem a function belongs to — drives the paper's
/// "vulnerability window" attribution (kernel / API / app shares).
enum class ModTag : std::uint8_t { KERNEL, LIBRT, SOFTFLOAT, OMP, MPI, APP };

const char* mod_tag_name(ModTag t) noexcept;

struct CodeSymbol {
    std::string name;
    std::uint64_t addr; ///< code byte address
    ModTag tag;
};

/// Initialized bytes to copy into a data region at load time.
struct DataChunk {
    std::uint64_t vaddr;
    std::vector<std::uint8_t> bytes;
};

/// A fully linked guest program (kernel + runtimes + application).
struct Image {
    isa::Profile profile = isa::Profile::V7;
    std::vector<isa::Instr> code;
    std::uint64_t code_base = 0;
    std::uint64_t kernel_text_end = 0; ///< user-mode fetch below this faults

    std::vector<DataChunk> kdata_init, udata_init;
    std::uint64_t kdata_size = 0, udata_size = 0;

    std::vector<CodeSymbol> code_syms;      ///< sorted by address
    std::map<std::string, std::uint64_t> data_syms;

    std::uint64_t user_entry = 0;   ///< "main" (set by the application builder)
    std::uint64_t kernel_boot = 0;  ///< per-core boot entry
    std::uint64_t vec_entry = 0;    ///< single trap vector

    /// Per-instruction function index (into func_names/func_tags) for O(1)
    /// profiler attribution; built by Assembler::finalize().
    std::vector<std::uint16_t> func_of_instr;
    std::vector<std::string> func_names;
    std::vector<ModTag> func_tags;

    std::uint64_t code_end() const noexcept {
        return code_base + code.size() * isa::kInstrBytes;
    }
    bool contains_code(std::uint64_t byte_addr) const noexcept {
        return byte_addr >= code_base && byte_addr < code_end() &&
               (byte_addr & 3) == 0;
    }
    std::size_t instr_index(std::uint64_t byte_addr) const noexcept {
        return static_cast<std::size_t>((byte_addr - code_base) / isa::kInstrBytes);
    }

    /// Address of a required symbol; throws util::Error when missing.
    std::uint64_t sym(const std::string& name) const;
    std::uint64_t data_sym(const std::string& name) const;
};

} // namespace serep::kasm
