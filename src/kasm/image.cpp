#include "kasm/image.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace serep::kasm {

const char* mod_tag_name(ModTag t) noexcept {
    switch (t) {
        case ModTag::KERNEL: return "kernel";
        case ModTag::LIBRT: return "librt";
        case ModTag::SOFTFLOAT: return "softfloat";
        case ModTag::OMP: return "omp";
        case ModTag::MPI: return "mpi";
        case ModTag::APP: return "app";
    }
    return "??";
}

std::uint64_t Image::sym(const std::string& name) const {
    const auto it = std::find_if(code_syms.begin(), code_syms.end(),
                                 [&](const CodeSymbol& s) { return s.name == name; });
    util::check(it != code_syms.end(), "Image::sym: undefined symbol " + name);
    return it->addr;
}

std::uint64_t Image::data_sym(const std::string& name) const {
    const auto it = data_syms.find(name);
    util::check(it != data_syms.end(), "Image::data_sym: undefined symbol " + name);
    return it->second;
}

} // namespace serep::kasm
