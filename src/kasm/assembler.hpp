// Macro-assembler for the µISA.
//
// Everything that runs inside the simulator — nanokernel, guest runtimes
// (soft-float, libomp, libmpi), and the NPB kernels — is emitted through
// this class. It provides labels with fixups, named functions (symbol table
// + module tags for vulnerability-window attribution), call-by-name linking,
// and two data-segment builders (kernel and user regions).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/flags.hpp"
#include "isa/instr.hpp"
#include "isa/layout.hpp"
#include "isa/profile.hpp"
#include "isa/sysreg.hpp"
#include "kasm/image.hpp"

namespace serep::kasm {

using Reg = std::uint8_t;

struct Label {
    std::uint32_t id = 0;
};

/// Builder for one data region (kernel or user). Memory is zero-initialized;
/// only explicitly emitted bytes become load-time chunks.
class DataSeg {
public:
    explicit DataSeg(std::uint64_t base) : base_(base) {}

    std::uint64_t base() const noexcept { return base_; }
    std::uint64_t cursor() const noexcept { return base_ + size_; }
    std::uint64_t size() const noexcept { return size_; }

    std::uint64_t align(std::uint64_t a);
    /// Reserve `n` zeroed bytes; returns their VA.
    std::uint64_t reserve(std::uint64_t n);
    std::uint64_t u8(std::uint8_t v);
    std::uint64_t u32(std::uint32_t v);
    std::uint64_t u64v(std::uint64_t v);
    std::uint64_t f64(double v);
    std::uint64_t bytes(const void* data, std::size_t n);

    std::vector<DataChunk> take_chunks() { return std::move(chunks_); }

private:
    void emit(const void* data, std::size_t n);
    std::uint64_t base_;
    std::uint64_t size_ = 0;
    std::vector<DataChunk> chunks_;
};

class Assembler {
public:
    explicit Assembler(isa::Profile p);

    isa::Profile profile() const noexcept { return prof_; }
    const isa::ProfileInfo& info() const noexcept { return info_; }
    unsigned wbytes() const noexcept { return info_.width_bytes; }

    // ---- registers with ABI roles (profile-dependent) ----
    Reg sp() const noexcept { return static_cast<Reg>(info_.sp_index); }
    Reg lr() const noexcept { return static_cast<Reg>(info_.lr_index); }
    Reg pc() const noexcept { return static_cast<Reg>(info_.pc_index); } // V7 only
    /// Argument/return registers a0..a3 (r0..r3 / x0..x3).
    Reg arg(unsigned i) const noexcept { return static_cast<Reg>(i); }
    /// Caller-saved scratch registers t0.. (r0..r3,r12 / x0..x15).
    Reg tmp(unsigned i) const;
    unsigned tmp_count() const noexcept { return prof_ == isa::Profile::V7 ? 5 : 16; }
    /// Callee-saved registers s0.. (r4..r11 / x19..x28).
    Reg sav(unsigned i) const;
    unsigned sav_count() const noexcept { return prof_ == isa::Profile::V7 ? 8 : 10; }

    // ---- labels / symbols ----
    Label newl();
    void bind(Label l);
    /// Begin a named function at the current address.
    void func(const std::string& name, ModTag tag);
    std::uint64_t here() const noexcept {
        return image_.code_base + code_.size() * isa::kInstrBytes;
    }
    bool has_func(const std::string& name) const { return sym_addr_.count(name) != 0; }

    // ---- data segments ----
    DataSeg& kdata() noexcept { return kdata_; }
    DataSeg& udata() noexcept { return udata_; }
    /// Define a named data symbol at `va`.
    void data_sym(const std::string& name, std::uint64_t va);

    // ---- raw emit (validity-checked) ----
    void emit(isa::Instr ins);
    /// Set condition on the next emitted instruction (V7 conditional execution).
    Assembler& when(isa::Cond c) { pending_cond_ = c; return *this; }

    // ---- ALU ----
    void movi(Reg rd, std::int64_t imm);
    /// Load a data/code symbol's address (fixup at finalize).
    void movi_sym(Reg rd, const std::string& sym);
    void mov(Reg rd, Reg rn);
    void mvn(Reg rd, Reg rn);
    void add(Reg rd, Reg rn, Reg rm);
    void sub(Reg rd, Reg rn, Reg rm);
    void and_(Reg rd, Reg rn, Reg rm);
    void orr(Reg rd, Reg rn, Reg rm);
    void eor(Reg rd, Reg rn, Reg rm);
    void mul(Reg rd, Reg rn, Reg rm);
    void addi(Reg rd, Reg rn, std::int64_t imm);
    void subi(Reg rd, Reg rn, std::int64_t imm);
    void andi(Reg rd, Reg rn, std::int64_t imm);
    void orri(Reg rd, Reg rn, std::int64_t imm);
    void eori(Reg rd, Reg rn, std::int64_t imm);
    void adds(Reg rd, Reg rn, Reg rm);
    void subs(Reg rd, Reg rn, Reg rm);
    void addsi(Reg rd, Reg rn, std::int64_t imm);
    void subsi(Reg rd, Reg rn, std::int64_t imm);
    void adcs(Reg rd, Reg rn, Reg rm);
    void sbcs(Reg rd, Reg rn, Reg rm);
    void umull(Reg rdlo, Reg rdhi, Reg rn, Reg rm); // V7
    void smull(Reg rdlo, Reg rdhi, Reg rn, Reg rm); // V7
    void umulh(Reg rd, Reg rn, Reg rm);             // V8
    void udiv(Reg rd, Reg rn, Reg rm);              // V8
    void sdiv(Reg rd, Reg rn, Reg rm);              // V8
    void lsli(Reg rd, Reg rn, unsigned sh);
    void lsri(Reg rd, Reg rn, unsigned sh);
    void asri(Reg rd, Reg rn, unsigned sh);
    void lslv(Reg rd, Reg rn, Reg rm);
    void lsrv(Reg rd, Reg rn, Reg rm);
    void asrv(Reg rd, Reg rn, Reg rm);
    void lslsi(Reg rd, Reg rn, unsigned sh);
    void lsrsi(Reg rd, Reg rn, unsigned sh);
    void clz(Reg rd, Reg rn);
    void cmp(Reg rn, Reg rm);
    void cmpi(Reg rn, std::int64_t imm);
    void cmn(Reg rn, Reg rm);
    void tst(Reg rn, Reg rm);
    void csel(Reg rd, Reg rn, Reg rm, isa::Cond c); // V8
    void cset(Reg rd, isa::Cond c);                 // V8

    // ---- branches ----
    void b(Label l);
    void b(isa::Cond c, Label l);
    /// Branch to a named function symbol (tail-calls between subsystems).
    void b_to(const std::string& sym, isa::Cond c = isa::Cond::AL);
    void bl(Label l);
    void bl(const std::string& sym);
    void blr(Reg rn);
    void br(Reg rn);
    void ret();
    void cbz(Reg rn, Label l);  // V8
    void cbnz(Reg rn, Label l); // V8

    // ---- memory ----
    void ldr(Reg rd, Reg base, std::int64_t off = 0);
    void str(Reg rd, Reg base, std::int64_t off = 0);
    void ldr_idx(Reg rd, Reg base, Reg idx, unsigned scale_shift);
    void str_idx(Reg rd, Reg base, Reg idx, unsigned scale_shift);
    void ldrw(Reg rd, Reg base, std::int64_t off = 0);  // V8
    void strw(Reg rd, Reg base, std::int64_t off = 0);  // V8
    void ldrw_idx(Reg rd, Reg base, Reg idx, unsigned scale_shift); // V8
    void strw_idx(Reg rd, Reg base, Reg idx, unsigned scale_shift); // V8
    void ldrb(Reg rd, Reg base, std::int64_t off = 0);
    void strb(Reg rd, Reg base, std::int64_t off = 0);
    void ldrb_idx(Reg rd, Reg base, Reg idx);
    void strb_idx(Reg rd, Reg base, Reg idx);
    void ldm(Reg base, std::uint16_t mask, bool writeback); // V7
    void stm(Reg base, std::uint16_t mask, bool writeback); // V7
    void ldp(Reg rt1, Reg rt2, Reg base, std::int64_t off); // V8
    void stp(Reg rt1, Reg rt2, Reg base, std::int64_t off); // V8
    void ldrex(Reg rd, Reg base);
    void strex(Reg status, Reg base, Reg value);

    // ---- floating point (V8) ----
    void fadd(Reg vd, Reg vn, Reg vm);
    void fsub(Reg vd, Reg vn, Reg vm);
    void fmul(Reg vd, Reg vn, Reg vm);
    void fdiv(Reg vd, Reg vn, Reg vm);
    void fsqrt(Reg vd, Reg vn);
    void fneg(Reg vd, Reg vn);
    void fabs_(Reg vd, Reg vn);
    void fmadd(Reg vd, Reg vn, Reg vm, Reg va);
    void fmov(Reg vd, Reg vn);
    void fmovi(Reg vd, double value);
    void fcmp(Reg vn, Reg vm);
    void fcvtzs(Reg rd, Reg vn);
    void scvtf(Reg vd, Reg rn);
    void fmovvx(Reg rd, Reg vn);
    void fmovxv(Reg vd, Reg rn);
    void fldr(Reg vd, Reg base, std::int64_t off = 0);
    void fstr(Reg vd, Reg base, std::int64_t off = 0);
    void fldr_idx(Reg vd, Reg base, Reg idx, unsigned scale_shift);
    void fstr_idx(Reg vd, Reg base, Reg idx, unsigned scale_shift);

    // ---- system ----
    void svc(unsigned num);
    void sysrd(Reg rd, isa::SysReg sr);
    void syswr(isa::SysReg sr, Reg rn);
    void eret();
    void wfi();
    void nop();
    void hlt();
    void udf();

    /// Width-dependent helpers: load/store a pointer-sized element with
    /// index scaled by the profile word size (4 on V7, 8 on V8).
    void ldr_word_idx(Reg rd, Reg base, Reg idx);
    void str_word_idx(Reg rd, Reg base, Reg idx);

    /// Resolve fixups, sort symbols, build per-instruction attribution.
    Image finalize();

    /// Mark the kernel/user text boundary (call after emitting kernel code).
    /// Idempotent: the first call wins.
    void end_kernel_text() {
        if (image_.kernel_text_end == 0) image_.kernel_text_end = here();
    }
    void set_user_entry(std::uint64_t a) { image_.user_entry = a; }
    void set_kernel_boot(std::uint64_t a) { image_.kernel_boot = a; }
    void set_vec_entry(std::uint64_t a) { image_.vec_entry = a; }

private:
    void push(isa::Instr ins);
    isa::Instr mem_imm(isa::Op op, Reg rd, Reg base, std::int64_t off) const;
    isa::Instr mem_idx(isa::Op op, Reg rd, Reg base, Reg idx, unsigned sh) const;

    isa::Profile prof_;
    isa::ProfileInfo info_;
    std::vector<isa::Instr> code_;
    Image image_;
    DataSeg kdata_{isa::layout::kKernBase};
    DataSeg udata_{isa::layout::kUserBase};

    std::vector<std::int64_t> label_addr_;             // -1 = unbound
    struct LabelFixup { std::size_t at; std::uint32_t label; };
    struct SymFixup { std::size_t at; std::string name; bool data_ok; };
    std::vector<LabelFixup> label_fixups_;
    std::vector<SymFixup> sym_fixups_;
    std::map<std::string, std::uint64_t> sym_addr_;
    isa::Cond pending_cond_ = isa::Cond::AL;
};

} // namespace serep::kasm
