// OpenMP-like guest runtime: a persistent thread team driven through
// fork/join parallel regions — the structure the paper's §4.2 reasons
// about (serial sections leave cores idle in the scheduler; imbalance
// raises the kernel's share of execution).
//
// API (guest symbols, tag OMP):
//  * omp_init()                     — team size = core count (NCORES);
//                                     creates workers with brk'd stacks
//  * omp_parallel(fn, arg)          — run fn(arg, tid, nthreads) on every
//                                     team member incl. the caller; returns
//                                     after all arrive (futex join)
//  * omp_atomic_inc(addr) -> old    — user-mode LDREX/STREX increment
// Data symbols: omp_nth, and "omp_partials" — 8 doubles for reductions
// (bodies write partial[tid]; the caller combines serially).
#pragma once

#include "kasm/assembler.hpp"

namespace serep::rt {

void build_libomp(kasm::Assembler& a);

} // namespace serep::rt
