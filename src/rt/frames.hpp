// Uniform guest function prologue/epilogue: save the callee-saved register
// set + link register (AAPCS-style). Used by the runtimes and by kgen.
#pragma once

#include "kasm/assembler.hpp"

namespace serep::rt {

inline constexpr std::uint16_t kV7SavedMask = 0x4FF0; // r4-r11, lr

/// Emit "push {r4-r11, lr}" / the A64 pair-store equivalent.
inline void push_saved(kasm::Assembler& a) {
    if (a.profile() == isa::Profile::V7) {
        a.subi(a.sp(), a.sp(), 36);
        a.stm(a.sp(), kV7SavedMask, false);
    } else {
        a.subi(a.sp(), a.sp(), 96);
        for (unsigned i = 0; i < 10; i += 2)
            a.stp(static_cast<kasm::Reg>(19 + i), static_cast<kasm::Reg>(20 + i),
                  a.sp(), i * 8);
        a.str(30, a.sp(), 80);
    }
}

inline void pop_saved(kasm::Assembler& a) {
    if (a.profile() == isa::Profile::V7) {
        a.ldm(a.sp(), kV7SavedMask, false);
        a.addi(a.sp(), a.sp(), 36);
    } else {
        for (unsigned i = 0; i < 10; i += 2)
            a.ldp(static_cast<kasm::Reg>(19 + i), static_cast<kasm::Reg>(20 + i),
                  a.sp(), i * 8);
        a.ldr(30, a.sp(), 80);
        a.addi(a.sp(), a.sp(), 96);
    }
}

} // namespace serep::rt
