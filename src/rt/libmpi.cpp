#include "rt/libmpi.hpp"

#include "os/abi.hpp"
#include "rt/frames.hpp"

namespace serep::rt {

using isa::Cond;
using kasm::Assembler;
using kasm::ModTag;
using kasm::Reg;

namespace {

/// load word at data symbol into rd (clobbers rd)
void lsym(Assembler& a, Reg rd, const char* sym) {
    a.movi_sym(rd, sym);
    a.ldr(rd, rd, 0);
}

} // namespace

void build_libmpi(Assembler& a) {
    const bool v7 = a.profile() == isa::Profile::V7;
    const Reg s0 = v7 ? 4 : 19, s1 = v7 ? 5 : 20, s2 = v7 ? 6 : 21,
              s3 = v7 ? 7 : 22, s4 = v7 ? 8 : 23;

    a.udata().align(8);
    a.data_sym("mpi_rank", a.udata().reserve(8));
    a.data_sym("mpi_size", a.udata().reserve(8));
    a.data_sym("mpi_scratch", a.udata().reserve(2048));

    // mpi_init(rank r0, size r1)
    a.func("mpi_init", ModTag::MPI);
    a.movi_sym(2, "mpi_rank");
    a.str(0, 2, 0);
    a.movi_sym(2, "mpi_size");
    a.str(1, 2, 0);
    a.ret();

    // mpi_send(dst r0, buf r1, len r2): chan = dst*size + me
    a.func("mpi_send", ModTag::MPI);
    {
        auto loop = a.newl(), done = a.newl(), capped = a.newl();
        push_saved(a);
        lsym(a, 3, "mpi_size");
        a.mul(s0, 0, 3);
        lsym(a, 3, "mpi_rank");
        a.add(s0, s0, 3); // chan
        a.mov(s1, 1);     // position
        a.mov(s2, 2);     // remaining
        a.bind(loop);
        a.cmpi(s2, 0);
        a.b(Cond::EQ, done);
        a.movi(3, os::kChanMsgMax);
        a.mov(2, s2);
        a.cmp(s2, 3);
        a.b(Cond::LE, capped);
        a.mov(2, 3);
        a.bind(capped);
        a.mov(0, s0);
        a.mov(1, s1);
        a.svc(os::SYS_CHAN_SEND);
        a.add(s1, s1, 2);
        a.sub(s2, s2, 2);
        a.b(loop);
        a.bind(done);
        pop_saved(a);
        a.ret();
    }

    // mpi_recv(src r0, buf r1, len r2): chan = me*size + src
    a.func("mpi_recv", ModTag::MPI);
    {
        auto loop = a.newl(), done = a.newl(), capped = a.newl();
        push_saved(a);
        lsym(a, 3, "mpi_size");
        lsym(a, s0, "mpi_rank");
        a.mul(s0, s0, 3);
        a.add(s0, s0, 0); // chan
        a.mov(s1, 1);
        a.mov(s2, 2);
        a.bind(loop);
        a.cmpi(s2, 0);
        a.b(Cond::EQ, done);
        a.movi(3, os::kChanMsgMax);
        a.mov(2, s2);
        a.cmp(s2, 3);
        a.b(Cond::LE, capped);
        a.mov(2, 3);
        a.bind(capped);
        a.mov(0, s0);
        a.mov(1, s1);
        a.svc(os::SYS_CHAN_RECV);
        a.add(s1, s1, 2);
        a.sub(s2, s2, 2);
        a.b(loop);
        a.bind(done);
        pop_saved(a);
        a.ret();
    }

    // mpi_barrier(): linear gather + release through rank 0
    a.func("mpi_barrier", ModTag::MPI);
    {
        auto root = a.newl(), g1 = a.newl(), g2 = a.newl(), r1 = a.newl(),
             r2 = a.newl(), out = a.newl();
        push_saved(a);
        lsym(a, s0, "mpi_rank");
        lsym(a, s1, "mpi_size");
        a.cmpi(s1, 1);
        a.b(Cond::EQ, out);
        a.cmpi(s0, 0);
        a.b(Cond::EQ, root);
        // non-root: send token to 0, wait for release
        a.movi(0, 0);
        a.movi_sym(1, "mpi_scratch");
        a.movi(2, 4);
        a.bl("mpi_send");
        a.movi(0, 0);
        a.movi_sym(1, "mpi_scratch");
        a.movi(2, 4);
        a.bl("mpi_recv");
        a.b(out);
        a.bind(root);
        a.movi(s2, 1);
        a.bind(g1);
        a.cmp(s2, s1);
        a.b(Cond::GE, g2);
        a.mov(0, s2);
        a.movi_sym(1, "mpi_scratch");
        a.movi(2, 4);
        a.bl("mpi_recv");
        a.addi(s2, s2, 1);
        a.b(g1);
        a.bind(g2);
        a.movi(s2, 1);
        a.bind(r1);
        a.cmp(s2, s1);
        a.b(Cond::GE, r2);
        a.mov(0, s2);
        a.movi_sym(1, "mpi_scratch");
        a.movi(2, 4);
        a.bl("mpi_send");
        a.addi(s2, s2, 1);
        a.b(r1);
        a.bind(r2);
        a.bind(out);
        pop_saved(a);
        a.ret();
    }

    // mpi_bcast(buf r0, len r1, root r2)
    a.func("mpi_bcast", ModTag::MPI);
    {
        auto sender = a.newl(), sl = a.newl(), snext = a.newl(), sdone = a.newl(),
             out = a.newl();
        push_saved(a);
        a.mov(s0, 0); // buf
        a.mov(s1, 1); // len
        a.mov(s2, 2); // root
        lsym(a, s3, "mpi_rank");
        lsym(a, s4, "mpi_size");
        a.cmpi(s4, 1);
        a.b(Cond::EQ, out);
        a.cmp(s3, s2);
        a.b(Cond::EQ, sender);
        a.mov(0, s2);
        a.mov(1, s0);
        a.mov(2, s1);
        a.bl("mpi_recv");
        a.b(out);
        a.bind(sender);
        a.movi(s3, 0); // dest iterator
        a.bind(sl);
        a.cmp(s3, s4);
        a.b(Cond::GE, sdone);
        a.cmp(s3, s2);
        a.b(Cond::EQ, snext);
        a.mov(0, s3);
        a.mov(1, s0);
        a.mov(2, s1);
        a.bl("mpi_send");
        a.bind(snext);
        a.addi(s3, s3, 1);
        a.b(sl);
        a.bind(sdone);
        a.bind(out);
        pop_saved(a);
        a.ret();
    }

    // mpi_reduce_f64(send r0, recv r1, count r2, root r3)
    a.func("mpi_reduce_f64", ModTag::MPI);
    {
        auto amroot = a.newl(), rl = a.newl(), rnext = a.newl(), rdone = a.newl(),
             al = a.newl(), adone = a.newl(), out = a.newl();
        push_saved(a);
        a.mov(s0, 0); // send
        a.mov(s1, 1); // recv
        a.mov(s2, 2); // count
        a.mov(s3, 3); // root
        lsym(a, 2, "mpi_rank");
        a.cmp(2, s3);
        a.b(Cond::EQ, amroot);
        // non-root: ship the operand to the root
        a.mov(0, s3);
        a.mov(1, s0);
        a.lsli(2, s2, 3);
        a.bl("mpi_send");
        a.b(out);
        a.bind(amroot);
        // recv = send (local copy)
        a.mov(0, s1);
        a.mov(1, s0);
        a.lsli(2, s2, 3);
        a.bl("rt_memcpy");
        // for each other rank: receive into scratch, accumulate
        a.movi(s4, 0); // rank iterator
        a.bind(rl);
        lsym(a, 2, "mpi_size");
        a.cmp(s4, 2);
        a.b(Cond::GE, rdone);
        a.cmp(s4, s3);
        a.b(Cond::EQ, rnext);
        a.mov(0, s4);
        a.movi_sym(1, "mpi_scratch");
        a.lsli(2, s2, 3);
        a.bl("mpi_recv");
        // recv[i] += scratch[i]
        a.movi(s0, 0); // reuse s0 as element index
        a.bind(al);
        a.cmp(s0, s2);
        a.b(Cond::GE, adone);
        if (v7) {
            a.lsli(12, s0, 3);
            a.add(12, s1, 12);
            a.ldr(0, 12, 0);
            a.ldr(1, 12, 4);
            a.movi_sym(12, "mpi_scratch");
            a.lsli(2, s0, 3);
            a.add(12, 12, 2);
            a.ldr(2, 12, 0);
            a.ldr(3, 12, 4);
            a.bl("__adddf3");
            a.lsli(12, s0, 3);
            a.add(12, s1, 12);
            a.str(0, 12, 0);
            a.str(1, 12, 4);
        } else {
            a.fldr_idx(0, s1, s0, 3);
            a.movi_sym(2, "mpi_scratch");
            a.fldr_idx(1, 2, s0, 3);
            a.fadd(0, 0, 1);
            a.fstr_idx(0, s1, s0, 3);
        }
        a.addi(s0, s0, 1);
        a.b(al);
        a.bind(adone);
        a.bind(rnext);
        a.addi(s4, s4, 1);
        a.b(rl);
        a.bind(rdone);
        a.bind(out);
        pop_saved(a);
        a.ret();
    }

    // mpi_allreduce_f64(send r0, recv r1, count r2)
    a.func("mpi_allreduce_f64", ModTag::MPI);
    {
        push_saved(a);
        a.mov(s0, 1); // recv
        a.mov(s1, 2); // count
        a.mov(1, s0);
        a.movi(3, 0);
        a.bl("mpi_reduce_f64");
        a.mov(0, s0);
        a.lsli(1, s1, 3);
        a.movi(2, 0);
        a.bl("mpi_bcast");
        pop_saved(a);
        a.ret();
    }

    // mpi_reduce_u32(send r0, recv r1, count r2, root r3)
    a.func("mpi_reduce_u32", ModTag::MPI);
    {
        auto amroot = a.newl(), rl = a.newl(), rnext = a.newl(), rdone = a.newl(),
             al = a.newl(), adone = a.newl(), out = a.newl();
        push_saved(a);
        a.mov(s0, 0);
        a.mov(s1, 1);
        a.mov(s2, 2);
        a.mov(s3, 3);
        lsym(a, 2, "mpi_rank");
        a.cmp(2, s3);
        a.b(Cond::EQ, amroot);
        a.mov(0, s3);
        a.mov(1, s0);
        a.lsli(2, s2, 2);
        a.bl("mpi_send");
        a.b(out);
        a.bind(amroot);
        a.mov(0, s1);
        a.mov(1, s0);
        a.lsli(2, s2, 2);
        a.bl("rt_memcpy");
        a.movi(s4, 0);
        a.bind(rl);
        lsym(a, 2, "mpi_size");
        a.cmp(s4, 2);
        a.b(Cond::GE, rdone);
        a.cmp(s4, s3);
        a.b(Cond::EQ, rnext);
        a.mov(0, s4);
        a.movi_sym(1, "mpi_scratch");
        a.lsli(2, s2, 2);
        a.bl("mpi_recv");
        a.movi(s0, 0);
        a.bind(al);
        a.cmp(s0, s2);
        a.b(Cond::GE, adone);
        a.movi_sym(2, "mpi_scratch");
        if (v7) {
            a.ldr_idx(0, s1, s0, 2);
            a.ldr_idx(1, 2, s0, 2);
            a.add(0, 0, 1);
            a.str_idx(0, s1, s0, 2);
        } else {
            a.ldrw_idx(0, s1, s0, 2);
            a.ldrw_idx(1, 2, s0, 2);
            a.add(0, 0, 1);
            a.strw_idx(0, s1, s0, 2);
        }
        a.addi(s0, s0, 1);
        a.b(al);
        a.bind(adone);
        a.bind(rnext);
        a.addi(s4, s4, 1);
        a.b(rl);
        a.bind(rdone);
        a.bind(out);
        pop_saved(a);
        a.ret();
    }

    // mpi_alltoall(send r0, recv r1, block r2): block k -> rank k
    a.func("mpi_alltoall", ModTag::MPI);
    {
        auto sl = a.newl(), snext = a.newl(), sdone = a.newl(), rl = a.newl(),
             rnext = a.newl(), rdone = a.newl();
        push_saved(a);
        a.mov(s0, 0); // send
        a.mov(s1, 1); // recv
        a.mov(s2, 2); // block
        lsym(a, s3, "mpi_rank");
        lsym(a, s4, "mpi_size");
        // local block
        a.mul(2, s3, s2);
        a.add(0, s1, 2);
        a.add(1, s0, 2);
        a.mov(2, s2);
        a.bl("rt_memcpy");
        // send to everyone else first (fits channel rings), then receive
        a.movi(12, 0);
        a.mov(v7 ? 9 : 24, 12); // iterator in an extra saved register
        const Reg it = v7 ? 9 : 24;
        a.bind(sl);
        a.cmp(it, s4);
        a.b(Cond::GE, sdone);
        a.cmp(it, s3);
        a.b(Cond::EQ, snext);
        a.mul(2, it, s2);
        a.add(1, s0, 2);
        a.mov(0, it);
        a.mov(2, s2);
        a.bl("mpi_send");
        a.bind(snext);
        a.addi(it, it, 1);
        a.b(sl);
        a.bind(sdone);
        a.movi(it, 0);
        a.bind(rl);
        a.cmp(it, s4);
        a.b(Cond::GE, rdone);
        a.cmp(it, s3);
        a.b(Cond::EQ, rnext);
        a.mul(2, it, s2);
        a.add(1, s1, 2);
        a.mov(0, it);
        a.mov(2, s2);
        a.bl("mpi_recv");
        a.bind(rnext);
        a.addi(it, it, 1);
        a.b(rl);
        a.bind(rdone);
        pop_saved(a);
        a.ret();
    }
}

} // namespace serep::rt
