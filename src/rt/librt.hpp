// Guest runtime support library (libgcc/libc analogue), emitted as guest
// code. On V7 this includes software integer division — the Cortex-A9 has
// no divide instruction — so division-heavy code pays the authentic cost.
#pragma once

#include "kasm/assembler.hpp"

namespace serep::rt {

/// Emit librt functions (tag LIBRT). Provides:
///  * rt_memcpy(dst, src, n)          — word-sized copy with byte tail
///  * rt_memset(dst, byte, n)
///  * __udiv32 / __umod32 (V7 only)   — software division, (r0 / r1)
///  * __sdiv32 (V7 only)
///  * rt_print_hex                    — value (r0 / r1:r0 pair on V7) as 16
///                                      hex chars + '\n' to the console
///  * rt_print_dec                    — unsigned decimal + '\n'
/// A 96-byte per-process scratch buffer "rt_scratch" is reserved in udata.
void build_librt(kasm::Assembler& a);

} // namespace serep::rt
