#include "rt/softfloat.hpp"

#include "util/check.hpp"

namespace serep::rt {

using isa::Cond;
using kasm::Assembler;
using kasm::ModTag;

namespace {

// Register roles inside the library (args r0..r3 per the ABI):
//   r4 result sign   r5 sign(b)/scratch   r6 exp(a)/result exp   r7 exp(b)
//   r8:r0 mantissa A (hi:lo)   r9:r2 mantissa B   r10 sticky
//   r3, r11, r12 scratch (r1/r3 free once unpacked)
constexpr std::uint16_t kSaveMask = 0x4FF0; // r4-r11 + lr
constexpr int kSaveBytes = 9 * 4;

void push_frame(Assembler& a) {
    a.subi(a.sp(), a.sp(), kSaveBytes);
    a.stm(a.sp(), kSaveMask, false);
}
void pop_frame_ret(Assembler& a) {
    a.ldm(a.sp(), kSaveMask, false);
    a.addi(a.sp(), a.sp(), kSaveBytes);
    a.ret();
}

/// Shared rounding + packing. Inputs: r4 = sign, r6 = exponent field,
/// r8:r0 = 56-bit mantissa (implicit bit at 55, i.e. hi bit 23) or zero,
/// r10 = sticky. Output packed double in (r0, r1). Leaf (no stack).
void emit_round_pack(Assembler& a) {
    a.func("__sf_round_pack", ModTag::SOFTFLOAT);
    auto inc = a.newl(), done = a.newl(), inf = a.newl(), zero = a.newl(),
         noovf = a.newl();
    a.orr(12, 8, 0);
    a.cmpi(12, 0);
    a.b(Cond::EQ, zero);
    a.cmpi(10, 0);
    a.when(Cond::NE).orri(0, 0, 1); // merge sticky into the S bit
    a.andi(12, 0, 7);               // G|R|S
    a.lsri(0, 0, 3);
    a.lsli(11, 8, 29);
    a.orr(0, 0, 11);
    a.lsri(8, 8, 3);
    a.cmpi(12, 4);
    a.b(Cond::CC, done); // below half: truncate
    a.b(Cond::HI, inc);  // above half: round up
    a.andi(11, 0, 1);    // tie: round to even
    a.cmpi(11, 0);
    a.b(Cond::EQ, done);
    a.bind(inc);
    a.addsi(0, 0, 1);
    a.movi(11, 0);
    a.adcs(8, 8, 11);
    a.movi(11, 0x200000); // mantissa overflow to 2^53?
    a.tst(8, 11);
    a.b(Cond::EQ, done);
    a.lsri(0, 0, 1);
    a.lsli(11, 8, 31);
    a.orr(0, 0, 11);
    a.lsri(8, 8, 1);
    a.addi(6, 6, 1);
    a.bind(done);
    a.cmpi(6, 0x7FF);
    a.b(Cond::GE, inf);
    a.cmpi(6, 0);
    a.b(Cond::LE, zero);
    a.lsli(1, 4, 31);
    a.lsli(11, 6, 20);
    a.orr(1, 1, 11);
    a.movi(11, 0xFFFFF);
    a.and_(11, 8, 11);
    a.orr(1, 1, 11);
    a.ret();
    a.bind(noovf); // (unused label kept out of the stream)
    a.bind(inf);
    a.lsli(1, 4, 31);
    a.movi(11, 0x7FF00000);
    a.orr(1, 1, 11);
    a.movi(0, 0);
    a.ret();
    a.bind(zero);
    a.lsli(1, 4, 31);
    a.movi(0, 0);
    a.ret();
}

/// Unpack exponents/signs of a and b into r4/r5 (signs) and r6/r7 (exps).
void emit_unpack_se(Assembler& a) {
    a.lsri(4, 1, 31);
    a.lsri(5, 3, 31);
    a.lsri(6, 1, 20);
    a.andi(6, 6, 0x7FF);
    a.lsri(7, 3, 20);
    a.andi(7, 7, 0x7FF);
}

void emit_adddf3(Assembler& a) {
    a.func("__adddf3", ModTag::SOFTFLOAT);
    auto ret_a = a.newl(), ret_b = a.newl(), noswap = a.newl(), aligned = a.newl(),
         shift_small = a.newl(), shift_big = a.newl(), b_tiny = a.newl(),
         do_sub = a.newl(), asub = a.newl(), bswap = a.newl(), cancel = a.newl(),
         nostick = a.newl(), norm = a.newl(), norm2 = a.newl(), pack = a.newl(),
         add_noovf = a.newl();
    push_frame(a);
    emit_unpack_se(a);
    a.cmpi(6, 0);
    a.b(Cond::EQ, ret_b); // a == 0 (flushed): result is b
    a.cmpi(7, 0);
    a.b(Cond::EQ, ret_a);
    a.cmpi(6, 0x7FF);
    a.b(Cond::EQ, ret_a); // propagate a = inf/NaN
    a.cmpi(7, 0x7FF);
    a.b(Cond::EQ, ret_b);
    // mantissas with implicit bit, pre-shifted left 3 (G/R/S space)
    a.movi(12, 0xFFFFF);
    a.and_(8, 1, 12);
    a.orri(8, 8, 0x100000);
    a.lsli(8, 8, 3);
    a.lsri(11, 0, 29);
    a.orr(8, 8, 11);
    a.lsli(0, 0, 3);
    a.and_(9, 3, 12);
    a.orri(9, 9, 0x100000);
    a.lsli(9, 9, 3);
    a.lsri(11, 2, 29);
    a.orr(9, 9, 11);
    a.lsli(2, 2, 3);
    a.movi(10, 0);
    // make exp(a) >= exp(b)
    a.cmp(6, 7);
    a.b(Cond::GE, noswap);
    a.mov(11, 6); a.mov(6, 7); a.mov(7, 11);
    a.mov(11, 4); a.mov(4, 5); a.mov(5, 11);
    a.mov(11, 8); a.mov(8, 9); a.mov(9, 11);
    a.mov(11, 0); a.mov(0, 2); a.mov(2, 11);
    a.bind(noswap);
    a.sub(11, 6, 7); // d
    a.cmpi(11, 0);
    a.b(Cond::EQ, aligned);
    a.cmpi(11, 56);
    a.b(Cond::GE, b_tiny);
    a.cmpi(11, 32);
    a.b(Cond::GE, shift_big);
    a.bind(shift_small); // d in [1,31]
    a.movi(12, 1);
    a.lslv(12, 12, 11);
    a.subi(12, 12, 1);
    a.and_(12, 2, 12);
    a.orr(10, 10, 12);
    a.lsrv(2, 2, 11);
    a.movi(12, 32);
    a.sub(12, 12, 11);
    a.lslv(3, 9, 12);
    a.orr(2, 2, 3);
    a.lsrv(9, 9, 11);
    a.b(aligned);
    a.bind(shift_big); // d in [32,55]
    a.orr(10, 10, 2);
    a.subi(11, 11, 32);
    a.movi(12, 1);
    a.lslv(12, 12, 11);
    a.subi(12, 12, 1);
    a.and_(12, 9, 12);
    a.orr(10, 10, 12);
    a.lsrv(2, 9, 11);
    a.movi(9, 0);
    a.b(aligned);
    a.bind(b_tiny);
    a.orr(10, 10, 2);
    a.orr(10, 10, 9);
    a.movi(2, 0);
    a.movi(9, 0);
    a.bind(aligned);
    a.cmp(4, 5);
    a.b(Cond::NE, do_sub);
    // same sign: magnitude add
    a.adds(0, 0, 2);
    a.adcs(8, 8, 9);
    a.movi(11, 0x1000000); // carry into bit 24?
    a.tst(8, 11);
    a.b(Cond::EQ, add_noovf);
    a.andi(11, 0, 1);
    a.orr(10, 10, 11);
    a.lsri(0, 0, 1);
    a.lsli(11, 8, 31);
    a.orr(0, 0, 11);
    a.lsri(8, 8, 1);
    a.addi(6, 6, 1);
    a.bind(add_noovf);
    a.b(pack);
    a.bind(do_sub);
    // |A| vs |B| (exponents already aligned)
    a.cmp(8, 9);
    a.b(Cond::HI, asub);
    a.b(Cond::CC, bswap);
    a.cmp(0, 2);
    a.b(Cond::HI, asub);
    a.b(Cond::CC, bswap);
    a.bind(cancel); // equal magnitudes: exact zero (sticky only -> flush)
    a.movi(8, 0);
    a.movi(0, 0);
    a.movi(4, 0);
    a.movi(10, 0);
    a.b(pack);
    a.bind(bswap);
    a.mov(11, 8); a.mov(8, 9); a.mov(9, 11);
    a.mov(11, 0); a.mov(0, 2); a.mov(2, 11);
    a.mov(4, 5);
    a.bind(asub);
    a.subs(0, 0, 2);
    a.sbcs(8, 8, 9);
    // alignment sticky means the true subtrahend was a hair larger
    a.cmpi(10, 0);
    a.b(Cond::EQ, nostick);
    a.subsi(0, 0, 1);
    a.movi(11, 0);
    a.sbcs(8, 8, 11);
    a.bind(nostick);
    // Normalize so the leading bit lands at pair bit 55 (hi bit 23).
    a.orr(11, 8, 0);
    a.cmpi(11, 0);
    a.b(Cond::EQ, pack); // zero mantissa -> packs to zero
    a.cmpi(8, 0);
    a.b(Cond::NE, norm);
    // hi word empty: required shift n = 24 + clz(lo), n in [24, 55]
    a.clz(11, 0);
    a.addi(11, 11, 24);
    a.sub(6, 6, 11);
    a.cmpi(11, 32);
    a.b(Cond::CC, norm2);
    a.subi(11, 11, 32); // n >= 32: everything moves into hi
    a.lslv(8, 0, 11);
    a.movi(0, 0);
    a.b(pack);
    a.bind(norm2); // n in [24, 31]: split lo across the pair
    a.movi(12, 32);
    a.sub(12, 12, 11);
    a.lsrv(8, 0, 12);
    a.lslv(0, 0, 11);
    a.b(pack);
    a.bind(norm); // hi nonzero: n = clz(hi) - 8 in [0, 23]
    a.clz(11, 8);
    a.subi(11, 11, 8);
    a.cmpi(11, 0);
    a.b(Cond::EQ, pack);
    a.lslv(8, 8, 11);
    a.movi(12, 32);
    a.sub(12, 12, 11);
    a.lsrv(3, 0, 12);
    a.orr(8, 8, 3);
    a.lslv(0, 0, 11);
    a.sub(6, 6, 11);
    a.bind(pack);
    a.bl("__sf_round_pack");
    pop_frame_ret(a);
    a.bind(ret_a);
    pop_frame_ret(a);
    a.bind(ret_b);
    a.mov(0, 2);
    a.mov(1, 3);
    pop_frame_ret(a);
}

void emit_subdf3(Assembler& a) {
    // a - b = a + (-b)
    a.func("__subdf3", ModTag::SOFTFLOAT);
    a.eori(3, 3, 0x80000000u);
    a.b_to("__adddf3");
}

void emit_muldf3(Assembler& a) {
    a.func("__muldf3", ModTag::SOFTFLOAT);
    auto zero = a.newl(), inf = a.newl(), no105 = a.newl(), pack = a.newl();
    push_frame(a);
    emit_unpack_se(a);
    a.eor(4, 4, 5); // result sign
    a.cmpi(6, 0x7FF);
    a.b(Cond::EQ, inf);
    a.cmpi(7, 0x7FF);
    a.b(Cond::EQ, inf);
    a.cmpi(6, 0);
    a.b(Cond::EQ, zero);
    a.cmpi(7, 0);
    a.b(Cond::EQ, zero);
    // exponent base
    a.add(6, 6, 7);
    a.subi(6, 6, 1023);
    // mantissas (hi21 with implicit; no pre-shift)
    a.movi(12, 0xFFFFF);
    a.and_(8, 1, 12);
    a.orri(8, 8, 0x100000);
    a.and_(9, 3, 12);
    a.orri(9, 9, 0x100000);
    // 106-bit product in W3:W2:W1:W0 = r3:r1:r7:r5
    a.umull(5, 7, 0, 2);   // aL*bL
    a.umull(10, 11, 0, 9); // aL*bH
    a.adds(7, 7, 10);
    a.movi(12, 0);
    a.adcs(1, 11, 12);     // W2 (no further carry possible yet)
    a.umull(10, 11, 2, 8); // bL*aH
    a.adds(7, 7, 10);
    a.adcs(1, 1, 11);
    a.movi(12, 0);
    a.adcs(3, 12, 12);     // W3 = carry
    a.umull(10, 11, 8, 9); // aH*bH
    a.adds(1, 1, 10);
    a.adcs(3, 3, 11);
    // normalize: bit 105 == W3 bit 9
    a.movi(12, 0x200);
    a.tst(3, 12);
    a.b(Cond::EQ, no105);
    // shift 50: exp+1
    a.addi(6, 6, 1);
    a.movi(12, 0x3FFFF);
    a.and_(12, 7, 12);
    a.orr(10, 5, 12); // sticky
    a.lsri(0, 7, 18);
    a.lsli(12, 1, 14);
    a.orr(0, 0, 12);
    a.lsri(8, 1, 18);
    a.lsli(12, 3, 14);
    a.orr(8, 8, 12);
    a.b(pack);
    a.bind(no105); // shift 49
    a.movi(12, 0x1FFFF);
    a.and_(12, 7, 12);
    a.orr(10, 5, 12);
    a.lsri(0, 7, 17);
    a.lsli(12, 1, 15);
    a.orr(0, 0, 12);
    a.lsri(8, 1, 17);
    a.lsli(12, 3, 15);
    a.orr(8, 8, 12);
    a.bind(pack);
    a.bl("__sf_round_pack");
    pop_frame_ret(a);
    a.bind(zero);
    a.lsli(1, 4, 31);
    a.movi(0, 0);
    pop_frame_ret(a);
    a.bind(inf);
    a.lsli(1, 4, 31);
    a.movi(11, 0x7FF00000);
    a.orr(1, 1, 11);
    a.movi(0, 0);
    pop_frame_ret(a);
}

void emit_divdf3(Assembler& a) {
    a.func("__divdf3", ModTag::SOFTFLOAT);
    auto zero = a.newl(), inf = a.newl(), nopre = a.newl(), doshift = a.newl(),
         loop = a.newl(), geq = a.newl(), lt = a.newl(), pack = a.newl();
    push_frame(a);
    emit_unpack_se(a);
    a.eor(4, 4, 5);
    a.cmpi(6, 0x7FF);
    a.b(Cond::EQ, inf); // a inf -> inf (a inf / b inf -> inf; documented)
    a.cmpi(7, 0x7FF);
    a.b(Cond::EQ, zero); // b inf -> 0
    a.cmpi(6, 0);
    a.b(Cond::EQ, zero); // 0 / x -> 0 (0/0 -> 0; documented)
    a.cmpi(7, 0);
    a.b(Cond::EQ, inf); // x / 0 -> inf
    a.sub(6, 6, 7);
    a.addi(6, 6, 1023);
    a.movi(12, 0xFFFFF);
    a.and_(8, 1, 12);
    a.orri(8, 8, 0x100000);
    a.and_(9, 3, 12);
    a.orri(9, 9, 0x100000);
    // if N < D: N <<= 1, exp -= 1  (then N in [D, 2D))
    a.cmp(8, 9);
    a.b(Cond::HI, nopre);
    a.b(Cond::CC, doshift);
    a.cmp(0, 2);
    a.b(Cond::CS, nopre);
    a.bind(doshift);
    a.adds(0, 0, 0);
    a.adcs(8, 8, 8);
    a.subi(6, 6, 1);
    a.bind(nopre);
    // restoring division, 56 quotient bits into r11:r5
    a.movi(11, 0);
    a.movi(5, 0);
    a.movi(7, 56);
    a.bind(loop);
    a.adds(5, 5, 5);
    a.adcs(11, 11, 11);
    a.cmp(8, 9);
    a.b(Cond::HI, geq);
    a.b(Cond::CC, lt);
    a.cmp(0, 2);
    a.b(Cond::CC, lt);
    a.bind(geq);
    a.subs(0, 0, 2);
    a.sbcs(8, 8, 9);
    a.orri(5, 5, 1);
    a.bind(lt);
    a.adds(0, 0, 0);
    a.adcs(8, 8, 8);
    a.subsi(7, 7, 1);
    a.b(Cond::NE, loop);
    a.orr(10, 8, 0); // sticky = remainder != 0
    a.mov(8, 11);
    a.mov(0, 5);
    a.bind(pack);
    a.bl("__sf_round_pack");
    pop_frame_ret(a);
    a.bind(zero);
    a.lsli(1, 4, 31);
    a.movi(0, 0);
    pop_frame_ret(a);
    a.bind(inf);
    a.lsli(1, 4, 31);
    a.movi(11, 0x7FF00000);
    a.orr(1, 1, 11);
    a.movi(0, 0);
    pop_frame_ret(a);
}

void emit_cmpdf2(Assembler& a) {
    // returns r0 = -1 / 0 / +1 for a < b / a == b / a > b.
    // Zeros (flushed) compare equal regardless of sign; NaNs unsupported.
    // Clobbers only r0..r3, r12 (directly callable from application code).
    a.func("__cmpdf2", ModTag::SOFTFLOAT);
    auto a_zero = a.newl(), b_zero = a.newl(), equal = a.newl(), less = a.newl(),
         greater = a.newl(), signs_same = a.newl(), maglt = a.newl(),
         maggt = a.newl(), differ = a.newl();
    a.lsri(12, 1, 20);
    a.andi(12, 12, 0x7FF);
    a.cmpi(12, 0);
    a.b(Cond::EQ, a_zero);
    a.lsri(12, 3, 20);
    a.andi(12, 12, 0x7FF);
    a.cmpi(12, 0);
    a.b(Cond::EQ, b_zero);
    a.eor(12, 1, 3);
    a.lsri(12, 12, 31);
    a.cmpi(12, 0);
    a.b(Cond::NE, differ);
    a.bind(signs_same);
    // same sign: compare magnitude (hi then lo), invert when negative
    a.cmp(1, 3);
    a.b(Cond::HI, maggt);
    a.b(Cond::CC, maglt);
    a.cmp(0, 2);
    a.b(Cond::HI, maggt);
    a.b(Cond::CC, maglt);
    a.b(equal);
    a.bind(differ); // opposite signs: a < b iff a negative
    a.lsri(12, 1, 31);
    a.cmpi(12, 0);
    a.b(Cond::NE, less);
    a.b(greater);
    a.bind(maggt); // |a| > |b|
    a.lsri(12, 1, 31);
    a.cmpi(12, 0);
    a.b(Cond::EQ, greater);
    a.b(less);
    a.bind(maglt);
    a.lsri(12, 1, 31);
    a.cmpi(12, 0);
    a.b(Cond::EQ, less);
    a.b(greater);
    a.bind(a_zero);
    // a == 0: result depends only on b
    a.lsri(12, 3, 20);
    a.andi(12, 12, 0x7FF);
    a.cmpi(12, 0);
    a.b(Cond::EQ, equal);
    a.lsri(12, 3, 31);
    a.cmpi(12, 0);
    a.b(Cond::EQ, less); // b positive -> a < b
    a.b(greater);
    a.bind(b_zero); // a != 0, b == 0
    a.lsri(12, 1, 31);
    a.cmpi(12, 0);
    a.b(Cond::EQ, greater);
    a.b(less);
    a.bind(equal);
    a.movi(0, 0);
    a.ret();
    a.bind(less);
    a.movi(0, -1);
    a.ret();
    a.bind(greater);
    a.movi(0, 1);
    a.ret();
}

void emit_fixdfsi(Assembler& a) {
    // (r0, r1) double -> r0 int32, truncation toward zero, saturating.
    a.func("__fixdfsi", ModTag::SOFTFLOAT);
    auto ret0 = a.newl(), clamp = a.newl(), wide = a.newl(), apply = a.newl(),
         neg = a.newl();
    a.lsri(12, 1, 20);
    a.andi(12, 12, 0x7FF);
    a.cmpi(12, 0);
    a.b(Cond::EQ, ret0);
    a.subi(12, 12, 1023); // e
    a.cmpi(12, 0);
    a.b(Cond::LT, ret0);
    a.cmpi(12, 30);
    a.b(Cond::GT, clamp);
    // mant hi21 in r2, lo stays r0
    a.movi(2, 0xFFFFF);
    a.and_(2, 1, 2);
    a.orri(2, 2, 0x100000);
    // result = mant53 >> (52 - e)
    a.movi(3, 52);
    a.sub(3, 3, 12); // shift in [22, 52]
    a.cmpi(3, 32);
    a.b(Cond::CC, wide);
    // shift >= 32: comes entirely from hi
    a.subi(3, 3, 32);
    a.lsrv(0, 2, 3);
    a.b(apply);
    a.bind(wide); // shift in [22,31]: combine
    a.lsrv(0, 0, 3);
    a.movi(12, 32);
    a.sub(12, 12, 3);
    a.lslv(2, 2, 12);
    a.orr(0, 0, 2);
    a.bind(apply);
    a.lsri(12, 1, 31);
    a.cmpi(12, 0);
    a.b(Cond::NE, neg);
    a.ret();
    a.bind(neg);
    a.movi(12, 0);
    a.sub(0, 12, 0);
    a.ret();
    a.bind(ret0);
    a.movi(0, 0);
    a.ret();
    a.bind(clamp);
    a.lsri(12, 1, 31);
    a.cmpi(12, 0);
    a.movi(0, 0x7FFFFFFF);
    a.when(Cond::NE).movi(0, static_cast<std::int64_t>(0x80000000u));
    a.ret();
}

void emit_floatsidf(Assembler& a) {
    // r0 int32 -> (r0, r1) double (always exact). Clobbers r0..r3, r12.
    a.func("__floatsidf", ModTag::SOFTFLOAT);
    auto ret0 = a.newl(), pos = a.newl();
    a.cmpi(0, 0);
    a.b(Cond::EQ, ret0);
    a.lsri(3, 0, 31); // sign
    a.cmpi(3, 0);
    a.b(Cond::EQ, pos);
    a.movi(12, 0);
    a.sub(0, 12, 0); // magnitude (INT_MIN -> 0x80000000, correct)
    a.bind(pos);
    a.clz(2, 0);
    a.lslv(0, 0, 2); // normalize: bit 31 set
    a.movi(12, 1023 + 31);
    a.sub(2, 12, 2); // exponent field
    // r1 = sign<<31 | exp<<20 | (normalized >> 11, implicit bit dropped)
    a.lsli(1, 3, 31);
    a.lsli(12, 2, 20);
    a.orr(1, 1, 12);
    a.lsri(12, 0, 11);
    a.movi(3, 0xFFFFF);
    a.and_(12, 12, 3);
    a.orr(1, 1, 12);
    a.lsli(0, 0, 21); // low 11 bits of the normalized value
    a.ret();
    a.bind(ret0);
    a.movi(1, 0);
    a.ret();
}

} // namespace

void build_softfloat(Assembler& a) {
    util::check(a.profile() == isa::Profile::V7,
                "soft-float is the V7 (Cortex-A9) configuration only");
    emit_round_pack(a);
    emit_adddf3(a);
    emit_subdf3(a);
    emit_muldf3(a);
    emit_divdf3(a);
    emit_cmpdf2(a);
    emit_fixdfsi(a);
    emit_floatsidf(a);
}

} // namespace serep::rt
