#include "rt/libomp.hpp"

#include "isa/sysreg.hpp"
#include "os/abi.hpp"
#include "rt/frames.hpp"

namespace serep::rt {

using isa::Cond;
using isa::SysReg;
using kasm::Assembler;
using kasm::ModTag;
using kasm::Reg;

void build_libomp(Assembler& a) {
    const bool v7 = a.profile() == isa::Profile::V7;
    const Reg s0 = v7 ? 4 : 19, s1 = v7 ? 5 : 20, s2 = v7 ? 6 : 21,
              s3 = v7 ? 7 : 22;

    a.udata().align(8);
    a.data_sym("omp_nth", a.udata().reserve(8));
    a.data_sym("omp_gen", a.udata().reserve(8));
    a.data_sym("omp_fn", a.udata().reserve(8));
    a.data_sym("omp_arg", a.udata().reserve(8));
    a.data_sym("omp_done", a.udata().reserve(8));
    a.data_sym("omp_partials", a.udata().reserve(8 * 8));

    // old = omp_atomic_inc(addr r0)
    a.func("omp_atomic_inc", ModTag::OMP);
    auto retry = a.newl();
    a.bind(retry);
    a.ldrex(1, 0);
    a.addi(2, 1, 1);
    a.strex(3, 0, 2);
    a.cmpi(3, 0);
    a.b(Cond::NE, retry);
    a.mov(0, 1);
    a.ret();

    // omp_worker(arg r0 = my thread id) — never returns
    a.func("omp_worker", ModTag::OMP);
    {
        auto wloop = a.newl(), inner = a.newl(), go = a.newl();
        a.mov(s0, 0); // my tid
        a.movi(s1, 0); // last seen generation
        a.bind(wloop);
        a.movi_sym(s2, "omp_gen");
        a.bind(inner);
        a.ldr(2, s2, 0);
        a.cmp(2, s1);
        a.b(Cond::NE, go);
        a.mov(0, s2);
        a.mov(1, s1);
        a.svc(os::SYS_FUTEX_WAIT);
        a.b(inner);
        a.bind(go);
        a.mov(s1, 2);
        // fn(arg, tid, nth)
        a.movi_sym(2, "omp_fn");
        a.ldr(s3, 2, 0);
        a.movi_sym(2, "omp_arg");
        a.ldr(0, 2, 0);
        a.mov(1, s0);
        a.movi_sym(2, "omp_nth");
        a.ldr(2, 2, 0);
        a.blr(s3);
        // arrive: done++ then wake the joiner
        a.movi_sym(0, "omp_done");
        a.bl("omp_atomic_inc");
        a.movi_sym(0, "omp_done");
        a.movi(1, 1);
        a.svc(os::SYS_FUTEX_WAKE);
        a.b(wloop);
    }

    // omp_init() — team size from NCORES; spawns nth-1 workers
    a.func("omp_init", ModTag::OMP);
    {
        auto loop = a.newl(), done = a.newl();
        push_saved(a);
        a.sysrd(s0, SysReg::NCORES);
        a.movi_sym(2, "omp_nth");
        a.str(s0, 2, 0);
        a.movi(s1, 1);
        a.bind(loop);
        a.cmp(s1, s0);
        a.b(Cond::GE, done);
        // 16 KiB worker stack from the heap
        a.movi(0, 0);
        a.svc(os::SYS_BRK);
        a.mov(s2, 0);
        a.addi(0, s2, 16384);
        a.svc(os::SYS_BRK);
        a.mov(1, 0); // stack top
        a.movi_sym(0, "omp_worker");
        a.mov(2, s1);
        a.svc(os::SYS_THREAD_CREATE);
        a.addi(s1, s1, 1);
        a.b(loop);
        a.bind(done);
        pop_saved(a);
        a.ret();
    }

    // omp_parallel(fn r0, arg r1)
    a.func("omp_parallel", ModTag::OMP);
    {
        auto wait = a.newl(), finished = a.newl();
        push_saved(a);
        a.movi_sym(2, "omp_fn");
        a.str(0, 2, 0);
        a.movi_sym(2, "omp_arg");
        a.str(1, 2, 0);
        a.movi_sym(2, "omp_done");
        a.movi(3, 0);
        a.str(3, 2, 0);
        // publish a new generation, then wake the team
        a.movi_sym(2, "omp_gen");
        a.ldr(3, 2, 0);
        a.addi(3, 3, 1);
        a.str(3, 2, 0);
        a.mov(0, 2);
        a.movi(1, 8);
        a.svc(os::SYS_FUTEX_WAKE);
        // the caller is team member 0
        a.movi_sym(2, "omp_fn");
        a.ldr(3, 2, 0);
        a.movi_sym(2, "omp_arg");
        a.ldr(0, 2, 0);
        a.movi(1, 0);
        a.movi_sym(2, "omp_nth");
        a.ldr(2, 2, 0);
        a.blr(3);
        // join: wait until done == nth-1
        a.bind(wait);
        a.movi_sym(2, "omp_nth");
        a.ldr(s0, 2, 0);
        a.subi(s0, s0, 1);
        a.movi_sym(2, "omp_done");
        a.ldr(3, 2, 0);
        a.cmp(3, s0);
        a.b(Cond::GE, finished);
        a.mov(0, 2);
        a.mov(1, 3);
        a.svc(os::SYS_FUTEX_WAIT);
        a.b(wait);
        a.bind(finished);
        pop_saved(a);
        a.ret();
    }
}

} // namespace serep::rt
