// Software IEEE-754 binary64 arithmetic for the V7 profile (guest code).
//
// The paper attributes most of the ARMv7/ARMv8 gap to the compiler choosing
// the software FP library on the Cortex-A9; this module is that library.
// Calling convention (AAPCS soft-float style):
//   double a in (r0 = low word, r1 = high word), double b in (r2, r3),
//   result in (r0, r1). Callee-saved r4-r11 preserved.
//
// Semantics: round-to-nearest-even on add/mul/div; subnormals are flushed
// to zero on input and output (documented deviation — the NPB-style kernels
// never reach subnormals); infinities propagate crudely and NaN handling is
// not IEEE-complete (kernels avoid them). One known sub-ULP deviation:
// effective subtraction with nonzero alignment sticky may round 1 ulp off
// true IEEE in rare cases (documented; covered by tolerance in tests).
//
// Functions: __adddf3 __subdf3 __muldf3 __divdf3 __cmpdf2 __fixdfsi
// __floatsidf and the shared internal __sf_round_pack.
#pragma once

#include "kasm/assembler.hpp"

namespace serep::rt {

/// Emit the soft-float library (tag SOFTFLOAT). V7 profile only.
void build_softfloat(kasm::Assembler& a);

} // namespace serep::rt
