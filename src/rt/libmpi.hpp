// MPI-like guest runtime: one process per rank, kernel message channels,
// eager-protocol chunking, linear collectives. SPMD with independent
// per-rank threads — the balanced structure the paper credits for MPI's
// higher masking rate; lost/corrupted messages deadlock (-> Hang), the
// failure mode the paper attributes to MPI.
//
// Guest symbols (tag MPI), args in r0..r3:
//  * mpi_init(rank, size)
//  * mpi_send(dst, buf, len)  / mpi_recv(src, buf, len)  — len % 4 == 0,
//    chunked into <=240-byte channel messages
//  * mpi_barrier()
//  * mpi_bcast(buf, len, root)
//  * mpi_reduce_f64(send, recv, count, root)   — count <= 256
//  * mpi_allreduce_f64(send, recv, count)      — reduce to 0 + bcast
//  * mpi_reduce_u32(send, recv, count, root)   — count <= 512
//  * mpi_alltoall(send, recv, block_bytes)     — block <= 7168 per rank
// Data symbols: mpi_rank, mpi_size.
#pragma once

#include "kasm/assembler.hpp"

namespace serep::rt {

void build_libmpi(kasm::Assembler& a);

} // namespace serep::rt
