#include "rt/librt.hpp"

#include "isa/sysreg.hpp"
#include "os/abi.hpp"

namespace serep::rt {

using isa::Cond;
using isa::Profile;
using kasm::Assembler;
using kasm::ModTag;
using kasm::Reg;

namespace {

/// digit value in `d` (0..15) -> ASCII in `ch` (clobbers flags)
void emit_hex_digit(Assembler& a, Reg ch, Reg d) {
    auto alpha = a.newl();
    a.addi(ch, d, '0');
    a.cmpi(d, 10);
    a.b(Cond::LT, alpha);
    a.addi(ch, d, 'a' - 10);
    a.bind(alpha);
}

void emit_memcpy(Assembler& a) {
    const bool v7 = a.profile() == Profile::V7;
    const unsigned w = a.wbytes();
    // rt_memcpy(dst r0, src r1, n r2); clobbers r3, r12
    a.func("rt_memcpy", ModTag::LIBRT);
    auto wloop = a.newl(), bloop = a.newl(), btest = a.newl(), done = a.newl();
    a.bind(wloop);
    a.cmpi(2, w);
    a.b(Cond::CC, btest);
    a.ldr(3, 1, 0);
    a.str(3, 0, 0);
    a.addi(0, 0, w);
    a.addi(1, 1, w);
    a.subi(2, 2, w);
    a.b(wloop);
    a.bind(btest);
    a.cmpi(2, 0);
    a.b(Cond::EQ, done);
    a.bind(bloop);
    a.ldrb(3, 1, 0);
    a.strb(3, 0, 0);
    a.addi(0, 0, 1);
    a.addi(1, 1, 1);
    a.subsi(2, 2, 1);
    a.b(Cond::NE, bloop);
    a.bind(done);
    a.ret();
    (void)v7;
}

void emit_memset(Assembler& a) {
    // rt_memset(dst r0, byte r1, n r2)
    a.func("rt_memset", ModTag::LIBRT);
    auto loop = a.newl(), done = a.newl();
    a.cmpi(2, 0);
    a.b(Cond::EQ, done);
    a.bind(loop);
    a.strb(1, 0, 0);
    a.addi(0, 0, 1);
    a.subsi(2, 2, 1);
    a.b(Cond::NE, loop);
    a.bind(done);
    a.ret();
}

void emit_udiv32(Assembler& a) {
    // V7 software division: (r0 = num, r1 = den) -> r0 = quotient,
    // r1 = remainder. Division by zero returns (0, num) like the ARM
    // hardware quotient convention.
    a.func("__udiv32", ModTag::LIBRT);
    auto loop = a.newl(), skip = a.newl(), divzero = a.newl();
    a.cmpi(1, 0);
    a.b(Cond::EQ, divzero);
    a.movi(2, 0);  // quotient
    a.movi(3, 0);  // remainder
    a.movi(12, 32);
    a.bind(loop);
    a.adds(0, 0, 0);  // num <<= 1, carry = old bit31
    a.adcs(3, 3, 3);  // rem = rem<<1 | carry
    a.lsli(2, 2, 1);
    a.cmp(3, 1);
    a.b(Cond::CC, skip);
    a.sub(3, 3, 1);
    a.orri(2, 2, 1);
    a.bind(skip);
    a.subsi(12, 12, 1);
    a.b(Cond::NE, loop);
    a.mov(0, 2);
    a.mov(1, 3);
    a.ret();
    a.bind(divzero);
    a.mov(1, 0);
    a.movi(0, 0);
    a.ret();
}

void emit_sdiv32(Assembler& a) {
    // (r0 = num, r1 = den) -> r0 = quotient (truncated toward zero)
    a.func("__sdiv32", ModTag::LIBRT);
    // save r4, lr
    a.subi(a.sp(), a.sp(), 8);
    a.stm(a.sp(), (1u << 4) | (1u << 14), false);
    a.eor(4, 0, 1);
    a.lsri(4, 4, 31); // result sign
    a.movi(12, 0);
    a.cmpi(0, 0);
    a.when(Cond::LT).sub(0, 12, 0);
    a.cmpi(1, 0);
    a.when(Cond::LT).sub(1, 12, 1);
    a.bl("__udiv32");
    a.movi(12, 0);
    a.cmpi(4, 0);
    a.when(Cond::NE).sub(0, 12, 0);
    a.ldm(a.sp(), (1u << 4) | (1u << 14), false);
    a.addi(a.sp(), a.sp(), 8);
    a.ret();
}

void emit_print_hex(Assembler& a) {
    const bool v7 = a.profile() == Profile::V7;
    // V7: (r0 = lo, r1 = hi); V8: x0 = value. Prints 16 hex digits + '\n'.
    // Clobbers r0..r3, r12. Not thread-safe (per-process scratch buffer).
    a.func("rt_print_hex", ModTag::LIBRT);
    a.movi_sym(3, "rt_scratch");
    if (v7) {
        // low word -> positions 15..8, high word -> 7..0
        for (int src = 0; src < 2; ++src) {
            const Reg val = src == 0 ? 0 : 1;
            const int hi_idx = src == 0 ? 15 : 7;
            for (int i = 0; i < 8; ++i) {
                a.andi(2, val, 15);
                emit_hex_digit(a, 12, 2);
                a.strb(12, 3, hi_idx - i);
                if (i != 7) a.lsri(val, val, 4);
            }
        }
    } else {
        for (int i = 15; i >= 0; --i) {
            a.andi(2, 0, 15);
            emit_hex_digit(a, 12, 2);
            a.strb(12, 3, i);
            if (i != 0) a.lsri(0, 0, 4);
        }
    }
    a.movi(12, '\n');
    a.strb(12, 3, 16);
    a.mov(0, 3);
    a.movi(1, 17);
    a.svc(os::SYS_WRITE);
    a.ret();
}

void emit_print_dec(Assembler& a) {
    const bool v7 = a.profile() == Profile::V7;
    // unsigned value in r0, prints decimal + '\n'. V7 exercises the
    // software divider (the authentic no-hardware-divide cost).
    a.func("rt_print_dec", ModTag::LIBRT);
    if (v7) {
        // save r4 (digit cursor), r5 (scratch base), lr
        a.subi(a.sp(), a.sp(), 12);
        a.stm(a.sp(), (1u << 4) | (1u << 5) | (1u << 14), false);
        a.movi_sym(5, "rt_scratch");
        a.movi(4, 31);
        a.movi(12, '\n');
        a.strb(12, 5, 31);
        auto loop = a.newl();
        a.bind(loop);
        a.movi(1, 10);
        a.bl("__udiv32"); // r0 = q, r1 = rem
        a.addi(1, 1, '0');
        a.subi(4, 4, 1);
        a.strb_idx(1, 5, 4);
        a.cmpi(0, 0);
        a.b(Cond::NE, loop);
        a.add(0, 5, 4);
        a.movi(1, 32);
        a.sub(1, 1, 4);
        a.svc(os::SYS_WRITE);
        a.ldm(a.sp(), (1u << 4) | (1u << 5) | (1u << 14), false);
        a.addi(a.sp(), a.sp(), 12);
        a.ret();
    } else {
        a.movi_sym(5, "rt_scratch"); // x5 scratch base (caller-saved on V8)
        a.movi(4, 31);
        a.movi(12, '\n');
        a.strb(12, 5, 31);
        auto loop = a.newl();
        a.bind(loop);
        a.movi(1, 10);
        a.udiv(2, 0, 1);  // q
        a.mul(3, 2, 1);
        a.sub(3, 0, 3);   // rem
        a.addi(3, 3, '0');
        a.subi(4, 4, 1);
        a.strb_idx(3, 5, 4);
        a.mov(0, 2);
        a.cmpi(0, 0);
        a.b(Cond::NE, loop);
        a.add(0, 5, 4);
        a.movi(1, 32);
        a.sub(1, 1, 4);
        a.svc(os::SYS_WRITE);
        a.ret();
    }
}

} // namespace

void build_librt(Assembler& a) {
    a.udata().align(8);
    a.data_sym("rt_scratch", a.udata().reserve(96));
    emit_memcpy(a);
    emit_memset(a);
    if (a.profile() == Profile::V7) {
        emit_udiv32(a);
        emit_sdiv32(a);
    }
    emit_print_hex(a);
    emit_print_dec(a);
}

} // namespace serep::rt
