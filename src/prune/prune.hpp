// Fault-equivalence pruning (dynamic def-use analysis over the golden run).
//
// A single-bit fault only matters once the corrupted state is *used* in a way
// that can change the machine's future: fetched as a jump/branch decision,
// used as a memory address, or written to a system register with behavioral
// side effects. Until such a "real use", the faulty machine is the golden
// machine plus a sparse XOR diff that every data instruction transforms
// *exactly* — the µISA is deterministic and fully enumerable, so the diff
// after `rd = op(rn, rm)` is just `golden_result ^ op(faulty_inputs)`.
//
// The analyzer replays the golden execution once with a sim::StepObserver
// attached and walks every fault's diff through it:
//  * faults whose diff dies (overwritten) or lies at rest when the run ends
//    are classified directly from the final diff — no simulation (Infer),
//  * faults that reach a real use are fingerprinted by (instant, diff,
//    sticky output/exit deltas); faults with identical fingerprints have
//    bit-identical faulty futures, so one representative per class is
//    simulated (Simulate) and the rest inherit its outcome (Follow).
//
// Soundness rests on the same determinism contract the execution engines
// already share: timing, cache and scheduler evolution depend only on
// addresses, branch decisions and op identities, all of which are bit-equal
// between the golden and the faulty run up to the first real use. The walk
// additionally relies on on_step firing exactly once per retired
// instruction under every engine — superblock traces included (the trace
// engine keeps the observer callback per step; engine_test gates this) —
// since a skipped callback would silently corrupt the XOR diff.
// The differential check (`serep run --prune=verify`) re-simulates a seeded
// sample of inferred faults and fails loudly on any outcome mismatch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "npb/npb.hpp"

namespace serep::kasm {
struct Image;
} // namespace serep::kasm

namespace serep::prune {

/// What to do for one fault of a job's fault list.
struct FaultPlan {
    enum class Action : std::uint8_t {
        Simulate, ///< class representative — run the real injection
        Follow,   ///< same class as `rep`; copy its simulated record
        Infer,    ///< outcome known from the diff walk; `outcome`/`retired` set
    };
    Action action = Action::Simulate;
    std::uint32_t rep = 0;       ///< fault-list index of the class rep (Follow)
    core::Outcome outcome = core::Outcome::Vanished; ///< Infer only
    std::uint64_t retired = 0;   ///< Infer only: retired == golden total
};

struct PruneAnalysis {
    std::vector<FaultPlan> plan; ///< parallel to the input fault list
    std::size_t n_simulate = 0;
    std::size_t n_follow = 0;
    std::size_t n_infer = 0;
};

/// Replay the scenario's golden execution once (instrumented) and classify
/// every fault of `faults`. Deterministic: same scenario + faults + engine
/// always yields the same plan. The fault list is the job's *post-filter*
/// list, so shards compute their equivalence classes independently and the
/// merged record array is identical however the space was sharded.
PruneAnalysis analyze(const npb::Scenario& s, sim::Engine engine,
                      const std::vector<core::Fault>& faults);

/// Test hook: the analyzer's *static* backward may-use liveness mask for the
/// instruction at `pc` (bit r = GPR r may be read before being overwritten on
/// some path from pc; static_live_flags_bit() = NZCV may be consumed).
/// Returns all-ones for a pc outside the image's code (conservative).
std::uint64_t static_live_mask(const kasm::Image& img, std::uint64_t pc);

/// Test hook: the bit static_live_mask() uses for the flags register.
std::uint64_t static_live_flags_bit() noexcept;

} // namespace serep::prune
