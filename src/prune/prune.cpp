#include "prune/prune.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#ifdef PRUNE_TRACE
#include <cstdio>
#endif
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/encode.hpp"
#include "isa/flags.hpp"
#include "sim/machine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bitops.hpp"
#include "util/check.hpp"

namespace serep::prune {

namespace {

using core::Fault;
using core::FaultTarget;
using core::Outcome;
using isa::Flags;
using isa::Instr;
using isa::Op;
using isa::SysReg;
using isa::TrapCause;
using sim::DecodedInstr;
using sim::Machine;
using sim::Mode;
using util::low_mask;

// ---- diff locations -------------------------------------------------------
// A fault's pending corruption is a sparse map Loc -> XOR mask. Loc packs a
// kind tag (bits 60..63) over an address:
//   GPR   core<<8 | slot          width-bits mask
//   FP    core<<8 | reg           64-bit mask
//   FLAGS core                    NZCV nibble mask
//   MEM   physical byte           8-bit mask
//   USP   core (banked_sp)        width-bits mask
//   EPC   core                    width-bits mask
//   TLS   core                    width-bits mask
constexpr std::uint64_t kLGpr = 1, kLFp = 2, kLFlags = 3, kLMem = 4,
                        kLUsp = 5, kLEpc = 6, kLTls = 7;

constexpr std::uint64_t make_loc(std::uint64_t kind, std::uint64_t a) noexcept {
    return (kind << 60) | a;
}
constexpr std::uint64_t loc_gpr(unsigned c, unsigned slot) noexcept {
    return make_loc(kLGpr, (std::uint64_t{c} << 8) | slot);
}
constexpr std::uint64_t loc_fp(unsigned c, unsigned reg) noexcept {
    return make_loc(kLFp, (std::uint64_t{c} << 8) | reg);
}
constexpr std::uint64_t loc_flags(unsigned c) noexcept { return make_loc(kLFlags, c); }
constexpr std::uint64_t loc_mem(std::uint64_t phys) noexcept { return make_loc(kLMem, phys); }
constexpr std::uint64_t loc_usp(unsigned c) noexcept { return make_loc(kLUsp, c); }
constexpr std::uint64_t loc_epc(unsigned c) noexcept { return make_loc(kLEpc, c); }
constexpr std::uint64_t loc_tls(unsigned c) noexcept { return make_loc(kLTls, c); }
constexpr std::uint64_t loc_kind(std::uint64_t l) noexcept { return l >> 60; }
constexpr std::uint64_t loc_byte(std::uint64_t l) noexcept {
    return l & ((std::uint64_t{1} << 60) - 1);
}

// ---- exact replicas of the engine's ALU primitives ------------------------
// (sim/exec_ops.cpp keeps its copies private; these must stay bit-identical.)

struct Alu {
    std::uint64_t value;
    Flags flags;
};

Alu carry_add(std::uint64_t a, std::uint64_t b, std::uint64_t cin,
              unsigned w) noexcept {
    const std::uint64_t mask = low_mask(w);
    a &= mask;
    b &= mask;
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) + b + (cin & 1);
    const std::uint64_t r = static_cast<std::uint64_t>(wide) & mask;
    Alu out{r, {}};
    out.flags.n = ((r >> (w - 1)) & 1) != 0;
    out.flags.z = r == 0;
    out.flags.c = (wide >> w) != 0;
    out.flags.v = (((~(a ^ b) & (a ^ r)) >> (w - 1)) & 1) != 0;
    return out;
}

std::uint64_t shl(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    return amt >= w ? 0 : (v << amt) & low_mask(w);
}
std::uint64_t shr(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    v &= low_mask(w);
    return amt >= w ? 0 : v >> amt;
}
std::uint64_t sar(std::uint64_t v, unsigned amt, unsigned w) noexcept {
    const std::int64_t s = util::sign_extend(v, w);
    if (amt >= w) amt = w - 1;
    return static_cast<std::uint64_t>(s >> amt) & low_mask(w);
}

std::uint64_t clz_result(std::uint64_t a, unsigned w) noexcept {
    if (a == 0) return w;
    if (w == 32) return util::clz(a, 32);
    return util::clz(a, 64);
}

std::int64_t sdiv_result(std::uint64_t an, std::uint64_t am, unsigned w) noexcept {
    const std::int64_t a = util::sign_extend(an, w);
    const std::int64_t b = util::sign_extend(am, w);
    if (b == 0) return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
    return a / b;
}

Flags fcmp_flags(double a, double b) noexcept {
    if (std::isnan(a) || std::isnan(b)) return Flags{false, false, true, true};
    if (a == b) return Flags{false, true, true, false};
    if (a < b) return Flags{true, false, false, false};
    return Flags{false, false, true, false};
}

std::int64_t fcvtzs_result(double d) noexcept {
    if (std::isnan(d)) return 0;
    if (d >= 9.2233720368547758e18) return std::numeric_limits<std::int64_t>::max();
    if (d <= -9.2233720368547758e18) return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(d);
}

// ---- pure integer data-op evaluator ---------------------------------------
// One transcription of every integer ALU / flag / conditional-select op,
// evaluated under a caller-supplied register reader + flags value, so the
// same code computes the golden result, the faulty result, and (for V7
// predicate flips) the one side that actually executes. These ops have no
// memory access, no control transfer, and flat tick cost, which is what
// makes a predicate flip on them a pure data event.

struct DataEffect {
    bool wr_rd = false, wr_ra = false, wr_flags = false;
    std::uint64_t rd = 0, ra = 0;
    std::uint8_t flags = 0;
};

template <typename RX>
bool eval_int_data(const Instr& ins, unsigned w, RX x, Flags fl, DataEffect& e) {
    const std::uint64_t imm = static_cast<std::uint64_t>(ins.imm);
    const auto rd = [&](std::uint64_t v) { e.wr_rd = true; e.rd = v; };
    const auto ra = [&](std::uint64_t v) { e.wr_ra = true; e.ra = v; };
    const auto ff = [&](Flags nf) {
        e.wr_flags = true;
        e.flags = static_cast<std::uint8_t>(nf.pack());
    };
    const auto alu = [&](const Alu& a) { ff(a.flags); rd(a.value); };
    switch (ins.op) {
        case Op::MOVI: rd(imm); return true;
        case Op::MOV: rd(x(ins.rn)); return true;
        case Op::MVN: rd(~x(ins.rn)); return true;
        case Op::ADD: rd(x(ins.rn) + x(ins.rm)); return true;
        case Op::SUB: rd(x(ins.rn) - x(ins.rm)); return true;
        case Op::AND: rd(x(ins.rn) & x(ins.rm)); return true;
        case Op::ORR: rd(x(ins.rn) | x(ins.rm)); return true;
        case Op::EOR: rd(x(ins.rn) ^ x(ins.rm)); return true;
        case Op::MUL: rd(x(ins.rn) * x(ins.rm)); return true;
        case Op::ADDI: rd(x(ins.rn) + imm); return true;
        case Op::SUBI: rd(x(ins.rn) - imm); return true;
        case Op::ANDI: rd(x(ins.rn) & imm); return true;
        case Op::ORRI: rd(x(ins.rn) | imm); return true;
        case Op::EORI: rd(x(ins.rn) ^ imm); return true;
        case Op::ADDS: alu(carry_add(x(ins.rn), x(ins.rm), 0, w)); return true;
        case Op::SUBS: alu(carry_add(x(ins.rn), ~x(ins.rm), 1, w)); return true;
        case Op::ADDSI: alu(carry_add(x(ins.rn), imm, 0, w)); return true;
        case Op::SUBSI: alu(carry_add(x(ins.rn), ~imm, 1, w)); return true;
        case Op::ADCS: alu(carry_add(x(ins.rn), x(ins.rm), fl.c, w)); return true;
        case Op::SBCS: alu(carry_add(x(ins.rn), ~x(ins.rm), fl.c, w)); return true;
        case Op::UMULL: {
            const std::uint64_t p =
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(x(ins.rn))) *
                static_cast<std::uint32_t>(x(ins.rm));
            rd(p & 0xFFFFFFFFu);
            ra(p >> 32);
            return true;
        }
        case Op::SMULL: {
            const std::int64_t p =
                static_cast<std::int64_t>(static_cast<std::int32_t>(x(ins.rn))) *
                static_cast<std::int32_t>(x(ins.rm));
            rd(static_cast<std::uint64_t>(p) & 0xFFFFFFFFu);
            ra(static_cast<std::uint64_t>(p) >> 32);
            return true;
        }
        case Op::UMULH:
            rd(static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(x(ins.rn)) * x(ins.rm)) >> 64));
            return true;
        case Op::UDIV: {
            const std::uint64_t b = x(ins.rm);
            rd(b == 0 ? 0 : x(ins.rn) / b);
            return true;
        }
        case Op::SDIV:
            rd(static_cast<std::uint64_t>(sdiv_result(x(ins.rn), x(ins.rm), w)));
            return true;
        case Op::LSLI: rd(shl(x(ins.rn), static_cast<unsigned>(imm), w)); return true;
        case Op::LSRI: rd(shr(x(ins.rn), static_cast<unsigned>(imm), w)); return true;
        case Op::ASRI: rd(sar(x(ins.rn), static_cast<unsigned>(imm), w)); return true;
        case Op::LSLV:
            rd(shl(x(ins.rn), static_cast<unsigned>(x(ins.rm) & 0xFF), w));
            return true;
        case Op::LSRV:
            rd(shr(x(ins.rn), static_cast<unsigned>(x(ins.rm) & 0xFF), w));
            return true;
        case Op::ASRV:
            rd(sar(x(ins.rn), static_cast<unsigned>(x(ins.rm) & 0xFF), w));
            return true;
        case Op::LSLSI: {
            const unsigned sh = static_cast<unsigned>(imm);
            const std::uint64_t a = x(ins.rn);
            const std::uint64_t r = shl(a, sh, w);
            Flags nf = fl; // V preserved
            nf.c = util::get_bit(a, w - sh);
            nf.n = util::get_bit(r, w - 1);
            nf.z = r == 0;
            ff(nf);
            rd(r);
            return true;
        }
        case Op::LSRSI: {
            const unsigned sh = static_cast<unsigned>(imm);
            const std::uint64_t a = x(ins.rn);
            const std::uint64_t r = shr(a, sh, w);
            Flags nf = fl; // V preserved
            nf.c = util::get_bit(a, sh - 1);
            nf.n = false;
            nf.z = r == 0;
            ff(nf);
            rd(r);
            return true;
        }
        case Op::CLZ: rd(clz_result(x(ins.rn), w)); return true;
        case Op::CMP: ff(carry_add(x(ins.rn), ~x(ins.rm), 1, w).flags); return true;
        case Op::CMPI: ff(carry_add(x(ins.rn), ~imm, 1, w).flags); return true;
        case Op::CMN: ff(carry_add(x(ins.rn), x(ins.rm), 0, w).flags); return true;
        case Op::TST: {
            const std::uint64_t r = (x(ins.rn) & x(ins.rm)) & low_mask(w);
            Flags nf = fl; // C/V preserved
            nf.n = util::get_bit(r, w - 1);
            nf.z = r == 0;
            ff(nf);
            return true;
        }
        case Op::CSEL:
            rd(isa::cond_holds(ins.cond, fl) ? x(ins.rn) : x(ins.rm));
            return true;
        case Op::CSET: rd(isa::cond_holds(ins.cond, fl) ? 1 : 0); return true;
        default:
            return false;
    }
}

void append_hex(std::string& s, std::uint64_t v) {
    char buf[17];
    int n = 0;
    do {
        buf[n++] = "0123456789abcdef"[v & 0xF];
        v >>= 4;
    } while (v != 0);
    while (n > 0) s += buf[--n];
}

// ---- static register liveness ---------------------------------------------
//
// May-read-before-overwrite analysis over the image's code, used to shrink
// divergence fingerprints. When a conditional branch decision flips, the
// faulty run continues at a *known* static pc; a register whose value is
// provably never consumed as data from that pc onward (written on every
// path before any read, call, indirect jump, or trap) cannot influence
// control flow, addresses, stores, traps, output, or exit codes. Two faults
// whose divergence diffs differ only in such registers therefore execute the
// same faulty future and classify identically: the dead values ride along as
// inert diffs that are either overwritten on every path or, when an
// interrupt spills them through fixed PCB slots, leave kernel-memory residue
// whose *presence* (what classification sees) is equal for both. Kernel
// excursions are transparent to the analysis because context save/restore
// moves register values without consuming them and scheduler decisions
// depend on retire counts, never on user register contents.
//
// Bits 0..32 track the integer register slots, kFlagsBit the NZCV nibble.
// Indirect control (BR/BLR/RET/ERET), traps (SVC/UDF), halt states, writes
// to the V7 pc register, and out-of-image targets are sinks: everything is
// conservatively live there.
class StaticLiveness {
public:
    static constexpr std::uint64_t kFlagsBit = std::uint64_t{1} << 40;
    static constexpr std::uint64_t kAllLive = ~std::uint64_t{0};

    explicit StaticLiveness(const kasm::Image& img) : img_(img) {
        const isa::ProfileInfo info = isa::profile_info(img.profile);
        const std::size_t n = img.code.size();
        use_.resize(n);
        def_.resize(n);
        succ_.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            derive(i, info.pc_is_gpr, info.pc_index, info.lr_index);
        live_.assign(n, 0);
        // Backward fixpoint; reverse sweeps converge in a handful of passes
        // on mostly-forward control flow, loops adding one pass per nest.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = n; i-- > 0;) {
                std::uint64_t out = 0;
                for (const std::size_t s : succ_[i]) {
                    if (s == kSink) {
                        out = kAllLive;
                        break;
                    }
                    if (s != kNone) out |= live_[s];
                }
                const std::uint64_t in = use_[i] | (out & ~def_[i]);
                if (in != live_[i]) {
                    live_[i] = in;
                    changed = true;
                }
            }
        }
    }

    /// May-read set at code byte address `pc`; all-live outside the image.
    std::uint64_t live_at(std::uint64_t pc) const {
        return img_.contains_code(pc) ? live_[img_.instr_index(pc)] : kAllLive;
    }

private:
    static constexpr std::size_t kSink = ~std::size_t{0};
    static constexpr std::size_t kNone = kSink - 1;

    void derive(std::size_t i, bool v7, unsigned pc_slot, unsigned lr_slot) {
        const Instr& ins = img_.code[i];
        std::uint64_t use = 0, def = 0;
        const auto rd_of = [&](unsigned r) {
            return r < 33 ? std::uint64_t{1} << r : 0;
        };
        const auto R = [&](unsigned r) { use |= rd_of(r); };
        const auto D = [&](unsigned r) { def |= rd_of(r); };
        std::size_t s0 = i + 1 < img_.code.size() ? i + 1 : kSink;
        std::size_t s1 = kNone;
        const auto target = [&](std::int64_t t) {
            const std::uint64_t a = static_cast<std::uint64_t>(t);
            return img_.contains_code(a) ? img_.instr_index(a) : kSink;
        };
        bool sink = false;
        switch (ins.op) {
            // moves / ALU
            case Op::MOVI: D(ins.rd); break;
            case Op::MOV:
            case Op::MVN:
            case Op::CLZ:
                R(ins.rn);
                D(ins.rd);
                break;
            case Op::ADD:
            case Op::SUB:
            case Op::AND:
            case Op::ORR:
            case Op::EOR:
            case Op::MUL:
            case Op::UMULH:
            case Op::UDIV:
            case Op::SDIV:
            case Op::LSLV:
            case Op::LSRV:
            case Op::ASRV:
                R(ins.rn);
                R(ins.rm);
                D(ins.rd);
                break;
            case Op::ADDI:
            case Op::SUBI:
            case Op::ANDI:
            case Op::ORRI:
            case Op::EORI:
            case Op::LSLI:
            case Op::LSRI:
            case Op::ASRI:
                R(ins.rn);
                D(ins.rd);
                break;
            case Op::ADDS:
            case Op::SUBS:
                R(ins.rn);
                R(ins.rm);
                D(ins.rd);
                def |= kFlagsBit;
                break;
            case Op::ADDSI:
            case Op::SUBSI:
            case Op::LSLSI:
            case Op::LSRSI:
                R(ins.rn);
                D(ins.rd);
                def |= kFlagsBit;
                break;
            case Op::ADCS:
            case Op::SBCS:
                R(ins.rn);
                R(ins.rm);
                use |= kFlagsBit;
                D(ins.rd);
                def |= kFlagsBit;
                break;
            case Op::UMULL:
            case Op::SMULL:
                R(ins.rn);
                R(ins.rm);
                D(ins.rd);
                D(ins.ra);
                break;
            case Op::CMP:
            case Op::CMN:
            case Op::TST:
                R(ins.rn);
                R(ins.rm);
                def |= kFlagsBit;
                break;
            case Op::CMPI:
                R(ins.rn);
                def |= kFlagsBit;
                break;
            case Op::CSEL:
                if (ins.cond != isa::Cond::AL) use |= kFlagsBit;
                R(ins.rn);
                R(ins.rm);
                D(ins.rd);
                break;
            case Op::CSET:
                if (ins.cond != isa::Cond::AL) use |= kFlagsBit;
                D(ins.rd);
                break;
            // branches
            case Op::B: s0 = target(ins.imm); break;
            case Op::BCOND:
                use |= kFlagsBit;
                s1 = target(ins.imm);
                break;
            case Op::BL:
                D(lr_slot);
                s0 = target(ins.imm);
                break;
            case Op::BLR:
            case Op::BR:
                R(ins.rn);
                sink = true;
                break;
            case Op::RET:
                R(lr_slot);
                sink = true;
                break;
            case Op::CBZ:
            case Op::CBNZ:
                R(ins.rn);
                s1 = target(ins.imm);
                break;
            // memory
            case Op::LDR:
            case Op::LDRW:
            case Op::LDRB:
                R(ins.rn);
                R(ins.rm);
                D(ins.rd);
                break;
            case Op::STR:
            case Op::STRW:
            case Op::STRB:
                R(ins.rn);
                R(ins.rm);
                R(ins.rd);
                break;
            case Op::LDM:
                R(ins.rn);
                for (unsigned r = 0; r < 15; ++r)
                    if (ins.regmask & (1u << r)) D(r);
                if (ins.wb) D(ins.rn);
                break;
            case Op::STM:
                R(ins.rn);
                for (unsigned r = 0; r < 15; ++r)
                    if (ins.regmask & (1u << r)) R(r);
                if (ins.wb) D(ins.rn);
                break;
            case Op::LDP:
                R(ins.rn);
                D(ins.rd);
                D(ins.ra);
                break;
            case Op::STP:
                R(ins.rn);
                R(ins.rd);
                R(ins.ra);
                break;
            case Op::LDREX:
                R(ins.rn);
                D(ins.rd);
                break;
            case Op::STREX:
                R(ins.rn);
                R(ins.rm);
                D(ins.rd);
                break;
            // FP: integer-visible pieces only (FP regs are never projected)
            case Op::FCMP: def |= kFlagsBit; break;
            case Op::FCVTZS:
            case Op::FMOVVX:
                D(ins.rd);
                break;
            case Op::SCVTF:
            case Op::FMOVXV:
                R(ins.rn);
                break;
            case Op::FLDR:
            case Op::FSTR:
                R(ins.rn);
                R(ins.rm);
                break;
            case Op::FADD:
            case Op::FSUB:
            case Op::FMUL:
            case Op::FDIV:
            case Op::FSQRT:
            case Op::FNEG:
            case Op::FABS:
            case Op::FMADD:
            case Op::FMOV:
            case Op::FMOVI:
                break;
            // system
            case Op::SVC: sink = true; break; // kernel consumes syscall args
            case Op::SYSRD: D(ins.rd); break;
            case Op::SYSWR: R(ins.rn); break;
            case Op::ERET:
            case Op::WFI:
            case Op::HLT:
            case Op::UDF:
                sink = true;
                break;
            case Op::NOP: break;
        }
        // V7 predication: a guarded write may not happen (no kill) and the
        // guard itself reads the flags.
        if (v7 && ins.cond != isa::Cond::AL && ins.op != Op::BCOND) {
            use |= kFlagsBit;
            def = 0;
        }
        // Writes to the V7 pc register are computed control transfers.
        if (v7 && ((def >> pc_slot) & 1) != 0) {
            def &= ~(std::uint64_t{1} << pc_slot);
            sink = true;
        }
        if (sink) {
            s0 = kSink;
            s1 = kNone;
        }
        use_[i] = use;
        def_[i] = def;
        succ_[i] = {s0, s1};
    }

    const kasm::Image& img_;
    std::vector<std::uint64_t> use_, def_;
    std::vector<std::array<std::size_t, 2>> succ_;
    std::vector<std::uint64_t> live_;
};

// ---- per-fault tracking state ---------------------------------------------

struct FaultState {
    /// Pending XOR diff per location (sorted map: key construction and the
    /// at-rest classification both iterate deterministically).
    std::map<std::uint64_t, std::uint64_t> diff;
    /// Sticky, classification-visible deltas that no future state can undo:
    /// PROC_EXIT codes (overwrite semantics; zero entries erased),
    std::map<unsigned, unsigned> proc_xor;
    /// SHUTDOWN exit code (overwrite semantics),
    unsigned shutdown_xor = 0;
    /// and console output (append-only, so a single divergent byte latches).
    bool output_differs = false;
    bool active = false;
    bool resolved = false;
    std::uint64_t cand_stamp = 0; ///< per-step candidate dedup
    std::string key;              ///< class fingerprint (resolved only)
};

// ---- the walker -----------------------------------------------------------

class Walker final : public sim::StepObserver {
public:
    Walker(const Machine& m, const std::vector<Fault>& faults)
        : faults_(faults), fs_(faults.size()), liveness_(m.image()) {
        const isa::ProfileInfo info =
            isa::profile_info(m.core(0).regs.profile());
        wbits_ = info.width_bits;
        wmask_ = low_mask(wbits_);
        v7_ = info.pc_is_gpr;
        pc_slot_ = info.pc_index;
        sp_slot_ = info.sp_index;
        lr_slot_ = info.lr_index;
        has_fp_ = info.has_fp_regs;
        kern_size_ = m.mem().kern_size();
        user_size_ = m.mem().user_size();
        nprocs_ = m.config().procs;
        udata_ = m.image().udata_size;
        has_text_ = m.mem().has_text();
        text_base_ = m.mem().text_base();
        text_size_ = m.mem().text_size();
        order_.resize(faults.size());
        for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
        std::stable_sort(order_.begin(), order_.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return faults[a].at_retired < faults[b].at_retired;
                         });
    }

    bool all_resolved() const noexcept {
        return next_act_ == order_.size() && resolved_ == fs_.size();
    }

    void on_step(const Machine& m, unsigned ci, const DecodedInstr& di,
                 std::uint64_t pc, bool executed) override {
        ++seq_;
        activate_due(m);
        if (watchers_.empty() && text_watch_.empty()) return;

        // Fetch uses: a tainted PC changes which instruction runs; a fetch
        // through a tainted text-mirror record may execute a different
        // decode. Both diverge here — conservatively for text records (the
        // flipped bit might be decode-neutral, but proving that would need
        // the decoder; a few extra simulations are cheaper).
        if (auto it = watchers_.find(loc_gpr(ci, pc_slot_));
            it != watchers_.end()) {
            const std::vector<std::uint32_t> hit = it->second;
            for (std::uint32_t fi : hit) real_use(fi);
        }
        if (!text_watch_.empty() && m.image().contains_code(pc)) {
            if (auto it = text_watch_.find(m.image().instr_index(pc));
                it != text_watch_.end()) {
                const std::vector<std::uint32_t> hit = it->second;
                for (std::uint32_t fi : hit) real_use(fi);
            }
        }
        if (watchers_.empty()) return;

        collect(m, ci, di);
        for (std::uint32_t fi : cands_)
            if (!fs_[fi].resolved) transform(m, ci, di, pc, executed, fi);
    }

    void on_trap(const Machine& m, unsigned ci, TrapCause cause) override {
        ++seq_;
        activate_due(m);
        if (watchers_.empty()) return;
        // take_trap: EPC <- pc (pc+4 for SVC), SP <-> banked SP, pc <-
        // vec_entry, cause/badaddr <- clean values. An IRQ preemption can
        // carry a tainted PC (no fetch happened this step), which the trap
        // funnels into EPC; a prefetch abort on a tainted PC is a real use
        // instead — the faulty fetch may well succeed.
        cands_.clear();
        ++stamp_;
        add_loc(loc_gpr(ci, pc_slot_));
        add_loc(loc_gpr(ci, sp_slot_));
        add_loc(loc_usp(ci));
        add_loc(loc_epc(ci));
        for (std::uint32_t fi : cands_) {
            FaultState& f = fs_[fi];
            if (f.resolved) continue;
            const std::uint64_t dpc = get(f, loc_gpr(ci, pc_slot_));
            if (dpc != 0 && cause == TrapCause::PREFETCH_ABORT) {
                real_use(fi);
                continue;
            }
            set(fi, loc_epc(ci), dpc); // pc+4 (SVC) has the same XOR diff
            set(fi, loc_gpr(ci, pc_slot_), 0);
            const std::uint64_t dsp = get(f, loc_gpr(ci, sp_slot_));
            const std::uint64_t dusp = get(f, loc_usp(ci));
            set(fi, loc_gpr(ci, sp_slot_), dusp);
            set(fi, loc_usp(ci), dsp);
        }
    }

    PruneAnalysis finish(const Machine& m) {
        // Faults struck after the last callback rest at their initial flip.
        while (next_act_ < order_.size()) activate(order_[next_act_++]);
        PruneAnalysis out;
        out.plan.resize(fs_.size());
        std::unordered_map<std::string, std::uint32_t> reps;
        reps.reserve(fs_.size());
        for (std::uint32_t i = 0; i < fs_.size(); ++i) {
            FaultPlan& p = out.plan[i];
            FaultState& f = fs_[i];
            if (f.resolved) {
                const auto ins = reps.emplace(f.key, i);
                if (ins.second) {
                    p.action = FaultPlan::Action::Simulate;
                    ++out.n_simulate;
                } else {
                    p.action = FaultPlan::Action::Follow;
                    p.rep = ins.first->second;
                    ++out.n_follow;
                }
            } else {
                p.action = FaultPlan::Action::Infer;
                p.outcome = classify_at_rest(m, f);
                p.retired = m.total_retired();
                ++out.n_infer;
            }
        }
        return out;
    }

private:
    // ---- diff bookkeeping ----
    std::uint64_t get(const FaultState& f, std::uint64_t l) const {
        const auto it = f.diff.find(l);
        return it == f.diff.end() ? 0 : it->second;
    }

    void set(std::uint32_t fi, std::uint64_t l, std::uint64_t mask) {
        FaultState& f = fs_[fi];
        if (f.resolved) return;
#ifdef PRUNE_TRACE
        if (fi == PRUNE_TRACE)
            std::fprintf(stderr, "W seq=%llu set loc=%llx mask=%llx\n",
                         (unsigned long long)seq_, (unsigned long long)l,
                         (unsigned long long)mask);
#endif
        const auto it = f.diff.find(l);
        if (it == f.diff.end()) {
            if (mask == 0) return;
            f.diff.emplace(l, mask);
            watchers_[l].push_back(fi);
        } else if (mask == 0) {
            f.diff.erase(it);
            unwatch(l, fi);
        } else {
            it->second = mask;
        }
    }

    /// Is this diff component part of the class fingerprint, given the
    /// faulty path's static live set? Only integer registers and flags are
    /// ever projected; everything else is conservatively kept.
    bool loc_live(std::uint64_t l, std::uint64_t live) const {
        if (live == StaticLiveness::kAllLive) return true;
        const std::uint64_t kind = loc_kind(l);
        if (kind == kLGpr) {
            const unsigned slot = static_cast<unsigned>(l & 0xFF);
            if (slot >= 33 || slot == pc_slot_) return true;
            return ((live >> slot) & 1) != 0;
        }
        if (kind == kLFlags)
            return (live & StaticLiveness::kFlagsBit) != 0;
        return true;
    }

    void unwatch(std::uint64_t l, std::uint32_t fi) {
        const auto w = watchers_.find(l);
        if (w == watchers_.end()) return;
        std::vector<std::uint32_t>& v = w->second;
        v.erase(std::remove(v.begin(), v.end(), fi), v.end());
        if (v.empty()) watchers_.erase(w);
    }

    /// The corrupted state influenced execution: freeze the fault's diff
    /// signature. Faults resolving at the same instant with identical diffs
    /// and sticky deltas have bit-identical faulty machine states, hence
    /// bit-identical futures — one simulation covers the whole class.
    ///
    /// When the divergence is a conditional-branch decision flip, the faulty
    /// run's continuation pc is known statically; pass it as `faulty_pc` and
    /// diff components in registers that are provably dead-as-data from
    /// there onward are projected out of the fingerprint, merging faults
    /// that differ only in inert temporaries (see StaticLiveness).
    static constexpr std::uint64_t kNoPc = ~std::uint64_t{0};

    void real_use(std::uint32_t fi, std::uint64_t faulty_pc = kNoPc) {
        FaultState& f = fs_[fi];
        if (f.resolved) return;
#ifdef PRUNE_TRACE
        std::fprintf(stderr, "W f=%u seq=%llu REAL USE\n", fi,
                     (unsigned long long)seq_);
#endif
        std::uint64_t live = StaticLiveness::kAllLive;
        if (faulty_pc != kNoPc) {
            live = liveness_.live_at(faulty_pc);
            // A corrupted text-mirror record could decode into anything —
            // the static code no longer describes the faulty path.
            for (const auto& d : f.diff)
                if (loc_kind(d.first) == kLMem && has_text_ &&
                    loc_byte(d.first) >= text_base_ &&
                    loc_byte(d.first) < text_base_ + text_size_) {
                    live = StaticLiveness::kAllLive;
                    break;
                }
        }
        std::string key;
        key.reserve(24 + f.diff.size() * 20);
        append_hex(key, seq_);
        for (const auto& d : f.diff) {
            if (!loc_live(d.first, live)) continue;
            key += ';';
            append_hex(key, d.first);
            key += ':';
            append_hex(key, d.second);
        }
#ifdef PRUNE_TRACE
        if (faulty_pc != kNoPc)
            std::fprintf(stderr,
                         "W f=%u seq=%llu PROJ fpc=%llx live=%llx diff=%zu key=%s\n",
                         fi, (unsigned long long)seq_,
                         (unsigned long long)faulty_pc, (unsigned long long)live,
                         f.diff.size(), key.c_str());
#endif
        if (f.output_differs) key += "|o";
        if (f.shutdown_xor != 0) {
            key += "|s";
            append_hex(key, f.shutdown_xor);
        }
        for (const auto& px : f.proc_xor) {
            key += "|p";
            append_hex(key, px.first);
            key += ':';
            append_hex(key, px.second);
        }
        f.key = std::move(key);
        f.resolved = true;
        ++resolved_;
        for (const auto& d : f.diff) unwatch(d.first, fi);
        const FaultTarget& t = faults_[fi].target;
        if (t.kind == FaultTarget::Kind::MEM && has_text_ &&
            t.phys >= text_base_ && t.phys < text_base_ + text_size_) {
            const auto it =
                text_watch_.find((t.phys - text_base_) / isa::kTextRecordBytes);
            if (it != text_watch_.end()) {
                std::vector<std::uint32_t>& v = it->second;
                v.erase(std::remove(v.begin(), v.end(), fi), v.end());
                if (v.empty()) text_watch_.erase(it);
            }
        }
    }

    // ---- activation ----
    void activate_due(const Machine& m) {
        while (next_act_ < order_.size() &&
               faults_[order_[next_act_]].at_retired <= m.total_retired())
            activate(order_[next_act_++]);
    }

    void activate(std::uint32_t fi) {
        const FaultTarget& t = faults_[fi].target;
        fs_[fi].active = true;
        switch (t.kind) {
            case FaultTarget::Kind::GPR: {
                // flip_gpr_bit masks: flipping past the width is a no-op.
                const std::uint64_t mask = (std::uint64_t{1} << t.bit) & wmask_;
                if (mask != 0) set(fi, loc_gpr(t.core, t.reg), mask);
                break;
            }
            case FaultTarget::Kind::FP:
                set(fi, loc_fp(t.core, t.reg), std::uint64_t{1} << t.bit);
                break;
            case FaultTarget::Kind::MEM:
                set(fi, loc_mem(t.phys), std::uint64_t{1} << (t.bit % 8));
                if (has_text_ && t.phys >= text_base_ &&
                    t.phys < text_base_ + text_size_)
                    text_watch_[(t.phys - text_base_) / isa::kTextRecordBytes]
                        .push_back(fi);
                break;
            case FaultTarget::Kind::CacheTag:
            case FaultTarget::Kind::CacheData:
            case FaultTarget::Kind::Bus:
                // Unreachable: uncore jobs are declined before analysis
                // (orch::BatchRunner) — the def-use walk cannot model them.
                util::check(false, "prune: uncore fault kind in analyzer");
                break;
        }
    }

    // ---- per-step candidate collection ----
    void add_loc(std::uint64_t l) {
        const auto it = watchers_.find(l);
        if (it == watchers_.end()) return;
        for (std::uint32_t fi : it->second) {
            if (fs_[fi].cand_stamp == stamp_) continue;
            fs_[fi].cand_stamp = stamp_;
            cands_.push_back(fi);
        }
    }
    void add_reg(unsigned ci, unsigned r) {
        if (r < 33) add_loc(loc_gpr(ci, r));
    }
    void add_fp(unsigned ci, unsigned r) {
        if (r < 32) add_loc(loc_fp(ci, r));
    }
    void add_mem_range(const Machine& m, const sim::CoreState& k,
                       std::uint64_t vaddr, unsigned size) {
        const sim::Translation t =
            m.mem().translate(vaddr, size, k.mode == Mode::KERNEL, k.curproc);
        if (!t.ok()) return;
        for (unsigned i = 0; i < size; ++i) add_loc(loc_mem(t.phys + i));
    }

    std::uint64_t golden_addr_of(const sim::CoreState& k, const Instr& ins) const {
        const std::uint64_t off = ins.rm != isa::kNoReg
                                      ? (k.regs.x(ins.rm) << ins.shift)
                                      : static_cast<std::uint64_t>(ins.imm);
        return (k.regs.x(ins.rn) + off) & wmask_;
    }

    /// Conservative superset of the locations this step reads *or*
    /// overwrites. Over-collection is harmless — the transform of a fault
    /// whose diffs turn out irrelevant computes zero deltas and changes
    /// nothing — so candidates err on the broad side (flags always, every
    /// operand field even when the op ignores it).
    void collect(const Machine& m, unsigned ci, const DecodedInstr& di) {
        cands_.clear();
        ++stamp_;
        const Instr& ins = di.ins;
        const sim::CoreState& k = m.core(ci);
        add_reg(ci, ins.rd);
        add_reg(ci, ins.rn);
        add_reg(ci, ins.rm);
        add_reg(ci, ins.ra);
        add_loc(loc_flags(ci));
        switch (ins.op) {
            case Op::BL:
            case Op::BLR:
            case Op::RET:
                add_reg(ci, lr_slot_);
                break;
            case Op::SYSRD:
            case Op::SYSWR:
                add_loc(loc_epc(ci));
                add_loc(loc_usp(ci));
                add_loc(loc_tls(ci));
                break;
            case Op::ERET:
                add_loc(loc_epc(ci));
                add_loc(loc_usp(ci));
                add_reg(ci, sp_slot_);
                break;
            case Op::LDR:
            case Op::STR:
            case Op::LDRW:
            case Op::STRW:
            case Op::LDRB:
            case Op::STRB:
                add_mem_range(m, k, golden_addr_of(k, ins), di.mem_size);
                break;
            case Op::FLDR:
            case Op::FSTR:
                add_fp(ci, ins.rd);
                add_mem_range(m, k, golden_addr_of(k, ins), 8);
                break;
            case Op::LDP:
            case Op::STP: {
                const std::uint64_t a = golden_addr_of(k, ins);
                add_mem_range(m, k, a, 8);
                add_mem_range(m, k, a + 8, 8);
                break;
            }
            case Op::LDM:
            case Op::STM: {
                const std::uint64_t a = k.regs.x(ins.rn) & wmask_;
                unsigned n = 0;
                for (unsigned r = 0; r < 15; ++r) {
                    if (!(ins.regmask & (1u << r))) continue;
                    add_reg(ci, r); // STM source / LDM overwritten dest
                    add_mem_range(m, k, a + 4 * n, 4);
                    ++n;
                }
                break;
            }
            case Op::LDREX:
            case Op::STREX:
                add_mem_range(m, k, k.regs.x(ins.rn) & wmask_, di.mem_size);
                break;
            default:
                break;
        }
        if (has_fp_) {
            switch (ins.op) {
                case Op::FADD:
                case Op::FSUB:
                case Op::FMUL:
                case Op::FDIV:
                case Op::FSQRT:
                case Op::FNEG:
                case Op::FABS:
                case Op::FMADD:
                case Op::FMOV:
                case Op::FMOVI:
                case Op::FCMP:
                case Op::FCVTZS:
                case Op::SCVTF:
                case Op::FMOVVX:
                case Op::FMOVXV:
                    add_fp(ci, ins.rd);
                    add_fp(ci, ins.rn);
                    add_fp(ci, ins.rm);
                    add_fp(ci, ins.ra);
                    break;
                default:
                    break;
            }
        }
    }

    // ---- the exact diff transform ----
    // Golden pre-step state plus this fault's diff map IS the faulty
    // machine; every case below computes `golden_result ^ faulty_result`
    // with the same primitives the engine handlers use (sim/exec_ops.cpp —
    // any semantic change there must be mirrored here; prune_test's
    // inferred-vs-simulated identity check is the tripwire). Divergence
    // points — addresses, branch decisions, jump targets, behavioral sysreg
    // writes — end the walk via real_use() instead.
    void transform(const Machine& m, unsigned ci, const DecodedInstr& di,
                   std::uint64_t pc, bool executed, std::uint32_t fi) {
        FaultState& f = fs_[fi];
        const sim::CoreState& k = m.core(ci);
        const Instr& ins = di.ins;

        const auto gx = [&](unsigned r) { return k.regs.x(r); };
        const auto dx = [&](unsigned r) { return get(f, loc_gpr(ci, r)); };
        const auto fx = [&](unsigned r) { return gx(r) ^ dx(r); };
        const auto setx = [&](unsigned r, std::uint64_t dmask) {
            dmask &= wmask_;
            if (v7_ && r == 15) {
                // write_gpr to R15 is a jump; a differing value is a
                // divergent target, an equal one leaves PC clean.
                if (dmask != 0) real_use(fi);
                return;
            }
            set(fi, loc_gpr(ci, r), dmask);
        };

        const Flags gflags = k.regs.flags();
        const std::uint64_t dflags = get(f, loc_flags(ci)) & 0xF;
        const Flags fflags = Flags::unpack(gflags.pack() ^ dflags);
        const auto set_flags_diff = [&](std::uint64_t nibble) {
            set(fi, loc_flags(ci), nibble & 0xF);
        };

        // V7 predicate: a shared skip leaves all state untouched. A decision
        // flip on a pure integer data op is still a pure data event — the pc
        // stream and tick cost are identical whether the op executes or
        // retires as a bubble, so only the destination/flags differ and the
        // executing side's result is exactly computable. A flip on anything
        // else (memory, control transfer, system) diverges.
        if (di.check_cond) {
            const bool fexec = isa::cond_holds(ins.cond, fflags);
            if (fexec != executed) {
                DataEffect e;
                const bool pure = executed
                                      ? eval_int_data(ins, wbits_, gx, gflags, e)
                                      : eval_int_data(ins, wbits_, fx, fflags, e);
                if (!pure) {
                    real_use(fi);
                    return;
                }
                // V7 write to R15 is a jump: one side takes it, the other
                // falls through — control divergence unless the target IS
                // the fall-through address.
                if (v7_ && ((e.wr_rd && ins.rd == 15) || (e.wr_ra && ins.ra == 15))) {
                    const std::uint64_t tgt = e.wr_ra && ins.ra == 15 ? e.ra : e.rd;
                    if (((tgt ^ (gx(15) + 4)) & wmask_) != 0) {
                        real_use(fi);
                        return;
                    }
                    if (ins.rd == 15) e.wr_rd = false;
                    if (ins.ra == 15) e.wr_ra = false;
                }
                // diff_post = golden_post ^ faulty_post; the skipping side
                // keeps its pre-step value. Capture pre-diffs before any set.
                const std::uint64_t nd_rd =
                    e.wr_rd ? e.rd ^ gx(ins.rd) ^ (executed ? dx(ins.rd) : 0) : 0;
                const std::uint64_t nd_ra =
                    e.wr_ra ? e.ra ^ gx(ins.ra) ^ (executed ? dx(ins.ra) : 0) : 0;
                if (e.wr_rd) setx(ins.rd, nd_rd);
                if (e.wr_ra) setx(ins.ra, nd_ra);
                if (e.wr_flags)
                    set_flags_diff(executed ? e.flags ^ gflags.pack() ^ dflags
                                            : gflags.pack() ^ e.flags);
                return;
            }
            if (!executed) return;
        }

        // Both runs execute: integer data ops evaluate once per side.
        {
            DataEffect eg;
            if (eval_int_data(ins, wbits_, gx, gflags, eg)) {
                DataEffect ef;
                eval_int_data(ins, wbits_, fx, fflags, ef);
                if (eg.wr_rd) setx(ins.rd, eg.rd ^ ef.rd);
                if (eg.wr_ra) setx(ins.ra, eg.ra ^ ef.ra);
                if (eg.wr_flags) set_flags_diff(eg.flags ^ ef.flags);
                return;
            }
        }

        const auto gvb = [&](unsigned r) { return k.regs.v_bits(r); };
        const auto dvb = [&](unsigned r) { return get(f, loc_fp(ci, r)); };
        const auto fvb = [&](unsigned r) { return gvb(r) ^ dvb(r); };
        const auto gvd = [&](unsigned r) { return util::bits_f64(gvb(r)); };
        const auto fvd = [&](unsigned r) { return util::bits_f64(fvb(r)); };
        const auto setv = [&](unsigned r, std::uint64_t dmask) {
            set(fi, loc_fp(ci, r), dmask);
        };
        const auto fp2 = [&](double g, double fv) {
            setv(ins.rd, util::f64_bits(g) ^ util::f64_bits(fv));
        };

        const auto xlate = [&](std::uint64_t vaddr, unsigned size,
                               std::uint64_t& phys) {
            const sim::Translation t = m.mem().translate(
                vaddr, size, k.mode == Mode::KERNEL, k.curproc);
            phys = t.phys;
            return t.ok();
        };
        const auto mem_diff = [&](std::uint64_t phys, unsigned size) {
            std::uint64_t d = 0;
            for (unsigned i = 0; i < size; ++i)
                d |= get(f, loc_mem(phys + i)) << (8 * i);
            return d;
        };
        const auto store_diff = [&](std::uint64_t phys, unsigned size,
                                    std::uint64_t d) {
            for (unsigned i = 0; i < size; ++i)
                set(fi, loc_mem(phys + i), (d >> (8 * i)) & 0xFF);
        };
        // addr_of both ways, exactly: base and offset taints may cancel.
        std::uint64_t ag = 0, af = 0;
        const auto addr_diverges = [&]() {
            const std::uint64_t offg = ins.rm != isa::kNoReg
                                           ? (gx(ins.rm) << ins.shift)
                                           : static_cast<std::uint64_t>(ins.imm);
            const std::uint64_t offf = ins.rm != isa::kNoReg
                                           ? (fx(ins.rm) << ins.shift)
                                           : static_cast<std::uint64_t>(ins.imm);
            ag = (gx(ins.rn) + offg) & wmask_;
            af = (fx(ins.rn) + offf) & wmask_;
            if (ag != af) {
                real_use(fi);
                return true;
            }
            return false;
        };

        switch (ins.op) {
            // ---- branches ----
            case Op::B: break; // immediate target, clean either way
            case Op::BCOND: {
                const bool gdec = isa::cond_holds(ins.cond, gflags);
                if (gdec != isa::cond_holds(ins.cond, fflags))
                    real_use(fi, gdec ? pc + isa::kInstrBytes
                                      : static_cast<std::uint64_t>(ins.imm));
                break;
            }
            case Op::BL:
                set(fi, loc_gpr(ci, lr_slot_), 0); // pc+4 is clean
                break;
            case Op::BLR:
                if (dx(ins.rn) != 0) {
                    real_use(fi);
                    break;
                }
                set(fi, loc_gpr(ci, lr_slot_), 0);
                break;
            case Op::BR:
                if (dx(ins.rn) != 0) real_use(fi);
                break;
            case Op::RET:
                if (get(f, loc_gpr(ci, lr_slot_)) != 0) real_use(fi);
                break;
            case Op::CBZ:
            case Op::CBNZ: {
                const bool fzero = fx(ins.rn) == 0;
                if ((gx(ins.rn) == 0) != fzero) {
                    const bool ftaken = fzero == (ins.op == Op::CBZ);
                    real_use(fi, ftaken ? static_cast<std::uint64_t>(ins.imm)
                                        : pc + isa::kInstrBytes);
                }
                break;
            }

            // ---- memory ----
            case Op::LDR:
            case Op::LDRW:
            case Op::LDRB: {
                if (addr_diverges()) break;
                std::uint64_t phys;
                if (!xlate(ag, di.mem_size, phys)) break; // aborts in both runs
                setx(ins.rd, mem_diff(phys, di.mem_size));
                break;
            }
            case Op::STR: {
                if (addr_diverges()) break;
                std::uint64_t phys;
                if (!xlate(ag, di.mem_size, phys)) break;
                store_diff(phys, di.mem_size, dx(ins.rd));
                break;
            }
            case Op::STRW: {
                if (addr_diverges()) break;
                std::uint64_t phys;
                if (!xlate(ag, 4, phys)) break;
                store_diff(phys, 4, dx(ins.rd) & 0xFFFFFFFFu);
                break;
            }
            case Op::STRB: {
                if (addr_diverges()) break;
                std::uint64_t phys;
                if (!xlate(ag, 1, phys)) break;
                store_diff(phys, 1, dx(ins.rd) & 0xFF);
                break;
            }
            case Op::LDM: {
                if (dx(ins.rn) != 0) { // a = x(rn) & mask: any taint diverges
                    real_use(fi);
                    break;
                }
                const std::uint64_t a = gx(ins.rn) & wmask_;
                std::uint64_t rn_g = gx(ins.rn), rn_d = 0;
                unsigned n = 0;
                bool aborted = false;
                for (unsigned r = 0; r < 15; ++r) {
                    if (!(ins.regmask & (1u << r))) continue;
                    std::uint64_t phys;
                    if (!xlate(a + 4 * n, 4, phys)) {
                        aborted = true;
                        break;
                    }
                    const std::uint64_t vd = mem_diff(phys, 4);
                    setx(r, vd);
                    if (r == ins.rn) { // writeback reads the loaded value
                        rn_g = m.mem().load(phys, 4);
                        rn_d = vd;
                    }
                    ++n;
                }
                if (!aborted && ins.wb)
                    setx(ins.rn, ((rn_g + 4 * n) & wmask_) ^
                                     (((rn_g ^ rn_d) + 4 * n) & wmask_));
                break;
            }
            case Op::STM: {
                if (dx(ins.rn) != 0) {
                    real_use(fi);
                    break;
                }
                const std::uint64_t a = gx(ins.rn) & wmask_;
                unsigned n = 0;
                bool aborted = false;
                for (unsigned r = 0; r < 15; ++r) {
                    if (!(ins.regmask & (1u << r))) continue;
                    std::uint64_t phys;
                    if (!xlate(a + 4 * n, 4, phys)) {
                        aborted = true;
                        break;
                    }
                    store_diff(phys, 4, dx(r) & 0xFFFFFFFFu);
                    ++n;
                }
                if (!aborted && ins.wb) setx(ins.rn, 0); // rn is clean here
                break;
            }
            case Op::LDP: {
                if (addr_diverges()) break;
                std::uint64_t p1, p2;
                if (!xlate(ag, 8, p1) || !xlate(ag + 8, 8, p2)) break;
                const std::uint64_t d1 = mem_diff(p1, 8);
                const std::uint64_t d2 = mem_diff(p2, 8);
                setx(ins.rd, d1);
                setx(ins.ra, d2);
                break;
            }
            case Op::STP: {
                if (addr_diverges()) break;
                std::uint64_t p1, p2;
                if (!xlate(ag, 8, p1)) break;
                store_diff(p1, 8, dx(ins.rd)); // first store commits even if
                if (!xlate(ag + 8, 8, p2)) break; // the second one faults
                store_diff(p2, 8, dx(ins.ra));
                break;
            }
            case Op::LDREX: {
                if (dx(ins.rn) != 0) {
                    real_use(fi);
                    break;
                }
                std::uint64_t phys;
                if (!xlate(gx(ins.rn) & wmask_, di.mem_size, phys)) break;
                setx(ins.rd, mem_diff(phys, di.mem_size));
                break;
            }
            case Op::STREX: {
                if (dx(ins.rn) != 0) {
                    real_use(fi);
                    break;
                }
                std::uint64_t phys;
                if (!xlate(gx(ins.rn) & wmask_, di.mem_size, phys)) break;
                // identical reservation state in both runs: same branch
                if (k.excl_valid && k.excl_addr == phys)
                    store_diff(phys, di.mem_size, dx(ins.rm));
                setx(ins.rd, 0); // 0/1 success flag, identical
                break;
            }

            // ---- floating point ----
            case Op::FADD: fp2(gvd(ins.rn) + gvd(ins.rm), fvd(ins.rn) + fvd(ins.rm)); break;
            case Op::FSUB: fp2(gvd(ins.rn) - gvd(ins.rm), fvd(ins.rn) - fvd(ins.rm)); break;
            case Op::FMUL: fp2(gvd(ins.rn) * gvd(ins.rm), fvd(ins.rn) * fvd(ins.rm)); break;
            case Op::FDIV: fp2(gvd(ins.rn) / gvd(ins.rm), fvd(ins.rn) / fvd(ins.rm)); break;
            case Op::FSQRT: fp2(std::sqrt(gvd(ins.rn)), std::sqrt(fvd(ins.rn))); break;
            case Op::FNEG: fp2(-gvd(ins.rn), -fvd(ins.rn)); break;
            case Op::FABS: fp2(std::fabs(gvd(ins.rn)), std::fabs(fvd(ins.rn))); break;
            case Op::FMADD:
                fp2(std::fma(gvd(ins.rn), gvd(ins.rm), gvd(ins.ra)),
                    std::fma(fvd(ins.rn), fvd(ins.rm), fvd(ins.ra)));
                break;
            case Op::FMOV: setv(ins.rd, dvb(ins.rn)); break; // raw bit copy
            case Op::FMOVI: setv(ins.rd, 0); break;
            case Op::FCMP:
                set_flags_diff(fcmp_flags(gvd(ins.rn), gvd(ins.rm)).pack() ^
                               fcmp_flags(fvd(ins.rn), fvd(ins.rm)).pack());
                break;
            case Op::FCVTZS:
                setx(ins.rd,
                     static_cast<std::uint64_t>(fcvtzs_result(gvd(ins.rn))) ^
                         static_cast<std::uint64_t>(fcvtzs_result(fvd(ins.rn))));
                break;
            case Op::SCVTF:
                fp2(static_cast<double>(static_cast<std::int64_t>(gx(ins.rn))),
                    static_cast<double>(static_cast<std::int64_t>(fx(ins.rn))));
                break;
            case Op::FMOVVX: setx(ins.rd, dvb(ins.rn)); break;
            case Op::FMOVXV: setv(ins.rd, dx(ins.rn)); break;
            case Op::FLDR: {
                if (addr_diverges()) break;
                std::uint64_t phys;
                if (!xlate(ag, 8, phys)) break;
                setv(ins.rd, mem_diff(phys, 8));
                break;
            }
            case Op::FSTR: {
                if (addr_diverges()) break;
                std::uint64_t phys;
                if (!xlate(ag, 8, phys)) break;
                store_diff(phys, 8, dvb(ins.rd));
                break;
            }

            // ---- system ----
            case Op::SVC:
                break; // pure control; the trap transform runs via on_trap
            case Op::SYSRD: {
                // Mirror sysreg_read's permission matrix: a privileged read
                // from user mode takes UNDEF in both runs and writes nothing.
                const bool kernel = k.mode == Mode::KERNEL;
                switch (static_cast<SysReg>(ins.imm)) {
                    case SysReg::CORE_ID:
                    case SysReg::INSTRET:
                    case SysReg::NCORES: setx(ins.rd, 0); break;
                    case SysReg::TLS: setx(ins.rd, get(f, loc_tls(ci))); break;
                    case SysReg::TIMER:
                    case SysReg::CAUSE:
                    case SysReg::BADADDR:
                    case SysReg::CURPROC:
                        if (kernel) setx(ins.rd, 0);
                        break;
                    case SysReg::EPC:
                        if (kernel) setx(ins.rd, get(f, loc_epc(ci)));
                        break;
                    case SysReg::USP:
                        if (kernel) setx(ins.rd, get(f, loc_usp(ci)));
                        break;
                    case SysReg::FLAGS:
                        if (kernel) setx(ins.rd, dflags);
                        break;
                    default: break; // UNDEF in both runs
                }
                break;
            }
            case Op::SYSWR: {
                if (k.mode != Mode::KERNEL) break; // UNDEF in both runs
                const std::uint64_t dv = dx(ins.rn);
                const std::uint64_t vg = gx(ins.rn);
                switch (static_cast<SysReg>(ins.imm)) {
                    // Writes that change timing, scheduling, address
                    // translation or the address space: a tainted value is
                    // behavioral divergence.
                    case SysReg::TIMER:
                    case SysReg::IPI_SEND:
                    case SysReg::MAP_BRK:
                    case SysReg::CURPROC:
                        if (dv != 0) real_use(fi);
                        break;
                    case SysReg::EPC: set(fi, loc_epc(ci), dv); break;
                    case SysReg::USP: set(fi, loc_usp(ci), dv); break;
                    case SysReg::TLS: set(fi, loc_tls(ci), dv); break;
                    case SysReg::FLAGS: set_flags_diff(dv & 0xF); break;
                    case SysReg::CONSOLE:
                        // append-only device; classification only ever asks
                        // *whether* output differs, so one byte latches
                        if ((dv & 0xFF) != 0) f.output_differs = true;
                        break;
                    case SysReg::SHUTDOWN:
                        f.shutdown_xor = static_cast<unsigned>(dv & 0xFF);
                        break;
                    case SysReg::PROC_EXIT: {
                        if ((dv >> 8) != 0) { // a *different* process exits
                            real_use(fi);
                            break;
                        }
                        const std::uint64_t proc = vg >> 8;
                        if (proc >= nprocs_) break; // UNDEF in both runs
                        const unsigned x = static_cast<unsigned>(dv & 0xFF);
                        if (x == 0)
                            f.proc_xor.erase(static_cast<unsigned>(proc));
                        else
                            f.proc_xor[static_cast<unsigned>(proc)] = x;
                        break;
                    }
                    default: break; // UNDEF in both runs
                }
                break;
            }
            case Op::ERET: {
                if (k.mode != Mode::KERNEL) break; // UNDEF in both runs
                // SP and the banked user SP swap; the diffs ride along.
                const std::uint64_t dsp = get(f, loc_gpr(ci, sp_slot_));
                const std::uint64_t dusp = get(f, loc_usp(ci));
                set(fi, loc_gpr(ci, sp_slot_), dusp);
                set(fi, loc_usp(ci), dsp);
                if (get(f, loc_epc(ci)) != 0) real_use(fi); // jump target
                break;
            }
            case Op::WFI:
            case Op::HLT:
            case Op::NOP:
            case Op::UDF:
                break; // control / trap only; no tainted data can flow
            default:
                break; // integer data ops: handled exactly by eval_int_data
        }
    }

    // ---- end-of-run classification ----
    /// core::classify() transcribed onto a sparse diff: the faulty run had
    /// bit-identical control flow, so status, retire count and everything
    /// not under a diff equal the golden run's.
    Outcome classify_at_rest(const Machine& m, const FaultState& f) const {
        // abnormal termination (per-proc exit codes are faulty = golden ^ x)
        for (unsigned p = 0; p < nprocs_; ++p) {
            const auto it = f.proc_xor.find(p);
            const int x = it == f.proc_xor.end() ? 0 : static_cast<int>(it->second);
            if ((m.proc_exit_code(p) ^ x) != 0) return Outcome::UT;
        }
        if (f.shutdown_xor != 0) return Outcome::UT;
        // silent data corruption: console output or static data regions
        if (f.output_differs) return Outcome::OMM;
        const std::uint64_t user_bytes = std::uint64_t{nprocs_} * user_size_;
        for (const auto& d : f.diff) {
            if (loc_kind(d.first) != kLMem) continue;
            const std::uint64_t phys = loc_byte(d.first);
            if (phys < kern_size_ || phys >= kern_size_ + user_bytes) continue;
            if ((phys - kern_size_) % user_size_ < udata_) return Outcome::OMM;
        }
        // architectural traces: register files or the kernel region
        for (const auto& d : f.diff) {
            const std::uint64_t kind = loc_kind(d.first);
            if (kind == kLGpr || kind == kLFlags) return Outcome::ONA;
            if (kind == kLFp && has_fp_) return Outcome::ONA;
            if (kind == kLMem && loc_byte(d.first) < kern_size_)
                return Outcome::ONA;
        }
        // survivors: EPC/USP/TLS, unhashed user bytes, the text mirror
        return Outcome::Vanished;
    }

    const std::vector<Fault>& faults_;
    std::vector<FaultState> fs_;
    std::vector<std::uint32_t> order_; ///< fault indices by at_retired
    std::size_t next_act_ = 0;
    std::size_t resolved_ = 0;
    std::uint64_t seq_ = 0;   ///< callback counter — identifies the instant
    std::uint64_t stamp_ = 0; ///< candidate-dedup generation
    std::vector<std::uint32_t> cands_;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> watchers_;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> text_watch_;
    StaticLiveness liveness_;

    unsigned wbits_ = 0;
    std::uint64_t wmask_ = 0;
    bool v7_ = false;
    unsigned pc_slot_ = 0, sp_slot_ = 0, lr_slot_ = 0;
    bool has_fp_ = false;
    std::uint64_t kern_size_ = 0, user_size_ = 0, udata_ = 0;
    unsigned nprocs_ = 0;
    bool has_text_ = false;
    std::uint64_t text_base_ = 0, text_size_ = 0;
};

} // namespace

std::uint64_t static_live_mask(const kasm::Image& img, std::uint64_t pc) {
    return StaticLiveness(img).live_at(pc);
}

std::uint64_t static_live_flags_bit() noexcept {
    return StaticLiveness::kFlagsBit;
}

PruneAnalysis analyze(const npb::Scenario& s, sim::Engine engine,
                      const std::vector<core::Fault>& faults) {
    telemetry::Span span("prune.replay:" + s.name());
    Machine m = npb::make_machine(s, false);
    m.set_engine(engine);
    Walker w(m, faults);
    m.set_step_observer(&w);
    // Chunked so the walk can stop as soon as every fault is resolved.
    while (m.status() == sim::RunStatus::Running && !w.all_resolved())
        m.run_until(m.total_retired() + (std::uint64_t{1} << 22));
    m.set_step_observer(nullptr);
    util::check(w.all_resolved() || m.status() == sim::RunStatus::Shutdown,
                "prune: golden replay did not terminate cleanly for " + s.name());
    if (telemetry::enabled()) {
        static const telemetry::MetricId kSteps =
            telemetry::counter_id("engine.steps");
        telemetry::count(kSteps, m.total_retired());
    }
    return w.finish(m);
}

} // namespace serep::prune
