#include "stats/sizing.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "npb/npb.hpp"
#include "stats/ci.hpp"
#include "util/check.hpp"

namespace serep::stats {

namespace {

/// Widest Wilson half-width across the five outcome rates at sample size n.
double max_rate_half_width(
    const std::array<std::uint64_t, core::kOutcomeCount>& counts,
    std::uint64_t n, double confidence) {
    double worst = 0;
    for (std::uint64_t k : counts)
        worst = std::max(worst, wilson(k, n, confidence).half_width());
    return worst;
}

struct JobProgress {
    std::vector<core::Fault> full;    ///< the fixed campaign's fault list
    std::vector<std::uint32_t> order; ///< content-id draw order
    std::uint32_t drawn = 0;          ///< prefix length injected so far
    std::vector<std::pair<std::uint32_t, core::FaultRecord>> records;
    std::array<std::uint64_t, core::kOutcomeCount> counts{};
    AdaptiveJobResult out;
    bool active = true;
};

} // namespace

std::vector<std::uint32_t> content_id_order(
    const std::vector<core::Fault>& faults) {
    std::vector<std::uint32_t> order(faults.size());
    for (std::uint32_t i = 0; i < faults.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const std::uint64_t ia = orch::fault_id(faults[a]);
                  const std::uint64_t ib = orch::fault_id(faults[b]);
                  return ia != ib ? ia < ib : a < b;
              });
    return order;
}

namespace {

/// One bounded chunk of jobs run to convergence on its own runner. The
/// runner keeps its ladders alive across rounds (retain_ladders), so the
/// chunk size caps how many ladders can be resident at once — the caller
/// slices big campaigns so adaptive memory stays bounded like a fixed
/// batch's waves.
std::vector<AdaptiveJobResult> run_adaptive_chunk(
    const std::vector<orch::ShardJobSpec>& jobs, orch::BatchOptions opts,
    const StatsOptions& stats) {
    opts.retain_ladders = true; // rounds re-queue the same scenarios
    orch::BatchRunner runner(opts);

    // Opening pass: golden runs only (reject-all filters). This seeds the
    // golden cache and the ladders, and yields each job's golden reference —
    // everything needed to regenerate the deterministic full fault list.
    for (const orch::ShardJobSpec& j : jobs)
        runner.add(j.scenario, j.cfg,
                   [](std::uint32_t, const core::Fault&) { return false; });
    const std::vector<core::CampaignResult> goldens = runner.run_all();

    std::vector<JobProgress> prog(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        JobProgress& p = prog[j];
        const sim::Machine base = npb::make_machine(jobs[j].scenario, false);
        p.full = core::make_fault_list(base, goldens[j].golden, jobs[j].cfg);
        p.order = content_id_order(p.full);
        p.out.fault_space = static_cast<std::uint32_t>(p.full.size());
        p.out.result.scenario = jobs[j].scenario;
        p.out.result.golden = goldens[j].golden;
    }

    // The opening draw is sized so the stopping rule has a chance to fire:
    // below min_trials_for_half_width() even an all-masked sample cannot
    // meet the target, so smaller first rounds would always need a second.
    const std::uint32_t first_draw =
        static_cast<std::uint32_t>(std::max<std::uint64_t>(
            {stats.batch_faults, stats.min_faults,
             min_trials_for_half_width(stats.target_half_width,
                                       stats.confidence)}));

    bool any_active = true;
    while (any_active) {
        // Queue one prefix-extension batch per still-active job.
        std::vector<std::pair<std::size_t, std::size_t>> queued; // (job, runner idx)
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            JobProgress& p = prog[j];
            if (!p.active) continue;
            const std::uint32_t want =
                p.drawn == 0 ? first_draw : stats.batch_faults;
            const std::uint32_t hi =
                static_cast<std::uint32_t>(std::min<std::size_t>(
                    p.full.size(), static_cast<std::size_t>(p.drawn) + want));
            auto batch = std::make_shared<std::unordered_set<std::uint32_t>>();
            for (std::uint32_t i = p.drawn; i < hi; ++i)
                batch->insert(p.order[i]);
            const std::size_t idx =
                runner.add(jobs[j].scenario, jobs[j].cfg,
                           [batch](std::uint32_t ord, const core::Fault&) {
                               return batch->count(ord) != 0;
                           });
            p.drawn = hi;
            queued.emplace_back(j, idx);
        }
        const std::vector<core::CampaignResult> round = runner.run_all();
        util::check(round.size() == queued.size(),
                    "adaptive campaign: round result count mismatch");

        any_active = false;
        for (std::size_t r = 0; r < queued.size(); ++r) {
            JobProgress& p = prog[queued[r].first];
            const core::CampaignResult& res = round[r];
            const std::vector<std::uint32_t>& ords =
                runner.job_ordinals(queued[r].second);
            util::check(ords.size() == res.records.size(),
                        "adaptive campaign: ordinal/record count mismatch");
            for (std::size_t i = 0; i < res.records.size(); ++i) {
                p.records.emplace_back(ords[i], res.records[i]);
                p.counts[static_cast<unsigned>(res.records[i].outcome)]++;
            }
            p.out.rounds += 1;
            p.out.max_half_width =
                max_rate_half_width(p.counts, p.drawn, stats.confidence);
            const bool met = p.drawn >= stats.min_faults &&
                             p.out.max_half_width <= stats.target_half_width;
            const bool exhausted = p.drawn == p.full.size();
            if (met || exhausted) {
                p.active = false;
                p.out.converged = met;
            }
            any_active = any_active || p.active;
        }
    }

    // Assemble each job's result in ascending full-list ordinal order — the
    // same relative order the fixed-count campaign stores these records in,
    // so the prefix-identity gate can compare rows positionally.
    std::vector<AdaptiveJobResult> out;
    out.reserve(jobs.size());
    for (JobProgress& p : prog) {
        std::sort(p.records.begin(), p.records.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        p.out.ordinals.reserve(p.records.size());
        p.out.result.records.reserve(p.records.size());
        for (auto& [ord, rec] : p.records) {
            p.out.ordinals.push_back(ord);
            p.out.result.records.push_back(rec);
        }
        p.out.result.recount();
        out.push_back(std::move(p.out));
    }
    return out;
}

} // namespace

std::vector<AdaptiveJobResult> run_adaptive_campaign(
    const std::vector<orch::ShardJobSpec>& jobs, orch::BatchOptions opts,
    const StatsOptions& stats) {
    util::check_usage(!jobs.empty(), "adaptive campaign: empty job list");
    util::check_usage(stats.target_half_width > 0 &&
                          stats.target_half_width < 0.5,
                      "adaptive campaign: target half-width must be in (0, 0.5)");
    util::check_usage(stats.confidence > 0 && stats.confidence < 1,
                      "adaptive campaign: confidence must be in (0, 1)");
    util::check_usage(stats.batch_faults > 0,
                      "adaptive campaign: batch size must be positive");
    util::check(!opts.fault_filter,
                "adaptive campaign: opts.fault_filter is owned by the sizer");

    // Retained ladders cost one scenario's snapshots each for the chunk's
    // whole multi-round lifetime; slice the campaign so at most as many are
    // resident as a fixed batch's wave would build. A 130-scenario
    // `--target-ci` campaign therefore peaks at wave memory, not campaign
    // memory.
    std::vector<AdaptiveJobResult> out;
    out.reserve(jobs.size());
    for (std::size_t begin = 0; begin < jobs.size();
         begin += orch::kMaxLaddersInFlight) {
        const std::size_t end =
            std::min(jobs.size(), begin + orch::kMaxLaddersInFlight);
        const std::vector<orch::ShardJobSpec> chunk(jobs.begin() + begin,
                                                    jobs.begin() + end);
        std::vector<AdaptiveJobResult> part =
            run_adaptive_chunk(chunk, opts, stats);
        for (AdaptiveJobResult& r : part) out.push_back(std::move(r));
    }
    return out;
}

} // namespace serep::stats
