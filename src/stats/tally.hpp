// Outcome aggregation across campaign databases (layer 1 of src/stats/).
//
// The repo produces outcome data in three shapes — in-process
// core::CampaignResult objects, BatchRunner's merged per-fault CSV, and the
// PR-2 shard/campaign JSONL databases — and the paper's analysis needs all
// of them folded into one set of counters keyed by configuration. An
// OutcomeTally is that fold: counts per (ISA profile, application,
// programming model, core count, fault kind) x outcome class, plus a
// per-register breakdown for the AVF-style vulnerability table.
//
// Ingestion is order-independent (keys live in ordered maps; counters only
// add), so a report rendered from N unmerged shard databases is
// byte-identical to one rendered from the merged database — asserted in
// tests/stats_test.cpp and by the stats-report-golden CI job. Shard
// databases are cross-validated with the PR-2 config-hash machinery: DBs
// from different campaigns, or the same shard twice, throw
// util::ValidationError instead of silently blending.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/campaign.hpp"

namespace serep::stats {

/// One configuration cell of the paper's tables. All fields are the string
/// spellings the databases use (Scenario::name() fragments), so a tally can
/// be built from any database without reconstructing npb enums.
struct GroupKey {
    std::string isa;    ///< "ARMv7" / "ARMv8"
    std::string app;    ///< "EP", "CG", ...
    std::string api;    ///< "SER" / "OMP" / "MPI"
    unsigned cores = 0;
    std::string kind;   ///< fault-target space: "gpr" / "fp" / "mem"

    std::string scenario() const; ///< "ARMv7-EP-SER-1" spelling
    bool operator<(const GroupKey& o) const noexcept;
    bool operator==(const GroupKey& o) const noexcept;
};

/// Per-group outcome counters.
struct GroupCounts {
    std::array<std::uint64_t, core::kOutcomeCount> counts{};

    std::uint64_t total() const noexcept;
    std::uint64_t of(core::Outcome o) const noexcept {
        return counts[static_cast<unsigned>(o)];
    }
    /// Masked injections: no user-visible error (Vanished + ONA).
    std::uint64_t masked() const noexcept;
    /// AVF-style failures: user-visible misbehaviour (OMM + UT + Hang).
    std::uint64_t failed() const noexcept;
};

/// Per-register vulnerability cell (GPR/FP strikes only; memory strikes have
/// no architectural register target).
struct RegKey {
    std::string isa;
    std::string kind; ///< "gpr" / "fp"
    unsigned reg = 0;
    bool operator<(const RegKey& o) const noexcept;
};

/// Per-structure vulnerability cell for the uncore fault spaces: where in
/// the uncore the strike landed ("L1D" / "L2" for the cache kinds, "bus"
/// for bus faults) — the per-cache-level AVF breakdown of the report.
struct UncoreKey {
    std::string isa;
    std::string kind;  ///< "cache-tag" / "cache-data" / "bus"
    std::string where; ///< "L1D" / "L2" / "bus"
    bool operator<(const UncoreKey& o) const noexcept;
};

class OutcomeTally {
public:
    /// Fold one in-process campaign result (records carry kind + outcome).
    void add_result(const core::CampaignResult& r);

    /// Fold one database by content sniffing: a serep shard DB (JSONL with a
    /// manifest line), a campaign JSONL stream (core::campaign_json lines),
    /// or a merged per-fault CSV (campaign_csv header). `label` names the
    /// input in error messages (usually the file name). Throws
    /// util::ValidationError on malformed input or shard DBs that do not
    /// belong to the same campaign as previously ingested ones.
    void add_database(const std::string& contents, const std::string& label);

    /// Direct single-record fold (used by every ingestion path; exposed so
    /// drivers with custom record sources can reuse the tally).
    /// `inferred` marks a pruning-derived outcome (FaultRecord::inferred).
    void add_record(const GroupKey& key, core::Outcome outcome, bool has_reg,
                    unsigned reg, bool inferred = false);

    /// When false, pruning-derived records (the "inferred" provenance flag)
    /// are counted by inferred_records() but excluded from every group and
    /// register counter — `serep report --no-inferred`. Set before
    /// ingesting; default true (inferred outcomes are exact and gated in
    /// CI, so reports include them unless explicitly asked not to).
    void set_include_inferred(bool include) noexcept {
        include_inferred_ = include;
    }
    /// Records with inferred provenance seen during ingestion (counted
    /// whether or not they were included).
    std::uint64_t inferred_records() const noexcept {
        return inferred_records_;
    }

    const std::map<GroupKey, GroupCounts>& groups() const noexcept {
        return groups_;
    }
    const std::map<RegKey, GroupCounts>& registers() const noexcept {
        return registers_;
    }
    /// Per-uncore-structure counters; empty unless uncore-kind records were
    /// ingested (reports gate their uncore section on that).
    const std::map<UncoreKey, GroupCounts>& uncore() const noexcept {
        return uncore_;
    }

    std::uint64_t total_records() const noexcept { return total_records_; }
    std::size_t databases() const noexcept { return databases_; }
    bool empty() const noexcept { return groups_.empty(); }

    /// Shard-cover bookkeeping: how many shard DBs were folded and how many
    /// the campaign was cut into (0 when no shard DB was ingested). A tally
    /// over an incomplete cover reports a *sample* of the campaign, not the
    /// campaign — `serep report` refuses it unless --partial is given.
    std::size_t shards_seen() const noexcept { return shard_seen_.size(); }
    unsigned shard_count() const noexcept { return shard_count_; }
    bool shard_cover_complete() const noexcept {
        return shard_seen_.size() == shard_count_;
    }

private:
    void add_shard_db(const std::string& contents, const std::string& label);
    void add_campaign_jsonl(const std::string& contents, const std::string& label);
    void add_csv(const std::string& contents, const std::string& label);
    /// add_record with provenance: a group fed by both a shard DB and a
    /// merged/plain database is almost certainly the same campaign counted
    /// twice (the merged DB *contains* the shards' records), which would
    /// silently double n and shrink every CI — refused instead.
    enum class Source : std::uint8_t { Plain = 1, Shard = 2 };
    void add_record_from(const GroupKey& key, core::Outcome outcome,
                         bool has_reg, unsigned reg, bool inferred, Source src,
                         const std::string& label);

    std::map<GroupKey, GroupCounts> groups_;
    std::map<GroupKey, std::uint8_t> group_sources_;
    std::map<RegKey, GroupCounts> registers_;
    std::map<UncoreKey, GroupCounts> uncore_;
    std::uint64_t total_records_ = 0;
    std::uint64_t inferred_records_ = 0;
    bool include_inferred_ = true;
    std::size_t databases_ = 0;
    /// Shard cross-validation state (config_hash and partition scheme of
    /// the first shard DB, the shard count, and which indices have been
    /// folded already).
    std::string shard_hash_;
    std::string shard_partition_;
    unsigned shard_count_ = 0;
    std::set<unsigned> shard_seen_;
};

/// Split a "ARMv7-EP-SER-1" scenario name into the key's scenario fields
/// (kind left empty). Throws util::ValidationError on malformed names.
GroupKey parse_scenario_name(const std::string& name);

} // namespace serep::stats
