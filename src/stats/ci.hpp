// Binomial rate estimation for campaign statistics (the paper's §4 numbers).
//
// Every headline result of the paper is a proportion — the fraction of
// injections in one outcome class — so the whole analytics subsystem reduces
// to "k failures out of n trials" plus an honest confidence interval. Two
// interval families are provided:
//
//  * Wilson score — the workhorse. Closed form (only +,-,*,/ and sqrt, so
//    bit-deterministic across compilers), well-centred for small n and for
//    rates near 0/1, never escapes [0,1]. The report renderer and the
//    sequential stopping rule both use it.
//  * Clopper-Pearson — the exact (conservative) interval, via Beta-quantile
//    inversion of the regularized incomplete beta function. Guaranteed
//    coverage >= the nominal level; the machine-readable CSV report carries
//    it next to Wilson so downstream analyses can pick their trade-off.
//
// Conventions: `confidence` is the two-sided level (0.95 = 95%). n == 0
// yields the vacuous interval [0, 1].
#pragma once

#include <cstdint>

namespace serep::stats {

/// Closed confidence interval for a proportion, within [0, 1].
struct Interval {
    double lo = 0.0;
    double hi = 1.0;
    double half_width() const noexcept { return (hi - lo) / 2.0; }
    bool contains(double p) const noexcept { return lo <= p && p <= hi; }
};

/// Point estimate k/n (0 when n == 0).
double point_rate(std::uint64_t k, std::uint64_t n) noexcept;

/// Upper-tail standard-normal quantile for a two-sided confidence level
/// (e.g. 0.95 -> 1.95996...). Common levels (0.90 / 0.95 / 0.99) come from a
/// built-in table so the hot reporting path involves no libm transcendental
/// calls; anything else falls back to an inverse-normal approximation
/// (|relative error| < 1.2e-9).
double z_for_confidence(double confidence);

/// Wilson score interval for k successes in n trials.
Interval wilson(std::uint64_t k, std::uint64_t n, double confidence = 0.95);

/// Clopper-Pearson ("exact") interval for k successes in n trials.
Interval clopper_pearson(std::uint64_t k, std::uint64_t n,
                         double confidence = 0.95);

/// Regularized incomplete beta function I_x(a, b) (continued-fraction
/// evaluation; exposed for the stats tests' independent cross-checks).
double betainc_reg(double a, double b, double x);

/// Quantile of the Beta(a, b) distribution: the x with I_x(a, b) == p,
/// found by deterministic bisection.
double beta_quantile(double a, double b, double p);

/// Smallest n for which a Wilson interval can possibly reach the target
/// half-width at the given confidence (attained at k == 0). The sequential
/// stopping rule uses it to skip CI evaluation for hopelessly small samples.
std::uint64_t min_trials_for_half_width(double target_half_width,
                                        double confidence);

} // namespace serep::stats
