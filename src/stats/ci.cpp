#include "stats/ci.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace serep::stats {

namespace {

/// Acklam's rational approximation to the inverse standard-normal CDF.
/// Relative error < 1.15e-9 over (0, 1); plenty for a z multiplier.
double inverse_normal_cdf(double p) {
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    if (p < p_low) {
        const double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= 1 - p_low) {
        const double q = p - 0.5, r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
    }
    const double q = std::sqrt(-2 * std::log1p(-p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

/// Continued fraction for the incomplete beta function (Lentz's method,
/// Numerical Recipes formulation). Converges fast for x < (a+1)/(a+b+2).
double betacf(double a, double b, double x) {
    constexpr int kMaxIter = 300;
    constexpr double kEps = 3e-16, kTiny = 1e-300;
    const double qab = a + b, qap = a + 1, qam = a - 1;
    double c = 1, d = 1 - qab * x / qap;
    if (std::fabs(d) < kTiny) d = kTiny;
    d = 1 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1) < kEps) break;
    }
    return h;
}

} // namespace

double point_rate(std::uint64_t k, std::uint64_t n) noexcept {
    return n == 0 ? 0.0 : static_cast<double>(k) / static_cast<double>(n);
}

double z_for_confidence(double confidence) {
    util::check(confidence > 0 && confidence < 1,
                "confidence level must be in (0, 1)");
    // Common levels pinned to fixed literals: the Wilson path then uses no
    // transcendental libm calls at all, keeping rendered reports
    // byte-identical across toolchains (the golden-report CI diff).
    constexpr double kEps = 1e-12;
    if (std::fabs(confidence - 0.90) < kEps) return 1.6448536269514722;
    if (std::fabs(confidence - 0.95) < kEps) return 1.959963984540054;
    if (std::fabs(confidence - 0.99) < kEps) return 2.5758293035489004;
    return inverse_normal_cdf(1 - (1 - confidence) / 2);
}

Interval wilson(std::uint64_t k, std::uint64_t n, double confidence) {
    util::check(k <= n, "wilson: k > n");
    if (n == 0) return {0.0, 1.0};
    const double z = z_for_confidence(confidence);
    const double kd = static_cast<double>(k), nd = static_cast<double>(n);
    const double z2 = z * z;
    const double center = (kd + z2 / 2) / (nd + z2);
    const double hw =
        z / (nd + z2) * std::sqrt(kd * (nd - kd) / nd + z2 / 4);
    // The score interval lies in [0, 1] mathematically; clamp the floating
    // residue (k = 0 gives lo ~ 1e-18, not 0) so databases stay clean.
    return {std::max(0.0, center - hw), std::min(1.0, center + hw)};
}

double betainc_reg(double a, double b, double x) {
    util::check(a > 0 && b > 0, "betainc_reg: a, b must be positive");
    if (x <= 0) return 0;
    if (x >= 1) return 1;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log1p(-x);
    if (x < (a + 1) / (a + b + 2))
        return std::exp(ln_front) * betacf(a, b, x) / a;
    return 1 - std::exp(ln_front) * betacf(b, a, 1 - x) / b;
}

double beta_quantile(double a, double b, double p) {
    util::check(p >= 0 && p <= 1, "beta_quantile: p outside [0, 1]");
    if (p <= 0) return 0;
    if (p >= 1) return 1;
    // Deterministic bisection: 200 halvings reach full double precision and
    // cost ~200 incomplete-beta evaluations — irrelevant at reporting rates,
    // and immune to the divergence Newton steps can hit at the tails.
    double lo = 0, hi = 1;
    for (int i = 0; i < 200; ++i) {
        const double mid = (lo + hi) / 2;
        if (betainc_reg(a, b, mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-15) break;
    }
    return (lo + hi) / 2;
}

Interval clopper_pearson(std::uint64_t k, std::uint64_t n, double confidence) {
    util::check(k <= n, "clopper_pearson: k > n");
    if (n == 0) return {0.0, 1.0};
    const double alpha = 1 - confidence;
    const double kd = static_cast<double>(k), nd = static_cast<double>(n);
    Interval iv;
    iv.lo = k == 0 ? 0.0 : beta_quantile(kd, nd - kd + 1, alpha / 2);
    iv.hi = k == n ? 1.0 : beta_quantile(kd + 1, nd - kd, 1 - alpha / 2);
    return iv;
}

std::uint64_t min_trials_for_half_width(double target_half_width,
                                        double confidence) {
    util::check(target_half_width > 0, "target half-width must be positive");
    // The narrowest Wilson interval at a given n is the k == 0 one, with
    // half-width z^2 / (2 (n + z^2)); solve for n.
    const double z2 = z_for_confidence(confidence) * z_for_confidence(confidence);
    if (target_half_width >= 0.5) return 1;
    const double n = z2 / (2 * target_half_width) - z2;
    return n <= 1 ? 1 : static_cast<std::uint64_t>(std::ceil(n));
}

} // namespace serep::stats
