#include "stats/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "stats/ci.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace serep::stats {

namespace {

std::string fmt(const char* spec, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, spec, v);
    return buf;
}

/// "52.0 ±9.6" — rate and Wilson half-width, both in percent.
std::string rate_cell(std::uint64_t k, std::uint64_t n, double confidence) {
    if (n == 0) return "-";
    const Interval iv = wilson(k, n, confidence);
    return fmt("%.1f", 100 * point_rate(k, n)) + " ±" +
           fmt("%.1f", 100 * iv.half_width());
}

std::string md_row(const std::vector<std::string>& cells) {
    std::string row = "|";
    for (const std::string& c : cells) row += " " + c + " |";
    return row + "\n";
}

std::string confidence_label(double confidence) {
    return fmt("%.0f", confidence * 100) + "%";
}

std::string render_markdown(const OutcomeTally& t, const ReportOptions& o) {
    std::ostringstream os;
    os << "# " << o.title << "\n\n";
    os << t.total_records() << " injections across " << t.groups().size()
       << " configuration groups; " << confidence_label(o.confidence)
       << " Wilson score intervals (rates in %, \xC2\xB1 is the CI "
          "half-width).\n";

    // One section per fault kind, in key order (fp / gpr / mem).
    std::vector<std::string> kinds;
    for (const auto& [key, counts] : t.groups())
        if (std::find(kinds.begin(), kinds.end(), key.kind) == kinds.end())
            kinds.push_back(key.kind);
    std::sort(kinds.begin(), kinds.end());
    for (const std::string& kind : kinds) {
        os << "\n## Fault kind: " << kind << "\n\n";
        os << md_row({"scenario", "n", "Vanished", "ONA", "OMM", "UT", "Hang",
                      "masked"});
        os << md_row({"---", "---:", "---:", "---:", "---:", "---:", "---:",
                      "---:"});
        for (const auto& [key, counts] : t.groups()) {
            if (key.kind != kind) continue;
            std::vector<std::string> cells{key.scenario(),
                                           std::to_string(counts.total())};
            for (unsigned oc = 0; oc < core::kOutcomeCount; ++oc)
                cells.push_back(
                    rate_cell(counts.counts[oc], counts.total(), o.confidence));
            cells.push_back(
                rate_cell(counts.masked(), counts.total(), o.confidence));
            os << md_row(cells);
        }
    }

    if (!t.uncore().empty()) {
        // Per-structure uncore vulnerability: where in the uncore the strike
        // landed (L1D / L2 / bus), the per-cache-level AVF breakdown. Empty
        // unless uncore-kind records were ingested, so reports over the
        // architectural fault spaces are byte-identical to before.
        os << "\n## Uncore vulnerability (per struck structure)\n\n";
        os << md_row({"isa", "kind", "where", "n", "failures", "rate",
                      confidence_label(o.confidence) + " CI", "masked"});
        os << md_row({"---", "---", "---", "---:", "---:", "---:", "---",
                      "---:"});
        for (const auto& [key, c] : t.uncore()) {
            const Interval iv = wilson(c.failed(), c.total(), o.confidence);
            os << md_row({key.isa, key.kind, key.where,
                          std::to_string(c.total()),
                          std::to_string(c.failed()),
                          fmt("%.1f", 100 * point_rate(c.failed(), c.total())),
                          "[" + fmt("%.1f", 100 * iv.lo) + ", " +
                              fmt("%.1f", 100 * iv.hi) + "]",
                          rate_cell(c.masked(), c.total(), o.confidence)});
        }
    }

    if (o.top_registers > 0 && !t.registers().empty()) {
        // AVF-style per-target vulnerability: failure rate per struck
        // register, most vulnerable first (ties broken by key order so the
        // table is deterministic).
        std::vector<std::pair<RegKey, GroupCounts>> regs(t.registers().begin(),
                                                         t.registers().end());
        std::stable_sort(regs.begin(), regs.end(),
                         [](const auto& a, const auto& b) {
                             return point_rate(a.second.failed(),
                                               a.second.total()) >
                                    point_rate(b.second.failed(),
                                               b.second.total());
                         });
        os << "\n## Register vulnerability (top "
           << std::min(o.top_registers, regs.size()) << " of " << regs.size()
           << " struck targets by failure rate)\n\n";
        os << md_row({"isa", "kind", "reg", "n", "failures", "rate",
                      confidence_label(o.confidence) + " CI"});
        os << md_row({"---", "---", "---:", "---:", "---:", "---:", "---"});
        for (std::size_t i = 0; i < regs.size() && i < o.top_registers; ++i) {
            const RegKey& key = regs[i].first;
            const GroupCounts& c = regs[i].second;
            const Interval iv = wilson(c.failed(), c.total(), o.confidence);
            os << md_row({key.isa, key.kind, std::to_string(key.reg),
                          std::to_string(c.total()),
                          std::to_string(c.failed()),
                          fmt("%.1f", 100 * point_rate(c.failed(), c.total())),
                          "[" + fmt("%.1f", 100 * iv.lo) + ", " +
                              fmt("%.1f", 100 * iv.hi) + "]"});
        }
    }
    return os.str();
}

std::string render_csv(const OutcomeTally& t, const ReportOptions& o) {
    std::ostringstream os;
    os << "isa,app,api,cores,kind,outcome,count,total,rate,"
          "wilson_lo,wilson_hi,cp_lo,cp_hi\n";
    for (const auto& [key, counts] : t.groups()) {
        for (unsigned oc = 0; oc < core::kOutcomeCount; ++oc) {
            const std::uint64_t k = counts.counts[oc], n = counts.total();
            const Interval w = wilson(k, n, o.confidence);
            const Interval cp = clopper_pearson(k, n, o.confidence);
            os << key.isa << ',' << key.app << ',' << key.api << ','
               << key.cores << ',' << key.kind << ','
               << core::outcome_name(static_cast<core::Outcome>(oc)) << ','
               << k << ',' << n << ',' << fmt("%.6f", point_rate(k, n)) << ','
               << fmt("%.6f", w.lo) << ',' << fmt("%.6f", w.hi) << ','
               << fmt("%.6f", cp.lo) << ',' << fmt("%.6f", cp.hi) << '\n';
        }
    }
    if (!t.uncore().empty()) {
        // Trailing block with its own header: plain-CSV consumers of the
        // outcome table are unaffected when no uncore records exist.
        os << "\nuncore_isa,uncore_kind,where,outcome,count,total,rate,"
              "wilson_lo,wilson_hi\n";
        for (const auto& [key, counts] : t.uncore()) {
            for (unsigned oc = 0; oc < core::kOutcomeCount; ++oc) {
                const std::uint64_t k = counts.counts[oc], n = counts.total();
                const Interval w = wilson(k, n, o.confidence);
                os << key.isa << ',' << key.kind << ',' << key.where << ','
                   << core::outcome_name(static_cast<core::Outcome>(oc)) << ','
                   << k << ',' << n << ',' << fmt("%.6f", point_rate(k, n))
                   << ',' << fmt("%.6f", w.lo) << ',' << fmt("%.6f", w.hi)
                   << '\n';
            }
        }
    }
    return os.str();
}

std::string render_figure_json(const OutcomeTally& t, const ReportOptions& o) {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("confidence").value(o.confidence);
    w.key("total_records").value(t.total_records());
    // Figure 2/3 shape: one series per (isa, kind, app), cells in
    // api/cores order — exactly the bar groups of the paper's figures.
    w.key("groups").begin_array();
    for (const auto& [key, counts] : t.groups()) {
        w.begin_object();
        w.key("scenario").value(key.scenario());
        w.key("isa").value(key.isa);
        w.key("app").value(key.app);
        w.key("api").value(key.api);
        w.key("cores").value(key.cores);
        w.key("kind").value(key.kind);
        w.key("n").value(counts.total());
        w.key("outcomes").begin_object();
        for (unsigned oc = 0; oc < core::kOutcomeCount; ++oc) {
            const std::uint64_t k = counts.counts[oc], n = counts.total();
            const Interval iv = wilson(k, n, o.confidence);
            w.key(core::outcome_name(static_cast<core::Outcome>(oc)))
                .begin_object();
            w.key("count").value(k);
            w.key("rate").value(point_rate(k, n));
            w.key("lo").value(iv.lo);
            w.key("hi").value(iv.hi);
            w.end_object();
        }
        w.end_object();
        w.key("masked_rate").value(point_rate(counts.masked(), counts.total()));
        w.key("failure_rate").value(point_rate(counts.failed(), counts.total()));
        w.end_object();
    }
    w.end_array();
    w.key("registers").begin_array();
    for (const auto& [key, counts] : t.registers()) {
        w.begin_object();
        w.key("isa").value(key.isa);
        w.key("kind").value(key.kind);
        w.key("reg").value(key.reg);
        w.key("n").value(counts.total());
        w.key("failures").value(counts.failed());
        w.key("failure_rate").value(point_rate(counts.failed(), counts.total()));
        w.end_object();
    }
    w.end_array();
    if (!t.uncore().empty()) {
        // Per-structure uncore AVF series; key absent entirely for
        // architectural-only tallies so existing figure JSON is unchanged.
        w.key("uncore").begin_array();
        for (const auto& [key, counts] : t.uncore()) {
            w.begin_object();
            w.key("isa").value(key.isa);
            w.key("kind").value(key.kind);
            w.key("where").value(key.where);
            w.key("n").value(counts.total());
            w.key("failures").value(counts.failed());
            w.key("failure_rate")
                .value(point_rate(counts.failed(), counts.total()));
            w.key("masked_rate")
                .value(point_rate(counts.masked(), counts.total()));
            w.end_object();
        }
        w.end_array();
    }
    w.end_object();
    os << '\n';
    return os.str();
}

} // namespace

std::string render_outcome_table(const OutcomeTally& t, const ReportOptions& o,
                                 const ExtraColumns* extra) {
    std::ostringstream os;
    std::vector<std::string> head{"scenario", "kind",  "n",  "Vanished",
                                  "ONA",      "OMM",   "UT", "Hang",
                                  "masked"};
    std::vector<std::string> rule{"---",  "---",  "---:", "---:", "---:",
                                  "---:", "---:", "---:", "---:"};
    if (extra)
        for (const std::string& name : extra->names) {
            head.push_back(name);
            rule.push_back("---:");
        }
    os << md_row(head) << md_row(rule);
    // Row order: the caller's explicit (paper) layout first, then whatever
    // else the tally holds in sorted-key order.
    std::vector<const std::map<GroupKey, GroupCounts>::value_type*> rows;
    if (extra && !extra->row_order.empty()) {
        for (const GroupKey& key : extra->row_order) {
            const auto it = t.groups().find(key);
            if (it != t.groups().end()) rows.push_back(&*it);
        }
    }
    for (const auto& group : t.groups()) {
        bool listed = false;
        for (const auto* r : rows) listed = listed || &group == r;
        if (!listed) rows.push_back(&group);
    }
    for (const auto* row : rows) {
        const GroupKey& key = row->first;
        const GroupCounts& counts = row->second;
        std::vector<std::string> cells{key.scenario(), key.kind,
                                       std::to_string(counts.total())};
        for (unsigned oc = 0; oc < core::kOutcomeCount; ++oc)
            cells.push_back(
                rate_cell(counts.counts[oc], counts.total(), o.confidence));
        cells.push_back(rate_cell(counts.masked(), counts.total(), o.confidence));
        if (extra) {
            const auto it = extra->cells.find(key);
            util::check(it == extra->cells.end() ||
                            it->second.size() == extra->names.size(),
                        "render_outcome_table: extra column arity mismatch");
            for (std::size_t c = 0; c < extra->names.size(); ++c)
                cells.push_back(it == extra->cells.end() ? "-" : it->second[c]);
        }
        os << md_row(cells);
    }
    return os.str();
}

std::string render_report(const OutcomeTally& t, const ReportOptions& o) {
    switch (o.format) {
        case ReportOptions::Format::Markdown: return render_markdown(t, o);
        case ReportOptions::Format::Csv: return render_csv(t, o);
        case ReportOptions::Format::FigureJson: return render_figure_json(t, o);
    }
    util::fail("render_report: unknown format");
}

} // namespace serep::stats
