// Report renderer (layer 4 of src/stats/): one table pipeline for every
// campaign driver and for `serep report`.
//
// Three output shapes from one OutcomeTally:
//  * Markdown — the human-readable paper tables: per-fault-kind outcome-rate
//    sections (rate % with Wilson CI half-width per cell) plus the
//    AVF-style register-vulnerability table. This is also the format the
//    stats-report-golden CI job byte-diffs, so it deliberately uses only
//    IEEE-deterministic arithmetic (integer counters, Wilson's sqrt form
//    with table-pinned z) — no libm transcendentals.
//  * Csv — the flat machine-readable form, one row per (group, outcome)
//    with both Wilson and Clopper-Pearson bounds.
//  * FigureJson — figure-data JSON mirroring the paper's Figures 2/3 series
//    (per-app cells in SER-1/API-1/API-2/API-4 order), for plotting.
//
// Rendering is a pure function of the tally, so reports over merged and
// unmerged shard databases are byte-identical (tests/stats_test.cpp).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stats/tally.hpp"

namespace serep::stats {

struct ReportOptions {
    enum class Format { Markdown, Csv, FigureJson };
    Format format = Format::Markdown;
    double confidence = 0.95;
    /// Rows in the register-vulnerability table (0 disables the section).
    std::size_t top_registers = 8;
    /// Optional title line for the markdown report.
    std::string title = "serep campaign report";
};

/// Extra per-group metric columns for the paper tables (bench_table2-4 add
/// their profile-derived indices this way instead of hand-rolling tables).
struct ExtraColumns {
    std::vector<std::string> names;
    std::map<GroupKey, std::vector<std::string>> cells;
    /// Optional explicit row order (the paper's block layout, e.g. Table
    /// 4's A-I tags). Rows listed here print first, in this order; any
    /// remaining tally groups follow in sorted-key order. Empty = sorted
    /// key order throughout.
    std::vector<GroupKey> row_order;
};

/// The markdown outcome-rate table alone (no preamble/sections) — the shared
/// row format every bench driver prints. One row per group, columns:
/// scenario, kind, n, the five outcome rates as "r ±hw", masked rate, then
/// any extra columns.
std::string render_outcome_table(const OutcomeTally& t, const ReportOptions& o,
                                 const ExtraColumns* extra = nullptr);

/// Full report in the requested format.
std::string render_report(const OutcomeTally& t, const ReportOptions& o);

} // namespace serep::stats
