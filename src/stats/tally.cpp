#include "stats/tally.hpp"

#include <tuple>

#include "uncore/uncore.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/zframe.hpp"

namespace serep::stats {

namespace {

core::Outcome outcome_or_throw(const std::string& name, const std::string& ctx) {
    core::Outcome o;
    util::check_valid(core::outcome_from_name(name, o),
                      ctx + ": unknown outcome '" + name + "'");
    return o;
}

core::FaultTarget::Kind kind_or_throw(const std::string& name,
                                      const std::string& ctx) {
    core::FaultTarget::Kind k;
    util::check_valid(core::fault_kind_from_name(name, k),
                      ctx + ": unknown fault kind '" + name + "'");
    return k;
}

/// Iterate the '\n'-separated lines of a database body, starting at byte
/// `start` — offset-based so skipping a manifest line never copies the
/// (potentially huge) body.
template <typename Fn>
void for_lines(const std::string& text, std::size_t start, Fn&& fn) {
    std::size_t pos = start;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        if (eol > pos) fn(text.substr(pos, eol - pos));
        pos = eol + 1;
    }
}

} // namespace

std::string GroupKey::scenario() const {
    return isa + "-" + app + "-" + api + "-" + std::to_string(cores);
}

bool GroupKey::operator<(const GroupKey& o) const noexcept {
    return std::tie(isa, app, api, cores, kind) <
           std::tie(o.isa, o.app, o.api, o.cores, o.kind);
}

bool GroupKey::operator==(const GroupKey& o) const noexcept {
    return std::tie(isa, app, api, cores, kind) ==
           std::tie(o.isa, o.app, o.api, o.cores, o.kind);
}

bool RegKey::operator<(const RegKey& o) const noexcept {
    return std::tie(isa, kind, reg) < std::tie(o.isa, o.kind, o.reg);
}

bool UncoreKey::operator<(const UncoreKey& o) const noexcept {
    return std::tie(isa, kind, where) < std::tie(o.isa, o.kind, o.where);
}

std::uint64_t GroupCounts::total() const noexcept {
    std::uint64_t t = 0;
    for (std::uint64_t c : counts) t += c;
    return t;
}

std::uint64_t GroupCounts::masked() const noexcept {
    return of(core::Outcome::Vanished) + of(core::Outcome::ONA);
}

std::uint64_t GroupCounts::failed() const noexcept {
    return of(core::Outcome::OMM) + of(core::Outcome::UT) +
           of(core::Outcome::Hang);
}

GroupKey parse_scenario_name(const std::string& name) {
    // "ARMv7-EP-SER-1": isa, app, api, cores, '-'-separated. App/api names
    // never contain '-', so plain splitting is unambiguous.
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= name.size()) {
        const std::size_t dash = name.find('-', pos);
        if (dash == std::string::npos) {
            parts.push_back(name.substr(pos));
            break;
        }
        parts.push_back(name.substr(pos, dash - pos));
        pos = dash + 1;
    }
    util::check_valid(parts.size() == 4 && !parts[0].empty() &&
                          !parts[1].empty() && !parts[2].empty() &&
                          !parts[3].empty(),
                      "malformed scenario name '" + name + "'");
    GroupKey key;
    key.isa = parts[0];
    key.app = parts[1];
    key.api = parts[2];
    for (char c : parts[3])
        util::check_valid(c >= '0' && c <= '9',
                          "malformed scenario core count in '" + name + "'");
    try {
        key.cores = static_cast<unsigned>(std::stoul(parts[3]));
    } catch (const std::exception&) { // out_of_range on absurd digit runs
        throw util::ValidationError("malformed scenario core count in '" +
                                    name + "'");
    }
    return key;
}

void OutcomeTally::add_record(const GroupKey& key, core::Outcome outcome,
                              bool has_reg, unsigned reg, bool inferred) {
    add_record_from(key, outcome, has_reg, reg, inferred, Source::Plain,
                    "add_record");
}

void OutcomeTally::add_record_from(const GroupKey& key, core::Outcome outcome,
                                   bool has_reg, unsigned reg, bool inferred,
                                   Source src, const std::string& label) {
    std::uint8_t& sources = group_sources_[key];
    util::check_valid(
        !(sources & ~static_cast<std::uint8_t>(src)),
        label + ": " + key.scenario() + " (" + key.kind +
            ") already has records from a " +
            (src == Source::Shard ? "merged or plain" : "shard") +
            " database — a merged database contains its shards' records, so "
            "mixing the two double-counts the campaign (merge the shards "
            "first, or report them separately)");
    sources |= static_cast<std::uint8_t>(src);
    if (inferred) ++inferred_records_;
    // --no-inferred: pruning-derived outcomes are tallied above for the
    // provenance note but excluded from every counter a report reads.
    if (inferred && !include_inferred_) return;
    ++groups_[key].counts[static_cast<unsigned>(outcome)];
    ++total_records_;
    if (has_reg)
        ++registers_[RegKey{key.isa, key.kind, reg}]
              .counts[static_cast<unsigned>(outcome)];
    // Uncore records also fold into the per-structure map: the cache kinds
    // carry their level in `reg` (0 = L1D, 1 = L2), bus faults land on the
    // one shared port.
    core::FaultTarget::Kind k;
    if (core::fault_kind_from_name(key.kind, k) && core::is_uncore_kind(k)) {
        const std::string where = k == core::FaultTarget::Kind::Bus
                                      ? "bus"
                                      : uncore::level_name(reg);
        ++uncore_[UncoreKey{key.isa, key.kind, where}]
              .counts[static_cast<unsigned>(outcome)];
    }
}

void OutcomeTally::add_result(const core::CampaignResult& r) {
    GroupKey base = parse_scenario_name(r.scenario.name());
    for (const core::FaultRecord& rec : r.records) {
        GroupKey key = base;
        key.kind = core::fault_kind_name(rec.fault.target.kind);
        const bool has_reg = core::fault_kind_has_reg(rec.fault.target.kind);
        add_record(key, rec.outcome, has_reg, rec.fault.target.reg,
                   rec.inferred);
    }
}

void OutcomeTally::add_database(const std::string& contents,
                                const std::string& label) {
    util::check_valid(!contents.empty(), label + ": empty database");
    if (util::zframe_is(contents)) {
        // zstd-framed (fleet-streamed) databases: decompress, then sniff the
        // plaintext as usual. Recursion is bounded: frames never nest.
        add_database(util::zframe_decompress(contents), label);
        return;
    }
    if (contents.rfind("scenario,", 0) == 0) {
        add_csv(contents, label);
    } else if (contents.front() == '{') {
        // Shard DBs and campaign JSONL both start with '{'; only shard DBs
        // carry the manifest magic in their first line.
        const std::size_t eol = contents.find('\n');
        const std::string first =
            contents.substr(0, eol == std::string::npos ? contents.size() : eol);
        if (first.find("\"magic\":\"serep-shard\"") != std::string::npos)
            add_shard_db(contents, label);
        else
            add_campaign_jsonl(contents, label);
    } else {
        throw util::ValidationError(
            "unrecognized database format (expected a serep shard DB, "
            "campaign JSONL, or per-fault CSV): " +
            label);
    }
    ++databases_;
}

void OutcomeTally::add_shard_db(const std::string& contents,
                                const std::string& label) {
    const std::size_t eol = contents.find('\n');
    util::check_valid(eol != std::string::npos, label + ": missing manifest line");
    util::JsonValue manifest;
    try {
        manifest = util::json_parse(contents.substr(0, eol));
    } catch (const util::Error& e) {
        throw util::ValidationError(label + ": bad manifest: " + e.what());
    }

    // Config-hash + partition cross-validation: every shard DB folded into
    // one tally must come from the same campaign *and* the same
    // fault-to-shard assignment scheme (a uniform and a weighted shard of
    // one campaign overlap and leave gaps — blending them would silently
    // double-count some faults and drop others), and no shard twice.
    const std::string hash = manifest.at("config_hash").as_string();
    const unsigned count = static_cast<unsigned>(manifest.at("count").as_u64());
    const unsigned index = static_cast<unsigned>(manifest.at("shard").as_u64());
    const util::JsonValue* part = manifest.find("partition");
    const std::string partition = part ? part->as_string() : "uniform";
    util::check_valid(count >= 1 && index < count, label + ": bad shard index");
    if (shard_hash_.empty()) {
        shard_hash_ = hash;
        shard_count_ = count;
        shard_partition_ = partition;
    } else {
        util::check_valid(hash == shard_hash_,
                          label + ": config hash mismatch — this shard "
                                  "database comes from a different campaign");
        util::check_valid(count == shard_count_,
                          label + ": shard count differs from earlier databases");
        util::check_valid(partition == shard_partition_,
                          label + ": partition scheme mismatch — this shard "
                                  "was cut by a different assignment than "
                                  "earlier databases");
    }
    util::check_valid(shard_seen_.insert(index).second,
                      label + ": shard " + std::to_string(index) +
                          " already folded into this tally");

    // Jobs array gives each record's scenario via its "job" index.
    std::vector<GroupKey> job_keys;
    for (const util::JsonValue& jv : manifest.at("jobs").arr) {
        GroupKey key;
        key.isa = jv.at("isa").as_string();
        key.app = jv.at("app").as_string();
        key.api = jv.at("api").as_string();
        key.cores = static_cast<unsigned>(jv.at("cores").as_u64());
        job_keys.push_back(std::move(key));
    }
    util::check_valid(!job_keys.empty(), label + ": empty job list");

    std::size_t line_no = 1;
    for_lines(contents, eol + 1, [&](const std::string& line) {
        ++line_no;
        util::JsonValue rv;
        try {
            rv = util::json_parse(line);
        } catch (const util::Error& e) {
            throw util::ValidationError(label + " line " +
                                        std::to_string(line_no) + ": " +
                                        e.what());
        }
        const std::size_t job = rv.at("job").as_u64();
        util::check_valid(job < job_keys.size(),
                          label + ": record for unknown job");
        GroupKey key = job_keys[job];
        const core::FaultTarget::Kind kind =
            kind_or_throw(rv.at("kind").as_string(), label);
        key.kind = core::fault_kind_name(kind);
        const util::JsonValue* inf = rv.find("inferred");
        add_record_from(key,
                        outcome_or_throw(rv.at("outcome").as_string(), label),
                        core::fault_kind_has_reg(kind),
                        static_cast<unsigned>(rv.at("reg").as_u64()),
                        inf && inf->as_bool(), Source::Shard, label);
    });
}

void OutcomeTally::add_campaign_jsonl(const std::string& contents,
                                      const std::string& label) {
    std::size_t line_no = 0;
    for_lines(contents, 0, [&](const std::string& line) {
        ++line_no;
        util::JsonValue cv;
        try {
            cv = util::json_parse(line);
        } catch (const util::Error& e) {
            throw util::ValidationError(label + " line " +
                                        std::to_string(line_no) + ": " +
                                        e.what());
        }
        const GroupKey base = parse_scenario_name(cv.at("scenario").as_string());
        for (const util::JsonValue& rv : cv.at("records").arr) {
            GroupKey key = base;
            const core::FaultTarget::Kind kind =
                kind_or_throw(rv.at("kind").as_string(), label);
            key.kind = core::fault_kind_name(kind);
            const util::JsonValue* inf = rv.find("inferred");
            add_record_from(
                key, outcome_or_throw(rv.at("outcome").as_string(), label),
                core::fault_kind_has_reg(kind),
                static_cast<unsigned>(rv.at("reg").as_u64()),
                inf && inf->as_bool(), Source::Plain, label);
        }
    });
}

void OutcomeTally::add_csv(const std::string& contents,
                           const std::string& label) {
    const std::vector<std::vector<std::string>> rows = util::csv_parse(contents);
    util::check_valid(!rows.empty(), label + ": empty CSV");
    const std::vector<std::string>& header = rows.front();
    auto column = [&](const std::string& name) {
        for (std::size_t c = 0; c < header.size(); ++c)
            if (header[c] == name) return c;
        throw util::ValidationError(label + ": CSV lacks column '" + name + "'");
    };
    const std::size_t c_scenario = column("scenario"), c_kind = column("kind"),
                      c_reg = column("reg"), c_outcome = column("outcome");
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const std::vector<std::string>& row = rows[i];
        util::check_valid(row.size() == header.size(),
                          label + " row " + std::to_string(i) +
                              ": wrong cell count");
        GroupKey key = parse_scenario_name(row[c_scenario]);
        const core::FaultTarget::Kind kind = kind_or_throw(row[c_kind], label);
        key.kind = core::fault_kind_name(kind);
        unsigned reg = 0;
        try {
            reg = static_cast<unsigned>(std::stoul(row[c_reg]));
        } catch (const std::exception&) {
            throw util::ValidationError(label + " row " + std::to_string(i) +
                                        ": malformed reg '" + row[c_reg] + "'");
        }
        // The per-fault CSV carries no provenance column (its byte format
        // predates pruning and must stay stable); records fold as simulated.
        add_record_from(key, outcome_or_throw(row[c_outcome], label),
                        core::fault_kind_has_reg(kind), reg, false,
                        Source::Plain, label);
    }
}

} // namespace serep::stats
