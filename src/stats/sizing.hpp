// Confidence-driven campaign sizing (layer 3 of src/stats/): stop injecting
// when the statistics are good enough.
//
// The paper fixes 8,000 injections per scenario and quotes a 1% error
// margin; most scenarios converge far earlier. The sequential sizer turns
// the margin into the contract: a campaign keeps drawing fault batches until
// every tracked outcome rate's Wilson CI half-width is at or below
// StatsOptions::target_half_width, then stops — big campaigns end as early
// as statistics allow instead of burning a fixed budget.
//
// Reproducibility is preserved by construction:
//  * the job's full fault list is the ordinary deterministic one
//    (core::make_fault_list from cfg.n_faults + seed) — the sizer never
//    invents faults, it draws a *prefix* of the PR-2 stable content-id
//    order (orch::fault_id ascending, list ordinal as tie-break);
//  * each fault's outcome depends only on the fault and the golden run, so
//    every record the sizer emits is bit-identical to the record the fixed
//    fixed-count campaign produces at the same ordinal (gated in
//    tests/stats_test.cpp);
//  * batches are injected through BatchRunner per-job ordinal filters on a
//    runner with retain_ladders, so rounds reuse one golden run and one
//    checkpoint ladder per scenario.
#pragma once

#include <cstdint>
#include <vector>

#include "orch/shard.hpp"

namespace serep::stats {

struct StatsOptions {
    /// Stop once every outcome rate's CI half-width (in probability units,
    /// e.g. 0.05 == +/-5 percentage points) is <= this. Must be positive.
    double target_half_width = 0.05;
    double confidence = 0.95;
    /// Faults drawn per round and per job after the opening round. The
    /// opening round draws at least min_trials_for_half_width() so the rule
    /// is not evaluated on hopelessly small samples.
    std::uint32_t batch_faults = 50;
    /// Hard floor on injections per job before the rule may stop a job.
    std::uint32_t min_faults = 20;
};

struct AdaptiveJobResult {
    /// Injected records in ascending full-list ordinal order (a strict
    /// subset of the fixed-count campaign's records); counts rebuilt.
    core::CampaignResult result;
    /// Full-list ordinal of each record of `result`.
    std::vector<std::uint32_t> ordinals;
    std::uint32_t fault_space = 0; ///< the fixed campaign's fault count
    unsigned rounds = 0;           ///< injection rounds actually run
    bool converged = false;        ///< target met before the space ran out
    double max_half_width = 1.0;   ///< widest tracked CI at stop time
};

/// The draw order of the sequential rule: full-list ordinals sorted by
/// stable fault content id (ties by ordinal). Depends only on fault content,
/// never on shard count or list position — the same order PR 2's ShardPlan
/// partitions by.
std::vector<std::uint32_t> content_id_order(const std::vector<core::Fault>& faults);

/// Run every job under the sequential stopping rule. `opts.fault_filter`
/// must be unset (the sizer owns the per-job filters); opts.retain_ladders
/// is forced on for the runner's lifetime. Results come back in job order.
std::vector<AdaptiveJobResult> run_adaptive_campaign(
    const std::vector<orch::ShardJobSpec>& jobs, orch::BatchOptions opts,
    const StatsOptions& stats);

} // namespace serep::stats
