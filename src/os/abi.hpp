// Syscall ABI shared by the nanokernel and the guest runtimes.
//
// Arguments in r0..r3 / x0..x3, return value in r0/x0. Blocking syscalls are
// restartable: the kernel rewinds the saved PC to the SVC instruction before
// blocking, so a woken thread re-executes the call.
#pragma once

#include <cstdint>

namespace serep::os {

enum Sys : unsigned {
    SYS_EXIT = 0,          ///< (code)           process exit; never returns
    SYS_WRITE = 1,         ///< (buf, len)       write bytes to the process console
    SYS_BRK = 2,           ///< (new_top)        grow heap; 0 queries; returns top or 0
    SYS_THREAD_CREATE = 3, ///< (entry, stack_top, arg) -> tid or -1
    SYS_THREAD_EXIT = 4,   ///< (code)           never returns
    SYS_THREAD_JOIN = 5,   ///< (tid) -> exit code
    SYS_FUTEX_WAIT = 6,    ///< (addr, expected) -> 0 woken / 1 value mismatch
    SYS_FUTEX_WAKE = 7,    ///< (addr, nmax) -> number woken
    SYS_YIELD = 8,         ///< ()
    SYS_CHAN_SEND = 9,     ///< (chan, buf, len) len % 4 == 0, len <= kChanMsgMax
    SYS_CHAN_RECV = 10,    ///< (chan, buf, maxlen) -> message length
};

/// Channel message payload limit (bytes); larger transfers are chunked by
/// the MPI runtime (eager-protocol style).
inline constexpr std::uint64_t kChanMsgMax = 240;
inline constexpr std::uint64_t kChanSlotBytes = 256;
inline constexpr std::uint64_t kChanSlots = 32; ///< per-channel ring capacity

/// Exit code the kernel assigns to processes it kills after a fault
/// (segfault / undefined instruction / bad syscall argument).
inline constexpr unsigned kKilledExitCode = 139;

/// channel id carrying data from `src` to `dst`
constexpr unsigned chan_id(unsigned src, unsigned dst, unsigned nprocs) noexcept {
    return dst * nprocs + src;
}

} // namespace serep::os
