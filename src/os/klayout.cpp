#include "os/klayout.hpp"

#include "util/bitops.hpp"


#include "util/check.hpp"

namespace serep::os {

KLayout KLayout::make(isa::Profile p, unsigned nprocs, std::uint64_t kern_size) {
    util::check(nprocs >= 1 && nprocs <= 8, "KLayout: 1..8 processes");
    KLayout l;
    const auto info = isa::profile_info(p);
    l.w = info.width_bytes;
    l.nprocs = nprocs;
    l.nchan = nprocs * nprocs;
    l.kern_size = kern_size;

    std::uint64_t cur = isa::layout::kKernBase;
    auto word = [&]() {
        const std::uint64_t a = cur;
        cur += l.w;
        return a;
    };
    auto words = [&](unsigned n) {
        const std::uint64_t a = cur;
        cur += std::uint64_t{n} * l.w;
        return a;
    };
    auto align = [&](std::uint64_t a) { cur = (cur + a - 1) & ~(a - 1); };

    l.klock = word();
    l.runq_head = word();
    l.runq_tail = word();
    l.live_procs = word();
    l.nthreads = word();
    l.exit_or = word();
    l.current_base = words(kMaxCores);
    l.runq_base = words(kRunqCap);
    l.proc_heap_base = words(nprocs);
    l.proc_heap_top = words(nprocs);

    // channels
    align(64);
    l.choff_head = 0;
    l.choff_tail = l.w;
    l.choff_ring = 64; // keep ring cache-line aligned within the record
    l.chan_stride = l.choff_ring + kChanSlots * kChanSlotBytes;
    l.chan_base = cur;
    cur += l.nchan * l.chan_stride;

    // TCBs
    l.off_state = 0;
    l.off_proc = 1 * l.w;
    l.off_joiner = 2 * l.w;
    l.off_wait_key = 3 * l.w;
    l.off_reason = 4 * l.w;
    l.off_exitcode = 5 * l.w;
    l.off_ctx_flags = 6 * l.w;
    l.off_ctx_pc = 7 * l.w;
    l.off_ctx_sp = 8 * l.w;
    l.off_ctx_gpr = 9 * l.w;
    l.ctx_gpr_slots = p == isa::Profile::V7 ? 14 : 31;
    l.tcb_stride = util::bit_ceil64((9 + l.ctx_gpr_slots) * l.w);
    align(64);
    l.tcb_base = cur;
    cur += kMaxThreads * l.tcb_stride;
    l.kend = cur;

    const std::uint64_t stacks = isa::layout::kKernBase + kern_size -
                                 std::uint64_t{kMaxCores} * kKernStackBytes;
    util::check(l.kend <= stacks, "KLayout: kernel region too small");
    return l;
}

} // namespace serep::os
