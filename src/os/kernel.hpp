// Nanokernel code generator.
//
// Emits the entire kernel as guest code: trap vector with full context
// save/restore, spinlock-protected run queue and scheduler with idle WFI,
// preemptive round-robin via the per-core instruction timer, and syscalls
// (exit/write/brk/threads/futex/yield/channels). Because the kernel is
// guest code operating on guest registers and kernel memory, fault
// injections genuinely corrupt scheduler state, context-switch sequences
// and syscall paths — the OS/API exposure the paper measures.
#pragma once

#include "kasm/assembler.hpp"
#include "os/klayout.hpp"

namespace serep::os {

struct KernelConfig {
    unsigned quantum = 4000;          ///< time-slice in retired instructions.
                                      ///  Also the natural upper bound on a
                                      ///  user-mode trace-engine burst: the
                                      ///  TIMER countdown it arms clips every
                                      ///  superblock budget (sim::Machine::
                                      ///  burst_trace), so preemptions land
                                      ///  on the same instruction under all
                                      ///  engines.
    std::uint64_t user_size = isa::layout::kDefaultUserSize;
    std::uint64_t kern_size = isa::layout::kDefaultKernSize;
    std::uint64_t heap_guard = 64 * 1024; ///< unmapped gap below the main stack
};

/// Emit the kernel at the assembler's current position (must be first, so
/// kernel text starts at the code base), register boot/vector entries and
/// mark the kernel/user text boundary. Returns the layout used.
KLayout build_kernel(kasm::Assembler& a, unsigned nprocs, const KernelConfig& cfg = {});

} // namespace serep::os
