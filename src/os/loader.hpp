// Boot firmware: builds a Machine from a linked image, seeds the kernel data
// structures for the main thread of every process (MPI rank), and points
// every core at the kernel boot entry. This plays the role of the paper's
// "OS startup" — it happens before the fault-injection window opens.
#pragma once

#include <memory>

#include "os/klayout.hpp"
#include "sim/machine.hpp"

namespace serep::os {

struct BootConfig {
    unsigned cores = 1;
    unsigned procs = 1; ///< one main thread (rank) per process
    std::uint64_t user_size = isa::layout::kDefaultUserSize;
    std::uint64_t kern_size = isa::layout::kDefaultKernSize;
    bool profile = false;
};

/// Create and initialize a machine ready to run. Main thread p starts at
/// image.user_entry with (r0, r1) = (rank, nprocs) and a stack at the top of
/// its user region.
sim::Machine boot_machine(std::shared_ptr<const kasm::Image> image,
                          const KLayout& layout, const BootConfig& cfg);

} // namespace serep::os
