#include "os/kernel.hpp"


#include "isa/sysreg.hpp"
#include "util/bitops.hpp"
#include "util/check.hpp"

namespace serep::os {

using isa::Cond;
using isa::Profile;
using isa::SysReg;
using kasm::Assembler;
using kasm::Label;
using kasm::ModTag;
using kasm::Reg;

namespace {

/// Emits the kernel. Register convention inside the kernel (all user state
/// is saved to the TCB on entry, so registers 0..12 are free on both
/// profiles; SP is the per-core kernel stack):
///   r4  = current TCB pointer (valid through every handler)
///   r0..r3 = scratch / leaf-call arguments
///   r5..r12 = handler locals
class KernelEmitter {
public:
    KernelEmitter(Assembler& a, const KLayout& l, const KernelConfig& cfg)
        : a(a), l(l), cfg(cfg), v7(a.profile() == Profile::V7),
          W(a.wbytes()),
          stride_shift(static_cast<unsigned>(util::ctz64(l.tcb_stride))),
          user_end(isa::layout::kUserBase + cfg.user_size),
          brk_limit(user_end - isa::layout::kMainStackSize - cfg.heap_guard) {}

    void emit_all() {
        emit_boot();
        emit_lock();
        emit_enqueue();
        emit_ipi_idle();
        emit_wake_scan();
        emit_vec();
        emit_resched();
        emit_schedule();
        emit_restore_eret();
        emit_ret();
        emit_fault();
        emit_svc_dispatch();
        emit_write();
        emit_exit();
        emit_brk();
        emit_thread_create();
        emit_thread_exit();
        emit_thread_join();
        emit_futex_wait();
        emit_futex_wake();
        emit_yield();
        emit_chan_send();
        emit_chan_recv();
        a.end_kernel_text();
    }

private:
    Assembler& a;
    const KLayout& l;
    const KernelConfig& cfg;
    const bool v7;
    const unsigned W;
    const unsigned stride_shift;
    const std::uint64_t user_end;
    const std::uint64_t brk_limit;

    std::int64_t i64(std::uint64_t v) const { return static_cast<std::int64_t>(v); }
    /// Saved-argument slot i of the current TCB (offset from r4).
    std::int64_t A(unsigned i) const { return i64(l.off_ctx_gpr + i * W); }
    unsigned lr_slot() const { return v7 ? 13u : 30u; }

    /// load global word at `addr` into rd (clobbers rd only)
    void lg(Reg rd, std::uint64_t addr) {
        a.movi(rd, i64(addr));
        a.ldr(rd, rd, 0);
    }
    /// store rs to global word at `addr` (clobbers scratch)
    void sg(std::uint64_t addr, Reg rs, Reg scratch) {
        a.movi(scratch, i64(addr));
        a.str(rs, scratch, 0);
    }
    /// 32-bit load/store regardless of profile (channel payload copies)
    void ld32(Reg rd, Reg base, std::int64_t off) {
        if (v7) a.ldr(rd, base, off);
        else a.ldrw(rd, base, off);
    }
    void st32(Reg rd, Reg base, std::int64_t off) {
        if (v7) a.str(rd, base, off);
        else a.strw(rd, base, off);
    }

    // ---------------- boot ----------------
    void emit_boot() {
        a.func("k_boot", ModTag::KERNEL);
        a.set_kernel_boot(a.here());
        a.bl("k_lock_acquire");
        a.b_to("k_schedule");
    }

    // ---------------- spinlock ----------------
    void emit_lock() {
        a.func("k_lock_acquire", ModTag::KERNEL); // clobbers 0,1,2
        auto spin = a.newl();
        a.movi(0, i64(l.klock));
        a.bind(spin);
        a.ldrex(1, 0);
        a.cmpi(1, 0);
        a.b(Cond::NE, spin);
        a.movi(1, 1);
        a.strex(2, 0, 1);
        a.cmpi(2, 0);
        a.b(Cond::NE, spin);
        a.ret();

        a.func("k_lock_release", ModTag::KERNEL); // clobbers 0,1
        a.movi(0, i64(l.klock));
        a.movi(1, 0);
        a.str(1, 0, 0);
        a.ret();
    }

    // ---------------- run queue ----------------
    void emit_enqueue() {
        // r0 = tid; lock held; leaf; clobbers 1,2,3
        a.func("k_enqueue", ModTag::KERNEL);
        lg(2, l.runq_tail);
        a.andi(3, 2, kRunqCap - 1);
        a.movi(1, i64(l.runq_base));
        a.str_word_idx(0, 1, 3);
        a.addi(2, 2, 1);
        sg(l.runq_tail, 2, 1);
        a.ret();
    }

    void emit_ipi_idle() {
        // wake every idle core; lock held; leaf; clobbers 0,1,2,3,8
        a.func("k_ipi_idle", ModTag::KERNEL);
        auto loop = a.newl(), next = a.newl(), done = a.newl(), send = a.newl();
        a.sysrd(0, SysReg::NCORES);
        a.movi(1, 0); // core
        a.movi(2, 0); // mask
        a.bind(loop);
        a.cmp(1, 0);
        a.b(Cond::GE, done);
        a.movi(3, i64(l.current_base));
        a.ldr_word_idx(3, 3, 1);
        a.cmpi(3, 0);
        a.b(Cond::NE, next);
        a.movi(8, 1);
        a.lslv(8, 8, 1);
        a.orr(2, 2, 8);
        a.bind(next);
        a.addi(1, 1, 1);
        a.b(loop);
        a.bind(done);
        a.cmpi(2, 0);
        a.b(Cond::NE, send);
        a.ret();
        a.bind(send);
        a.syswr(SysReg::IPI_SEND, 2);
        a.ret();
    }

    void emit_wake_scan() {
        // r0 = reason, r1 = key: wake every blocked thread matching
        // (reason, key) regardless of process (used for channels).
        // Lock held. Clobbers 0,1,2,3,5,7,8,9,10,11.
        a.func("k_wake_scan", ModTag::KERNEL);
        auto loop = a.newl(), next = a.newl(), done = a.newl(), fin = a.newl();
        a.subi(a.sp(), a.sp(), 2 * W);
        a.str(a.lr(), a.sp(), 0);
        a.mov(10, 0);  // reason
        a.mov(11, 1);  // key
        a.movi(9, 0);  // tid
        a.movi(7, i64(l.tcb_base));
        a.movi(5, 0); // count
        a.bind(loop);
        lg(0, l.nthreads);
        a.cmp(9, 0);
        a.b(Cond::GE, done);
        a.ldr(0, 7, i64(l.off_state));
        a.cmpi(0, TCB_BLOCKED);
        a.b(Cond::NE, next);
        a.ldr(0, 7, i64(l.off_reason));
        a.cmp(0, 10);
        a.b(Cond::NE, next);
        a.ldr(0, 7, i64(l.off_wait_key));
        a.cmp(0, 11);
        a.b(Cond::NE, next);
        a.movi(0, TCB_RUNNABLE);
        a.str(0, 7, i64(l.off_state));
        a.movi(0, BLK_NONE);
        a.str(0, 7, i64(l.off_reason));
        a.mov(0, 9);
        a.bl("k_enqueue");
        a.addi(5, 5, 1);
        a.bind(next);
        a.addi(9, 9, 1);
        a.addi(7, 7, i64(l.tcb_stride));
        a.b(loop);
        a.bind(done);
        a.cmpi(5, 0);
        a.b(Cond::EQ, fin);
        a.bl("k_ipi_idle");
        a.bind(fin);
        a.ldr(a.lr(), a.sp(), 0);
        a.addi(a.sp(), a.sp(), 2 * W);
        a.ret();
    }

    // ---------------- trap vector ----------------
    void emit_vec() {
        a.func("k_vec", ModTag::KERNEL);
        a.set_vec_entry(a.here());
        // stash r0, r1 on the kernel stack
        if (v7) {
            a.subi(a.sp(), a.sp(), 8);
            a.str(0, a.sp(), 0);
            a.str(1, a.sp(), 4);
        } else {
            a.subi(a.sp(), a.sp(), 16);
            a.stp(0, 1, a.sp(), 0);
        }
        a.sysrd(0, SysReg::TLS); // r0 = current TCB
        // save r2.. into context slots (positionally register == slot)
        if (v7) {
            a.addi(1, 0, i64(l.off_ctx_gpr + 2 * W));
            a.stm(1, 0x5FFC, false); // r2..r12, lr -> slots 2..13
        } else {
            for (unsigned r = 2; r + 1 <= 29; r += 2)
                a.stp(static_cast<Reg>(r), static_cast<Reg>(r + 1), 0,
                      i64(l.off_ctx_gpr + r * W));
            a.str(30, 0, i64(l.off_ctx_gpr + 30 * W));
        }
        // move the stashed r0/r1 into slots 0/1
        if (v7) {
            a.ldr(2, a.sp(), 0);
            a.str(2, 0, A(0));
            a.ldr(2, a.sp(), 4);
            a.str(2, 0, A(1));
            a.addi(a.sp(), a.sp(), 8);
        } else {
            a.ldp(2, 3, a.sp(), 0);
            a.addi(a.sp(), a.sp(), 16);
            a.str(2, 0, A(0));
            a.str(3, 0, A(1));
        }
        // flags / pc / user sp
        a.sysrd(1, SysReg::FLAGS);
        a.str(1, 0, i64(l.off_ctx_flags));
        a.sysrd(1, SysReg::EPC);
        a.str(1, 0, i64(l.off_ctx_pc));
        a.sysrd(1, SysReg::USP);
        a.str(1, 0, i64(l.off_ctx_sp));
        a.mov(4, 0); // r4 = TCB for all handlers
        // dispatch on cause
        a.sysrd(1, SysReg::CAUSE);
        a.andi(2, 1, 0xFF);
        a.cmpi(2, static_cast<int>(isa::TrapCause::SVC));
        a.b_to("k_svc", Cond::EQ);
        a.cmpi(2, static_cast<int>(isa::TrapCause::IRQ_TIMER));
        a.b_to("k_resched", Cond::EQ);
        a.cmpi(2, static_cast<int>(isa::TrapCause::IRQ_IPI));
        a.b_to("k_resched", Cond::EQ);
        a.b_to("k_fault"); // UNDEF / DATA_ABORT / PREFETCH_ABORT
    }

    void emit_resched() {
        a.func("k_resched", ModTag::KERNEL);
        a.bl("k_lock_acquire");
        a.ldr(0, 4, i64(l.off_state));
        a.cmpi(0, TCB_RUNNING);
        a.b_to("k_schedule", Cond::NE); // killed remotely — do not requeue
        a.movi(0, TCB_RUNNABLE);
        a.str(0, 4, i64(l.off_state));
        a.movi(0, i64(l.tcb_base));
        a.sub(0, 4, 0);
        a.lsri(0, 0, stride_shift); // r0 = tid
        a.bl("k_enqueue");
        a.b_to("k_schedule");
    }

    void emit_schedule() {
        // Lock held on entry. Pops the queue and dispatches, or idles.
        a.func("k_schedule", ModTag::KERNEL);
        auto loop = a.newl(), idle = a.newl();
        a.bind(loop);
        lg(1, l.runq_head);
        lg(3, l.runq_tail);
        a.cmp(1, 3);
        a.b(Cond::EQ, idle);
        a.andi(3, 1, kRunqCap - 1);
        a.movi(2, i64(l.runq_base));
        a.ldr_word_idx(5, 2, 3); // r5 = tid
        a.addi(1, 1, 1);
        sg(l.runq_head, 1, 0);
        a.lsli(4, 5, stride_shift);
        a.movi(1, i64(l.tcb_base));
        a.add(4, 4, 1); // r4 = tcb
        a.ldr(1, 4, i64(l.off_state));
        a.cmpi(1, TCB_RUNNABLE);
        a.b(Cond::NE, loop); // stale entry (killed / already running)
        a.movi(1, TCB_RUNNING);
        a.str(1, 4, i64(l.off_state));
        a.sysrd(1, SysReg::CORE_ID);
        a.movi(2, i64(l.current_base));
        a.addi(3, 5, 1);
        a.str_word_idx(3, 2, 1); // CURRENT[core] = tid+1
        a.syswr(SysReg::TLS, 4);
        a.ldr(1, 4, i64(l.off_proc));
        a.syswr(SysReg::CURPROC, 1);
        a.movi(1, cfg.quantum);
        a.syswr(SysReg::TIMER, 1);
        a.bl("k_lock_release");
        a.b_to("k_restore_eret");

        a.bind(idle);
        a.sysrd(1, SysReg::CORE_ID);
        a.movi(2, i64(l.current_base));
        a.movi(3, 0);
        a.str_word_idx(3, 2, 1); // CURRENT[core] = 0
        a.movi(1, 0);
        a.syswr(SysReg::TIMER, 1);
        a.bl("k_lock_release");
        a.wfi();
        a.bl("k_lock_acquire");
        a.b(loop);
    }

    void emit_restore_eret() {
        // r4 = TCB of the thread to resume; lock released.
        a.func("k_restore_eret", ModTag::KERNEL);
        a.ldr(1, 4, i64(l.off_ctx_flags));
        a.syswr(SysReg::FLAGS, 1);
        a.ldr(1, 4, i64(l.off_ctx_pc));
        a.syswr(SysReg::EPC, 1);
        a.ldr(1, 4, i64(l.off_ctx_sp));
        a.syswr(SysReg::USP, 1);
        if (v7) {
            // r4 is itself restored by the LDM, so address the last two
            // slots relative to the surviving base register r0.
            a.addi(0, 4, i64(l.off_ctx_gpr + 2 * W));
            a.ldm(0, 0x5FFC, false); // r2..r12, lr -> slots 2..13
            a.ldr(1, 0, -static_cast<std::int64_t>(W));
            a.ldr(0, 0, -2 * static_cast<std::int64_t>(W));
        } else {
            a.mov(0, 4);
            for (unsigned r = 2; r + 1 <= 29; r += 2)
                a.ldp(static_cast<Reg>(r), static_cast<Reg>(r + 1), 0,
                      i64(l.off_ctx_gpr + r * W));
            a.ldr(30, 0, i64(l.off_ctx_gpr + 30 * W));
            a.ldr(1, 0, A(1));
            a.ldr(0, 0, A(0));
        }
        a.eret();
    }

    void emit_ret() {
        // r0 = syscall return value; r4 = TCB. No lock held.
        a.func("k_ret", ModTag::KERNEL);
        a.str(0, 4, A(0));
        a.b_to("k_restore_eret");
    }

    // ---------------- fault / kill ----------------
    void emit_fault() {
        a.func("k_fault", ModTag::KERNEL);
        a.bl("k_lock_acquire");
        a.func("k_fault_locked", ModTag::KERNEL);
        auto loop = a.newl(), next = a.newl(), done = a.newl(), cont = a.newl();
        a.ldr(5, 4, i64(l.off_proc)); // r5 = victim proc
        a.movi(6, i64(l.tcb_base));
        a.movi(7, 0);
        a.bind(loop);
        lg(0, l.nthreads);
        a.cmp(7, 0);
        a.b(Cond::GE, done);
        a.ldr(1, 6, i64(l.off_state));
        a.cmpi(1, TCB_FREE);
        a.b(Cond::EQ, next);
        a.cmpi(1, TCB_DEAD);
        a.b(Cond::EQ, next);
        a.ldr(2, 6, i64(l.off_proc));
        a.cmp(2, 5);
        a.b(Cond::NE, next);
        a.movi(1, TCB_DEAD);
        a.str(1, 6, i64(l.off_state));
        a.bind(next);
        a.addi(7, 7, 1);
        a.addi(6, 6, i64(l.tcb_stride));
        a.b(loop);
        a.bind(done);
        lg(3, l.exit_or);
        a.orri(3, 3, kKilledExitCode);
        sg(l.exit_or, 3, 2);
        a.lsli(0, 5, 8);
        a.orri(0, 0, kKilledExitCode);
        a.syswr(SysReg::PROC_EXIT, 0);
        lg(3, l.live_procs);
        a.subi(3, 3, 1);
        sg(l.live_procs, 3, 2);
        a.cmpi(3, 0);
        a.b(Cond::NE, cont);
        lg(3, l.exit_or);
        a.syswr(SysReg::SHUTDOWN, 3);
        a.bind(cont);
        a.b_to("k_schedule");
    }

    // ---------------- syscall dispatch ----------------
    void emit_svc_dispatch() {
        a.func("k_svc", ModTag::KERNEL);
        a.sysrd(0, SysReg::CAUSE);
        a.lsri(0, 0, 8);
        auto match = [&](unsigned num, const char* handler) {
            a.cmpi(0, num);
            a.b_to(handler, Cond::EQ);
        };
        match(SYS_EXIT, "k_sys_exit");
        match(SYS_WRITE, "k_sys_write");
        match(SYS_BRK, "k_sys_brk");
        match(SYS_THREAD_CREATE, "k_sys_thread_create");
        match(SYS_THREAD_EXIT, "k_sys_thread_exit");
        match(SYS_THREAD_JOIN, "k_sys_thread_join");
        match(SYS_FUTEX_WAIT, "k_sys_futex_wait");
        match(SYS_FUTEX_WAKE, "k_sys_futex_wake");
        match(SYS_YIELD, "k_sys_yield");
        match(SYS_CHAN_SEND, "k_sys_chan_send");
        match(SYS_CHAN_RECV, "k_sys_chan_recv");
        a.b_to("k_fault"); // unknown syscall
    }

    /// range check [start, start+len) within user region; else kill.
    /// Assumes lock NOT held when `locked` is false.
    void emit_uvalid(Reg start, Reg len, bool locked) {
        const char* target = locked ? "k_fault_locked" : "k_fault";
        a.movi(0, i64(isa::layout::kUserBase));
        a.cmp(start, 0);
        a.b_to(target, Cond::CC);
        a.add(0, start, len);
        a.movi(1, i64(user_end));
        a.cmp(0, 1);
        a.b_to(target, Cond::HI);
    }

    /// rewind saved PC by one instruction (restartable blocking syscalls)
    void emit_restart_pc() {
        a.ldr(0, 4, i64(l.off_ctx_pc));
        a.subi(0, 0, isa::kInstrBytes);
        a.str(0, 4, i64(l.off_ctx_pc));
    }

    void emit_block(unsigned reason, Reg key_reg) {
        a.movi(0, TCB_BLOCKED);
        a.str(0, 4, i64(l.off_state));
        a.movi(0, reason);
        a.str(0, 4, i64(l.off_reason));
        a.str(key_reg, 4, i64(l.off_wait_key));
        emit_restart_pc();
        a.b_to("k_schedule");
    }

    // ---------------- handlers ----------------
    void emit_write() {
        a.func("k_sys_write", ModTag::KERNEL);
        auto loop = a.newl(), done = a.newl();
        a.ldr(2, 4, A(0)); // buf
        a.ldr(3, 4, A(1)); // len
        emit_uvalid(2, 3, false);
        a.bind(loop);
        a.cmpi(3, 0);
        a.b(Cond::EQ, done);
        a.ldrb(1, 2, 0);
        a.syswr(SysReg::CONSOLE, 1);
        a.addi(2, 2, 1);
        a.subi(3, 3, 1);
        a.b(loop);
        a.bind(done);
        a.movi(0, 0);
        a.b_to("k_ret");
    }

    void emit_exit() {
        a.func("k_sys_exit", ModTag::KERNEL);
        auto cont = a.newl();
        a.bl("k_lock_acquire");
        a.movi(0, TCB_DEAD);
        a.str(0, 4, i64(l.off_state));
        a.ldr(1, 4, A(0)); // code
        a.str(1, 4, i64(l.off_exitcode));
        lg(3, l.exit_or);
        a.orr(3, 3, 1);
        sg(l.exit_or, 3, 2);
        a.ldr(0, 4, i64(l.off_proc));
        a.lsli(0, 0, 8);
        a.andi(1, 1, 0xFF);
        a.orr(0, 0, 1);
        a.syswr(SysReg::PROC_EXIT, 0);
        lg(3, l.live_procs);
        a.subi(3, 3, 1);
        sg(l.live_procs, 3, 2);
        a.cmpi(3, 0);
        a.b(Cond::NE, cont);
        lg(3, l.exit_or);
        a.syswr(SysReg::SHUTDOWN, 3);
        a.bind(cont);
        a.b_to("k_schedule");
    }

    void emit_brk() {
        a.func("k_sys_brk", ModTag::KERNEL);
        auto query = a.newl(), fail = a.newl();
        a.bl("k_lock_acquire");
        a.ldr(1, 4, A(0)); // new top
        a.sysrd(2, SysReg::CURPROC);
        a.movi(3, i64(l.proc_heap_top));
        a.lsli(0, 2, v7 ? 2 : 3);
        a.add(6, 3, 0); // r6 = &heap_top[proc]
        a.cmpi(1, 0);
        a.b(Cond::NE, query); // fallthrough below is the set path; see bind
        // query path (k_lock_release clobbers r0/r1 — stage results in r5)
        a.ldr(5, 6, 0);
        a.bl("k_lock_release");
        a.mov(0, 5);
        a.b_to("k_ret");
        a.bind(query); // the "set" path
        // base <= new_top <= brk_limit
        a.movi(3, i64(l.proc_heap_base));
        a.lsli(0, 2, v7 ? 2 : 3);
        a.add(3, 3, 0);
        a.ldr(0, 3, 0); // heap base
        a.cmp(1, 0);
        a.b(Cond::CC, fail);
        a.movi(0, i64(brk_limit));
        a.cmp(1, 0);
        a.b(Cond::HI, fail);
        a.str(1, 6, 0);
        a.syswr(SysReg::MAP_BRK, 1);
        a.mov(5, 1);
        a.bl("k_lock_release");
        a.mov(0, 5);
        a.b_to("k_ret");
        a.bind(fail);
        a.bl("k_lock_release");
        a.movi(0, 0);
        a.b_to("k_ret");
    }

    void emit_thread_create() {
        a.func("k_sys_thread_create", ModTag::KERNEL);
        auto scan = a.newl(), found = a.newl(), nofree = a.newl(), skipn = a.newl();
        a.bl("k_lock_acquire");
        a.movi(6, i64(l.tcb_base));
        a.movi(7, 0);
        a.bind(scan);
        a.cmpi(7, kMaxThreads);
        a.b(Cond::GE, nofree);
        a.ldr(0, 6, i64(l.off_state));
        a.cmpi(0, TCB_FREE);
        a.b(Cond::EQ, found);
        a.addi(7, 7, 1);
        a.addi(6, 6, i64(l.tcb_stride));
        a.b(scan);
        a.bind(found);
        a.movi(0, TCB_RUNNABLE);
        a.str(0, 6, i64(l.off_state));
        a.sysrd(0, SysReg::CURPROC);
        a.str(0, 6, i64(l.off_proc));
        a.movi(0, 0);
        a.str(0, 6, i64(l.off_joiner));
        a.str(0, 6, i64(l.off_reason));
        a.str(0, 6, i64(l.off_ctx_flags));
        a.str(0, 6, i64(l.off_ctx_gpr + lr_slot() * W));
        a.ldr(0, 4, A(0));
        a.str(0, 6, i64(l.off_ctx_pc));
        a.ldr(0, 4, A(1));
        a.str(0, 6, i64(l.off_ctx_sp));
        a.ldr(0, 4, A(2));
        a.str(0, 6, i64(l.off_ctx_gpr)); // arg -> r0
        lg(2, l.nthreads);
        a.addi(3, 7, 1);
        a.cmp(2, 3);
        a.b(Cond::GE, skipn);
        sg(l.nthreads, 3, 1);
        a.bind(skipn);
        a.mov(0, 7);
        a.bl("k_enqueue");
        a.bl("k_ipi_idle");
        a.bl("k_lock_release");
        a.mov(0, 7);
        a.b_to("k_ret");
        a.bind(nofree);
        a.bl("k_lock_release");
        a.movi(0, -1);
        a.b_to("k_ret");
    }

    void emit_thread_exit() {
        a.func("k_sys_thread_exit", ModTag::KERNEL);
        auto sched = a.newl();
        a.bl("k_lock_acquire");
        a.movi(0, TCB_DEAD);
        a.str(0, 4, i64(l.off_state));
        a.ldr(1, 4, A(0));
        a.str(1, 4, i64(l.off_exitcode));
        a.ldr(6, 4, i64(l.off_joiner));
        a.cmpi(6, 0);
        a.b(Cond::EQ, sched);
        a.subi(6, 6, 1); // joiner tid
        a.lsli(7, 6, stride_shift);
        a.movi(1, i64(l.tcb_base));
        a.add(7, 7, 1);
        a.ldr(0, 7, i64(l.off_state));
        a.cmpi(0, TCB_BLOCKED);
        a.b(Cond::NE, sched);
        a.movi(0, TCB_RUNNABLE);
        a.str(0, 7, i64(l.off_state));
        a.movi(0, BLK_NONE);
        a.str(0, 7, i64(l.off_reason));
        a.mov(0, 6);
        a.bl("k_enqueue");
        a.bl("k_ipi_idle");
        a.bind(sched);
        a.b_to("k_schedule");
    }

    void emit_thread_join() {
        a.func("k_sys_thread_join", ModTag::KERNEL);
        auto block = a.newl(), bad = a.newl();
        a.bl("k_lock_acquire");
        a.ldr(6, 4, A(0)); // target tid
        a.cmpi(6, kMaxThreads);
        a.b(Cond::CS, bad);
        a.lsli(7, 6, stride_shift);
        a.movi(1, i64(l.tcb_base));
        a.add(7, 7, 1);
        a.ldr(0, 7, i64(l.off_state));
        a.cmpi(0, TCB_DEAD);
        a.b(Cond::NE, block);
        a.ldr(5, 7, i64(l.off_exitcode));
        a.bl("k_lock_release");
        a.mov(0, 5);
        a.b_to("k_ret");
        a.bind(block);
        // register as joiner: joiner = mytid + 1
        a.movi(1, i64(l.tcb_base));
        a.sub(2, 4, 1);
        a.lsri(2, 2, stride_shift);
        a.addi(2, 2, 1);
        a.str(2, 7, i64(l.off_joiner));
        emit_block(BLK_JOIN, 6);
        a.bind(bad);
        a.bl("k_lock_release");
        a.movi(0, -1);
        a.b_to("k_ret");
    }

    void emit_futex_wait() {
        a.func("k_sys_futex_wait", ModTag::KERNEL);
        auto block = a.newl();
        a.bl("k_lock_acquire");
        a.ldr(6, 4, A(0)); // addr
        // word-aligned user address
        a.andi(0, 6, W - 1);
        a.cmpi(0, 0);
        a.b_to("k_fault_locked", Cond::NE);
        a.movi(0, i64(isa::layout::kUserBase));
        a.cmp(6, 0);
        a.b_to("k_fault_locked", Cond::CC);
        a.movi(0, i64(user_end - W));
        a.cmp(6, 0);
        a.b_to("k_fault_locked", Cond::HI);
        a.ldr(1, 6, 0); // current value
        a.ldr(2, 4, A(1));
        a.cmp(1, 2);
        a.b(Cond::EQ, block);
        a.bl("k_lock_release");
        a.movi(0, 1);
        a.b_to("k_ret");
        a.bind(block);
        emit_block(BLK_FUTEX, 6);
    }

    void emit_futex_wake() {
        a.func("k_sys_futex_wake", ModTag::KERNEL);
        auto loop = a.newl(), next = a.newl(), done = a.newl(), fin = a.newl();
        a.bl("k_lock_acquire");
        a.ldr(6, 4, A(0)); // addr
        a.ldr(8, 4, A(1)); // nmax
        a.movi(5, 0);      // count
        a.movi(9, 0);      // tid
        a.movi(7, i64(l.tcb_base));
        a.bind(loop);
        lg(0, l.nthreads);
        a.cmp(9, 0);
        a.b(Cond::GE, done);
        a.cmp(5, 8);
        a.b(Cond::GE, done);
        a.ldr(0, 7, i64(l.off_state));
        a.cmpi(0, TCB_BLOCKED);
        a.b(Cond::NE, next);
        a.ldr(0, 7, i64(l.off_reason));
        a.cmpi(0, BLK_FUTEX);
        a.b(Cond::NE, next);
        a.ldr(0, 7, i64(l.off_wait_key));
        a.cmp(0, 6);
        a.b(Cond::NE, next);
        a.ldr(0, 7, i64(l.off_proc));
        a.sysrd(1, SysReg::CURPROC);
        a.cmp(0, 1);
        a.b(Cond::NE, next);
        a.movi(0, TCB_RUNNABLE);
        a.str(0, 7, i64(l.off_state));
        a.movi(0, BLK_NONE);
        a.str(0, 7, i64(l.off_reason));
        a.mov(0, 9);
        a.bl("k_enqueue");
        a.addi(5, 5, 1);
        a.bind(next);
        a.addi(9, 9, 1);
        a.addi(7, 7, i64(l.tcb_stride));
        a.b(loop);
        a.bind(done);
        a.cmpi(5, 0);
        a.b(Cond::EQ, fin);
        a.bl("k_ipi_idle");
        a.bind(fin);
        a.bl("k_lock_release");
        a.mov(0, 5);
        a.b_to("k_ret");
    }

    void emit_yield() {
        a.func("k_sys_yield", ModTag::KERNEL);
        a.movi(0, 0);
        a.str(0, 4, A(0)); // return 0
        a.b_to("k_resched");
    }

    void emit_chan_send() {
        a.func("k_sys_chan_send", ModTag::KERNEL);
        auto room = a.newl(), cloop = a.newl(), cdone = a.newl();
        a.bl("k_lock_acquire");
        a.ldr(6, 4, A(0)); // chan
        a.cmpi(6, l.nchan);
        a.b_to("k_fault_locked", Cond::CS);
        a.ldr(7, 4, A(1)); // buf
        a.ldr(8, 4, A(2)); // len
        a.cmpi(8, i64(kChanMsgMax));
        a.b_to("k_fault_locked", Cond::HI);
        a.andi(0, 8, 3);
        a.cmpi(0, 0);
        a.b_to("k_fault_locked", Cond::NE);
        emit_uvalid_locked(7, 8);
        // r9 = channel record
        a.movi(0, i64(l.chan_stride));
        a.mul(9, 6, 0);
        a.movi(0, i64(l.chan_base));
        a.add(9, 9, 0);
        a.ldr(0, 9, i64(l.choff_head));
        a.ldr(1, 9, i64(l.choff_tail));
        a.sub(2, 1, 0);
        a.cmpi(2, i64(kChanSlots));
        a.b(Cond::CC, room);
        emit_block(BLK_CHAN_SEND, 6);
        a.bind(room);
        // slot = ch + ring + (tail & mask) * slot_bytes
        a.andi(2, 1, i64(kChanSlots - 1));
        a.lsli(2, 2, 8); // slot bytes = 256
        a.add(2, 2, 9);
        a.addi(2, 2, i64(l.choff_ring));
        a.str(8, 2, 0); // length word
        a.addi(2, 2, 8);
        a.lsri(3, 8, 2); // 32-bit word count
        a.bind(cloop);
        a.cmpi(3, 0);
        a.b(Cond::EQ, cdone);
        ld32(0, 7, 0);
        st32(0, 2, 0);
        a.addi(7, 7, 4);
        a.addi(2, 2, 4);
        a.subi(3, 3, 1);
        a.b(cloop);
        a.bind(cdone);
        a.addi(1, 1, 1);
        a.str(1, 9, i64(l.choff_tail));
        a.movi(0, BLK_CHAN_RECV);
        a.mov(1, 6);
        a.bl("k_wake_scan");
        a.bl("k_lock_release");
        a.movi(0, 0);
        a.b_to("k_ret");
    }

    void emit_chan_recv() {
        a.func("k_sys_chan_recv", ModTag::KERNEL);
        auto avail = a.newl(), trunc = a.newl(), cloop = a.newl(), cdone = a.newl();
        a.bl("k_lock_acquire");
        a.ldr(6, 4, A(0)); // chan
        a.cmpi(6, l.nchan);
        a.b_to("k_fault_locked", Cond::CS);
        a.ldr(7, 4, A(1)); // buf
        a.ldr(8, 4, A(2)); // maxlen
        emit_uvalid_locked(7, 8);
        a.movi(0, i64(l.chan_stride));
        a.mul(9, 6, 0);
        a.movi(0, i64(l.chan_base));
        a.add(9, 9, 0);
        a.ldr(0, 9, i64(l.choff_head));
        a.ldr(1, 9, i64(l.choff_tail));
        a.cmp(0, 1);
        a.b(Cond::NE, avail);
        emit_block(BLK_CHAN_RECV, 6);
        a.bind(avail);
        a.andi(2, 0, i64(kChanSlots - 1));
        a.lsli(2, 2, 8);
        a.add(2, 2, 9);
        a.addi(2, 2, i64(l.choff_ring));
        a.ldr(3, 2, 0); // len
        a.cmp(3, 8);
        a.b(Cond::LS, trunc);
        a.mov(3, 8);
        a.bind(trunc);
        a.mov(12, 3); // saved return length
        a.addi(2, 2, 8);
        a.lsri(3, 3, 2);
        a.bind(cloop);
        a.cmpi(3, 0);
        a.b(Cond::EQ, cdone);
        ld32(0, 2, 0);
        st32(0, 7, 0);
        a.addi(2, 2, 4);
        a.addi(7, 7, 4);
        a.subi(3, 3, 1);
        a.b(cloop);
        a.bind(cdone);
        a.ldr(0, 9, i64(l.choff_head));
        a.addi(0, 0, 1);
        a.str(0, 9, i64(l.choff_head));
        a.movi(0, BLK_CHAN_SEND);
        a.mov(1, 6);
        a.bl("k_wake_scan");
        a.bl("k_lock_release");
        a.mov(0, 12);
        a.b_to("k_ret");
    }

    /// uvalid variant for handlers that already hold the lock.
    void emit_uvalid_locked(Reg start, Reg len) {
        a.movi(0, i64(isa::layout::kUserBase));
        a.cmp(start, 0);
        a.b_to("k_fault_locked", Cond::CC);
        a.add(0, start, len);
        a.movi(1, i64(user_end));
        a.cmp(0, 1);
        a.b_to("k_fault_locked", Cond::HI);
    }
};

} // namespace

KLayout build_kernel(Assembler& a, unsigned nprocs, const KernelConfig& cfg) {
    util::check(a.here() == isa::layout::kCodeBase,
                "build_kernel must be called before any other code");
    const KLayout l = KLayout::make(a.profile(), nprocs, cfg.kern_size);
    KernelEmitter(a, l, cfg).emit_all();
    return l;
}

} // namespace serep::os
