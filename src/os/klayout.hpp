// Kernel data-structure layout, shared between the kernel code generator,
// the loader (which seeds TCBs for the main threads), and the tests.
//
// Everything lives in the kernel region [KERN_BASE, KERN_BASE + kern_size):
// globals, run queue, per-process heap bookkeeping, channel rings, the TCB
// table, and per-core kernel stacks at the top.
#pragma once

#include <cstdint>

#include "isa/layout.hpp"
#include "isa/profile.hpp"
#include "os/abi.hpp"

namespace serep::os {

inline constexpr unsigned kMaxThreads = 16;
inline constexpr unsigned kMaxCores = 8;
inline constexpr unsigned kRunqCap = 32; ///< power of two, > kMaxThreads
inline constexpr std::uint64_t kKernStackBytes = 2048;

/// Thread states.
enum TcbState : unsigned {
    TCB_FREE = 0,
    TCB_RUNNABLE = 1,
    TCB_RUNNING = 2,
    TCB_BLOCKED = 3,
    TCB_DEAD = 4,
};

/// Block reasons.
enum BlockReason : unsigned {
    BLK_NONE = 0,
    BLK_FUTEX = 1,
    BLK_JOIN = 2,
    BLK_CHAN_SEND = 3,
    BLK_CHAN_RECV = 4,
};

/// All addresses are guest VAs in the kernel region; field offsets scale
/// with the profile word size W.
struct KLayout {
    unsigned w = 4;          ///< word bytes
    unsigned nprocs = 1;
    unsigned nchan = 1;
    std::uint64_t kern_size = isa::layout::kDefaultKernSize;

    // globals
    std::uint64_t klock = 0;
    std::uint64_t runq_head = 0;
    std::uint64_t runq_tail = 0;
    std::uint64_t live_procs = 0;
    std::uint64_t nthreads = 0;
    std::uint64_t exit_or = 0;
    std::uint64_t current_base = 0;   ///< CURRENT[core], kMaxCores words
    std::uint64_t runq_base = 0;      ///< kRunqCap words
    std::uint64_t proc_heap_base = 0; ///< heap base per proc, nprocs words
    std::uint64_t proc_heap_top = 0;  ///< current brk per proc, nprocs words
    std::uint64_t chan_base = 0;
    std::uint64_t chan_stride = 0;    ///< bytes per channel record
    std::uint64_t tcb_base = 0;
    std::uint64_t tcb_stride = 0;     ///< bytes per TCB (power of two)

    // TCB field byte offsets
    std::uint64_t off_state = 0;
    std::uint64_t off_proc = 0;
    std::uint64_t off_joiner = 0;
    std::uint64_t off_wait_key = 0;
    std::uint64_t off_reason = 0;
    std::uint64_t off_exitcode = 0;
    std::uint64_t off_ctx_flags = 0;
    std::uint64_t off_ctx_pc = 0;
    std::uint64_t off_ctx_sp = 0;
    std::uint64_t off_ctx_gpr = 0;    ///< slot i = saved GPR i (r0..r12,lr / x0..x30)
    unsigned ctx_gpr_slots = 0;       ///< 14 on V7, 31 on V8

    // channel field byte offsets (within a channel record)
    std::uint64_t choff_head = 0;
    std::uint64_t choff_tail = 0;
    std::uint64_t choff_ring = 0;

    std::uint64_t kend = 0; ///< first byte after static kernel data

    std::uint64_t current(unsigned core) const { return current_base + core * w; }
    std::uint64_t runq_slot(unsigned i) const { return runq_base + i * w; }
    std::uint64_t tcb(unsigned tid) const { return tcb_base + tid * tcb_stride; }
    std::uint64_t chan(unsigned id) const { return chan_base + id * chan_stride; }
    std::uint64_t kstack_top(unsigned core) const {
        return isa::layout::kKernBase + kern_size - core * kKernStackBytes;
    }

    static KLayout make(isa::Profile p, unsigned nprocs,
                        std::uint64_t kern_size = isa::layout::kDefaultKernSize);
};

} // namespace serep::os
