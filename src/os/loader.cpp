#include "os/loader.hpp"

#include <cstring>

#include "util/check.hpp"

namespace serep::os {

namespace layout = isa::layout;

namespace {

/// Write one kernel word (host-side poke during boot).
void kpoke(sim::Machine& m, unsigned w, std::uint64_t va, std::uint64_t value) {
    std::memcpy(m.mem().kern_data() + (va - layout::kKernBase), &value, w);
}

} // namespace

sim::Machine boot_machine(std::shared_ptr<const kasm::Image> image,
                          const KLayout& l, const BootConfig& cfg) {
    util::check(cfg.procs >= 1 && cfg.procs <= kMaxThreads, "boot: bad proc count");
    util::check(cfg.procs == l.nprocs, "boot: layout/proc count mismatch");
    util::check(image->user_entry != 0, "boot: image has no user entry");
    util::check(image->kernel_boot != 0 && image->vec_entry != 0,
                "boot: image has no kernel");

    sim::MachineConfig mc;
    mc.cores = cfg.cores;
    mc.procs = cfg.procs;
    mc.user_size = cfg.user_size;
    mc.kern_size = cfg.kern_size;
    mc.profile = cfg.profile;
    sim::Machine m(std::move(image), mc);
    sim::load_image_data(m);

    const unsigned w = l.w;
    kpoke(m, w, l.live_procs, cfg.procs);
    kpoke(m, w, l.nthreads, cfg.procs);
    kpoke(m, w, l.runq_head, 0);
    kpoke(m, w, l.runq_tail, cfg.procs);

    const std::uint64_t heap0 =
        (layout::kUserBase + m.image().udata_size + layout::kPageSize - 1) &
        ~(layout::kPageSize - 1);
    const std::uint64_t stack_top = layout::kUserBase + cfg.user_size - 32;

    for (unsigned p = 0; p < cfg.procs; ++p) {
        kpoke(m, w, l.proc_heap_base + p * w, heap0);
        kpoke(m, w, l.proc_heap_top + p * w, heap0);
        kpoke(m, w, l.runq_slot(p), p);
        const std::uint64_t tcb = l.tcb(p);
        kpoke(m, w, tcb + l.off_state, TCB_RUNNABLE);
        kpoke(m, w, tcb + l.off_proc, p);
        kpoke(m, w, tcb + l.off_ctx_pc, m.image().user_entry);
        kpoke(m, w, tcb + l.off_ctx_sp, stack_top);
        kpoke(m, w, tcb + l.off_ctx_gpr + 0 * w, p);         // rank
        kpoke(m, w, tcb + l.off_ctx_gpr + 1 * w, cfg.procs); // nprocs
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        m.core(c).regs.set_pc(m.image().kernel_boot);
        m.core(c).regs.set_sp(l.kstack_top(c));
    }
    return m;
}

} // namespace serep::os
