// serep — the campaign command-line front end.
//
// The primary interface is declarative: ONE JSON experiment spec names the
// whole pipeline (scenario matrix, fault model, engine knobs, shard
// partitioning, report outputs — see src/exp/spec.hpp and the README's
// "Experiment specs" section):
//
//   serep run spec.json                 whole experiment: plan -> shard/run
//                                       -> merge -> report, with resume
//   serep run spec.json --shard=1/4     one shard of the spec (remote worker)
//   serep plan spec.json                dry run: job list, shard layout,
//                                       estimated work — nothing executes
//
// `run` is resumable: a shard outcome database already on disk whose
// manifest carries this spec's hash is skipped; one with a different hash
// is refused (exit 3) instead of silently blended. Re-running `run` after
// remote workers produced the `--shard` pieces therefore just merges and
// reports. `plan` probes golden lengths once for weighted partitions and
// prints the weight vector so it can be baked into the spec.
//
// The legacy imperative subcommands remain as thin shims that synthesize a
// spec from their flags (exp::spec_from_legacy_cli) and run the same
// driver — their output bytes are unchanged:
//
//   serep campaign [filters] --out=ref          one-process run, merged DB
//   serep campaign --target-ci=0.05 [filters]   confidence-driven sizing
//   serep shard --shard=1 --shards=3 [filters] --out=shard1.jsonl
//   serep shard --weighted ...                  work-weighted fault split
//   serep merge --out=merged shard0.jsonl shard1.jsonl shard2.jsonl
//   serep report [--format=md|csv|json] db1 [db2 ...]
//
// Filters / config (campaign and shard modes, defaults in brackets):
//   --class=S|Mini [S]   --isa=v7|v8   --api=SER|OMP|MPI   --app=EP|CG|...
//   --kind=gpr|fp|mem|cache-tag|cache-data|bus [gpr]
//     (fault target space; fp implies --isa=v8; cache-*/bus strike the
//      uncore — see src/uncore/)
//   --faults=N [100]  --seed=S [0xDAC2018]  --threads=T [2]
//   --engine=cached|switch|trace [cached]  --stride=R [auto]  --no-adaptive
//   --no-checkpoints  --no-delta (full-copy rungs)
// campaign sizing: --target-ci=W (0<W<0.5) --confidence=C [0.95]
//   --ci-batch=N [50] --ci-min=N [20]
//
// Every subcommand audits its flags: an unknown --flag is a usage error
// (exit 2) naming the offender, never a silent no-op.
//
// Prefer --key=value forms for value-carrying flags: a bare `--key value`
// greedily eats the next token, which matters once positional spec/shard-file
// operands follow. Value-less flags (--partial, --weighted, --no-*) are
// declared to the parser and never consume the following operand.
//
// Exit codes (also in --help): 0 success; 2 usage error (bad flags or spec,
// unknown subcommand, filters matching nothing); 3 validation failure
// (shard databases that do not belong together, resume spec-hash mismatch,
// corrupt or incomplete databases); 4 runtime error (I/O, internal failure).
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "exp/driver.hpp"
#include "fleet/fleet.hpp"
#include "stats/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace serep;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitValidation = 3;
constexpr int kExitRuntime = 4;

/// exp::legacy_cli_flags() plus the subcommand's own extras — the audit
/// list always tracks the shared legacy parser.
std::vector<std::string> legacy_flags_plus(
    std::initializer_list<const char*> extra) {
    std::vector<std::string> flags = exp::legacy_cli_flags();
    flags.insert(flags.end(), extra.begin(), extra.end());
    return flags;
}

/// Load a spec file named as the single positional operand after the
/// subcommand. The operand `-` reads the spec from stdin — that is how
/// ssh fleet workers receive it (the controller pipes the spec file in,
/// so remote hosts need no shared filesystem).
exp::ExperimentSpec load_spec_operand(const util::Cli& cli,
                                      const char* subcommand) {
    const auto& pos = cli.positional();
    util::check_usage(pos.size() == 2,
                      std::string(subcommand) +
                          ": give exactly one experiment spec file (serep " +
                          subcommand + " spec.json)");
    std::ostringstream ss;
    if (pos[1] == "-") {
        ss << std::cin.rdbuf();
        util::check_usage(!ss.str().empty(),
                          "spec operand '-' given but stdin is empty");
    } else {
        std::ifstream in(pos[1]);
        util::check_usage(in.good(), "cannot read experiment spec " + pos[1]);
        ss << in.rdbuf();
    }
    return exp::ExperimentSpec::load(ss.str());
}

/// Worker-liveness beacon: `hb <i>` on stderr every `interval` seconds.
/// The fleet controller watches the worker's stderr file grow; any growth
/// counts as a heartbeat, so log lines and hb lines both prove liveness —
/// the beacon matters exactly when a long shard would otherwise be silent.
/// With telemetry on (worker mode enables it), each beat carries a progress
/// snapshot — `hb <i> {"elapsed_s":..,"runs":..,...}` — which the fleet
/// controller parses into its live-progress aggregation and its
/// kill/quarantine diagnostics (fleet::parse_worker_snapshot).
class Heartbeat {
public:
    explicit Heartbeat(double interval) {
        if (interval <= 0) return;
        th_ = std::thread([this, interval] {
            std::unique_lock<std::mutex> lk(m_);
            for (unsigned long long i = 1;; ++i) {
                if (cv_.wait_for(lk, std::chrono::duration<double>(interval),
                                 [this] { return stop_; }))
                    return;
                if (telemetry::enabled())
                    std::fprintf(stderr, "hb %llu %s\n", i,
                                 telemetry::progress_json().c_str());
                else
                    std::fprintf(stderr, "hb %llu\n", i);
                std::fflush(stderr);
            }
        });
    }
    ~Heartbeat() {
        if (!th_.joinable()) return;
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        th_.join();
    }

private:
    std::thread th_;
    std::mutex m_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/// Parse `--shard=K/N` and check it against the spec's declared count.
int parse_shard_selector(const std::string& sel, unsigned spec_shards) {
    const std::size_t slash = sel.find('/');
    util::check_usage(slash != std::string::npos && slash > 0 &&
                          slash + 1 < sel.size(),
                      "--shard must be K/N (e.g. --shard=0/4), got '" + sel +
                          "'");
    char* end = nullptr;
    const unsigned long k = std::strtoul(sel.c_str(), &end, 10);
    util::check_usage(end == sel.c_str() + slash,
                      "--shard: bad shard index in '" + sel + "'");
    const char* nstart = sel.c_str() + slash + 1;
    const unsigned long n = std::strtoul(nstart, &end, 10);
    util::check_usage(end && *end == '\0' && n >= 1,
                      "--shard: bad shard count in '" + sel + "'");
    util::check_usage(
        n == spec_shards,
        "--shard=" + sel + " disagrees with the spec's shard.count=" +
            std::to_string(spec_shards) + " — edit the spec or drop --shard");
    util::check_usage(k < n, "--shard: index " + std::to_string(k) +
                                 " out of range (count " + std::to_string(n) +
                                 ")");
    return static_cast<int>(k);
}

int cmd_run(const util::Cli& cli) {
    cli.require_known({"shard", "prune", "shard-stdout", "heartbeat",
                       "compress", "metrics-out", "trace-out"});
    exp::ExperimentSpec spec = load_spec_operand(cli, "run");
    exp::ExperimentPlan plan(std::move(spec));

    exp::DriverOptions opts;
    const std::string sel = cli.get("shard", "");
    if (!sel.empty())
        opts.only_shard = parse_shard_selector(sel, plan.shard_count());
    const std::string prune = cli.get("prune", "");
    if (prune == "off") {
        opts.prune = exp::PruneMode::Off;
    } else if (prune == "on") {
        opts.prune = exp::PruneMode::On;
    } else if (prune == "verify") {
        opts.prune = exp::PruneMode::Verify;
    } else {
        util::check_usage(prune.empty(),
                          "--prune must be off, on or verify (got '" + prune +
                              "')");
    }
    opts.compress_shards = cli.has("compress");
    opts.metrics_out = cli.get("metrics-out", "");
    opts.trace_out = cli.get("trace-out", "");

    // Worker mode: --shard-stdout streams the one shard's database to
    // stdout (zstd-framed with --compress) instead of writing it next to
    // the spec's outputs. Stdout then carries NOTHING but the payload, so
    // the listing, driver log, and summary all move to stderr.
    const bool worker = cli.has("shard-stdout");
    util::check_usage(!worker || !sel.empty(),
                      "--shard-stdout requires --shard=K/N (a worker streams "
                      "exactly one shard)");
    if (worker) {
        opts.shard_stream = &std::cout;
        opts.log = stderr;
    }
    const double hb = cli.get_double("heartbeat", 0.0);
    util::check_usage(hb >= 0, "--heartbeat must be > 0 seconds");
    // A heartbeating worker turns telemetry on so its beacon carries
    // progress snapshots for the controller — out of band by construction
    // (stderr only; the shard payload bytes never change).
    if (worker && hb > 0) telemetry::set_enabled(true);
    Heartbeat beacon(hb);

    // The dry-run listing doubles as the run preamble. It never probes:
    // a fully-resumed run must stay golden-run-free, so an unbaked
    // weighted cut is probed lazily by the driver — once per process —
    // and only when a shard actually has to execute.
    std::FILE* info = worker ? stderr : stdout;
    std::fputs(plan.listing().c_str(), info);
    const exp::DriverResult res = exp::run_experiment(plan, opts);
    std::fprintf(info, "run: %zu shard(s) executed, %zu resumed%s%s\n",
                 res.shards_run, res.shards_skipped,
                 res.merged ? ", databases merged" : "",
                 res.report_written ? ", reports rendered" : "");
    if (worker) std::cout.flush();
    return kExitOk;
}

int cmd_fleet(const util::Cli& cli) {
    cli.require_known({"backend", "hosts", "workers", "workers-per-host",
                       "heartbeat-interval", "heartbeat-timeout",
                       "max-retries", "no-compress", "serep-exe", "remote-cmd",
                       "kill-shard", "metrics-out", "trace-out"});
    const auto& pos = cli.positional();
    util::check_usage(pos.size() == 2 && pos[1] != "-",
                      "fleet: give exactly one experiment spec FILE (workers "
                      "re-read it, so stdin is not accepted)");
    exp::ExperimentSpec spec = load_spec_operand(cli, "fleet");

    fleet::FleetOptions opts = fleet::fleet_options_from_spec(spec);
    opts.spec_path = pos[1];
    if (cli.has("backend")) opts.backend = cli.get("backend", opts.backend);
    const std::string hosts = cli.get("hosts", "");
    if (!hosts.empty()) {
        opts.hosts.clear();
        std::size_t at = 0;
        while (at <= hosts.size()) {
            const std::size_t comma = hosts.find(',', at);
            opts.hosts.push_back(hosts.substr(
                at, comma == std::string::npos ? std::string::npos
                                               : comma - at));
            if (comma == std::string::npos) break;
            at = comma + 1;
        }
        if (!cli.has("backend")) opts.backend = "ssh";
    }
    if (cli.has("workers")) {
        const std::int64_t w = cli.get_int("workers", 0);
        util::check_usage(w >= 0, "fleet: --workers must be >= 0");
        opts.workers = static_cast<unsigned>(w);
    }
    if (cli.has("workers-per-host")) {
        const std::int64_t w = cli.get_int("workers-per-host", 1);
        util::check_usage(w >= 1, "fleet: --workers-per-host must be >= 1");
        opts.workers_per_host = static_cast<unsigned>(w);
    }
    if (cli.has("heartbeat-interval"))
        opts.heartbeat_interval = cli.get_double("heartbeat-interval", 1.0);
    if (cli.has("heartbeat-timeout"))
        opts.heartbeat_timeout = cli.get_double("heartbeat-timeout", 30.0);
    if (cli.has("max-retries")) {
        const std::int64_t r = cli.get_int("max-retries", 3);
        util::check_usage(r >= 1, "fleet: --max-retries must be >= 1");
        opts.max_retries = static_cast<unsigned>(r);
    }
    if (cli.has("no-compress")) opts.compress = false;
    if (cli.has("serep-exe")) opts.serep_exe = cli.get("serep-exe", "");
    if (cli.has("remote-cmd"))
        opts.remote_cmd = cli.get("remote-cmd", opts.remote_cmd);
    if (cli.has("kill-shard")) {
        // CI/chaos hook: SIGKILL the first attempt at this shard right
        // after launch, proving the reassignment path end to end.
        const std::int64_t k = cli.get_int("kill-shard", -1);
        util::check_usage(k >= 0, "fleet: --kill-shard must be >= 0");
        opts.kill_shard = static_cast<int>(k);
    }
    opts.metrics_out = cli.get("metrics-out", "");
    opts.trace_out = cli.get("trace-out", "");

    exp::ExperimentPlan plan(std::move(spec));
    const fleet::FleetResult res = fleet::run_fleet(plan, opts);
    std::printf("fleet: %zu shard(s) — %zu resumed, %zu launched, "
                "%zu reassigned%s%s\n",
                res.shards_total, res.resumed, res.launched, res.reassigned,
                res.final.merged ? ", databases merged" : "",
                res.final.report_written ? ", reports rendered" : "");
    return kExitOk;
}

int cmd_plan(const util::Cli& cli) {
    cli.require_known({});
    exp::ExperimentSpec spec = load_spec_operand(cli, "plan");
    exp::ExperimentPlan plan(std::move(spec));
    // `plan` is the one place that probes an unbaked weighted cut: the
    // estimate and the printed weights vector are the point of a dry run,
    // and baking that vector into the spec makes every subsequent `run`
    // probe-free.
    if (plan.weighted() && !plan.weights_ready()) plan.weights();
    std::fputs(plan.listing().c_str(), stdout);
    return kExitOk;
}

int cmd_campaign(const util::Cli& cli) {
    cli.require_known(legacy_flags_plus({"target-ci", "confidence", "ci-batch",
                                         "ci-min", "metrics-out",
                                         "trace-out"}));
    exp::ExperimentPlan plan(exp::spec_from_legacy_cli(cli));
    // Legacy semantics: always a fresh single-process run, outputs
    // overwritten, no resume — and byte-identical CSV/JSONL to every serep
    // release since PR 2 (the spec pipeline's direct path is the same
    // BatchRunner streaming).
    exp::DriverOptions opts;
    opts.resume = false;
    opts.direct = true;
    opts.metrics_out = cli.get("metrics-out", "");
    opts.trace_out = cli.get("trace-out", "");
    exp::run_experiment(plan, opts);
    return kExitOk;
}

int cmd_shard(const util::Cli& cli) {
    cli.require_known(
        legacy_flags_plus({"shard", "shards", "weighted", "weights"}));
    const std::int64_t index = cli.get_int("shard", 0);
    const std::int64_t count = cli.get_int("shards", 1);
    util::check_usage(count >= 1 && index >= 0 && index < count,
                      "run_shard: shard index out of range");

    exp::ExperimentSpec spec = exp::spec_from_legacy_cli(cli);
    spec.shards = static_cast<unsigned>(count);
    if (cli.has("weighted")) {
        spec.partition = "weighted";
        // --weights=w0,w1,...: reuse a previously printed probe vector so
        // probing happens once per campaign, not once per shard process.
        const std::string wspec = cli.get("weights", "");
        std::size_t pos = 0;
        while (!wspec.empty() && pos <= wspec.size()) {
            const std::size_t comma = wspec.find(',', pos);
            const std::string tok =
                wspec.substr(pos, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - pos);
            try {
                std::size_t used = 0;
                spec.weights.push_back(std::stod(tok, &used));
                util::check_usage(used == tok.size() && !tok.empty(),
                                  "--weights: bad number '" + tok + "'");
            } catch (const util::UsageError&) {
                throw;
            } catch (const std::exception&) {
                throw util::UsageError("--weights: bad number '" + tok + "'");
            }
            if (comma == std::string::npos) break;
            pos = comma + 1;
        }
    } else {
        util::check_usage(!cli.has("weights"),
                          "--weights only applies with --weighted");
    }

    exp::ExperimentPlan plan(std::move(spec));
    if (cli.has("weighted") && !cli.has("weights")) {
        // Probe and print BEFORE running, so the operator can launch the
        // other N-1 shards with --weights=... while this one executes;
        // the driver below reuses the cached vector (one probe total).
        std::string joined;
        for (double w : plan.weights()) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.0f", w);
            joined += (joined.empty() ? "" : ",") + std::string(buf);
        }
        std::printf("probed weights (pass --weights=%s to the other shards "
                    "to skip probing)\n",
                    joined.c_str());
    }
    exp::DriverOptions opts;
    opts.resume = false; // legacy semantics: always run, overwrite
    opts.only_shard = static_cast<int>(index);
    opts.shard_out =
        cli.get("out", "shard" + std::to_string(index) + ".jsonl");
    exp::run_experiment(plan, opts);
    return kExitOk;
}

int cmd_report(const util::Cli& cli) {
    cli.require_known(
        {"format", "confidence", "top-regs", "out", "partial", "no-inferred"});
    // files[0] == "report". --partial and --no-inferred are declared boolean
    // flags, so they never consume the following database operand.
    std::vector<std::string> files(cli.positional().begin() + 1,
                                   cli.positional().end());
    util::check_usage(!files.empty(),
                      "report: give the database files (shard DBs, campaign "
                      "JSONL, or per-fault CSV) after the 'report' subcommand");
    const double confidence = cli.get_double("confidence", 0.95);
    util::check_usage(confidence > 0 && confidence < 1,
                      "report: --confidence must be in (0, 1)");
    const std::int64_t top_regs = cli.get_int("top-regs", 8);
    util::check_usage(top_regs >= 0, "report: --top-regs must be >= 0");

    stats::OutcomeTally tally;
    tally.set_include_inferred(!cli.has("no-inferred"));
    for (const std::string& file : files) {
        std::ifstream in(file);
        util::check(in.good(), "cannot read database " + file);
        std::ostringstream ss;
        ss << in.rdbuf();
        tally.add_database(ss.str(), file);
    }
    if (tally.inferred_records() > 0) {
        // Provenance note on stderr so report bytes stay comparable across
        // pruned and unpruned campaigns. total_records() counts only what
        // was folded, so add the excluded records back for the "of" total.
        const std::uint64_t ingested =
            tally.total_records() +
            (cli.has("no-inferred") ? tally.inferred_records() : 0);
        std::fprintf(stderr,
                     "report: %llu of %llu records carry inferred outcomes "
                     "(equivalence pruning)%s\n",
                     static_cast<unsigned long long>(tally.inferred_records()),
                     static_cast<unsigned long long>(ingested),
                     cli.has("no-inferred") ? " — excluded (--no-inferred)"
                                            : "");
    }
    if (!tally.shard_cover_complete()) {
        // Rates over a subset of shards are a sample of the campaign, not
        // the campaign; make that an explicit choice, not an accident of a
        // forgotten file (merge hard-fails on the same situation).
        util::check_valid(cli.has("partial"),
                          "report: only " + std::to_string(tally.shards_seen()) +
                              " of " + std::to_string(tally.shard_count()) +
                              " shard databases given — pass --partial to "
                              "report on an incomplete campaign sample");
        std::fprintf(stderr,
                     "report: partial campaign sample (%zu of %u shards)\n",
                     tally.shards_seen(), tally.shard_count());
    }

    stats::ReportOptions opts;
    opts.confidence = confidence;
    opts.top_registers = static_cast<std::size_t>(top_regs);
    const std::string format = cli.get("format", "md");
    if (format == "md") {
        opts.format = stats::ReportOptions::Format::Markdown;
    } else if (format == "csv") {
        opts.format = stats::ReportOptions::Format::Csv;
    } else {
        util::check_usage(format == "json",
                          "unknown --format '" + format + "' (md | csv | json)");
        opts.format = stats::ReportOptions::Format::FigureJson;
    }

    const std::string report = stats::render_report(tally, opts);
    const std::string out = cli.get("out", "");
    if (out.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        std::ofstream os(out);
        util::check(os.good(), "cannot open output file " + out);
        os << report;
        util::check(os.good(), "error writing " + out);
        std::printf("report: %zu databases, %llu records -> %s\n",
                    tally.databases(),
                    static_cast<unsigned long long>(tally.total_records()),
                    out.c_str());
    }
    return kExitOk;
}

int cmd_merge(const util::Cli& cli) {
    cli.require_known({"out"});
    const std::string out = cli.get("out", "merged");
    const auto& files = cli.positional();
    util::check_usage(files.size() >= 2,
                      "merge: give the shard database files "
                      "(after the 'merge' subcommand)");
    std::vector<std::string> dbs;
    for (std::size_t i = 1; i < files.size(); ++i) { // files[0] == "merge"
        std::ifstream in(files[i]);
        util::check(in.good(), "cannot read shard database " + files[i]);
        std::ostringstream ss;
        ss << in.rdbuf();
        dbs.push_back(ss.str());
    }
    std::ofstream csv(out + "_faults.csv");
    std::ofstream jsonl(out + "_campaigns.jsonl");
    std::vector<core::CampaignResult> results;
    try {
        results = orch::merge_shards(dbs, &csv, &jsonl);
    } catch (const util::ValidationError&) {
        throw;
    } catch (const util::Error& e) {
        // Anything merge_shards trips over (unparsable JSON included) means
        // the inputs are not a consistent shard set.
        throw util::ValidationError(e.what());
    }
    std::printf("merge: %zu shard databases, %zu jobs -> %s_faults.csv, "
                "%s_campaigns.jsonl\n",
                dbs.size(), results.size(), out.c_str(), out.c_str());
    return kExitOk;
}

int cmd_version(const util::Cli& cli) {
    cli.require_known({"version"}); // `serep --version` parses as a flag
    const telemetry::BuildInfo bi = telemetry::build_info();
    std::printf("serep %s\n", bi.version.c_str());
    std::printf("compiler: %s (C++%ld)\n", bi.compiler.c_str(),
                bi.cxx_standard);
    std::printf("build: %s\n",
                bi.build_type.empty() ? "unknown" : bi.build_type.c_str());
    std::printf("zstd: %s\n", bi.zstd ? "yes" : "no");
    return kExitOk;
}

/// Shared tail of every subcommand's --help: the exit-code contract.
constexpr const char* kExitContract =
    "\n"
    "exit codes:\n"
    "  0  success\n"
    "  2  usage error (unknown flag, bad value, malformed spec)\n"
    "  3  validation failure (incompatible or corrupt databases, resume\n"
    "     spec-hash mismatch, quarantined poison shards)\n"
    "  4  runtime error (I/O or internal failure)\n";

/// `serep <subcommand> --help`: focused flag reference, one line per flag,
/// ending in the exit-code contract. Golden-tested (tests/golden/help_*.txt)
/// so help drift fails CI. Returns -1 for a mode with no dedicated page.
int help_for(const std::string& mode) {
    static const struct {
        const char* mode;
        const char* text;
    } pages[] = {
        {"run",
         "usage: serep run SPEC.json [flags]\n"
         "\n"
         "Execute the whole experiment the spec declares (golden -> shard/run\n"
         "-> merge -> report), with resume: finished shard DBs matching the\n"
         "spec hash are skipped, mismatches refused. SPEC may be '-' (stdin).\n"
         "\n"
         "flags:\n"
         "  --shard=K/N        run only shard K of the spec's N (remote\n"
         "                     worker); re-running `run SPEC` merges\n"
         "  --prune=off|on|verify  override the spec's equivalence-pruning\n"
         "                     block (verify re-simulates a seeded sample)\n"
         "  --compress         land shard DBs zstd-framed (.jsonl.zst);\n"
         "                     merge/report/resume read both forms\n"
         "  --shard-stdout     worker mode: stream the one shard's DB to\n"
         "                     stdout (requires --shard; listing, log and\n"
         "                     summary move to stderr)\n"
         "  --heartbeat=SECS   emit `hb <i>` on stderr every SECS seconds so\n"
         "                     a fleet controller can tell slow from dead\n"
         "                     (with --shard-stdout the beats carry progress\n"
         "                     snapshots the controller aggregates)\n"
         "  --metrics-out=FILE write a metrics.json telemetry sidecar\n"
         "                     (counters, phase timings, build provenance —\n"
         "                     out of band: output bytes are unchanged)\n"
         "  --trace-out=FILE   write Chrome trace-event JSON of the phase\n"
         "                     spans; load in Perfetto (see docs/telemetry.md)\n"},
        {"plan",
         "usage: serep plan SPEC.json\n"
         "\n"
         "Dry run: spec hash, job ids, shard layout, estimated work; nothing\n"
         "executes. Weighted specs probe golden lengths once and print a\n"
         "bakeable weights line. SPEC may be '-' (stdin).\n"
         "\n"
         "flags: none\n"},
        {"fleet",
         "usage: serep fleet SPEC.json [flags]\n"
         "\n"
         "Distribute the spec's shards across workers, stream their DBs back\n"
         "(zstd-framed), retry/reassign dead workers, then merge + report —\n"
         "byte-identical to `serep run SPEC.json`. Flags override the spec's\n"
         "(hash-neutral) `fleet` block field by field. See docs/fleet.md.\n"
         "\n"
         "flags:\n"
         "  --backend=local-proc|ssh  worker transport [spec, else local-proc]\n"
         "  --hosts=h1,h2,...  ssh destinations (implies --backend=ssh)\n"
         "  --workers=N        concurrent workers; 0 = auto (local-proc:\n"
         "                     min(shards, 8); ssh: hosts x workers-per-host)\n"
         "  --workers-per-host=N   ssh workers per host [1]\n"
         "  --heartbeat-interval=SECS  worker `hb` period [1]\n"
         "  --heartbeat-timeout=SECS   stderr silence -> presumed dead [30]\n"
         "  --max-retries=N    attempts per shard before quarantine [3]\n"
         "  --no-compress      stream/land plain JSONL instead of .jsonl.zst\n"
         "  --serep-exe=PATH   local worker binary [this binary]\n"
         "  --remote-cmd=CMD   serep spelling on ssh hosts [serep]\n"
         "  --kill-shard=K     chaos hook: SIGKILL shard K's first attempt\n"
         "                     right after launch (CI reassignment gate)\n"
         "  --metrics-out=FILE write one merged fleet metrics.json (controller\n"
         "                     counters + aggregated worker snapshots)\n"
         "  --trace-out=FILE   write Chrome trace-event JSON of the\n"
         "                     controller's phase spans (Perfetto)\n"},
        {"campaign",
         "usage: serep campaign [filters] [--out=PREFIX]\n"
         "\n"
         "Legacy shim: run the (filtered) campaign in one process, outputs\n"
         "overwritten, no resume — synthesizes a spec and drives the same\n"
         "pipeline as `serep run`, byte-identical outputs.\n"
         "\n"
         "filters / config (defaults in brackets):\n"
         "  --class=S|Mini|W [S]   --isa=v7|v8   --api=SER|OMP|MPI   --app=EP|...\n"
         "  --kind=gpr|fp|mem|cache-tag|cache-data|bus [gpr]\n"
         "                     fault targets (fp implies --isa=v8; cache-*/\n"
         "                     bus strike the uncore and cannot be pruned)\n"
         "  --faults=N [100]  --seed=S [0xDAC2018]  --threads=T [2]\n"
         "  --engine=cached|switch|trace [cached]  --stride=R [auto]\n"
         "  --no-adaptive  --no-checkpoints  --no-delta\n"
         "sizing:\n"
         "  --target-ci=W      stop each scenario once every outcome rate's\n"
         "                     CI half-width <= W (0 < W < 0.5)\n"
         "  --confidence=C [0.95]  --ci-batch=N [50]  --ci-min=N [20]\n"
         "telemetry:\n"
         "  --metrics-out=FILE  --trace-out=FILE   as in `serep run --help`\n"},
        {"shard",
         "usage: serep shard --shard=I --shards=N [filters] --out=FILE\n"
         "\n"
         "Legacy shim: run one 1-of-N slice to a shard database. Accepts the\n"
         "same filters/config as `serep campaign` (see `serep campaign\n"
         "--help`), plus:\n"
         "\n"
         "flags:\n"
         "  --shard=I --shards=N   which slice [0/1]\n"
         "  --weighted         equal-work split by golden-run length\n"
         "  --weights=w0,w1,...    reuse a printed probe vector (skip probing)\n"
         "  --out=FILE         shard database path [shardI.jsonl]\n"},
        {"merge",
         "usage: serep merge --out=PREFIX DB1 DB2 [...]\n"
         "\n"
         "Merge shard databases into the unsharded PREFIX_faults.csv and\n"
         "PREFIX_campaigns.jsonl. Inputs are config-hash + partition checked\n"
         "against each other; every fault must appear in exactly one input.\n"
         "Plain .jsonl and zstd-framed .jsonl.zst inputs may be mixed.\n"
         "\n"
         "flags:\n"
         "  --out=PREFIX       output prefix [merged]\n"},
        {"report",
         "usage: serep report [flags] DB1 [DB2 ...]\n"
         "\n"
         "Outcome-rate tables + confidence intervals from databases (shard\n"
         "DBs — plain or .zst — campaign JSONL, or per-fault CSV, auto-\n"
         "detected). Mixing a shard set with its own merged DB is refused.\n"
         "\n"
         "flags:\n"
         "  --format=md|csv|json [md]  report format\n"
         "  --confidence=C [0.95]      CI level (0 < C < 1)\n"
         "  --top-regs=N [8]   rows in the per-register table\n"
         "  --out=FILE         write the report here [stdout]\n"
         "  --partial          allow an incomplete shard cover (rates are a\n"
         "                     sample of the campaign — e.g. mid-fleet)\n"
         "  --no-inferred      tally only simulated records, dropping\n"
         "                     pruning-inferred outcomes\n"},
        {"version",
         "usage: serep version   (or: serep --version)\n"
         "\n"
         "Print build provenance: serep release, compiler and C++ standard,\n"
         "CMake build type, and whether libzstd was linked. The same facts\n"
         "are embedded in every telemetry metrics.json provenance block.\n"
         "\n"
         "flags: none\n"},
    };
    for (const auto& p : pages) {
        if (mode == p.mode) {
            std::fputs(p.text, stdout);
            std::fputs(kExitContract, stdout);
            return kExitOk;
        }
    }
    return -1;
}

int usage(std::FILE* to) {
    std::fprintf(
        to,
        "usage: serep run|plan|fleet|campaign|shard|merge|report|version "
        "[--key=value ...]\n"
        "  run SPEC.json       execute the whole experiment the spec declares\n"
        "                      (golden -> shard/run -> merge -> report), with\n"
        "                      resume: finished shard DBs matching the spec\n"
        "                      hash are skipped, mismatches refused\n"
        "  run SPEC --shard=K/N   run one shard of the spec (remote worker);\n"
        "                      re-running `run SPEC` merges gathered shards\n"
        "  run SPEC --prune=off|on|verify   override the spec's equivalence-\n"
        "                      pruning block: on simulates one representative\n"
        "                      per fault-equivalence class and infers the\n"
        "                      rest (records flagged \"inferred\"); verify\n"
        "                      additionally re-simulates a seeded sample of\n"
        "                      inferred faults and fails on any mismatch\n"
        "  plan SPEC.json      dry run: spec hash, job ids, shard layout,\n"
        "                      estimated work; weighted specs probe golden\n"
        "                      lengths once and print a bakeable weights line\n"
        "  fleet SPEC.json     distribute the spec's shards across workers\n"
        "                      (--backend=local-proc|ssh --hosts=h1,h2,...),\n"
        "                      stream shard DBs back zstd-framed, retry dead\n"
        "                      workers, merge + report byte-identically to\n"
        "                      `serep run` — see `serep fleet --help`\n"
        "  campaign  run the (filtered) campaign in-process (legacy shim)\n"
        "  shard     run one 1-of-N slice to a shard database (legacy shim)\n"
        "  merge     merge shard databases into the unsharded CSV/JSONL\n"
        "  report    outcome-rate tables + confidence intervals from DBs\n"
        "  version   build provenance (compiler, build type, libzstd)\n"
        "\n"
        "telemetry (run / campaign / fleet): --metrics-out=FILE writes a\n"
        "  metrics.json sidecar (counters, phase timings, provenance) and\n"
        "  --trace-out=FILE a Perfetto-loadable Chrome trace of the phase\n"
        "  spans — both strictly out of band: outcome databases and reports\n"
        "  are byte-identical with or without them (see docs/telemetry.md)\n"
        "\n"
        "campaign / shard options (defaults in brackets):\n"
        "  --class=S|Mini|W [S]   --isa=v7|v8   --api=SER|OMP|MPI   --app=EP|...\n"
        "  --kind=gpr|fp|mem|cache-tag|cache-data|bus [gpr]\n"
        "                           fault targets: integer registers, FP\n"
        "                           registers (v8 only), data memory\n"
        "                           including the guest text mirror, or the\n"
        "                           uncore spaces — cache tag arrays, cache\n"
        "                           data arrays, core<->memory bus transfers\n"
        "                           (uncore kinds cannot be pruned)\n"
        "  --faults=N [100]  --seed=S [0xDAC2018]  --threads=T [2]\n"
        "  --engine=cached|switch|trace [cached]  execution engine (bit-\n"
        "                           identical outcomes; switch is the legacy\n"
        "                           reference, trace the superblock engine)\n"
        "  --stride=R [auto]  --no-adaptive  --no-checkpoints  --no-delta\n"
        "campaign sizing: --target-ci=W  stop each scenario once every\n"
        "                           outcome rate's CI half-width <= W; the\n"
        "                           injected set is a stable content-id\n"
        "                           prefix of the fixed --faults campaign\n"
        "  --confidence=C [0.95]  --ci-batch=N [50]  --ci-min=N [20]\n"
        "shard options: --shard=I --shards=N [0/1]\n"
        "  --weighted  equal-work split by golden-run length: each shard\n"
        "              runs goldens/ladders only for the scenarios it owns\n"
        "  --weights=w0,w1,...  reuse a printed probe vector (skip probing)\n"
        "merge options: --out=PREFIX, then the shard database files\n"
        "report options: --format=md|csv|json [md]  --confidence=C [0.95]\n"
        "  --top-regs=N [8]  --out=FILE [stdout]  --partial (allow an\n"
        "  incomplete shard cover)  --no-inferred (tally only simulated\n"
        "  records, dropping pruning-inferred outcomes), then the database\n"
        "  files. Value-less flags like --partial are declared and never\n"
        "  consume the following operand (fixed; no --partial=1 needed)\n"
        "  (shard DBs, campaign JSONL, and per-fault CSV are auto-detected;\n"
        "   shard DBs are config-hash + partition checked against each other,\n"
        "   and mixing a shard set with its own merged DB is refused — every\n"
        "   fault must appear in exactly one input)\n"
        "\n"
        "every subcommand rejects flags it does not know (exit 2, naming the\n"
        "flag), and documents itself: `serep <subcommand> --help`; see\n"
        "docs/spec-schema.md for the spec JSON schema and docs/fleet.md for\n"
        "distributed campaigns\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  2  usage error (bad flags or spec, unknown subcommand, filters\n"
        "     match nothing)\n"
        "  3  validation failure (incompatible or corrupt databases, resume\n"
        "     spec-hash mismatch)\n"
        "  4  runtime error (I/O or internal failure)\n");
    return to == stdout ? kExitOk : kExitUsage;
}

} // namespace

int main(int argc, char** argv) {
    // Declaring the value-less flags up front keeps a bare `--partial` (etc.)
    // from greedily eating the next positional operand — see util::Cli.
    util::Cli cli(argc, argv,
                  {"help", "partial", "weighted", "no-adaptive",
                   "no-checkpoints", "no-delta", "no-inferred",
                   "shard-stdout", "compress", "no-compress", "version"});
    const std::string mode =
        cli.positional().empty() ? "" : cli.positional().front();
    if (cli.has("help")) {
        const int paged = help_for(mode);
        return paged >= 0 ? paged : usage(stdout);
    }
    try {
        if (mode == "version" || (mode.empty() && cli.has("version")))
            return cmd_version(cli);
        if (mode == "run") return cmd_run(cli);
        if (mode == "plan") return cmd_plan(cli);
        if (mode == "fleet") return cmd_fleet(cli);
        if (mode == "campaign") return cmd_campaign(cli);
        if (mode == "shard") return cmd_shard(cli);
        if (mode == "merge") return cmd_merge(cli);
        if (mode == "report") return cmd_report(cli);
    } catch (const util::UsageError& e) {
        std::fprintf(stderr, "serep %s: %s\n", mode.c_str(), e.what());
        return kExitUsage;
    } catch (const util::ValidationError& e) {
        std::fprintf(stderr, "serep %s: %s\n", mode.c_str(), e.what());
        return kExitValidation;
    } catch (const util::Error& e) {
        std::fprintf(stderr, "serep %s: %s\n", mode.c_str(), e.what());
        return kExitRuntime;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serep %s: %s\n", mode.c_str(), e.what());
        return kExitRuntime;
    }
    return usage(stderr);
}
